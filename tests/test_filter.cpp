#include "src/policy/filter.h"

#include <gtest/gtest.h>

#include <sstream>

namespace scout {
namespace {

TEST(FilterEntry, SinglePortFactory) {
  const FilterEntry e = FilterEntry::allow_tcp(80);
  EXPECT_EQ(e.protocol, IpProtocol::kTcp);
  EXPECT_TRUE(e.single_port());
  EXPECT_TRUE(e.valid());
  EXPECT_EQ(e.port_lo, 80);
  EXPECT_EQ(e.action, FilterAction::kAllow);
}

TEST(FilterEntry, RangeFactory) {
  const FilterEntry e = FilterEntry::allow_range(8000, 8100);
  EXPECT_FALSE(e.single_port());
  EXPECT_TRUE(e.valid());
}

TEST(FilterEntry, InvertedRangeInvalid) {
  FilterEntry e;
  e.port_lo = 100;
  e.port_hi = 50;
  EXPECT_FALSE(e.valid());
}

TEST(FilterEntry, PrintsSinglePort) {
  std::ostringstream os;
  os << FilterEntry::allow_tcp(700);
  EXPECT_EQ(os.str(), "tcp/700/allow");
}

TEST(FilterEntry, PrintsRangeAndDeny) {
  FilterEntry e = FilterEntry::allow_range(1, 10);
  e.action = FilterAction::kDeny;
  std::ostringstream os;
  os << e;
  EXPECT_EQ(os.str(), "tcp/1-10/deny");
}

TEST(FilterEntry, EqualityIsFieldwise) {
  EXPECT_EQ(FilterEntry::allow_tcp(80), FilterEntry::allow_tcp(80));
  EXPECT_NE(FilterEntry::allow_tcp(80), FilterEntry::allow_tcp(81));
}

TEST(IpProtocol, Names) {
  EXPECT_EQ(to_string(IpProtocol::kTcp), "tcp");
  EXPECT_EQ(to_string(IpProtocol::kUdp), "udp");
  EXPECT_EQ(to_string(IpProtocol::kIcmp), "icmp");
  EXPECT_EQ(to_string(IpProtocol::kAny), "any");
}

}  // namespace
}  // namespace scout
