// Cross-module edge cases that don't fit a single module's suite:
// degenerate inputs, unmanaged switches, empty policies, boundary sizes.
#include <gtest/gtest.h>

#include "src/bdd/bdd.h"
#include "src/checker/packet_encoding.h"
#include "src/common/stats.h"
#include "src/controller/compiler.h"
#include "src/scout/scout_system.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

TEST(EdgeCases, EmptyPolicyCompilesToNothing) {
  NetworkPolicy policy;
  const CompiledPolicy compiled = PolicyCompiler::compile(policy);
  EXPECT_TRUE(compiled.per_switch.empty());
  EXPECT_EQ(compiled.total_rules(), 0u);
}

TEST(EdgeCases, PolicyWithoutLinksCompilesToNothing) {
  ThreeTierNetwork net = make_three_tier();
  net.policy.unlink(net.web, net.app, net.web_app);
  net.policy.unlink(net.app, net.db, net.app_db);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  EXPECT_EQ(compiled.total_rules(), 0u);
}

TEST(EdgeCases, DeployNewFilterOnUnlinkedContractPushesNothing) {
  ThreeTierNetwork three = make_three_tier();
  const ContractId orphan = three.policy.add_contract(
      "orphan", {three.port80});
  SimNetwork net{std::move(three.fabric), std::move(three.policy)};
  net.deploy();
  DeployStats stats;
  (void)net.controller().deploy_new_filter(
      "unused", {FilterEntry::allow_tcp(9999)}, orphan, &stats);
  EXPECT_EQ(stats.total(), 0u);
}

TEST(EdgeCases, EndpointOnUnmanagedSwitchIsSkippedAtDeploy) {
  // An endpoint attached to a switch with no agent (e.g. an unmodelled
  // device): the compiler emits rules for it but the controller skips the
  // push instead of crashing.
  ThreeTierNetwork three = make_three_tier();
  three.policy.add_endpoint("EP4", three.web, SwitchId{77});
  SimNetwork net{std::move(three.fabric), std::move(three.policy)};
  const DeployStats stats = net.deploy();
  EXPECT_GT(stats.applied, 0u);
  EXPECT_GT(net.controller().compiled().rules_for(SwitchId{77}).size(), 0u);
  // The checker only iterates managed agents, so the fabric checks clean.
  const ScoutSystem system;
  EXPECT_TRUE(system.find_missing_rules(net).empty());
}

TEST(EdgeCases, SelfPairCompilesOneDirection) {
  // An EPG linked to itself (intra-EPG permit) emits a single direction.
  ThreeTierNetwork net = make_three_tier();
  net.policy.link(net.app, net.app, net.web_app);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  std::size_t self_rules = 0;
  for (const LogicalRule& lr : compiled.rules_for(net.s2)) {
    if (lr.prov.pair.a == net.app && lr.prov.pair.b == net.app) {
      ++self_rules;
      EXPECT_EQ(lr.rule.src_epg.value, lr.rule.dst_epg.value);
    }
  }
  EXPECT_EQ(self_rules, 1u);  // one filter entry, one direction
}

TEST(EdgeCases, EmptyCdfIsInert) {
  const EmpiricalCdf cdf{{}};
  EXPECT_EQ(cdf.sample_count(), 0u);
  EXPECT_EQ(cdf.at(5.0), 0.0);
  EXPECT_EQ(cdf.quantile(0.5), 0.0);
}

TEST(EdgeCases, SingleVariableBddManagerWorks) {
  BddManager mgr{1};
  const BddRef x = mgr.var(0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(x), 1.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.constant(true)), 2.0);
  EXPECT_TRUE(mgr.is_false(mgr.apply_and(x, mgr.nvar(0))));
}

TEST(EdgeCases, FullWidthCubeIsSinglePacket) {
  BddManager mgr{PacketVars::kCount};
  const TcamRule r = TcamRule::exact_allow(
      1, 4095, 65535, 65535, 255,
      TernaryField::exact(65535, FieldWidths::kPort));
  const BddRef f = mgr.cube(rule_to_cube(r));
  EXPECT_DOUBLE_EQ(mgr.sat_count(f), 1.0);
  const PacketHeader p = assignment_to_packet(mgr.any_sat(f));
  EXPECT_EQ(p.vrf, 4095);
  EXPECT_EQ(p.dst_port, 65535);
}

TEST(EdgeCases, ZeroCapacityTcamRejectsEverything) {
  TcamTable t{0};
  EXPECT_EQ(t.install(TcamRule::default_deny(1)), InstallStatus::kOverflow);
  EXPECT_DOUBLE_EQ(t.utilization(), 1.0);
  EXPECT_TRUE(t.full());
}

TEST(EdgeCases, AnalyzeEmptyFabricYieldsEmptyReport) {
  NetworkPolicy policy;
  (void)policy.add_tenant("t");
  Fabric fabric = Fabric::leaf_spine(2, 0);
  SimNetwork net{std::move(fabric), std::move(policy)};
  net.deploy();
  const ScoutSystem system;
  const ScoutReport report = system.analyze_controller(net);
  EXPECT_EQ(report.observations, 0u);
  EXPECT_TRUE(report.localization.hypothesis.empty());
  EXPECT_EQ(report.gamma, 0.0);
}

}  // namespace
}  // namespace scout
