// Runtime subsystem tests: sharded pool semantics (every task exactly once,
// exception propagation, drain-on-destruction), campaign grid seed
// derivation, and the headline invariant of the parallel experiment
// runtime — serial and multi-threaded sweeps are bit-identical.
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/runtime/campaign.h"
#include "src/runtime/result_sink.h"
#include "src/runtime/thread_pool.h"
#include "src/scout/experiment.h"

namespace scout {
namespace {

TEST(ThreadPool, ExecutesEveryTaskExactlyOnce) {
  constexpr std::size_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  {
    runtime::ThreadPool pool{4};
    for (std::size_t i = 0; i < kTasks; ++i) {
      pool.submit(i, [&hits, i] { ++hits[i]; });
    }
    pool.wait();
    for (std::size_t i = 0; i < kTasks; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "task " << i;
    }
  }
}

TEST(ThreadPool, WaitPropagatesTaskException) {
  runtime::ThreadPool pool{2};
  std::atomic<int> survivors{0};
  pool.submit(0, [] { throw std::runtime_error{"boom"}; });
  for (std::size_t i = 1; i < 16; ++i) {
    pool.submit(i, [&survivors] { ++survivors; });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The failure does not cancel other submitted work.
  pool.wait();
  EXPECT_EQ(survivors.load(), 15);
}

TEST(ThreadPool, DestructionDrainsSubmittedWork) {
  std::atomic<int> done{0};
  {
    runtime::ThreadPool pool{3};
    for (std::size_t i = 0; i < 64; ++i) {
      pool.submit(i, [&done] { ++done; });
    }
    // No wait(): the destructor must drain and join, not drop tasks.
  }
  EXPECT_EQ(done.load(), 64);
}

TEST(Executor, SerialRunsInIndexOrderOnWorkerZero) {
  runtime::SerialExecutor executor;
  std::vector<std::size_t> order;
  executor.run(5, [&order](std::size_t index, std::size_t worker) {
    EXPECT_EQ(worker, 0u);
    order.push_back(index);
  });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(Executor, ThreadPoolRunsEachIndexOnceOnItsShard) {
  runtime::ThreadPoolExecutor executor{4};
  constexpr std::size_t kTasks = 101;
  std::vector<std::atomic<int>> hits(kTasks);
  executor.run(kTasks, [&hits](std::size_t index, std::size_t worker) {
    EXPECT_EQ(worker, index % 4);  // static round-robin assignment
    ++hits[index];
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(Executor, ThreadPoolPropagatesException) {
  runtime::ThreadPoolExecutor executor{2};
  EXPECT_THROW(executor.run(8,
                            [](std::size_t index, std::size_t) {
                              if (index == 5) {
                                throw std::runtime_error{"task failed"};
                              }
                            }),
               std::runtime_error);
}

TEST(CampaignGrid, DecodesCoordsFirstDimSlowest) {
  const runtime::CampaignGrid grid{1, {{"a", 3}, {"b", 4}}};
  ASSERT_EQ(grid.task_count(), 12u);
  EXPECT_EQ(grid.coords(0), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(grid.coords(5), (std::vector<std::size_t>{1, 1}));
  EXPECT_EQ(grid.coords(11), (std::vector<std::size_t>{2, 3}));
}

TEST(CampaignGrid, SeedsArePureAndDistinctPerCell) {
  const runtime::CampaignGrid grid{42, {{"faults", 4}, {"run", 8}}};
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < grid.task_count(); ++i) {
    seeds.push_back(grid.task_seed(i));
    EXPECT_EQ(grid.task_seed(i), seeds.back());  // pure function of index
  }
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    for (std::size_t j = i + 1; j < seeds.size(); ++j) {
      EXPECT_NE(seeds[i], seeds[j]) << i << " vs " << j;
    }
  }
  // Different base seed -> different stream.
  const runtime::CampaignGrid other{43, {{"faults", 4}, {"run", 8}}};
  EXPECT_NE(other.task_seed(0), grid.task_seed(0));
}

TEST(ResultSink, WorkerLocalMergesInWorkerOrder) {
  runtime::WorkerLocal<std::size_t> counters{4};
  for (std::size_t w = 0; w < 4; ++w) counters.local(w) = w + 1;
  const std::size_t total = counters.merge(
      [](std::size_t acc, std::size_t v) { return acc + v; });
  EXPECT_EQ(total, 10u);
}

TEST(ResultSink, BenchRecorderEmitsRows) {
  runtime::BenchRecorder recorder{"demo"};
  recorder.add_row({{"threads", 4.0}, {"wall_ms", 123.5}});
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"bench\":\"demo\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"threads\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"wall_ms\""), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// The headline invariant: parallel == serial, bit for bit.
// ---------------------------------------------------------------------------

AccuracyOptions sweep_options() {
  AccuracyOptions opts;
  opts.profile = GeneratorProfile::testbed();
  opts.model = RiskModelKind::kController;
  opts.runs = 6;
  opts.max_faults = 3;
  opts.benign_changes = 5;
  opts.seed = 1234;
  return opts;
}

const std::vector<AlgorithmSpec> kAlgorithms{
    {"SCOUT", AlgorithmKind::kScout, 1.0, true},
    {"SCORE-1", AlgorithmKind::kScore, 1.0, true},
};

void expect_bitwise_equal(const std::vector<AccuracySeries>& a,
                          const std::vector<AccuracySeries>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_EQ(a[s].name, b[s].name);
    ASSERT_EQ(a[s].by_faults.size(), b[s].by_faults.size());
    for (std::size_t f = 0; f < a[s].by_faults.size(); ++f) {
      // Bit-identical, not approximately equal: memcmp on the doubles.
      EXPECT_EQ(std::memcmp(&a[s].by_faults[f], &b[s].by_faults[f],
                            sizeof(AccuracyCell)),
                0)
          << "series " << s << " faults " << f + 1 << ": "
          << a[s].by_faults[f].precision << "/" << a[s].by_faults[f].recall
          << " vs " << b[s].by_faults[f].precision << "/"
          << b[s].by_faults[f].recall;
    }
  }
}

TEST(Determinism, AccuracySweepSerialEqualsFourThreads) {
  const AccuracyOptions opts = sweep_options();
  runtime::SerialExecutor serial;
  const auto reference = run_accuracy_sweep(opts, kAlgorithms, serial);

  runtime::ThreadPoolExecutor parallel{4};
  const auto threaded = run_accuracy_sweep(opts, kAlgorithms, parallel);
  expect_bitwise_equal(reference, threaded);

  // And again: re-running the parallel sweep is stable, too.
  runtime::ThreadPoolExecutor parallel2{3};
  expect_bitwise_equal(reference,
                       run_accuracy_sweep(opts, kAlgorithms, parallel2));
}

TEST(Determinism, SwitchModelSweepSerialEqualsFourThreads) {
  AccuracyOptions opts = sweep_options();
  opts.model = RiskModelKind::kSwitch;
  runtime::SerialExecutor serial;
  runtime::ThreadPoolExecutor parallel{4};
  expect_bitwise_equal(run_accuracy_sweep(opts, kAlgorithms, serial),
                       run_accuracy_sweep(opts, kAlgorithms, parallel));
}

TEST(Determinism, GammaExperimentSerialEqualsFourThreads) {
  GammaOptions opts;
  opts.profile = GeneratorProfile::testbed();
  opts.faults = 48;
  opts.seed = 3;
  opts.bucket_bounds = {10, 20, 40, 60};
  opts.shards = 6;

  runtime::SerialExecutor serial;
  runtime::ThreadPoolExecutor parallel{4};
  const auto reference = run_gamma_experiment(opts, serial);
  const auto threaded = run_gamma_experiment(opts, parallel);
  ASSERT_EQ(reference.size(), threaded.size());
  for (std::size_t b = 0; b < reference.size(); ++b) {
    EXPECT_EQ(std::memcmp(&reference[b], &threaded[b], sizeof(GammaBucket)),
              0)
        << "bucket " << b;
  }
}

TEST(Determinism, ScalabilityCampaignStructureMatchesSerial) {
  ScaleCampaignOptions opts;
  opts.switch_counts = {5, 10};
  opts.reps = 2;
  opts.n_faults = 2;
  opts.pairs_per_switch = 30;

  runtime::SerialExecutor serial;
  runtime::ThreadPoolExecutor parallel{4};
  const auto reference = run_scalability_campaign(opts, serial);
  const auto threaded = run_scalability_campaign(opts, parallel);
  ASSERT_EQ(reference.size(), 4u);
  ASSERT_EQ(threaded.size(), 4u);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    // Timings are wall-clock and legitimately differ; the derived model
    // structure must not.
    EXPECT_EQ(reference[i].switches, threaded[i].switches);
    EXPECT_EQ(reference[i].epg_pairs, threaded[i].epg_pairs);
    EXPECT_EQ(reference[i].elements, threaded[i].elements);
    EXPECT_EQ(reference[i].risks, threaded[i].risks);
    EXPECT_EQ(reference[i].edges, threaded[i].edges);
  }
}

TEST(Determinism, DeriveSeedIsChainableAndOrderSensitive) {
  EXPECT_NE(derive_seed(derive_seed(7, 1), 2),
            derive_seed(derive_seed(7, 2), 1));
  EXPECT_NE(derive_seed(7, 0), derive_seed(7, 1));
  constexpr std::uint64_t fixed = derive_seed(42, 3);  // constexpr-usable
  EXPECT_EQ(derive_seed(42, 3), fixed);
}

}  // namespace
}  // namespace scout
