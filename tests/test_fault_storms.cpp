// Differential gate for the chaos engine: every new fault class — gray
// rendering faults, the three correlated storm profiles, each pluggable
// TCAM eviction policy, and delayed/reordered control delivery — must
// leave the monitor's verdict stream a pure function of the seed. Per
// seed the serial-transport anchor (1 publisher, no ring) and the
// 4-publisher MPSC-ring leg must produce bit-identical verdict digests,
// and both legs must match a fresh ScoutSystem::check_all after every
// batch (verify_batches).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "src/scout/experiment.h"
#include "src/stream/monitor_loop.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

// One knob per fault class so a digest divergence names its culprit.
struct FaultClass {
  const char* name;
  double gray_rate;
  const char* storm;
  const char* evict;
  std::size_t delivery_window;
};

MonitoringOptions chaos_scenario(std::uint64_t seed, const FaultClass& fc) {
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(8);
  options.profile.target_pairs = 8 * 40;
  options.events = 120;
  options.batch_ops = 10;
  options.seed = seed;
  options.localize_final = false;
  options.gray_rate = fc.gray_rate;
  options.storm = fc.storm;
  options.storm_every_batches = 1;  // batches are big; storm every drain
  options.evict_policy = fc.evict;
  options.delivery_window = fc.delivery_window;
  options.verify_batches = true;  // fresh check_all after every batch
  return options;
}

// 20 seeds x {serial anchor, 4-publisher ring leg} for one fault class.
void run_differential_gate(const FaultClass& fc) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    MonitoringOptions base = chaos_scenario(seed, fc);
    base.publishers = 1;
    base.use_ring = false;
    runtime::SerialExecutor serial_exec;
    const MonitoringReport anchor =
        run_continuous_monitoring(base, serial_exec);
    EXPECT_EQ(anchor.verify_mismatches, 0u)
        << fc.name << " serial leg, seed " << seed;

    MonitoringOptions ring = chaos_scenario(seed, fc);
    ring.publishers = 4;
    ring.use_ring = true;
    const auto executor = runtime::make_executor(2);
    const MonitoringReport report =
        run_continuous_monitoring(ring, *executor);
    EXPECT_EQ(report.verify_mismatches, 0u)
        << fc.name << " ring leg, seed " << seed;
    EXPECT_EQ(report.verdict_digest, anchor.verdict_digest)
        << fc.name << " seed " << seed << ": 4-publisher ring diverged "
        << "from the serial transport";
    EXPECT_GE(report.events, ring.events) << fc.name << " seed " << seed;
  }
}

TEST(FaultStorms, GrayAgentsDigestIdenticalAcrossTransports) {
  const FaultClass fc{"gray", 0.15, "", "", 0};
  run_differential_gate(fc);
}

TEST(FaultStorms, RackPowerStormDigestIdenticalAcrossTransports) {
  const FaultClass fc{"rack-power", 0.0, "rack-power", "", 0};
  run_differential_gate(fc);
}

TEST(FaultStorms, RollingUpgradeStormDigestIdenticalAcrossTransports) {
  const FaultClass fc{"rolling-upgrade", 0.0, "rolling-upgrade", "", 0};
  run_differential_gate(fc);
}

TEST(FaultStorms, PodBrownoutStormDigestIdenticalAcrossTransports) {
  const FaultClass fc{"pod-brownout", 0.0, "pod-brownout", "", 0};
  run_differential_gate(fc);
}

TEST(FaultStorms, FifoEvictionDigestIdenticalAcrossTransports) {
  const FaultClass fc{"evict-fifo", 0.0, "", "fifo", 0};
  run_differential_gate(fc);
}

TEST(FaultStorms, RandomEvictionDigestIdenticalAcrossTransports) {
  const FaultClass fc{"evict-random", 0.0, "", "random", 0};
  run_differential_gate(fc);
}

TEST(FaultStorms, LruTouchEvictionDigestIdenticalAcrossTransports) {
  const FaultClass fc{"evict-lru-touch", 0.0, "", "lru-touch", 0};
  run_differential_gate(fc);
}

TEST(FaultStorms, ReorderedDeliveryDigestIdenticalAcrossTransports) {
  const FaultClass fc{"reorder", 0.0, "", "", 6};
  run_differential_gate(fc);
}

// The fault engine must actually fire inside the gated runs: a storm leg
// reports episodes, a gray leg reports misrenders or drops, an eviction
// leg counts evictions. A silent engine would make the digest gate
// vacuous.
TEST(FaultStorms, FaultEnginesActuallyFire) {
  runtime::SerialExecutor executor;
  {
    const FaultClass fc{"rack-power", 0.0, "rack-power", "", 0};
    const MonitoringReport report =
        run_continuous_monitoring(chaos_scenario(5, fc), executor);
    EXPECT_GT(report.storm_episodes, 0u);
  }
  {
    const FaultClass fc{"gray", 0.35, "", "", 0};
    const MonitoringReport report =
        run_continuous_monitoring(chaos_scenario(5, fc), executor);
    EXPECT_GT(report.gray_misrenders + report.gray_drops, 0u);
  }
  {
    const FaultClass fc{"evict-fifo", 0.0, "", "fifo", 0};
    const MonitoringReport report =
        run_continuous_monitoring(chaos_scenario(5, fc), executor);
    EXPECT_GT(report.tcam_evictions, 0u);
  }
}

}  // namespace
}  // namespace scout
