#include "src/checker/packet_encoding.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/tcam/range_expansion.h"
#include "src/tcam/tcam_table.h"

namespace scout {
namespace {

TcamRule allow(std::uint32_t priority, std::uint16_t vrf, std::uint16_t src,
               std::uint16_t dst, std::uint16_t port) {
  return TcamRule::exact_allow(priority, vrf, src, dst, 6,
                               TernaryField::exact(port, FieldWidths::kPort));
}

TEST(PacketEncoding, VariableLayoutCovers68Bits) {
  EXPECT_EQ(PacketVars::kCount, 68u);
  EXPECT_EQ(PacketVars::kVrfBase, 0u);
  EXPECT_EQ(PacketVars::kSrcEpgBase, 12u);
  EXPECT_EQ(PacketVars::kDstEpgBase, 28u);
  EXPECT_EQ(PacketVars::kProtoBase, 44u);
  EXPECT_EQ(PacketVars::kPortBase, 52u);
}

TEST(PacketEncoding, ExactRuleCubeHasAllCareBits) {
  const BddCube cube = rule_to_cube(allow(1, 101, 10, 20, 80));
  EXPECT_EQ(cube.size(), 68u);
}

TEST(PacketEncoding, WildcardRuleCubeIsEmpty) {
  const BddCube cube = rule_to_cube(TcamRule::default_deny(1));
  EXPECT_TRUE(cube.empty());
}

TEST(PacketEncoding, PrefixMaskEncodesOnlyMaskedBits) {
  TcamRule r = allow(1, 101, 10, 20, 0);
  r.dst_port = TernaryField{0x100, 0xFF00};  // 8-bit prefix
  const BddCube cube = rule_to_cube(r);
  EXPECT_EQ(cube.size(), 12u + 16u + 16u + 8u + 8u);
}

TEST(PacketEncoding, RuleBddAcceptsExactlyMatchingPackets) {
  BddManager mgr{PacketVars::kCount};
  const TcamRule r = allow(1, 101, 10, 20, 80);
  const BddRef f = ruleset_to_bdd(mgr, std::vector<TcamRule>{r});
  EXPECT_DOUBLE_EQ(mgr.sat_count(f), 1.0);  // exact rule = 1 packet
}

TEST(PacketEncoding, AssignmentRoundTripsToPacket) {
  BddManager mgr{PacketVars::kCount};
  const TcamRule r = allow(1, 101, 10, 20, 80);
  const BddRef f = mgr.cube(rule_to_cube(r));
  const PacketHeader p = assignment_to_packet(mgr.any_sat(f));
  EXPECT_EQ(p.vrf, 101);
  EXPECT_EQ(p.src_epg, 10);
  EXPECT_EQ(p.dst_epg, 20);
  EXPECT_EQ(p.proto, 6);
  EXPECT_EQ(p.dst_port, 80);
  EXPECT_TRUE(r.matches(p));
}

TEST(PacketEncoding, DenyOverridesLowerPriorityAllow) {
  BddManager mgr{PacketVars::kCount};
  TcamRule deny = allow(1, 101, 10, 20, 80);
  deny.action = RuleAction::kDeny;
  const TcamRule allow_rule = allow(2, 101, 10, 20, 80);
  const BddRef f =
      ruleset_to_bdd(mgr, std::vector<TcamRule>{deny, allow_rule});
  EXPECT_TRUE(mgr.is_false(f));
}

TEST(PacketEncoding, AllowOverridesLowerPriorityDeny) {
  BddManager mgr{PacketVars::kCount};
  const TcamRule allow_rule = allow(1, 101, 10, 20, 80);
  TcamRule deny = allow(2, 101, 10, 20, 80);
  deny.action = RuleAction::kDeny;
  const BddRef f =
      ruleset_to_bdd(mgr, std::vector<TcamRule>{allow_rule, deny});
  EXPECT_DOUBLE_EQ(mgr.sat_count(f), 1.0);
}

TEST(PacketEncoding, UnsortedInputIsSortedByPriority) {
  BddManager mgr{PacketVars::kCount};
  // Same rules, shuffled install order: BDDs must be identical.
  const std::vector<TcamRule> a{allow(1, 101, 1, 2, 80),
                                allow(2, 101, 1, 2, 81),
                                TcamRule::default_deny(99)};
  const std::vector<TcamRule> b{a[2], a[0], a[1]};
  EXPECT_EQ(ruleset_to_bdd(mgr, a), ruleset_to_bdd(mgr, b));
}

// Property: the BDD of a ruleset agrees with TCAM first-match lookup for
// random packets, including deny rules and port-range cubes.
class EncodingSemantics : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EncodingSemantics, BddAgreesWithFirstMatchLookup) {
  Rng rng{GetParam()};
  BddManager mgr{PacketVars::kCount};
  TcamTable table{512};

  std::vector<TcamRule> rules;
  std::uint32_t priority = 0;
  for (int i = 0; i < 40; ++i) {
    const auto vrf = static_cast<std::uint16_t>(rng.below(4));
    const auto src = static_cast<std::uint16_t>(rng.below(6));
    const auto dst = static_cast<std::uint16_t>(rng.below(6));
    const auto lo = static_cast<std::uint16_t>(rng.below(100));
    const auto hi = static_cast<std::uint16_t>(lo + rng.below(20));
    for (const TernaryField& cube : expand_port_range(lo, hi, 16)) {
      TcamRule r = TcamRule::exact_allow(priority++, vrf, src, dst, 6, cube);
      if (rng.chance(0.2)) r.action = RuleAction::kDeny;
      rules.push_back(r);
      (void)table.install(r);
    }
  }
  rules.push_back(TcamRule::default_deny(priority));
  (void)table.install(rules.back());

  const BddRef f = ruleset_to_bdd(mgr, rules);

  for (int trial = 0; trial < 2000; ++trial) {
    PacketHeader p;
    p.vrf = static_cast<std::uint16_t>(rng.below(4));
    p.src_epg = static_cast<std::uint16_t>(rng.below(6));
    p.dst_epg = static_cast<std::uint16_t>(rng.below(6));
    p.proto = 6;
    p.dst_port = static_cast<std::uint16_t>(rng.below(130));

    // Evaluate the BDD under the packet's bit assignment.
    std::vector<bool> bits(PacketVars::kCount, false);
    auto set_field = [&bits](std::uint32_t base, int width, std::uint32_t v) {
      for (int b = 0; b < width; ++b) {
        bits[base + static_cast<std::uint32_t>(b)] =
            (v >> (width - 1 - b)) & 1U;
      }
    };
    set_field(PacketVars::kVrfBase, FieldWidths::kVrf, p.vrf);
    set_field(PacketVars::kSrcEpgBase, FieldWidths::kEpg, p.src_epg);
    set_field(PacketVars::kDstEpgBase, FieldWidths::kEpg, p.dst_epg);
    set_field(PacketVars::kProtoBase, FieldWidths::kProto, p.proto);
    set_field(PacketVars::kPortBase, FieldWidths::kPort, p.dst_port);

    const bool bdd_allows = mgr.evaluate(f, bits);
    const bool tcam_allows = table.lookup(p) == RuleAction::kAllow;
    ASSERT_EQ(bdd_allows, tcam_allows) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodingSemantics,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace scout
