#include "src/controller/controller.h"

#include <gtest/gtest.h>

#include "src/scout/sim_network.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

struct ControllerFixture : ::testing::Test {
  ControllerFixture()
      : three(make_three_tier()),
        net(std::move(three.fabric), std::move(three.policy)) {}

  ThreeTierNetwork three;
  SimNetwork net;
};

TEST_F(ControllerFixture, FullDeployPushesEveryRule) {
  const DeployStats stats = net.deploy();
  EXPECT_EQ(stats.lost + stats.crashed + stats.tcam_overflow, 0u);
  // 3 + 7 + 5 rules across S1..S3 (Figure 2 for S2).
  EXPECT_EQ(stats.applied, 15u);
  EXPECT_EQ(net.agent(three.s2).tcam().size(), 7u);
}

TEST_F(ControllerFixture, DeployRecordsChangeLogPerObject) {
  (void)net.deploy();
  const ChangeLog& log = net.controller().change_log();
  // 1 VRF + 3 EPGs + 2 filters + 2 contracts = 8 'add' records.
  EXPECT_EQ(log.size(), 8u);
  for (const ChangeRecord& rec : log.records()) {
    EXPECT_EQ(rec.action, ChangeAction::kAdd);
  }
}

TEST_F(ControllerFixture, DeployNewFilterPushesIncrementally) {
  (void)net.deploy();
  const std::size_t s2_before = net.agent(three.s2).tcam().size();
  const std::size_t s1_before = net.agent(three.s1).tcam().size();

  DeployStats stats;
  const FilterId f = net.controller().deploy_new_filter(
      "port443", {FilterEntry::allow_tcp(443)}, three.app_db, &stats);
  EXPECT_TRUE(f.valid());
  // App-DB deploys on S2 and S3: 2 rules each.
  EXPECT_EQ(stats.applied, 4u);
  EXPECT_EQ(net.agent(three.s2).tcam().size(), s2_before + 2);
  EXPECT_EQ(net.agent(three.s1).tcam().size(), s1_before);

  // Change log gained filter-add + contract-modify.
  const auto& records = net.controller().change_log().records();
  EXPECT_EQ(records[records.size() - 2].object, ObjectRef::of(f));
  EXPECT_EQ(records.back().object, ObjectRef::of(three.app_db));
  EXPECT_EQ(records.back().action, ChangeAction::kModify);
}

TEST_F(ControllerFixture, DeployNewFilterKeepsCompiledInSync) {
  (void)net.deploy();
  (void)net.controller().deploy_new_filter(
      "port443", {FilterEntry::allow_tcp(443)}, three.app_db, nullptr);
  // The compiled snapshot must reflect the new filter on S2 and S3.
  std::size_t found = 0;
  for (const auto& [sw, rules] : net.controller().compiled().per_switch) {
    for (const LogicalRule& lr : rules) {
      if (lr.rule.dst_port.value == 443 &&
          lr.rule.action == RuleAction::kAllow) {
        ++found;
      }
    }
  }
  EXPECT_EQ(found, 4u);
}

TEST_F(ControllerFixture, DisconnectedSwitchLosesInstructions) {
  net.controller().disconnect_switch(three.s2);
  const DeployStats stats = net.deploy();
  EXPECT_EQ(stats.lost, 7u);  // S2's rules vanish
  EXPECT_EQ(net.agent(three.s2).tcam().size(), 0u);
  EXPECT_EQ(net.agent(three.s1).tcam().size(), 3u);

  // Controller raised exactly one unreachable fault for the episode.
  const FaultLog& faults = net.controller().fault_log();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults.records()[0].code, FaultCode::kSwitchUnreachable);
  EXPECT_EQ(faults.records()[0].sw, three.s2);
  EXPECT_FALSE(faults.records()[0].cleared.has_value());
}

TEST_F(ControllerFixture, ReconnectClearsUnreachableFault) {
  net.controller().disconnect_switch(three.s2);
  (void)net.deploy();
  net.clock().advance(100);
  net.controller().reconnect_switch(three.s2);
  const FaultLog& faults = net.controller().fault_log();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_TRUE(faults.records()[0].cleared.has_value());
}

TEST_F(ControllerFixture, UnresponsiveAgentDetectedViaKeepalive) {
  net.agent(three.s3).set_responsive(false);
  const DeployStats stats = net.deploy();
  EXPECT_EQ(stats.lost, 5u);
  const FaultLog& faults = net.controller().fault_log();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults.records()[0].sw, three.s3);
}

TEST_F(ControllerFixture, RecordBenignChangeAppendsModify) {
  (void)net.deploy();
  net.controller().record_benign_change(ObjectRef::of(three.port80));
  const auto& records = net.controller().change_log().records();
  EXPECT_EQ(records.back().object, ObjectRef::of(three.port80));
  EXPECT_EQ(records.back().action, ChangeAction::kModify);
}

TEST_F(ControllerFixture, AgentLookupUnknownSwitchIsNull) {
  EXPECT_EQ(net.controller().agent(SwitchId{99}), nullptr);
}

TEST(DeployStats, CountMapsStatuses) {
  DeployStats s;
  s.count(ApplyStatus::kApplied);
  s.count(ApplyStatus::kLost);
  s.count(ApplyStatus::kCrashed);
  s.count(ApplyStatus::kTcamOverflow);
  s.count(ApplyStatus::kApplied);
  EXPECT_EQ(s.applied, 2u);
  EXPECT_EQ(s.lost, 1u);
  EXPECT_EQ(s.crashed, 1u);
  EXPECT_EQ(s.tcam_overflow, 1u);
  EXPECT_EQ(s.total(), 5u);
}

}  // namespace
}  // namespace scout
