#include "src/faults/fault_policy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "src/tcam/tcam_table.h"

namespace scout {
namespace {

TcamRule rule(std::uint32_t priority, std::uint16_t port) {
  return TcamRule::exact_allow(priority, /*vrf=*/101, /*src_epg=*/1,
                               /*dst_epg=*/2, /*proto=*/6,
                               TernaryField::exact(port, FieldWidths::kPort));
}

// A table holding three distinguishable rules plus the catch-all deny,
// installed in a fixed order so the install stamps are known: port 80
// first, then 443, then 8080 (priorities 10 < 20 < 30 < deny 99).
TcamTable seeded_table(std::unique_ptr<EvictionPolicy> policy) {
  TcamTable tcam{8};
  tcam.set_eviction_policy(std::move(policy));
  EXPECT_EQ(tcam.install(rule(10, 80)), InstallStatus::kOk);
  EXPECT_EQ(tcam.install(rule(20, 443)), InstallStatus::kOk);
  EXPECT_EQ(tcam.install(rule(30, 8080)), InstallStatus::kOk);
  EXPECT_EQ(tcam.install(TcamRule::default_deny(99)), InstallStatus::kOk);
  return tcam;
}

std::uint16_t evicted_port(TcamTable& tcam) {
  const std::optional<TcamRule> victim = tcam.evict_one();
  EXPECT_TRUE(victim.has_value());
  return static_cast<std::uint16_t>(victim->dst_port.value);
}

TEST(FaultPolicy, NamesListMatchesFactory) {
  const auto names = eviction_policy_names();
  ASSERT_EQ(names.size(), 4u);
  for (const std::string_view name : names) {
    const auto policy = make_eviction_policy(name);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->name(), name);
  }
}

TEST(FaultPolicy, FactoryRejectsUnknownName) {
  EXPECT_THROW((void)make_eviction_policy("bogus"), std::invalid_argument);
  EXPECT_THROW((void)make_eviction_policy(""), std::invalid_argument);
}

TEST(FaultPolicy, LowestPriorityEvictsBackToFront) {
  TcamTable tcam = seeded_table(make_eviction_policy("lowest-priority"));
  // Highest priority number (= lowest match priority) spills first; the
  // trailing catch-all deny is never a victim.
  EXPECT_EQ(evicted_port(tcam), 8080);
  EXPECT_EQ(evicted_port(tcam), 443);
  EXPECT_EQ(evicted_port(tcam), 80);
  EXPECT_FALSE(tcam.evict_one().has_value()) << "only the deny remains";
  EXPECT_EQ(tcam.size(), 1u);
}

TEST(FaultPolicy, NullPolicyKeepsHistoricalLowestPriorityOrder) {
  TcamTable with_policy = seeded_table(make_eviction_policy("lowest-priority"));
  TcamTable without = seeded_table(nullptr);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(evicted_port(with_policy), evicted_port(without));
  }
}

TEST(FaultPolicy, FifoEvictsOldestInstallFirst) {
  TcamTable tcam = seeded_table(make_eviction_policy("fifo"));
  // Install order was 80, 443, 8080 — eviction replays it.
  EXPECT_EQ(evicted_port(tcam), 80);
  EXPECT_EQ(evicted_port(tcam), 443);
  EXPECT_EQ(evicted_port(tcam), 8080);
  EXPECT_FALSE(tcam.evict_one().has_value());
}

TEST(FaultPolicy, LruTouchPrefersUntouchedEntries) {
  TcamTable tcam = seeded_table(make_eviction_policy("lru-touch"));
  // Refresh the oldest entry's touch stamp via an in-place overwrite; the
  // second-oldest becomes the least-recently-touched victim.
  ASSERT_TRUE(tcam.replace_one(rule(10, 80), rule(10, 80)));
  EXPECT_EQ(evicted_port(tcam), 443);
  EXPECT_EQ(evicted_port(tcam), 8080);
  EXPECT_EQ(evicted_port(tcam), 80);
}

TEST(FaultPolicy, RandomIsSeedDeterministicAndNeverTakesTheDeny) {
  std::vector<std::uint16_t> first_run;
  for (int run = 0; run < 2; ++run) {
    TcamTable tcam = seeded_table(make_eviction_policy("random", 77));
    std::vector<std::uint16_t> order;
    while (auto victim = tcam.evict_one()) {
      order.push_back(static_cast<std::uint16_t>(victim->dst_port.value));
    }
    ASSERT_EQ(order.size(), 3u) << "all three rules but never the deny";
    EXPECT_EQ(std::set<std::uint16_t>(order.begin(), order.end()),
              (std::set<std::uint16_t>{80, 443, 8080}));
    if (run == 0) {
      first_run = order;
    } else {
      EXPECT_EQ(order, first_run) << "same seed, same victim sequence";
    }
    EXPECT_EQ(tcam.size(), 1u);
  }
}

TEST(FaultPolicy, EvictionCounterIsLifetimeMonotone) {
  TcamTable tcam = seeded_table(make_eviction_policy("fifo"));
  EXPECT_EQ(tcam.evictions(), 0u);
  (void)tcam.evict_one();
  (void)tcam.evict_one();
  EXPECT_EQ(tcam.evictions(), 2u);
  // A failed eviction (nothing eligible) does not count.
  (void)tcam.evict_one();
  (void)tcam.evict_one();
  EXPECT_EQ(tcam.evictions(), 3u);
}

TEST(FaultPolicy, MetaStaysParallelAcrossRemovals) {
  TcamTable tcam = seeded_table(make_eviction_policy("fifo"));
  ASSERT_TRUE(tcam.remove_one(rule(10, 80)));
  ASSERT_EQ(tcam.rules().size(), tcam.meta().size());
  // After removing the oldest entry, fifo's next victim is the second
  // install — the stamps moved with their rules.
  EXPECT_EQ(evicted_port(tcam), 443);
  ASSERT_EQ(tcam.rules().size(), tcam.meta().size());
}

}  // namespace
}  // namespace scout
