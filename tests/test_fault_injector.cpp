#include "src/faults/fault_injector.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/checker/equivalence_checker.h"
#include "src/scout/sim_network.h"
#include "src/workload/policy_generator.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

struct InjectorFixture : ::testing::Test {
  InjectorFixture()
      : three(make_three_tier()),
        net(std::move(three.fabric), std::move(three.policy)),
        rng(1234),
        injector(net.controller(), rng) {
    net.deploy();
    net.clock().advance(1000);
  }

  ThreeTierNetwork three;
  SimNetwork net;
  Rng rng;
  ObjectFaultInjector injector;
};

TEST_F(InjectorFixture, FullFilterFaultRemovesAllItsRules) {
  const InjectedFault fault =
      injector.inject_full(ObjectRef::of(three.port700));
  // port700 belongs to App-DB only: 2 rules on S2 + 2 on S3.
  EXPECT_EQ(fault.rules_removed, 4u);
  EXPECT_EQ(fault.switches, (std::vector<SwitchId>{three.s2, three.s3}));
  EXPECT_TRUE(fault.full);
  EXPECT_EQ(fault.elements_affected, 2u);

  // The TCAMs no longer hold any port-700 rule.
  for (const auto& agent : net.agents()) {
    for (const TcamRule& r : agent->tcam().rules()) {
      EXPECT_NE(r.dst_port.value, 700u);
    }
  }
}

TEST_F(InjectorFixture, ScopedFaultTouchesOnlyThatSwitch) {
  const InjectedFault fault =
      injector.inject_full(ObjectRef::of(three.port700), three.s2);
  EXPECT_EQ(fault.rules_removed, 2u);
  EXPECT_EQ(fault.switches, std::vector<SwitchId>{three.s2});
  // S3 still has its port-700 rules.
  std::size_t s3_700 = 0;
  for (const TcamRule& r : net.agent(three.s3).tcam().rules()) {
    if (r.dst_port.value == 700) ++s3_700;
  }
  EXPECT_EQ(s3_700, 2u);
}

TEST_F(InjectorFixture, EpgFaultRemovesBothPairsRules) {
  const InjectedFault fault = injector.inject_full(ObjectRef::of(three.app));
  // App participates in Web-App (S1+S2: 2 rules each) and App-DB
  // (S2+S3: 4 rules each) = 12 rules.
  EXPECT_EQ(fault.rules_removed, 12u);
  EXPECT_EQ(fault.switches.size(), 3u);
}

TEST_F(InjectorFixture, FaultLeavesLogicalViewIntact) {
  const std::size_t before = net.agent(three.s2).logical_view().size();
  (void)injector.inject_full(ObjectRef::of(three.port700));
  EXPECT_EQ(net.agent(three.s2).logical_view().size(), before);
}

TEST_F(InjectorFixture, InjectionRecordsChangeLogEntry) {
  const std::size_t before = net.controller().change_log().size();
  (void)injector.inject_full(ObjectRef::of(three.port80));
  EXPECT_EQ(net.controller().change_log().size(), before + 1);
  EXPECT_EQ(net.controller().change_log().records().back().object,
            ObjectRef::of(three.port80));
}

TEST_F(InjectorFixture, ChangeRecordingCanBeDisabled) {
  ObjectFaultInjector::Options opts;
  opts.record_change = false;
  ObjectFaultInjector quiet{net.controller(), rng, opts};
  const std::size_t before = net.controller().change_log().size();
  (void)quiet.inject_full(ObjectRef::of(three.port80));
  EXPECT_EQ(net.controller().change_log().size(), before);
}

TEST_F(InjectorFixture, SingleElementObjectDegradesPartialToFull) {
  // port80 in Web-App context has 2 elements; but an object with one
  // dependent element cannot be partially faulted. web EPG has one pair
  // but two switch elements, so use a scoped partial on S1 (one element).
  const InjectedFault fault =
      injector.inject_partial(ObjectRef::of(three.web), three.s1);
  EXPECT_TRUE(fault.full);
  EXPECT_GT(fault.rules_removed, 0u);
}

TEST_F(InjectorFixture, UnknownObjectRemovesNothing) {
  const InjectedFault fault =
      injector.inject_full(ObjectRef::of(FilterId{77}));
  EXPECT_EQ(fault.rules_removed, 0u);
  EXPECT_TRUE(fault.switches.empty());
}

TEST_F(InjectorFixture, MissingRulesMatchInjectedObject) {
  (void)injector.inject_full(ObjectRef::of(three.port700));
  const EquivalenceChecker checker{CheckMode::kExactBdd};
  std::vector<LogicalRule> missing;
  for (const auto& agent : net.agents()) {
    auto result =
        checker.check(net.controller().compiled().rules_for(agent->id()),
                      agent->collect_tcam());
    missing.insert(missing.end(), result.missing.begin(),
                   result.missing.end());
  }
  ASSERT_EQ(missing.size(), 4u);
  for (const LogicalRule& lr : missing) {
    EXPECT_EQ(lr.prov.filter, three.port700);
  }
}

// Partial faults on a larger policy: removal strictly between 0 and all.
TEST(InjectorPartial, PartialFaultBreaksSubsetOfElements) {
  Rng rng{99};
  GeneratedNetwork generated =
      generate_network(GeneratorProfile::testbed(), rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();

  ObjectFaultInjector::Options opts;
  opts.sampled_fraction = false;
  opts.partial_fraction = 0.5;
  ObjectFaultInjector injector{net.controller(), rng, opts};

  // Find an object with several dependent elements.
  const auto pool = injector.sample_objects(50);
  for (const ObjectRef obj : pool) {
    const InjectedFault probe = injector.inject_partial(obj);
    if (probe.rules_removed == 0) continue;
    if (!probe.full) {
      SUCCEED();
      return;
    }
  }
  FAIL() << "no partial fault materialized across 50 objects";
}

void repair_all(SimNetwork& net) {
  for (const auto& agent : net.agents()) {
    agent->tcam().clear();
    for (const LogicalRule& lr :
         net.controller().compiled().rules_for(agent->id())) {
      ASSERT_EQ(agent->tcam().install(lr.rule), InstallStatus::kOk);
    }
  }
}

TEST(InjectorSampling, SampledObjectsAreDeployedAndDistinct) {
  Rng rng{7};
  GeneratedNetwork generated =
      generate_network(GeneratorProfile::testbed(), rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  ObjectFaultInjector injector{net.controller(), rng};

  const auto sample = injector.sample_objects(20);
  EXPECT_EQ(sample.size(), 20u);
  std::unordered_set<ObjectRef> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (const ObjectRef obj : sample) {
    EXPECT_NE(obj.type(), ObjectType::kVrf);
    const InjectedFault fault = injector.inject_full(obj);
    EXPECT_GT(fault.rules_removed, 0u) << "sampled object deploys no rules";
    // Repair before the next injection: overlapping objects (a filter and
    // its contract) would otherwise find their rules already gone.
    repair_all(net);
  }
}

TEST(InjectorSampling, ScopedSamplingStaysOnSwitch) {
  Rng rng{8};
  GeneratedNetwork generated =
      generate_network(GeneratorProfile::testbed(), rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  ObjectFaultInjector injector{net.controller(), rng};

  // Pick some switch with rules.
  SwitchId target{};
  for (const auto& [sw, rules] : net.controller().compiled().per_switch) {
    if (!rules.empty()) {
      target = sw;
      break;
    }
  }
  for (const ObjectRef obj :
       injector.sample_objects(10, false, target)) {
    const InjectedFault fault = injector.inject_full(obj, target);
    EXPECT_GT(fault.rules_removed, 0u);
    EXPECT_EQ(fault.switches, std::vector<SwitchId>{target});
    repair_all(net);
  }
}

TEST(InjectorSampling, VrfsIncludedOnRequest) {
  Rng rng{9};
  GeneratedNetwork generated =
      generate_network(GeneratorProfile::testbed(), rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  ObjectFaultInjector injector{net.controller(), rng};
  const auto all = injector.sample_objects(10'000, /*include_vrfs=*/true);
  const bool has_vrf = std::any_of(all.begin(), all.end(), [](ObjectRef o) {
    return o.type() == ObjectType::kVrf;
  });
  EXPECT_TRUE(has_vrf);
}

}  // namespace
}  // namespace scout
