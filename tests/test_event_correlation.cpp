#include "src/correlation/event_correlation.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

const ObjectRef kFilter = ObjectRef::of(FilterId{3});
const SwitchId kSw1{1};
const SwitchId kSw2{2};

struct CorrelationFixture : ::testing::Test {
  EventCorrelationEngine engine;
  ChangeLog changes;
  FaultLog faults;
  ObjectScope scope;
};

TEST_F(CorrelationFixture, DefaultSignaturesCoverKnownFaults) {
  EXPECT_EQ(engine.signatures().size(), 5u);
}

TEST_F(CorrelationFixture, TcamOverflowMatchedAtChangeTime) {
  // Fault active from t=100; filter changed at t=150.
  (void)faults.raise(SimTime{100}, kSw1, FaultCode::kTcamOverflow,
                     FaultSeverity::kCritical, "table full");
  changes.record(SimTime{150}, kFilter, ChangeAction::kAdd);
  scope[kFilter] = {kSw1};

  const auto causes =
      engine.correlate(std::vector<ObjectRef>{kFilter}, changes, faults,
                       scope);
  ASSERT_EQ(causes.size(), 1u);
  EXPECT_EQ(causes[0].type, RootCauseType::kTcamOverflow);
  EXPECT_EQ(causes[0].sw, kSw1);
  EXPECT_EQ(causes[0].object, kFilter);
}

TEST_F(CorrelationFixture, FaultClearedBeforeChangeDoesNotMatch) {
  const std::size_t idx =
      faults.raise(SimTime{100}, kSw1, FaultCode::kTcamOverflow,
                   FaultSeverity::kCritical, "table full");
  faults.clear(idx, SimTime{120});
  changes.record(SimTime{150}, kFilter, ChangeAction::kAdd);
  scope[kFilter] = {kSw1};

  const auto causes =
      engine.correlate(std::vector<ObjectRef>{kFilter}, changes, faults,
                       scope);
  ASSERT_EQ(causes.size(), 1u);
  EXPECT_EQ(causes[0].type, RootCauseType::kUnknown);
}

TEST_F(CorrelationFixture, FaultOutsideObjectScopeIgnored) {
  // The fault is on sw2, but the filter only deploys to sw1.
  (void)faults.raise(SimTime{100}, kSw2, FaultCode::kSwitchUnreachable,
                     FaultSeverity::kCritical, "down");
  changes.record(SimTime{150}, kFilter, ChangeAction::kAdd);
  scope[kFilter] = {kSw1};

  const auto causes =
      engine.correlate(std::vector<ObjectRef>{kFilter}, changes, faults,
                       scope);
  EXPECT_EQ(causes[0].type, RootCauseType::kUnknown);
}

TEST_F(CorrelationFixture, ObjectWithoutChangeRecordsIsUnknown) {
  (void)faults.raise(SimTime{100}, kSw1, FaultCode::kTcamOverflow,
                     FaultSeverity::kCritical, "table full");
  const auto causes =
      engine.correlate(std::vector<ObjectRef>{kFilter}, changes, faults,
                       scope);
  ASSERT_EQ(causes.size(), 1u);
  EXPECT_EQ(causes[0].type, RootCauseType::kUnknown);
  EXPECT_NE(causes[0].explanation.find("no change-log records"),
            std::string::npos);
}

TEST_F(CorrelationFixture, SwitchObjectMatchesItsOwnFaults) {
  (void)faults.raise(SimTime{100}, kSw1, FaultCode::kSwitchUnreachable,
                     FaultSeverity::kCritical, "keepalive lost");
  const ObjectRef sw_obj = ObjectRef::of(kSw1);
  const auto causes = engine.correlate(std::vector<ObjectRef>{sw_obj},
                                       changes, faults, scope);
  ASSERT_EQ(causes.size(), 1u);
  EXPECT_EQ(causes[0].type, RootCauseType::kSwitchUnreachable);
  EXPECT_EQ(causes[0].sw, kSw1);
}

TEST_F(CorrelationFixture, SwitchObjectWithNoFaultsIsUnknown) {
  const auto causes = engine.correlate(
      std::vector<ObjectRef>{ObjectRef::of(kSw2)}, changes, faults, scope);
  EXPECT_EQ(causes[0].type, RootCauseType::kUnknown);
}

TEST_F(CorrelationFixture, UnresponsiveSwitchSignature) {
  (void)faults.raise(SimTime{100}, kSw1, FaultCode::kSwitchUnreachable,
                     FaultSeverity::kCritical, "down");
  changes.record(SimTime{150}, kFilter, ChangeAction::kAdd);
  scope[kFilter] = {kSw1};
  const auto causes =
      engine.correlate(std::vector<ObjectRef>{kFilter}, changes, faults,
                       scope);
  EXPECT_EQ(causes[0].type, RootCauseType::kSwitchUnreachable);
}

TEST_F(CorrelationFixture, CustomSignatureExtendsEngine) {
  // A custom signature requiring critical severity for eviction.
  EventCorrelationEngine strict;
  // Default eviction signature matches at kInfo; replace engine behaviour
  // by adding a stricter one first won't help (first match wins), so build
  // an engine and verify the additive API at least matches new codes.
  strict.add_signature(FaultSignature{"custom", FaultCode::kRuleEviction,
                                      FaultSeverity::kInfo,
                                      RootCauseType::kRuleEviction});
  (void)faults.raise(SimTime{100}, kSw1, FaultCode::kRuleEviction,
                     FaultSeverity::kInfo, "evicted 3");
  changes.record(SimTime{150}, kFilter, ChangeAction::kAdd);
  scope[kFilter] = {kSw1};
  const auto causes =
      strict.correlate(std::vector<ObjectRef>{kFilter}, changes, faults,
                       scope);
  EXPECT_EQ(causes[0].type, RootCauseType::kRuleEviction);
}

TEST_F(CorrelationFixture, SeverityBelowSignatureMinimumIgnored) {
  EventCorrelationEngine picky;
  // Build an engine whose only overflow signature demands critical.
  // (Default engine's min severity is kWarning; test the filter by raising
  // an info-level overflow, which no signature accepts.)
  (void)faults.raise(SimTime{100}, kSw1, FaultCode::kTcamOverflow,
                     FaultSeverity::kInfo, "advisory");
  changes.record(SimTime{150}, kFilter, ChangeAction::kAdd);
  scope[kFilter] = {kSw1};
  const auto causes =
      picky.correlate(std::vector<ObjectRef>{kFilter}, changes, faults,
                      scope);
  EXPECT_EQ(causes[0].type, RootCauseType::kUnknown);
}

TEST_F(CorrelationFixture, MultipleObjectsEachGetACause) {
  const ObjectRef other = ObjectRef::of(ContractId{8});
  (void)faults.raise(SimTime{100}, kSw1, FaultCode::kTcamOverflow,
                     FaultSeverity::kCritical, "full");
  (void)faults.raise(SimTime{100}, kSw2, FaultCode::kAgentCrash,
                     FaultSeverity::kCritical, "crash");
  changes.record(SimTime{150}, kFilter, ChangeAction::kAdd);
  changes.record(SimTime{151}, other, ChangeAction::kModify);
  scope[kFilter] = {kSw1};
  scope[other] = {kSw2};

  const auto causes = engine.correlate(
      std::vector<ObjectRef>{kFilter, other}, changes, faults, scope);
  ASSERT_EQ(causes.size(), 2u);
  EXPECT_EQ(causes[0].type, RootCauseType::kTcamOverflow);
  EXPECT_EQ(causes[1].type, RootCauseType::kAgentCrash);
}

TEST(RootCauseType, Names) {
  EXPECT_EQ(to_string(RootCauseType::kTcamOverflow), "TCAM overflow");
  EXPECT_EQ(to_string(RootCauseType::kUnknown), "unknown");
}

}  // namespace
}  // namespace scout
