#include "src/controller/compiler.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "src/common/rng.h"
#include "src/policy/policy_index.h"
#include "src/tcam/tcam_table.h"
#include "src/workload/policy_generator.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

TEST(Compiler, ThreeTierS2MatchesFigureTwo) {
  // Figure 2: S2 (hosting App) carries 6 allow rules — both directions of
  // Web-App port 80 and of App-DB ports 80 and 700 — plus the final deny.
  const ThreeTierNetwork net = make_three_tier();
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  const auto& rules = compiled.rules_for(net.s2);
  ASSERT_EQ(rules.size(), 7u);

  const std::size_t allows = static_cast<std::size_t>(std::count_if(
      rules.begin(), rules.end(), [](const LogicalRule& lr) {
        return lr.rule.action == RuleAction::kAllow;
      }));
  EXPECT_EQ(allows, 6u);
  EXPECT_EQ(rules.back().rule.action, RuleAction::kDeny);
  EXPECT_EQ(rules.back().rule.priority, PolicyCompiler::kDefaultDenyPriority);
}

TEST(Compiler, EdgeSwitchesGetOnlyTheirPairs) {
  const ThreeTierNetwork net = make_three_tier();
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  // S1 hosts only Web: Web-App rules (2 allows) + deny.
  EXPECT_EQ(compiled.rules_for(net.s1).size(), 3u);
  // S3 hosts only DB: App-DB rules (4 allows) + deny.
  EXPECT_EQ(compiled.rules_for(net.s3).size(), 5u);
}

TEST(Compiler, RulesAreBidirectional) {
  const ThreeTierNetwork net = make_three_tier();
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  const auto& rules = compiled.rules_for(net.s1);
  bool fwd = false, rev = false;
  for (const LogicalRule& lr : rules) {
    if (lr.rule.action != RuleAction::kAllow) continue;
    if (lr.rule.src_epg.value == net.web.value()) fwd = true;
    if (lr.rule.dst_epg.value == net.web.value()) rev = true;
  }
  EXPECT_TRUE(fwd);
  EXPECT_TRUE(rev);
}

TEST(Compiler, PrioritiesStrictlyIncreasePerSwitch) {
  const ThreeTierNetwork net = make_three_tier();
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  for (const auto& [sw, rules] : compiled.per_switch) {
    for (std::size_t i = 1; i < rules.size(); ++i) {
      EXPECT_LT(rules[i - 1].rule.priority, rules[i].rule.priority);
    }
  }
}

TEST(Compiler, ProvenanceFieldsAreValid) {
  const ThreeTierNetwork net = make_three_tier();
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  for (const auto& [sw, rules] : compiled.per_switch) {
    for (const LogicalRule& lr : rules) {
      if (lr.rule.action == RuleAction::kDeny) continue;
      EXPECT_EQ(lr.prov.sw, sw);
      EXPECT_TRUE(lr.prov.vrf.valid());
      EXPECT_TRUE(lr.prov.contract.valid());
      EXPECT_TRUE(lr.prov.filter.valid());
      // The rule's fields encode the provenance objects.
      const EpgId src = lr.prov.reversed ? lr.prov.pair.b : lr.prov.pair.a;
      const EpgId dst = lr.prov.reversed ? lr.prov.pair.a : lr.prov.pair.b;
      EXPECT_EQ(lr.rule.src_epg.value, src.value());
      EXPECT_EQ(lr.rule.dst_epg.value, dst.value());
      EXPECT_EQ(lr.rule.vrf.value, lr.prov.vrf.value());
    }
  }
}

TEST(Compiler, PortRangeExpandsToMultipleRules) {
  ThreeTierNetwork net = make_three_tier();
  const FilterId range_filter = net.policy.add_filter(
      "ephemeral", {FilterEntry::allow_range(1000, 1999)});
  net.policy.add_filter_to_contract(net.web_app, range_filter);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  const auto& rules = compiled.rules_for(net.s1);
  const std::size_t range_rules = static_cast<std::size_t>(std::count_if(
      rules.begin(), rules.end(), [&](const LogicalRule& lr) {
        return lr.prov.filter == range_filter;
      }));
  // [1000, 1999] needs multiple prefix cubes, times 2 directions.
  EXPECT_GT(range_rules, 4u);
  EXPECT_EQ(range_rules % 2, 0u);
}

TEST(Compiler, DenyEntryProducesDenyRule) {
  ThreeTierNetwork net = make_three_tier();
  const FilterId deny_filter = net.policy.add_filter(
      "block-23", {FilterEntry{IpProtocol::kTcp, 23, 23, FilterAction::kDeny}});
  net.policy.add_filter_to_contract(net.web_app, deny_filter);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  const auto& rules = compiled.rules_for(net.s1);
  const bool has_deny = std::any_of(
      rules.begin(), rules.end(), [&](const LogicalRule& lr) {
        return lr.prov.filter == deny_filter &&
               lr.rule.action == RuleAction::kDeny;
      });
  EXPECT_TRUE(has_deny);
}

TEST(Compiler, ProtoAnyBecomesWildcardField) {
  ThreeTierNetwork net = make_three_tier();
  const FilterId any_filter = net.policy.add_filter(
      "all-protos",
      {FilterEntry{IpProtocol::kAny, 80, 80, FilterAction::kAllow}});
  net.policy.add_filter_to_contract(net.web_app, any_filter);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  for (const LogicalRule& lr : compiled.rules_for(net.s1)) {
    if (lr.prov.filter == any_filter) {
      EXPECT_EQ(lr.rule.proto.mask, 0u);
    }
  }
}

TEST(Compiler, CompiledRulesFitTcamAndLookupAllowsIntent) {
  const ThreeTierNetwork net = make_three_tier();
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  TcamTable tcam{4096};
  for (const LogicalRule& lr : compiled.rules_for(net.s2)) {
    ASSERT_EQ(tcam.install(lr.rule), InstallStatus::kOk);
  }
  const auto vrf = static_cast<std::uint16_t>(net.vrf.value());
  const auto web = static_cast<std::uint16_t>(net.web.value());
  const auto app = static_cast<std::uint16_t>(net.app.value());
  const auto db = static_cast<std::uint16_t>(net.db.value());
  // Intent (Figure 1a): Web<->App on 80; App<->DB on 80 and 700.
  EXPECT_EQ(tcam.lookup({vrf, web, app, 6, 80}), RuleAction::kAllow);
  EXPECT_EQ(tcam.lookup({vrf, app, web, 6, 80}), RuleAction::kAllow);
  EXPECT_EQ(tcam.lookup({vrf, app, db, 6, 700}), RuleAction::kAllow);
  EXPECT_EQ(tcam.lookup({vrf, db, app, 6, 700}), RuleAction::kAllow);
  // Whitelist: anything else is denied.
  EXPECT_EQ(tcam.lookup({vrf, web, db, 6, 80}), RuleAction::kDeny);
  EXPECT_EQ(tcam.lookup({vrf, web, app, 6, 443}), RuleAction::kDeny);
  EXPECT_EQ(tcam.lookup({vrf, app, db, 17, 700}), RuleAction::kDeny);
}

TEST(Compiler, GeneratedPolicyRulesLandOnHostingSwitchesOnly) {
  Rng rng{77};
  const GeneratedNetwork net =
      generate_network(GeneratorProfile::testbed(), rng);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  const PolicyIndex index{net.policy};

  for (const auto& [sw, rules] : compiled.per_switch) {
    for (const LogicalRule& lr : rules) {
      if (!lr.prov.contract.valid()) continue;
      const auto& switches = index.switches_of(lr.prov.pair);
      EXPECT_NE(std::find(switches.begin(), switches.end(), sw),
                switches.end())
          << "rule for pair landed on a switch hosting neither EPG";
    }
  }
}

TEST(Compiler, EveryPairSwitchComboHasRules) {
  Rng rng{78};
  const GeneratedNetwork net =
      generate_network(GeneratorProfile::testbed(), rng);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  const PolicyIndex index{net.policy};

  std::unordered_set<std::string> seen;
  for (const auto& [sw, rules] : compiled.per_switch) {
    for (const LogicalRule& lr : rules) {
      if (!lr.prov.contract.valid()) continue;
      seen.insert(std::to_string(sw.value()) + ":" +
                  std::to_string(lr.prov.pair.a.value()) + "-" +
                  std::to_string(lr.prov.pair.b.value()));
    }
  }
  std::size_t expected = 0;
  for (const EpgPair& pair : index.pairs()) {
    expected += index.switches_of(pair).size();
  }
  EXPECT_EQ(seen.size(), expected);
}

}  // namespace
}  // namespace scout
