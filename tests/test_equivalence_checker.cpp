#include "src/checker/equivalence_checker.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <vector>

#include "src/checker/packet_encoding.h"
#include "src/common/rng.h"
#include "src/controller/compiler.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

// Compile the 3-tier policy and return (L-rules, matching T-rules) for S2.
struct Deployed {
  std::vector<LogicalRule> logical;
  std::vector<TcamRule> tcam;
};

Deployed deploy_s2() {
  const ThreeTierNetwork net = make_three_tier();
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  Deployed d;
  d.logical = compiled.rules_for(net.s2);
  for (const LogicalRule& lr : d.logical) d.tcam.push_back(lr.rule);
  return d;
}

class CheckerModes : public ::testing::TestWithParam<CheckMode> {};

TEST_P(CheckerModes, CleanDeploymentIsEquivalent) {
  const Deployed d = deploy_s2();
  const EquivalenceChecker checker{GetParam()};
  const CheckResult result = checker.check(d.logical, d.tcam);
  EXPECT_TRUE(result.equivalent);
  EXPECT_TRUE(result.missing.empty());
}

TEST_P(CheckerModes, SingleMissingRuleIsReported) {
  Deployed d = deploy_s2();
  // Remove the first allow rule from the TCAM.
  const auto it = std::find_if(
      d.tcam.begin(), d.tcam.end(),
      [](const TcamRule& r) { return r.action == RuleAction::kAllow; });
  ASSERT_NE(it, d.tcam.end());
  const TcamRule removed = *it;
  d.tcam.erase(it);

  const EquivalenceChecker checker{GetParam()};
  const CheckResult result = checker.check(d.logical, d.tcam);
  EXPECT_FALSE(result.equivalent);
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_TRUE(result.missing[0].rule.same_match(removed));
  // Provenance identifies the affected pair and objects.
  EXPECT_TRUE(result.missing[0].prov.contract.valid());
}

TEST_P(CheckerModes, AllRulesMissingReportsEveryAllowRule) {
  Deployed d = deploy_s2();
  const std::size_t allow_count = static_cast<std::size_t>(
      std::count_if(d.logical.begin(), d.logical.end(),
                    [](const LogicalRule& lr) {
                      return lr.rule.action == RuleAction::kAllow;
                    }));
  d.tcam.clear();
  const EquivalenceChecker checker{GetParam()};
  const CheckResult result = checker.check(d.logical, d.tcam);
  EXPECT_FALSE(result.equivalent);
  EXPECT_EQ(result.missing.size(), allow_count);
}

TEST_P(CheckerModes, ExtraRuleDetected) {
  Deployed d = deploy_s2();
  const TcamRule stale = TcamRule::exact_allow(
      500, 3000, 99, 98, 6, TernaryField::exact(1234, FieldWidths::kPort));
  d.tcam.push_back(stale);
  const EquivalenceChecker checker{GetParam()};
  const CheckResult result = checker.check(d.logical, d.tcam);
  EXPECT_FALSE(result.equivalent);
  EXPECT_TRUE(result.missing.empty());
  EXPECT_GT(result.extra_packet_count, 0.0);
  ASSERT_EQ(result.extra_rules.size(), 1u);
  EXPECT_TRUE(result.extra_rules[0].same_match(stale));
}

TEST_P(CheckerModes, DuplicatedDeployedRuleIsNotExtra) {
  // A duplicate of a legitimate rule allows no packets beyond L. The BDD
  // mode correctly ignores it; the syntactic mode flags the surplus entry
  // (a real operational signal: duplicated TCAM entries waste space).
  Deployed d = deploy_s2();
  const auto it = std::find_if(
      d.tcam.begin(), d.tcam.end(),
      [](const TcamRule& r) { return r.action == RuleAction::kAllow; });
  ASSERT_NE(it, d.tcam.end());
  d.tcam.push_back(*it);
  const EquivalenceChecker checker{GetParam()};
  const CheckResult result = checker.check(d.logical, d.tcam);
  if (GetParam() == CheckMode::kExactBdd) {
    EXPECT_TRUE(result.equivalent);
    EXPECT_TRUE(result.extra_rules.empty());
  } else {
    EXPECT_FALSE(result.equivalent);
    EXPECT_EQ(result.extra_rules.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, CheckerModes,
                         ::testing::Values(CheckMode::kExactBdd,
                                           CheckMode::kSyntactic),
                         [](const auto& info) {
                           return info.param == CheckMode::kExactBdd
                                      ? "ExactBdd"
                                      : "Syntactic";
                         });

TEST(EquivalenceChecker, SyntacticIdenticalFastPath) {
  const Deployed d = deploy_s2();
  EXPECT_TRUE(EquivalenceChecker::syntactically_identical(d.logical, d.tcam));
  auto shuffled = d.tcam;
  std::rotate(shuffled.begin(), shuffled.begin() + 2, shuffled.end());
  EXPECT_TRUE(
      EquivalenceChecker::syntactically_identical(d.logical, shuffled));
}

TEST(EquivalenceChecker, SyntacticIdenticalRejectsMissingAndExtra) {
  Deployed d = deploy_s2();
  auto missing_one = d.tcam;
  missing_one.pop_back();
  EXPECT_FALSE(
      EquivalenceChecker::syntactically_identical(d.logical, missing_one));
  auto extra_one = d.tcam;
  extra_one.push_back(TcamRule::exact_allow(
      600, 1, 1, 1, 6, TernaryField::exact(1, FieldWidths::kPort)));
  EXPECT_FALSE(
      EquivalenceChecker::syntactically_identical(d.logical, extra_one));
}

// The semantic difference between modes: a missing rule whose packets are
// fully covered by another *present* rule is a syntactic diff but not a
// semantic one. The BDD mode must stay quiet; the syntactic mode reports it.
TEST(EquivalenceChecker, BddModeIgnoresShadowedMissingRule) {
  Deployed d = deploy_s2();
  // Add a broad allow rule to L and T that covers everything in the VRF
  // (id 0) between App(1) and DB(2) on any port...
  TcamRule broad;
  broad.priority = 400;
  broad.vrf = TernaryField::exact(0, FieldWidths::kVrf);
  broad.src_epg = TernaryField::exact(1, FieldWidths::kEpg);
  broad.dst_epg = TernaryField::exact(2, FieldWidths::kEpg);
  broad.proto = TernaryField::wildcard();
  broad.dst_port = TernaryField::wildcard();
  broad.action = RuleAction::kAllow;
  LogicalRule broad_lr;
  broad_lr.rule = broad;
  broad_lr.prov = d.logical.front().prov;
  d.logical.push_back(broad_lr);
  d.tcam.push_back(broad);

  // ...then drop the narrow App->DB port-80 rule from the TCAM only.
  const auto narrow = std::find_if(
      d.tcam.begin(), d.tcam.end(), [](const TcamRule& r) {
        return r.action == RuleAction::kAllow &&
               r.src_epg.value == 1 && r.dst_epg.value == 2 &&
               r.dst_port.value == 80;
      });
  ASSERT_NE(narrow, d.tcam.end());
  d.tcam.erase(narrow);

  const CheckResult bdd =
      EquivalenceChecker{CheckMode::kExactBdd}.check(d.logical, d.tcam);
  EXPECT_TRUE(bdd.equivalent) << "broad rule shadows the missing narrow one";

  const CheckResult syn =
      EquivalenceChecker{CheckMode::kSyntactic}.check(d.logical, d.tcam);
  EXPECT_FALSE(syn.equivalent);
  EXPECT_EQ(syn.missing.size(), 1u);
}

TEST(EquivalenceChecker, MissingPacketCountMatchesRuleWidth) {
  Deployed d = deploy_s2();
  // Drop one exact (single-packet) allow rule.
  const auto it = std::find_if(
      d.tcam.begin(), d.tcam.end(),
      [](const TcamRule& r) { return r.action == RuleAction::kAllow; });
  d.tcam.erase(it);
  const CheckResult result =
      EquivalenceChecker{CheckMode::kExactBdd}.check(d.logical, d.tcam);
  EXPECT_DOUBLE_EQ(result.missing_packet_count, 1.0);
  EXPECT_DOUBLE_EQ(result.extra_packet_count, 0.0);
}

TEST(EquivalenceChecker, EmptyBothSidesIsEquivalent) {
  const EquivalenceChecker checker{CheckMode::kExactBdd};
  const CheckResult result = checker.check({}, {});
  EXPECT_TRUE(result.equivalent);
}

// ---------------------------------------------------------------------------
// Differential: the engine rewrite against a textbook reference
// ---------------------------------------------------------------------------
//
// A deliberately naive map-based ROBDD without complement edges — the old
// engine's semantics, reimplemented independently so the rewritten
// complement-edge engine is checked against a reference build of the
// result, not against itself.
class RefBdd {
 public:
  explicit RefBdd(std::uint32_t var_count) : var_count_(var_count) {
    nodes_.push_back({var_count, 0, 0});  // 0 = false
    nodes_.push_back({var_count, 1, 1});  // 1 = true
  }

  std::uint32_t apply_and(std::uint32_t a, std::uint32_t b) {
    return apply(0, a, b);
  }
  std::uint32_t apply_or(std::uint32_t a, std::uint32_t b) {
    return apply(1, a, b);
  }
  std::uint32_t negate(std::uint32_t a) {
    if (a <= 1) return 1 - a;
    const auto key = std::tuple{2, a, 0U};
    if (const auto it = op_memo_.find(key); it != op_memo_.end()) {
      return it->second;
    }
    const Node n = nodes_[a];
    const std::uint32_t r = mk(n.var, negate(n.low), negate(n.high));
    op_memo_[key] = r;
    return r;
  }
  std::uint32_t ite(std::uint32_t f, std::uint32_t g, std::uint32_t h) {
    return apply_or(apply_and(f, g), apply_and(negate(f), h));
  }
  std::uint32_t cube(BddCube literals) {
    std::sort(literals.begin(), literals.end(),
              [](const BddLiteral& a, const BddLiteral& b) {
                return a.var > b.var;
              });
    std::uint32_t acc = 1;
    for (const auto& lit : literals) {
      acc = lit.positive ? mk(lit.var, 0, acc) : mk(lit.var, acc, 0);
    }
    return acc;
  }
  std::uint32_t ruleset(std::span<const TcamRule> rules) {
    std::vector<std::size_t> order(rules.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&rules](std::size_t a, std::size_t b) {
                       return rules[a].priority > rules[b].priority;
                     });
    std::uint32_t acc = 0;
    for (const std::size_t idx : order) {
      const std::uint32_t match = cube(rule_to_cube(rules[idx]));
      acc = ite(match, rules[idx].action == RuleAction::kAllow ? 1U : 0U,
                acc);
    }
    return acc;
  }
  bool intersects(std::uint32_t f, const BddCube& partial) {
    std::vector<std::int8_t> phase(var_count_, -1);
    for (const auto& lit : partial) phase[lit.var] = lit.positive ? 1 : 0;
    std::vector<std::uint32_t> stack{f};
    std::map<std::uint32_t, bool> seen;
    while (!stack.empty()) {
      const std::uint32_t cur = stack.back();
      stack.pop_back();
      if (cur == 1) return true;
      if (cur == 0 || seen[cur]) continue;
      seen[cur] = true;
      const Node& n = nodes_[cur];
      if (phase[n.var] != 1) stack.push_back(n.low);
      if (phase[n.var] != 0) stack.push_back(n.high);
    }
    return false;
  }
  double sat_count(std::uint32_t f) {
    std::map<std::uint32_t, double> memo;
    const auto rec = [&](auto&& self, std::uint32_t r) -> double {
      if (r == 0) return 0.0;
      if (r == 1) return 1.0;
      if (const auto it = memo.find(r); it != memo.end()) return it->second;
      const Node& n = nodes_[r];
      const double lo =
          self(self, n.low) *
          std::pow(2.0, static_cast<double>(nodes_[n.low].var - n.var - 1));
      const double hi =
          self(self, n.high) *
          std::pow(2.0, static_cast<double>(nodes_[n.high].var - n.var - 1));
      memo[r] = lo + hi;
      return lo + hi;
    };
    const std::uint32_t top = f <= 1 ? var_count_ : nodes_[f].var;
    return rec(rec, f) * std::pow(2.0, static_cast<double>(top));
  }

 private:
  struct Node {
    std::uint32_t var, low, high;
  };

  std::uint32_t mk(std::uint32_t v, std::uint32_t lo, std::uint32_t hi) {
    if (lo == hi) return lo;
    const auto key = std::tuple{v, lo, hi};
    if (const auto it = unique_.find(key); it != unique_.end()) {
      return it->second;
    }
    nodes_.push_back({v, lo, hi});
    const auto r = static_cast<std::uint32_t>(nodes_.size() - 1);
    unique_[key] = r;
    return r;
  }
  std::uint32_t apply(int op, std::uint32_t a, std::uint32_t b) {
    if (op == 0) {
      if (a == 0 || b == 0) return 0;
      if (a == 1) return b;
      if (b == 1) return a;
    } else {
      if (a == 1 || b == 1) return 1;
      if (a == 0) return b;
      if (b == 0) return a;
    }
    if (a == b) return a;
    if (a > b) std::swap(a, b);
    const auto key = std::tuple{op, a, b};
    if (const auto it = op_memo_.find(key); it != op_memo_.end()) {
      return it->second;
    }
    const Node na = nodes_[a];
    const Node nb = nodes_[b];
    const std::uint32_t v = std::min(na.var, nb.var);
    const std::uint32_t a_lo = na.var == v ? na.low : a;
    const std::uint32_t a_hi = na.var == v ? na.high : a;
    const std::uint32_t b_lo = nb.var == v ? nb.low : b;
    const std::uint32_t b_hi = nb.var == v ? nb.high : b;
    const std::uint32_t r =
        mk(v, apply(op, a_lo, b_lo), apply(op, a_hi, b_hi));
    op_memo_[key] = r;
    return r;
  }

  std::uint32_t var_count_;
  std::vector<Node> nodes_;
  std::map<std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>,
           std::uint32_t>
      unique_;
  std::map<std::tuple<int, std::uint32_t, std::uint32_t>, std::uint32_t>
      op_memo_;
};

// The old check_bdd result, computed through the reference engine.
struct RefCheck {
  bool equivalent = true;
  std::vector<std::size_t> missing_idx;
  std::vector<std::size_t> extra_idx;
  double missing_count = 0.0;
  double extra_count = 0.0;
};

RefCheck ref_check(std::span<const LogicalRule> logical,
                   std::span<const TcamRule> deployed) {
  RefBdd bdd{PacketVars::kCount};
  std::vector<TcamRule> l_rules;
  for (const auto& lr : logical) l_rules.push_back(lr.rule);
  const std::uint32_t l = bdd.ruleset(l_rules);
  const std::uint32_t t = bdd.ruleset(deployed);
  RefCheck out;
  if (l == t) return out;
  out.equivalent = false;
  const std::uint32_t missing_space = bdd.apply_and(l, bdd.negate(t));
  const std::uint32_t extra_space = bdd.apply_and(t, bdd.negate(l));
  out.missing_count = bdd.sat_count(missing_space);
  out.extra_count = bdd.sat_count(extra_space);
  for (std::size_t i = 0; i < logical.size(); ++i) {
    if (logical[i].rule.action != RuleAction::kAllow) continue;
    if (bdd.intersects(missing_space, rule_to_cube(logical[i].rule))) {
      out.missing_idx.push_back(i);
    }
  }
  for (std::size_t i = 0; i < deployed.size(); ++i) {
    if (deployed[i].action != RuleAction::kAllow) continue;
    if (bdd.intersects(extra_space, rule_to_cube(deployed[i]))) {
      out.extra_idx.push_back(i);
    }
  }
  return out;
}

// Random overlapping rulesets: exact and wildcarded fields, mixed actions,
// then a perturbed deployment (dropped, duplicated and stale rules).
struct RandomDeployment {
  std::vector<LogicalRule> logical;
  std::vector<TcamRule> deployed;
};

RandomDeployment random_deployment(std::uint64_t seed) {
  Rng rng{seed};
  RandomDeployment d;
  const std::size_t n = 24 + rng.below(24);
  for (std::size_t i = 0; i < n; ++i) {
    TcamRule r;
    r.priority = static_cast<std::uint32_t>(i);
    r.vrf = TernaryField::exact(static_cast<std::uint32_t>(rng.below(2)),
                                FieldWidths::kVrf);
    r.src_epg = rng.chance(0.15)
                    ? TernaryField::wildcard()
                    : TernaryField::exact(
                          static_cast<std::uint32_t>(rng.below(6)),
                          FieldWidths::kEpg);
    r.dst_epg = rng.chance(0.15)
                    ? TernaryField::wildcard()
                    : TernaryField::exact(
                          static_cast<std::uint32_t>(rng.below(6)),
                          FieldWidths::kEpg);
    r.proto = TernaryField::exact(6, FieldWidths::kProto);
    r.dst_port = rng.chance(0.3)
                     ? TernaryField::wildcard()
                     : TernaryField::exact(
                           static_cast<std::uint32_t>(rng.below(8)),
                           FieldWidths::kPort);
    r.action = rng.chance(0.8) ? RuleAction::kAllow : RuleAction::kDeny;
    LogicalRule lr;
    lr.rule = r;
    lr.prov.sw = SwitchId{1};
    lr.prov.contract = ContractId{static_cast<std::uint32_t>(i + 1)};
    d.logical.push_back(lr);
    if (!rng.chance(0.15)) d.deployed.push_back(r);  // 15%: dropped
    if (rng.chance(0.1)) d.deployed.push_back(r);    // 10%: duplicated
  }
  // Stale device-only rules.
  for (std::size_t i = 0; i < 3; ++i) {
    TcamRule stale;
    stale.priority = 1000 + static_cast<std::uint32_t>(i);
    stale.vrf = TernaryField::exact(3, FieldWidths::kVrf);
    stale.src_epg = TernaryField::exact(
        static_cast<std::uint32_t>(40 + rng.below(4)), FieldWidths::kEpg);
    stale.dst_epg = TernaryField::exact(50, FieldWidths::kEpg);
    stale.proto = TernaryField::exact(6, FieldWidths::kProto);
    stale.dst_port = TernaryField::wildcard();
    stale.action = RuleAction::kAllow;
    d.deployed.push_back(stale);
  }
  d.logical.push_back(LogicalRule{TcamRule::default_deny(0xFFFFFFFF), {}});
  d.deployed.push_back(TcamRule::default_deny(0xFFFFFFFF));
  return d;
}

class CheckerDifferential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckerDifferential, NewEngineMatchesReferenceSemantics) {
  const RandomDeployment d = random_deployment(GetParam());
  const RefCheck ref = ref_check(d.logical, d.deployed);
  const CheckResult got =
      EquivalenceChecker{CheckMode::kExactBdd}.check(d.logical, d.deployed);

  EXPECT_EQ(got.equivalent, ref.equivalent);
  ASSERT_EQ(got.missing.size(), ref.missing_idx.size());
  for (std::size_t i = 0; i < ref.missing_idx.size(); ++i) {
    EXPECT_EQ(got.missing[i].rule, d.logical[ref.missing_idx[i]].rule);
  }
  ASSERT_EQ(got.extra_rules.size(), ref.extra_idx.size());
  for (std::size_t i = 0; i < ref.extra_idx.size(); ++i) {
    EXPECT_EQ(got.extra_rules[i], d.deployed[ref.extra_idx[i]]);
  }
  // Counts can exceed 2^53 (68-variable space): compare with a relative
  // tolerance, the two engines order their float sums differently.
  EXPECT_NEAR(got.missing_packet_count, ref.missing_count,
              1e-9 * std::max(1.0, ref.missing_count));
  EXPECT_NEAR(got.extra_packet_count, ref.extra_count,
              1e-9 * std::max(1.0, ref.extra_count));
}

TEST_P(CheckerDifferential, CachedArenaCheckIsBitIdenticalToFresh) {
  const RandomDeployment d = random_deployment(GetParam());
  const EquivalenceChecker checker{CheckMode::kExactBdd};
  const CheckResult fresh = checker.check(d.logical, d.deployed);

  LogicalBddCache cache{1};
  EquivalenceChecker::BddCheckContext ctx;
  ctx.cache = &cache;
  ctx.worker = 0;
  ctx.sw = SwitchId{1};
  ctx.key = 7;

  // Repeated checks reuse the resident logical BDD; every repetition must
  // reproduce the fresh result field for field (exact doubles included —
  // same canonical DAG, same traversal order).
  for (int rep = 0; rep < 3; ++rep) {
    const CheckResult cached = checker.check(d.logical, d.deployed, &ctx);
    EXPECT_EQ(cached.equivalent, fresh.equivalent);
    ASSERT_EQ(cached.missing.size(), fresh.missing.size());
    for (std::size_t i = 0; i < fresh.missing.size(); ++i) {
      EXPECT_EQ(cached.missing[i].rule, fresh.missing[i].rule);
    }
    ASSERT_EQ(cached.extra_rules.size(), fresh.extra_rules.size());
    for (std::size_t i = 0; i < fresh.extra_rules.size(); ++i) {
      EXPECT_EQ(cached.extra_rules[i], fresh.extra_rules[i]);
    }
    EXPECT_EQ(cached.missing_packet_count, fresh.missing_packet_count);
    EXPECT_EQ(cached.extra_packet_count, fresh.extra_packet_count);
    EXPECT_EQ(cached.l_dag_size, fresh.l_dag_size);
    EXPECT_EQ(cached.t_dag_size, fresh.t_dag_size);
  }
  const LogicalBddCache::Stats stats = cache.stats();
  if (!fresh.equivalent) {  // equivalent multisets short-circuit before BDD
    EXPECT_EQ(stats.logical_builds, 1u);
    EXPECT_EQ(stats.logical_hits, 2u);
    // Every check rolls its T-BDD region back (a no-op rollback — the T
    // nodes all resident already — is possible but not counted).
    EXPECT_LE(stats.rollbacks, 3u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerDifferential,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(LogicalBddCache, KeyChangeDropsResidentArena) {
  const RandomDeployment d1 = random_deployment(5);
  const RandomDeployment d2 = random_deployment(6);
  const EquivalenceChecker checker{CheckMode::kExactBdd};

  LogicalBddCache cache{1};
  EquivalenceChecker::BddCheckContext ctx;
  ctx.cache = &cache;
  ctx.sw = SwitchId{1};

  ctx.key = 1;  // epoch 1: d1's compiled rules
  const CheckResult r1 = checker.check(d1.logical, d1.deployed, &ctx);
  ctx.key = 2;  // "recompile": same switch id, different logical rules
  const CheckResult r2 = checker.check(d2.logical, d2.deployed, &ctx);

  // The arena was replaced, not reused: the second result must equal a
  // fresh check of d2, not anything derived from d1's logical BDD.
  const CheckResult fresh2 =
      checker.check(d2.logical, d2.deployed);
  EXPECT_EQ(r2.equivalent, fresh2.equivalent);
  EXPECT_EQ(r2.missing.size(), fresh2.missing.size());
  EXPECT_EQ(r2.missing_packet_count, fresh2.missing_packet_count);
  EXPECT_EQ(cache.stats().arena_builds, 2u);
  (void)r1;
}

}  // namespace
}  // namespace scout
