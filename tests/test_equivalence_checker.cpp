#include "src/checker/equivalence_checker.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/controller/compiler.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

// Compile the 3-tier policy and return (L-rules, matching T-rules) for S2.
struct Deployed {
  std::vector<LogicalRule> logical;
  std::vector<TcamRule> tcam;
};

Deployed deploy_s2() {
  const ThreeTierNetwork net = make_three_tier();
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  Deployed d;
  d.logical = compiled.rules_for(net.s2);
  for (const LogicalRule& lr : d.logical) d.tcam.push_back(lr.rule);
  return d;
}

class CheckerModes : public ::testing::TestWithParam<CheckMode> {};

TEST_P(CheckerModes, CleanDeploymentIsEquivalent) {
  const Deployed d = deploy_s2();
  const EquivalenceChecker checker{GetParam()};
  const CheckResult result = checker.check(d.logical, d.tcam);
  EXPECT_TRUE(result.equivalent);
  EXPECT_TRUE(result.missing.empty());
}

TEST_P(CheckerModes, SingleMissingRuleIsReported) {
  Deployed d = deploy_s2();
  // Remove the first allow rule from the TCAM.
  const auto it = std::find_if(
      d.tcam.begin(), d.tcam.end(),
      [](const TcamRule& r) { return r.action == RuleAction::kAllow; });
  ASSERT_NE(it, d.tcam.end());
  const TcamRule removed = *it;
  d.tcam.erase(it);

  const EquivalenceChecker checker{GetParam()};
  const CheckResult result = checker.check(d.logical, d.tcam);
  EXPECT_FALSE(result.equivalent);
  ASSERT_EQ(result.missing.size(), 1u);
  EXPECT_TRUE(result.missing[0].rule.same_match(removed));
  // Provenance identifies the affected pair and objects.
  EXPECT_TRUE(result.missing[0].prov.contract.valid());
}

TEST_P(CheckerModes, AllRulesMissingReportsEveryAllowRule) {
  Deployed d = deploy_s2();
  const std::size_t allow_count = static_cast<std::size_t>(
      std::count_if(d.logical.begin(), d.logical.end(),
                    [](const LogicalRule& lr) {
                      return lr.rule.action == RuleAction::kAllow;
                    }));
  d.tcam.clear();
  const EquivalenceChecker checker{GetParam()};
  const CheckResult result = checker.check(d.logical, d.tcam);
  EXPECT_FALSE(result.equivalent);
  EXPECT_EQ(result.missing.size(), allow_count);
}

TEST_P(CheckerModes, ExtraRuleDetected) {
  Deployed d = deploy_s2();
  const TcamRule stale = TcamRule::exact_allow(
      500, 3000, 99, 98, 6, TernaryField::exact(1234, FieldWidths::kPort));
  d.tcam.push_back(stale);
  const EquivalenceChecker checker{GetParam()};
  const CheckResult result = checker.check(d.logical, d.tcam);
  EXPECT_FALSE(result.equivalent);
  EXPECT_TRUE(result.missing.empty());
  EXPECT_GT(result.extra_packet_count, 0.0);
  ASSERT_EQ(result.extra_rules.size(), 1u);
  EXPECT_TRUE(result.extra_rules[0].same_match(stale));
}

TEST_P(CheckerModes, DuplicatedDeployedRuleIsNotExtra) {
  // A duplicate of a legitimate rule allows no packets beyond L. The BDD
  // mode correctly ignores it; the syntactic mode flags the surplus entry
  // (a real operational signal: duplicated TCAM entries waste space).
  Deployed d = deploy_s2();
  const auto it = std::find_if(
      d.tcam.begin(), d.tcam.end(),
      [](const TcamRule& r) { return r.action == RuleAction::kAllow; });
  ASSERT_NE(it, d.tcam.end());
  d.tcam.push_back(*it);
  const EquivalenceChecker checker{GetParam()};
  const CheckResult result = checker.check(d.logical, d.tcam);
  if (GetParam() == CheckMode::kExactBdd) {
    EXPECT_TRUE(result.equivalent);
    EXPECT_TRUE(result.extra_rules.empty());
  } else {
    EXPECT_FALSE(result.equivalent);
    EXPECT_EQ(result.extra_rules.size(), 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, CheckerModes,
                         ::testing::Values(CheckMode::kExactBdd,
                                           CheckMode::kSyntactic),
                         [](const auto& info) {
                           return info.param == CheckMode::kExactBdd
                                      ? "ExactBdd"
                                      : "Syntactic";
                         });

TEST(EquivalenceChecker, SyntacticIdenticalFastPath) {
  const Deployed d = deploy_s2();
  EXPECT_TRUE(EquivalenceChecker::syntactically_identical(d.logical, d.tcam));
  auto shuffled = d.tcam;
  std::rotate(shuffled.begin(), shuffled.begin() + 2, shuffled.end());
  EXPECT_TRUE(
      EquivalenceChecker::syntactically_identical(d.logical, shuffled));
}

TEST(EquivalenceChecker, SyntacticIdenticalRejectsMissingAndExtra) {
  Deployed d = deploy_s2();
  auto missing_one = d.tcam;
  missing_one.pop_back();
  EXPECT_FALSE(
      EquivalenceChecker::syntactically_identical(d.logical, missing_one));
  auto extra_one = d.tcam;
  extra_one.push_back(TcamRule::exact_allow(
      600, 1, 1, 1, 6, TernaryField::exact(1, FieldWidths::kPort)));
  EXPECT_FALSE(
      EquivalenceChecker::syntactically_identical(d.logical, extra_one));
}

// The semantic difference between modes: a missing rule whose packets are
// fully covered by another *present* rule is a syntactic diff but not a
// semantic one. The BDD mode must stay quiet; the syntactic mode reports it.
TEST(EquivalenceChecker, BddModeIgnoresShadowedMissingRule) {
  Deployed d = deploy_s2();
  // Add a broad allow rule to L and T that covers everything in the VRF
  // (id 0) between App(1) and DB(2) on any port...
  TcamRule broad;
  broad.priority = 400;
  broad.vrf = TernaryField::exact(0, FieldWidths::kVrf);
  broad.src_epg = TernaryField::exact(1, FieldWidths::kEpg);
  broad.dst_epg = TernaryField::exact(2, FieldWidths::kEpg);
  broad.proto = TernaryField::wildcard();
  broad.dst_port = TernaryField::wildcard();
  broad.action = RuleAction::kAllow;
  LogicalRule broad_lr;
  broad_lr.rule = broad;
  broad_lr.prov = d.logical.front().prov;
  d.logical.push_back(broad_lr);
  d.tcam.push_back(broad);

  // ...then drop the narrow App->DB port-80 rule from the TCAM only.
  const auto narrow = std::find_if(
      d.tcam.begin(), d.tcam.end(), [](const TcamRule& r) {
        return r.action == RuleAction::kAllow &&
               r.src_epg.value == 1 && r.dst_epg.value == 2 &&
               r.dst_port.value == 80;
      });
  ASSERT_NE(narrow, d.tcam.end());
  d.tcam.erase(narrow);

  const CheckResult bdd =
      EquivalenceChecker{CheckMode::kExactBdd}.check(d.logical, d.tcam);
  EXPECT_TRUE(bdd.equivalent) << "broad rule shadows the missing narrow one";

  const CheckResult syn =
      EquivalenceChecker{CheckMode::kSyntactic}.check(d.logical, d.tcam);
  EXPECT_FALSE(syn.equivalent);
  EXPECT_EQ(syn.missing.size(), 1u);
}

TEST(EquivalenceChecker, MissingPacketCountMatchesRuleWidth) {
  Deployed d = deploy_s2();
  // Drop one exact (single-packet) allow rule.
  const auto it = std::find_if(
      d.tcam.begin(), d.tcam.end(),
      [](const TcamRule& r) { return r.action == RuleAction::kAllow; });
  d.tcam.erase(it);
  const CheckResult result =
      EquivalenceChecker{CheckMode::kExactBdd}.check(d.logical, d.tcam);
  EXPECT_DOUBLE_EQ(result.missing_packet_count, 1.0);
  EXPECT_DOUBLE_EQ(result.extra_packet_count, 0.0);
}

TEST(EquivalenceChecker, EmptyBothSidesIsEquivalent) {
  const EquivalenceChecker checker{CheckMode::kExactBdd};
  const CheckResult result = checker.check({}, {});
  EXPECT_TRUE(result.equivalent);
}

}  // namespace
}  // namespace scout
