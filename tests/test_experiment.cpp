// Sanity tests over the experiment drivers: small-scale versions of the
// paper's sweeps, pinning the qualitative results (SCOUT recall beats
// SCORE-1; γ small; scalability point structure sane).
#include "src/scout/experiment.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

AccuracyOptions small_options(RiskModelKind model) {
  AccuracyOptions opts;
  opts.profile = GeneratorProfile::testbed();
  opts.model = model;
  opts.runs = 5;
  opts.max_faults = 4;
  opts.benign_changes = 5;
  opts.seed = 7;
  return opts;
}

const std::vector<AlgorithmSpec> kAlgorithms{
    {"SCOUT", AlgorithmKind::kScout, 1.0, true},
    {"SCORE-1", AlgorithmKind::kScore, 1.0, true},
    {"SCORE-0.6", AlgorithmKind::kScore, 0.6, true},
};

TEST(Experiment, AccuracySweepShapesAndBounds) {
  const auto series =
      run_accuracy_sweep(small_options(RiskModelKind::kController),
                         kAlgorithms);
  ASSERT_EQ(series.size(), 3u);
  for (const AccuracySeries& s : series) {
    ASSERT_EQ(s.by_faults.size(), 4u);
    for (const AccuracyCell& cell : s.by_faults) {
      EXPECT_GE(cell.precision, 0.0);
      EXPECT_LE(cell.precision, 1.0);
      EXPECT_GE(cell.recall, 0.0);
      EXPECT_LE(cell.recall, 1.0);
    }
  }
}

TEST(Experiment, ScoutRecallAtLeastScore1) {
  // SCOUT = SCORE-1 stage 1 + change-log stage: its recall can only be
  // higher or equal, at every fault count (the paper's headline claim).
  const auto series =
      run_accuracy_sweep(small_options(RiskModelKind::kController),
                         kAlgorithms);
  const AccuracySeries& scout_series = series[0];
  const AccuracySeries& score1 = series[1];
  for (std::size_t f = 0; f < scout_series.by_faults.size(); ++f) {
    EXPECT_GE(scout_series.by_faults[f].recall + 1e-9,
              score1.by_faults[f].recall)
        << "faults=" << f + 1;
  }
  // And strictly better somewhere (partial faults exist with prob ~0.5).
  double scout_total = 0, score_total = 0;
  for (std::size_t f = 0; f < scout_series.by_faults.size(); ++f) {
    scout_total += scout_series.by_faults[f].recall;
    score_total += score1.by_faults[f].recall;
  }
  EXPECT_GT(scout_total, score_total);
}

TEST(Experiment, SwitchModelSweepRuns) {
  const auto series = run_accuracy_sweep(
      small_options(RiskModelKind::kSwitch), kAlgorithms);
  ASSERT_EQ(series.size(), 3u);
  // SCOUT's recall should be solid on the switch model too.
  double mean_recall = 0;
  for (const AccuracyCell& cell : series[0].by_faults) {
    mean_recall += cell.recall;
  }
  mean_recall /= static_cast<double>(series[0].by_faults.size());
  EXPECT_GT(mean_recall, 0.5);
}

TEST(Experiment, GammaExperimentProducesSmallRatios) {
  GammaOptions opts;
  opts.profile = GeneratorProfile::testbed();
  opts.faults = 60;
  opts.seed = 3;
  opts.bucket_bounds = {10, 20, 40, 60};
  const auto buckets = run_gamma_experiment(opts);
  ASSERT_EQ(buckets.size(), 4u);

  std::size_t total_samples = 0;
  for (const GammaBucket& b : buckets) {
    total_samples += b.samples;
    if (b.samples > 0) {
      EXPECT_GT(b.mean_gamma, 0.0);
      EXPECT_LE(b.mean_gamma, 1.0);
    }
  }
  EXPECT_GT(total_samples, 0u);
}

TEST(Experiment, ScalabilityPointIsComplete) {
  const ScalePoint point = run_scalability_point(
      /*switches=*/10, /*seed=*/5, /*n_faults=*/3, /*pairs_per_switch=*/30);
  EXPECT_EQ(point.switches, 10u);
  EXPECT_GT(point.epg_pairs, 0u);
  EXPECT_GT(point.elements, 0u);
  EXPECT_GT(point.risks, 0u);
  EXPECT_GT(point.edges, point.elements);
  EXPECT_GE(point.model_build_seconds, 0.0);
  EXPECT_GE(point.localize_seconds, 0.0);
}

TEST(Experiment, ScalabilityElementsGrowWithSwitches) {
  const ScalePoint small = run_scalability_point(5, 5, 2, 30);
  const ScalePoint large = run_scalability_point(20, 5, 2, 30);
  EXPECT_GT(large.elements, small.elements);
  EXPECT_GT(large.edges, small.edges);
}

}  // namespace
}  // namespace scout
