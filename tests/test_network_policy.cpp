#include "src/policy/network_policy.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/workload/three_tier.h"

namespace scout {
namespace {

TEST(NetworkPolicy, ThreeTierCounts) {
  const ThreeTierNetwork net = make_three_tier();
  const auto c = net.policy.counts();
  EXPECT_EQ(c.tenants, 1u);
  EXPECT_EQ(c.vrfs, 1u);
  EXPECT_EQ(c.epgs, 3u);
  EXPECT_EQ(c.endpoints, 3u);
  EXPECT_EQ(c.contracts, 2u);
  EXPECT_EQ(c.filters, 2u);
  EXPECT_EQ(c.links, 2u);
}

TEST(NetworkPolicy, ThreeTierValidates) {
  const ThreeTierNetwork net = make_three_tier();
  EXPECT_TRUE(net.policy.validate().empty());
}

TEST(NetworkPolicy, EpgPairsAreCanonicalAndDeduped) {
  ThreeTierNetwork net = make_three_tier();
  // Add the reverse link; pair set must not grow.
  net.policy.link(net.app, net.web, net.web_app);
  const auto pairs = net.policy.epg_pairs();
  EXPECT_EQ(pairs.size(), 2u);
  for (const EpgPair& p : pairs) EXPECT_LE(p.a.value(), p.b.value());
}

TEST(NetworkPolicy, ContractsBetweenFindsEitherDirection) {
  const ThreeTierNetwork net = make_three_tier();
  const auto c1 = net.policy.contracts_between({net.web, net.app});
  const auto c2 = net.policy.contracts_between({net.app, net.web});
  ASSERT_EQ(c1.size(), 1u);
  EXPECT_EQ(c1, c2);
  EXPECT_EQ(c1[0], net.web_app);
}

TEST(NetworkPolicy, ObjectsForPairListsAllSharedRisks) {
  const ThreeTierNetwork net = make_three_tier();
  const auto objs = net.policy.objects_for_pair({net.app, net.db});
  // VRF, 2 EPGs, 1 contract, 2 filters = 6 objects (paper §III example).
  EXPECT_EQ(objs.size(), 6u);
  auto has = [&objs](ObjectRef r) {
    return std::find(objs.begin(), objs.end(), r) != objs.end();
  };
  EXPECT_TRUE(has(ObjectRef::of(net.vrf)));
  EXPECT_TRUE(has(ObjectRef::of(net.app)));
  EXPECT_TRUE(has(ObjectRef::of(net.db)));
  EXPECT_TRUE(has(ObjectRef::of(net.app_db)));
  EXPECT_TRUE(has(ObjectRef::of(net.port80)));
  EXPECT_TRUE(has(ObjectRef::of(net.port700)));
  EXPECT_FALSE(has(ObjectRef::of(net.web_app)));
}

TEST(NetworkPolicy, SwitchesForPairIsUnionOfHosts) {
  const ThreeTierNetwork net = make_three_tier();
  const auto switches = net.policy.switches_for_pair({net.web, net.app});
  EXPECT_EQ(switches, (std::vector<SwitchId>{net.s1, net.s2}));
}

TEST(NetworkPolicy, EpgPairsOnSwitchSeesBothPairsAtS2) {
  const ThreeTierNetwork net = make_three_tier();
  // S2 hosts App, which participates in both pairs.
  EXPECT_EQ(net.policy.epg_pairs_on_switch(net.s2).size(), 2u);
  EXPECT_EQ(net.policy.epg_pairs_on_switch(net.s1).size(), 1u);
}

TEST(NetworkPolicy, UnlinkRemovesPair) {
  ThreeTierNetwork net = make_three_tier();
  net.policy.unlink(net.web, net.app, net.web_app);
  EXPECT_EQ(net.policy.epg_pairs().size(), 1u);
}

TEST(NetworkPolicy, AddFilterToContractIsIdempotent) {
  ThreeTierNetwork net = make_three_tier();
  net.policy.add_filter_to_contract(net.web_app, net.port700);
  net.policy.add_filter_to_contract(net.web_app, net.port700);
  EXPECT_EQ(net.policy.contract(net.web_app).filters.size(), 2u);
}

TEST(NetworkPolicy, RemoveFilterFromContract) {
  ThreeTierNetwork net = make_three_tier();
  net.policy.remove_filter_from_contract(net.app_db, net.port700);
  EXPECT_EQ(net.policy.contract(net.app_db).filters,
            std::vector<FilterId>{net.port80});
}

TEST(NetworkPolicy, ValidationCatchesEmptyContract) {
  ThreeTierNetwork net = make_three_tier();
  net.policy.remove_filter_from_contract(net.web_app, net.port80);
  const auto violations = net.policy.validate();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("no filters"), std::string::npos);
}

TEST(NetworkPolicy, ValidationCatchesCrossVrfLink) {
  ThreeTierNetwork net = make_three_tier();
  const VrfId other = net.policy.add_vrf("other", TenantId{0});
  const EpgId alien = net.policy.add_epg("alien", other);
  net.policy.link(net.web, alien, net.web_app);
  const auto violations = net.policy.validate();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("crosses VRFs"), std::string::npos);
}

TEST(NetworkPolicy, ValidationCatchesBadPortRange) {
  ThreeTierNetwork net = make_three_tier();
  net.policy.add_entry_to_filter(net.port80,
                                 FilterEntry{IpProtocol::kTcp, 90, 10,
                                             FilterAction::kAllow});
  EXPECT_FALSE(net.policy.validate().empty());
}

TEST(NetworkPolicy, LookupThrowsOnBadId) {
  const ThreeTierNetwork net = make_three_tier();
  EXPECT_THROW((void)net.policy.epg(EpgId{99}), std::out_of_range);
  EXPECT_THROW((void)net.policy.filter(FilterId{99}), std::out_of_range);
  EXPECT_THROW((void)net.policy.contract(ContractId{99}), std::out_of_range);
  EXPECT_THROW((void)net.policy.vrf(VrfId{99}), std::out_of_range);
}

TEST(NetworkPolicy, AddEndpointRegistersInEpg) {
  ThreeTierNetwork net = make_three_tier();
  const EndpointId ep =
      net.policy.add_endpoint("EP4", net.web, net.s3);
  const auto& endpoints = net.policy.epg(net.web).endpoints;
  EXPECT_NE(std::find(endpoints.begin(), endpoints.end(), ep),
            endpoints.end());
  // Web now also lives on S3.
  const auto switches = net.policy.switches_hosting(net.web);
  EXPECT_EQ(switches.size(), 2u);
}

}  // namespace
}  // namespace scout
