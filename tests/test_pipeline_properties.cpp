// Whole-pipeline property tests: for randomized policies and fault mixes,
// the DESIGN.md §7 invariants must hold at every stage. TEST_P sweeps
// seeds; each seed is an independent deployment + fault + analysis cycle.
#include <gtest/gtest.h>

#include <unordered_set>

#include "src/faults/fault_injector.h"
#include "src/localization/score.h"
#include "src/scout/metrics.h"
#include "src/scout/scout_system.h"
#include "src/workload/policy_generator.h"

namespace scout {
namespace {

class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, InvariantsHoldEndToEnd) {
  Rng rng{GetParam()};
  GeneratedNetwork generated =
      generate_network(GeneratorProfile::testbed(), rng);
  ASSERT_TRUE(generated.policy.validate().empty());

  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  const DeployStats stats = net.deploy();
  ASSERT_EQ(stats.lost + stats.crashed + stats.tcam_overflow, 0u);
  net.clock().advance(3'600'000);

  // Clean network: checker finds nothing anywhere.
  const ScoutSystem system{ScoutSystem::Options{CheckMode::kExactBdd, {}}};
  ASSERT_TRUE(system.find_missing_rules(net).empty());

  // Inject a random mix of 1..4 faults.
  ObjectFaultInjector injector{net.controller(), rng};
  const std::size_t n_faults = 1 + rng.below(4);
  const auto truth_vec = injector.sample_objects(n_faults);
  std::unordered_set<ObjectRef> truth(truth_vec.begin(), truth_vec.end());
  std::size_t removed = 0;
  for (const ObjectRef obj : truth_vec) {
    removed += (rng.chance(0.5) ? injector.inject_full(obj)
                                : injector.inject_partial(obj))
                   .rules_removed;
  }
  if (removed == 0) GTEST_SKIP() << "overlapping faults removed nothing";

  const ScoutReport report = system.analyze_controller(net);

  // Checker invariants: every missing rule has valid provenance whose
  // objects exist in the policy; the count is bounded by what we removed.
  const NetworkPolicy& policy = net.controller().policy();
  for (const LogicalRule& lr : report.missing_rules) {
    ASSERT_TRUE(lr.prov.contract.valid());
    ASSERT_NO_THROW((void)policy.contract(lr.prov.contract));
    ASSERT_NO_THROW((void)policy.filter(lr.prov.filter));
    ASSERT_NO_THROW((void)policy.epg(lr.prov.pair.a));
    ASSERT_NO_THROW((void)policy.epg(lr.prov.pair.b));
    ASSERT_NO_THROW((void)policy.vrf(lr.prov.vrf));
  }
  ASSERT_EQ(report.missing_rules.size(), removed)
      << "compiler emits non-overlapping rules, so the semantic diff must "
         "equal the removed set";

  // Risk model invariants.
  ASSERT_GT(report.observations, 0u);
  ASSERT_GE(report.suspect_set_size, report.localization.hypothesis.size());
  ASSERT_GT(report.distinct_pairs_affected, 0u);
  ASSERT_GE(report.endpoint_pairs_affected, report.distinct_pairs_affected);

  // Localization invariants.
  ASSERT_LE(report.localization.observations_explained,
            report.localization.observations_total);
  ASSERT_EQ(report.localization.observations_total, report.observations);
  ASSERT_GT(report.gamma, 0.0);
  ASSERT_LE(report.gamma, 1.0);

  // Hypothesis objects must all be suspects (they have failed edges).
  const PolicyIndex index{policy};
  RiskModel model = RiskModel::build_controller_model(index);
  model.augment(report.missing_rules);
  const auto suspects = model.suspect_set();
  std::unordered_set<ObjectRef> suspect_objs;
  for (const auto r : suspects) suspect_objs.insert(model.risk(r));
  for (const ObjectRef obj : report.localization.hypothesis) {
    ASSERT_TRUE(suspect_objs.contains(obj)) << obj;
  }

  // SCOUT recall dominates SCORE-1 recall on the same model.
  const LocalizationResult score = ScoreLocalizer{1.0}.localize(model);
  const PrecisionRecall scout_pr =
      evaluate_hypothesis(report.localization.hypothesis, truth);
  const PrecisionRecall score_pr = evaluate_hypothesis(score.hypothesis, truth);
  ASSERT_GE(scout_pr.recall + 1e-9, score_pr.recall);

  // Remediation restores full consistency (no physical fault persists).
  ASSERT_EQ(system.remediate(net, report), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Range<std::uint64_t>(100, 112));

class CorruptionProperty : public ::testing::TestWithParam<std::uint64_t> {};

// TCAM corruption end-to-end: bit flips produce missing and/or extra
// rules; the checker must notice, and the risk models must keep the
// search scope bounded even without fault logs (the paper's "not all
// faults create fault logs" note).
TEST_P(CorruptionProperty, CorruptionIsDetectedAndBounded) {
  Rng rng{GetParam()};
  GeneratedNetwork generated =
      generate_network(GeneratorProfile::testbed(), rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  net.clock().advance(3'600'000);

  // Corrupt a handful of bits on one busy switch, silently.
  SwitchAgent& victim = *net.agents().front();
  std::size_t flips = 0;
  for (int i = 0; i < 5; ++i) {
    if (victim.corrupt_tcam_bit(rng, net.clock().now(), 0.0)) ++flips;
  }
  ASSERT_GT(flips, 0u);
  ASSERT_EQ(victim.fault_log().size(), 0u);  // silent

  const ScoutSystem system{ScoutSystem::Options{CheckMode::kExactBdd, {}}};
  const ScoutReport report = system.analyze_controller(net);

  // A flipped bit changes a rule's match: semantically that is a missing
  // rule, an extra rule, or both. (Rarely, a flip can shadow into another
  // deployed rule's space and stay invisible; require detection only when
  // the checker reports inconsistency.)
  if (report.missing_rules.empty() && report.extra_rule_count == 0) {
    GTEST_SKIP() << "corruption landed in semantically-neutral bits";
  }

  if (!report.missing_rules.empty()) {
    // Localization bounds the scope: every missing rule is on the victim,
    // and the suspect set is confined to objects deployed there.
    for (const LogicalRule& lr : report.missing_rules) {
      ASSERT_EQ(lr.prov.sw, victim.id());
    }
    ASSERT_GT(report.observations, 0u);
    ASSERT_GT(report.suspect_set_size, 0u);
    // Silent corruption has no change-log entry, so SCOUT's hypothesis is
    // typically *empty* here (stage 1 sees hit ratios < 1, stage 2 sees no
    // recent changes): the algorithm is honest about what it cannot
    // attribute, and the operator falls back to the bounded suspect set —
    // exactly the paper's "reducing the search scope" remark (§V-B).
    ASSERT_LE(report.localization.hypothesis.size(),
              report.suspect_set_size);
    ASSERT_EQ(report.root_causes.size(),
              report.localization.hypothesis.size());
    ASSERT_EQ(report.localization.unexplained() +
                  report.localization.observations_explained,
              report.observations);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CorruptionProperty,
                         ::testing::Range<std::uint64_t>(200, 208));

}  // namespace
}  // namespace scout
