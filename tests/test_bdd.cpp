#include "src/bdd/bdd.h"

#include <gtest/gtest.h>

#include <bitset>
#include <cmath>

#include "src/common/rng.h"

namespace scout {
namespace {

TEST(Bdd, ConstantsAreTerminals) {
  BddManager mgr{4};
  EXPECT_TRUE(mgr.is_true(mgr.constant(true)));
  EXPECT_TRUE(mgr.is_false(mgr.constant(false)));
  // Complement edges: one terminal node, false is its complemented edge.
  EXPECT_EQ(mgr.node_count(), 1u);
  EXPECT_EQ(mgr.constant(false), BddManager::negate(mgr.constant(true)));
}

TEST(Bdd, VarAndNvarAreComplements) {
  BddManager mgr{4};
  const BddRef x = mgr.var(1);
  EXPECT_EQ(mgr.negate(x), mgr.nvar(1));
  EXPECT_EQ(mgr.negate(mgr.nvar(1)), x);
}

TEST(Bdd, CanonicityIdenticalFunctionsShareNodes) {
  BddManager mgr{4};
  const BddRef a = mgr.apply_and(mgr.var(0), mgr.var(1));
  const BddRef b = mgr.apply_and(mgr.var(1), mgr.var(0));
  EXPECT_EQ(a, b);
  const BddRef c = mgr.apply_or(mgr.negate(mgr.var(0)),
                                mgr.negate(mgr.var(1)));
  EXPECT_EQ(mgr.negate(a), c);  // De Morgan, canonically
}

TEST(Bdd, ContradictionAndTautology) {
  BddManager mgr{4};
  const BddRef x = mgr.var(2);
  EXPECT_TRUE(mgr.is_false(mgr.apply_and(x, mgr.negate(x))));
  EXPECT_TRUE(mgr.is_true(mgr.apply_or(x, mgr.negate(x))));
}

TEST(Bdd, XorBasics) {
  BddManager mgr{4};
  const BddRef x = mgr.var(0), y = mgr.var(1);
  EXPECT_TRUE(mgr.is_false(mgr.apply_xor(x, x)));
  EXPECT_EQ(mgr.apply_xor(x, mgr.constant(false)), x);
  EXPECT_EQ(mgr.apply_xor(x, mgr.constant(true)), mgr.negate(x));
  EXPECT_EQ(mgr.apply_xor(x, y), mgr.apply_xor(y, x));
}

TEST(Bdd, IteBasics) {
  BddManager mgr{4};
  const BddRef f = mgr.var(0), g = mgr.var(1), h = mgr.var(2);
  EXPECT_EQ(mgr.ite(mgr.constant(true), g, h), g);
  EXPECT_EQ(mgr.ite(mgr.constant(false), g, h), h);
  EXPECT_EQ(mgr.ite(f, g, g), g);
  EXPECT_EQ(mgr.ite(f, mgr.constant(true), mgr.constant(false)), f);
  EXPECT_EQ(mgr.ite(f, mgr.constant(false), mgr.constant(true)),
            mgr.negate(f));
}

TEST(Bdd, EvaluateFollowsAssignment) {
  BddManager mgr{3};
  // f = (x0 & x1) | !x2
  const BddRef f = mgr.apply_or(mgr.apply_and(mgr.var(0), mgr.var(1)),
                                mgr.nvar(2));
  const bool t = true, o = false;
  EXPECT_TRUE(mgr.evaluate(f, {t, t, t}));
  EXPECT_TRUE(mgr.evaluate(f, {o, o, o}));
  EXPECT_FALSE(mgr.evaluate(f, {o, t, t}));
  EXPECT_FALSE(mgr.evaluate(f, {t, o, t}));
}

TEST(Bdd, CubeBuildsConjunction) {
  BddManager mgr{4};
  const BddRef c = mgr.cube({{0, true}, {2, false}, {3, true}});
  const BddRef expected = mgr.apply_and(
      mgr.apply_and(mgr.var(0), mgr.nvar(2)), mgr.var(3));
  EXPECT_EQ(c, expected);
}

TEST(Bdd, EmptyCubeIsTrue) {
  BddManager mgr{4};
  EXPECT_TRUE(mgr.is_true(mgr.cube({})));
}

TEST(Bdd, CubeRejectsDuplicateVariable) {
  BddManager mgr{4};
  EXPECT_THROW((void)mgr.cube({{1, true}, {1, false}}),
               std::invalid_argument);
}

TEST(Bdd, CubeRejectsOutOfRangeVariable) {
  BddManager mgr{4};
  EXPECT_THROW((void)mgr.cube({{7, true}}), std::out_of_range);
}

TEST(Bdd, SatCountSimple) {
  BddManager mgr{3};
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.constant(true)), 8.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.constant(false)), 0.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.var(0)), 4.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.apply_and(mgr.var(0), mgr.var(2))), 2.0);
  EXPECT_DOUBLE_EQ(mgr.sat_count(mgr.apply_or(mgr.var(0), mgr.var(1))), 6.0);
}

TEST(Bdd, IntersectsCubeAgreesWithConjunction) {
  BddManager mgr{4};
  const BddRef f = mgr.apply_or(mgr.apply_and(mgr.var(0), mgr.var(1)),
                                mgr.apply_and(mgr.nvar(0), mgr.var(3)));
  EXPECT_TRUE(mgr.intersects_cube(f, {{0, true}, {1, true}}));
  EXPECT_FALSE(mgr.intersects_cube(f, {{0, true}, {1, false}}));
  EXPECT_TRUE(mgr.intersects_cube(f, {{0, false}}));
  EXPECT_FALSE(mgr.intersects_cube(mgr.constant(false), {}));
  EXPECT_TRUE(mgr.intersects_cube(mgr.constant(true), {{2, false}}));
}

TEST(Bdd, ForeachCubeVisitsDisjointCover) {
  BddManager mgr{3};
  const BddRef f = mgr.apply_or(mgr.var(0), mgr.var(1));
  double covered = 0.0;
  mgr.foreach_cube(f, [&](std::span<const std::int8_t> cube) {
    double weight = 1.0;
    for (const std::int8_t v : cube) {
      if (v == -1) weight *= 2.0;
    }
    covered += weight;
    return true;
  });
  EXPECT_DOUBLE_EQ(covered, mgr.sat_count(f));
}

TEST(Bdd, ForeachCubeEarlyStop) {
  BddManager mgr{4};
  const BddRef f = mgr.constant(true);
  std::size_t calls = 0;
  const std::size_t visited = mgr.foreach_cube(f, [&](auto) {
    ++calls;
    return false;
  });
  EXPECT_EQ(visited, 1u);
  EXPECT_EQ(calls, 1u);
}

TEST(Bdd, AnySatReturnsSatisfyingAssignment) {
  BddManager mgr{4};
  const BddRef f = mgr.cube({{0, true}, {3, false}});
  const auto a = mgr.any_sat(f);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[3], 0);
  EXPECT_THROW((void)mgr.any_sat(mgr.constant(false)),
               std::invalid_argument);
}

TEST(Bdd, DagSizeCountsReachableNodes) {
  BddManager mgr{4};
  EXPECT_EQ(mgr.dag_size(mgr.constant(true)), 1u);
  EXPECT_EQ(mgr.dag_size(mgr.var(0)), 2u);  // node + the single terminal
  // Both phases share the structure: same DAG, same size.
  EXPECT_EQ(mgr.dag_size(mgr.nvar(0)), 2u);
}

// Property: BDD operations agree with brute-force truth-table evaluation
// over random formulas on few variables.
class BddBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BddBruteForce, RandomFormulasMatchTruthTables) {
  constexpr std::uint32_t kVars = 6;
  Rng rng{GetParam()};
  BddManager mgr{kVars};

  // Random formula as a vector of ops over a stack of sub-formulas, each
  // tracked both as BDD and as a truth table (bitmask over 2^6 = 64 rows).
  struct Entry {
    BddRef bdd;
    std::uint64_t table;
  };
  std::vector<Entry> stack;
  auto var_table = [](std::uint32_t v) {
    std::uint64_t t = 0;
    for (std::uint32_t row = 0; row < 64; ++row) {
      if ((row >> v) & 1U) t |= (1ULL << row);
    }
    return t;
  };
  for (std::uint32_t v = 0; v < kVars; ++v) {
    stack.push_back({mgr.var(v), var_table(v)});
  }

  for (int step = 0; step < 300; ++step) {
    const std::size_t i = rng.below(stack.size());
    const std::size_t j = rng.below(stack.size());
    const std::uint64_t op = rng.below(4);
    Entry e{};
    switch (op) {
      case 0:
        e = {mgr.apply_and(stack[i].bdd, stack[j].bdd),
             stack[i].table & stack[j].table};
        break;
      case 1:
        e = {mgr.apply_or(stack[i].bdd, stack[j].bdd),
             stack[i].table | stack[j].table};
        break;
      case 2:
        e = {mgr.apply_xor(stack[i].bdd, stack[j].bdd),
             stack[i].table ^ stack[j].table};
        break;
      default:
        e = {mgr.negate(stack[i].bdd), ~stack[i].table};
        break;
    }
    stack.push_back(e);

    // Verify by evaluating all 64 assignments.
    for (std::uint32_t row = 0; row < 64; ++row) {
      std::vector<bool> assignment(kVars);
      for (std::uint32_t v = 0; v < kVars; ++v) {
        assignment[v] = (row >> v) & 1U;
      }
      ASSERT_EQ(mgr.evaluate(e.bdd, assignment),
                static_cast<bool>((e.table >> row) & 1ULL))
          << "step " << step << " row " << row;
    }
    // And sat_count must equal popcount of the table.
    ASSERT_DOUBLE_EQ(mgr.sat_count(e.bdd),
                     static_cast<double>(__builtin_popcountll(e.table)));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddBruteForce,
                         ::testing::Values(11, 22, 33, 44));

// --- complement-edge canonicity -------------------------------------------

// Build a random formula over `vars` variables, returning the refs of every
// intermediate sub-formula (exercises AND/OR/XOR/NOT/ITE mixes).
std::vector<BddRef> random_formula_stack(BddManager& mgr, Rng& rng,
                                         std::uint32_t vars, int steps) {
  std::vector<BddRef> stack;
  for (std::uint32_t v = 0; v < vars; ++v) stack.push_back(mgr.var(v));
  for (int step = 0; step < steps; ++step) {
    const BddRef a = stack[rng.below(stack.size())];
    const BddRef b = stack[rng.below(stack.size())];
    switch (rng.below(5)) {
      case 0: stack.push_back(mgr.apply_and(a, b)); break;
      case 1: stack.push_back(mgr.apply_or(a, b)); break;
      case 2: stack.push_back(mgr.apply_xor(a, b)); break;
      case 3: stack.push_back(mgr.negate(a)); break;
      default:
        stack.push_back(mgr.ite(a, b, stack[rng.below(stack.size())]));
        break;
    }
  }
  return stack;
}

TEST(Bdd, NegateIsAnInvolutionByReference) {
  BddManager mgr{6};
  Rng rng{17};
  for (const BddRef f : random_formula_stack(mgr, rng, 6, 200)) {
    EXPECT_EQ(mgr.negate(mgr.negate(f)), f);  // ref equality, not just equiv
    EXPECT_NE(mgr.negate(f), f);
  }
}

TEST(Bdd, CanonicityNoComplementedLowEdges) {
  // check_invariants verifies the stored form directly: regular low edges,
  // distinct children, ordered variables, exactly one unique-table entry
  // per node.
  BddManager mgr{8};
  Rng rng{23};
  (void)random_formula_stack(mgr, rng, 8, 500);
  EXPECT_TRUE(mgr.check_invariants());
}

TEST(Bdd, DeMorganHoldsCanonically) {
  BddManager mgr{5};
  Rng rng{29};
  const auto stack = random_formula_stack(mgr, rng, 5, 100);
  for (std::size_t i = 0; i + 1 < stack.size(); i += 2) {
    const BddRef a = stack[i], b = stack[i + 1];
    EXPECT_EQ(mgr.negate(mgr.apply_and(a, b)),
              mgr.apply_or(mgr.negate(a), mgr.negate(b)));
    EXPECT_EQ(mgr.apply_diff(a, b), mgr.apply_and(a, mgr.negate(b)));
  }
}

TEST(Bdd, StatsCountersAreConsistent) {
  BddManager mgr{8};
  Rng rng{31};
  (void)random_formula_stack(mgr, rng, 8, 500);
  const BddManager::Stats s = mgr.stats();
  EXPECT_EQ(s.nodes, mgr.node_count());
  EXPECT_GE(s.peak_nodes, s.nodes);
  EXPECT_GT(s.unique_capacity, s.nodes);  // grown before full
  EXPECT_GT(s.unique_load, 0.0);
  EXPECT_LT(s.unique_load, 1.0);
  EXPECT_LE(s.cache_hits, s.cache_lookups);
  EXPECT_EQ(s.rollbacks, 0u);
}

// --- checkpoint / rollback -------------------------------------------------

TEST(Bdd, RollbackTruncatesToWatermark) {
  BddManager mgr{6};
  const BddRef base = mgr.apply_and(mgr.var(0), mgr.var(1));
  const auto cp = mgr.checkpoint();
  const std::size_t nodes_at_cp = mgr.node_count();

  const BddRef scratch = mgr.apply_or(mgr.var(2), mgr.apply_xor(base,
                                                                mgr.var(3)));
  EXPECT_GT(mgr.node_count(), nodes_at_cp);
  (void)scratch;

  mgr.rollback(cp);
  EXPECT_EQ(mgr.node_count(), nodes_at_cp);
  EXPECT_TRUE(mgr.check_invariants());
  EXPECT_EQ(mgr.stats().rollbacks, 1u);

  // Refs below the watermark survive and still evaluate.
  EXPECT_TRUE(mgr.evaluate(base, {true, true, false, false, false, false}));
  EXPECT_FALSE(mgr.evaluate(base, {true, false, false, false, false, false}));
}

TEST(Bdd, RollbackToCurrentWatermarkIsNoop) {
  BddManager mgr{4};
  (void)mgr.apply_and(mgr.var(0), mgr.var(1));
  const auto cp = mgr.checkpoint();
  mgr.rollback(cp);
  EXPECT_EQ(mgr.node_count(), cp.nodes);
  EXPECT_EQ(mgr.stats().rollbacks, 0u);  // nothing truncated, cache kept
}

TEST(Bdd, OpCacheEntriesBelowWatermarkSurviveRollback) {
  // Entries whose arguments and result all live below the rollback
  // watermark are revalidated via their max-node tag instead of dying
  // with the generation bump: re-running a sub-watermark operation after
  // a rollback is a cache hit, not a recompute.
  BddManager mgr{6};
  const BddRef a = mgr.apply_and(mgr.var(0), mgr.var(1));
  const BddRef b = mgr.apply_or(mgr.var(2), mgr.var(3));
  const BddRef c = mgr.apply_and(a, b);
  const auto cp = mgr.checkpoint();
  (void)mgr.apply_xor(c, mgr.var(4));  // scratch above the watermark
  mgr.rollback(cp);

  const auto before = mgr.stats();
  EXPECT_EQ(mgr.apply_and(a, b), c);  // same canonical ref...
  const auto after = mgr.stats();
  EXPECT_EQ(after.cache_hits, before.cache_hits + 1);  // ...from the cache

  // The surviving entry was re-stamped on that hit, so it stays alive
  // across further rollbacks too.
  (void)mgr.apply_xor(c, mgr.var(5));
  mgr.rollback(cp);
  const auto again = mgr.stats();
  EXPECT_EQ(mgr.apply_and(a, b), c);
  EXPECT_EQ(mgr.stats().cache_hits, again.cache_hits + 1);
}

TEST(Bdd, OpCacheEntriesAboveWatermarkDieWithRollback) {
  BddManager mgr{6};
  const BddRef a = mgr.apply_and(mgr.var(0), mgr.var(1));
  const auto cp = mgr.checkpoint();
  const BddRef x = mgr.var(2);
  const BddRef above = mgr.apply_or(a, mgr.apply_and(x, mgr.var(3)));
  mgr.rollback(cp);
  // Replaying the sequence must rebuild identical refs (hash-consing),
  // never serve a cache entry referencing truncated nodes.
  const BddRef x2 = mgr.var(2);
  EXPECT_EQ(x2, x);
  const BddRef rebuilt = mgr.apply_or(a, mgr.apply_and(x2, mgr.var(3)));
  EXPECT_EQ(rebuilt, above);
  EXPECT_TRUE(mgr.check_invariants());
}

TEST(Bdd, RollbackRejectsBadCheckpoint) {
  BddManager mgr{4};
  const auto cp = mgr.checkpoint();
  (void)mgr.var(0);
  mgr.rollback(cp);  // backwards is fine
  EXPECT_THROW(mgr.rollback(BddManager::Checkpoint{999}),
               std::invalid_argument);
  EXPECT_THROW(mgr.rollback(BddManager::Checkpoint{0}),
               std::invalid_argument);
}

// Randomized arena round-trips: ops above a checkpoint are rolled back,
// then the identical op sequence is replayed — hash-consing must hand out
// the identical refs, and the pre-checkpoint region must be untouched.
class BddRollbackRoundTrip : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BddRollbackRoundTrip, ReplayAfterRollbackIsIdentical) {
  constexpr std::uint32_t kVars = 7;
  BddManager mgr{kVars};
  Rng base_rng{GetParam()};
  const std::vector<BddRef> base =
      random_formula_stack(mgr, base_rng, kVars, 150);
  const auto cp = mgr.checkpoint();

  // Truth tables of the resident region, for corruption detection. 2^kVars
  // rows don't fit a 64-bit word at kVars = 7 — a packed uint64 here would
  // silently compare only the first 64 rows (and shift past the word, UB).
  const auto truth = [&](BddRef f) {
    std::bitset<(1U << kVars)> t;
    for (std::uint32_t row = 0; row < (1U << kVars); ++row) {
      std::vector<bool> assignment(kVars);
      for (std::uint32_t v = 0; v < kVars; ++v) {
        assignment[v] = (row >> v) & 1U;
      }
      if (mgr.evaluate(f, assignment)) t.set(row);
    }
    return t;
  };
  std::vector<std::bitset<(1U << kVars)>> base_truth;
  for (const BddRef f : base) base_truth.push_back(truth(f));

  for (int round = 0; round < 4; ++round) {
    // Replaying the same seed must produce the same refs each round: the
    // arena below the watermark is intact and node ids are allocated in
    // op order.
    Rng op_rng{derive_seed(GetParam(), static_cast<std::uint64_t>(round))};
    std::vector<BddRef> first, second;
    {
      Rng r = op_rng;
      BddManager& m = mgr;
      std::vector<BddRef> stack = base;
      for (int step = 0; step < 120; ++step) {
        const BddRef a = stack[r.below(stack.size())];
        const BddRef b = stack[r.below(stack.size())];
        stack.push_back(r.chance(0.5) ? m.apply_and(a, b)
                                      : m.ite(a, b, m.negate(b)));
      }
      first = std::move(stack);
    }
    mgr.rollback(cp);
    ASSERT_EQ(mgr.node_count(), cp.nodes);
    ASSERT_TRUE(mgr.check_invariants());
    {
      Rng r = op_rng;
      std::vector<BddRef> stack = base;
      for (int step = 0; step < 120; ++step) {
        const BddRef a = stack[r.below(stack.size())];
        const BddRef b = stack[r.below(stack.size())];
        stack.push_back(r.chance(0.5) ? mgr.apply_and(a, b)
                                      : mgr.ite(a, b, mgr.negate(b)));
      }
      second = std::move(stack);
    }
    ASSERT_EQ(first, second) << "round " << round;
    mgr.rollback(cp);

    // The resident region still denotes the same functions.
    for (std::size_t i = 0; i < base.size(); ++i) {
      ASSERT_EQ(truth(base[i]), base_truth[i]) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRollbackRoundTrip,
                         ::testing::Values(101, 202, 303, 404, 505));

TEST(Bdd, IteMatchesExpandedForm) {
  Rng rng{5};
  BddManager mgr{5};
  for (int i = 0; i < 100; ++i) {
    // random cubes as f, g, h
    auto random_func = [&]() {
      BddRef acc = mgr.constant(rng.chance(0.5));
      for (std::uint32_t v = 0; v < 5; ++v) {
        if (rng.chance(0.4)) {
          const BddRef lit = rng.chance(0.5) ? mgr.var(v) : mgr.nvar(v);
          acc = rng.chance(0.5) ? mgr.apply_and(acc, lit)
                                : mgr.apply_or(acc, lit);
        }
      }
      return acc;
    };
    const BddRef f = random_func(), g = random_func(), h = random_func();
    const BddRef expanded = mgr.apply_or(
        mgr.apply_and(f, g), mgr.apply_and(mgr.negate(f), h));
    ASSERT_EQ(mgr.ite(f, g, h), expanded);
  }
}

}  // namespace
}  // namespace scout
