#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace scout {
namespace {

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, SingleValue) {
  const Summary s = summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 42.0);
  EXPECT_EQ(s.max, 42.0);
  EXPECT_EQ(s.mean, 42.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summary, KnownDistribution) {
  const Summary s = summarize({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_NEAR(s.stddev, 3.0277, 1e-3);
  EXPECT_DOUBLE_EQ(s.p50, 5.5);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 10.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile_sorted({}, 0.5), 0.0);
}

TEST(EmpiricalCdf, CollapsesDuplicates) {
  const EmpiricalCdf cdf{{1, 1, 1, 2}};
  ASSERT_EQ(cdf.points().size(), 2u);
  EXPECT_DOUBLE_EQ(cdf.points()[0].x, 1.0);
  EXPECT_DOUBLE_EQ(cdf.points()[0].cumulative_probability, 0.75);
  EXPECT_DOUBLE_EQ(cdf.points()[1].cumulative_probability, 1.0);
}

TEST(EmpiricalCdf, AtEvaluatesStepFunction) {
  const EmpiricalCdf cdf{{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileIsInverse) {
  const EmpiricalCdf cdf{{10, 20, 30, 40, 50}};
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
}

TEST(EmpiricalCdf, LastPointAlwaysOne) {
  const EmpiricalCdf cdf{{5, 7, 7, 9, 12, 100}};
  EXPECT_DOUBLE_EQ(cdf.points().back().cumulative_probability, 1.0);
}

TEST(EmpiricalCdf, TableContainsHeaderAndRows) {
  const EmpiricalCdf cdf{{1, 2}};
  const std::string table = cdf.to_table("value");
  EXPECT_NE(table.find("value"), std::string::npos);
  EXPECT_NE(table.find("CDF"), std::string::npos);
  EXPECT_NE(table.find("1.0000"), std::string::npos);
}

TEST(RunningStat, MatchesBatchComputation) {
  RunningStat rs;
  const std::vector<double> values{3, 1, 4, 1, 5, 9, 2, 6};
  for (const double v : values) rs.add(v);
  const Summary s = summarize(values);
  EXPECT_EQ(rs.count(), s.count);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
}

TEST(RunningStat, EmptyIsZero) {
  const RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace scout
