#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>

namespace scout {
namespace {

TEST(Summary, EmptyInput) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summary, SingleValue) {
  const Summary s = summarize({42.0});
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.min, 42.0);
  EXPECT_EQ(s.max, 42.0);
  EXPECT_EQ(s.mean, 42.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summary, KnownDistribution) {
  const Summary s = summarize({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_EQ(s.count, 10u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_NEAR(s.stddev, 3.0277, 1e-3);
  EXPECT_DOUBLE_EQ(s.p50, 5.5);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 10.0);
}

TEST(Percentile, EmptyReturnsZero) {
  EXPECT_EQ(percentile_sorted({}, 0.5), 0.0);
}

TEST(EmpiricalCdf, CollapsesDuplicates) {
  const EmpiricalCdf cdf{{1, 1, 1, 2}};
  ASSERT_EQ(cdf.points().size(), 2u);
  EXPECT_DOUBLE_EQ(cdf.points()[0].x, 1.0);
  EXPECT_DOUBLE_EQ(cdf.points()[0].cumulative_probability, 0.75);
  EXPECT_DOUBLE_EQ(cdf.points()[1].cumulative_probability, 1.0);
}

TEST(EmpiricalCdf, AtEvaluatesStepFunction) {
  const EmpiricalCdf cdf{{1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileIsInverse) {
  const EmpiricalCdf cdf{{10, 20, 30, 40, 50}};
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
}

TEST(EmpiricalCdf, LastPointAlwaysOne) {
  const EmpiricalCdf cdf{{5, 7, 7, 9, 12, 100}};
  EXPECT_DOUBLE_EQ(cdf.points().back().cumulative_probability, 1.0);
}

TEST(EmpiricalCdf, TableContainsHeaderAndRows) {
  const EmpiricalCdf cdf{{1, 2}};
  const std::string table = cdf.to_table("value");
  EXPECT_NE(table.find("value"), std::string::npos);
  EXPECT_NE(table.find("CDF"), std::string::npos);
  EXPECT_NE(table.find("1.0000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

TEST(LogHistogram, EmptyIsZero) {
  const LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0.0);
  EXPECT_EQ(h.max(), 0.0);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_TRUE(h.buckets().empty());
}

TEST(LogHistogram, RecordedValueFallsInItsBucket) {
  std::mt19937_64 rng{17};
  std::uniform_real_distribution<double> mag(-6.0, 8.0);
  LogHistogram h;
  // Half a quantization tick: a sample may land that far outside its
  // bucket's bounds from the fixed-point rounding, never more.
  const double eps = 0.5 / LogHistogram::kTicksPerUnit;
  for (int i = 0; i < 2000; ++i) {
    const double v = std::pow(10.0, mag(rng));
    LogHistogram one;
    one.record(v);
    const auto buckets = one.buckets();
    ASSERT_EQ(buckets.size(), 1u);
    EXPECT_GE(v, buckets[0].lower - eps) << v;
    EXPECT_LE(v, buckets[0].upper + eps) << v;
    // Sub-bucket refinement: relative bucket width stays below 12.5%.
    if (buckets[0].lower > 0.0) {
      EXPECT_LE(buckets[0].upper / buckets[0].lower,
                1.0 + 1.0 / (1 << LogHistogram::kSubBits) + 1e-9);
    }
    h.record(v);
  }
  EXPECT_EQ(h.count(), 2000u);
}

TEST(LogHistogram, NonPositiveValuesClampToZeroBucket) {
  LogHistogram h;
  h.record(0.0);
  h.record(-3.5);
  EXPECT_EQ(h.count(), 2u);
  ASSERT_EQ(h.buckets().size(), 1u);
  EXPECT_EQ(h.buckets()[0].lower, 0.0);
  EXPECT_EQ(h.buckets()[0].count, 2u);
}

TEST(LogHistogram, QuantileBoundsContainExactPercentile) {
  std::mt19937_64 rng{99};
  std::exponential_distribution<double> latency(1.0 / 40.0);  // ms-ish
  std::vector<double> samples;
  LogHistogram h;
  for (int i = 0; i < 5000; ++i) {
    const double v = latency(rng);
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  const double eps = 0.5 / LogHistogram::kTicksPerUnit;
  for (const double q : {0.0, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    // Reference: the rank-based sample quantile the bounds are defined on.
    const std::size_t rank = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(q * static_cast<double>(samples.size()))));
    const double exact = samples[rank - 1];
    const auto bounds = h.quantile_bounds(q);
    EXPECT_GE(exact, bounds.lower - eps) << "q=" << q;
    EXPECT_LE(exact, bounds.upper + eps) << "q=" << q;
    // The midpoint estimate sits inside the same bounds, modulo the
    // half-tick slack of the [min, max] clamp (the observed extremes are
    // exact values, the bucket bounds are tick-quantized).
    EXPECT_GE(h.quantile(q), bounds.lower - eps);
    EXPECT_LE(h.quantile(q), bounds.upper + eps);
    // The clamp itself is airtight: estimates never escape the range.
    EXPECT_GE(h.quantile(q), h.min());
    EXPECT_LE(h.quantile(q), h.max());
  }
  EXPECT_NEAR(h.min(), samples.front(), 1e-12);
  EXPECT_NEAR(h.max(), samples.back(), 1e-12);
}

TEST(LogHistogram, MergeIsExactAndOrderInvariant) {
  // Integer-valued samples: double summation is exact, so every merge
  // order must produce the identical histogram, sum included.
  std::mt19937_64 rng{7};
  std::uniform_int_distribution<int> value(0, 1 << 20);
  constexpr std::size_t kShards = 7;
  std::vector<LogHistogram> shards(kShards);
  LogHistogram serial;
  for (int i = 0; i < 10000; ++i) {
    const double v = static_cast<double>(value(rng));
    shards[static_cast<std::size_t>(i) % kShards].record(v);
    serial.record(v);
  }

  std::vector<std::size_t> order(kShards);
  for (std::size_t i = 0; i < kShards; ++i) order[i] = i;
  for (int perm = 0; perm < 20; ++perm) {
    std::shuffle(order.begin(), order.end(), rng);
    LogHistogram merged;
    for (const std::size_t s : order) merged.merge(shards[s]);
    EXPECT_TRUE(merged == serial);
    EXPECT_EQ(merged.count(), serial.count());
    EXPECT_EQ(merged.sum(), serial.sum());
    EXPECT_EQ(merged.min(), serial.min());
    EXPECT_EQ(merged.max(), serial.max());
    for (const double q : {0.01, 0.25, 0.5, 0.75, 0.99}) {
      EXPECT_EQ(merged.quantile(q), serial.quantile(q));
    }
  }
}

TEST(LogHistogram, MergeIntoEmptyAndFromEmpty) {
  LogHistogram a;
  a.record(3.0);
  LogHistogram empty;
  LogHistogram b;
  b.merge(a);
  b.merge(empty);
  EXPECT_TRUE(b == a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.min(), 3.0);
}

TEST(RunningStat, MatchesBatchComputation) {
  RunningStat rs;
  const std::vector<double> values{3, 1, 4, 1, 5, 9, 2, 6};
  for (const double v : values) rs.add(v);
  const Summary s = summarize(values);
  EXPECT_EQ(rs.count(), s.count);
  EXPECT_NEAR(rs.mean(), s.mean, 1e-12);
  EXPECT_NEAR(rs.stddev(), s.stddev, 1e-12);
}

TEST(RunningStat, EmptyIsZero) {
  const RunningStat rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace scout
