// MpscRing property tests: exactly-once + per-publisher-ordered delivery
// under a concurrent drainer, wraparound/full/empty boundary behaviour at
// tiny capacities, eviction at exactly capacity, destruction with
// in-flight publishers, and the EventBus ingest contract (dense sequence
// numbers, shadow-resync synthesis). The whole file runs in the ASan and
// TSan CI presets — the concurrent cases are the ones the sanitizers are
// for.
#include "src/stream/mpsc_ring.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "src/stream/event_bus.h"

namespace scout::stream {
namespace {

StreamEvent marked_event(std::uint32_t sw_id, std::size_t marker) {
  StreamEvent ev;
  ev.type = StreamEventType::kRuleInstalled;
  ev.sw = SwitchId{sw_id};
  ev.tcam_index = marker;  // payload carrier for delivery checks
  return ev;
}

MpscRing::Options tiny(std::size_t capacity, MpscRing::FullPolicy policy) {
  MpscRing::Options options;
  options.shard_capacity = capacity;
  options.on_full = policy;
  return options;
}

TEST(MpscRing, ExactlyOncePerPublisherOrderedUnderConcurrentDrain) {
  constexpr std::size_t kPublishers = 4;
  constexpr std::size_t kItems = 4000;
  // Capacity far below kItems: every shard wraps hundreds of times and
  // publishers block on the drainer, so this exercises the full
  // release/acquire protocol, not just the easy non-contended path.
  MpscRing ring{kPublishers, kPublishers,
                tiny(64, MpscRing::FullPolicy::kBackpressure)};

  std::vector<std::vector<std::size_t>> got(kPublishers);
  std::atomic<bool> producers_done{false};
  std::thread drainer{[&] {
    for (;;) {
      std::size_t drained = 0;
      for (std::size_t p = 0; p < kPublishers; ++p) {
        drained += ring.drain_shard(p, [&](const StreamEvent& ev) {
          got[p].push_back(ev.tcam_index);
        });
      }
      if (drained == 0) {
        if (producers_done.load(std::memory_order_acquire)) return;
        std::this_thread::yield();
      }
    }
  }};
  std::vector<std::thread> publishers;
  for (std::size_t p = 0; p < kPublishers; ++p) {
    publishers.emplace_back([&ring, p] {
      ring.claim(p);
      for (std::size_t i = 0; i < kItems; ++i) {
        EXPECT_TRUE(
            ring.publish(p, marked_event(static_cast<std::uint32_t>(p), i)));
      }
      ring.release(p);
    });
  }
  for (std::thread& t : publishers) t.join();
  producers_done.store(true, std::memory_order_release);
  drainer.join();

  for (std::size_t p = 0; p < kPublishers; ++p) {
    ASSERT_EQ(got[p].size(), kItems) << "publisher " << p;
    for (std::size_t i = 0; i < kItems; ++i) {
      ASSERT_EQ(got[p][i], i) << "publisher " << p << " out of order";
    }
  }
  const MpscRing::Stats stats = ring.stats();
  EXPECT_EQ(stats.published, kPublishers * kItems);
  EXPECT_EQ(stats.drained, kPublishers * kItems);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(ring.occupancy(), 0u);
}

TEST(MpscRing, WraparoundAndFullAndEmptyBoundaries) {
  MpscRing ring{1, 4, tiny(4, MpscRing::FullPolicy::kEvictToResync)};
  ASSERT_EQ(ring.shard_capacity(), 4u);
  ring.claim(0);

  // Empty: a drain delivers nothing and cursors agree.
  EXPECT_EQ(ring.drain_shard(0, [](const StreamEvent&) {}), 0u);
  EXPECT_EQ(ring.published_cursor(0), ring.drained_cursor(0));

  // Fill to exactly capacity, drain, and repeat across the wraparound
  // boundary several times: slot reuse must never reorder or drop.
  std::size_t next = 0;
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(ring.publish(0, marked_event(1, next + i)));
    }
    EXPECT_EQ(ring.occupancy(), 4u);
    std::vector<std::size_t> seen;
    EXPECT_EQ(ring.drain_shard(
                  0, [&](const StreamEvent& ev) {
                    seen.push_back(ev.tcam_index);
                  }),
              4u);
    ASSERT_EQ(seen.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(seen[i], next + i);
    next += 4;
    EXPECT_EQ(ring.occupancy(), 0u);
  }
  EXPECT_EQ(ring.published_cursor(0), next);
  EXPECT_EQ(ring.drained_cursor(0), next);
  EXPECT_EQ(ring.high_water(), 4u);
  ring.release(0);
}

TEST(MpscRing, EvictsAtExactlyCapacityAndTakeEvictionsClears) {
  MpscRing ring{1, 8, tiny(4, MpscRing::FullPolicy::kEvictToResync)};
  ring.claim(0);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.publish(0, marked_event(5, i)));
  }
  // Exactly at capacity: the next publish must degrade, not overwrite.
  EXPECT_FALSE(ring.publish(0, marked_event(5, 99)));
  EXPECT_FALSE(ring.publish(0, marked_event(6, 100)));
  const MpscRing::Stats stats = ring.stats();
  EXPECT_EQ(stats.published, 4u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_GE(stats.full_stalls, 2u);

  std::vector<SwitchId> evicted;
  EXPECT_FALSE(ring.take_evictions(evicted));  // no fabric-wide eviction
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[0], SwitchId{5});
  EXPECT_EQ(evicted[1], SwitchId{6});
  // The set is exchange-cleared: a second take sees nothing.
  evicted.clear();
  EXPECT_FALSE(ring.take_evictions(evicted));
  EXPECT_TRUE(evicted.empty());

  // The surviving capacity-worth of events is still intact and ordered.
  std::vector<std::size_t> seen;
  EXPECT_EQ(ring.drain_shard(0,
                             [&](const StreamEvent& ev) {
                               seen.push_back(ev.tcam_index);
                             }),
            4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(seen[i], i);
  ring.release(0);
}

TEST(MpscRing, InvalidSwitchEvictionSetsFabricWideFlag) {
  MpscRing ring{1, 4, tiny(2, MpscRing::FullPolicy::kEvictToResync)};
  ring.claim(0);
  EXPECT_TRUE(ring.publish(0, marked_event(0, 0)));
  EXPECT_TRUE(ring.publish(0, marked_event(0, 1)));
  StreamEvent fabric_wide;  // default SwitchId is invalid
  fabric_wide.type = StreamEventType::kPolicyPushed;
  EXPECT_FALSE(ring.publish(0, fabric_wide));
  std::vector<SwitchId> evicted;
  EXPECT_TRUE(ring.take_evictions(evicted));
  EXPECT_TRUE(evicted.empty());
  EXPECT_FALSE(ring.take_evictions(evicted));  // sticky flag cleared
  ring.release(0);
}

TEST(MpscRing, DestructionWithBlockedInFlightPublishersIsSafe) {
  // Publishers block on a full backpressure ring with nobody draining;
  // destroying the ring must unblock them (close() flips their publishes
  // to the eviction path) and wait for every claim to be released.
  auto ring = std::make_unique<MpscRing>(
      2, 4, tiny(2, MpscRing::FullPolicy::kBackpressure));
  std::atomic<std::size_t> started{0};
  std::vector<std::thread> publishers;
  for (std::size_t p = 0; p < 2; ++p) {
    publishers.emplace_back([&ring_ref = *ring, &started, p] {
      ring_ref.claim(p);
      started.fetch_add(1, std::memory_order_release);
      for (std::size_t i = 0; i < 64; ++i) {
        (void)ring_ref.publish(p, marked_event(static_cast<std::uint32_t>(p),
                                               i));  // blocks when full
      }
      ring_ref.release(p);
    });
  }
  while (started.load(std::memory_order_acquire) != 2) {
    std::this_thread::yield();
  }
  // Give both publishers time to hit the full-shard spin.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ring.reset();  // close + wait-for-release inside ~MpscRing
  for (std::thread& t : publishers) t.join();
}

TEST(MpscRing, CloseUnblocksBackpressureSpinnerIntoEviction) {
  MpscRing ring{1, 4, tiny(2, MpscRing::FullPolicy::kBackpressure)};
  ring.claim(0);
  EXPECT_TRUE(ring.publish(0, marked_event(1, 0)));
  EXPECT_TRUE(ring.publish(0, marked_event(1, 1)));
  std::atomic<bool> unblocked{false};
  std::thread blocked{[&] {
    // Shard is full: this spins until close(), then degrades to eviction.
    EXPECT_FALSE(ring.publish(0, marked_event(1, 2)));
    unblocked.store(true, std::memory_order_release);
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(unblocked.load(std::memory_order_acquire));
  ring.close();
  blocked.join();
  EXPECT_TRUE(unblocked.load(std::memory_order_acquire));
  EXPECT_TRUE(ring.closed());
  std::vector<SwitchId> evicted;
  ring.take_evictions(evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0], SwitchId{1});
  ring.release(0);
}

TEST(MpscRingDeathTest, DoubleClaimOfOneShardAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  MpscRing ring{1, 4};
  ring.claim(0);
  EXPECT_DEATH(ring.claim(0), "already has a live publisher");
  ring.release(0);
}

// -- EventBus ingest contract ------------------------------------------------

TEST(MpscRingBusIngest, AssignsDenseSeqInShardOrderAndSynthesizesResyncs) {
  EventBus bus;
  // Two serial events first, so ingest has to continue an existing
  // sequence rather than start at zero.
  (void)bus.publish(marked_event(1, 0));
  (void)bus.publish(marked_event(1, 1));

  MpscRing ring{2, 16, tiny(4, MpscRing::FullPolicy::kEvictToResync)};
  bus.attach_ring(&ring);
  ASSERT_EQ(bus.ring(), &ring);

  std::thread a{[&] {
    EventBus::ConcurrentPublishCapability cap{bus, 0};
    for (std::size_t i = 0; i < 3; ++i) {
      (void)bus.publish(marked_event(3, i));
    }
  }};
  std::thread b{[&] {
    EventBus::ConcurrentPublishCapability cap{bus, 1};
    // Capacity 4: two of these six overflow and degrade switch 7.
    for (std::size_t i = 0; i < 6; ++i) {
      (void)bus.publish(marked_event(7, i));
    }
  }};
  a.join();
  b.join();

  const std::size_t ingested = bus.ingest_ring();
  EXPECT_EQ(ingested, 3u + 4u + 1u);  // events + synthesized marker
  EXPECT_EQ(bus.cursor(), 2u + 8u);

  const auto events = bus.events_since(2);
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 2 + i);  // dense, monotone
  }
  // Shard 0's events precede shard 1's, each in publish order.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].sw, SwitchId{3});
    EXPECT_EQ(events[i].tcam_index, i);
  }
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[3 + i].sw, SwitchId{7});
    EXPECT_EQ(events[3 + i].tcam_index, i);
  }
  // The overflow marker rides last, for the evicted switch.
  EXPECT_EQ(events.back().type, StreamEventType::kShadowResync);
  EXPECT_EQ(events.back().sw, SwitchId{7});

  const EventBus::Stats stats = bus.stats();
  EXPECT_EQ(stats.published, 10u);
  EXPECT_EQ(stats.ingested, 7u);
  EXPECT_EQ(stats.resyncs_synthesized, 1u);

  // Idempotent at quiescence: nothing left to ingest.
  EXPECT_EQ(bus.ingest_ring(), 0u);
}

TEST(MpscRingBusIngest, SerialPublishStillWorksWhileRingAttached) {
  EventBus bus;
  MpscRing ring{1, 4};
  bus.attach_ring(&ring);
  // This thread holds no capability, so publish takes the serial path.
  EXPECT_EQ(bus.publish(marked_event(2, 0)), 0u);
  EXPECT_EQ(bus.cursor(), 1u);
  EXPECT_EQ(ring.stats().published, 0u);
}

}  // namespace
}  // namespace scout::stream
