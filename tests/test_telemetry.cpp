// Telemetry subsystem: registry handle semantics, shard-merge exactness,
// worker-count invariance of the deterministic "stream." counters, trace
// span nesting, and the export formats CI validates.
#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/scout/experiment.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace scout {
namespace {

using telemetry::MetricsRegistry;
using telemetry::MetricsSnapshot;
using telemetry::TraceRecorder;

TEST(Metrics, RegisterOrFetchAndSnapshot) {
  MetricsRegistry reg{2};
  telemetry::Counter a = reg.counter("x.events");
  telemetry::Counter a2 = reg.counter("x.events");  // same metric
  a.add(0, 3);
  a2.add(1, 4);
  reg.set_gauge("x.level", 2.5);
  telemetry::Histogram h = reg.histogram("x.lat");
  h.record(0, 1.0);
  h.record(1, 2.0);

  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter("x.events"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauge("x.level"), 2.5);
  ASSERT_NE(snap.histogram("x.lat"), nullptr);
  EXPECT_EQ(snap.histogram("x.lat")->count(), 2u);
  // Unknown names are zeros, not errors.
  EXPECT_EQ(snap.counter("no.such"), 0u);
  EXPECT_EQ(snap.histogram("no.such"), nullptr);

  reg.reset();
  const MetricsSnapshot zeroed = reg.snapshot();
  EXPECT_EQ(zeroed.counter("x.events"), 0u);
  EXPECT_EQ(zeroed.histogram("x.lat")->count(), 0u);
  a.add(0, 1);  // handles stay valid across reset
  EXPECT_EQ(reg.snapshot().counter("x.events"), 1u);
}

TEST(Metrics, DefaultHandlesAreNoOps) {
  telemetry::Counter c;
  telemetry::Gauge g;
  telemetry::Histogram h;
  EXPECT_FALSE(static_cast<bool>(c));
  EXPECT_FALSE(static_cast<bool>(g));
  EXPECT_FALSE(static_cast<bool>(h));
  // Must not crash.
  c.add(0, 5);
  c.add(7);
  g.set(1.0);
  g.add(2.0);
  h.record(0, 3.0);
  h.record(4.0);
}

TEST(Metrics, ShardMergeIsExact) {
  // The same samples recorded through 4 shards and through 1 shard must
  // merge to identical histograms (LogHistogram merge is exact on bucket
  // counts) and identical counter totals.
  MetricsRegistry sharded{4};
  MetricsRegistry serial{1};
  telemetry::Histogram hs = sharded.histogram("lat");
  telemetry::Histogram h1 = serial.histogram("lat");
  telemetry::Counter cs = sharded.counter("n");
  telemetry::Counter c1 = serial.counter("n");
  for (int i = 0; i < 1000; ++i) {
    const double v = 0.001 * static_cast<double>(i * i % 9973);
    hs.record(static_cast<std::size_t>(i % 4), v);
    h1.record(0, v);
    cs.inc(static_cast<std::size_t>(i % 4));
    c1.inc(0);
  }
  const MetricsSnapshot a = sharded.snapshot();
  const MetricsSnapshot b = serial.snapshot();
  EXPECT_EQ(a.counter("n"), b.counter("n"));
  ASSERT_NE(a.histogram("lat"), nullptr);
  ASSERT_NE(b.histogram("lat"), nullptr);
  EXPECT_TRUE(*a.histogram("lat") == *b.histogram("lat"));
}

TEST(Metrics, BenchKeyMapsDotsToUnderscores) {
  EXPECT_EQ(telemetry::bench_key("bdd.unique_load"), "bdd_unique_load");
  EXPECT_EQ(telemetry::bench_key("stream.full_rebuilds"),
            "stream_full_rebuilds");
}

TEST(Metrics, BenchKeySanitizesEverySeparatorPrometheusRejects) {
  // bench_key is the single name-mangling rule shared by the bench
  // records and the Prometheus exposition: '.', '-', '/' all flatten.
  EXPECT_EQ(telemetry::bench_key("tcam.evictions.lru-touch"),
            "tcam_evictions_lru_touch");
  EXPECT_EQ(telemetry::bench_key("io/read.bytes"), "io_read_bytes");
}

TEST(Metrics, PrometheusExpositionConformance) {
  MetricsRegistry reg{1};
  reg.add_counter("tcam.evictions.lru-touch", 5);
  reg.add_counter("stream.batches", 3);
  reg.set_gauge("health.status", 1.0);
  reg.histogram("stream.wall_latency_ms").record(2.0);
  const std::string prom = reg.snapshot().to_prometheus();

  // Every series carries a # HELP line and a # TYPE line, in that order,
  // under the sanitized name.
  for (const char* series :
       {"scout_tcam_evictions_lru_touch", "scout_stream_batches",
        "scout_health_status", "scout_stream_wall_latency_ms"}) {
    const std::string help = std::string{"# HELP "} + series + " ";
    const std::string type = std::string{"# TYPE "} + series + " ";
    const std::size_t help_at = prom.find(help);
    const std::size_t type_at = prom.find(type);
    EXPECT_NE(help_at, std::string::npos) << series;
    EXPECT_NE(type_at, std::string::npos) << series;
    EXPECT_LT(help_at, type_at) << series;
  }
  EXPECT_NE(prom.find("# TYPE scout_tcam_evictions_lru_touch counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE scout_health_status gauge"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE scout_stream_wall_latency_ms summary"),
            std::string::npos);

  // No exported name may contain a character outside [a-zA-Z0-9_:].
  std::size_t pos = 0;
  while ((pos = prom.find("scout_", pos)) != std::string::npos) {
    std::size_t end = pos;
    while (end < prom.size() &&
           (std::isalnum(static_cast<unsigned char>(prom[end])) != 0 ||
            prom[end] == '_' || prom[end] == ':')) {
      ++end;
    }
    // The name terminates at whitespace, '{', or the line break.
    EXPECT_TRUE(end == prom.size() || prom[end] == ' ' ||
                prom[end] == '{' || prom[end] == '\n')
        << "unsanitized char '" << prom[end] << "' after "
        << prom.substr(pos, end - pos);
    pos = end;
  }
}

// Satellite: per-switch churn gauges are capped at the K busiest switches
// with the remainder conserved in stream.churn.other — cardinality stays
// O(K), not O(fabric), and nothing is silently dropped.
TEST(Telemetry, ChurnGaugeCardinalityCappedWithConservation) {
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(16);
  options.profile.target_pairs = 16 * 30;
  options.events = 200;
  options.batch_ops = 12;
  options.seed = 21;
  options.localize_final = false;
  runtime::SerialExecutor executor;

  auto churn_sum = [](const MetricsSnapshot& snap) {
    double total = 0;
    for (const auto& g : snap.gauges) {
      if (g.name.rfind("stream.churn.sw", 0) == 0 ||
          g.name == "stream.churn.other") {
        total += g.value;
      }
    }
    return total;
  };
  auto nonzero_sw_gauges = [](const MetricsSnapshot& snap) {
    std::size_t n = 0;
    for (const auto& g : snap.gauges) {
      if (g.name.rfind("stream.churn.sw", 0) == 0 && g.value > 0) ++n;
    }
    return n;
  };

  MonitoringOptions capped = options;
  capped.churn_top_k = 4;
  const MonitoringReport small = run_continuous_monitoring(capped, executor);
  EXPECT_LE(nonzero_sw_gauges(small.telemetry), 4u);

  MonitoringOptions uncapped = options;
  uncapped.churn_top_k = 1024;  // larger than any fabric here
  const MonitoringReport big = run_continuous_monitoring(uncapped, executor);
  EXPECT_DOUBLE_EQ(big.telemetry.gauge("stream.churn.other"), 0.0);
  EXPECT_GT(nonzero_sw_gauges(big.telemetry), 4u);

  // Same seed, same churn: top-K + other must conserve the total.
  EXPECT_DOUBLE_EQ(churn_sum(small.telemetry), churn_sum(big.telemetry));
  EXPECT_GT(churn_sum(small.telemetry), 0.0);
  EXPECT_GT(small.telemetry.gauge("stream.churn.other"), 0.0);
  // The capped run's digest is the uncapped run's digest: gauge
  // cardinality is pure telemetry.
  EXPECT_EQ(small.verdict_digest, big.verdict_digest);
}

TEST(Metrics, ExportFormats) {
  MetricsRegistry reg{1};
  reg.add_counter("stream.batches", 3);
  reg.set_gauge("bdd.unique_load", 0.5);
  reg.histogram("stream.wall_latency_ms").record(1.5);
  const MetricsSnapshot snap = reg.snapshot();

  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("scout_stream_batches 3"), std::string::npos);
  EXPECT_NE(prom.find("scout_bdd_unique_load"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"stream.batches\""), std::string::npos);
  EXPECT_NE(json.find("\"stream.wall_latency_ms\""), std::string::npos);
}

// The "stream." counters are pure functions of the event stream: the same
// scenario at 1/2/4 workers, incremental and full mode, must snapshot
// identical deterministic counters (timing histograms are exempt).
TEST(Telemetry, StreamCountersWorkerCountInvariant) {
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(10);
  options.profile.target_pairs = 10 * 40;
  options.events = 120;
  options.batch_ops = 12;
  options.seed = 17;
  options.localize_final = false;

  std::vector<MetricsSnapshot::CounterValue> expected;
  bool first = true;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    const auto executor = runtime::make_executor(threads);
    const MonitoringReport report =
        run_continuous_monitoring(options, *executor);
    const auto got = report.telemetry.counters_with_prefix("stream.");
    ASSERT_FALSE(got.empty());
    EXPECT_GT(report.telemetry.counter("stream.events_drained"), 0u);
    if (first) {
      expected = got;
      first = false;
      continue;
    }
    ASSERT_EQ(got.size(), expected.size()) << "threads " << threads;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].name, expected[i].name) << "threads " << threads;
      EXPECT_EQ(got[i].value, expected[i].value)
          << got[i].name << " at threads " << threads;
    }
  }
}

TEST(Telemetry, MonitorTraceSpansNestAndExport) {
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(8);
  options.profile.target_pairs = 8 * 30;
  options.events = 60;
  options.batch_ops = 12;
  options.seed = 9;
  options.localize_final = false;
  options.collect_trace = true;
  options.snapshot_every_batches = 2;
  runtime::SerialExecutor executor;
  const MonitoringReport report =
      run_continuous_monitoring(options, executor);

  // The trace JSON is a Chrome trace-event object with the metrics
  // snapshot embedded (CI parses it with python -m json.tool).
  ASSERT_FALSE(report.trace_json.empty());
  EXPECT_EQ(report.trace_json.front(), '{');
  EXPECT_NE(report.trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(report.trace_json.find("\"prime\""), std::string::npos);
  EXPECT_NE(report.trace_json.find("\"drain\""), std::string::npos);
  EXPECT_NE(report.trace_json.find("\"metrics\""), std::string::npos);
  EXPECT_GT(report.periodic_snapshot_count, 0u);
}

TEST(Telemetry, TraceScopesNestWithinLane) {
  TraceRecorder rec{2};
  {
    TraceRecorder::Scope outer = rec.span(0, "outer", "test", SimTime{100});
    {
      TraceRecorder::Scope inner =
          rec.span(0, "inner", "test", SimTime{110}, /*batch=*/3);
      inner.set_sim_end(SimTime{120});
    }
    rec.instant(1, "marker", "test", SimTime{115}, "why");
    outer.set_sim_end(SimTime{130});
  }
  const auto spans = rec.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Sorted by wall start: outer opened first.
  EXPECT_EQ(spans[0].name, "outer");
  EXPECT_EQ(spans[1].name, "inner");
  // Proper nesting: inner starts after outer and closes before it.
  EXPECT_GE(spans[1].wall_start_us, spans[0].wall_start_us);
  EXPECT_LE(spans[1].wall_start_us + spans[1].wall_dur_us,
            spans[0].wall_start_us + spans[0].wall_dur_us);
  EXPECT_EQ(spans[1].batch, 3);
  EXPECT_EQ(spans[1].sim_end_ms, 120);
  const auto instants = rec.instants();
  ASSERT_EQ(instants.size(), 1u);
  EXPECT_EQ(instants[0].lane, 1u);
  EXPECT_EQ(instants[0].detail, "why");

  rec.reset();
  EXPECT_TRUE(rec.spans().empty());
  EXPECT_TRUE(rec.instants().empty());
}

}  // namespace
}  // namespace scout
