// End-to-end integration tests of the full SCOUT pipeline (paper Figure 6):
// deploy -> inject -> collect -> check (exact BDD) -> risk model -> localize
// -> correlate.
#include "src/scout/scout_system.h"

#include <gtest/gtest.h>

#include "src/faults/fault_injector.h"
#include "src/faults/physical_faults.h"
#include "src/workload/policy_generator.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

struct SystemFixture : ::testing::Test {
  SystemFixture()
      : three(make_three_tier()),
        net(std::move(three.fabric), std::move(three.policy)) {
    net.deploy();
    net.clock().advance(3'600'000);
  }

  ThreeTierNetwork three;
  SimNetwork net;
  ScoutSystem system;  // default: exact BDD checker
};

TEST_F(SystemFixture, CleanDeploymentProducesEmptyReport) {
  const ScoutReport report = system.analyze_controller(net);
  EXPECT_TRUE(report.missing_rules.empty());
  EXPECT_EQ(report.observations, 0u);
  EXPECT_TRUE(report.localization.hypothesis.empty());
  EXPECT_EQ(report.switches_inconsistent, 0u);
  EXPECT_EQ(report.switches_checked, 3u);
}

TEST_F(SystemFixture, FullFilterFaultLocalizedOnControllerModel) {
  Rng rng{1};
  ObjectFaultInjector injector{net.controller(), rng};
  (void)injector.inject_full(ObjectRef::of(three.port700));

  const ScoutReport report = system.analyze_controller(net);
  EXPECT_EQ(report.missing_rules.size(), 4u);
  EXPECT_EQ(report.switches_inconsistent, 2u);  // S2 and S3
  EXPECT_EQ(report.observations, 2u);           // 2 triplets of App-DB
  EXPECT_TRUE(report.localization.contains(ObjectRef::of(three.port700)));
  EXPECT_GT(report.gamma, 0.0);
  EXPECT_LE(report.gamma, 1.0);
  // Hypothesis is much smaller than the suspect set.
  EXPECT_LT(report.localization.hypothesis.size(), report.suspect_set_size);
}

TEST_F(SystemFixture, SwitchScopedFaultLocalizedOnSwitchModel) {
  Rng rng{2};
  ObjectFaultInjector injector{net.controller(), rng};
  (void)injector.inject_full(ObjectRef::of(three.port80), three.s2);

  const ScoutReport report = system.analyze_switch(net, three.s2);
  // port80 on S2 affects both Web-App and App-DB pairs.
  EXPECT_EQ(report.observations, 2u);
  EXPECT_TRUE(report.localization.contains(ObjectRef::of(three.port80)));
}

TEST_F(SystemFixture, RootCauseForTcamOverflowUseCase) {
  // §V-B use case 1 end-to-end on a tiny-TCAM deployment.
  ThreeTierNetwork small = make_three_tier(/*tcam_capacity=*/24);
  SimNetwork tiny{std::move(small.fabric), std::move(small.policy)};
  tiny.deploy();
  tiny.clock().advance(3'600'000);

  (void)run_tcam_overflow_scenario(tiny.controller(), small.app_db, 100);

  const ScoutReport report = system.analyze_controller(tiny);
  ASSERT_FALSE(report.localization.hypothesis.empty());
  // The faulty objects are the late filters; the engine must attribute at
  // least one of them to TCAM overflow.
  bool overflow_found = false;
  for (const RootCause& rc : report.root_causes) {
    if (rc.type == RootCauseType::kTcamOverflow) overflow_found = true;
  }
  EXPECT_TRUE(overflow_found);
}

TEST_F(SystemFixture, RootCauseForUnresponsiveSwitchUseCase) {
  (void)run_unresponsive_switch_scenario(net.controller(), three.s2,
                                         three.app_db, 3);
  const ScoutReport report = system.analyze_controller(net);
  ASSERT_FALSE(report.localization.hypothesis.empty());
  bool unreachable_found = false;
  for (const RootCause& rc : report.root_causes) {
    if (rc.type == RootCauseType::kSwitchUnreachable &&
        rc.sw == three.s2) {
      unreachable_found = true;
    }
  }
  EXPECT_TRUE(unreachable_found);
}

TEST_F(SystemFixture, ObjectScopeMapsObjectsToSwitches) {
  const ObjectScope scope = ScoutSystem::build_object_scope(net);
  const auto& port700_switches = scope.at(ObjectRef::of(three.port700));
  EXPECT_EQ(port700_switches.size(), 2u);  // S2, S3
  const auto& vrf_switches = scope.at(ObjectRef::of(three.vrf));
  EXPECT_EQ(vrf_switches.size(), 3u);
}

TEST_F(SystemFixture, SyntacticAndBddModesAgreeOnGeneratedPolicy) {
  Rng rng{3};
  GeneratedNetwork generated =
      generate_network(GeneratorProfile::testbed(), rng);
  SimNetwork sim{std::move(generated.fabric), std::move(generated.policy)};
  sim.deploy();
  sim.clock().advance(3'600'000);

  ObjectFaultInjector injector{sim.controller(), rng};
  for (const ObjectRef obj : injector.sample_objects(3)) {
    (void)injector.inject_full(obj);
  }

  const ScoutSystem bdd{ScoutSystem::Options{CheckMode::kExactBdd, {}}};
  const ScoutSystem syn{ScoutSystem::Options{CheckMode::kSyntactic, {}}};
  auto m_bdd = bdd.find_missing_rules(sim);
  auto m_syn = syn.find_missing_rules(sim);
  ASSERT_EQ(m_bdd.size(), m_syn.size());
  // Same rules (compare priorities per switch as identity proxy).
  auto key = [](const LogicalRule& lr) {
    return std::make_tuple(lr.prov.sw.value(), lr.rule.priority);
  };
  std::vector<std::tuple<std::uint32_t, std::uint32_t>> ka, kb;
  for (const auto& lr : m_bdd) ka.push_back(key(lr));
  for (const auto& lr : m_syn) kb.push_back(key(lr));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  EXPECT_EQ(ka, kb);
}

TEST_F(SystemFixture, InconsistentSwitchSweepCoversExactlyFaultySwitches) {
  Rng rng{5};
  ObjectFaultInjector injector{net.controller(), rng};
  // port700 deploys on S2 and S3; fault it everywhere.
  (void)injector.inject_full(ObjectRef::of(three.port700));

  const auto per_switch = system.analyze_inconsistent_switches(net);
  ASSERT_EQ(per_switch.size(), 2u);
  EXPECT_EQ(per_switch[0].first, three.s2);
  EXPECT_EQ(per_switch[1].first, three.s3);
  for (const auto& [sw, report] : per_switch) {
    EXPECT_TRUE(report.localization.contains(ObjectRef::of(three.port700)))
        << "switch " << sw;
    // The per-switch model only sees its own observations.
    EXPECT_EQ(report.observations, 1u);
  }
}

TEST_F(SystemFixture, SweepOnHealthyFabricIsEmpty) {
  EXPECT_TRUE(system.analyze_inconsistent_switches(net).empty());
}

TEST_F(SystemFixture, PartialFaultRecoveredViaChangeLogStage) {
  // Partial faults leave hit ratio < 1; stage 2 must catch the object via
  // its injection-time change record.
  Rng rng{4};
  GeneratedNetwork generated =
      generate_network(GeneratorProfile::testbed(), rng);
  SimNetwork sim{std::move(generated.fabric), std::move(generated.policy)};
  sim.deploy();
  sim.clock().advance(3'600'000);

  ObjectFaultInjector injector{sim.controller(), rng};
  // Find an object that actually splits (partial, not degraded to full).
  ObjectRef target{};
  bool found = false;
  for (const ObjectRef obj : injector.sample_objects(40)) {
    const InjectedFault fault = injector.inject_partial(obj);
    if (fault.rules_removed > 0 && !fault.full) {
      target = obj;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);

  const ScoutReport report = system.analyze_controller(sim);
  EXPECT_TRUE(report.localization.contains(target));
  EXPECT_GE(report.localization.stage2_objects, 0u);
}

}  // namespace
}  // namespace scout
