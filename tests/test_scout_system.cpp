// End-to-end integration tests of the full SCOUT pipeline (paper Figure 6):
// deploy -> inject -> collect -> check (exact BDD) -> risk model -> localize
// -> correlate.
#include "src/scout/scout_system.h"

#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "src/faults/fault_injector.h"
#include "src/faults/physical_faults.h"
#include "src/runtime/campaign.h"
#include "src/scout/experiment.h"
#include "src/workload/policy_generator.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

struct SystemFixture : ::testing::Test {
  SystemFixture()
      : three(make_three_tier()),
        net(std::move(three.fabric), std::move(three.policy)) {
    net.deploy();
    net.clock().advance(3'600'000);
  }

  ThreeTierNetwork three;
  SimNetwork net;
  ScoutSystem system;  // default: exact BDD checker
};

TEST_F(SystemFixture, CleanDeploymentProducesEmptyReport) {
  const ScoutReport report = system.analyze_controller(net);
  EXPECT_TRUE(report.missing_rules.empty());
  EXPECT_EQ(report.observations, 0u);
  EXPECT_TRUE(report.localization.hypothesis.empty());
  EXPECT_EQ(report.switches_inconsistent, 0u);
  EXPECT_EQ(report.switches_checked, 3u);
}

TEST_F(SystemFixture, FullFilterFaultLocalizedOnControllerModel) {
  Rng rng{1};
  ObjectFaultInjector injector{net.controller(), rng};
  (void)injector.inject_full(ObjectRef::of(three.port700));

  const ScoutReport report = system.analyze_controller(net);
  EXPECT_EQ(report.missing_rules.size(), 4u);
  EXPECT_EQ(report.switches_inconsistent, 2u);  // S2 and S3
  EXPECT_EQ(report.observations, 2u);           // 2 triplets of App-DB
  EXPECT_TRUE(report.localization.contains(ObjectRef::of(three.port700)));
  EXPECT_GT(report.gamma, 0.0);
  EXPECT_LE(report.gamma, 1.0);
  // Hypothesis is much smaller than the suspect set.
  EXPECT_LT(report.localization.hypothesis.size(), report.suspect_set_size);
}

TEST_F(SystemFixture, SwitchScopedFaultLocalizedOnSwitchModel) {
  Rng rng{2};
  ObjectFaultInjector injector{net.controller(), rng};
  (void)injector.inject_full(ObjectRef::of(three.port80), three.s2);

  const ScoutReport report = system.analyze_switch(net, three.s2);
  // port80 on S2 affects both Web-App and App-DB pairs.
  EXPECT_EQ(report.observations, 2u);
  EXPECT_TRUE(report.localization.contains(ObjectRef::of(three.port80)));
}

TEST_F(SystemFixture, RootCauseForTcamOverflowUseCase) {
  // §V-B use case 1 end-to-end on a tiny-TCAM deployment.
  ThreeTierNetwork small = make_three_tier(/*tcam_capacity=*/24);
  SimNetwork tiny{std::move(small.fabric), std::move(small.policy)};
  tiny.deploy();
  tiny.clock().advance(3'600'000);

  (void)run_tcam_overflow_scenario(tiny.controller(), small.app_db, 100);

  const ScoutReport report = system.analyze_controller(tiny);
  ASSERT_FALSE(report.localization.hypothesis.empty());
  // The faulty objects are the late filters; the engine must attribute at
  // least one of them to TCAM overflow.
  bool overflow_found = false;
  for (const RootCause& rc : report.root_causes) {
    if (rc.type == RootCauseType::kTcamOverflow) overflow_found = true;
  }
  EXPECT_TRUE(overflow_found);
}

TEST_F(SystemFixture, RootCauseForUnresponsiveSwitchUseCase) {
  (void)run_unresponsive_switch_scenario(net.controller(), three.s2,
                                         three.app_db, 3);
  const ScoutReport report = system.analyze_controller(net);
  ASSERT_FALSE(report.localization.hypothesis.empty());
  bool unreachable_found = false;
  for (const RootCause& rc : report.root_causes) {
    if (rc.type == RootCauseType::kSwitchUnreachable &&
        rc.sw == three.s2) {
      unreachable_found = true;
    }
  }
  EXPECT_TRUE(unreachable_found);
}

TEST_F(SystemFixture, ObjectScopeMapsObjectsToSwitches) {
  const ObjectScope scope = ScoutSystem::build_object_scope(net);
  const auto& port700_switches = scope.at(ObjectRef::of(three.port700));
  EXPECT_EQ(port700_switches.size(), 2u);  // S2, S3
  const auto& vrf_switches = scope.at(ObjectRef::of(three.vrf));
  EXPECT_EQ(vrf_switches.size(), 3u);
}

TEST_F(SystemFixture, SyntacticAndBddModesAgreeOnGeneratedPolicy) {
  Rng rng{3};
  GeneratedNetwork generated =
      generate_network(GeneratorProfile::testbed(), rng);
  SimNetwork sim{std::move(generated.fabric), std::move(generated.policy)};
  sim.deploy();
  sim.clock().advance(3'600'000);

  ObjectFaultInjector injector{sim.controller(), rng};
  for (const ObjectRef obj : injector.sample_objects(3)) {
    (void)injector.inject_full(obj);
  }

  const ScoutSystem bdd{ScoutSystem::Options{CheckMode::kExactBdd, {}}};
  const ScoutSystem syn{ScoutSystem::Options{CheckMode::kSyntactic, {}}};
  auto m_bdd = bdd.find_missing_rules(sim);
  auto m_syn = syn.find_missing_rules(sim);
  ASSERT_EQ(m_bdd.size(), m_syn.size());
  // Same rules (compare priorities per switch as identity proxy).
  auto key = [](const LogicalRule& lr) {
    return std::make_tuple(lr.prov.sw.value(), lr.rule.priority);
  };
  std::vector<std::tuple<std::uint32_t, std::uint32_t>> ka, kb;
  for (const auto& lr : m_bdd) ka.push_back(key(lr));
  for (const auto& lr : m_syn) kb.push_back(key(lr));
  std::sort(ka.begin(), ka.end());
  std::sort(kb.begin(), kb.end());
  EXPECT_EQ(ka, kb);
}

TEST_F(SystemFixture, InconsistentSwitchSweepCoversExactlyFaultySwitches) {
  Rng rng{5};
  ObjectFaultInjector injector{net.controller(), rng};
  // port700 deploys on S2 and S3; fault it everywhere.
  (void)injector.inject_full(ObjectRef::of(three.port700));

  const auto per_switch = system.analyze_inconsistent_switches(net);
  ASSERT_EQ(per_switch.size(), 2u);
  EXPECT_EQ(per_switch[0].first, three.s2);
  EXPECT_EQ(per_switch[1].first, three.s3);
  for (const auto& [sw, report] : per_switch) {
    EXPECT_TRUE(report.localization.contains(ObjectRef::of(three.port700)))
        << "switch " << sw;
    // The per-switch model only sees its own observations.
    EXPECT_EQ(report.observations, 1u);
  }
}

TEST_F(SystemFixture, SweepOnHealthyFabricIsEmpty) {
  EXPECT_TRUE(system.analyze_inconsistent_switches(net).empty());
}

TEST_F(SystemFixture, PartialFaultRecoveredViaChangeLogStage) {
  // Partial faults leave hit ratio < 1; stage 2 must catch the object via
  // its injection-time change record.
  Rng rng{4};
  GeneratedNetwork generated =
      generate_network(GeneratorProfile::testbed(), rng);
  SimNetwork sim{std::move(generated.fabric), std::move(generated.policy)};
  sim.deploy();
  sim.clock().advance(3'600'000);

  ObjectFaultInjector injector{sim.controller(), rng};
  // Find an object that actually splits (partial, not degraded to full).
  ObjectRef target{};
  bool found = false;
  for (const ObjectRef obj : injector.sample_objects(40)) {
    const InjectedFault fault = injector.inject_partial(obj);
    if (fault.rules_removed > 0 && !fault.full) {
      target = obj;
      found = true;
      break;
    }
  }
  ASSERT_TRUE(found);

  const ScoutReport report = system.analyze_controller(sim);
  EXPECT_TRUE(report.localization.contains(target));
  EXPECT_GE(report.localization.stage2_objects, 0u);
}

// ---------------------------------------------------------------------------
// Sharded checker: parallel output must be bit-identical to serial, and
// every checker entry point must agree because they share one path.
// ---------------------------------------------------------------------------

void expect_rules_bitwise_equal(const std::vector<LogicalRule>& a,
                                const std::vector<LogicalRule>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(LogicalRule)), 0)
        << "rule " << i << ": " << a[i] << " vs " << b[i];
  }
}

void expect_reports_bitwise_equal(const ScoutReport& a, const ScoutReport& b) {
  EXPECT_EQ(a.switches_checked, b.switches_checked);
  EXPECT_EQ(a.switches_inconsistent, b.switches_inconsistent);
  EXPECT_EQ(a.extra_rule_count, b.extra_rule_count);
  expect_rules_bitwise_equal(a.missing_rules, b.missing_rules);
  EXPECT_EQ(a.observations, b.observations);
  EXPECT_EQ(a.suspect_set_size, b.suspect_set_size);
  EXPECT_EQ(a.distinct_pairs_affected, b.distinct_pairs_affected);
  EXPECT_EQ(a.endpoint_pairs_affected, b.endpoint_pairs_affected);
  EXPECT_EQ(std::memcmp(&a.gamma, &b.gamma, sizeof(double)), 0)
      << a.gamma << " vs " << b.gamma;
  EXPECT_EQ(a.localization.hypothesis, b.localization.hypothesis);
  EXPECT_EQ(a.localization.observations_total,
            b.localization.observations_total);
  EXPECT_EQ(a.localization.observations_explained,
            b.localization.observations_explained);
  EXPECT_EQ(a.localization.stage2_objects, b.localization.stage2_objects);
  ASSERT_EQ(a.root_causes.size(), b.root_causes.size());
  for (std::size_t i = 0; i < a.root_causes.size(); ++i) {
    EXPECT_EQ(a.root_causes[i].object, b.root_causes[i].object);
    EXPECT_EQ(a.root_causes[i].type, b.root_causes[i].type);
    EXPECT_EQ(a.root_causes[i].sw, b.root_causes[i].sw);
    EXPECT_EQ(a.root_causes[i].explanation, b.root_causes[i].explanation);
  }
}

// A faulted fabric shared by the determinism tests below. Two scales, each
// checked the way its bench checks it: fig8 scale (production profile at
// fig8's runtime trim) with the syntactic mode the accuracy sweeps use —
// a full-fabric exact-BDD pass at that scale costs minutes, which is
// exactly why fig8 doesn't run one — and testbed scale with exact BDD, so
// the per-task BDD-manager discipline is exercised too.
struct ShardedFixtureBase : ::testing::Test {
  void build(GeneratorProfile profile, std::size_t n_faults) {
    Rng rng{17};
    GeneratedNetwork generated = generate_network(profile, rng);
    net = std::make_unique<SimNetwork>(std::move(generated.fabric),
                                       std::move(generated.policy));
    net->deploy();
    net->clock().advance(3'600'000);
    ObjectFaultInjector injector{net->controller(), rng};
    for (const ObjectRef obj : injector.sample_objects(n_faults)) {
      (void)injector.inject_full(obj);
    }
  }

  std::unique_ptr<SimNetwork> net;
};

struct ShardedCheckerFixture : ShardedFixtureBase {
  ShardedCheckerFixture() : system{{CheckMode::kSyntactic, {}}} {
    GeneratorProfile profile = GeneratorProfile::production();
    profile.target_pairs = 6'000;  // fig8's trim; sharing shape kept
    build(profile, 4);
  }

  ScoutSystem system;
};

struct ShardedBddFixture : ShardedFixtureBase {
  ShardedBddFixture() { build(GeneratorProfile::testbed(), 3); }

  ScoutSystem system;  // default: exact BDD checker
};

TEST_F(ShardedCheckerFixture, FindMissingRulesBitIdenticalAt124Workers) {
  runtime::SerialExecutor serial;
  const auto reference = system.find_missing_rules(*net, serial);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t workers : {1u, 2u, 4u}) {
    runtime::ThreadPoolExecutor parallel{workers};
    expect_rules_bitwise_equal(reference,
                               system.find_missing_rules(*net, parallel));
  }
  // The serial convenience overload is the same path.
  expect_rules_bitwise_equal(reference, system.find_missing_rules(*net));
}

TEST_F(ShardedCheckerFixture, AnalyzeBitIdenticalAt124Workers) {
  runtime::SerialExecutor serial;
  const ScoutReport reference = system.analyze_controller(*net, serial);
  ASSERT_FALSE(reference.missing_rules.empty());
  for (const std::size_t workers : {1u, 2u, 4u}) {
    runtime::ThreadPoolExecutor parallel{workers};
    expect_reports_bitwise_equal(reference,
                                 system.analyze_controller(*net, parallel));
  }
  expect_reports_bitwise_equal(reference, system.analyze_controller(*net));
}

TEST_F(ShardedBddFixture, BddModeBitIdenticalAt124Workers) {
  runtime::SerialExecutor serial;
  const auto reference = system.find_missing_rules(*net, serial);
  ASSERT_FALSE(reference.empty());
  for (const std::size_t workers : {1u, 2u, 4u}) {
    runtime::ThreadPoolExecutor parallel{workers};
    expect_rules_bitwise_equal(reference,
                               system.find_missing_rules(*net, parallel));
  }
  runtime::ThreadPoolExecutor parallel{4};
  expect_reports_bitwise_equal(system.analyze_controller(*net, serial),
                               system.analyze_controller(*net, parallel));
}

TEST_F(ShardedCheckerFixture, InconsistentSwitchSweepMatchesSerialAt4Workers) {
  runtime::ThreadPoolExecutor parallel{4};
  const auto reference = system.analyze_inconsistent_switches(*net);
  const auto threaded = system.analyze_inconsistent_switches(*net, parallel);
  ASSERT_EQ(reference.size(), threaded.size());
  ASSERT_FALSE(reference.empty());
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_EQ(reference[i].first, threaded[i].first);
    expect_reports_bitwise_equal(reference[i].second, threaded[i].second);
  }
}

TEST_F(ShardedCheckerFixture, AnalyzeAndFindMissingRulesShareOnePath) {
  // API-drift regression: analyze's stage 1-2 and find_missing_rules must
  // report the same rules because they are the same sharded check.
  const ScoutReport report = system.analyze_controller(*net);
  expect_rules_bitwise_equal(report.missing_rules,
                             system.find_missing_rules(*net));
}

TEST_F(ShardedBddFixture, RemediateVerifiesThroughShardedPath) {
  // BDD mode: the syntactic multiset diff would keep counting rules whose
  // compiled duplicates the injector removed but remediation reinstalls
  // only once (reinstall_rules is remove-then-add per missing rule).
  const ScoutReport report = system.analyze_controller(*net);
  ASSERT_FALSE(report.missing_rules.empty());
  runtime::ThreadPoolExecutor parallel{4};
  // Reinstalling every missing rule on a healthy control plane leaves
  // nothing missing, at any worker count.
  EXPECT_EQ(system.remediate(*net, report, parallel), 0u);
}

TEST_F(SystemFixture, ExtraOnlySwitchCountedByCheckAllAndAnalyze) {
  // A deployed allow rule the policy never compiled: missing stays empty,
  // but the switch is inconsistent and the extra rule is counted — by
  // check_all and analyze alike (the accounting find_missing_rules used to
  // silently drop).
  TcamRule rogue;
  rogue.priority = 5;
  rogue.vrf = TernaryField::exact(0xABC, FieldWidths::kVrf);
  rogue.src_epg = TernaryField::exact(0x1234, FieldWidths::kEpg);
  rogue.dst_epg = TernaryField::exact(0x2345, FieldWidths::kEpg);
  rogue.proto = TernaryField::exact(6, FieldWidths::kProto);
  rogue.dst_port = TernaryField::exact(4444, FieldWidths::kPort);
  rogue.action = RuleAction::kAllow;
  ASSERT_EQ(net.agent(three.s2).tcam().install(rogue), InstallStatus::kOk);

  const FabricCheck check = system.check_all(net);
  EXPECT_TRUE(check.missing_rules.empty());
  EXPECT_EQ(check.inconsistent, (std::vector<SwitchId>{three.s2}));
  EXPECT_EQ(check.extra_rule_count, 1u);

  const ScoutReport report = system.analyze_controller(net);
  EXPECT_EQ(report.switches_inconsistent, 1u);
  EXPECT_EQ(report.extra_rule_count, 1u);
  EXPECT_TRUE(report.missing_rules.empty());
  // Extra-only divergence has an empty failure signature: the per-switch
  // sweep correctly skips it.
  EXPECT_TRUE(system.analyze_inconsistent_switches(net).empty());
}

TEST(ShardedCheckerScaling, MultiWorkerAnalysisFasterThanSerialWhenCoresExist) {
  // Wall-clock acceptance: the sharded check on a >=32-switch fabric must
  // beat serial when the hardware can actually run workers concurrently.
  // On single-core CI runners this is unmeasurable — skip, the determinism
  // tests above still pin correctness.
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >=4 cores for a meaningful speedup measurement";
  }
  AnalysisScalingOptions options;
  options.switches = 48;
  options.pairs_per_switch = 200;
  options.n_faults = 8;
  options.thread_counts = {1, 4};
  const auto points = run_analysis_scaling(options);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].missing_rules, points[1].missing_rules);
  EXPECT_EQ(points[0].switches_inconsistent, points[1].switches_inconsistent);
  // 10% slack: hardware_concurrency() ignores CPU quotas (a --cpus=1
  // container on an 8-core host reports 8), where parallel legitimately
  // only ties serial. A contention regression (locking in the check path)
  // would exceed the slack; the strict speedup number is reported by
  // `scalability --analysis`, which CI runs on dedicated cores.
  EXPECT_LT(points[1].check_seconds, points[0].check_seconds * 1.10)
      << "4-worker check (" << points[1].check_seconds
      << " s) much slower than serial (" << points[0].check_seconds << " s)";
}

}  // namespace
}  // namespace scout
