// Randomized stress over the deployment substrate: interleave policy
// mutations, physical faults and recoveries, then assert the reconciliation
// invariant — after every switch is healthy and resynced, the L-T checker
// finds the fabric fully consistent. This is the substrate-level analogue
// of "the network eventually converges to the policy".
#include <gtest/gtest.h>

#include "src/faults/fault_injector.h"
#include "src/scout/experiment.h"
#include "src/scout/scout_system.h"
#include "src/workload/policy_generator.h"

namespace scout {
namespace {

class DeploymentStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeploymentStress, ResyncRestoresConsistencyAfterChaos) {
  Rng rng{GetParam()};
  GeneratedNetwork generated =
      generate_network(GeneratorProfile::testbed(), rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  net.clock().advance(3'600'000);

  Controller& controller = net.controller();
  const std::vector<ContractId> contracts = [&] {
    std::vector<ContractId> out;
    for (const Contract& c : controller.policy().contracts()) {
      out.push_back(c.id);
    }
    return out;
  }();

  std::vector<FilterId> added_filters;
  // 60 random operations against a live fabric.
  for (int op = 0; op < 60; ++op) {
    net.clock().advance(1'000);
    switch (rng.below(8)) {
      case 0: {  // add a new filter to a random contract
        const auto port = static_cast<std::uint16_t>(20'000 + op);
        added_filters.push_back(controller.deploy_new_filter(
            "stress-filter", {FilterEntry::allow_tcp(port)},
            contracts[rng.below(contracts.size())], nullptr));
        break;
      }
      case 1: {  // undeploy a previously added filter
        if (added_filters.empty()) break;
        const FilterId f = added_filters[rng.below(added_filters.size())];
        for (const Contract& c : controller.policy().contracts()) {
          const auto& fs = c.filters;
          if (std::find(fs.begin(), fs.end(), f) != fs.end()) {
            controller.undeploy_filter(c.id, f);
            break;
          }
        }
        break;
      }
      case 2: {  // migrate a random endpoint to a random leaf
        const auto& endpoints = controller.policy().endpoints();
        const auto& ep = endpoints[rng.below(endpoints.size())];
        const auto leaves = net.fabric().leaves();
        (void)controller.migrate_endpoint(ep.id,
                                          leaves[rng.below(leaves.size())]);
        break;
      }
      case 3: {  // drop the control channel to a random switch
        const auto& agents = net.agents();
        controller.disconnect_switch(
            agents[rng.below(agents.size())]->id());
        break;
      }
      case 4: {  // agent becomes unresponsive
        const auto& agents = net.agents();
        agents[rng.below(agents.size())]->set_responsive(false);
        break;
      }
      case 5: {  // local eviction
        const auto& agents = net.agents();
        (void)agents[rng.below(agents.size())]->evict_rules(
            1 + rng.below(3), net.clock().now());
        break;
      }
      case 6: {  // TCAM corruption
        const auto& agents = net.agents();
        (void)agents[rng.below(agents.size())]->corrupt_tcam_bit(
            rng, net.clock().now(), 0.5);
        break;
      }
      default: {  // object fault
        ObjectFaultInjector injector{controller, rng};
        const auto objs = injector.sample_objects(1);
        if (!objs.empty()) (void)injector.inject_full(objs[0]);
        break;
      }
    }
  }

  // Recovery: heal every channel and agent, then resync everything.
  for (const auto& agent : net.agents()) {
    controller.reconnect_switch(agent->id());
    agent->set_responsive(true);
    agent->recover(net.clock().now());
  }
  controller.recompile();
  for (const auto& agent : net.agents()) {
    const DeployStats stats = controller.resync_switch(agent->id());
    EXPECT_EQ(stats.lost + stats.crashed, 0u);
    EXPECT_EQ(stats.tcam_overflow, 0u);
  }

  // Invariant: the fabric is exactly the policy again.
  const ScoutSystem system{ScoutSystem::Options{CheckMode::kExactBdd, {}}};
  const std::vector<LogicalRule> missing = system.find_missing_rules(net);
  EXPECT_TRUE(missing.empty()) << missing.size() << " rules still missing";
  for (const auto& agent : net.agents()) {
    EXPECT_EQ(agent->tcam().size(),
              net.controller().compiled().rules_for(agent->id()).size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeploymentStress,
                         ::testing::Range<std::uint64_t>(500, 508));

// Determinism regression: identical seeds produce identical experiment
// results, bit for bit. Reproducibility is a design requirement (every
// figure in EXPERIMENTS.md must be regenerable).
TEST(Determinism, AccuracySweepIsBitStable) {
  AccuracyOptions opts;
  opts.profile = GeneratorProfile::testbed();
  opts.model = RiskModelKind::kController;
  opts.runs = 3;
  opts.max_faults = 3;
  opts.benign_changes = 4;
  opts.seed = 77;
  const std::vector<AlgorithmSpec> algorithms{
      {"SCOUT", AlgorithmKind::kScout, 1.0, true}};

  const auto a = run_accuracy_sweep(opts, algorithms);
  const auto b = run_accuracy_sweep(opts, algorithms);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t f = 0; f < a[0].by_faults.size(); ++f) {
    EXPECT_EQ(a[0].by_faults[f].precision, b[0].by_faults[f].precision);
    EXPECT_EQ(a[0].by_faults[f].recall, b[0].by_faults[f].recall);
  }
}

TEST(Determinism, GammaExperimentIsBitStable) {
  GammaOptions opts;
  opts.profile = GeneratorProfile::testbed();
  opts.faults = 20;
  opts.seed = 9;
  opts.bucket_bounds = {10, 20, 40};
  const auto a = run_gamma_experiment(opts);
  const auto b = run_gamma_experiment(opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].samples, b[i].samples);
    EXPECT_EQ(a[i].mean_gamma, b[i].mean_gamma);
  }
}

}  // namespace
}  // namespace scout
