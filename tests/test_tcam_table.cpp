#include "src/tcam/tcam_table.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TcamRule allow(std::uint32_t priority, std::uint16_t port) {
  return TcamRule::exact_allow(priority, 101, 1, 2, 6,
                               TernaryField::exact(port, FieldWidths::kPort));
}

PacketHeader packet(std::uint16_t port) { return {101, 1, 2, 6, port}; }

TEST(TcamTable, InstallKeepsPriorityOrder) {
  TcamTable t{10};
  ASSERT_EQ(t.install(allow(5, 80)), InstallStatus::kOk);
  ASSERT_EQ(t.install(allow(1, 81)), InstallStatus::kOk);
  ASSERT_EQ(t.install(allow(3, 82)), InstallStatus::kOk);
  ASSERT_EQ(t.size(), 3u);
  EXPECT_EQ(t.rules()[0].priority, 1u);
  EXPECT_EQ(t.rules()[1].priority, 3u);
  EXPECT_EQ(t.rules()[2].priority, 5u);
}

TEST(TcamTable, OverflowRejectsBeyondCapacity) {
  TcamTable t{2};
  EXPECT_EQ(t.install(allow(1, 80)), InstallStatus::kOk);
  EXPECT_EQ(t.install(allow(2, 81)), InstallStatus::kOk);
  EXPECT_EQ(t.install(allow(3, 82)), InstallStatus::kOverflow);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.full());
}

TEST(TcamTable, UtilizationTracksFill) {
  TcamTable t{4};
  EXPECT_DOUBLE_EQ(t.utilization(), 0.0);
  (void)t.install(allow(1, 80));
  (void)t.install(allow(2, 81));
  EXPECT_DOUBLE_EQ(t.utilization(), 0.5);
}

TEST(TcamTable, FirstMatchWins) {
  TcamTable t{10};
  TcamRule deny_80 = allow(1, 80);
  deny_80.action = RuleAction::kDeny;
  (void)t.install(deny_80);
  (void)t.install(allow(2, 80));  // shadowed by the deny
  EXPECT_EQ(t.lookup(packet(80)), RuleAction::kDeny);
}

TEST(TcamTable, LookupFallsThroughToDefaultDeny) {
  TcamTable t{10};
  (void)t.install(allow(1, 80));
  (void)t.install(TcamRule::default_deny(100));
  EXPECT_EQ(t.lookup(packet(80)), RuleAction::kAllow);
  EXPECT_EQ(t.lookup(packet(443)), RuleAction::kDeny);
}

TEST(TcamTable, LookupWithoutAnyMatchIsNullopt) {
  TcamTable t{10};
  (void)t.install(allow(1, 80));
  EXPECT_EQ(t.lookup(packet(443)), std::nullopt);
}

TEST(TcamTable, RemoveIfReturnsCount) {
  TcamTable t{10};
  (void)t.install(allow(1, 80));
  (void)t.install(allow(2, 81));
  (void)t.install(allow(3, 80));
  const std::size_t removed = t.remove_if(
      [](const TcamRule& r) { return r.dst_port.value == 80; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(t.size(), 1u);
}

TEST(TcamTable, EvictSkipsCatchAllDeny) {
  TcamTable t{10};
  (void)t.install(allow(1, 80));
  (void)t.install(allow(2, 81));
  (void)t.install(TcamRule::default_deny(100));
  const auto evicted = t.evict_one();
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->dst_port.value, 81u);  // lowest-priority non-default
  EXPECT_EQ(t.size(), 2u);
  // Default deny still present.
  EXPECT_EQ(t.lookup(packet(9999)), RuleAction::kDeny);
}

TEST(TcamTable, EvictOnEmptyOrDenyOnlyTableFails) {
  TcamTable t{10};
  EXPECT_FALSE(t.evict_one().has_value());
  (void)t.install(TcamRule::default_deny(100));
  EXPECT_FALSE(t.evict_one().has_value());
}

TEST(TcamTable, CorruptionChangesExactlyOneRule) {
  TcamTable t{10};
  (void)t.install(allow(1, 80));
  (void)t.install(allow(2, 81));
  (void)t.install(TcamRule::default_deny(100));
  const std::vector<TcamRule> before(t.rules().begin(), t.rules().end());

  Rng rng{1};
  const auto idx = t.corrupt_random_bit(rng);
  ASSERT_TRUE(idx.has_value());
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    if (!before[i].same_match(t.rules()[i])) ++diffs;
  }
  EXPECT_EQ(diffs, 1u);
}

TEST(TcamTable, CorruptionPreservesValueMaskInvariant) {
  TcamTable t{100};
  for (std::uint32_t i = 0; i < 50; ++i) {
    (void)t.install(allow(i, static_cast<std::uint16_t>(1000 + i)));
  }
  Rng rng{7};
  for (int i = 0; i < 200; ++i) (void)t.corrupt_random_bit(rng);
  for (const TcamRule& r : t.rules()) {
    EXPECT_EQ(r.vrf.value & ~r.vrf.mask, 0u);
    EXPECT_EQ(r.src_epg.value & ~r.src_epg.mask, 0u);
    EXPECT_EQ(r.dst_epg.value & ~r.dst_epg.mask, 0u);
    EXPECT_EQ(r.proto.value & ~r.proto.mask, 0u);
    EXPECT_EQ(r.dst_port.value & ~r.dst_port.mask, 0u);
  }
}

TEST(TcamTable, CorruptionOnEmptyTableReturnsNullopt) {
  TcamTable t{10};
  Rng rng{1};
  EXPECT_FALSE(t.corrupt_random_bit(rng).has_value());
}

TEST(TcamTable, ClearEmptiesTable) {
  TcamTable t{10};
  (void)t.install(allow(1, 80));
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_FALSE(t.full());
}

}  // namespace
}  // namespace scout
