#include "src/policy/change_log.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

const ObjectRef kFilter1 = ObjectRef::of(FilterId{1});
const ObjectRef kFilter2 = ObjectRef::of(FilterId{2});
const ObjectRef kEpg1 = ObjectRef::of(EpgId{1});

TEST(ChangeLog, RecordsAccumulateInOrder) {
  ChangeLog log;
  log.record(SimTime{1}, kFilter1, ChangeAction::kAdd);
  log.record(SimTime{2}, kFilter2, ChangeAction::kAdd);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0].object, kFilter1);
  EXPECT_EQ(log.records()[1].object, kFilter2);
}

TEST(ChangeLog, HistoryNewestFirst) {
  ChangeLog log;
  log.record(SimTime{1}, kFilter1, ChangeAction::kAdd);
  log.record(SimTime{5}, kFilter1, ChangeAction::kModify);
  log.record(SimTime{7}, kFilter2, ChangeAction::kAdd);
  const auto history = log.history(kFilter1);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].action, ChangeAction::kModify);
  EXPECT_EQ(history[1].action, ChangeAction::kAdd);
}

TEST(ChangeLog, ChangedSinceRespectsWindow) {
  ChangeLog log;
  log.record(SimTime{100}, kFilter1, ChangeAction::kAdd);
  log.record(SimTime{900}, kFilter2, ChangeAction::kModify);
  log.record(SimTime{950}, kEpg1, ChangeAction::kModify);

  const auto recent = log.changed_since(SimTime{1000}, 200);
  EXPECT_EQ(recent.size(), 2u);
  EXPECT_TRUE(recent.contains(kFilter2));
  EXPECT_TRUE(recent.contains(kEpg1));
  EXPECT_FALSE(recent.contains(kFilter1));
}

TEST(ChangeLog, ChangedSinceExcludesCutoffBoundary) {
  ChangeLog log;
  log.record(SimTime{800}, kFilter1, ChangeAction::kModify);
  // cutoff = 1000 - 200 = 800; records at exactly the cutoff are excluded
  // (window is half-open (cutoff, now]).
  EXPECT_TRUE(log.changed_since(SimTime{1000}, 200).empty());
  EXPECT_EQ(log.changed_since(SimTime{1000}, 201).size(), 1u);
}

TEST(ChangeLog, LastChangeFindsNewest) {
  ChangeLog log;
  log.record(SimTime{1}, kFilter1, ChangeAction::kAdd);
  log.record(SimTime{9}, kFilter1, ChangeAction::kDelete);
  const auto last = log.last_change(kFilter1);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->time, SimTime{9});
  EXPECT_EQ(last->action, ChangeAction::kDelete);
  EXPECT_FALSE(log.last_change(kEpg1).has_value());
}

TEST(ChangeLog, PushedToSwitchesPreserved) {
  ChangeLog log;
  log.record(SimTime{1}, kFilter1, ChangeAction::kAdd,
             {SwitchId{1}, SwitchId{3}});
  EXPECT_EQ(log.records()[0].pushed_to.size(), 2u);
}

TEST(ChangeLog, ClearEmpties) {
  ChangeLog log;
  log.record(SimTime{1}, kFilter1, ChangeAction::kAdd);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(ChangeAction, Names) {
  EXPECT_EQ(to_string(ChangeAction::kAdd), "add");
  EXPECT_EQ(to_string(ChangeAction::kModify), "modify");
  EXPECT_EQ(to_string(ChangeAction::kDelete), "delete");
}

}  // namespace
}  // namespace scout
