#include "src/policy/change_log.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace scout {
namespace {

const ObjectRef kFilter1 = ObjectRef::of(FilterId{1});
const ObjectRef kFilter2 = ObjectRef::of(FilterId{2});
const ObjectRef kEpg1 = ObjectRef::of(EpgId{1});

TEST(ChangeLog, RecordsAccumulateInOrder) {
  ChangeLog log;
  log.record(SimTime{1}, kFilter1, ChangeAction::kAdd);
  log.record(SimTime{2}, kFilter2, ChangeAction::kAdd);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.records()[0].object, kFilter1);
  EXPECT_EQ(log.records()[1].object, kFilter2);
}

TEST(ChangeLog, HistoryNewestFirst) {
  ChangeLog log;
  log.record(SimTime{1}, kFilter1, ChangeAction::kAdd);
  log.record(SimTime{5}, kFilter1, ChangeAction::kModify);
  log.record(SimTime{7}, kFilter2, ChangeAction::kAdd);
  const auto history = log.history(kFilter1);
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].action, ChangeAction::kModify);
  EXPECT_EQ(history[1].action, ChangeAction::kAdd);
}

TEST(ChangeLog, ChangedSinceRespectsWindow) {
  ChangeLog log;
  log.record(SimTime{100}, kFilter1, ChangeAction::kAdd);
  log.record(SimTime{900}, kFilter2, ChangeAction::kModify);
  log.record(SimTime{950}, kEpg1, ChangeAction::kModify);

  const auto recent = log.changed_since(SimTime{1000}, 200);
  EXPECT_EQ(recent.size(), 2u);
  EXPECT_TRUE(recent.contains(kFilter2));
  EXPECT_TRUE(recent.contains(kEpg1));
  EXPECT_FALSE(recent.contains(kFilter1));
}

TEST(ChangeLog, ChangedSinceExcludesCutoffBoundary) {
  ChangeLog log;
  log.record(SimTime{800}, kFilter1, ChangeAction::kModify);
  // cutoff = 1000 - 200 = 800; records at exactly the cutoff are excluded
  // (window is half-open (cutoff, now]).
  EXPECT_TRUE(log.changed_since(SimTime{1000}, 200).empty());
  EXPECT_EQ(log.changed_since(SimTime{1000}, 201).size(), 1u);
}

TEST(ChangeLog, ChangedSinceBoundarySemanticsPinned) {
  // The binary-searched window start must keep the exact half-open
  // (now - window_ms, now] semantics, record-at-`now` included.
  ChangeLog log;
  log.record(SimTime{100}, kFilter1, ChangeAction::kModify);  // at cutoff
  log.record(SimTime{101}, kFilter2, ChangeAction::kModify);  // just inside
  log.record(SimTime{200}, kEpg1, ChangeAction::kModify);     // at now
  const auto recent = log.changed_since(SimTime{200}, 100);
  EXPECT_EQ(recent.size(), 2u);
  EXPECT_FALSE(recent.contains(kFilter1));
  EXPECT_TRUE(recent.contains(kFilter2));
  EXPECT_TRUE(recent.contains(kEpg1));
  // Duplicate timestamps straddling the cutoff: every record strictly
  // after the cutoff contributes, all at-cutoff copies are excluded.
  ChangeLog dup;
  dup.record(SimTime{50}, kFilter1, ChangeAction::kModify);
  dup.record(SimTime{50}, kFilter2, ChangeAction::kModify);
  dup.record(SimTime{51}, kEpg1, ChangeAction::kModify);
  dup.record(SimTime{51}, kFilter1, ChangeAction::kModify);
  const auto edge = dup.changed_since(SimTime{100}, 50);
  EXPECT_EQ(edge.size(), 2u);
  EXPECT_TRUE(edge.contains(kEpg1));
  EXPECT_TRUE(edge.contains(kFilter1));
  EXPECT_FALSE(edge.contains(kFilter2));
}

TEST(ChangeLog, ChangedSinceInterplayWithTruncate) {
  ChangeLog log;
  log.record(SimTime{10}, kFilter1, ChangeAction::kModify);
  log.record(SimTime{20}, kFilter2, ChangeAction::kModify);
  log.record(SimTime{30}, kEpg1, ChangeAction::kModify);
  EXPECT_EQ(log.changed_since(SimTime{30}, 25).size(), 3u);
  // Truncating to the repair-journal watermark drops the tail records —
  // the window must only see survivors, at every boundary.
  log.truncate(1);
  const auto after = log.changed_since(SimTime{30}, 25);
  EXPECT_EQ(after.size(), 1u);
  EXPECT_TRUE(after.contains(kFilter1));
  // Appending after the truncate keeps the time-ordered invariant the
  // binary search rests on.
  log.record(SimTime{40}, kEpg1, ChangeAction::kModify);
  EXPECT_EQ(log.changed_since(SimTime{40}, 31).size(), 2u);
  EXPECT_TRUE(log.changed_since(SimTime{40}, 5).contains(kEpg1));
}

TEST(ChangeLog, ChangedSinceMatchesLinearReference) {
  // Randomized windows against a linear re-scan of the same log.
  Rng rng{2024};
  ChangeLog log;
  std::int64_t t = 0;
  for (int i = 0; i < 300; ++i) {
    t += static_cast<std::int64_t>(rng.below(3));  // duplicates included
    const std::uint32_t raw = static_cast<std::uint32_t>(rng.below(40));
    log.record(SimTime{t}, ObjectRef::of(FilterId{raw}),
               ChangeAction::kModify);
  }
  for (int trial = 0; trial < 200; ++trial) {
    const SimTime now{static_cast<std::int64_t>(rng.below(
        static_cast<std::uint64_t>(t + 10)))};
    const auto window_ms = static_cast<std::int64_t>(rng.below(
        static_cast<std::uint64_t>(t + 10)));
    std::unordered_set<ObjectRef> reference;
    const SimTime cutoff{now.millis() - window_ms};
    for (const ChangeRecord& r : log.records()) {
      if (r.time > cutoff) reference.insert(r.object);
    }
    EXPECT_EQ(log.changed_since(now, window_ms), reference)
        << "now=" << now << " window=" << window_ms;
  }
}

TEST(ChangeLog, LastChangeFindsNewest) {
  ChangeLog log;
  log.record(SimTime{1}, kFilter1, ChangeAction::kAdd);
  log.record(SimTime{9}, kFilter1, ChangeAction::kDelete);
  const auto last = log.last_change(kFilter1);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->time, SimTime{9});
  EXPECT_EQ(last->action, ChangeAction::kDelete);
  EXPECT_FALSE(log.last_change(kEpg1).has_value());
}

TEST(ChangeLog, PushedToSwitchesPreserved) {
  ChangeLog log;
  log.record(SimTime{1}, kFilter1, ChangeAction::kAdd,
             {SwitchId{1}, SwitchId{3}});
  EXPECT_EQ(log.records()[0].pushed_to.size(), 2u);
}

TEST(ChangeLog, ClearEmpties) {
  ChangeLog log;
  log.record(SimTime{1}, kFilter1, ChangeAction::kAdd);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(ChangeAction, Names) {
  EXPECT_EQ(to_string(ChangeAction::kAdd), "add");
  EXPECT_EQ(to_string(ChangeAction::kModify), "modify");
  EXPECT_EQ(to_string(ChangeAction::kDelete), "delete");
}

}  // namespace
}  // namespace scout
