#include "src/localization/score.h"

#include <gtest/gtest.h>

#include "src/checker/equivalence_checker.h"
#include "src/controller/compiler.h"
#include "src/faults/fault_injector.h"
#include "src/scout/sim_network.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

TEST(Score, RejectsBadThreshold) {
  EXPECT_THROW(ScoreLocalizer{0.0}, std::invalid_argument);
  EXPECT_THROW(ScoreLocalizer{1.5}, std::invalid_argument);
  EXPECT_NO_THROW(ScoreLocalizer{0.6});
  EXPECT_NO_THROW(ScoreLocalizer{1.0});
}

TEST(Score, ThresholdIsStored) {
  EXPECT_DOUBLE_EQ(ScoreLocalizer{0.6}.hit_threshold(), 0.6);
}

// SCORE-1 on a full object fault localizes it (plus hit-ratio-1 ties).
TEST(Score, FullFaultLocalized) {
  ThreeTierNetwork three = make_three_tier();
  SimNetwork net{std::move(three.fabric), std::move(three.policy)};
  net.deploy();

  Rng rng{1};
  ObjectFaultInjector injector{net.controller(), rng};
  const ObjectRef target = ObjectRef::of(three.port700);
  const InjectedFault fault = injector.inject_full(target);
  EXPECT_GT(fault.rules_removed, 0u);

  // Build + augment the controller model.
  const PolicyIndex index{net.controller().policy()};
  RiskModel model = RiskModel::build_controller_model(index);
  EquivalenceChecker checker{CheckMode::kExactBdd};
  for (const auto& agent : net.agents()) {
    auto result = checker.check(
        net.controller().compiled().rules_for(agent->id()),
        agent->collect_tcam());
    model.augment(result.missing);
  }

  const LocalizationResult result = ScoreLocalizer{1.0}.localize(model);
  EXPECT_TRUE(result.contains(target));
  EXPECT_EQ(result.unexplained(), 0u);
}

// A partial object fault (hit ratio < threshold) is missed by SCORE-1:
// the observations stay unexplained — the paper's core criticism (§IV-B).
TEST(Score, PartialFaultBelowThresholdIsMissed) {
  RiskModel model = RiskModel::empty(RiskModelKind::kSwitch);
  const auto r = model.add_risk(ObjectRef::of(FilterId{7}));
  for (std::uint32_t i = 0; i < 10; ++i) {
    const auto e = model.add_element(
        RiskElement{SwitchId{0}, EpgPair{EpgId{i}, EpgId{i + 100}}});
    model.add_dependency(e, r);
    if (i == 0) model.mark_edge_failed(e, r);  // hit ratio 0.1
  }
  const LocalizationResult at_1 = ScoreLocalizer{1.0}.localize(model);
  EXPECT_TRUE(at_1.hypothesis.empty());
  EXPECT_EQ(at_1.unexplained(), 1u);

  const LocalizationResult at_06 = ScoreLocalizer{0.6}.localize(model);
  EXPECT_TRUE(at_06.hypothesis.empty());

  // Only a very low threshold catches it.
  const LocalizationResult at_01 = ScoreLocalizer{0.1}.localize(model);
  EXPECT_TRUE(at_01.contains(ObjectRef::of(FilterId{7})));
}

TEST(Score, ExplainedCountsAreConsistent) {
  RiskModel model = RiskModel::empty(RiskModelKind::kSwitch);
  const auto r = model.add_risk(ObjectRef::of(FilterId{1}));
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto e = model.add_element(
        RiskElement{SwitchId{0}, EpgPair{EpgId{i}, EpgId{i + 10}}});
    model.add_dependency(e, r);
    model.mark_edge_failed(e, r);
  }
  const LocalizationResult result = ScoreLocalizer{1.0}.localize(model);
  EXPECT_EQ(result.observations_total, 4u);
  EXPECT_EQ(result.observations_explained, 4u);
  EXPECT_EQ(result.unexplained(), 0u);
  EXPECT_EQ(result.iterations, 1u);
}

}  // namespace
}  // namespace scout
