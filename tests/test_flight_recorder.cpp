// Flight recorder: bounded-memory ring semantics (wraparound keeps the
// newest entries, capacity rounds to a power of two and never grows), the
// JSON dump schema CI validates, and the SCOUT_CHECK abort hook — a death
// test proves a failing check leaves a parseable flight dump behind.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/check.h"
#include "src/stream/cause.h"
#include "src/telemetry/flight_recorder.h"

namespace scout {
namespace {

using telemetry::FlightRecorder;

TEST(FlightRecorder, CapacityRoundsUpToPowerOfTwo) {
  FlightRecorder rec{{.lanes = 1, .capacity_per_lane = 5}};
  EXPECT_EQ(rec.capacity_per_lane(), 8u);
  FlightRecorder exact{{.lanes = 1, .capacity_per_lane = 16}};
  EXPECT_EQ(exact.capacity_per_lane(), 16u);
  FlightRecorder tiny{{.lanes = 1, .capacity_per_lane = 0}};
  EXPECT_GE(tiny.capacity_per_lane(), 1u);
}

TEST(FlightRecorder, WraparoundKeepsNewestEntriesInOrder) {
  FlightRecorder rec{{.lanes = 1, .capacity_per_lane = 8}};
  for (int i = 0; i < 20; ++i) {
    rec.instant(0, "tick", static_cast<double>(i));
  }
  EXPECT_EQ(rec.total_recorded(), 20u);
  const auto lanes = rec.snapshot();
  ASSERT_EQ(lanes.size(), 1u);
  EXPECT_EQ(lanes[0].recorded, 20u);
  // Exactly `capacity` survivors: the newest 8, oldest → newest.
  ASSERT_EQ(lanes[0].entries.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(lanes[0].entries[i].value,
                     static_cast<double>(12 + i));
  }
}

TEST(FlightRecorder, BoundedMemoryAcrossSustainedRecording) {
  // Property: no matter how many entries are recorded, a snapshot never
  // exceeds lanes * capacity — the recorder is a fixed allocation.
  FlightRecorder rec{{.lanes = 2, .capacity_per_lane = 16}};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 1000; ++i) {
      rec.instant(static_cast<std::size_t>(i % 2), "spin",
                  static_cast<double>(i));
    }
    const auto lanes = rec.snapshot();
    ASSERT_EQ(lanes.size(), 2u);
    for (const auto& lane : lanes) {
      EXPECT_LE(lane.entries.size(), rec.capacity_per_lane());
    }
  }
  EXPECT_EQ(rec.total_recorded(), 5000u);
}

TEST(FlightRecorder, LanesRecordIndependently) {
  FlightRecorder rec{{.lanes = 3, .capacity_per_lane = 8}};
  rec.instant(0, "a", 1);
  rec.instant(2, "c", 3);
  rec.instant(2, "c2", 4);
  const auto lanes = rec.snapshot();
  ASSERT_EQ(lanes.size(), 3u);
  EXPECT_EQ(lanes[0].entries.size(), 1u);
  EXPECT_TRUE(lanes[1].entries.empty());
  EXPECT_EQ(lanes[2].entries.size(), 2u);
}

TEST(FlightRecorder, NamesTruncateInsteadOfOverflowing) {
  FlightRecorder rec{{.lanes = 1, .capacity_per_lane = 4}};
  rec.instant(0, "a-name-far-longer-than-the-inline-capacity", 0);
  const auto lanes = rec.snapshot();
  ASSERT_EQ(lanes[0].entries.size(), 1u);
  const std::string name = lanes[0].entries[0].name;
  EXPECT_LT(name.size(), FlightRecorder::kNameCapacity);
  EXPECT_EQ(name.substr(0, 6), "a-name");
}

TEST(FlightRecorder, JsonDumpCarriesSchemaAndDecodedCauses) {
  FlightRecorder rec{{.lanes = 1, .capacity_per_lane = 8}};
  FlightRecorder::Entry e;
  e.kind = FlightRecorder::EntryKind::kEvent;
  FlightRecorder::set_name(e, "rule_evicted");
  e.seq = 42;
  e.sw = 7;
  e.sim_ms = 1000;
  e.cause = stream::CauseId::make(stream::CauseEngine::kGray, 3).raw();
  rec.record(0, e);
  rec.span(0, "drain", 1.25, /*batch=*/9);

  const std::string json = rec.to_json();
  EXPECT_NE(json.find("\"scout-flight-recorder-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"rule_evicted\""), std::string::npos);
  // Causes decode to the engine#ordinal labels the incident log uses.
  EXPECT_NE(json.find("gray#3"), std::string::npos);
  EXPECT_NE(json.find("\"drain\""), std::string::npos);
}

[[noreturn]] void crash_with_flight_dump(const std::string& path) {
  FlightRecorder rec{{.lanes = 1, .capacity_per_lane = 32}};
  rec.instant(0, "before_crash", 17);
  rec.arm_abort_dump(path);
  SCOUT_CHECK(false, "flight-recorder death test");
  std::abort();  // unreachable; satisfies [[noreturn]]
}

TEST(FlightRecorderDeathTest, FailedCheckDumpsParseableFlight) {
  const std::string path = "flight_abort_dump_test.json";
  std::remove(path.c_str());
  EXPECT_DEATH(crash_with_flight_dump(path),
               "flight-recorder death test");
  // The death-test child wrote the dump on its way down; parse it here.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr) << "abort hook did not write " << path;
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_NE(content.find("\"scout-flight-recorder-v1\""), std::string::npos);
  EXPECT_NE(content.find("\"before_crash\""), std::string::npos);
  EXPECT_EQ(content.front(), '{');
  // Balanced braces is the cheap proxy for "json.tool would accept it";
  // CI runs the real validator on the scoutctl dump.
  long depth = 0;
  for (const char c : content) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(FlightRecorder, DisarmedDestructorLeavesHookClear) {
  // Arming then destroying must disarm: a later recorder can arm again
  // and a check failure after destruction must not touch freed memory.
  const std::string path = "flight_disarm_test.json";
  {
    FlightRecorder rec{{.lanes = 1, .capacity_per_lane = 4}};
    rec.arm_abort_dump(path);
  }
  FlightRecorder::disarm_abort_dump();  // idempotent
  std::remove(path.c_str());
  SUCCEED();
}

}  // namespace
}  // namespace scout
