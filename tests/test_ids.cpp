#include "src/common/ids.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "src/policy/object_ref.h"

namespace scout {
namespace {

TEST(Ids, DefaultConstructedIsInvalid) {
  EpgId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, EpgId::invalid());
}

TEST(Ids, ExplicitValueIsValid) {
  EpgId id{7};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(Ids, OrderingFollowsValue) {
  EXPECT_LT(VrfId{1}, VrfId{2});
  EXPECT_EQ(VrfId{3}, VrfId{3});
  EXPECT_NE(VrfId{3}, VrfId{4});
}

TEST(Ids, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<EpgId, VrfId>);
  static_assert(!std::is_convertible_v<EpgId, VrfId>);
  static_assert(!std::is_convertible_v<std::uint32_t, EpgId>);
}

TEST(Ids, HashSpreadsConsecutiveIds) {
  std::unordered_set<std::size_t> hashes;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    hashes.insert(std::hash<SwitchId>{}(SwitchId{i}));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

TEST(Ids, StreamsAsValue) {
  std::ostringstream os;
  os << ContractId{42};
  EXPECT_EQ(os.str(), "42");
}

TEST(ObjectRef, FactoriesPreserveTypeAndValue) {
  const ObjectRef r = ObjectRef::of(FilterId{9});
  EXPECT_EQ(r.type(), ObjectType::kFilter);
  EXPECT_EQ(r.raw(), 9u);
  EXPECT_EQ(r.as_filter(), FilterId{9});
}

TEST(ObjectRef, EqualityRequiresTypeAndValue) {
  EXPECT_NE(ObjectRef::of(EpgId{1}), ObjectRef::of(VrfId{1}));
  EXPECT_EQ(ObjectRef::of(EpgId{1}), ObjectRef::of(EpgId{1}));
  EXPECT_NE(ObjectRef::of(EpgId{1}), ObjectRef::of(EpgId{2}));
}

TEST(ObjectRef, HashDistinguishesTypes) {
  std::unordered_set<ObjectRef> set;
  set.insert(ObjectRef::of(EpgId{5}));
  set.insert(ObjectRef::of(VrfId{5}));
  set.insert(ObjectRef::of(ContractId{5}));
  set.insert(ObjectRef::of(FilterId{5}));
  set.insert(ObjectRef::of(SwitchId{5}));
  EXPECT_EQ(set.size(), 5u);
}

TEST(ObjectRef, PrintsTypePrefix) {
  std::ostringstream os;
  os << ObjectRef::of(VrfId{101});
  EXPECT_EQ(os.str(), "VRF:101");
}

}  // namespace
}  // namespace scout
