#include "src/scout/metrics.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

std::unordered_set<ObjectRef> truth(std::initializer_list<std::uint32_t> ids) {
  std::unordered_set<ObjectRef> out;
  for (const std::uint32_t id : ids) out.insert(ObjectRef::of(FilterId{id}));
  return out;
}

std::vector<ObjectRef> hypo(std::initializer_list<std::uint32_t> ids) {
  std::vector<ObjectRef> out;
  for (const std::uint32_t id : ids) out.push_back(ObjectRef::of(FilterId{id}));
  return out;
}

TEST(Metrics, PerfectHypothesis) {
  const PrecisionRecall pr = evaluate_hypothesis(hypo({1, 2}), truth({1, 2}));
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.f1(), 1.0);
}

TEST(Metrics, FalsePositiveLowersPrecisionOnly) {
  const PrecisionRecall pr =
      evaluate_hypothesis(hypo({1, 2, 3}), truth({1, 2}));
  EXPECT_NEAR(pr.precision, 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_EQ(pr.false_positives, 1u);
}

TEST(Metrics, FalseNegativeLowersRecallOnly) {
  const PrecisionRecall pr = evaluate_hypothesis(hypo({1}), truth({1, 2}));
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.5);
  EXPECT_EQ(pr.false_negatives, 1u);
}

TEST(Metrics, TypeMismatchIsFalsePositive) {
  const std::vector<ObjectRef> h{ObjectRef::of(ContractId{1})};
  const PrecisionRecall pr = evaluate_hypothesis(h, truth({1}));
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
}

TEST(Metrics, EmptyHypothesisAgainstNonEmptyTruth) {
  const PrecisionRecall pr = evaluate_hypothesis({}, truth({1}));
  EXPECT_DOUBLE_EQ(pr.precision, 1.0);  // vacuous: no false positives
  EXPECT_DOUBLE_EQ(pr.recall, 0.0);
  EXPECT_DOUBLE_EQ(pr.f1(), 0.0);
}

TEST(Metrics, EmptyTruthIsPerfectRecall) {
  const PrecisionRecall pr = evaluate_hypothesis(hypo({1}), {});
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
  EXPECT_DOUBLE_EQ(pr.precision, 0.0);
}

TEST(Metrics, DuplicatesInHypothesisCountedOncePositive) {
  const PrecisionRecall pr =
      evaluate_hypothesis(hypo({1, 1}), truth({1}));
  EXPECT_EQ(pr.true_positives, 1u);
  EXPECT_DOUBLE_EQ(pr.recall, 1.0);
}

TEST(Metrics, SuspectReductionBasics) {
  EXPECT_DOUBLE_EQ(suspect_reduction(5, 100), 0.05);
  EXPECT_DOUBLE_EQ(suspect_reduction(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(suspect_reduction(5, 0), 0.0);
  EXPECT_DOUBLE_EQ(suspect_reduction(10, 10), 1.0);
}

TEST(Metrics, BoundsHoldForRandomInputs) {
  for (std::uint32_t h = 0; h < 20; ++h) {
    for (std::uint32_t g = 1; g < 20; ++g) {
      std::vector<ObjectRef> hypothesis;
      for (std::uint32_t i = 0; i < h; ++i) {
        hypothesis.push_back(ObjectRef::of(FilterId{i}));
      }
      std::unordered_set<ObjectRef> ground;
      for (std::uint32_t i = 10; i < 10 + g; ++i) {
        ground.insert(ObjectRef::of(FilterId{i}));
      }
      const PrecisionRecall pr = evaluate_hypothesis(hypothesis, ground);
      EXPECT_GE(pr.precision, 0.0);
      EXPECT_LE(pr.precision, 1.0);
      EXPECT_GE(pr.recall, 0.0);
      EXPECT_LE(pr.recall, 1.0);
      EXPECT_EQ(pr.true_positives + pr.false_negatives, ground.size());
    }
  }
}

}  // namespace
}  // namespace scout
