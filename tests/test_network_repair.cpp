// Differential test harness for the per-worker cached sweep networks
// (exact repair). Two proof obligations:
//
//  1. Identity: after randomized inject/repair sequences covering every
//     journaled fault kind (rule drop full/partial/VRF-scoped, stale-copy
//     adds, bit-flip modifications, agent crash, unresponsiveness), the
//     network fingerprint equals both its own pre-injection state and a
//     freshly deployed network's — repaired state is bit-identical to
//     fresh state.
//
//  2. Results: accuracy sweeps, gamma and scalability campaigns on cached
//     networks are memcmp-identical to fresh-build-per-cell runs at 1, 2
//     and 4 workers across seeds, and a profile switch rebuilds instead of
//     repairing.
#include <cstring>
#include <memory>

#include <gtest/gtest.h>

#include "src/faults/fault_injector.h"
#include "src/faults/fault_policy.h"
#include "src/faults/gray_faults.h"
#include "src/faults/physical_faults.h"
#include "src/faults/repair_journal.h"
#include "src/faults/storm.h"
#include "src/scout/experiment.h"
#include "src/scout/sim_network.h"
#include "src/workload/policy_generator.h"

namespace scout {
namespace {

std::unique_ptr<SimNetwork> make_net(const GeneratorProfile& profile,
                                     std::uint64_t seed) {
  Rng rng{seed};
  GeneratedNetwork generated = generate_network(profile, rng);
  auto net = std::make_unique<SimNetwork>(std::move(generated.fabric),
                                          std::move(generated.policy));
  net->deploy();
  net->clock().advance(3'600'000);
  return net;
}

LogicalRule first_compiled_rule(SimNetwork& net, SwitchId sw) {
  const auto& rules = net.controller().compiled().rules_for(sw);
  EXPECT_FALSE(rules.empty());
  return rules.front();
}

// ---------------------------------------------------------------------------
// Fingerprint sensitivity: a digest that misses state would vacuously pass
// the identity tests below.
// ---------------------------------------------------------------------------

TEST(StateFingerprint, DetectsEveryJournaledMutationKind) {
  const GeneratorProfile profile = GeneratorProfile::testbed();
  auto net = make_net(profile, 11);
  const std::uint64_t fp0 = net->state_fingerprint();
  const SimTime t0 = net->clock().now();

  // Equal rebuild -> equal fingerprint.
  EXPECT_EQ(make_net(profile, 11)->state_fingerprint(), fp0);
  // Different seed -> different network -> different fingerprint.
  EXPECT_NE(make_net(profile, 12)->state_fingerprint(), fp0);

  // Clock.
  net->clock().advance(1);
  EXPECT_NE(net->state_fingerprint(), fp0);
  net->clock().reset_to(t0);
  ASSERT_EQ(net->state_fingerprint(), fp0);

  // Change log.
  net->controller().record_benign_change(
      ObjectRef::of(net->agents().front()->id()));
  EXPECT_NE(net->state_fingerprint(), fp0);
  net->controller().change_log().truncate(
      net->controller().change_log().size() - 1);
  net->clock().reset_to(t0);  // the record ticked the clock
  ASSERT_EQ(net->state_fingerprint(), fp0);

  // TCAM contents.
  SwitchAgent& agent = *net->agents().front();
  const TcamRule removed = agent.tcam().rules().front();
  ASSERT_TRUE(agent.tcam().remove_one(removed));
  EXPECT_NE(net->state_fingerprint(), fp0);
  ASSERT_EQ(agent.tcam().install(removed), InstallStatus::kOk);
  ASSERT_EQ(net->state_fingerprint(), fp0);

  // Agent fault flags.
  agent.set_responsive(false);
  EXPECT_NE(net->state_fingerprint(), fp0);
  agent.set_responsive(true);
  ASSERT_EQ(net->state_fingerprint(), fp0);
  agent.crash_after(0);
  EXPECT_NE(net->state_fingerprint(), fp0);
}

// ---------------------------------------------------------------------------
// Identity under randomized mixed fault sequences.
// ---------------------------------------------------------------------------

// One random journaled fault against `net`. `op_rng` drives the choice and
// the physical-fault parameters; `injector` owns the object-fault RNG.
void apply_random_fault(SimNetwork& net, ObjectFaultInjector& injector,
                        RepairJournal& journal, Rng& op_rng) {
  const auto agents = net.agents();
  SwitchAgent& agent = *agents[op_rng.below(agents.size())];
  switch (op_rng.below(6)) {
    case 0: {  // full object fault (occasionally VRF-grade)
      const auto objs =
          injector.sample_objects(1, /*include_vrfs=*/op_rng.chance(0.3));
      if (!objs.empty()) (void)injector.inject_full(objs.front());
      break;
    }
    case 1: {  // partial object fault
      const auto objs = injector.sample_objects(1);
      if (!objs.empty()) (void)injector.inject_partial(objs.front());
      break;
    }
    case 2: {  // switch-scoped fault
      const auto objs = injector.sample_objects(1, /*include_vrfs=*/false,
                                                agent.id());
      if (!objs.empty()) (void)injector.inject_full(objs.front(), agent.id());
      break;
    }
    case 3: {  // stale-state extra copies
      const auto objs = injector.sample_objects(1);
      if (!objs.empty()) {
        (void)injector.inject_stale_copies(objs.front(),
                                           1 + op_rng.below(3));
      }
      break;
    }
    case 4: {  // TCAM bit corruption (detected ~half the time)
      (void)run_tcam_corruption_scenario(net.controller(), agent.id(),
                                         /*bits=*/1 + op_rng.below(3), op_rng,
                                         /*detection_probability=*/0.5,
                                         &journal);
      break;
    }
    case 5: {  // agent crash or unresponsiveness during a push
      const LogicalRule rule = first_compiled_rule(net, agent.id());
      if (op_rng.chance(0.5)) {
        agent.crash_after(0);  // crashes before the push applies anything
      } else {
        agent.set_responsive(false);  // push is lost; unreachable raised
      }
      const std::vector<LogicalRule> one{rule};
      (void)net.controller().reinstall_rules(one);
      break;
    }
  }
}

TEST(NetworkRepair, RandomizedMixedFaultRoundTripAcrossSeeds) {
  const GeneratorProfile profile = GeneratorProfile::testbed();
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto net = make_net(profile, 5);
    const std::uint64_t baseline = net->state_fingerprint();

    RepairJournal journal;
    journal.arm(*net);
    Rng fault_rng{derive_seed(seed, 1)};
    ObjectFaultInjector injector{net->controller(), fault_rng};
    injector.set_journal(&journal);

    Rng op_rng{seed};
    const std::size_t n_ops = 4 + op_rng.below(8);
    for (std::size_t i = 0; i < n_ops; ++i) {
      apply_random_fault(*net, injector, journal, op_rng);
      net->clock().advance(1 + op_rng.below(5'000));
    }
    ASSERT_NE(net->state_fingerprint(), baseline)
        << "seed " << seed << ": fault sequence left no trace — vacuous";

    journal.repair(*net);
    EXPECT_EQ(net->state_fingerprint(), baseline) << "seed " << seed;
  }
}

TEST(NetworkRepair, RepairedStateBitIdenticalToFreshlyDeployed) {
  const GeneratorProfile profile = GeneratorProfile::testbed();
  auto subject = make_net(profile, 21);

  RepairJournal journal;
  journal.arm(*subject);
  Rng rng{99};
  ObjectFaultInjector injector{subject->controller(), rng};
  injector.set_journal(&journal);
  for (const ObjectRef obj : injector.sample_objects(5)) {
    if (rng.chance(0.5)) {
      (void)injector.inject_full(obj);
    } else {
      (void)injector.inject_partial(obj);
    }
  }
  journal.repair(*subject);

  // Not merely "back to its own old state": equal to a from-scratch build.
  EXPECT_EQ(subject->state_fingerprint(),
            make_net(profile, 21)->state_fingerprint());
}

// ---------------------------------------------------------------------------
// Chaos-engine fault classes (src/faults/gray_faults, storm, fault_policy):
// every class must repair fingerprint-exactly across seeds.
// ---------------------------------------------------------------------------

TEST(NetworkRepair, GrayAgentScenarioRoundTripAcrossSeeds) {
  const GeneratorProfile profile = GeneratorProfile::testbed();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto net = make_net(profile, 7);
    const std::uint64_t baseline = net->state_fingerprint();
    RepairJournal journal;
    journal.arm(*net);
    GrayFaultProfile gray;
    gray.misrender_rate = 0.35;
    gray.misrender_burst = 3;
    gray.drop_rate = 0.2;
    gray.drop_burst = 2;
    const GrayScenarioOutcome outcome =
        run_gray_agent_scenario(*net, gray, /*n_gray=*/3, seed, &journal);
    EXPECT_GT(outcome.resyncs, 0u);
    // The armed profiles and open burst counters are fault-behaviour state
    // and hash into the fingerprint, so the scenario always leaves a trace
    // even on seeds where no misrender fired.
    ASSERT_NE(net->state_fingerprint(), baseline) << "seed " << seed;
    journal.repair(*net);
    EXPECT_EQ(net->state_fingerprint(), baseline) << "seed " << seed;
  }
}

TEST(NetworkRepair, StormEpisodesRoundTripAcrossSeedsAndProfiles) {
  const GeneratorProfile profile = GeneratorProfile::testbed();
  for (const std::string_view name : storm_profile_names()) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      auto net = make_net(profile, 9);
      const std::uint64_t baseline = net->state_fingerprint();
      RepairJournal journal;
      journal.arm(*net);
      StormSchedule storm{*net, storm_profile(name),
                          derive_seed(seed, 0x57)};
      storm.run_episode(&journal);
      storm.run_episode(&journal);
      EXPECT_EQ(storm.stats().episodes, 2u);
      journal.repair(*net);
      EXPECT_EQ(net->state_fingerprint(), baseline)
          << name << " seed " << seed;
    }
  }
}

TEST(NetworkRepair, EvictionPoliciesRoundTripViaSnapshots) {
  const GeneratorProfile profile = GeneratorProfile::testbed();
  for (const std::string_view name : eviction_policy_names()) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      auto net = make_net(profile, 13);
      // Policies are installed before the baseline, mirroring monitoring
      // setup; they are fault-selection bookkeeping and stay outside the
      // fingerprint, so repair needs no policy restoration.
      for (const auto& agent : net->agents()) {
        agent->tcam().set_eviction_policy(make_eviction_policy(
            name, derive_seed(seed, agent->id().value())));
      }
      const std::uint64_t baseline = net->state_fingerprint();
      RepairJournal journal;
      journal.arm(*net);
      Rng rng{derive_seed(seed, 0xEE)};
      const auto agents = net->agents();
      for (int round = 0; round < 4; ++round) {
        SwitchAgent& agent = *agents[rng.below(agents.size())];
        journal.snapshot_agent(*net, agent.id());
        (void)agent.evict_rules(1 + rng.below(3), net->clock().now());
      }
      ASSERT_NE(net->state_fingerprint(), baseline)
          << name << " seed " << seed;
      journal.repair(*net);
      EXPECT_EQ(net->state_fingerprint(), baseline)
          << name << " seed " << seed;
    }
  }
}

TEST(NetworkRepair, ReorderedDeliveryRoundTripAcrossSeeds) {
  const GeneratorProfile profile = GeneratorProfile::testbed();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto net = make_net(profile, 17);
    const std::uint64_t baseline = net->state_fingerprint();
    RepairJournal journal;
    journal.arm(*net);
    (void)run_reordered_delivery_scenario(*net, /*window=*/5,
                                          /*n_resyncs=*/3, seed, &journal);
    journal.repair(*net);
    EXPECT_EQ(net->state_fingerprint(), baseline) << "seed " << seed;
  }
}

TEST(NetworkRepair, ControllerUnreachableEpisodeForgottenByRepair) {
  auto net = make_net(GeneratorProfile::testbed(), 31);
  const std::uint64_t baseline = net->state_fingerprint();
  SwitchAgent& agent = *net->agents().front();
  const std::vector<LogicalRule> one{first_compiled_rule(*net, agent.id())};

  RepairJournal journal;
  journal.arm(*net);
  agent.set_responsive(false);
  (void)net->controller().reinstall_rules(one);
  ASSERT_EQ(net->controller().fault_log().size(), 1u);  // SWITCH_UNREACHABLE
  journal.repair(*net);
  ASSERT_EQ(net->state_fingerprint(), baseline);

  // The open episode must have been forgotten with its record: a new loss
  // re-raises instead of being swallowed by stale bookkeeping.
  journal.arm(*net);
  agent.set_responsive(false);
  (void)net->controller().reinstall_rules(one);
  EXPECT_EQ(net->controller().fault_log().size(), 1u);
  journal.repair(*net);
  EXPECT_EQ(net->state_fingerprint(), baseline);
}

TEST(NetworkRepair, GammaPerIterationUndoKeepsShardHistory) {
  // undo_rule_ops restores TCAMs but keeps the change log and clock
  // accumulating — the gamma shard discipline.
  auto net = make_net(GeneratorProfile::testbed(), 41);
  RepairJournal journal;
  journal.arm(*net);
  Rng rng{7};
  ObjectFaultInjector injector{net->controller(), rng};
  injector.set_journal(&journal);

  const std::size_t log0 = net->controller().change_log().size();
  const auto objs = injector.sample_objects(2);
  ASSERT_EQ(objs.size(), 2u);
  (void)injector.inject_full(objs[0]);
  journal.undo_rule_ops(*net);
  net->clock().advance(120'000);
  (void)injector.inject_full(objs[1]);
  journal.undo_rule_ops(*net);

  EXPECT_EQ(journal.rule_ops(), 0u);
  EXPECT_EQ(net->controller().change_log().size(), log0 + 2);  // history kept
  // TCAMs are clean mid-shard...
  std::size_t total_rules = 0;
  for (const auto& a : net->agents()) total_rules += a->tcam().size();
  std::size_t compiled_rules = 0;
  for (const auto& a : net->agents()) {
    compiled_rules += net->controller().compiled().rules_for(a->id()).size();
  }
  EXPECT_EQ(total_rules, compiled_rules);
  // ...and the full repair restores the byte-exact baseline.
  journal.repair(*net);
  EXPECT_EQ(net->state_fingerprint(),
            make_net(GeneratorProfile::testbed(), 41)->state_fingerprint());
}

// ---------------------------------------------------------------------------
// Sweep outputs: cached == uncached, memcmp, at 1/2/4 workers x seeds.
// ---------------------------------------------------------------------------

const std::vector<AlgorithmSpec> kAlgorithms{
    {"SCOUT", AlgorithmKind::kScout, 1.0, true},
    {"SCORE-1", AlgorithmKind::kScore, 1.0, true},
};

AccuracyOptions sweep_options(std::uint64_t seed, RiskModelKind model) {
  AccuracyOptions opts;
  opts.profile = GeneratorProfile::testbed();
  opts.model = model;
  opts.runs = 6;
  opts.max_faults = 3;
  opts.benign_changes = 5;
  opts.seed = seed;
  return opts;
}

void expect_series_memcmp_equal(const std::vector<AccuracySeries>& a,
                                const std::vector<AccuracySeries>& b,
                                const char* what) {
  // The authoritative gate is the shared comparator (the same one the
  // fig8 bench applies); the per-cell walk below only localizes failures.
  EXPECT_TRUE(accuracy_series_identical(a, b)) << what;
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].by_faults.size(), b[s].by_faults.size()) << what;
    for (std::size_t f = 0; f < a[s].by_faults.size(); ++f) {
      EXPECT_EQ(std::memcmp(&a[s].by_faults[f], &b[s].by_faults[f],
                            sizeof(AccuracyCell)),
                0)
          << what << ": series " << s << " faults " << f + 1;
    }
  }
}

TEST(CachedSweep, MatchesUncachedAtOneTwoFourWorkersAcrossSeeds) {
  for (const std::uint64_t seed : {1234u, 77u}) {
    for (const RiskModelKind model :
         {RiskModelKind::kController, RiskModelKind::kSwitch}) {
      AccuracyOptions opts = sweep_options(seed, model);

      opts.cache_networks = false;
      runtime::SerialExecutor serial;
      const auto reference = run_accuracy_sweep(opts, kAlgorithms, serial);

      for (const std::size_t workers : {1u, 2u, 4u}) {
        opts.cache_networks = true;
        const auto executor = runtime::make_executor(workers);
        SweepNetworkCache cache{executor->workers()};
        SweepDiagnostics diag;
        const auto cached = run_accuracy_sweep(opts, kAlgorithms, *executor,
                                               &cache, &diag);
        expect_series_memcmp_equal(reference, cached, "cached vs uncached");
        // The cache really was exercised, every repair verified clean.
        const auto stats = cache.stats();
        EXPECT_EQ(stats.builds, workers);
        EXPECT_EQ(stats.repairs,
                  opts.runs * opts.max_faults - stats.builds);
        EXPECT_EQ(stats.verify_failures, 0u);
        EXPECT_EQ(diag.network_builds, stats.builds);
        EXPECT_EQ(diag.network_repairs, opts.runs * opts.max_faults);
      }
    }
  }
}

TEST(CachedSweep, RebuildsOnProfileSwitchRepairsWithinProfile) {
  runtime::SerialExecutor serial;
  SweepNetworkCache cache{serial.workers()};

  AccuracyOptions opts = sweep_options(5, RiskModelKind::kController);
  const std::size_t cells = opts.runs * opts.max_faults;
  const auto first = run_accuracy_sweep(opts, kAlgorithms, serial, &cache);
  EXPECT_EQ(cache.stats().builds, 1u);
  EXPECT_EQ(cache.stats().repairs, cells - 1);

  // A different profile must rebuild (not repair across profiles).
  AccuracyOptions other = opts;
  other.profile.target_pairs += 40;
  (void)run_accuracy_sweep(other, kAlgorithms, serial, &cache);
  EXPECT_EQ(cache.stats().builds, 2u);

  // Same grid again on the now-warm slot: zero new builds, all repairs.
  (void)run_accuracy_sweep(other, kAlgorithms, serial, &cache);
  EXPECT_EQ(cache.stats().builds, 2u);
  EXPECT_EQ(cache.stats().repairs, 3 * cells - 2);
  EXPECT_EQ(cache.stats().verify_failures, 0u);

  // And the first profile, returning later, rebuilds once more but still
  // reproduces its original series bit-for-bit.
  const auto back = run_accuracy_sweep(opts, kAlgorithms, serial, &cache);
  EXPECT_EQ(cache.stats().builds, 3u);
  expect_series_memcmp_equal(first, back, "profile round trip");

  // The counters surface through BenchRecorder diagnostics.
  runtime::BenchRecorder recorder{"cache_test"};
  cache.record_diagnostics(recorder);
  const std::string json = recorder.to_json();
  EXPECT_NE(json.find("\"cache_builds\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_repairs\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"cache_verify_failures\":0"), std::string::npos)
      << json;
}

TEST(CachedSweep, BddModeCachedMatchesUncachedAcrossWorkers) {
  // The exact-BDD sweep path: cached cells reuse the entry's resident
  // logical BDDs (LogicalBddCache arena, T built above the watermark and
  // rolled back per check) while uncached cells re-encode L every time.
  // The outputs must stay memcmp-identical across caching and worker
  // counts — BDDs are canonical, so reuse is unobservable.
  for (const std::uint64_t seed : {1234u, 9u}) {
    AccuracyOptions opts = sweep_options(seed, RiskModelKind::kSwitch);
    opts.check_mode = CheckMode::kExactBdd;

    opts.cache_networks = false;
    runtime::SerialExecutor serial;
    const auto reference = run_accuracy_sweep(opts, kAlgorithms, serial);

    opts.cache_networks = true;
    for (const std::size_t workers : {1u, 2u, 4u}) {
      const auto executor = runtime::make_executor(workers);
      SweepNetworkCache cache{executor->workers()};
      const auto cached =
          run_accuracy_sweep(opts, kAlgorithms, *executor, &cache);
      expect_series_memcmp_equal(reference, cached,
                                 "BDD-mode cached vs uncached");
      EXPECT_EQ(cache.stats().verify_failures, 0u);
    }

    // BDD and syntactic modes agree on the compiler's non-overlapping
    // rulesets, so the whole sweep output matches too.
    AccuracyOptions syn = opts;
    syn.check_mode = CheckMode::kSyntactic;
    syn.cache_networks = false;
    const auto syntactic = run_accuracy_sweep(syn, kAlgorithms, serial);
    expect_series_memcmp_equal(reference, syntactic,
                               "BDD vs syntactic sweep");
  }
}

TEST(CachedSweep, GammaCachedMatchesUncached) {
  GammaOptions opts;
  opts.profile = GeneratorProfile::testbed();
  opts.faults = 48;
  opts.seed = 3;
  opts.bucket_bounds = {10, 20, 40, 60};
  opts.shards = 6;

  opts.cache_networks = false;
  runtime::SerialExecutor serial;
  const auto reference = run_gamma_experiment(opts, serial);

  opts.cache_networks = true;
  for (const std::size_t workers : {1u, 2u, 4u}) {
    const auto executor = runtime::make_executor(workers);
    const auto cached = run_gamma_experiment(opts, *executor);
    ASSERT_EQ(reference.size(), cached.size());
    for (std::size_t b = 0; b < reference.size(); ++b) {
      EXPECT_EQ(std::memcmp(&reference[b], &cached[b], sizeof(GammaBucket)),
                0)
          << "bucket " << b << " at " << workers << " workers";
    }
  }
}

TEST(CachedSweep, ScalabilityCampaignCachedMatchesUncached) {
  ScaleCampaignOptions opts;
  opts.switch_counts = {5, 10};
  opts.reps = 3;
  opts.n_faults = 2;
  opts.pairs_per_switch = 30;

  opts.cache_networks = false;
  runtime::SerialExecutor serial;
  const auto reference = run_scalability_campaign(opts, serial);

  opts.cache_networks = true;
  for (const std::size_t workers : {1u, 4u}) {
    const auto executor = runtime::make_executor(workers);
    const auto cached = run_scalability_campaign(opts, *executor);
    ASSERT_EQ(reference.size(), cached.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
      // Timings are wall clock; the derived structure must be identical.
      EXPECT_EQ(reference[i].switches, cached[i].switches) << i;
      EXPECT_EQ(reference[i].epg_pairs, cached[i].epg_pairs) << i;
      EXPECT_EQ(reference[i].elements, cached[i].elements) << i;
      EXPECT_EQ(reference[i].risks, cached[i].risks) << i;
      EXPECT_EQ(reference[i].edges, cached[i].edges) << i;
    }
  }
  // Reps of one switch count share the fabric: pairs are rep-invariant.
  for (std::size_t c = 0; c < opts.switch_counts.size(); ++c) {
    for (std::size_t r = 1; r < opts.reps; ++r) {
      EXPECT_EQ(reference[c * opts.reps + r].epg_pairs,
                reference[c * opts.reps].epg_pairs);
    }
  }
}

}  // namespace
}  // namespace scout
