// Flag-parsing tests for the shared bench CLI: the bare-flag and
// flag-shaped-value cases (which used to be silently treated as an absent
// flag), malformed list entries, and clamping.
#include "bench/bench_cli.h"

#include <gtest/gtest.h>

namespace scout::bench {
namespace {

// gtest-style argv scaffolding: argv[0] is the program name.
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : args_(std::move(args)) {
    ptrs_.push_back(const_cast<char*>("bench"));
    for (auto& a : args_) ptrs_.push_back(a.data());
  }
  [[nodiscard]] int argc() const { return static_cast<int>(ptrs_.size()); }
  [[nodiscard]] char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> args_;
  std::vector<char*> ptrs_;
};

TEST(BenchCli, FindFlagAbsent) {
  Argv a{{"--other", "3"}};
  const FlagLookup f = find_flag(a.argc(), a.argv(), "threads");
  EXPECT_FALSE(f.present);
  EXPECT_EQ(f.value, nullptr);
}

TEST(BenchCli, FindFlagWithSpaceValue) {
  Argv a{{"--threads", "4"}};
  const FlagLookup f = find_flag(a.argc(), a.argv(), "threads");
  EXPECT_TRUE(f.present);
  ASSERT_NE(f.value, nullptr);
  EXPECT_STREQ(f.value, "4");
}

TEST(BenchCli, FindFlagWithEqualsValue) {
  Argv a{{"--threads=8"}};
  const FlagLookup f = find_flag(a.argc(), a.argv(), "threads");
  EXPECT_TRUE(f.present);
  ASSERT_NE(f.value, nullptr);
  EXPECT_STREQ(f.value, "8");
}

TEST(BenchCli, BareFlagAtEndIsPresentWithoutValue) {
  // The original bug: "--threads" as the last token was treated as absent,
  // so scalability silently ran its full 1/2/4 sweep.
  Argv a{{"--sizes", "10", "--threads"}};
  const FlagLookup f = find_flag(a.argc(), a.argv(), "threads");
  EXPECT_TRUE(f.present);
  EXPECT_EQ(f.value, nullptr);
}

TEST(BenchCli, FlagShapedNextTokenIsNotAValue) {
  // "--threads --reps 2": "--reps" must not be consumed as the value of
  // --threads, and --reps itself must still parse.
  Argv a{{"--threads", "--reps", "2"}};
  const FlagLookup threads = find_flag(a.argc(), a.argv(), "threads");
  EXPECT_TRUE(threads.present);
  EXPECT_EQ(threads.value, nullptr);
  EXPECT_EQ(size_flag(a.argc(), a.argv(), "reps", 99), 2u);
}

TEST(BenchCli, RepeatedFlagLastOccurrenceWins) {
  Argv a{{"--threads", "2", "--threads", "8"}};
  const FlagLookup f = find_flag(a.argc(), a.argv(), "threads");
  ASSERT_NE(f.value, nullptr);
  EXPECT_STREQ(f.value, "8");
  // A later usable value also overrides an earlier bare occurrence.
  Argv bare_then_valid{{"--threads", "--sizes", "10", "--threads", "4"}};
  EXPECT_EQ(size_flag(bare_then_valid.argc(), bare_then_valid.argv(),
                      "threads", 1, 1, 256),
            4u);
}

TEST(BenchCli, FlagShapedEqualsValueIsRejected) {
  Argv a{{"--name=--other"}};
  const FlagLookup f = find_flag(a.argc(), a.argv(), "name");
  EXPECT_TRUE(f.present);
  EXPECT_EQ(f.value, nullptr);
  // flag_value agrees (after warning on stderr).
  EXPECT_EQ(flag_value(a.argc(), a.argv(), "name"), nullptr);
}

TEST(BenchCli, SizeFlagFallsBackOnMissingValue) {
  Argv a{{"--threads"}};
  EXPECT_EQ(size_flag(a.argc(), a.argv(), "threads", 1, 1, 256), 1u);
}

TEST(BenchCli, SizeFlagFallsBackOnMalformedValue) {
  Argv junk{{"--threads", "4x"}};
  EXPECT_EQ(size_flag(junk.argc(), junk.argv(), "threads", 1, 1, 256), 1u);
  Argv negative{{"--threads", "-3"}};
  EXPECT_EQ(size_flag(negative.argc(), negative.argv(), "threads", 1, 1, 256),
            1u);
}

TEST(BenchCli, SizeFlagClampsIntoRange) {
  Argv low{{"--threads", "0"}};
  EXPECT_EQ(size_flag(low.argc(), low.argv(), "threads", 1, 1, 256), 1u);
  Argv high{{"--threads", "100000"}};
  EXPECT_EQ(size_flag(high.argc(), high.argv(), "threads", 1, 1,
                      kMaxBenchThreads),
            kMaxBenchThreads);
}

TEST(BenchCli, ListFlagDropsMalformedEntriesKeepsRest) {
  Argv a{{"--sizes", "10,frog,0,30"}};
  EXPECT_EQ(list_flag(a.argc(), a.argv(), "sizes", {1, 2}),
            (std::vector<std::size_t>{10, 30}));
}

TEST(BenchCli, ListFlagAllMalformedFallsBack) {
  Argv a{{"--sizes", "frog,,"}};
  EXPECT_EQ(list_flag(a.argc(), a.argv(), "sizes", {7}),
            (std::vector<std::size_t>{7}));
}

TEST(BenchCli, ListFlagBareFlagFallsBack) {
  Argv a{{"--sizes", "--threads", "2"}};
  EXPECT_EQ(list_flag(a.argc(), a.argv(), "sizes", {5, 6}),
            (std::vector<std::size_t>{5, 6}));
}

TEST(BenchCli, BoolFlagExactTokenOnly) {
  Argv a{{"--paper"}};
  EXPECT_TRUE(bool_flag(a.argc(), a.argv(), "paper"));
  EXPECT_FALSE(bool_flag(a.argc(), a.argv(), "pap"));
}

TEST(BenchCli, StringFlagUsesValueOrFallback) {
  Argv a{{"--json", "out.json"}};
  EXPECT_EQ(string_flag(a.argc(), a.argv(), "json", "d.json"), "out.json");
  Argv bare{{"--json"}};
  EXPECT_EQ(string_flag(bare.argc(), bare.argv(), "json", "d.json"),
            "d.json");
}

TEST(BenchCli, ExecutorFromFlagsHonorsThreads) {
  Argv a{{"--threads", "3"}};
  EXPECT_EQ(executor_from_flags(a.argc(), a.argv())->workers(), 3u);
  Argv bare{{"--threads"}};
  EXPECT_EQ(executor_from_flags(bare.argc(), bare.argv())->workers(), 1u);
}

}  // namespace
}  // namespace scout::bench
