// Incident provenance: unit semantics of the IncidentBuilder window model
// (open / extend / close, first-cause ordering, the A ⊆ T precision
// invariant, window reset and overflow accounting) and the end-to-end
// gates — single-fault-class monitoring legs across seeds and transports
// attribute with precision 1.0, and attaching the whole observability
// stack (incidents + flight recorder + health) never perturbs a verdict
// digest.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "src/scout/experiment.h"
#include "src/scout/scout_system.h"
#include "src/stream/cause.h"
#include "src/stream/event.h"
#include "src/stream/incident.h"

namespace scout {
namespace {

using stream::CauseEngine;
using stream::CauseId;
using stream::CauseLedger;
using stream::IncidentBuilder;
using stream::StreamEvent;

StreamEvent cause_event(std::uint64_t seq, std::uint32_t sw, CauseId cause,
                        std::int64_t sim_ms) {
  StreamEvent ev;
  ev.seq = seq;
  ev.sw = SwitchId{sw};
  ev.cause = cause;
  ev.time = SimTime{sim_ms};
  ev.wall = std::chrono::steady_clock::now();
  ev.type = stream::StreamEventType::kRuleEvicted;
  return ev;
}

FabricCheck failing_on(std::initializer_list<std::uint32_t> switches) {
  FabricCheck check;
  check.switches_checked = 8;
  for (const std::uint32_t sw : switches) {
    check.inconsistent.push_back(SwitchId{sw});
  }
  return check;
}

TEST(IncidentBuilder, OpenExtendCloseLifecycle) {
  CauseLedger ledger;
  IncidentBuilder builder{&ledger};
  const CauseId c1 = CauseId::make(CauseEngine::kGray, 1);
  const CauseId c2 = CauseId::make(CauseEngine::kStorm, 2);

  // Batch 0: clean — marks the ledger and clears the (empty) window.
  EXPECT_FALSE(builder.observe_verdict(FabricCheck{}, 0, SimTime{0}));
  EXPECT_FALSE(builder.incident_open());

  // Batch 1: c1 damages switch 3; verdict fails on 3 — opens.
  ledger.record(c1, SwitchId{3}, SimTime{100});
  const std::vector<StreamEvent> b1{cause_event(10, 3, c1, 100)};
  builder.observe_events(b1);
  EXPECT_TRUE(builder.observe_verdict(failing_on({3}), 1, SimTime{110}));
  EXPECT_TRUE(builder.incident_open());

  // Batch 2: c2 damages switch 5; still failing, now on {3,5} — extends.
  ledger.record(c2, SwitchId{5}, SimTime{200});
  const std::vector<StreamEvent> b2{cause_event(11, 5, c2, 200)};
  builder.observe_events(b2);
  EXPECT_FALSE(builder.observe_verdict(failing_on({3, 5}), 2, SimTime{210}));
  EXPECT_TRUE(builder.incident_open());

  // Batch 3: clean — closes.
  EXPECT_FALSE(builder.observe_verdict(FabricCheck{}, 3, SimTime{300}));
  EXPECT_FALSE(builder.incident_open());

  ASSERT_EQ(builder.incidents().size(), 1u);
  const stream::Incident& inc = builder.incidents()[0];
  EXPECT_EQ(inc.opened_batch, 1u);
  EXPECT_EQ(inc.closed_batch, 3u);
  ASSERT_EQ(inc.violated.size(), 2u);
  ASSERT_EQ(inc.causes.size(), 2u);
  // Seq order: c1 first (the first cause), then c2.
  EXPECT_EQ(inc.causes[0].cause, c1);
  EXPECT_EQ(inc.causes[1].cause, c2);
  EXPECT_TRUE(inc.causes[0].in_truth);
  EXPECT_TRUE(inc.causes[1].in_truth);
  EXPECT_TRUE(inc.first_cause_correct);
  EXPECT_EQ(inc.truth_causes, 2u);
  EXPECT_EQ(inc.matched_causes, 2u);
  EXPECT_DOUBLE_EQ(builder.totals().precision(), 1.0);
  EXPECT_DOUBLE_EQ(builder.totals().recall(), 1.0);
}

TEST(IncidentBuilder, CleanVerdictResetsWindowAndLedgerMark) {
  CauseLedger ledger;
  IncidentBuilder builder{&ledger};
  const CauseId old_cause = CauseId::make(CauseEngine::kGray, 7);
  const CauseId fresh = CauseId::make(CauseEngine::kStorm, 8);

  // An old healed episode before a clean verdict must not leak into the
  // next incident's attribution or truth set.
  ledger.record(old_cause, SwitchId{2}, SimTime{50});
  const std::vector<StreamEvent> stale{cause_event(1, 2, old_cause, 50)};
  builder.observe_events(stale);
  EXPECT_FALSE(builder.observe_verdict(FabricCheck{}, 0, SimTime{60}));

  ledger.record(fresh, SwitchId{2}, SimTime{100});
  const std::vector<StreamEvent> live{cause_event(2, 2, fresh, 100)};
  builder.observe_events(live);
  EXPECT_TRUE(builder.observe_verdict(failing_on({2}), 1, SimTime{110}));
  EXPECT_FALSE(builder.observe_verdict(FabricCheck{}, 2, SimTime{120}));

  ASSERT_EQ(builder.incidents().size(), 1u);
  const stream::Incident& inc = builder.incidents()[0];
  ASSERT_EQ(inc.causes.size(), 1u);
  EXPECT_EQ(inc.causes[0].cause, fresh);
  EXPECT_EQ(inc.truth_causes, 1u);  // old_cause is before the mark
  EXPECT_TRUE(inc.first_cause_correct);
}

TEST(IncidentBuilder, EventsOnOtherSwitchesDoNotAttribute) {
  CauseLedger ledger;
  IncidentBuilder builder{&ledger};
  const CauseId guilty = CauseId::make(CauseEngine::kChurnEvict, 1);
  const CauseId bystander = CauseId::make(CauseEngine::kChurnEvict, 2);
  ledger.record(guilty, SwitchId{1}, SimTime{10});
  ledger.record(bystander, SwitchId{9}, SimTime{11});
  const std::vector<StreamEvent> events{
      cause_event(1, 9, bystander, 11),  // earlier seq, wrong switch
      cause_event(2, 1, guilty, 10),
  };
  builder.observe_events(events);
  builder.observe_verdict(failing_on({1}), 0, SimTime{20});
  builder.finalize(1, SimTime{30});

  ASSERT_EQ(builder.incidents().size(), 1u);
  const stream::Incident& inc = builder.incidents()[0];
  ASSERT_EQ(inc.causes.size(), 1u);
  EXPECT_EQ(inc.causes[0].cause, guilty);
  EXPECT_EQ(inc.truth_causes, 1u);  // bystander's switch never violated
  EXPECT_DOUBLE_EQ(builder.totals().precision(), 1.0);
}

TEST(IncidentBuilder, UnattributedIncidentIsCountedNotInvented) {
  // Silent damage (e.g. gray drops publish nothing): the verdict fails
  // with no cause-bearing events. The builder must report an empty cause
  // chain, not hallucinate one — and precision stays 1.0 (vacuous).
  CauseLedger ledger;
  IncidentBuilder builder{&ledger};
  builder.observe_verdict(failing_on({4}), 0, SimTime{10});
  builder.finalize(1, SimTime{20});
  ASSERT_EQ(builder.incidents().size(), 1u);
  EXPECT_FALSE(builder.incidents()[0].attributed());
  EXPECT_EQ(builder.totals().unattributed_incidents, 1u);
  EXPECT_DOUBLE_EQ(builder.totals().precision(), 1.0);
}

TEST(IncidentBuilder, WindowOverflowDropsNewestAndCounts) {
  CauseLedger ledger;
  IncidentBuilder::Options opts;
  opts.max_window_events = 4;
  IncidentBuilder builder{&ledger, nullptr, opts};
  const CauseId first = CauseId::make(CauseEngine::kGray, 1);
  std::vector<StreamEvent> events;
  events.push_back(cause_event(1, 1, first, 10));
  for (std::uint64_t i = 2; i <= 10; ++i) {
    events.push_back(
        cause_event(i, 1, CauseId::make(CauseEngine::kGray, i), 10));
  }
  builder.observe_events(events);
  builder.observe_verdict(failing_on({1}), 0, SimTime{20});
  builder.finalize(1, SimTime{30});

  EXPECT_EQ(builder.totals().window_dropped, 6u);
  ASSERT_EQ(builder.incidents().size(), 1u);
  const stream::Incident& inc = builder.incidents()[0];
  // Oldest entries survive: the first cause is preserved.
  ASSERT_EQ(inc.causes.size(), 4u);
  EXPECT_EQ(inc.causes[0].cause, first);
}

// ---------------------------------------------------------------------------
// End-to-end gates on the monitoring pipeline.
// ---------------------------------------------------------------------------

MonitoringOptions leg_scenario(std::uint64_t seed) {
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(12);
  options.profile.target_pairs = 12 * 20;
  options.events = 500;
  options.batch_ops = 12;
  options.seed = seed;
  options.localize_final = false;
  return options;
}

// Evict-only churn: the single-fault-class leg where every harmful op is
// a cause-stamped ChurnGenerator eviction.
MonitoringOptions evict_only_scenario(std::uint64_t seed) {
  MonitoringOptions options = leg_scenario(seed);
  options.mix = stream::ChurnMix{};
  options.mix.evict = 1.0;
  options.mix.corrupt = 0.0;
  options.mix.resync = 0.0;
  options.mix.crash = 0.0;
  options.mix.recover = 0.0;
  options.mix.channel_flap = 0.0;
  options.mix.benign_change = 0.0;
  options.mix.migrate = 0.0;
  return options;
}

TEST(IncidentPipeline, EvictOnlyAttributionExactAcrossSeedsAndTransports) {
  runtime::SerialExecutor executor;
  std::size_t incidents_seen = 0;
  std::size_t matched = 0, attributed = 0, truth = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    // Same concurrent-driver schedule both legs; only the transport flips
    // (serial bus vs 4-publisher MPSC ring) — the fault_storms pattern.
    MonitoringOptions base = evict_only_scenario(seed);
    base.collect_incidents = true;
    base.publishers = 4;

    MonitoringOptions serial = base;
    serial.use_ring = false;
    const MonitoringReport anchor =
        run_continuous_monitoring(serial, executor);

    MonitoringOptions ring = base;
    ring.use_ring = true;
    const MonitoringReport report = run_continuous_monitoring(ring, executor);

    for (const MonitoringReport* r : {&anchor, &report}) {
      EXPECT_DOUBLE_EQ(r->incident_precision, 1.0)
          << "seed " << seed << " publishers "
          << (r == &anchor ? 0 : 4);
      incidents_seen += r->incidents;
      matched += r->incident_first_cause_correct;
      attributed += r->incidents - r->incidents_unattributed;
      truth += r->incidents;
    }
    // One fault schedule, two transports: the verdict stream and the
    // incident structure must agree.
    EXPECT_EQ(report.verdict_digest, anchor.verdict_digest)
        << "seed " << seed;
    EXPECT_EQ(report.incidents, anchor.incidents) << "seed " << seed;
  }
  // The leg must actually produce incidents to be a meaningful gate.
  EXPECT_GT(incidents_seen, 10u);
  EXPECT_GT(attributed, 0u);
  (void)matched;
  (void)truth;
}

TEST(IncidentPipeline, ObservabilityStackIsDigestNeutral) {
  // The whole stack — incidents + flight recorder + health — attached vs
  // nothing attached: bit-identical verdict digests, same seed.
  runtime::SerialExecutor executor;
  for (const std::uint64_t seed : {5u, 23u}) {
    MonitoringOptions bare = leg_scenario(seed);
    bare.gray_rate = 0.15;
    bare.gray_drop_rate = 0.0;
    const MonitoringReport off = run_continuous_monitoring(bare, executor);

    MonitoringOptions instrumented = bare;
    instrumented.collect_incidents = true;
    instrumented.collect_flight = true;
    instrumented.collect_health = true;
    const MonitoringReport on =
        run_continuous_monitoring(instrumented, executor);

    EXPECT_EQ(on.verdict_digest, off.verdict_digest) << "seed " << seed;
    EXPECT_EQ(on.batches, off.batches) << "seed " << seed;
    EXPECT_EQ(on.inconsistent_batches, off.inconsistent_batches)
        << "seed " << seed;
    EXPECT_GT(on.flight_entries, 0u);
  }
}

TEST(IncidentPipeline, GrayLegReportsIncidentJson) {
  runtime::SerialExecutor executor;
  MonitoringOptions options = leg_scenario(7);
  options.gray_rate = 0.2;
  options.gray_drop_rate = 0.0;
  options.collect_incidents = true;
  options.collect_health = true;
  const MonitoringReport report = run_continuous_monitoring(options, executor);
  ASSERT_FALSE(report.incident_json.empty());
  EXPECT_NE(report.incident_json.find("\"scout-incidents-v1\""),
            std::string::npos);
  EXPECT_NE(report.incident_json.find("\"totals\""), std::string::npos);
  ASSERT_FALSE(report.health_json.empty());
  EXPECT_EQ(report.health_json.front(), '{');
  EXPECT_DOUBLE_EQ(report.incident_precision, 1.0);
}

}  // namespace
}  // namespace scout
