#include "src/localization/greedy_cover.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace scout {
namespace {

// Hand-built reproduction of paper Figure 5: elements E1-E2 .. E6-E7,
// risks C1, F1, F2, C2, C3, F3 with utilities
//   C1 h=0 c=0; F1 h=1 c=0.4; F2 h=1 c=0.8; C2 h=1 c=0.4;
//   C3 h=0.3 c=0.2; F3 h=0.3 c=0.2
// against failure signature {E2-E3, E3-E4, E4-E5, E5-E6, E6-E7}.
struct Figure5 {
  RiskModel model = RiskModel::empty(RiskModelKind::kSwitch);
  // element indices e[0] = E1-E2 ... e[5] = E6-E7
  std::array<RiskModel::ElementIdx, 6> e{};
  RiskModel::RiskIdx c1{}, f1{}, f2{}, c2{}, c3{}, f3{};

  Figure5() {
    for (std::uint32_t i = 0; i < 6; ++i) {
      e[i] = model.add_element(
          RiskElement{SwitchId{0}, EpgPair{EpgId{i}, EpgId{i + 1}}});
    }
    c1 = model.add_risk(ObjectRef::of(ContractId{1}));
    f1 = model.add_risk(ObjectRef::of(FilterId{1}));
    f2 = model.add_risk(ObjectRef::of(FilterId{2}));
    c2 = model.add_risk(ObjectRef::of(ContractId{2}));
    c3 = model.add_risk(ObjectRef::of(ContractId{3}));
    f3 = model.add_risk(ObjectRef::of(FilterId{3}));

    // C1: depends only on the healthy E1-E2.
    model.add_dependency(e[0], c1);
    // F1: E2-E3, E3-E4 (both failed) -> h=1, c=2/5.
    model.add_dependency(e[1], f1);
    model.add_dependency(e[2], f1);
    // F2: E2-E3..E5-E6 (all failed) -> h=1, c=4/5.
    for (int i = 1; i <= 4; ++i) model.add_dependency(e[i], f2);
    // C2: E4-E5, E5-E6 -> h=1, c=2/5.
    model.add_dependency(e[3], c2);
    model.add_dependency(e[4], c2);
    // C3 and F3: {E1-E2, E5-E6, E6-E7}, failed edge only to E6-E7
    // -> h=1/3, c=1/5.
    for (const auto elem : {e[0], e[4], e[5]}) {
      model.add_dependency(elem, c3);
      model.add_dependency(elem, f3);
    }

    // Failure annotation: failed edges.
    for (int i = 1; i <= 2; ++i) model.mark_edge_failed(e[i], f1);
    for (int i = 1; i <= 4; ++i) model.mark_edge_failed(e[i], f2);
    for (int i = 3; i <= 4; ++i) model.mark_edge_failed(e[i], c2);
    model.mark_edge_failed(e[5], c3);
    model.mark_edge_failed(e[5], f3);
  }
};

TEST(GreedyCover, Figure5InitialUtilities) {
  const Figure5 fig;
  const auto utils = initial_utilities(fig.model);
  EXPECT_DOUBLE_EQ(utils[fig.c1].hit_ratio, 0.0);
  EXPECT_DOUBLE_EQ(utils[fig.f1].hit_ratio, 1.0);
  EXPECT_DOUBLE_EQ(utils[fig.f1].coverage_ratio, 0.4);
  EXPECT_DOUBLE_EQ(utils[fig.f2].hit_ratio, 1.0);
  EXPECT_DOUBLE_EQ(utils[fig.f2].coverage_ratio, 0.8);
  EXPECT_DOUBLE_EQ(utils[fig.c2].hit_ratio, 1.0);
  EXPECT_DOUBLE_EQ(utils[fig.c2].coverage_ratio, 0.4);
  EXPECT_NEAR(utils[fig.c3].hit_ratio, 1.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(utils[fig.c3].coverage_ratio, 0.2);
  EXPECT_NEAR(utils[fig.f3].hit_ratio, 1.0 / 3.0, 1e-9);
}

TEST(GreedyCover, Figure5Stage1PicksOnlyF2) {
  const Figure5 fig;
  const GreedyCoverOutcome out = run_greedy_cover(fig.model, 1.0);
  // F2 explains 4 of 5; the pruning removes F1's and C2's elements too, so
  // no hit-ratio-1 candidate remains for E6-E7.
  ASSERT_EQ(out.hypothesis.size(), 1u);
  EXPECT_EQ(out.hypothesis[0], ObjectRef::of(FilterId{2}));
  ASSERT_EQ(out.unexplained.size(), 1u);
  EXPECT_EQ(out.unexplained[0], fig.e[5]);
  EXPECT_EQ(out.observations_total, 5u);
}

TEST(GreedyCover, LowerThresholdAlsoExplainsTail) {
  const Figure5 fig;
  // With threshold 0.3, C3/F3 qualify in round 2 (h=1/2 after pruning) and
  // E6-E7 gets explained; both tie on coverage so both are picked.
  const GreedyCoverOutcome out = run_greedy_cover(fig.model, 0.3);
  EXPECT_TRUE(out.unexplained.empty());
  EXPECT_TRUE(std::find(out.hypothesis.begin(), out.hypothesis.end(),
                        ObjectRef::of(FilterId{3})) != out.hypothesis.end());
  EXPECT_TRUE(std::find(out.hypothesis.begin(), out.hypothesis.end(),
                        ObjectRef::of(ContractId{3})) != out.hypothesis.end());
}

TEST(GreedyCover, NoFailuresMeansEmptyOutcome) {
  RiskModel model = RiskModel::empty(RiskModelKind::kSwitch);
  const auto e = model.add_element(
      RiskElement{SwitchId{0}, EpgPair{EpgId{0}, EpgId{1}}});
  const auto r = model.add_risk(ObjectRef::of(FilterId{0}));
  model.add_dependency(e, r);
  const GreedyCoverOutcome out = run_greedy_cover(model, 1.0);
  EXPECT_TRUE(out.hypothesis.empty());
  EXPECT_TRUE(out.unexplained.empty());
  EXPECT_EQ(out.observations_total, 0u);
  EXPECT_EQ(out.iterations, 0u);
}

TEST(GreedyCover, TiedRisksAreAllPicked) {
  // Two risks, each with a failed edge to the same single observation:
  // indistinguishable (EPG:Web vs Contract:Web-App in Figure 4(a)).
  RiskModel model = RiskModel::empty(RiskModelKind::kSwitch);
  const auto e = model.add_element(
      RiskElement{SwitchId{0}, EpgPair{EpgId{0}, EpgId{1}}});
  const auto r0 = model.add_risk(ObjectRef::of(EpgId{0}));
  const auto r1 = model.add_risk(ObjectRef::of(ContractId{0}));
  model.add_dependency(e, r0);
  model.add_dependency(e, r1);
  model.mark_edge_failed(e, r0);
  model.mark_edge_failed(e, r1);

  const GreedyCoverOutcome out = run_greedy_cover(model, 1.0);
  EXPECT_EQ(out.hypothesis.size(), 2u);
  EXPECT_TRUE(out.unexplained.empty());
}

TEST(GreedyCover, MultipleIndependentFaultsNeedMultipleIterations) {
  // Two disjoint clusters, each fully explained by its own risk.
  RiskModel model = RiskModel::empty(RiskModelKind::kSwitch);
  const auto r0 = model.add_risk(ObjectRef::of(FilterId{0}));
  const auto r1 = model.add_risk(ObjectRef::of(FilterId{1}));
  for (std::uint32_t i = 0; i < 3; ++i) {
    const auto e = model.add_element(
        RiskElement{SwitchId{0}, EpgPair{EpgId{i}, EpgId{i + 10}}});
    model.add_dependency(e, r0);
    model.mark_edge_failed(e, r0);
  }
  for (std::uint32_t i = 0; i < 2; ++i) {
    const auto e = model.add_element(
        RiskElement{SwitchId{0}, EpgPair{EpgId{i + 20}, EpgId{i + 30}}});
    model.add_dependency(e, r1);
    model.mark_edge_failed(e, r1);
  }
  const GreedyCoverOutcome out = run_greedy_cover(model, 1.0);
  EXPECT_EQ(out.hypothesis.size(), 2u);
  EXPECT_TRUE(out.unexplained.empty());
  EXPECT_EQ(out.iterations, 2u);
}

TEST(GreedyCover, PruningUnlocksLaterCandidates) {
  // r1's dependents include one element explained by r0; after r0's pick
  // prunes it, r1 reaches hit ratio 1 and is picked in round 2.
  RiskModel model = RiskModel::empty(RiskModelKind::kSwitch);
  const auto r0 = model.add_risk(ObjectRef::of(FilterId{0}));
  const auto r1 = model.add_risk(ObjectRef::of(FilterId{1}));

  const auto shared = model.add_element(
      RiskElement{SwitchId{0}, EpgPair{EpgId{0}, EpgId{1}}});
  model.add_dependency(shared, r0);
  model.add_dependency(shared, r1);
  model.mark_edge_failed(shared, r0);  // failed via r0 only

  const auto own0 = model.add_element(
      RiskElement{SwitchId{0}, EpgPair{EpgId{2}, EpgId{3}}});
  model.add_dependency(own0, r0);
  model.mark_edge_failed(own0, r0);

  const auto own1 = model.add_element(
      RiskElement{SwitchId{0}, EpgPair{EpgId{4}, EpgId{5}}});
  model.add_dependency(own1, r1);
  model.mark_edge_failed(own1, r1);

  const GreedyCoverOutcome out = run_greedy_cover(model, 1.0);
  EXPECT_EQ(out.hypothesis.size(), 2u);
  EXPECT_TRUE(out.unexplained.empty());
}

TEST(GreedyCover, InvalidUtilitiesForIsolatedRisk) {
  RiskModel model = RiskModel::empty(RiskModelKind::kSwitch);
  (void)model.add_risk(ObjectRef::of(FilterId{0}));
  const auto utils = initial_utilities(model);
  EXPECT_DOUBLE_EQ(utils[0].hit_ratio, 0.0);
  EXPECT_DOUBLE_EQ(utils[0].coverage_ratio, 0.0);
}

}  // namespace
}  // namespace scout
