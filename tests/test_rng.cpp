#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>

namespace scout {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng{99};
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (const auto& [bucket, count] : counts) {
    EXPECT_NEAR(count, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, BetweenCoversBothEndpoints) {
  Rng rng{5};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.between(-2, 2));
  EXPECT_EQ(seen, (std::set<std::int64_t>{-2, -1, 0, 1, 2}));
}

TEST(Rng, UniformInHalfOpenUnitInterval) {
  Rng rng{11};
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng{3};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceMatchesProbability) {
  Rng rng{17};
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits, kDraws * 0.25, kDraws * 0.02);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng{21};
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng{31};
  for (int trial = 0; trial < 50; ++trial) {
    const auto sample = rng.sample_indices(100, 30);
    EXPECT_EQ(sample.size(), 30u);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 30u);
    for (const std::size_t s : sample) EXPECT_LT(s, 100u);
  }
}

TEST(Rng, SampleIndicesFullPopulation) {
  Rng rng{37};
  const auto sample = rng.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleIndicesRejectsOversample) {
  Rng rng{41};
  EXPECT_THROW((void)rng.sample_indices(5, 6), std::invalid_argument);
}

TEST(Zipf, RankZeroMostPopular) {
  Rng rng{43};
  ZipfDistribution zipf{100, 1.0};
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[99]);
}

TEST(Zipf, SkewZeroIsUniform) {
  Rng rng{47};
  ZipfDistribution zipf{10, 0.0};
  std::map<std::size_t, int> counts;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf(rng)];
  for (const auto& [rank, count] : counts) {
    EXPECT_NEAR(count, kDraws / 10, kDraws / 10 * 0.1);
  }
}

TEST(Zipf, AlwaysInRange) {
  Rng rng{53};
  ZipfDistribution zipf{7, 1.5};
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf(rng), 7u);
}

TEST(Zipf, RejectsEmptySupport) {
  EXPECT_THROW((ZipfDistribution{0, 1.0}), std::invalid_argument);
}

// Zipf frequency of rank r should be ~ (r+1)^-s; check the ratio between
// rank 0 and rank 9 for s=1 is about 10.
TEST(Zipf, FrequenciesFollowPowerLaw) {
  Rng rng{59};
  ZipfDistribution zipf{50, 1.0};
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 500000; ++i) ++counts[zipf(rng)];
  const double ratio =
      static_cast<double>(counts[0]) / static_cast<double>(counts[9]);
  EXPECT_NEAR(ratio, 10.0, 2.0);
}

}  // namespace
}  // namespace scout
