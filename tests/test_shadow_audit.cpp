#include "src/checker/shadow_audit.h"

#include <gtest/gtest.h>

#include "src/controller/compiler.h"
#include "src/tcam/range_expansion.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

TcamRule allow(std::uint32_t priority, std::uint16_t port) {
  return TcamRule::exact_allow(priority, 101, 1, 2, 6,
                               TernaryField::exact(port, FieldWidths::kPort));
}

TEST(ShadowAudit, EmptyRulesetIsClean) {
  const ShadowAuditResult result = audit_shadowing({});
  EXPECT_TRUE(result.entries.empty());
  EXPECT_EQ(result.fully_shadowed, 0u);
}

TEST(ShadowAudit, DisjointRulesAreAllActive) {
  const std::vector<TcamRule> rules{allow(1, 80), allow(2, 443),
                                    allow(3, 700)};
  const ShadowAuditResult result = audit_shadowing(rules);
  for (const ShadowEntry& e : result.entries) {
    EXPECT_EQ(e.state, ShadowState::kActive);
    EXPECT_DOUBLE_EQ(e.covered_fraction, 0.0);
  }
  EXPECT_EQ(result.fully_shadowed, 0u);
  EXPECT_EQ(result.partially_shadowed, 0u);
}

TEST(ShadowAudit, DuplicateRuleIsFullyShadowed) {
  const std::vector<TcamRule> rules{allow(1, 80), allow(2, 80)};
  const ShadowAuditResult result = audit_shadowing(rules);
  EXPECT_EQ(result.entries[0].state, ShadowState::kActive);
  EXPECT_EQ(result.entries[1].state, ShadowState::kFullyShadowed);
  EXPECT_DOUBLE_EQ(result.entries[1].covered_fraction, 1.0);
  EXPECT_EQ(result.fully_shadowed, 1u);
}

TEST(ShadowAudit, BroadRuleShadowsNarrowerOne) {
  TcamRule broad = allow(1, 0);
  broad.dst_port = TernaryField::wildcard();  // all ports
  const std::vector<TcamRule> rules{broad, allow(2, 80)};
  const ShadowAuditResult result = audit_shadowing(rules);
  EXPECT_EQ(result.entries[1].state, ShadowState::kFullyShadowed);
}

TEST(ShadowAudit, NarrowRuleOnlyPartiallyShadowsBroadOne) {
  TcamRule broad = allow(2, 0);
  broad.dst_port = TernaryField{0, 0xFFF0};  // ports 0-15
  const std::vector<TcamRule> rules{allow(1, 3), broad};
  const ShadowAuditResult result = audit_shadowing(rules);
  EXPECT_EQ(result.entries[0].state, ShadowState::kActive);
  EXPECT_EQ(result.entries[1].state, ShadowState::kPartiallyShadowed);
  EXPECT_NEAR(result.entries[1].covered_fraction, 1.0 / 16.0, 1e-9);
}

TEST(ShadowAudit, InputOrderDoesNotMatterPriorityDoes) {
  // Same rules, reversed vector order: same per-rule verdicts.
  const std::vector<TcamRule> fwd{allow(1, 80), allow(2, 80)};
  const std::vector<TcamRule> rev{allow(2, 80), allow(1, 80)};
  const ShadowAuditResult a = audit_shadowing(fwd);
  const ShadowAuditResult b = audit_shadowing(rev);
  EXPECT_EQ(a.entries[1].state, ShadowState::kFullyShadowed);
  EXPECT_EQ(b.entries[0].state, ShadowState::kFullyShadowed);
  EXPECT_EQ(b.entries[1].state, ShadowState::kActive);
}

TEST(ShadowAudit, DefaultDenyIsPartiallyShadowedByAllowRules) {
  const std::vector<TcamRule> rules{allow(1, 80),
                                    TcamRule::default_deny(100)};
  const ShadowAuditResult result = audit_shadowing(rules);
  // Detected by exact BDD identity; the covered fraction itself (1 packet
  // of 2^68) underflows a double and reads as ~0.
  EXPECT_EQ(result.entries[1].state, ShadowState::kPartiallyShadowed);
  EXPECT_LT(result.entries[1].covered_fraction, 1e-9);
}

TEST(ShadowAudit, CompiledPolicyHasNoDeadRules) {
  // The compiler must never emit shadowed rules for a clean policy.
  const ThreeTierNetwork net = make_three_tier();
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  for (const auto& [sw, rules] : compiled.per_switch) {
    std::vector<TcamRule> raw;
    for (const LogicalRule& lr : rules) raw.push_back(lr.rule);
    const ShadowAuditResult result = audit_shadowing(raw);
    EXPECT_EQ(result.fully_shadowed, 0u) << "switch " << sw;
  }
}

TEST(ShadowAudit, RangeExpansionCubesNeverShadowEachOther) {
  std::vector<TcamRule> rules;
  std::uint32_t priority = 0;
  for (const TernaryField& cube : expand_port_range(100, 9000, 16)) {
    rules.push_back(TcamRule::exact_allow(priority++, 1, 2, 3, 6, cube));
  }
  const ShadowAuditResult result = audit_shadowing(rules);
  EXPECT_EQ(result.fully_shadowed, 0u);
  EXPECT_EQ(result.partially_shadowed, 0u);
}

}  // namespace
}  // namespace scout
