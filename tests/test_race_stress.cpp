// Adversarial concurrency stress for the runtime core. These tests are the
// workload the sanitizer matrix runs against: they hammer the exact
// interleavings the thread-safety annotations claim to rule out —
// submit/wait/destroy races on the sharded pool, cross-thread submitters,
// worker-cache traffic under a live executor, and the event-bus-under-
// monitor pipeline with periodic snapshots taken at every quiescent point.
// Under plain builds they pin the functional contracts; under
// -fsanitize=thread they are the race detectors' corpus.
#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/campaign.h"
#include "src/runtime/result_sink.h"
#include "src/runtime/thread_pool.h"
#include "src/scout/experiment.h"
#include "src/stream/event_bus.h"
#include "src/stream/mpsc_ring.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace scout {
namespace {

// -- ThreadPool interleavings ------------------------------------------------

TEST(RaceStress, ThreadPoolRepeatedSubmitWaitRounds) {
  runtime::ThreadPool pool{4};
  std::atomic<std::size_t> done{0};
  constexpr std::size_t kRounds = 50;
  constexpr std::size_t kTasksPerRound = 64;
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < kTasksPerRound; ++i) {
      pool.submit(i, [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    ASSERT_EQ(done.load(), (round + 1) * kTasksPerRound);
  }
}

TEST(RaceStress, ThreadPoolConcurrentSubmitters) {
  // submit() is documented thread-safe: several external threads race to
  // enqueue onto the same shards while the pool is already running.
  runtime::ThreadPool pool{4};
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kPerSubmitter = 250;
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &done, s] {
      for (std::size_t i = 0; i < kPerSubmitter; ++i) {
        pool.submit(s * kPerSubmitter + i, [&done] {
          done.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.wait();
  EXPECT_EQ(done.load(), kSubmitters * kPerSubmitter);
}

TEST(RaceStress, ThreadPoolDestroyWithQueuedWorkDrains) {
  // Destruction races the workers against a deep backlog; the destructor
  // must drain every queued task, not drop or double-run any.
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> done{0};
    {
      runtime::ThreadPool pool{4};
      for (std::size_t i = 0; i < 128; ++i) {
        pool.submit(i, [&done] {
          done.fetch_add(1, std::memory_order_relaxed);
        });
      }
      // No wait(): the destructor owns the drain.
    }
    ASSERT_EQ(done.load(), 128u) << "round " << round;
  }
}

TEST(RaceStress, ThreadPoolTasksSubmittingTasks) {
  // A task fanning out follow-up work races submit() against the parent's
  // own completion accounting: pending_ must never hit zero while a child
  // is still queued.
  runtime::ThreadPool pool{4};
  std::atomic<std::size_t> leaves{0};
  constexpr std::size_t kRoots = 32;
  constexpr std::size_t kChildren = 8;
  for (std::size_t r = 0; r < kRoots; ++r) {
    pool.submit(r, [&pool, &leaves, r] {
      for (std::size_t c = 0; c < kChildren; ++c) {
        pool.submit(r + c + 1, [&leaves] {
          leaves.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  pool.wait();
  EXPECT_EQ(leaves.load(), kRoots * kChildren);
}

TEST(RaceStress, ThreadPoolExceptionStormKeepsPoolUsable) {
  runtime::ThreadPool pool{4};
  std::atomic<std::size_t> survivors{0};
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < 64; ++i) {
      if (i % 7 == 0) {
        pool.submit(i, [] { throw std::runtime_error{"storm"}; });
      } else {
        pool.submit(i, [&survivors] {
          survivors.fetch_add(1, std::memory_order_relaxed);
        });
      }
    }
    EXPECT_THROW(pool.wait(), std::runtime_error) << "round " << round;
  }
  // A clean batch after the storm: the error slot was consumed each round.
  pool.submit(0, [&survivors] { survivors.fetch_add(1); });
  pool.wait();
}

// -- WorkerCache under a live executor ---------------------------------------

TEST(RaceStress, WorkerCacheHammeredByExecutor) {
  runtime::ThreadPoolExecutor executor{4};
  runtime::WorkerCache<std::vector<int>> cache{executor.workers()};
  constexpr std::size_t kTasks = 2000;
  // Two keys alternating in blocks of 16 indices (4 consecutive tasks per
  // worker under the round-robin) force a hit/miss mix; every task touches
  // only its own worker's slot, which is the discipline TSan certifies.
  executor.run(kTasks, [&cache](std::size_t index, std::size_t worker) {
    const std::uint64_t key = 100 + (index / 16) % 2;
    std::vector<int>* entry = cache.lookup(worker, key);
    if (entry == nullptr) {
      cache.note_miss(worker);
      entry = &cache.store(worker, key,
                           std::vector<int>(8, static_cast<int>(worker)));
    } else {
      cache.note_hit(worker);
    }
    ASSERT_EQ(entry->size(), 8u);
    ASSERT_EQ((*entry)[0], static_cast<int>(worker));
    if (index % 97 == 0) cache.invalidate(worker);
  });
  EXPECT_EQ(cache.hits() + cache.misses(), kTasks);
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

// -- MetricsRegistry: sharded recording merges exactly -----------------------

TEST(RaceStress, MetricsMergeExactUnderParallelRecording) {
  runtime::ThreadPoolExecutor executor{4};
  telemetry::MetricsRegistry registry{executor.workers()};
  telemetry::Counter tasks = registry.counter("stress.tasks");
  telemetry::Histogram values = registry.histogram("stress.values");
  runtime::ExecutorMetrics wiring;
  wiring.registry = &registry;
  executor.set_metrics(std::move(wiring));

  constexpr std::size_t kTasks = 5000;
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    executor.run(kTasks, [&](std::size_t index, std::size_t worker) {
      tasks.inc(worker);
      values.record(worker, static_cast<double>(index % 17));
    });
    // The executor joined, so the registry is quiescent: the snapshot must
    // see every one of the shard-local plain stores, exactly once.
    const telemetry::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter("stress.tasks"), kTasks * (round + 1));
    const LogHistogram* hist = snap.histogram("stress.values");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count(), kTasks * static_cast<std::size_t>(round + 1));
  }
  executor.set_metrics(runtime::ExecutorMetrics{});
}

TEST(RaceStress, MetricsResetBetweenParallelPhases) {
  runtime::ThreadPoolExecutor executor{2};
  telemetry::MetricsRegistry registry{executor.workers()};
  telemetry::Counter c = registry.counter("stress.reset");
  runtime::ExecutorMetrics wiring;
  wiring.registry = &registry;
  executor.set_metrics(std::move(wiring));
  for (int round = 0; round < 8; ++round) {
    executor.run(300, [&c](std::size_t, std::size_t worker) {
      c.inc(worker);
    });
    EXPECT_EQ(registry.snapshot().counter("stress.reset"), 300u);
    registry.reset();
  }
  executor.set_metrics(runtime::ExecutorMetrics{});
}

// -- TraceRecorder: one lane per worker, recorded concurrently ---------------

TEST(RaceStress, TraceLanesRecordConcurrently) {
  runtime::ThreadPoolExecutor executor{4};
  telemetry::TraceRecorder recorder{executor.workers() + 1};
  constexpr std::size_t kTasks = 1000;
  executor.run(kTasks, [&recorder](std::size_t index, std::size_t worker) {
    telemetry::TraceRecorder::Scope span = recorder.span(
        worker + 1, "task", "stress", SimTime{},
        static_cast<std::int64_t>(index));
    if (index % 50 == 0) {
      recorder.instant(worker + 1, "marker", "stress", SimTime{});
    }
  });
  recorder.instant(0, "joined", "stress", SimTime{});
  EXPECT_EQ(recorder.spans().size(), kTasks);
  EXPECT_EQ(recorder.instants().size(), kTasks / 50 + 1);
}

// -- EventBus under the monitor: the full pipeline at 4 workers --------------

TEST(RaceStress, MonitorPipelineWithPeriodicSnapshotsAt4Workers) {
  // End-to-end: churn -> bus -> incremental monitor fanning shards over 4
  // workers, telemetry on, a metrics snapshot forced after *every* batch.
  // Each snapshot lands at a quiescent point (after the executor join), a
  // contract the registry now enforces by aborting otherwise; under TSan
  // this is the telemetry shard -> snapshot handoff certification.
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(8);
  options.profile.target_pairs = 8 * 30;
  options.events = 120;
  options.batch_ops = 10;
  options.seed = 77;
  options.collect_telemetry = true;
  options.collect_trace = true;
  options.snapshot_every_batches = 1;
  options.localize_final = false;

  runtime::ThreadPoolExecutor executor{4};
  const MonitoringReport report =
      run_continuous_monitoring(options, executor);
  EXPECT_GE(report.events, options.events);
  EXPECT_GT(report.batches, 0u);
  EXPECT_EQ(report.periodic_snapshot_count, report.batches);
  EXPECT_EQ(report.telemetry.counter("stream.batches"), report.batches);
  EXPECT_FALSE(report.trace_json.empty());
}

TEST(RaceStress, MonitorVerdictsIdenticalAcrossRepeatedParallelRuns) {
  // Determinism under contention: the same scenario at 4 workers, run
  // repeatedly, must emit the same verdict digest every time. Flaky
  // digests here mean a scheduling-dependent data path — the bug class
  // this PR's annotations exist to keep out.
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(8);
  options.profile.target_pairs = 8 * 30;
  options.events = 80;
  options.batch_ops = 10;
  options.seed = 31;
  options.collect_telemetry = true;
  options.localize_final = false;

  std::uint64_t expected = 0;
  for (int run = 0; run < 3; ++run) {
    runtime::ThreadPoolExecutor executor{4};
    const MonitoringReport report =
        run_continuous_monitoring(options, executor);
    if (run == 0) {
      expected = report.verdict_digest;
    } else {
      EXPECT_EQ(report.verdict_digest, expected) << "run " << run;
    }
  }
}

// -- MpscRing storms: publishers and drainer at full contention --------------

stream::StreamEvent storm_event(std::uint32_t sw, std::uint64_t n) {
  stream::StreamEvent ev;
  ev.type = stream::StreamEventType::kRuleEvicted;
  ev.sw = SwitchId{sw};
  ev.tcam_index = n;  // per-publisher payload: order + exactly-once proof
  return ev;
}

TEST(RaceStress, MpscRingEightPublisherStormAgainstConcurrentDrainer) {
  // More publishers than this machine has cores, a shard a fraction of the
  // per-publisher volume, and a drainer racing them the whole way: every
  // publish must land exactly once, in per-publisher order, with zero
  // evictions (backpressure absorbs the overrun).
  constexpr std::size_t kPublishers = 8;
  constexpr std::uint64_t kPerPublisher = 1500;
  stream::MpscRing::Options opts;
  opts.shard_capacity = 32;
  opts.on_full = stream::MpscRing::FullPolicy::kBackpressure;
  stream::MpscRing ring{kPublishers, kPublishers, opts};

  std::vector<std::thread> pubs;
  pubs.reserve(kPublishers);
  for (std::size_t p = 0; p < kPublishers; ++p) {
    pubs.emplace_back([&ring, p] {
      ring.claim(p);
      for (std::uint64_t i = 0; i < kPerPublisher; ++i) {
        ASSERT_TRUE(
            ring.publish(p, storm_event(static_cast<std::uint32_t>(p), i)));
      }
      ring.release(p);
    });
  }

  std::vector<std::uint64_t> next(kPublishers, 0);
  std::uint64_t drained = 0;
  while (drained < kPublishers * kPerPublisher) {
    for (std::size_t p = 0; p < kPublishers; ++p) {
      drained += ring.drain_shard(p, [&next, p](const stream::StreamEvent& e) {
        ASSERT_EQ(e.tcam_index, next[p]) << "publisher " << p;
        ++next[p];
      });
    }
  }
  for (std::thread& t : pubs) t.join();
  const stream::MpscRing::Stats stats = ring.stats();
  EXPECT_EQ(stats.published, kPublishers * kPerPublisher);
  EXPECT_EQ(stats.drained, kPublishers * kPerPublisher);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(RaceStress, BusRoutedStormWithEvictionsFoldsBackExactly) {
  // The full bus path under overrun: 8 capability-holding threads publish
  // through EventBus::publish into a deliberately tiny eviction-policy
  // ring while the main thread keeps folding shards into the serial
  // stream. Conservation must hold exactly: every publish either reaches
  // the stream or is accounted as an eviction, and every evicted switch
  // surfaces as a synthesized shadow-resync.
  constexpr std::size_t kPublishers = 8;
  constexpr std::uint64_t kPerPublisher = 1000;
  stream::MpscRing::Options opts;
  opts.shard_capacity = 16;  // guaranteed overruns between ingests
  stream::MpscRing ring{kPublishers, kPublishers, opts};
  stream::EventBus bus;
  bus.attach_ring(&ring);

  std::atomic<std::size_t> running{kPublishers};
  std::vector<std::thread> pubs;
  pubs.reserve(kPublishers);
  for (std::size_t p = 0; p < kPublishers; ++p) {
    pubs.emplace_back([&bus, &running, p] {
      stream::EventBus::ConcurrentPublishCapability cap{bus, p};
      for (std::uint64_t i = 0; i < kPerPublisher; ++i) {
        (void)bus.publish(storm_event(static_cast<std::uint32_t>(p), i));
      }
      running.fetch_sub(1, std::memory_order_release);
    });
  }
  while (running.load(std::memory_order_acquire) != 0) {
    (void)bus.ingest_ring();
    std::this_thread::yield();
  }
  for (std::thread& t : pubs) t.join();
  (void)bus.ingest_ring();  // final fold: publishers quiescent

  const stream::MpscRing::Stats ring_stats = ring.stats();
  const stream::EventBus::Stats bus_stats = bus.stats();
  EXPECT_EQ(ring_stats.published + ring_stats.evictions,
            kPublishers * kPerPublisher);
  EXPECT_EQ(ring_stats.drained, ring_stats.published);
  EXPECT_EQ(bus_stats.ingested, ring_stats.drained);
  EXPECT_GT(ring_stats.evictions, 0u);
  EXPECT_GT(bus_stats.resyncs_synthesized, 0u);
  EXPECT_EQ(bus_stats.published,
            bus_stats.ingested + bus_stats.resyncs_synthesized);
  EXPECT_EQ(bus.cursor(), bus_stats.published);
  bus.attach_ring(nullptr);
}

TEST(RaceStress, CloseWhileEveryShardIsFullReleasesAllSpinners) {
  // Shutdown under the worst backpressure state: every publisher blocked
  // on a full shard, no drainer anywhere. close() must convert all of
  // them to the eviction path; destruction then waits for the releases.
  constexpr std::size_t kPublishers = 4;
  constexpr std::size_t kCapacity = 8;
  stream::MpscRing::Options opts;
  opts.shard_capacity = kCapacity;
  opts.on_full = stream::MpscRing::FullPolicy::kBackpressure;
  auto ring = std::make_unique<stream::MpscRing>(kPublishers, kPublishers,
                                                 opts);
  std::atomic<std::size_t> filled{0};
  std::vector<std::thread> pubs;
  pubs.reserve(kPublishers);
  for (std::size_t p = 0; p < kPublishers; ++p) {
    pubs.emplace_back([&ring, &filled, p] {
      ring->claim(p);
      for (std::size_t i = 0; i < kCapacity; ++i) {
        ASSERT_TRUE(
            ring->publish(p, storm_event(static_cast<std::uint32_t>(p), i)));
      }
      filled.fetch_add(1, std::memory_order_release);
      // Shard full, nobody draining: this blocks until close() flips it
      // to the eviction path.
      EXPECT_FALSE(ring->publish(
          p, storm_event(static_cast<std::uint32_t>(p), kCapacity)));
      ring->release(p);
    });
  }
  while (filled.load(std::memory_order_acquire) != kPublishers) {
    std::this_thread::yield();
  }
  ring->close();
  for (std::thread& t : pubs) t.join();
  EXPECT_EQ(ring->stats().evictions, kPublishers);
  std::vector<SwitchId> evicted;
  (void)ring->take_evictions(evicted);
  EXPECT_EQ(evicted.size(), kPublishers);
  ring.reset();  // dtor: close + wait for releases (already released)
}

TEST(RaceStress, PipelinedMonitorAt4PublishersConvergesUnderContention) {
  // End-to-end free-run: 4 publisher threads race the drain loop through
  // the backpressure ring while the monitor verifies concurrently. The
  // timing-independent contract is that the final composed verdict equals
  // a fresh check_all at quiescence.
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(8);
  options.profile.target_pairs = 8 * 30;
  options.events = 120;
  options.batch_ops = 10;
  options.seed = 77;
  options.publishers = 4;
  options.pipelined = true;
  options.localize_final = false;

  runtime::ThreadPoolExecutor executor{4};
  const MonitoringReport report =
      run_continuous_monitoring(options, executor);
  EXPECT_GE(report.events, options.events);
  EXPECT_TRUE(report.final_verdict_matches_fresh);
  EXPECT_EQ(report.checker.full_rebuilds,
            report.checker.epoch_rebuilds + report.checker.threshold_trips +
                report.checker.unsafe_rebuilds +
                report.checker.overflow_resyncs);
}

}  // namespace
}  // namespace scout
