// Adversarial concurrency stress for the runtime core. These tests are the
// workload the sanitizer matrix runs against: they hammer the exact
// interleavings the thread-safety annotations claim to rule out —
// submit/wait/destroy races on the sharded pool, cross-thread submitters,
// worker-cache traffic under a live executor, and the event-bus-under-
// monitor pipeline with periodic snapshots taken at every quiescent point.
// Under plain builds they pin the functional contracts; under
// -fsanitize=thread they are the race detectors' corpus.
#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/runtime/campaign.h"
#include "src/runtime/result_sink.h"
#include "src/runtime/thread_pool.h"
#include "src/scout/experiment.h"
#include "src/stream/event_bus.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace scout {
namespace {

// -- ThreadPool interleavings ------------------------------------------------

TEST(RaceStress, ThreadPoolRepeatedSubmitWaitRounds) {
  runtime::ThreadPool pool{4};
  std::atomic<std::size_t> done{0};
  constexpr std::size_t kRounds = 50;
  constexpr std::size_t kTasksPerRound = 64;
  for (std::size_t round = 0; round < kRounds; ++round) {
    for (std::size_t i = 0; i < kTasksPerRound; ++i) {
      pool.submit(i, [&done] { done.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait();
    ASSERT_EQ(done.load(), (round + 1) * kTasksPerRound);
  }
}

TEST(RaceStress, ThreadPoolConcurrentSubmitters) {
  // submit() is documented thread-safe: several external threads race to
  // enqueue onto the same shards while the pool is already running.
  runtime::ThreadPool pool{4};
  constexpr std::size_t kSubmitters = 4;
  constexpr std::size_t kPerSubmitter = 250;
  std::atomic<std::size_t> done{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (std::size_t s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&pool, &done, s] {
      for (std::size_t i = 0; i < kPerSubmitter; ++i) {
        pool.submit(s * kPerSubmitter + i, [&done] {
          done.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  pool.wait();
  EXPECT_EQ(done.load(), kSubmitters * kPerSubmitter);
}

TEST(RaceStress, ThreadPoolDestroyWithQueuedWorkDrains) {
  // Destruction races the workers against a deep backlog; the destructor
  // must drain every queued task, not drop or double-run any.
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> done{0};
    {
      runtime::ThreadPool pool{4};
      for (std::size_t i = 0; i < 128; ++i) {
        pool.submit(i, [&done] {
          done.fetch_add(1, std::memory_order_relaxed);
        });
      }
      // No wait(): the destructor owns the drain.
    }
    ASSERT_EQ(done.load(), 128u) << "round " << round;
  }
}

TEST(RaceStress, ThreadPoolTasksSubmittingTasks) {
  // A task fanning out follow-up work races submit() against the parent's
  // own completion accounting: pending_ must never hit zero while a child
  // is still queued.
  runtime::ThreadPool pool{4};
  std::atomic<std::size_t> leaves{0};
  constexpr std::size_t kRoots = 32;
  constexpr std::size_t kChildren = 8;
  for (std::size_t r = 0; r < kRoots; ++r) {
    pool.submit(r, [&pool, &leaves, r] {
      for (std::size_t c = 0; c < kChildren; ++c) {
        pool.submit(r + c + 1, [&leaves] {
          leaves.fetch_add(1, std::memory_order_relaxed);
        });
      }
    });
  }
  pool.wait();
  EXPECT_EQ(leaves.load(), kRoots * kChildren);
}

TEST(RaceStress, ThreadPoolExceptionStormKeepsPoolUsable) {
  runtime::ThreadPool pool{4};
  std::atomic<std::size_t> survivors{0};
  for (int round = 0; round < 10; ++round) {
    for (std::size_t i = 0; i < 64; ++i) {
      if (i % 7 == 0) {
        pool.submit(i, [] { throw std::runtime_error{"storm"}; });
      } else {
        pool.submit(i, [&survivors] {
          survivors.fetch_add(1, std::memory_order_relaxed);
        });
      }
    }
    EXPECT_THROW(pool.wait(), std::runtime_error) << "round " << round;
  }
  // A clean batch after the storm: the error slot was consumed each round.
  pool.submit(0, [&survivors] { survivors.fetch_add(1); });
  pool.wait();
}

// -- WorkerCache under a live executor ---------------------------------------

TEST(RaceStress, WorkerCacheHammeredByExecutor) {
  runtime::ThreadPoolExecutor executor{4};
  runtime::WorkerCache<std::vector<int>> cache{executor.workers()};
  constexpr std::size_t kTasks = 2000;
  // Two keys alternating in blocks of 16 indices (4 consecutive tasks per
  // worker under the round-robin) force a hit/miss mix; every task touches
  // only its own worker's slot, which is the discipline TSan certifies.
  executor.run(kTasks, [&cache](std::size_t index, std::size_t worker) {
    const std::uint64_t key = 100 + (index / 16) % 2;
    std::vector<int>* entry = cache.lookup(worker, key);
    if (entry == nullptr) {
      cache.note_miss(worker);
      entry = &cache.store(worker, key,
                           std::vector<int>(8, static_cast<int>(worker)));
    } else {
      cache.note_hit(worker);
    }
    ASSERT_EQ(entry->size(), 8u);
    ASSERT_EQ((*entry)[0], static_cast<int>(worker));
    if (index % 97 == 0) cache.invalidate(worker);
  });
  EXPECT_EQ(cache.hits() + cache.misses(), kTasks);
  EXPECT_GT(cache.hits(), 0u);
  EXPECT_GT(cache.misses(), 0u);
}

// -- MetricsRegistry: sharded recording merges exactly -----------------------

TEST(RaceStress, MetricsMergeExactUnderParallelRecording) {
  runtime::ThreadPoolExecutor executor{4};
  telemetry::MetricsRegistry registry{executor.workers()};
  telemetry::Counter tasks = registry.counter("stress.tasks");
  telemetry::Histogram values = registry.histogram("stress.values");
  runtime::ExecutorMetrics wiring;
  wiring.registry = &registry;
  executor.set_metrics(std::move(wiring));

  constexpr std::size_t kTasks = 5000;
  constexpr int kRounds = 4;
  for (int round = 0; round < kRounds; ++round) {
    executor.run(kTasks, [&](std::size_t index, std::size_t worker) {
      tasks.inc(worker);
      values.record(worker, static_cast<double>(index % 17));
    });
    // The executor joined, so the registry is quiescent: the snapshot must
    // see every one of the shard-local plain stores, exactly once.
    const telemetry::MetricsSnapshot snap = registry.snapshot();
    EXPECT_EQ(snap.counter("stress.tasks"), kTasks * (round + 1));
    const LogHistogram* hist = snap.histogram("stress.values");
    ASSERT_NE(hist, nullptr);
    EXPECT_EQ(hist->count(), kTasks * static_cast<std::size_t>(round + 1));
  }
  executor.set_metrics(runtime::ExecutorMetrics{});
}

TEST(RaceStress, MetricsResetBetweenParallelPhases) {
  runtime::ThreadPoolExecutor executor{2};
  telemetry::MetricsRegistry registry{executor.workers()};
  telemetry::Counter c = registry.counter("stress.reset");
  runtime::ExecutorMetrics wiring;
  wiring.registry = &registry;
  executor.set_metrics(std::move(wiring));
  for (int round = 0; round < 8; ++round) {
    executor.run(300, [&c](std::size_t, std::size_t worker) {
      c.inc(worker);
    });
    EXPECT_EQ(registry.snapshot().counter("stress.reset"), 300u);
    registry.reset();
  }
  executor.set_metrics(runtime::ExecutorMetrics{});
}

// -- TraceRecorder: one lane per worker, recorded concurrently ---------------

TEST(RaceStress, TraceLanesRecordConcurrently) {
  runtime::ThreadPoolExecutor executor{4};
  telemetry::TraceRecorder recorder{executor.workers() + 1};
  constexpr std::size_t kTasks = 1000;
  executor.run(kTasks, [&recorder](std::size_t index, std::size_t worker) {
    telemetry::TraceRecorder::Scope span = recorder.span(
        worker + 1, "task", "stress", SimTime{},
        static_cast<std::int64_t>(index));
    if (index % 50 == 0) {
      recorder.instant(worker + 1, "marker", "stress", SimTime{});
    }
  });
  recorder.instant(0, "joined", "stress", SimTime{});
  EXPECT_EQ(recorder.spans().size(), kTasks);
  EXPECT_EQ(recorder.instants().size(), kTasks / 50 + 1);
}

// -- EventBus under the monitor: the full pipeline at 4 workers --------------

TEST(RaceStress, MonitorPipelineWithPeriodicSnapshotsAt4Workers) {
  // End-to-end: churn -> bus -> incremental monitor fanning shards over 4
  // workers, telemetry on, a metrics snapshot forced after *every* batch.
  // Each snapshot lands at a quiescent point (after the executor join), a
  // contract the registry now enforces by aborting otherwise; under TSan
  // this is the telemetry shard -> snapshot handoff certification.
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(8);
  options.profile.target_pairs = 8 * 30;
  options.events = 120;
  options.batch_ops = 10;
  options.seed = 77;
  options.collect_telemetry = true;
  options.collect_trace = true;
  options.snapshot_every_batches = 1;
  options.localize_final = false;

  runtime::ThreadPoolExecutor executor{4};
  const MonitoringReport report =
      run_continuous_monitoring(options, executor);
  EXPECT_GE(report.events, options.events);
  EXPECT_GT(report.batches, 0u);
  EXPECT_EQ(report.periodic_snapshot_count, report.batches);
  EXPECT_EQ(report.telemetry.counter("stream.batches"), report.batches);
  EXPECT_FALSE(report.trace_json.empty());
}

TEST(RaceStress, MonitorVerdictsIdenticalAcrossRepeatedParallelRuns) {
  // Determinism under contention: the same scenario at 4 workers, run
  // repeatedly, must emit the same verdict digest every time. Flaky
  // digests here mean a scheduling-dependent data path — the bug class
  // this PR's annotations exist to keep out.
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(8);
  options.profile.target_pairs = 8 * 30;
  options.events = 80;
  options.batch_ops = 10;
  options.seed = 31;
  options.collect_telemetry = true;
  options.localize_final = false;

  std::uint64_t expected = 0;
  for (int run = 0; run < 3; ++run) {
    runtime::ThreadPoolExecutor executor{4};
    const MonitoringReport report =
        run_continuous_monitoring(options, executor);
    if (run == 0) {
      expected = report.verdict_digest;
    } else {
      EXPECT_EQ(report.verdict_digest, expected) << "run " << run;
    }
  }
}

}  // namespace
}  // namespace scout
