// Differential correctness of the continuous-verification stream: the
// incremental monitor's verdicts must be identical to a fresh
// ScoutSystem::check_all after every batch — across randomized event
// streams, mid-stream compiled-epoch bumps, divergence-threshold trips,
// out-of-shape (unsafe) deltas, and 1/2/4 workers.
#include <gtest/gtest.h>

#include "src/scout/experiment.h"
#include "src/scout/scout_system.h"
#include "src/stream/monitor_loop.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

MonitoringOptions small_scenario(std::uint64_t seed) {
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(10);
  options.profile.target_pairs = 10 * 40;
  options.events = 160;
  options.batch_ops = 12;
  options.seed = seed;
  // Elevated policy churn so compiled-epoch bumps land mid-stream.
  options.mix.migrate = 0.08;
  options.localize_final = false;
  return options;
}

void expect_counter_consistency(const MonitoringReport& report) {
  EXPECT_EQ(report.checker.full_rebuilds,
            report.checker.epoch_rebuilds + report.checker.threshold_trips +
                report.checker.unsafe_rebuilds +
                report.checker.overflow_resyncs);
}

TEST(StreamMonitor, IncrementalMatchesFullCheckAcrossSeeds) {
  runtime::SerialExecutor executor;
  std::size_t runs_with_epoch_bumps = 0;
  std::size_t runs_with_inconsistency = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    MonitoringOptions options = small_scenario(seed);
    options.verify_batches = true;  // fresh check_all after every batch
    const MonitoringReport report =
        run_continuous_monitoring(options, executor);
    EXPECT_EQ(report.verify_mismatches, 0u) << "seed " << seed;
    EXPECT_GE(report.events, options.events) << "seed " << seed;
    expect_counter_consistency(report);
    EXPECT_EQ(report.checker.unsafe_rebuilds, 0u)
        << "compiler-shaped churn fell off the incremental path, seed "
        << seed;
    if (report.checker.epoch_rebuilds > 0) ++runs_with_epoch_bumps;
    if (report.inconsistent_batches > 0) ++runs_with_inconsistency;
  }
  // The scenario must actually exercise the hard paths.
  EXPECT_GT(runs_with_epoch_bumps, 0u);
  EXPECT_GT(runs_with_inconsistency, 10u);
}

TEST(StreamMonitor, VerdictStreamIdenticalAcrossModesAndWorkerCounts) {
  for (const std::uint64_t seed : {3u, 11u}) {
    std::uint64_t expected = 0;
    bool first = true;
    for (const std::size_t threads : {1u, 2u, 4u}) {
      for (const bool incremental : {true, false}) {
        MonitoringOptions options = small_scenario(seed);
        options.incremental = incremental;
        const auto executor = runtime::make_executor(threads);
        const MonitoringReport report =
            run_continuous_monitoring(options, *executor);
        if (first) {
          expected = report.verdict_digest;
          first = false;
        } else {
          EXPECT_EQ(report.verdict_digest, expected)
              << "seed " << seed << " threads " << threads
              << " incremental " << incremental;
        }
      }
    }
  }
}

// The concurrent-ingest differential: the ConcurrentChurnDriver's data-op
// schedule is a pure function of the seed, so one seed must produce one
// verdict-digest whether the data phase is executed serially through the
// bus (use_ring = false) or published from 1/2/4 real publisher threads
// into the MpscRing — and whatever the drain-side worker count. Twenty
// seeds walk the {publishers} x {workers} grid; every concurrent leg also
// cross-checks each batch against a fresh check_all.
TEST(StreamMonitor, ConcurrentPublishersMatchSerialTransportAcrossSeeds) {
  const std::size_t publishers[] = {1, 2, 4};
  const std::size_t workers[] = {1, 2, 4};
  std::size_t runs_with_epoch_bumps = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    // Serial-transport anchor: same driver, same schedule, no ring.
    MonitoringOptions base = small_scenario(seed);
    base.publishers = 1;
    base.use_ring = false;
    runtime::SerialExecutor serial_exec;
    const MonitoringReport anchor =
        run_continuous_monitoring(base, serial_exec);
    expect_counter_consistency(anchor);

    // One ring leg per seed; 20 seeds sweep the 3x3 grid twice over.
    MonitoringOptions options = small_scenario(seed);
    options.publishers = publishers[seed % 3];
    options.verify_batches = true;  // fresh check_all after every batch
    const auto executor = runtime::make_executor(workers[(seed / 3) % 3]);
    const MonitoringReport report =
        run_continuous_monitoring(options, *executor);
    EXPECT_EQ(report.verify_mismatches, 0u)
        << "seed " << seed << " publishers " << options.publishers;
    EXPECT_EQ(report.verdict_digest, anchor.verdict_digest)
        << "seed " << seed << " publishers " << options.publishers
        << " workers " << workers[(seed / 3) % 3];
    EXPECT_GE(report.events, options.events) << "seed " << seed;
    expect_counter_consistency(report);
    if (report.checker.epoch_rebuilds > 0) ++runs_with_epoch_bumps;
  }
  // Mid-stream recompiles must land inside the concurrent legs too.
  EXPECT_GT(runs_with_epoch_bumps, 0u);
}

// Overflow path: a capacity-8 ring with every data op funneled through one
// publisher shard is guaranteed to overflow between drains. Evictions must
// surface as shadow resyncs — and the resync'd verdicts must still match
// both the per-batch fresh check and the uncontended serial-transport
// digest, because a shadow resync recollects the exact quiescent TCAM.
TEST(StreamMonitor, OverflowEvictionForcesShadowResyncAndStaysExact) {
  runtime::SerialExecutor executor;
  MonitoringOptions base = small_scenario(9);
  // No recompiles: an epoch bump in the same batch would repair the gap
  // through the arena-rebuild branch and mask the overflow accounting
  // this test pins.
  base.mix.migrate = 0.0;
  base.publishers = 1;
  base.use_ring = false;
  const MonitoringReport anchor = run_continuous_monitoring(base, executor);

  MonitoringOptions options = small_scenario(9);
  options.mix.migrate = 0.0;
  options.publishers = 1;
  options.ring_capacity = 8;
  options.verify_batches = true;
  const MonitoringReport report =
      run_continuous_monitoring(options, executor);
  EXPECT_GT(report.ring_evictions, 0u);
  EXPECT_GT(report.checker.overflow_resyncs, 0u);
  EXPECT_EQ(report.verify_mismatches, 0u);
  EXPECT_EQ(report.verdict_digest, anchor.verdict_digest);
  expect_counter_consistency(report);
}

// Free-run mode: publishers race ahead of the drain loop, so per-batch
// digests are timing-dependent by design — the gate is that the final
// composed verdict equals a fresh check_all at quiescence.
TEST(StreamMonitor, PipelinedFreeRunConvergesToFreshVerdict) {
  MonitoringOptions options = small_scenario(13);
  options.publishers = 2;
  options.pipelined = true;
  const auto executor = runtime::make_executor(2);
  const MonitoringReport report =
      run_continuous_monitoring(options, *executor);
  EXPECT_TRUE(report.final_verdict_matches_fresh);
  EXPECT_GE(report.events, options.events);
  EXPECT_GT(report.publish_wall_events_per_sec, 0.0);
  expect_counter_consistency(report);
}

TEST(StreamMonitor, DivergenceThresholdTripsKeepVerdictsExact) {
  runtime::SerialExecutor executor;
  MonitoringOptions options = small_scenario(7);
  options.verify_batches = true;
  // Compact aggressively: every touched switch trips almost immediately.
  options.checker.divergence_factor = 1.0;
  options.checker.divergence_slack = 64;
  const MonitoringReport report =
      run_continuous_monitoring(options, executor);
  EXPECT_EQ(report.verify_mismatches, 0u);
  EXPECT_GT(report.checker.threshold_trips, 0u);
  expect_counter_consistency(report);
}

TEST(StreamMonitor, EventCountAndLatencyAccounting) {
  runtime::SerialExecutor executor;
  MonitoringOptions options = small_scenario(5);
  const MonitoringReport report =
      run_continuous_monitoring(options, executor);
  EXPECT_GE(report.events, options.events);
  EXPECT_GT(report.batches, 0u);
  EXPECT_GT(report.churn_ops, 0u);
  EXPECT_GT(report.events_per_sec, 0.0);
  EXPECT_LE(report.p50_latency_ms, report.p99_latency_ms);
  EXPECT_LE(report.p99_latency_ms, report.max_latency_ms);
  // Sim-clock latency is reported in its own fields — never mixed with the
  // wall-clock numbers above — and must be internally consistent too.
  EXPECT_LE(report.sim_p50_latency_ms, report.sim_p99_latency_ms);
  EXPECT_LE(report.sim_p99_latency_ms, report.sim_max_latency_ms);
  EXPECT_GE(report.sim_max_latency_ms, 0.0);
}

// Every published event carries both clock stamps; each must be
// monotonically non-decreasing in publish order, so event-to-detection
// latencies are well-defined in either clock without mixing them.
TEST(StreamMonitor, EventClockStampsAreMonotonic) {
  ThreeTierNetwork three = make_three_tier();
  SimNetwork net{std::move(three.fabric), std::move(three.policy)};
  net.deploy();
  net.clock().advance(3'600'000);
  stream::EventBus bus;
  net.attach_event_bus(&bus);

  ASSERT_GT(net.agent(three.s2).evict_rules(16, net.clock().now()), 0u);
  net.clock().advance(50);
  (void)net.controller().resync_switch(three.s2);

  const auto events = bus.events_since(0);
  ASSERT_GT(events.size(), 1u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].time, events[i - 1].time) << "event " << i;
    EXPECT_GE(events[i].wall, events[i - 1].wall) << "event " << i;
  }
}

// Hand-driven MonitorLoop on the paper's three-tier example: eviction is
// detected incrementally and the verdict matches a fresh fabric check;
// resync repairs it; localization hands suspects to SCOUT.
TEST(StreamMonitor, MonitorLoopDetectsAndClearsEviction) {
  ThreeTierNetwork three = make_three_tier();
  SimNetwork net{std::move(three.fabric), std::move(three.policy)};
  net.deploy();
  net.clock().advance(3'600'000);
  stream::EventBus bus;
  net.attach_event_bus(&bus);
  runtime::SerialExecutor executor;
  stream::MonitorLoop monitor{net, bus, executor};
  monitor.prime();
  const ScoutSystem system;

  // Clean fabric: empty verdict, nothing drained.
  stream::MonitorVerdict verdict = monitor.drain();
  EXPECT_EQ(verdict.events, 0u);
  EXPECT_TRUE(verdict.check.inconsistent.empty());

  // Evict every rule S2 holds (a full-object-grade wipe, so SCOUT's
  // stage-1 hit-ratio-1 cover has something to pick); the monitor must
  // flag exactly what a fresh collection-based check would.
  const std::size_t evicted =
      net.agent(three.s2).evict_rules(64, net.clock().now());
  ASSERT_GT(evicted, 0u);
  verdict = monitor.drain();
  EXPECT_EQ(verdict.events, evicted);
  EXPECT_FALSE(verdict.check.inconsistent.empty());
  EXPECT_TRUE(fabric_check_identical(verdict.check, system.check_all(net)));

  // Suspect handoff to the existing localizer.
  const LocalizationResult loc = monitor.localize(verdict.check);
  EXPECT_FALSE(loc.hypothesis.empty());

  // Resync repairs the switch; the monitor converges back to clean.
  (void)net.controller().resync_switch(three.s2);
  verdict = monitor.drain();
  EXPECT_TRUE(verdict.check.inconsistent.empty());
  EXPECT_TRUE(fabric_check_identical(verdict.check, system.check_all(net)));
}

// An out-of-shape delta (a non-catch-all deny installed into the TCAM)
// must fall back to a full T rebuild — and still be verdict-exact.
TEST(StreamMonitor, UnsafeDeltaFallsBackToRebuildExactly) {
  ThreeTierNetwork three = make_three_tier();
  SimNetwork net{std::move(three.fabric), std::move(three.policy)};
  net.deploy();
  net.clock().advance(3'600'000);
  stream::EventBus bus;
  net.attach_event_bus(&bus);
  runtime::SerialExecutor executor;
  stream::MonitorLoop monitor{net, bus, executor};
  monitor.prime();

  // A high-precedence deny covering web->app traffic on S2: installed
  // through the agent so the TCAM and the event stream agree.
  LogicalRule deny;
  deny.rule = net.agent(three.s2).tcam().rules()[0];  // clone a real match
  deny.rule.priority = 0;
  deny.rule.action = RuleAction::kDeny;
  deny.prov.sw = three.s2;
  ASSERT_EQ(net.agent(three.s2).apply(
                Instruction{InstructionOp::kAddRule, deny},
                net.clock().now()),
            ApplyStatus::kApplied);

  const stream::MonitorVerdict verdict = monitor.drain();
  const ScoutSystem system;
  EXPECT_TRUE(fabric_check_identical(verdict.check, system.check_all(net)));
  EXPECT_FALSE(verdict.check.inconsistent.empty());  // deny shadows an allow
  EXPECT_GE(monitor.checker_stats().unsafe_rebuilds, 1u);

  // Churn on the unsafe switch keeps rebuilding — and keeps matching.
  ASSERT_GT(net.agent(three.s2).evict_rules(1, net.clock().now()), 0u);
  const stream::MonitorVerdict after = monitor.drain();
  EXPECT_TRUE(fabric_check_identical(after.check, system.check_all(net)));
}

}  // namespace
}  // namespace scout
