#include "src/common/sim_clock.h"

#include <gtest/gtest.h>

#include <sstream>

namespace scout {
namespace {

TEST(SimTime, DefaultIsZero) { EXPECT_EQ(SimTime{}.millis(), 0); }

TEST(SimTime, ArithmeticAndOrdering) {
  const SimTime t{100};
  EXPECT_EQ((t + 50).millis(), 150);
  EXPECT_EQ(SimTime{150} - t, 50);
  EXPECT_LT(t, SimTime{101});
  EXPECT_EQ(t, SimTime{100});
}

TEST(SimTime, Streams) {
  std::ostringstream os;
  os << SimTime{42};
  EXPECT_EQ(os.str(), "42ms");
}

TEST(SimClock, AdvanceAccumulates) {
  SimClock clock;
  clock.advance(10);
  clock.advance(5);
  EXPECT_EQ(clock.now().millis(), 15);
}

TEST(SimClock, TickReturnsPostAdvanceTime) {
  SimClock clock;
  EXPECT_EQ(clock.tick().millis(), 1);
  EXPECT_EQ(clock.tick(9).millis(), 10);
  EXPECT_EQ(clock.now().millis(), 10);
}

TEST(SimClock, TicksAreStrictlyIncreasing) {
  SimClock clock;
  SimTime prev = clock.now();
  for (int i = 0; i < 100; ++i) {
    const SimTime t = clock.tick();
    EXPECT_LT(prev, t);
    prev = t;
  }
}

}  // namespace
}  // namespace scout
