#include "src/tcam/range_expansion.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace scout {
namespace {

TEST(RangeExpansion, SinglePortIsOneExactCube) {
  const auto cubes = expand_port_range(80, 80, 16);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].value, 80u);
  EXPECT_EQ(cubes[0].mask, 0xFFFFu);
}

TEST(RangeExpansion, FullRangeIsOneWildcard) {
  const auto cubes = expand_port_range(0, 0xFFFF, 16);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].mask, 0u);
  EXPECT_EQ(cubes[0].value, 0u);
}

TEST(RangeExpansion, AlignedBlockIsOnePrefix) {
  // [256, 511] = prefix 0b0000000１... value 256 mask 0xFF00.
  const auto cubes = expand_port_range(256, 511, 16);
  ASSERT_EQ(cubes.size(), 1u);
  EXPECT_EQ(cubes[0].value, 256u);
  EXPECT_EQ(cubes[0].mask, 0xFF00u);
}

TEST(RangeExpansion, WorstCaseHitsKnownBound) {
  // [1, 2^16 - 2] is the classic worst case: 2w - 2 = 30 cubes.
  const auto cubes = expand_port_range(1, 65534, 16);
  EXPECT_EQ(cubes.size(), 30u);
  EXPECT_TRUE(cubes_cover_exactly(cubes, 1, 65534, 16));
}

TEST(RangeExpansion, RejectsBadInput) {
  EXPECT_THROW((void)expand_port_range(10, 5, 16), std::invalid_argument);
  EXPECT_THROW((void)expand_port_range(0, 1 << 12, 12),
               std::invalid_argument);
  EXPECT_THROW((void)expand_port_range(0, 1, 0), std::invalid_argument);
}

TEST(RangeExpansion, ExactCoverSmallExamples) {
  EXPECT_TRUE(cubes_cover_exactly(expand_port_range(3, 9, 8), 3, 9, 8));
  EXPECT_TRUE(cubes_cover_exactly(expand_port_range(0, 6, 8), 0, 6, 8));
  EXPECT_TRUE(cubes_cover_exactly(expand_port_range(100, 200, 8), 100, 200, 8));
  EXPECT_TRUE(cubes_cover_exactly(expand_port_range(0, 255, 8), 0, 255, 8));
}

TEST(RangeExpansion, CubesAreSortedAndDisjoint) {
  const auto cubes = expand_port_range(17, 200, 8);
  for (std::size_t i = 1; i < cubes.size(); ++i) {
    EXPECT_LT(cubes[i - 1].value, cubes[i].value);
  }
}

// Property sweep: every interval over an 8-bit field expands to a cover
// that is exact (each value in [lo,hi] covered exactly once, none outside)
// and within the 2w-2 bound.
class RangeExpansionProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangeExpansionProperty, RandomIntervalsAreExactCovers) {
  Rng rng{GetParam()};
  for (int trial = 0; trial < 200; ++trial) {
    const auto lo = static_cast<std::uint32_t>(rng.below(256));
    const auto hi =
        static_cast<std::uint32_t>(lo + rng.below(256 - lo));
    const auto cubes = expand_port_range(lo, hi, 8);
    EXPECT_TRUE(cubes_cover_exactly(cubes, lo, hi, 8))
        << "interval [" << lo << ", " << hi << "]";
    EXPECT_LE(cubes.size(), 2u * 8u - 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RangeExpansionProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// Exhaustive check on a 6-bit field: all (lo, hi) intervals.
TEST(RangeExpansion, ExhaustiveSixBitField) {
  for (std::uint32_t lo = 0; lo < 64; ++lo) {
    for (std::uint32_t hi = lo; hi < 64; ++hi) {
      const auto cubes = expand_port_range(lo, hi, 6);
      ASSERT_TRUE(cubes_cover_exactly(cubes, lo, hi, 6))
          << "interval [" << lo << ", " << hi << "]";
      ASSERT_LE(cubes.size(), 2u * 6u - 2u);
    }
  }
}

}  // namespace
}  // namespace scout
