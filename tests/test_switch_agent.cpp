#include "src/agent/switch_agent.h"

#include <gtest/gtest.h>

#include "src/controller/compiler.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

Instruction add_rule(const LogicalRule& lr) {
  return Instruction{InstructionOp::kAddRule, lr};
}

Instruction remove_rule(const LogicalRule& lr) {
  return Instruction{InstructionOp::kRemoveRule, lr};
}

struct AgentFixture : ::testing::Test {
  AgentFixture()
      : net(make_three_tier()),
        compiled(PolicyCompiler::compile(net.policy)),
        agent(net.fabric.info(net.s2), 16) {}

  ThreeTierNetwork net;
  CompiledPolicy compiled;
  SwitchAgent agent;
};

TEST_F(AgentFixture, AddRuleInstallsInTcamAndLogicalView) {
  const auto& rules = compiled.rules_for(net.s2);
  for (const LogicalRule& lr : rules) {
    EXPECT_EQ(agent.apply(add_rule(lr), SimTime{1}), ApplyStatus::kApplied);
  }
  EXPECT_EQ(agent.tcam().size(), rules.size());
  EXPECT_EQ(agent.logical_view().size(), rules.size());
}

TEST_F(AgentFixture, RemoveRuleDeletesFromBoth) {
  const auto& rules = compiled.rules_for(net.s2);
  for (const LogicalRule& lr : rules) {
    (void)agent.apply(add_rule(lr), SimTime{1});
  }
  (void)agent.apply(remove_rule(rules.front()), SimTime{2});
  EXPECT_EQ(agent.tcam().size(), rules.size() - 1);
  EXPECT_EQ(agent.logical_view().size(), rules.size() - 1);
}

TEST_F(AgentFixture, UnresponsiveAgentLosesInstructions) {
  agent.set_responsive(false);
  const auto& rules = compiled.rules_for(net.s2);
  EXPECT_EQ(agent.apply(add_rule(rules[0]), SimTime{1}), ApplyStatus::kLost);
  EXPECT_EQ(agent.tcam().size(), 0u);
  EXPECT_EQ(agent.logical_view().size(), 0u);

  agent.set_responsive(true);
  EXPECT_EQ(agent.apply(add_rule(rules[0]), SimTime{2}),
            ApplyStatus::kApplied);
}

TEST_F(AgentFixture, CrashAfterCountdownRaisesFaultLog) {
  agent.crash_after(2);
  const auto& rules = compiled.rules_for(net.s2);
  EXPECT_EQ(agent.apply(add_rule(rules[0]), SimTime{1}),
            ApplyStatus::kApplied);
  EXPECT_EQ(agent.apply(add_rule(rules[1]), SimTime{2}),
            ApplyStatus::kApplied);
  EXPECT_EQ(agent.apply(add_rule(rules[2]), SimTime{3}),
            ApplyStatus::kCrashed);
  EXPECT_TRUE(agent.crashed());
  ASSERT_EQ(agent.fault_log().size(), 1u);
  EXPECT_EQ(agent.fault_log().records()[0].code, FaultCode::kAgentCrash);
  EXPECT_FALSE(agent.fault_log().records()[0].cleared.has_value());
  // TCAM holds only the pre-crash rules.
  EXPECT_EQ(agent.tcam().size(), 2u);
}

TEST_F(AgentFixture, RecoverClearsCrashRecord) {
  agent.crash_after(0);
  (void)agent.apply(add_rule(compiled.rules_for(net.s2)[0]), SimTime{1});
  ASSERT_TRUE(agent.crashed());
  agent.recover(SimTime{10});
  EXPECT_FALSE(agent.crashed());
  EXPECT_EQ(agent.fault_log().records()[0].cleared, SimTime{10});
  EXPECT_EQ(agent.apply(add_rule(compiled.rules_for(net.s2)[0]), SimTime{11}),
            ApplyStatus::kApplied);
}

TEST_F(AgentFixture, TcamOverflowLogsAndRejects) {
  SwitchAgent tiny{net.fabric.info(net.s2), 3};
  const auto& rules = compiled.rules_for(net.s2);
  ASSERT_GT(rules.size(), 4u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(tiny.apply(add_rule(rules[i]), SimTime{1}),
              ApplyStatus::kApplied);
  }
  EXPECT_EQ(tiny.apply(add_rule(rules[3]), SimTime{2}),
            ApplyStatus::kTcamOverflow);
  EXPECT_EQ(tiny.tcam().size(), 3u);
  // Logical view got the rule (agent accepted it); TCAM did not — that is
  // the §II-B state mismatch.
  EXPECT_EQ(tiny.logical_view().size(), 4u);
  ASSERT_EQ(tiny.fault_log().size(), 1u);
  EXPECT_EQ(tiny.fault_log().records()[0].code, FaultCode::kTcamOverflow);
}

TEST_F(AgentFixture, VrfRewriteBugCorruptsHardwareOnly) {
  agent.set_vrf_rewrite_bug(999);
  const LogicalRule& lr = compiled.rules_for(net.s2)[0];
  (void)agent.apply(add_rule(lr), SimTime{1});
  // Logical view keeps the correct rule; TCAM has the wrong VRF.
  EXPECT_EQ(agent.logical_view()[0].rule.vrf.value, lr.rule.vrf.value);
  EXPECT_EQ(agent.tcam().rules()[0].vrf.value, 999u);
}

TEST_F(AgentFixture, EvictionRemovesRulesAndLogs) {
  const auto& rules = compiled.rules_for(net.s2);
  for (const LogicalRule& lr : rules) {
    (void)agent.apply(add_rule(lr), SimTime{1});
  }
  const std::size_t evicted = agent.evict_rules(2, SimTime{5});
  EXPECT_EQ(evicted, 2u);
  EXPECT_EQ(agent.tcam().size(), rules.size() - 2);
  // Logical view unchanged: the controller is unaware (§II-B).
  EXPECT_EQ(agent.logical_view().size(), rules.size());
  ASSERT_EQ(agent.fault_log().size(), 1u);
  EXPECT_EQ(agent.fault_log().records()[0].code, FaultCode::kRuleEviction);
}

TEST_F(AgentFixture, CorruptionDetectionIsProbabilistic) {
  const auto& rules = compiled.rules_for(net.s2);
  for (const LogicalRule& lr : rules) {
    (void)agent.apply(add_rule(lr), SimTime{1});
  }
  Rng rng{5};
  // Silent corruption: never logged.
  EXPECT_TRUE(agent.corrupt_tcam_bit(rng, SimTime{2}, 0.0).has_value());
  EXPECT_EQ(agent.fault_log().size(), 0u);
  // Always-detected corruption: logged as parity error.
  EXPECT_TRUE(agent.corrupt_tcam_bit(rng, SimTime{3}, 1.0).has_value());
  ASSERT_EQ(agent.fault_log().size(), 1u);
  EXPECT_EQ(agent.fault_log().records()[0].code,
            FaultCode::kTcamParityError);
}

TEST_F(AgentFixture, CollectTcamReturnsCopy) {
  const auto& rules = compiled.rules_for(net.s2);
  (void)agent.apply(add_rule(rules[0]), SimTime{1});
  auto collected = agent.collect_tcam();
  ASSERT_EQ(collected.size(), 1u);
  collected.clear();
  EXPECT_EQ(agent.tcam().size(), 1u);
}

TEST(FaultLog, ActiveAtRespectsClearTime) {
  FaultLog log;
  const std::size_t idx = log.raise(SimTime{10}, SwitchId{1},
                                    FaultCode::kTcamOverflow,
                                    FaultSeverity::kCritical, "full");
  EXPECT_FALSE(log.records()[idx].active_at(SimTime{9}));
  EXPECT_TRUE(log.records()[idx].active_at(SimTime{10}));
  EXPECT_TRUE(log.records()[idx].active_at(SimTime{1000}));
  log.clear(idx, SimTime{50});
  EXPECT_TRUE(log.records()[idx].active_at(SimTime{50}));
  EXPECT_FALSE(log.records()[idx].active_at(SimTime{51}));
}

TEST(FaultLog, MergeCombinesRecords) {
  FaultLog a, b;
  (void)a.raise(SimTime{1}, SwitchId{1}, FaultCode::kAgentCrash,
                FaultSeverity::kCritical, "x");
  (void)b.raise(SimTime{2}, SwitchId{2}, FaultCode::kTcamOverflow,
                FaultSeverity::kWarning, "y");
  a.merge_from(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(FaultLog, ActiveAtFilters) {
  FaultLog log;
  (void)log.raise(SimTime{1}, SwitchId{1}, FaultCode::kAgentCrash,
                  FaultSeverity::kCritical, "x");
  const std::size_t second =
      log.raise(SimTime{5}, SwitchId{2}, FaultCode::kTcamOverflow,
                FaultSeverity::kWarning, "y");
  log.clear(second, SimTime{6});
  EXPECT_EQ(log.active_at(SimTime{3}).size(), 1u);
  EXPECT_EQ(log.active_at(SimTime{5}).size(), 2u);
  EXPECT_EQ(log.active_at(SimTime{7}).size(), 1u);
}

}  // namespace
}  // namespace scout
