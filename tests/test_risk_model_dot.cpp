#include "src/riskmodel/risk_model_dot.h"

#include <gtest/gtest.h>

#include "src/controller/compiler.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

struct DotFixture : ::testing::Test {
  DotFixture() : net(make_three_tier()), index(net.policy) {}

  ThreeTierNetwork net;
  PolicyIndex index;
};

TEST_F(DotFixture, HealthyModelRendersAllNodes) {
  const RiskModel model = RiskModel::build_switch_model(index, net.s2);
  const std::string dot = risk_model_to_dot(model);
  EXPECT_NE(dot.find("digraph riskmodel"), std::string::npos);
  EXPECT_NE(dot.find("EPG pairs"), std::string::npos);
  EXPECT_NE(dot.find("shared risks"), std::string::npos);
  // 2 elements + 8 risks declared.
  EXPECT_NE(dot.find("e0 "), std::string::npos);
  EXPECT_NE(dot.find("e1 "), std::string::npos);
  EXPECT_NE(dot.find("r7 "), std::string::npos);
  // No failures: no red anywhere.
  EXPECT_EQ(dot.find("color=red"), std::string::npos);
  EXPECT_EQ(dot.find("fail"), std::string::npos);
}

TEST_F(DotFixture, FailedEdgesAreMarked) {
  RiskModel model = RiskModel::build_switch_model(index, net.s2);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  model.augment(std::vector<LogicalRule>{compiled.rules_for(net.s2).front()});
  const std::string dot = risk_model_to_dot(model);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
}

TEST_F(DotFixture, ControllerModelLabelsTriplets) {
  const RiskModel model = RiskModel::build_controller_model(index);
  const std::string dot = risk_model_to_dot(model);
  EXPECT_NE(dot.find("switch-EPG-pair triplets"), std::string::npos);
}

TEST_F(DotFixture, MaxElementsCapsOutputAndKeepsFailuresFirst) {
  RiskModel model = RiskModel::build_controller_model(index);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  // Fail an S3 rule so one specific element is an observation.
  model.augment(std::vector<LogicalRule>{compiled.rules_for(net.s3).front()});

  DotOptions opts;
  opts.max_elements = 1;
  const std::string dot = risk_model_to_dot(model, opts);
  // Exactly one element box: the failed one, rendered red.
  EXPECT_NE(dot.find("shape=box,label=\"S2-EPGpair(1,2)\",color=red"),
            std::string::npos);
  EXPECT_EQ(dot.find("S0-"), std::string::npos);
}

TEST_F(DotFixture, BalancedBraces) {
  const RiskModel model = RiskModel::build_controller_model(index);
  const std::string dot = risk_model_to_dot(model);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));
}

}  // namespace
}  // namespace scout
