#include "src/common/json_writer.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(JsonWriter, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriter, EmptyArray) {
  JsonWriter w;
  w.begin_array().end_array();
  EXPECT_EQ(w.str(), "[]");
}

TEST(JsonWriter, FieldsAreCommaSeparated) {
  JsonWriter w;
  w.begin_object().field("a", 1).field("b", 2).end_object();
  EXPECT_EQ(w.str(), "{\"a\":1,\"b\":2}");
}

TEST(JsonWriter, ArrayElementsAreCommaSeparated) {
  JsonWriter w;
  w.begin_array().value(1).value(2).value(3).end_array();
  EXPECT_EQ(w.str(), "[1,2,3]");
}

TEST(JsonWriter, NestedStructures) {
  JsonWriter w;
  w.begin_object()
      .key("list")
      .begin_array()
      .begin_object()
      .field("x", 1)
      .end_object()
      .begin_object()
      .field("y", 2)
      .end_object()
      .end_array()
      .field("tail", true)
      .end_object();
  EXPECT_EQ(w.str(), "{\"list\":[{\"x\":1},{\"y\":2}],\"tail\":true}");
}

TEST(JsonWriter, StringEscaping) {
  JsonWriter w;
  w.begin_object().field("k", "a\"b\\c\nd\te").end_object();
  EXPECT_EQ(w.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriter, ControlCharactersUseUnicodeEscape) {
  EXPECT_EQ(JsonWriter::escape(std::string{'\x01'}), "\\u0001");
}

TEST(JsonWriter, NumericFormats) {
  JsonWriter w;
  w.begin_array()
      .value(0.5)
      .value(std::int64_t{-7})
      .value(std::uint64_t{18446744073709551615ULL})
      .value(false)
      .end_array();
  EXPECT_EQ(w.str(), "[0.5,-7,18446744073709551615,false]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array()
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .end_array();
  EXPECT_EQ(w.str(), "[null,null]");
}

TEST(JsonWriter, ExplicitNull) {
  JsonWriter w;
  w.begin_object().key("missing").null().end_object();
  EXPECT_EQ(w.str(), "{\"missing\":null}");
}

}  // namespace
}  // namespace scout
