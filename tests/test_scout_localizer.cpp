#include "src/localization/scout_localizer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/controller/compiler.h"
#include "src/localization/score.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

// Figure 5 fixture (same as test_greedy_cover) plus a change log in which
// F3 was recently modified.
struct Figure5WithLog {
  RiskModel model = RiskModel::empty(RiskModelKind::kSwitch);
  std::array<RiskModel::ElementIdx, 6> e{};
  ChangeLog log;
  SimTime now{10'000};

  Figure5WithLog() {
    for (std::uint32_t i = 0; i < 6; ++i) {
      e[i] = model.add_element(
          RiskElement{SwitchId{0}, EpgPair{EpgId{i}, EpgId{i + 1}}});
    }
    const auto c1 = model.add_risk(ObjectRef::of(ContractId{1}));
    const auto f1 = model.add_risk(ObjectRef::of(FilterId{1}));
    const auto f2 = model.add_risk(ObjectRef::of(FilterId{2}));
    const auto c2 = model.add_risk(ObjectRef::of(ContractId{2}));
    const auto c3 = model.add_risk(ObjectRef::of(ContractId{3}));
    const auto f3 = model.add_risk(ObjectRef::of(FilterId{3}));

    model.add_dependency(e[0], c1);
    model.add_dependency(e[1], f1);
    model.add_dependency(e[2], f1);
    for (int i = 1; i <= 4; ++i) model.add_dependency(e[i], f2);
    model.add_dependency(e[3], c2);
    model.add_dependency(e[4], c2);
    for (const auto elem : {e[0], e[4], e[5]}) {
      model.add_dependency(elem, c3);
      model.add_dependency(elem, f3);
    }

    for (int i = 1; i <= 2; ++i) model.mark_edge_failed(e[i], f1);
    for (int i = 1; i <= 4; ++i) model.mark_edge_failed(e[i], f2);
    for (int i = 3; i <= 4; ++i) model.mark_edge_failed(e[i], c2);
    model.mark_edge_failed(e[5], c3);
    model.mark_edge_failed(e[5], f3);

    // F3 modified 5 s ago (inside the 60 s window); C3 untouched; an
    // unrelated filter changed long ago.
    log.record(SimTime{100}, ObjectRef::of(FilterId{99}),
               ChangeAction::kModify);
    log.record(SimTime{9'995}, ObjectRef::of(FilterId{3}),
               ChangeAction::kModify);
  }
};

TEST(ScoutLocalizer, Figure5HypothesisIsF2AndF3) {
  const Figure5WithLog fig;
  const LocalizationResult result =
      ScoutLocalizer{}.localize(fig.model, fig.log, fig.now);
  // Exactly the paper's outcome: H = {F2, F3}.
  ASSERT_EQ(result.hypothesis.size(), 2u);
  EXPECT_EQ(result.hypothesis[0], ObjectRef::of(FilterId{2}));
  EXPECT_EQ(result.hypothesis[1], ObjectRef::of(FilterId{3}));
  EXPECT_EQ(result.stage2_objects, 1u);
  EXPECT_EQ(result.observations_total, 5u);
  EXPECT_EQ(result.observations_explained, 5u);
}

TEST(ScoutLocalizer, Stage2DisabledLeavesTailUnexplained) {
  const Figure5WithLog fig;
  ScoutLocalizer::Options opts;
  opts.enable_stage2 = false;
  const LocalizationResult result =
      ScoutLocalizer{opts}.localize(fig.model, fig.log, fig.now);
  EXPECT_EQ(result.hypothesis.size(), 1u);
  EXPECT_EQ(result.unexplained(), 1u);
  EXPECT_EQ(result.stage2_objects, 0u);
}

TEST(ScoutLocalizer, Stage2RespectsChangeWindow) {
  const Figure5WithLog fig;
  ScoutLocalizer::Options opts;
  opts.change_window_ms = 2;  // F3's change (5 ms ago) falls outside
  const LocalizationResult result =
      ScoutLocalizer{opts}.localize(fig.model, fig.log, fig.now);
  EXPECT_EQ(result.hypothesis.size(), 1u);
  EXPECT_EQ(result.unexplained(), 1u);
}

TEST(ScoutLocalizer, Stage2AddsAllRecentFailedEdgeObjects) {
  Figure5WithLog fig;
  // C3 also changed recently: both C3 and F3 become stage-2 picks.
  fig.log.record(SimTime{9'998}, ObjectRef::of(ContractId{3}),
                 ChangeAction::kModify);
  const LocalizationResult result =
      ScoutLocalizer{}.localize(fig.model, fig.log, fig.now);
  EXPECT_EQ(result.hypothesis.size(), 3u);
  EXPECT_EQ(result.stage2_objects, 2u);
}

TEST(ScoutLocalizer, Stage2DoesNotDuplicateStage1Objects) {
  Figure5WithLog fig;
  // F2 (already a stage-1 pick) also appears in the change log; it must
  // not be added twice.
  fig.log.record(SimTime{9'999}, ObjectRef::of(FilterId{2}),
                 ChangeAction::kModify);
  const LocalizationResult result =
      ScoutLocalizer{}.localize(fig.model, fig.log, fig.now);
  const auto count = std::count(result.hypothesis.begin(),
                                result.hypothesis.end(),
                                ObjectRef::of(FilterId{2}));
  EXPECT_EQ(count, 1);
}

TEST(ScoutLocalizer, SubsumesScore1Stage1) {
  // SCOUT's stage 1 is exactly SCORE with threshold 1: on a model where
  // everything is explained at threshold 1, the hypotheses agree.
  RiskModel model = RiskModel::empty(RiskModelKind::kSwitch);
  const auto r0 = model.add_risk(ObjectRef::of(FilterId{0}));
  const auto r1 = model.add_risk(ObjectRef::of(ContractId{1}));
  for (std::uint32_t i = 0; i < 5; ++i) {
    const auto e = model.add_element(
        RiskElement{SwitchId{0}, EpgPair{EpgId{i}, EpgId{i + 50}}});
    model.add_dependency(e, i < 3 ? r0 : r1);
    model.mark_edge_failed(e, i < 3 ? r0 : r1);
  }
  ChangeLog empty_log;
  const LocalizationResult scout_result =
      ScoutLocalizer{}.localize(model, empty_log, SimTime{0});
  const LocalizationResult score_result = ScoreLocalizer{1.0}.localize(model);
  EXPECT_EQ(scout_result.hypothesis, score_result.hypothesis);
}

// Paper Figure 4(a) + §III-C Occam's razor discussion, end to end: when
// the 1st TCAM rule (Web->App port 80) is missing from S2, "EPG:Web and
// Contract:Web-App would explain the problem best as they are solely used
// by the Web-App EPG pair", while VRF:101 and EPG:App are exonerated by
// the healthy App-DB pair.
TEST(ScoutLocalizer, Figure4aOccamsRazor) {
  const ThreeTierNetwork net = make_three_tier();
  const PolicyIndex index{net.policy};
  RiskModel model = RiskModel::build_switch_model(index, net.s2);

  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  const auto& rules = compiled.rules_for(net.s2);
  const auto first = std::find_if(
      rules.begin(), rules.end(), [&](const LogicalRule& lr) {
        return lr.prov.contract == net.web_app && !lr.prov.reversed;
      });
  ASSERT_NE(first, rules.end());
  model.augment(std::vector<LogicalRule>{*first});

  ChangeLog quiet_log;
  const LocalizationResult result =
      ScoutLocalizer{}.localize(model, quiet_log, SimTime{0});

  // Hypothesis: exactly the objects solely owned by the Web-App pair.
  // (The filter port80 is shared with App-DB, which is healthy, so its hit
  // ratio is 1/2 and it is correctly excluded.)
  std::vector<ObjectRef> expected{ObjectRef::of(net.web),
                                  ObjectRef::of(net.web_app)};
  std::vector<ObjectRef> actual = result.hypothesis;
  std::sort(actual.begin(), actual.end());
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(actual, expected);
  EXPECT_FALSE(result.contains(ObjectRef::of(net.vrf)));
  EXPECT_FALSE(result.contains(ObjectRef::of(net.app)));
  EXPECT_FALSE(result.contains(ObjectRef::of(net.port80)));
  EXPECT_EQ(result.unexplained(), 0u);
}

TEST(ScoutLocalizer, EmptyModelYieldsEmptyResult) {
  const RiskModel model = RiskModel::empty(RiskModelKind::kController);
  ChangeLog log;
  const LocalizationResult result =
      ScoutLocalizer{}.localize(model, log, SimTime{0});
  EXPECT_TRUE(result.hypothesis.empty());
  EXPECT_EQ(result.observations_total, 0u);
}

TEST(ScoutLocalizer, UnexplainedObservationWithoutRecentChangeStaysOpen) {
  // Partial fault, no change log entry at all: stage 2 cannot explain it.
  RiskModel model = RiskModel::empty(RiskModelKind::kSwitch);
  const auto r = model.add_risk(ObjectRef::of(FilterId{5}));
  for (std::uint32_t i = 0; i < 4; ++i) {
    const auto e = model.add_element(
        RiskElement{SwitchId{0}, EpgPair{EpgId{i}, EpgId{i + 10}}});
    model.add_dependency(e, r);
    if (i == 0) model.mark_edge_failed(e, r);
  }
  ChangeLog log;
  const LocalizationResult result =
      ScoutLocalizer{}.localize(model, log, SimTime{1000});
  EXPECT_TRUE(result.hypothesis.empty());
  EXPECT_EQ(result.unexplained(), 1u);
}

}  // namespace
}  // namespace scout
