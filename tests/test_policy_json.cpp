#include "src/policy/policy_json.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/workload/policy_generator.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

TEST(PolicyJson, ThreeTierContainsAllSections) {
  const ThreeTierNetwork net = make_three_tier();
  const std::string json = policy_to_json(net.policy);
  for (const char* section : {"\"tenants\":", "\"vrfs\":", "\"epgs\":",
                              "\"endpoints\":", "\"filters\":",
                              "\"contracts\":", "\"links\":"}) {
    EXPECT_NE(json.find(section), std::string::npos) << section;
  }
  EXPECT_NE(json.find("\"name\":\"Web\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"VRF:101\""), std::string::npos);
  EXPECT_NE(json.find("tcp/700/allow"), std::string::npos);
}

TEST(PolicyJson, BalancedDelimiters) {
  Rng rng{5};
  const GeneratedNetwork net =
      generate_network(GeneratorProfile::testbed(), rng);
  const std::string json = policy_to_json(net.policy);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(PolicyJson, DumpIsDeterministic) {
  Rng a{7}, b{7};
  const GeneratedNetwork na =
      generate_network(GeneratorProfile::testbed(), a);
  const GeneratedNetwork nb =
      generate_network(GeneratorProfile::testbed(), b);
  EXPECT_EQ(policy_to_json(na.policy), policy_to_json(nb.policy));
}

TEST(PolicyJson, LinkCountMatchesPolicy) {
  const ThreeTierNetwork net = make_three_tier();
  const std::string json = policy_to_json(net.policy);
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"consumer\"");
       pos != std::string::npos;
       pos = json.find("\"consumer\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, net.policy.links().size());
}

}  // namespace
}  // namespace scout
