#include "src/topology/fabric.h"

#include <gtest/gtest.h>

namespace scout {
namespace {

TEST(Fabric, AddSwitchAssignsSequentialIds) {
  Fabric f;
  const SwitchId a = f.add_switch("a");
  const SwitchId b = f.add_switch("b");
  EXPECT_EQ(a.value(), 0u);
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(f.info(a).name, "a");
}

TEST(Fabric, LeafSpineFactory) {
  const Fabric f = Fabric::leaf_spine(4, 2, 1024);
  EXPECT_EQ(f.size(), 6u);
  EXPECT_EQ(f.leaves().size(), 4u);
  EXPECT_EQ(f.info(f.leaves()[0]).tcam_capacity, 1024u);
  EXPECT_EQ(f.info(SwitchId{4}).role, SwitchRole::kSpine);
}

TEST(Fabric, InfoThrowsOnUnknown) {
  const Fabric f = Fabric::leaf_spine(1, 0);
  EXPECT_THROW((void)f.info(SwitchId{5}), std::out_of_range);
  EXPECT_THROW((void)f.info(SwitchId{}), std::out_of_range);
}

TEST(ControlChannel, StartsConnected) {
  ControlChannel ch;
  EXPECT_TRUE(ch.connected(SwitchId{0}));
}

TEST(ControlChannel, DisconnectOpensOutage) {
  ControlChannel ch;
  ch.disconnect(SwitchId{1}, SimTime{10});
  EXPECT_FALSE(ch.connected(SwitchId{1}));
  EXPECT_TRUE(ch.connected(SwitchId{2}));
  ASSERT_EQ(ch.outages().size(), 1u);
  EXPECT_FALSE(ch.outages()[0].end.has_value());
}

TEST(ControlChannel, ReconnectClosesOutage) {
  ControlChannel ch;
  ch.disconnect(SwitchId{1}, SimTime{10});
  ch.reconnect(SwitchId{1}, SimTime{50});
  EXPECT_TRUE(ch.connected(SwitchId{1}));
  ASSERT_EQ(ch.outages().size(), 1u);
  EXPECT_EQ(ch.outages()[0].end, SimTime{50});
}

TEST(ControlChannel, DoubleDisconnectIsNoop) {
  ControlChannel ch;
  ch.disconnect(SwitchId{1}, SimTime{10});
  ch.disconnect(SwitchId{1}, SimTime{20});
  EXPECT_EQ(ch.outages().size(), 1u);
}

TEST(ControlChannel, ReconnectWithoutOutageIsNoop) {
  ControlChannel ch;
  ch.reconnect(SwitchId{1}, SimTime{10});
  EXPECT_TRUE(ch.outages().empty());
}

TEST(ControlChannel, WasDownAtCoversInterval) {
  ControlChannel ch;
  ch.disconnect(SwitchId{1}, SimTime{10});
  ch.reconnect(SwitchId{1}, SimTime{50});
  EXPECT_FALSE(ch.was_down_at(SwitchId{1}, SimTime{9}));
  EXPECT_TRUE(ch.was_down_at(SwitchId{1}, SimTime{10}));
  EXPECT_TRUE(ch.was_down_at(SwitchId{1}, SimTime{30}));
  EXPECT_TRUE(ch.was_down_at(SwitchId{1}, SimTime{50}));
  EXPECT_FALSE(ch.was_down_at(SwitchId{1}, SimTime{51}));
  EXPECT_FALSE(ch.was_down_at(SwitchId{2}, SimTime{30}));
}

TEST(ControlChannel, OpenOutageCoversForever) {
  ControlChannel ch;
  ch.disconnect(SwitchId{1}, SimTime{10});
  EXPECT_TRUE(ch.was_down_at(SwitchId{1}, SimTime{1'000'000}));
}

}  // namespace
}  // namespace scout
