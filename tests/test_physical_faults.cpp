#include "src/faults/physical_faults.h"

#include <gtest/gtest.h>

#include "src/scout/sim_network.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

// Small TCAM so the overflow scenario trips quickly.
struct ScenarioFixture : ::testing::Test {
  ScenarioFixture()
      : three(make_three_tier(/*tcam_capacity=*/24)),
        net(std::move(three.fabric), std::move(three.policy)) {
    net.deploy();
    net.clock().advance(1000);
  }

  ThreeTierNetwork three;
  SimNetwork net;
};

TEST_F(ScenarioFixture, TcamOverflowScenarioRaisesDeviceFault) {
  const ScenarioOutcome outcome =
      run_tcam_overflow_scenario(net.controller(), three.app_db,
                                 /*max_filters=*/100);
  EXPECT_GT(outcome.tcam_rejections, 0u);
  EXPECT_LT(outcome.filters_added.size(), 100u) << "stopped at overflow";

  bool overflow_logged = false;
  for (const auto& agent : net.agents()) {
    for (const FaultRecord& rec : agent->fault_log().records()) {
      if (rec.code == FaultCode::kTcamOverflow) overflow_logged = true;
    }
  }
  EXPECT_TRUE(overflow_logged);
}

TEST_F(ScenarioFixture, TcamOverflowLeavesStateMismatch) {
  (void)run_tcam_overflow_scenario(net.controller(), three.app_db, 100);
  // Some agent's logical view is now larger than its TCAM.
  bool mismatch = false;
  for (const auto& agent : net.agents()) {
    if (agent->logical_view().size() > agent->tcam().size()) mismatch = true;
  }
  EXPECT_TRUE(mismatch);
}

TEST_F(ScenarioFixture, UnresponsiveSwitchLosesItsRules) {
  const std::size_t s2_before = net.agent(three.s2).tcam().size();
  const ScenarioOutcome outcome = run_unresponsive_switch_scenario(
      net.controller(), three.s2, three.app_db, /*n_filters=*/3);
  EXPECT_EQ(outcome.instructions_lost, 6u);  // 2 rules x 3 filters on S2
  EXPECT_EQ(net.agent(three.s2).tcam().size(), s2_before);
  // S3 (also App-DB) received its rules.
  EXPECT_GT(net.agent(three.s3).tcam().size(), 0u);

  // Controller noticed the keepalive loss.
  bool unreachable = false;
  for (const FaultRecord& rec : net.controller().fault_log().records()) {
    if (rec.code == FaultCode::kSwitchUnreachable && rec.sw == three.s2) {
      unreachable = true;
    }
  }
  EXPECT_TRUE(unreachable);
}

TEST_F(ScenarioFixture, AgentCrashScenarioStopsMidBatch) {
  const ScenarioOutcome outcome = run_agent_crash_scenario(
      net.controller(), three.s3, three.app_db, /*n_filters=*/5,
      /*apply_before_crash=*/3);
  EXPECT_GT(outcome.instructions_lost, 0u);
  EXPECT_TRUE(net.agent(three.s3).crashed());
  bool crash_logged = false;
  for (const FaultRecord& rec : net.agent(three.s3).fault_log().records()) {
    if (rec.code == FaultCode::kAgentCrash) crash_logged = true;
  }
  EXPECT_TRUE(crash_logged);
}

// Pins the apply_before_crash == 0 contract: the countdown is checked at
// the top of apply() before it decrements, so a zero-countdown agent
// crashes before rendering its first instruction — the TCAM and logical
// view are untouched and every instruction in the batch counts as lost.
// The storm engine's rack-power episodes (src/faults/storm.cpp) build on
// exactly this "crash precedes the first apply" semantics.
TEST_F(ScenarioFixture, AgentCrashScenarioZeroAppliesNothing) {
  const std::size_t tcam_before = net.agent(three.s3).tcam().size();
  const std::size_t view_before = net.agent(three.s3).logical_view().size();
  const ScenarioOutcome outcome = run_agent_crash_scenario(
      net.controller(), three.s3, three.app_db, /*n_filters=*/5,
      /*apply_before_crash=*/0);
  EXPECT_TRUE(net.agent(three.s3).crashed());
  EXPECT_EQ(net.agent(three.s3).tcam().size(), tcam_before);
  EXPECT_EQ(net.agent(three.s3).logical_view().size(), view_before);
  EXPECT_EQ(outcome.instructions_lost, 10u);  // 2 rules x 5 filters on S3
  bool crash_logged = false;
  for (const FaultRecord& rec : net.agent(three.s3).fault_log().records()) {
    if (rec.code == FaultCode::kAgentCrash) crash_logged = true;
  }
  EXPECT_TRUE(crash_logged);
}

TEST_F(ScenarioFixture, CorruptionScenarioFlipsBits) {
  Rng rng{3};
  const std::size_t corrupted = run_tcam_corruption_scenario(
      net.controller(), three.s2, /*bits=*/3, rng,
      /*detection_probability=*/1.0);
  EXPECT_EQ(corrupted, 3u);
  EXPECT_EQ(net.agent(three.s2).fault_log().size(), 3u);
}

TEST_F(ScenarioFixture, CorruptionOnUnknownSwitchIsZero) {
  Rng rng{3};
  EXPECT_EQ(run_tcam_corruption_scenario(net.controller(), SwitchId{42}, 3,
                                         rng, 1.0),
            0u);
}

}  // namespace
}  // namespace scout
