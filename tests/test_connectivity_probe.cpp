#include "src/scout/connectivity_probe.h"

#include <gtest/gtest.h>

#include "src/faults/fault_injector.h"
#include "src/workload/policy_generator.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

struct ProbeFixture : ::testing::Test {
  ProbeFixture()
      : three(make_three_tier()),
        net(std::move(three.fabric), std::move(three.policy)) {
    net.deploy();
  }

  // EP1(Web)@S1=0, EP2(App)@S2=1, EP3(DB)@S3=2
  static constexpr EndpointId kWeb{0}, kApp{1}, kDb{2};

  ThreeTierNetwork three;
  SimNetwork net;
};

TEST_F(ProbeFixture, IntentMatchesFigureOne) {
  const NetworkPolicy& p = net.controller().policy();
  EXPECT_TRUE(intent_allows(p, kWeb, kApp, IpProtocol::kTcp, 80));
  EXPECT_TRUE(intent_allows(p, kApp, kWeb, IpProtocol::kTcp, 80));
  EXPECT_TRUE(intent_allows(p, kApp, kDb, IpProtocol::kTcp, 80));
  EXPECT_TRUE(intent_allows(p, kApp, kDb, IpProtocol::kTcp, 700));
  // Whitelist: everything else denied.
  EXPECT_FALSE(intent_allows(p, kWeb, kDb, IpProtocol::kTcp, 80));
  EXPECT_FALSE(intent_allows(p, kWeb, kApp, IpProtocol::kTcp, 443));
  EXPECT_FALSE(intent_allows(p, kWeb, kApp, IpProtocol::kUdp, 80));
}

TEST_F(ProbeFixture, DeployedProbeAgreesWithIntentWhenHealthy) {
  for (const auto& [src, dst, port] :
       {std::tuple{kWeb, kApp, std::uint16_t{80}},
        std::tuple{kApp, kDb, std::uint16_t{700}},
        std::tuple{kWeb, kDb, std::uint16_t{80}}}) {
    const bool intended = intent_allows(net.controller().policy(), src, dst,
                                        IpProtocol::kTcp, port);
    const ProbeResult probe =
        probe_flow(net, src, dst, IpProtocol::kTcp, port);
    EXPECT_EQ(probe.bidirectional(), intended);
  }
}

TEST_F(ProbeFixture, ProbeReportsEnforcementLeaves) {
  const ProbeResult probe = probe_flow(net, kWeb, kApp, IpProtocol::kTcp, 80);
  EXPECT_EQ(probe.forward_leaf, three.s1);
  EXPECT_EQ(probe.reverse_leaf, three.s2);
}

TEST_F(ProbeFixture, FaultBreaksProbeDirectionally) {
  // Remove App-DB port-700 rules only on S2 (App's leaf): the forward
  // direction (probed at S2) fails, the reverse (probed at S3) still works.
  Rng rng{1};
  ObjectFaultInjector injector{net.controller(), rng};
  (void)injector.inject_full(ObjectRef::of(three.port700), three.s2);

  const ProbeResult probe = probe_flow(net, kApp, kDb, IpProtocol::kTcp, 700);
  EXPECT_FALSE(probe.forward_allowed);
  EXPECT_TRUE(probe.reverse_allowed);
  EXPECT_FALSE(probe.bidirectional());
  // Port 80 between the same endpoints is untouched.
  EXPECT_TRUE(probe_flow(net, kApp, kDb, IpProtocol::kTcp, 80)
                  .bidirectional());
}

TEST_F(ProbeFixture, SweepIsCleanWhenHealthy) {
  const DivergenceSummary summary = probe_all_intents(net);
  EXPECT_GT(summary.flows_probed, 0u);
  EXPECT_EQ(summary.flows_diverging, 0u);
}

TEST_F(ProbeFixture, SweepCountsDivergingFlows) {
  Rng rng{2};
  ObjectFaultInjector injector{net.controller(), rng};
  (void)injector.inject_full(ObjectRef::of(three.port700));
  const DivergenceSummary summary = probe_all_intents(net);
  EXPECT_GT(summary.flows_diverging, 0u);
  EXPECT_LT(summary.flows_diverging, summary.flows_probed);
}

TEST_F(ProbeFixture, UnknownEndpointThrows) {
  EXPECT_THROW((void)probe_flow(net, EndpointId{99}, kApp, IpProtocol::kTcp,
                                80),
               std::out_of_range);
}

TEST(ProbeGenerated, HealthyGeneratedFabricHasNoDivergence) {
  for (const std::uint64_t seed : {31ULL, 32ULL}) {
    Rng rng{seed};
    GeneratedNetwork generated =
        generate_network(GeneratorProfile::testbed(), rng);
    SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
    net.deploy();
    const DivergenceSummary summary = probe_all_intents(net);
    EXPECT_GT(summary.flows_probed, 0u);
    EXPECT_EQ(summary.flows_diverging, 0u) << "seed " << seed;
  }
}

TEST(ProbeGenerated, EveryInjectedFullFaultIsVisibleToTheSweep) {
  Rng rng{33};
  GeneratedNetwork generated =
      generate_network(GeneratorProfile::testbed(), rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();

  ObjectFaultInjector injector{net.controller(), rng};
  const auto objs = injector.sample_objects(5);
  for (const ObjectRef obj : objs) {
    (void)injector.inject_full(obj);
  }
  const DivergenceSummary summary = probe_all_intents(net);
  EXPECT_GT(summary.flows_diverging, 0u);
}

}  // namespace
}  // namespace scout
