#include "src/workload/policy_generator.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "src/policy/policy_index.h"

namespace scout {
namespace {

TEST(PolicyGenerator, TestbedMatchesPaperCounts) {
  Rng rng{1};
  const GeneratorProfile profile = GeneratorProfile::testbed();
  const GeneratedNetwork net = generate_network(profile, rng);
  const auto counts = net.policy.counts();
  // §VI-A: 36 EPGs, 24 contracts, 9 filters, ~100 EPG pairs.
  EXPECT_GE(counts.epgs, 36u);  // fill EPGs may be added for tiny VRFs
  EXPECT_LE(counts.epgs, 40u);
  EXPECT_EQ(counts.contracts, 24u);
  EXPECT_EQ(counts.filters, 9u);
  const std::size_t pairs = net.policy.epg_pairs().size();
  EXPECT_GE(pairs, 90u);
  EXPECT_LE(pairs, 130u);
}

TEST(PolicyGenerator, GeneratedPolicyValidates) {
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    Rng rng{seed};
    const GeneratedNetwork net =
        generate_network(GeneratorProfile::testbed(), rng);
    EXPECT_TRUE(net.policy.validate().empty()) << "seed " << seed;
  }
}

TEST(PolicyGenerator, DeterministicForSameSeed) {
  Rng rng1{42}, rng2{42};
  const GeneratedNetwork a =
      generate_network(GeneratorProfile::testbed(), rng1);
  const GeneratedNetwork b =
      generate_network(GeneratorProfile::testbed(), rng2);
  EXPECT_EQ(a.policy.counts().links, b.policy.counts().links);
  EXPECT_EQ(a.policy.counts().endpoints, b.policy.counts().endpoints);
  // Spot-check structural identity of links.
  const auto la = a.policy.links();
  const auto lb = b.policy.links();
  ASSERT_EQ(la.size(), lb.size());
  for (std::size_t i = 0; i < la.size(); ++i) {
    EXPECT_EQ(la[i], lb[i]);
  }
}

TEST(PolicyGenerator, EveryContractAndFilterUsed) {
  Rng rng{5};
  const GeneratedNetwork net =
      generate_network(GeneratorProfile::testbed(), rng);

  std::unordered_set<ContractId> used_contracts;
  for (const ContractLink& l : net.policy.links()) {
    used_contracts.insert(l.contract);
  }
  EXPECT_EQ(used_contracts.size(), net.policy.contracts().size());

  std::unordered_set<FilterId> used_filters;
  for (const Contract& c : net.policy.contracts()) {
    for (const FilterId f : c.filters) used_filters.insert(f);
  }
  EXPECT_EQ(used_filters.size(), net.policy.filters().size());
}

TEST(PolicyGenerator, EveryEpgHasEndpoints) {
  Rng rng{6};
  const GeneratedNetwork net =
      generate_network(GeneratorProfile::testbed(), rng);
  for (const Epg& epg : net.policy.epgs()) {
    EXPECT_FALSE(epg.endpoints.empty()) << epg.name;
  }
}

TEST(PolicyGenerator, EndpointsAttachToLeavesOnly) {
  Rng rng{7};
  const GeneratedNetwork net =
      generate_network(GeneratorProfile::testbed(), rng);
  for (const Endpoint& ep : net.policy.endpoints()) {
    EXPECT_EQ(net.fabric.info(ep.attached_switch).role, SwitchRole::kLeaf);
  }
}

// Production profile reproduces the Figure 3 sharing shape: heavy-tailed
// object sharing. We check the qualitative orderings the paper reports.
TEST(PolicyGenerator, ProductionSharingShapeIsHeavyTailed) {
  Rng rng{2018};
  GeneratorProfile profile = GeneratorProfile::production();
  // Trimmed for test runtime; the shape survives.
  profile.target_pairs = 8000;
  profile.epgs = 400;
  const GeneratedNetwork net = generate_network(profile, rng);
  const PolicyIndex index{net.policy};

  // Pairs per contract and per filter: most small, some large.
  std::unordered_map<std::uint32_t, std::size_t> per_contract;
  for (const EpgPair& pair : index.pairs()) {
    for (const ContractId c : index.contracts_of(pair)) {
      ++per_contract[c.value()];
    }
  }
  std::size_t small = 0, large = 0;
  for (const auto& [c, n] : per_contract) {
    if (n < 10) ++small;
    if (n > 100) ++large;
  }
  // Paper: 80% of contracts serve < 10 pairs, but a head exists.
  EXPECT_GT(small, per_contract.size() / 2);
  EXPECT_GT(large, 0u);
  EXPECT_LT(large, per_contract.size() / 10);

  // EPG degree: the most-connected EPG far exceeds the median.
  std::unordered_map<std::uint32_t, std::size_t> epg_degree;
  for (const EpgPair& pair : index.pairs()) {
    ++epg_degree[pair.a.value()];
    ++epg_degree[pair.b.value()];
  }
  std::vector<std::size_t> degrees;
  for (const auto& [e, d] : epg_degree) degrees.push_back(d);
  std::sort(degrees.begin(), degrees.end());
  // Heavy tail: the top EPG has several times the median degree. (The
  // exact 10x of the full production CDF needs the full 30k-pair policy;
  // this test runs a trimmed one.)
  EXPECT_GT(degrees.back(), 5 * degrees[degrees.size() / 2]);
}

TEST(PolicyGenerator, ScaledProfileGrowsLinearly) {
  const GeneratorProfile p60 = GeneratorProfile::scaled(60);
  const GeneratorProfile p30 = GeneratorProfile::production();
  EXPECT_EQ(p60.switches, 60u);
  EXPECT_NEAR(static_cast<double>(p60.epgs),
              2.0 * static_cast<double>(p30.epgs), 2.0);
  EXPECT_NEAR(static_cast<double>(p60.target_pairs),
              2.0 * static_cast<double>(p30.target_pairs), 2.0);
}

TEST(PolicyGenerator, PairsRespectVrfBoundaries) {
  Rng rng{11};
  const GeneratedNetwork net =
      generate_network(GeneratorProfile::testbed(), rng);
  for (const ContractLink& l : net.policy.links()) {
    EXPECT_EQ(net.policy.epg(l.consumer).vrf, net.policy.epg(l.provider).vrf);
  }
}

}  // namespace
}  // namespace scout
