// The invariant layer: SCOUT_CHECK aborts with expression + message,
// SCOUT_DCHECK follows the build flag, and the runtime contracts that
// moved from comments into code this PR — the metrics quiescence gate and
// the serial-phase thread binding — fail loudly instead of racing.
#include <cstddef>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/mutex.h"
#include "src/runtime/campaign.h"
#include "src/stream/event_bus.h"
#include "src/telemetry/metrics.h"

namespace scout {
namespace {

TEST(Check, PassingCheckIsSilent) {
  SCOUT_CHECK(1 + 1 == 2);
  SCOUT_CHECK(true, "never printed " << 42);
  SCOUT_DCHECK(2 * 2 == 4, "nor this");
}

TEST(CheckDeathTest, FailingCheckAbortsWithExpressionAndMessage) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const int answer = 41;
  EXPECT_DEATH(SCOUT_CHECK(answer == 42, "got " << answer),
               "SCOUT_CHECK failed: answer == 42.*got 41");
}

TEST(CheckDeathTest, CheckWithoutMessageStillNamesExpression) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(SCOUT_CHECK(false), "SCOUT_CHECK failed: false");
}

#if SCOUT_ENABLE_DCHECKS
TEST(CheckDeathTest, DcheckAbortsWhenEnabled) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(SCOUT_DCHECK(false, "debug only"), "debug only");
}
#else
TEST(Check, DcheckCompiledOut) {
  SCOUT_DCHECK(false, "release build: never evaluated for effect");
}
#endif

TEST(Check, DisabledDcheckDoesNotEvaluateOperands) {
#if !SCOUT_ENABLE_DCHECKS
  // The disabled form must not run side effects...
  int evaluations = 0;
  SCOUT_DCHECK([&] { ++evaluations; return true; }());
  EXPECT_EQ(evaluations, 0);
#endif
  // ...but it must still odr-use its operands (no -Wunused warnings and no
  // breakage when a variable exists only for the DCHECK).
  const std::size_t only_checked = 3;
  SCOUT_DCHECK(only_checked < 4);
  SUCCEED();
}

// -- quiescence gate ---------------------------------------------------------

TEST(QuiescenceGateDeathTest, SnapshotInsideParallelRegionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        telemetry::MetricsRegistry registry{1};
        (void)registry.counter("gate.tasks");
        registry.begin_parallel_region();
        (void)registry.snapshot();  // mid-run merge: must die, not tear
      },
      "quiescence");
}

TEST(QuiescenceGateDeathTest, RegistrationInsideParallelRegionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        telemetry::MetricsRegistry registry{1};
        registry.begin_parallel_region();
        (void)registry.counter("gate.late");  // handles come before workers
      },
      "before the workers start");
}

TEST(QuiescenceGateDeathTest, SnapshotFromInsideExecutorRunAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // The executor wiring, not a hand-opened region: a task that tries to
  // snapshot while its own run() is in flight hits the gate the executor
  // opened through ExecutorMetrics::registry.
  EXPECT_DEATH(
      {
        telemetry::MetricsRegistry registry{1};
        runtime::SerialExecutor executor;
        runtime::ExecutorMetrics wiring;
        wiring.registry = &registry;
        executor.set_metrics(std::move(wiring));
        executor.run(1, [&registry](std::size_t, std::size_t) {
          (void)registry.snapshot();
        });
      },
      "quiescence");
}

TEST(QuiescenceGate, NestedRegionsBalance) {
  telemetry::MetricsRegistry registry{2};
  telemetry::Counter c = registry.counter("gate.nested");
  registry.begin_parallel_region();
  registry.begin_parallel_region();  // task fanning out its own executor
  c.inc(0);
  registry.end_parallel_region();
  EXPECT_TRUE(registry.in_parallel_region());
  registry.end_parallel_region();
  EXPECT_FALSE(registry.in_parallel_region());
  EXPECT_EQ(registry.snapshot().counter("gate.nested"), 1u);
}

// -- serial-phase thread binding ---------------------------------------------

#if SCOUT_ENABLE_DCHECKS
TEST(SerialCapabilityDeathTest, SecondThreadAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        stream::EventBus bus;
        (void)bus.publish({});  // binds the bus to this thread
        std::thread intruder{[&bus] { (void)bus.publish({}); }};
        intruder.join();
      },
      "EventBus");
}

TEST(SerialCapability, RebindMovesOwnership) {
  stream::EventBus bus;
  (void)bus.publish({});
  bus.rebind_serial_owner();  // hand the bus to another thread explicitly
  std::thread successor{[&bus] {
    (void)bus.publish({});
    EXPECT_EQ(bus.retained(), 2u);
  }};
  successor.join();
}
#endif

}  // namespace
}  // namespace scout
