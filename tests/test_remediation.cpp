// Tests for the operational loop around localization: undeploying filters,
// endpoint migration, switch resync, and stopgap remediation of missing
// rules (paper §III-C calls reinstalling "a stopgap, not a fundamental
// solution" — the tests pin both halves of that sentence).
#include <gtest/gtest.h>

#include "src/faults/fault_injector.h"
#include "src/scout/report_json.h"
#include "src/scout/scout_system.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

struct RemediationFixture : ::testing::Test {
  RemediationFixture()
      : three(make_three_tier()),
        net(std::move(three.fabric), std::move(three.policy)) {
    net.deploy();
    net.clock().advance(3'600'000);
  }

  ThreeTierNetwork three;
  SimNetwork net;
  ScoutSystem system;
};

TEST_F(RemediationFixture, ReinstallRestoresConsistency) {
  Rng rng{1};
  ObjectFaultInjector injector{net.controller(), rng};
  (void)injector.inject_full(ObjectRef::of(three.port700));

  const ScoutReport report = system.analyze_controller(net);
  ASSERT_EQ(report.missing_rules.size(), 4u);

  const std::size_t left = system.remediate(net, report);
  EXPECT_EQ(left, 0u);
  // And a fresh analysis is clean.
  const ScoutReport after = system.analyze_controller(net);
  EXPECT_TRUE(after.missing_rules.empty());
}

TEST_F(RemediationFixture, ReinstallIsAStopgapUnderPersistentFault) {
  // The physical fault persists: the switch stays unresponsive, so the
  // remediation pushes are lost and the rules stay missing.
  net.agent(three.s2).set_responsive(false);
  net.agent(three.s2).tcam().clear();

  const ScoutReport report = system.analyze_controller(net);
  ASSERT_FALSE(report.missing_rules.empty());

  const std::size_t left = system.remediate(net, report);
  EXPECT_EQ(left, report.missing_rules.size());
}

TEST_F(RemediationFixture, ReinstallDoesNotDuplicateRules) {
  Rng rng{2};
  ObjectFaultInjector injector{net.controller(), rng};
  (void)injector.inject_full(ObjectRef::of(three.port700));
  const ScoutReport report = system.analyze_controller(net);

  const std::size_t s2_expected =
      net.controller().compiled().rules_for(three.s2).size();
  (void)system.remediate(net, report);
  EXPECT_EQ(net.agent(three.s2).tcam().size(), s2_expected);
  // Remediating an already-clean network changes nothing.
  (void)system.remediate(net, report);
  EXPECT_EQ(net.agent(three.s2).tcam().size(), s2_expected);
}

TEST(RemediationDuplicates, ConvergesInOnePassWhenAllDuplicatesStripped) {
  // The compiler emits N identical-match rules (distinct priorities) when a
  // pair reaches one filter through several contracts. The injector strips
  // by match key, i.e. all N copies at once; remediation used to reinstall
  // a single copy per reported rule (each remove-then-add takes every
  // same-match copy with it), so the syntactic multiset diff kept
  // reporting the other N-1 missing forever. Reinstall now replays the
  // compiled copies per key: one pass converges in both checker modes.
  for (const CheckMode mode : {CheckMode::kSyntactic, CheckMode::kExactBdd}) {
    ThreeTierNetwork three = make_three_tier();
    const ContractId second =
        three.policy.add_contract("App-DB-bis", {three.port700});
    three.policy.link(three.app, three.db, second);
    SimNetwork net{std::move(three.fabric), std::move(three.policy)};
    net.deploy();
    net.clock().advance(3'600'000);

    // The port-700 match keys really are duplicated now (N=2 per key).
    std::size_t port700_rules = 0;
    for (const LogicalRule& lr :
         net.controller().compiled().rules_for(three.s2)) {
      if (lr.rule.dst_port.value == 700u) ++port700_rules;
    }
    ASSERT_EQ(port700_rules, 4u);  // 2 directions x 2 contracts

    Rng rng{1};
    ObjectFaultInjector injector{net.controller(), rng};
    const InjectedFault fault =
        injector.inject_full(ObjectRef::of(three.port700));
    ASSERT_GT(fault.rules_removed, 0u);

    const ScoutSystem system{
        ScoutSystem::Options{mode, ScoutLocalizer::Options{}}};
    const ScoutReport report = system.analyze_controller(net);
    ASSERT_FALSE(report.missing_rules.empty());

    const std::size_t left = system.remediate(net, report);
    EXPECT_EQ(left, 0u) << "mode " << static_cast<int>(mode);
    const ScoutReport after = system.analyze_controller(net);
    EXPECT_TRUE(after.missing_rules.empty())
        << "mode " << static_cast<int>(mode);
    EXPECT_EQ(after.extra_rule_count, 0u)  // no over-install either
        << "mode " << static_cast<int>(mode);
    EXPECT_EQ(net.agent(three.s2).tcam().size(),
              net.controller().compiled().rules_for(three.s2).size());
  }
}

TEST_F(RemediationFixture, ResyncRebuildsWipedSwitch) {
  net.agent(three.s2).tcam().clear();
  const DeployStats stats = net.controller().resync_switch(three.s2);
  EXPECT_GT(stats.applied, 0u);
  EXPECT_EQ(net.agent(three.s2).tcam().size(),
            net.controller().compiled().rules_for(three.s2).size());
  EXPECT_EQ(net.agent(three.s2).logical_view().size(),
            net.agent(three.s2).tcam().size());

  const ScoutReport report = system.analyze_controller(net);
  EXPECT_TRUE(report.missing_rules.empty());
}

TEST_F(RemediationFixture, ResyncUnknownSwitchIsNoop) {
  const DeployStats stats = net.controller().resync_switch(SwitchId{99});
  EXPECT_EQ(stats.total(), 0u);
}

TEST_F(RemediationFixture, UndeployFilterRemovesRulesEverywhere) {
  DeployStats stats;
  net.controller().undeploy_filter(three.app_db, three.port700, &stats);
  EXPECT_EQ(stats.applied, 4u);  // 2 rules on S2 + 2 on S3 removed

  for (const auto& agent : net.agents()) {
    for (const TcamRule& r : agent->tcam().rules()) {
      EXPECT_NE(r.dst_port.value, 700u);
    }
  }
  // Policy and compiled snapshot agree; the network is consistent.
  const ScoutReport report = system.analyze_controller(net);
  EXPECT_TRUE(report.missing_rules.empty());

  // The change log shows delete(filter) + modify(contract).
  const auto& records = net.controller().change_log().records();
  EXPECT_EQ(records[records.size() - 2].action, ChangeAction::kDelete);
  EXPECT_EQ(records.back().action, ChangeAction::kModify);
}

TEST_F(RemediationFixture, MigrateEndpointMovesRules) {
  // EP2 (App) moves from S2 to S1. Web-App and App-DB rules follow it.
  const EndpointId ep2{1};
  ASSERT_EQ(net.controller().policy().endpoint(ep2).attached_switch,
            three.s2);
  const DeployStats stats = net.controller().migrate_endpoint(ep2, three.s1);
  EXPECT_GT(stats.applied, 0u);

  // S2 hosts nothing anymore; S1 now carries both pairs' rules.
  EXPECT_EQ(net.controller().compiled().rules_for(three.s2).size(), 0u);
  EXPECT_EQ(net.agent(three.s2).tcam().size(), 0u);
  EXPECT_EQ(net.agent(three.s1).tcam().size(), 7u);  // Figure 2 ruleset

  const ScoutReport report = system.analyze_controller(net);
  EXPECT_TRUE(report.missing_rules.empty());
}

TEST_F(RemediationFixture, MigrationToUnresponsiveSwitchIsLocalized) {
  net.agent(three.s3).set_responsive(false);
  const EndpointId ep2{1};
  (void)net.controller().migrate_endpoint(ep2, three.s3);

  const ScoutReport report = system.analyze_controller(net);
  ASSERT_FALSE(report.missing_rules.empty());
  // Every missing rule is on the unresponsive switch.
  for (const LogicalRule& lr : report.missing_rules) {
    EXPECT_EQ(lr.prov.sw, three.s3);
  }
  bool unreachable = false;
  for (const RootCause& rc : report.root_causes) {
    if (rc.type == RootCauseType::kSwitchUnreachable) unreachable = true;
  }
  EXPECT_TRUE(unreachable);
}

TEST_F(RemediationFixture, ReportSerializesToJson) {
  Rng rng{3};
  ObjectFaultInjector injector{net.controller(), rng};
  (void)injector.inject_full(ObjectRef::of(three.port700));
  const ScoutReport report = system.analyze_controller(net);

  const std::string json = report_to_json(report);
  EXPECT_NE(json.find("\"missing_rule_count\":4"), std::string::npos);
  EXPECT_NE(json.find("\"Filter:1\""), std::string::npos);
  EXPECT_NE(json.find("\"hypothesis\":["), std::string::npos);
  EXPECT_NE(json.find("\"root_causes\":["), std::string::npos);
  // Balanced braces (crude well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(RemediationFixture, JsonCapsMissingRuleSample) {
  Rng rng{4};
  ObjectFaultInjector injector{net.controller(), rng};
  (void)injector.inject_full(ObjectRef::of(three.app));
  const ScoutReport report = system.analyze_controller(net);
  ASSERT_GT(report.missing_rules.size(), 2u);

  const std::string json = report_to_json(report, /*max_missing_rules=*/2);
  // The full count is still reported even though the sample is capped.
  std::ostringstream expect_count;
  expect_count << "\"missing_rule_count\":" << report.missing_rules.size();
  EXPECT_NE(json.find(expect_count.str()), std::string::npos);
}

}  // namespace
}  // namespace scout
