#include "src/stream/event_bus.h"

#include <gtest/gtest.h>

#include "src/policy/change_log.h"

namespace scout::stream {
namespace {

StreamEvent rule_event(StreamEventType type, std::uint32_t sw_id) {
  StreamEvent ev;
  ev.type = type;
  ev.sw = SwitchId{sw_id};
  return ev;
}

TEST(EventBus, AssignsDenseMonotoneSequenceNumbers) {
  EventBus bus;
  EXPECT_EQ(bus.cursor(), 0u);
  EXPECT_EQ(bus.publish(rule_event(StreamEventType::kRuleInstalled, 1)), 0u);
  EXPECT_EQ(bus.publish(rule_event(StreamEventType::kRulesRemoved, 2)), 1u);
  EXPECT_EQ(bus.publish(rule_event(StreamEventType::kRuleEvicted, 3)), 2u);
  EXPECT_EQ(bus.cursor(), 3u);
  const auto all = bus.events_since(0);
  ASSERT_EQ(all.size(), 3u);
  for (std::size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].seq, i);
  }
}

TEST(EventBus, EventsSinceReturnsSuffixFromCursor) {
  EventBus bus;
  for (std::uint32_t i = 0; i < 5; ++i) {
    (void)bus.publish(rule_event(StreamEventType::kRuleInstalled, i));
  }
  const auto tail = bus.events_since(3);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 3u);
  EXPECT_EQ(tail[1].sw, SwitchId{4});
  EXPECT_TRUE(bus.events_since(5).empty());
  // A cursor ahead of the stream is consumer corruption: loud, not empty.
  EXPECT_THROW((void)bus.events_since(99), std::out_of_range);
}

TEST(EventBus, CompactionPreservesSequenceIdentity) {
  EventBus bus;
  for (std::uint32_t i = 0; i < 6; ++i) {
    (void)bus.publish(rule_event(StreamEventType::kRuleInstalled, i));
  }
  bus.compact(4);
  EXPECT_EQ(bus.base(), 4u);
  EXPECT_EQ(bus.retained(), 2u);
  EXPECT_EQ(bus.cursor(), 6u);
  const auto tail = bus.events_since(4);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].seq, 4u);
  // New publishes keep counting past the compaction base.
  EXPECT_EQ(bus.publish(rule_event(StreamEventType::kRuleEvicted, 9)), 6u);
  // A cursor below the base is a hard error, not silent data loss.
  EXPECT_THROW((void)bus.events_since(2), std::out_of_range);
  // Compacting backwards or past the end is clamped / a no-op.
  bus.compact(1);
  EXPECT_EQ(bus.base(), 4u);
  bus.compact(99);
  EXPECT_EQ(bus.base(), bus.cursor());
  EXPECT_EQ(bus.retained(), 0u);
}

TEST(EventBus, StampsChangeLogMark) {
  EventBus bus;
  ChangeLog log;
  bus.bind_change_log(&log);
  (void)bus.publish(rule_event(StreamEventType::kRuleInstalled, 1));
  log.record(SimTime{1}, ObjectRef::of(FilterId{1}), ChangeAction::kAdd);
  log.record(SimTime{2}, ObjectRef::of(FilterId{2}), ChangeAction::kModify);
  (void)bus.publish(rule_event(StreamEventType::kRuleInstalled, 2));
  const auto events = bus.events_since(0);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].change_log_mark, 0u);
  EXPECT_EQ(events[1].change_log_mark, 2u);
  // Two cursors slice exactly the actions recorded between them.
  const auto between = log.records().subspan(
      events[0].change_log_mark,
      events[1].change_log_mark - events[0].change_log_mark);
  EXPECT_EQ(between.size(), 2u);
}

TEST(EventBus, ReadersStartAtTheCursorAndAdvanceMonotonically) {
  EventBus bus;
  (void)bus.publish(rule_event(StreamEventType::kRuleInstalled, 1));
  (void)bus.publish(rule_event(StreamEventType::kRuleInstalled, 2));
  const EventBus::ReaderId r = bus.register_reader();
  EXPECT_EQ(bus.reader_cursor(r), 2u);  // starts at the current cursor
  (void)bus.publish(rule_event(StreamEventType::kRuleInstalled, 3));
  bus.advance_reader(r, 3);
  EXPECT_EQ(bus.reader_cursor(r), 3u);
  EXPECT_EQ(bus.compaction_floor(), 3u);
}

// Regression for the latent single-cursor assumption: compact() used to
// trust the caller's cursor alone, so one shard's lagging consumer could
// have its unread events reclaimed out from under it. With sharded
// readers registered, the compaction boundary is the minimum reader
// cursor, whatever the caller asks for.
TEST(EventBus, CompactionNeverReclaimsPastALaggingShardReader) {
  EventBus bus;
  for (std::uint32_t i = 0; i < 8; ++i) {
    (void)bus.publish(rule_event(StreamEventType::kRuleInstalled, i));
  }
  const EventBus::ReaderId fast = bus.register_reader();
  const EventBus::ReaderId slow = bus.register_reader();
  // Both readers registered at cursor 8; new events arrive and only one
  // shard keeps up.
  for (std::uint32_t i = 8; i < 12; ++i) {
    (void)bus.publish(rule_event(StreamEventType::kRuleInstalled, i));
  }
  bus.advance_reader(fast, 12);
  bus.advance_reader(slow, 9);
  EXPECT_EQ(bus.compaction_floor(), 9u);

  // The driver asks for everything; the slow shard's unread events 9..11
  // must survive.
  bus.compact(12);
  EXPECT_EQ(bus.base(), 9u);
  const auto tail = bus.events_since(9);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail[0].seq, 9u);
  EXPECT_EQ(tail[0].sw, SwitchId{9});

  // Once the straggler catches up the same request reclaims the rest.
  bus.advance_reader(slow, 12);
  bus.compact(12);
  EXPECT_EQ(bus.base(), 12u);
  EXPECT_EQ(bus.retained(), 0u);
}

TEST(EventBus, ReaderCursorCannotRegressOrPassTheStream) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EventBus bus;
  (void)bus.publish(rule_event(StreamEventType::kRuleInstalled, 1));
  const EventBus::ReaderId r = bus.register_reader();
  bus.advance_reader(r, 1);
  EXPECT_DEATH(bus.advance_reader(r, 0), "cursor moved backwards");
  EXPECT_DEATH(bus.advance_reader(r, 5), "ahead of the stream");
}

TEST(EventBus, WallStampsAreMonotone) {
  EventBus bus;
  (void)bus.publish(rule_event(StreamEventType::kRuleInstalled, 1));
  (void)bus.publish(rule_event(StreamEventType::kRuleInstalled, 2));
  const auto events = bus.events_since(0);
  EXPECT_LE(events[0].wall, events[1].wall);
}

TEST(StreamEventType, Names) {
  EXPECT_EQ(to_string(StreamEventType::kRuleInstalled), "rule-installed");
  EXPECT_EQ(to_string(StreamEventType::kPolicyPushed), "policy-pushed");
  EXPECT_EQ(to_string(StreamEventType::kSwitchResynced), "switch-resynced");
}

}  // namespace
}  // namespace scout::stream
