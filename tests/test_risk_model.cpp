#include "src/riskmodel/risk_model.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/controller/compiler.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

struct RiskModelFixture : ::testing::Test {
  RiskModelFixture()
      : net(make_three_tier()), index(net.policy) {}

  ThreeTierNetwork net;
  PolicyIndex index;
};

TEST_F(RiskModelFixture, SwitchModelForS2MatchesFigure4a) {
  const RiskModel model = RiskModel::build_switch_model(index, net.s2);
  // Elements: Web-App and App-DB (both deployed on S2, which hosts App).
  EXPECT_EQ(model.element_count(), 2u);
  // Risks: VRF, Web, App, DB, 2 contracts, 2 filters.
  EXPECT_EQ(model.risk_count(), 8u);
  // Web-App depends on 5 objects; App-DB on 6.
  EXPECT_EQ(model.edge_count(), 11u);
  EXPECT_EQ(model.kind(), RiskModelKind::kSwitch);
}

TEST_F(RiskModelFixture, SwitchModelForEdgeSwitchHasOnePair) {
  const RiskModel model = RiskModel::build_switch_model(index, net.s1);
  EXPECT_EQ(model.element_count(), 1u);
  EXPECT_EQ(model.risk_count(), 5u);
}

TEST_F(RiskModelFixture, ControllerModelHasTripletElements) {
  const RiskModel model = RiskModel::build_controller_model(index);
  // Web-App deploys on {S1, S2}; App-DB on {S2, S3}: 4 triplets.
  EXPECT_EQ(model.element_count(), 4u);
  // 8 policy objects + 3 switch risks.
  EXPECT_EQ(model.risk_count(), 11u);
  // Policy edges (5+5+6+6) + one switch edge per element.
  EXPECT_EQ(model.edge_count(), 26u);
  EXPECT_EQ(model.kind(), RiskModelKind::kController);
}

TEST_F(RiskModelFixture, SharedObjectHasOneNodeAcrossSwitches) {
  const RiskModel model = RiskModel::build_controller_model(index);
  const auto r = model.risk_index(ObjectRef::of(net.vrf));
  // The VRF is shared by all 4 triplets.
  EXPECT_EQ(model.elements_of(r).size(), 4u);
}

TEST_F(RiskModelFixture, AugmentMarksEdgesOfMissingRuleProvenance) {
  RiskModel model = RiskModel::build_switch_model(index, net.s2);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  // Take the Web->App port-80 rule as missing (paper Figure 4(a) scenario).
  const auto& rules = compiled.rules_for(net.s2);
  const auto missing = std::find_if(
      rules.begin(), rules.end(), [&](const LogicalRule& lr) {
        return lr.prov.contract == net.web_app && !lr.prov.reversed;
      });
  ASSERT_NE(missing, rules.end());
  model.augment(std::vector<LogicalRule>{*missing});

  const auto signature = model.failure_signature();
  ASSERT_EQ(signature.size(), 1u);
  const auto failed_elem = signature[0];
  EXPECT_EQ(model.element(failed_elem).pair, (EpgPair{net.web, net.app}));

  // Exactly the 5 provenance objects have failed edges.
  EXPECT_EQ(model.failed_risks_of(failed_elem).size(), 5u);
  EXPECT_TRUE(model.edge_failed(
      failed_elem, model.risk_index(ObjectRef::of(net.web_app))));
  EXPECT_TRUE(model.edge_failed(
      failed_elem, model.risk_index(ObjectRef::of(net.port80))));
  EXPECT_FALSE(model.edge_failed(
      failed_elem, model.risk_index(ObjectRef::of(net.port700))));

  // The healthy App-DB pair has no failed edges.
  EXPECT_EQ(model.failure_signature().size(), 1u);
}

TEST_F(RiskModelFixture, AugmentInControllerModelAlsoMarksSwitchRisk) {
  RiskModel model = RiskModel::build_controller_model(index);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  const auto& rules = compiled.rules_for(net.s2);
  model.augment(std::vector<LogicalRule>{rules.front()});

  const auto signature = model.failure_signature();
  ASSERT_EQ(signature.size(), 1u);
  EXPECT_TRUE(model.edge_failed(
      signature[0], model.risk_index(ObjectRef::of(net.s2))));
}

TEST_F(RiskModelFixture, AugmentIgnoresRulesOutsideModelScope) {
  RiskModel model = RiskModel::build_switch_model(index, net.s1);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  // S3's rules belong to App-DB, which has no element in S1's model.
  model.augment(compiled.rules_for(net.s3));
  EXPECT_TRUE(model.failure_signature().empty());
}

TEST_F(RiskModelFixture, AugmentIgnoresDefaultDeny) {
  RiskModel model = RiskModel::build_switch_model(index, net.s2);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  std::vector<LogicalRule> just_deny{compiled.rules_for(net.s2).back()};
  ASSERT_EQ(just_deny[0].rule.action, RuleAction::kDeny);
  model.augment(just_deny);
  EXPECT_TRUE(model.failure_signature().empty());
}

TEST_F(RiskModelFixture, FailedDegreeCountsElementsNotEdges) {
  RiskModel model = RiskModel::build_switch_model(index, net.s2);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  const auto& rules = compiled.rules_for(net.s2);
  // Both directions of the same (pair, filter) rule: one failed element.
  std::vector<LogicalRule> missing;
  for (const LogicalRule& lr : rules) {
    if (lr.prov.contract == net.web_app) missing.push_back(lr);
  }
  ASSERT_EQ(missing.size(), 2u);
  model.augment(missing);
  const auto r = model.risk_index(ObjectRef::of(net.web_app));
  EXPECT_EQ(model.failed_degree(r), 1u);
}

TEST_F(RiskModelFixture, SuspectSetIsRisksAdjacentToFailures) {
  RiskModel model = RiskModel::build_switch_model(index, net.s2);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  model.augment(std::vector<LogicalRule>{compiled.rules_for(net.s2).front()});
  // All 5 objects of the Web-App pair are suspects (its full dependency
  // set), even though only some edges are marked failed... they all are
  // here since the rule's provenance covers the pair's objects.
  EXPECT_EQ(model.suspect_set().size(), 5u);
}

TEST_F(RiskModelFixture, ClearFailuresResets) {
  RiskModel model = RiskModel::build_switch_model(index, net.s2);
  const CompiledPolicy compiled = PolicyCompiler::compile(net.policy);
  model.augment(std::vector<LogicalRule>{compiled.rules_for(net.s2).front()});
  ASSERT_FALSE(model.failure_signature().empty());
  model.clear_failures();
  EXPECT_TRUE(model.failure_signature().empty());
  EXPECT_TRUE(model.suspect_set().empty());
  for (RiskModel::RiskIdx r = 0; r < model.risk_count(); ++r) {
    EXPECT_EQ(model.failed_degree(r), 0u);
  }
}

TEST_F(RiskModelFixture, UnknownLookupsThrow) {
  const RiskModel model = RiskModel::build_switch_model(index, net.s1);
  EXPECT_THROW((void)model.risk_index(ObjectRef::of(net.port700)),
               std::out_of_range);
  EXPECT_THROW((void)model.element_index(
                   RiskElement{net.s1, EpgPair{net.app, net.db}}),
               std::out_of_range);
  EXPECT_FALSE(model.has_risk(ObjectRef::of(net.port700)));
}

TEST(RiskModelCustom, HandBuiltGraphBehaves) {
  RiskModel model = RiskModel::empty(RiskModelKind::kSwitch);
  const auto e0 =
      model.add_element(RiskElement{SwitchId{0}, EpgPair{EpgId{0}, EpgId{1}}});
  const auto e1 =
      model.add_element(RiskElement{SwitchId{0}, EpgPair{EpgId{1}, EpgId{2}}});
  const auto r0 = model.add_risk(ObjectRef::of(FilterId{0}));
  const auto r1 = model.add_risk(ObjectRef::of(FilterId{1}));
  model.add_dependency(e0, r0);
  model.add_dependency(e1, r0);
  model.add_dependency(e1, r1);

  model.mark_edge_failed(e1, r1);
  EXPECT_TRUE(model.element_failed(e1));
  EXPECT_FALSE(model.element_failed(e0));
  EXPECT_EQ(model.failed_degree(r1), 1u);
  EXPECT_EQ(model.failed_degree(r0), 0u);

  // Marking a non-existent edge is a no-op.
  model.mark_edge_failed(e0, r1);
  EXPECT_FALSE(model.element_failed(e0));

  // Marking twice does not double count.
  model.mark_edge_failed(e1, r1);
  EXPECT_EQ(model.failed_degree(r1), 1u);
}

}  // namespace
}  // namespace scout
