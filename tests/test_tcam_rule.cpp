#include "src/tcam/tcam_rule.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/tcam/rule_key.h"

namespace scout {
namespace {

TEST(TernaryField, ExactMatchesOnlyValue) {
  const TernaryField f = TernaryField::exact(80, 16);
  EXPECT_TRUE(f.matches(80));
  EXPECT_FALSE(f.matches(81));
  EXPECT_FALSE(f.matches(0));
}

TEST(TernaryField, WildcardMatchesEverything) {
  const TernaryField f = TernaryField::wildcard();
  EXPECT_TRUE(f.matches(0));
  EXPECT_TRUE(f.matches(0xFFFF));
}

TEST(TernaryField, PrefixMaskMatchesBlock) {
  // value 0b1010_0000, mask 0b1111_0000: matches 0xA0-0xAF.
  const TernaryField f{0xA0, 0xF0};
  for (std::uint32_t v = 0xA0; v <= 0xAF; ++v) EXPECT_TRUE(f.matches(v));
  EXPECT_FALSE(f.matches(0x9F));
  EXPECT_FALSE(f.matches(0xB0));
}

TEST(TernaryField, ExactTruncatesToWidth) {
  const TernaryField f = TernaryField::exact(0xFFFF, 12);
  EXPECT_EQ(f.value, 0xFFFu);
  EXPECT_EQ(f.mask, 0xFFFu);
}

TEST(TcamRule, ExactAllowMatchesPacket) {
  const TcamRule r = TcamRule::exact_allow(
      1, 101, 10, 20, 6, TernaryField::exact(80, FieldWidths::kPort));
  const PacketHeader hit{101, 10, 20, 6, 80};
  EXPECT_TRUE(r.matches(hit));

  PacketHeader miss = hit;
  miss.dst_port = 81;
  EXPECT_FALSE(r.matches(miss));
  miss = hit;
  miss.src_epg = 11;
  EXPECT_FALSE(r.matches(miss));
  miss = hit;
  miss.vrf = 102;
  EXPECT_FALSE(r.matches(miss));
  miss = hit;
  miss.proto = 17;
  EXPECT_FALSE(r.matches(miss));
}

TEST(TcamRule, DefaultDenyMatchesEverything) {
  const TcamRule r = TcamRule::default_deny(100);
  EXPECT_TRUE(r.matches(PacketHeader{}));
  EXPECT_TRUE(r.matches(PacketHeader{4095, 65535, 65535, 255, 65535}));
  EXPECT_EQ(r.action, RuleAction::kDeny);
}

TEST(TcamRule, SameMatchIgnoresPriority) {
  TcamRule a = TcamRule::exact_allow(1, 1, 2, 3, 6,
                                     TernaryField::exact(80, 16));
  TcamRule b = a;
  b.priority = 99;
  EXPECT_TRUE(a.same_match(b));
  b.action = RuleAction::kDeny;
  EXPECT_FALSE(a.same_match(b));
}

TEST(TcamRule, Prints) {
  const TcamRule r = TcamRule::exact_allow(5, 101, 10, 20, 6,
                                           TernaryField::exact(80, 16));
  std::ostringstream os;
  os << r;
  EXPECT_NE(os.str().find("vrf=101"), std::string::npos);
  EXPECT_NE(os.str().find("allow"), std::string::npos);

  std::ostringstream os2;
  os2 << TcamRule::default_deny(1);
  EXPECT_NE(os2.str().find("vrf=*"), std::string::npos);
  EXPECT_NE(os2.str().find("deny"), std::string::npos);
}

TEST(RuleMatchKey, HashAndEqualityAgreeWithSameMatch) {
  const TcamRule a = TcamRule::exact_allow(1, 1, 2, 3, 6,
                                           TernaryField::exact(80, 16));
  TcamRule b = a;
  b.priority = 50;
  EXPECT_EQ(RuleMatchKey::of(a), RuleMatchKey::of(b));
  EXPECT_EQ(RuleMatchKeyHash{}(RuleMatchKey::of(a)),
            RuleMatchKeyHash{}(RuleMatchKey::of(b)));

  TcamRule c = a;
  c.dst_port = TernaryField::exact(81, 16);
  EXPECT_NE(RuleMatchKey::of(a), RuleMatchKey::of(c));
}

TEST(FieldWidths, TotalIs68) {
  EXPECT_EQ(FieldWidths::kTotal, 68);
}

}  // namespace
}  // namespace scout
