#include "src/policy/policy_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/rng.h"
#include "src/workload/policy_generator.h"
#include "src/workload/three_tier.h"

namespace scout {
namespace {

TEST(PolicyIndex, ThreeTierPairs) {
  const ThreeTierNetwork net = make_three_tier();
  const PolicyIndex index{net.policy};
  EXPECT_EQ(index.pairs().size(), 2u);
}

TEST(PolicyIndex, AgreesWithDirectQueriesOnThreeTier) {
  const ThreeTierNetwork net = make_three_tier();
  const PolicyIndex index{net.policy};
  for (const EpgPair& pair : net.policy.epg_pairs()) {
    EXPECT_EQ(index.contracts_of(pair), net.policy.contracts_between(pair));
    EXPECT_EQ(index.objects_of(pair), net.policy.objects_for_pair(pair));
    EXPECT_EQ(index.switches_of(pair), net.policy.switches_for_pair(pair));
  }
}

TEST(PolicyIndex, PairsOnSwitchMatchesDirectQuery) {
  const ThreeTierNetwork net = make_three_tier();
  const PolicyIndex index{net.policy};
  for (const SwitchInfo& sw : net.fabric.switches()) {
    auto direct = net.policy.epg_pairs_on_switch(sw.id);
    auto indexed = index.pairs_on_switch(sw.id);
    std::sort(direct.begin(), direct.end());
    std::sort(indexed.begin(), indexed.end());
    EXPECT_EQ(indexed, direct);
  }
}

TEST(PolicyIndex, UnknownPairThrows) {
  const ThreeTierNetwork net = make_three_tier();
  const PolicyIndex index{net.policy};
  EXPECT_THROW((void)index.objects_of(EpgPair{net.web, net.db}),
               std::out_of_range);
}

// Property: on a generated policy, the index agrees with the (slow)
// NetworkPolicy queries for a sample of pairs.
TEST(PolicyIndex, AgreesWithDirectQueriesOnGeneratedPolicy) {
  Rng rng{2024};
  GeneratorProfile profile = GeneratorProfile::testbed();
  const GeneratedNetwork net = generate_network(profile, rng);
  const PolicyIndex index{net.policy};

  const auto pairs = net.policy.epg_pairs();
  ASSERT_FALSE(pairs.empty());
  EXPECT_EQ(index.pairs().size(), pairs.size());

  for (std::size_t i = 0; i < pairs.size(); i += 7) {
    const EpgPair& pair = pairs[i];
    auto direct_contracts = net.policy.contracts_between(pair);
    auto indexed_contracts = index.contracts_of(pair);
    std::sort(direct_contracts.begin(), direct_contracts.end());
    std::sort(indexed_contracts.begin(), indexed_contracts.end());
    EXPECT_EQ(indexed_contracts, direct_contracts);
    EXPECT_EQ(index.switches_of(pair), net.policy.switches_for_pair(pair));
  }
}

TEST(PolicyIndex, AllSwitchesCoversEveryPairSwitch) {
  Rng rng{2025};
  const GeneratedNetwork net =
      generate_network(GeneratorProfile::testbed(), rng);
  const PolicyIndex index{net.policy};
  const auto all = index.all_switches();
  const std::set<SwitchId> all_set(all.begin(), all.end());
  for (const EpgPair& pair : index.pairs()) {
    for (const SwitchId sw : index.switches_of(pair)) {
      EXPECT_TRUE(all_set.contains(sw));
    }
  }
}

}  // namespace
}  // namespace scout
