// Render the paper's Figure 4 risk models as Graphviz DOT.
//
//   ./build/examples/risk_model_viz > fig4.dot && dot -Tsvg fig4.dot -o fig4.svg
//
// Reproduces the exact scenario of the figure: the first Web->App port-80
// rule is missing from S2's TCAM, so the Web-App pair's edges are marked
// fail in both the S2 switch model and the controller model.
#include <iostream>

#include "src/riskmodel/risk_model_dot.h"
#include "src/scout/scout_system.h"
#include "src/workload/three_tier.h"

int main() {
  using namespace scout;

  ThreeTierNetwork three = make_three_tier();
  SimNetwork net{std::move(three.fabric), std::move(three.policy)};
  net.deploy();

  // Drop the Web->App port-80 rule from S2 only (Figure 4 caption).
  SwitchAgent& s2 = net.agent(three.s2);
  const auto web = static_cast<std::uint32_t>(three.web.value());
  (void)s2.tcam().remove_if([web](const TcamRule& r) {
    return r.action == RuleAction::kAllow && r.src_epg.value == web;
  });

  const ScoutSystem system;
  const std::vector<LogicalRule> missing = system.find_missing_rules(net);

  const PolicyIndex index{net.controller().policy()};
  RiskModel switch_model = RiskModel::build_switch_model(index, three.s2);
  switch_model.augment(missing);
  RiskModel controller_model = RiskModel::build_controller_model(index);
  controller_model.augment(missing);

  std::cout << "// Figure 4(a): switch risk model for S2\n"
            << risk_model_to_dot(switch_model)
            << "\n// Figure 4(b): controller risk model\n"
            << risk_model_to_dot(controller_model);
  return 0;
}
