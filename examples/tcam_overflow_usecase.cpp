// Paper §V-B use case 1 — TCAM overflow.
//
// "We mimic a dynamic change of the network policy by continuously adding
//  one new filter after another to the Contract:App-DB object. This would
//  eventually cause TCAM overflow."
//
// The run shows the full diagnosis chain: filters stop rendering in TCAM,
// the L-T checker reports missing rules, SCOUT localizes the late filters,
// and the correlation engine matches the device's TCAM_OVERFLOW fault log
// against its signature.
#include <iostream>

#include "src/faults/physical_faults.h"
#include "src/scout/scout_system.h"
#include "src/workload/three_tier.h"

int main() {
  using namespace scout;

  // Small ACL TCAM so the overflow point arrives quickly.
  ThreeTierNetwork three = make_three_tier(/*tcam_capacity=*/32);
  SimNetwork net{std::move(three.fabric), std::move(three.policy)};
  net.deploy();
  net.clock().advance(3'600'000);

  std::cout << "S2 TCAM: " << net.agent(three.s2).tcam().size() << '/'
            << net.agent(three.s2).tcam().capacity() << " entries\n";
  std::cout << "adding filters to Contract:App-DB until overflow...\n";

  const ScenarioOutcome outcome =
      run_tcam_overflow_scenario(net.controller(), three.app_db,
                                 /*max_filters=*/64);
  std::cout << "filters added: " << outcome.filters_added.size()
            << ", TCAM rejections: " << outcome.tcam_rejections << '\n';
  for (const auto& agent : net.agents()) {
    std::cout << "  " << agent->info().name << ": logical view "
              << agent->logical_view().size() << " rules, TCAM "
              << agent->tcam().size() << '/' << agent->tcam().capacity()
              << (agent->tcam().full() ? "  << FULL" : "") << '\n';
  }

  const ScoutSystem system;
  const ScoutReport report = system.analyze_controller(net);

  std::cout << "\nmissing rules: " << report.missing_rules.size()
            << ", hypothesis size: "
            << report.localization.hypothesis.size() << '\n';

  std::size_t tagged = 0;
  for (const RootCause& rc : report.root_causes) {
    if (rc.type == RootCauseType::kTcamOverflow) {
      ++tagged;
      if (tagged <= 3) {
        std::cout << "  " << rc.object << " <- " << to_string(rc.type)
                  << " on switch " << rc.sw.value_or(SwitchId{}) << '\n';
      }
    }
  }
  std::cout << tagged << " faulty objects tagged with the TCAM-overflow "
            << "signature (as in the paper's use case)\n";
  return tagged > 0 ? 0 : 1;
}
