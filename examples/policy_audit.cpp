// Paper §V-B use case 3 — "too many missing rules".
//
// "We pushed a policy with a large number of policy objects onto the
//  unresponsive switch... more than 300K missing rules were reported by the
//  equivalence checker. SCOUT narrowed it down and reported the
//  unresponsive switch as the root cause."
//
// This example deploys a production-shaped policy, silences the busiest
// leaf during deployment, and shows SCOUT compressing tens of thousands of
// missing rules into a one-object hypothesis: the switch itself.
#include <algorithm>
#include <iostream>

#include "src/scout/experiment.h"
#include "src/scout/scout_system.h"
#include "src/workload/policy_generator.h"

int main() {
  using namespace scout;

  GeneratorProfile profile = GeneratorProfile::production();
  profile.target_pairs = 12'000;  // keep the demo under a few seconds
  Rng rng{7};
  GeneratedNetwork generated = generate_network(profile, rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};

  const auto counts = net.controller().policy().counts();
  std::cout << "policy: " << counts.vrfs << " VRFs, " << counts.epgs
            << " EPGs, " << counts.contracts << " contracts, "
            << counts.filters << " filters, "
            << net.controller().policy().epg_pairs().size()
            << " EPG pairs\n";

  // Make the first leaf unresponsive *before* deployment: every one of its
  // instructions is lost while the rest of the fabric deploys normally.
  const SwitchId victim = net.agents().front()->id();
  net.agent(victim).set_responsive(false);
  const DeployStats stats = net.deploy();
  std::cout << "deploy: " << stats.applied << " applied, " << stats.lost
            << " instructions lost at switch " << victim << '\n';
  net.clock().advance(3'600'000);

  // Syntactic check mode: this demo diffs hundreds of thousands of rules.
  const ScoutSystem system{
      ScoutSystem::Options{CheckMode::kSyntactic, {}}};
  const ScoutReport report = system.analyze_controller(net);

  std::cout << "\nequivalence checker reported "
            << report.missing_rules.size() << " missing rules across "
            << report.switches_inconsistent << " inconsistent switch(es)\n";
  std::cout << "observations: " << report.observations
            << " (switch, EPG-pair) elements; suspect set "
            << report.suspect_set_size << " objects\n";

  std::cout << "hypothesis (" << report.localization.hypothesis.size()
            << " objects): ";
  for (const ObjectRef obj : report.localization.hypothesis) {
    std::cout << obj << ' ';
  }
  std::cout << '\n';

  const bool switch_blamed = report.localization.contains(
      ObjectRef::of(victim));
  for (const RootCause& rc : report.root_causes) {
    if (rc.object == ObjectRef::of(victim)) {
      std::cout << "root cause: " << to_string(rc.type) << " — "
                << rc.explanation << '\n';
    }
  }
  std::cout << "\nSCOUT compressed " << report.missing_rules.size()
            << " missing rules into "
            << report.localization.hypothesis.size()
            << " suspect object(s); unresponsive switch blamed: "
            << (switch_blamed ? "YES" : "NO") << '\n';
  return switch_blamed ? 0 : 1;
}
