// Quickstart: the paper's 3-tier web service (Figure 1) end to end.
//
//  1. Build the tenant policy (Web/App/DB, contracts, filters).
//  2. Deploy it through the controller to per-switch agents and TCAMs.
//  3. Break something: drop the "port 700/allow" filter's rules from TCAM.
//  4. Run the SCOUT pipeline: L-T equivalence check -> risk model ->
//     localization -> root-cause correlation.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "src/faults/fault_injector.h"
#include "src/scout/scout_system.h"
#include "src/workload/three_tier.h"

int main() {
  using namespace scout;

  // 1. Policy + fabric (Figure 1): EP1@S1 in Web, EP2@S2 in App, EP3@S3 in
  // DB; Web<->App on port 80, App<->DB on ports 80 and 700.
  ThreeTierNetwork three = make_three_tier();
  SimNetwork net{std::move(three.fabric), std::move(three.policy)};

  // 2. Deploy: compiles the policy into L-rules and pushes them to agents.
  const DeployStats stats = net.deploy();
  std::cout << "deployed " << stats.applied << " TCAM rules across "
            << net.agents().size() << " switches\n";
  for (const auto& agent : net.agents()) {
    std::cout << "  " << agent->info().name << ": " << agent->tcam().size()
              << " rules\n";
  }
  net.clock().advance(3'600'000);  // an hour of quiet operation

  // 3. Fault: every TCAM rule derived from Filter:port700 vanishes
  // (hardware corruption, lost instructions... the checker will tell us
  // *what* broke; the correlation engine *why*).
  Rng rng{2018};
  ObjectFaultInjector injector{net.controller(), rng};
  const InjectedFault fault =
      injector.inject_full(ObjectRef::of(three.port700));
  std::cout << "\ninjected fault on " << fault.object << ": "
            << fault.rules_removed << " rules removed from "
            << fault.switches.size() << " switches\n";

  // 4. SCOUT pipeline on the controller risk model.
  const ScoutSystem system;  // exact ROBDD equivalence checking
  const ScoutReport report = system.analyze_controller(net);

  std::cout << "\n--- SCOUT report ---\n";
  std::cout << "missing rules          : " << report.missing_rules.size()
            << '\n';
  std::cout << "observations (EPG pairs): " << report.observations << '\n';
  std::cout << "suspect set            : " << report.suspect_set_size
            << " objects\n";
  std::cout << "hypothesis             : ";
  for (const ObjectRef obj : report.localization.hypothesis) {
    std::cout << obj << ' ';
  }
  std::cout << "\nsuspect-set reduction  : " << report.gamma << '\n';
  for (const RootCause& rc : report.root_causes) {
    std::cout << "root cause for " << rc.object << ": "
              << to_string(rc.type) << " (" << rc.explanation << ")\n";
  }

  const bool localized =
      report.localization.contains(ObjectRef::of(three.port700));
  std::cout << "\nfaulty filter localized: " << (localized ? "YES" : "NO")
            << '\n';
  return localized ? 0 : 1;
}
