// scoutctl — drive the SCOUT pipeline against simulated failure scenarios
// and emit human-readable or JSON reports.
//
// Usage:
//   scoutctl [scenario] [--seed N] [--json] [--remediate]
//   scoutctl monitor [--seed N] [--events N] [--full] [--remediate]
//                    [--telemetry FILE] [--gray-rate R] [--storm PROFILE]
//                    [--evict-policy NAME] [--incidents FILE]
//                    [--flight-recorder FILE]
//   scoutctl stats [--seed N] [--events N] [--full] [--json]
//
// Scenarios:
//   object-fault   remove one filter's rules everywhere        (default)
//   overflow       TCAM overflow via continuous filter adds    (§V-B #1)
//   unresponsive   switch drops instructions mid-push          (§V-B #2)
//   corruption     random TCAM bit flips, half detected
//   eviction       local agent evicts rules silently
//   monitor        continuous verification: churn a fabric and verify the
//                  event stream incrementally (src/stream); --full flips
//                  to the re-check-everything baseline; --telemetry FILE
//                  writes a Chrome trace (with an embedded metrics
//                  snapshot) viewable in chrome://tracing or Perfetto;
//                  --gray-rate arms gray rendering faults on every agent,
//                  --storm fires correlated episodes (rack-power,
//                  rolling-upgrade, pod-brownout), --evict-policy swaps
//                  the TCAM eviction strategy (lowest-priority, fifo,
//                  random, lru-touch) — unknown names are rejected by the
//                  factories before the run starts; --incidents FILE turns
//                  on incident provenance (cause-stamped fault episodes
//                  correlated with failing verdicts) and writes the
//                  incident log as JSON; --flight-recorder FILE arms the
//                  in-memory flight recorder and writes its ring dump
//   stats          run the monitor scenario and dump the full telemetry
//                  snapshot (Prometheus text format, or JSON with --json);
//                  includes the health/SLO engine's health.* gauges
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "src/faults/fault_injector.h"
#include "src/faults/fault_policy.h"
#include "src/faults/physical_faults.h"
#include "src/faults/storm.h"
#include "src/scout/experiment.h"
#include "src/scout/report_json.h"
#include "src/scout/scout_system.h"
#include "src/telemetry/metrics.h"
#include "src/workload/three_tier.h"

namespace {

using namespace scout;

// Fault-engine knobs honored only by the monitor subcommand.
struct FaultFlags {
  double gray_rate = 0.0;
  std::string storm;
  std::string evict_policy;
  [[nodiscard]] bool any() const {
    return gray_rate > 0.0 || !storm.empty() || !evict_policy.empty();
  }
};

// Observability sinks honored only by the monitor subcommand.
struct ObsFlags {
  std::string incidents_path;
  std::string flight_path;
  [[nodiscard]] bool any() const {
    return !incidents_path.empty() || !flight_path.empty();
  }
};

int usage() {
  std::cerr << "usage: scoutctl [object-fault|overflow|unresponsive|"
               "corruption|eviction] [--seed N] [--json] [--remediate]\n"
               "       scoutctl monitor [--seed N] [--events N] [--full] "
               "[--remediate] [--telemetry FILE]\n"
               "                        [--gray-rate R] [--storm PROFILE] "
               "[--evict-policy NAME]\n"
               "                        [--incidents FILE] "
               "[--flight-recorder FILE]\n"
               "       scoutctl stats [--seed N] [--events N] [--full] "
               "[--json]\n";
  return 2;
}

MonitoringReport run_monitor_scenario(std::uint64_t seed, std::size_t events,
                                      bool full, bool remediate,
                                      bool want_trace,
                                      const FaultFlags& faults = {},
                                      const ObsFlags& obs = {},
                                      bool collect_health = false) {
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(16);
  options.profile.target_pairs = 16 * 60;
  options.events = events;
  options.seed = seed;
  options.incremental = !full;
  options.remediate_final = remediate;
  options.collect_trace = want_trace;
  if (want_trace) options.snapshot_every_batches = 8;
  options.gray_rate = faults.gray_rate;
  options.storm = faults.storm;
  options.evict_policy = faults.evict_policy;
  options.collect_incidents = !obs.incidents_path.empty();
  options.incident_log_path = obs.incidents_path;
  options.collect_flight = !obs.flight_path.empty();
  options.flight_dump_path = obs.flight_path;
  options.collect_health = collect_health;
  runtime::SerialExecutor executor;
  return run_continuous_monitoring(options, executor);
}

int run_monitor(std::uint64_t seed, std::size_t events, bool full,
                bool remediate, const std::string& telemetry_path,
                const FaultFlags& faults, const ObsFlags& obs) {
  const MonitoringReport report =
      run_monitor_scenario(seed, events, full, remediate,
                           !telemetry_path.empty(), faults, obs,
                           /*collect_health=*/obs.any());
  std::cout << "mode            : "
            << (full ? "full recheck" : "incremental") << '\n'
            << "events verified : " << report.events << " in "
            << report.batches << " batches (" << report.churn_ops
            << " churn ops)\n"
            << "throughput      : " << static_cast<long long>(
                   report.events_per_sec) << " events/s (drain time only)\n"
            << "detect latency  : p50 " << report.p50_latency_ms
            << " ms, p99 " << report.p99_latency_ms << " ms (wall); p50 "
            << report.sim_p50_latency_ms << " ms (sim)\n"
            << "batches flagged : " << report.inconsistent_batches << '\n'
            << "final verdict   : " << report.final_inconsistent
            << " inconsistent switch(es), " << report.final_missing
            << " missing rule(s), " << report.final_extra
            << " extra rule(s)\n";
  if (!full) {
    std::cout << "T updates       : " << report.checker.incremental_updates
              << " incremental, " << report.checker.full_rebuilds
              << " rebuilds (" << report.checker.epoch_rebuilds
              << " epoch + " << report.checker.threshold_trips
              << " threshold + " << report.checker.unsafe_rebuilds
              << " unsafe)\n";
  }
  if (faults.any()) {
    std::cout << "fault engine    : " << report.gray_misrenders
              << " gray misrender(s), " << report.gray_drops
              << " gray drop(s), " << report.storm_episodes
              << " storm episode(s), " << report.tcam_evictions
              << " TCAM eviction(s)";
    if (!faults.evict_policy.empty()) {
      std::cout << " [" << faults.evict_policy << "]";
    }
    std::cout << '\n';
  }
  if (report.final_inconsistent > 0) {
    std::cout << "localization    : hypothesis of " << report.hypothesis_size
              << " suspect object(s) handed to SCOUT\n";
  }
  if (!obs.incidents_path.empty()) {
    std::cout << "incidents       : " << report.incidents << " episode(s), "
              << report.incident_first_cause_correct
              << " first-cause correct (precision "
              << report.incident_precision << ", recall "
              << report.incident_recall << "); log written to "
              << obs.incidents_path << '\n';
  }
  if (!obs.flight_path.empty()) {
    std::cout << "flight recorder : " << report.flight_entries
              << " entries recorded; dump written to " << obs.flight_path
              << '\n';
  }
  if (obs.any()) {
    std::cout << "health          : status " << report.health_status
              << " (0=ok 1=warn 2=critical)\n";
  }
  if (remediate && report.final_missing > 0) {
    std::cout << "remediation     : " << report.final_missing
              << " rules reinstalled, " << report.final_still_missing
              << " still missing"
              << (report.final_still_missing > 0
                      ? " (physical fault persists)"
                      : "")
              << '\n';
  }
  if (!telemetry_path.empty()) {
    std::ofstream out{telemetry_path};
    if (!out) {
      std::cerr << "error: cannot write " << telemetry_path << '\n';
      return 1;
    }
    out << report.trace_json << '\n';
    std::cout << "telemetry       : trace + metrics written to "
              << telemetry_path << " (" << report.periodic_snapshot_count
              << " periodic snapshot(s) taken)\n";
  }
  return 0;
}

int run_stats(std::uint64_t seed, std::size_t events, bool full, bool json) {
  // Stats always runs with the health engine attached so the snapshot
  // carries the health.* grade gauges alongside the raw series.
  const MonitoringReport report = run_monitor_scenario(
      seed, events, full, /*remediate=*/false,
      /*want_trace=*/false, /*faults=*/{}, /*obs=*/{},
      /*collect_health=*/true);
  if (json) {
    std::cout << report.telemetry.to_json() << '\n';
  } else {
    std::cout << report.telemetry.to_prometheus();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scout;

  std::string scenario = "object-fault";
  std::string telemetry_path;
  std::uint64_t seed = 1;
  std::size_t events = 600;
  bool json = false;
  bool remediate = false;
  bool full = false;
  FaultFlags faults;
  ObsFlags obs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--remediate") {
      remediate = true;
    } else if (arg == "--full") {
      full = true;
    } else if (arg == "--seed" || arg == "--events" ||
               arg == "--telemetry" || arg == "--gray-rate" ||
               arg == "--storm" || arg == "--evict-policy" ||
               arg == "--incidents" || arg == "--flight-recorder") {
      // A following "--flag" is the next option, not a value; erroring
      // loudly beats strtoull silently reading it as 0 (the misparse
      // class bench::find_flag exists to prevent).
      if (++i >= argc || std::strncmp(argv[i], "--", 2) == 0) {
        return usage();
      }
      if (arg == "--seed") {
        seed = std::strtoull(argv[i], nullptr, 10);
      } else if (arg == "--events") {
        events = std::strtoull(argv[i], nullptr, 10);
      } else if (arg == "--gray-rate") {
        faults.gray_rate = std::strtod(argv[i], nullptr);
      } else if (arg == "--storm") {
        faults.storm = argv[i];
      } else if (arg == "--evict-policy") {
        faults.evict_policy = argv[i];
      } else if (arg == "--incidents") {
        obs.incidents_path = argv[i];
      } else if (arg == "--flight-recorder") {
        obs.flight_path = argv[i];
      } else {
        telemetry_path = argv[i];
      }
    } else if (!arg.empty() && arg[0] != '-') {
      scenario = arg;
    } else {
      return usage();
    }
  }

  // Resolve fault names through the factories up front so a typo dies at
  // configuration time with the factory's message, not mid-run.
  try {
    if (!faults.storm.empty()) (void)storm_profile(faults.storm);
    if (!faults.evict_policy.empty()) {
      (void)make_eviction_policy(faults.evict_policy);
    }
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 2;
  }

  if (scenario == "monitor") {
    // Loudly reject flags the monitor subcommand does not honor instead
    // of silently producing the wrong output format.
    if (json) return usage();
    return run_monitor(seed, events, full, remediate, telemetry_path,
                       faults, obs);
  }
  if (scenario == "stats") {
    if (remediate || !telemetry_path.empty() || faults.any() || obs.any()) {
      return usage();
    }
    return run_stats(seed, events, full, json);
  }
  if (!telemetry_path.empty() || faults.any() || obs.any()) return usage();

  ThreeTierNetwork three =
      make_three_tier(scenario == "overflow" ? 32 : 4096);
  SimNetwork net{std::move(three.fabric), std::move(three.policy)};
  net.deploy();
  net.clock().advance(3'600'000);

  Rng rng{seed};
  if (scenario == "object-fault") {
    ObjectFaultInjector injector{net.controller(), rng};
    (void)injector.inject_full(ObjectRef::of(three.port700));
  } else if (scenario == "overflow") {
    (void)run_tcam_overflow_scenario(net.controller(), three.app_db, 64);
  } else if (scenario == "unresponsive") {
    (void)run_unresponsive_switch_scenario(net.controller(), three.s2,
                                           three.app_db, 4);
  } else if (scenario == "corruption") {
    (void)run_tcam_corruption_scenario(net.controller(), three.s2, 3, rng,
                                       0.5);
  } else if (scenario == "eviction") {
    (void)net.agent(three.s2).evict_rules(2, net.clock().now());
  } else {
    return usage();
  }

  const ScoutSystem system;
  const ScoutReport report = system.analyze_controller(net);

  if (json) {
    std::cout << report_to_json(report) << '\n';
  } else {
    std::cout << "scenario        : " << scenario << '\n'
              << "missing rules   : " << report.missing_rules.size() << '\n'
              << "observations    : " << report.observations << '\n'
              << "suspect set     : " << report.suspect_set_size << '\n'
              << "gamma           : " << report.gamma << '\n'
              << "hypothesis      : ";
    for (const ObjectRef obj : report.localization.hypothesis) {
      std::cout << obj << ' ';
    }
    std::cout << '\n';
    for (const RootCause& rc : report.root_causes) {
      std::cout << "root cause      : " << rc.object << " <- "
                << to_string(rc.type) << '\n';
    }
  }

  if (remediate) {
    const std::size_t left = system.remediate(net, report);
    std::cout << "remediation     : " << report.missing_rules.size()
              << " rules reinstalled, " << left
              << " still missing"
              << (left > 0 ? " (physical fault persists)" : "") << '\n';
  }
  return 0;
}
