// Paper §V-B use case 2 — unresponsive switch.
//
// "The switch under test became unresponsive while the controller was
//  sending the 'add filter' instructions... the correlation engine was able
//  to detect that filters were created when the switch was inactive."
#include <iostream>

#include "src/faults/physical_faults.h"
#include "src/scout/scout_system.h"
#include "src/workload/three_tier.h"

int main() {
  using namespace scout;

  ThreeTierNetwork three = make_three_tier();
  SimNetwork net{std::move(three.fabric), std::move(three.policy)};
  net.deploy();
  net.clock().advance(3'600'000);

  std::cout << "silencing S2, then pushing 4 new filters through "
               "Contract:App-DB...\n";
  const ScenarioOutcome outcome = run_unresponsive_switch_scenario(
      net.controller(), three.s2, three.app_db, /*n_filters=*/4);
  std::cout << "instructions lost at S2: " << outcome.instructions_lost
            << '\n';

  // Controller-side fault log noticed the keepalive loss.
  for (const FaultRecord& rec : net.controller().fault_log().records()) {
    std::cout << "controller fault log: " << to_string(rec.code)
              << " switch=" << rec.sw << " at " << rec.raised << '\n';
  }

  const ScoutSystem system;
  const ScoutReport report = system.analyze_controller(net);
  std::cout << "\nmissing rules: " << report.missing_rules.size()
            << "\nhypothesis: ";
  for (const ObjectRef obj : report.localization.hypothesis) {
    std::cout << obj << ' ';
  }
  std::cout << '\n';

  std::size_t matched = 0;
  for (const RootCause& rc : report.root_causes) {
    if (rc.type == RootCauseType::kSwitchUnreachable) {
      ++matched;
      std::cout << rc.object << " <- filters were created while switch "
                << rc.sw.value_or(SwitchId{}) << " was inactive\n";
    }
  }
  std::cout << "\n" << matched
            << " faulty objects correlated to the unresponsive switch\n";
  return matched > 0 ? 0 : 1;
}
