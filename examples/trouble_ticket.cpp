// Trouble-ticket workflow: the operator story the paper opens with.
//
//   1. A ticket arrives: "App servers cannot reach the DB on port 700."
//   2. The operator probes the flow: deployed behaviour diverges from the
//      policy intent (the intent allows it; the fabric drops it).
//   3. SCOUT turns the symptom into a localized hypothesis + root cause.
//   4. Remediation reinstalls the missing rules; the probe goes green.
#include <iostream>

#include "src/faults/fault_injector.h"
#include "src/scout/connectivity_probe.h"
#include "src/scout/scout_system.h"
#include "src/workload/three_tier.h"

int main() {
  using namespace scout;

  ThreeTierNetwork three = make_three_tier();
  SimNetwork net{std::move(three.fabric), std::move(three.policy)};
  net.deploy();
  net.clock().advance(3'600'000);

  const EndpointId ep2{1};  // App server
  const EndpointId ep3{2};  // DB server

  // Background failure the operator doesn't know about yet.
  Rng rng{99};
  ObjectFaultInjector injector{net.controller(), rng};
  (void)injector.inject_full(ObjectRef::of(three.port700));

  // 1-2. Ticket + probe.
  std::cout << "ticket: 'App cannot reach DB on tcp/700'\n";
  const bool intended = intent_allows(net.controller().policy(), ep2, ep3,
                                      IpProtocol::kTcp, 700);
  const ProbeResult probe =
      probe_flow(net, ep2, ep3, IpProtocol::kTcp, 700);
  std::cout << "policy intent : " << (intended ? "ALLOW" : "DENY") << '\n'
            << "deployed state: "
            << (probe.bidirectional() ? "ALLOW" : "DENY")
            << " (fwd@" << probe.forward_leaf << '='
            << probe.forward_allowed << ", rev@" << probe.reverse_leaf
            << '=' << probe.reverse_allowed << ")\n";
  if (intended == probe.bidirectional()) {
    std::cout << "no divergence; nothing to localize\n";
    return 1;
  }

  const DivergenceSummary sweep = probe_all_intents(net);
  std::cout << "fabric sweep  : " << sweep.flows_diverging << '/'
            << sweep.flows_probed << " intended flows diverge\n";

  // 3. Localize + correlate.
  const ScoutSystem system;
  const ScoutReport report = system.analyze_controller(net);
  std::cout << "hypothesis    : ";
  for (const ObjectRef obj : report.localization.hypothesis) {
    std::cout << obj << ' ';
  }
  std::cout << "\nblast radius  : " << report.distinct_pairs_affected
            << " EPG pairs, " << report.endpoint_pairs_affected
            << " endpoint pairs\n";

  // 4. Remediate and re-probe.
  const std::size_t left = system.remediate(net, report);
  const ProbeResult after =
      probe_flow(net, ep2, ep3, IpProtocol::kTcp, 700);
  std::cout << "remediation   : " << report.missing_rules.size()
            << " rules reinstalled, " << left << " still missing\n"
            << "re-probe      : "
            << (after.bidirectional() ? "ALLOW — ticket resolved" : "DENY")
            << '\n';
  return after.bidirectional() ? 0 : 1;
}
