// Ablation A1 — SCOUT's stage-2 change-log heuristic on vs off.
//
// The paper claims the change-log stage is where SCOUT's recall advantage
// over SCORE-1 comes from ("Despite its simplicity, this heuristic makes
// huge improvement in accuracy", §IV-C). Turning it off must collapse
// SCOUT onto SCORE-1.
#include <cstdio>

#include "src/scout/experiment.h"

int main() {
  using namespace scout;

  AccuracyOptions opts;
  opts.profile = GeneratorProfile::production();
  opts.profile.target_pairs = 6'000;
  opts.model = RiskModelKind::kController;
  opts.runs = 15;
  opts.max_faults = 10;
  opts.benign_changes = 0;
  opts.seed = 45;

  const std::vector<AlgorithmSpec> algorithms{
      {"SCOUT", AlgorithmKind::kScout, 1.0, true},
      {"SCOUT-nostage2", AlgorithmKind::kScout, 1.0, false},
      {"SCORE-1", AlgorithmKind::kScore, 1.0, true},
  };

  std::printf("=== Ablation: SCOUT change-log stage on/off (%zu runs) "
              "===\n\n",
              opts.runs);
  const auto series = run_accuracy_sweep(opts, algorithms);

  std::printf("  %-7s %-32s %-32s\n", "", "recall", "precision");
  std::printf("  %-7s %-10s %-14s %-8s %-10s %-14s %-8s\n", "faults",
              "SCOUT", "no-stage2", "SCORE-1", "SCOUT", "no-stage2",
              "SCORE-1");
  for (std::size_t f = 0; f < opts.max_faults; ++f) {
    std::printf("  %-7zu %-10.3f %-14.3f %-8.3f %-10.3f %-14.3f %-8.3f\n",
                f + 1, series[0].by_faults[f].recall,
                series[1].by_faults[f].recall, series[2].by_faults[f].recall,
                series[0].by_faults[f].precision,
                series[1].by_faults[f].precision,
                series[2].by_faults[f].precision);
  }

  double gap = 0.0, collapse = 0.0;
  for (std::size_t f = 0; f < opts.max_faults; ++f) {
    gap += series[0].by_faults[f].recall - series[1].by_faults[f].recall;
    collapse +=
        series[1].by_faults[f].recall - series[2].by_faults[f].recall;
  }
  std::printf("\nmean recall contribution of stage 2: +%.3f; "
              "no-stage2 vs SCORE-1 gap: %+.3f (expected ~0: stage 1 IS "
              "SCORE-1)\n",
              gap / static_cast<double>(opts.max_faults),
              collapse / static_cast<double>(opts.max_faults));
  return 0;
}
