// §VI "Scalability" — SCOUT runtime on the controller risk model as the
// fabric grows from 10 to 500 leaf switches (the paper scales its
// production policy "by adding new EPG and switch pairs").
//
// Paper reference (1 kLOC Python prototype, 4-core 2.6 GHz): ~45 s at 200
// switches, ~130 s at 500. Absolute numbers differ for a native
// implementation; the reproduction target is the near-linear growth.
#include <cstdio>

#include "src/scout/experiment.h"

int main() {
  using namespace scout;

  std::printf("=== Scalability: controller risk model, full pipeline ===\n");
  std::printf("  %-9s %-10s %-10s %-10s %-10s %-9s %-9s %-9s\n", "switches",
              "pairs", "elements", "risks", "edges", "check(s)", "build(s)",
              "scout(s)");

  double t200 = 0.0, t500 = 0.0;
  for (const std::size_t switches : {10, 30, 50, 100, 200, 350, 500}) {
    const ScalePoint p =
        run_scalability_point(switches, /*seed=*/5, /*n_faults=*/5,
                              /*pairs_per_switch=*/200);
    std::printf("  %-9zu %-10zu %-10zu %-10zu %-10zu %-9.3f %-9.3f %-9.3f\n",
                p.switches, p.epg_pairs, p.elements, p.risks, p.edges,
                p.check_seconds, p.model_build_seconds, p.localize_seconds);
    const double total =
        p.check_seconds + p.model_build_seconds + p.localize_seconds;
    if (switches == 200) t200 = total;
    if (switches == 500) t500 = total;
  }

  std::printf("\nend-to-end analysis: %.2f s at 200 switches, %.2f s at 500 "
              "(paper's Python prototype: ~45 s / ~130 s; shape target is "
              "near-linear growth: x2.5 switches -> x%.1f time)\n",
              t200, t500, t500 / t200);
  return 0;
}
