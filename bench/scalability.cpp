// §VI "Scalability" — SCOUT runtime on the controller risk model as the
// fabric grows (the paper scales its production policy "by adding new EPG
// and switch pairs"), now fanned out as a campaign over the parallel
// experiment runtime.
//
// Default: a (switch-count x rep) grid of independently seeded full
// pipelines, run once per thread count. Without --threads the campaign is
// swept at 1, 2 and 4 workers so one invocation produces the full
// threads -> wall-ms mapping; --threads N measures just N. Results go to
// stdout plus BENCH_scalability.json (one row per thread count) so future
// PRs have a machine-readable perf trajectory to compare against.
//
// --paper reproduces the original single-rep deep sweep up to 500 leaves
// (paper reference, 1 kLOC Python prototype on 4 cores: ~45 s at 200
// switches, ~130 s at 500; the reproduction target is near-linear growth).
#include <chrono>
#include <cstdio>

#include "bench/bench_cli.h"
#include "src/runtime/result_sink.h"
#include "src/scout/experiment.h"

int main(int argc, char** argv) {
  using namespace scout;
  using Clock = std::chrono::steady_clock;

  const bool paper_mode = bench::bool_flag(argc, argv, "paper");

  ScaleCampaignOptions options;
  options.switch_counts = bench::list_flag(
      argc, argv, "sizes",
      paper_mode ? std::vector<std::size_t>{10, 30, 50, 100, 200, 350, 500}
                 : std::vector<std::size_t>{10, 30, 50, 100});
  // 4 reps per count: divisible by 1/2/4 workers, so the static round-robin
  // shard assignment stays balanced at the usual thread counts.
  options.reps = bench::size_flag(argc, argv, "reps", paper_mode ? 1 : 4,
                                  /*min=*/1, /*max=*/1000);
  options.seed = bench::size_flag(argc, argv, "seed", 5);

  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (bench::flag_value(argc, argv, "threads") != nullptr) {
    thread_counts = {bench::size_flag(argc, argv, "threads", 1,
                                      /*min=*/1, bench::kMaxBenchThreads)};
  }

  runtime::BenchRecorder recorder{"scalability"};
  std::vector<ScalePoint> points;  // structurally identical across sweeps

  for (const std::size_t threads : thread_counts) {
    const auto executor = runtime::make_executor(threads);
    const auto wall_start = Clock::now();
    points = run_scalability_campaign(options, *executor);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - wall_start)
            .count();
    std::printf("campaign wall clock: %8.0f ms over %zu tasks "
                "(%zu thread%s)\n",
                wall_ms, points.size(), executor->workers(),
                executor->workers() == 1 ? "" : "s");
    recorder.add_row({{"threads", static_cast<double>(executor->workers())},
                      {"wall_ms", wall_ms},
                      {"tasks", static_cast<double>(points.size())}});
  }

  std::printf("\n=== Scalability: controller risk model, full pipeline "
              "(%zu counts x %zu reps; per-task means from the last "
              "sweep) ===\n",
              options.switch_counts.size(), options.reps);
  std::printf("  %-9s %-10s %-10s %-10s %-10s %-9s %-9s %-9s\n", "switches",
              "pairs", "elements", "risks", "edges", "check(s)", "build(s)",
              "scout(s)");
  double t200 = 0.0, t500 = 0.0;
  for (std::size_t c = 0; c < options.switch_counts.size(); ++c) {
    // Mean over this count's reps (grid is count-major).
    ScalePoint mean{};
    for (std::size_t r = 0; r < options.reps; ++r) {
      const ScalePoint& p = points[c * options.reps + r];
      mean.switches = p.switches;
      mean.epg_pairs += p.epg_pairs;
      mean.elements += p.elements;
      mean.risks += p.risks;
      mean.edges += p.edges;
      mean.check_seconds += p.check_seconds;
      mean.model_build_seconds += p.model_build_seconds;
      mean.localize_seconds += p.localize_seconds;
    }
    const double reps = static_cast<double>(options.reps);
    mean.epg_pairs /= options.reps;
    mean.elements /= options.reps;
    mean.risks /= options.reps;
    mean.edges /= options.reps;
    mean.check_seconds /= reps;
    mean.model_build_seconds /= reps;
    mean.localize_seconds /= reps;

    std::printf("  %-9zu %-10zu %-10zu %-10zu %-10zu %-9.3f %-9.3f %-9.3f\n",
                mean.switches, mean.epg_pairs, mean.elements, mean.risks,
                mean.edges, mean.check_seconds, mean.model_build_seconds,
                mean.localize_seconds);
    const double total = mean.check_seconds + mean.model_build_seconds +
                         mean.localize_seconds;
    if (mean.switches == 200) t200 = total;
    if (mean.switches == 500) t500 = total;
  }

  if (t200 > 0.0 && t500 > 0.0) {
    std::printf("\nend-to-end analysis: %.2f s at 200 switches, %.2f s at "
                "500 (paper's Python prototype: ~45 s / ~130 s; shape "
                "target is near-linear growth: x2.5 switches -> x%.1f "
                "time)\n",
                t200, t500, t500 / t200);
  }

  const std::string json_path = bench::string_flag(
      argc, argv, "json", "BENCH_scalability.json");
  if (!recorder.write_file(json_path)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
