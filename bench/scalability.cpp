// §VI "Scalability" — SCOUT runtime on the controller risk model as the
// fabric grows (the paper scales its production policy "by adding new EPG
// and switch pairs"), now fanned out as a campaign over the parallel
// experiment runtime.
//
// Default: a (switch-count x rep) grid of full pipelines — one fabric per
// switch count, independently seeded fault injections per rep — run once
// per thread count. Workers cache the per-count fabric and exact-repair it
// between reps (--no-cache rebuilds every cell; results are identical).
// Without --threads the campaign is swept at 1, 2 and 4 workers so one
// invocation produces the full threads -> wall-ms mapping; --threads N
// measures just N. Results go to stdout plus BENCH_scalability.json (one
// row per thread count) so future PRs have a machine-readable perf
// trajectory to compare against.
//
// --paper reproduces the original single-rep deep sweep up to 500 leaves
// (paper reference, 1 kLOC Python prototype on 4 cores: ~45 s at 200
// switches, ~130 s at 500; the reproduction target is near-linear growth).
//
// --analysis flips to the single-fabric mode: one fabric (default 64
// switches, --sizes overrides with its first entry) is built and faulted
// once, then the *sharded* L-T check (ScoutSystem::check_all) is timed at
// each thread count over the same deployment — the intra-analysis speedup,
// as opposed to the campaign's across-cell speedup.
#include <cstdio>

#include "bench/bench_cli.h"
#include "src/runtime/result_sink.h"
#include "src/scout/experiment.h"

namespace {

// Single-fabric sharded-analysis mode (--analysis).
int run_analysis_mode(int argc, char** argv,
                      std::vector<std::size_t> thread_counts,
                      const std::string& json_path) {
  using namespace scout;

  AnalysisScalingOptions options;
  options.switches = bench::list_flag(argc, argv, "sizes",
                                      {options.switches})[0];
  options.n_faults = bench::size_flag(argc, argv, "faults", options.n_faults,
                                      /*min=*/0, /*max=*/100000);
  options.seed = bench::size_flag(argc, argv, "seed", options.seed);
  options.thread_counts = std::move(thread_counts);

  std::printf("=== Scalability (single-fabric analysis): sharded L-T check "
              "on %zu switches, %zu faults ===\n",
              options.switches, options.n_faults);
  const auto points = run_analysis_scaling(options);

  runtime::BenchRecorder recorder{"scalability_analysis"};
  std::printf("  %-8s %-12s %-9s %-14s %-7s\n", "threads", "check(ms)",
              "missing", "inconsistent", "extra");
  for (const auto& p : points) {
    std::printf("  %-8zu %-12.1f %-9zu %-14zu %-7zu\n", p.threads,
                p.check_seconds * 1e3, p.missing_rules,
                p.switches_inconsistent, p.extra_rules);
    recorder.add_row(
        {{"threads", static_cast<double>(p.threads)},
         {"check_ms", p.check_seconds * 1e3},
         {"missing_rules", static_cast<double>(p.missing_rules)},
         {"switches_inconsistent",
          static_cast<double>(p.switches_inconsistent)},
         {"extra_rules", static_cast<double>(p.extra_rules)}});
  }
  for (const auto& p : points) {
    if (p.missing_rules != points.front().missing_rules ||
        p.switches_inconsistent != points.front().switches_inconsistent ||
        p.extra_rules != points.front().extra_rules) {
      std::fprintf(stderr, "error: structural outputs diverged across "
                           "thread counts (determinism violation)\n");
      return 1;
    }
  }
  if (points.size() > 1) {
    std::printf("speedup vs serial at %zu threads: x%.2f\n",
                points.back().threads,
                points.front().check_seconds / points.back().check_seconds);
  }
  if (!recorder.write_file(json_path)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scout;

  const bool paper_mode = bench::bool_flag(argc, argv, "paper");

  // A present --threads always selects the single-count run, even when its
  // value is missing or malformed (size_flag then warns and falls back to
  // 1): "--threads" with no value means the user asked for *a* thread
  // count, not for the full 1/2/4 sweep.
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (bench::find_flag(argc, argv, "threads").present) {
    thread_counts = {bench::size_flag(argc, argv, "threads", 1,
                                      /*min=*/1, bench::kMaxBenchThreads)};
  }

  // Branch before the campaign options are parsed: analysis mode reads its
  // own flags, and parsing --sizes twice would double any warning.
  if (bench::bool_flag(argc, argv, "analysis")) {
    return run_analysis_mode(
        argc, argv, std::move(thread_counts),
        bench::string_flag(argc, argv, "json",
                           "BENCH_scalability_analysis.json"));
  }

  ScaleCampaignOptions options;
  options.switch_counts = bench::list_flag(
      argc, argv, "sizes",
      paper_mode ? std::vector<std::size_t>{10, 30, 50, 100, 200, 350, 500}
                 : std::vector<std::size_t>{10, 30, 50, 100});
  // 4 reps per count: divisible by 1/2/4 workers, so the static round-robin
  // shard assignment stays balanced at the usual thread counts.
  options.reps = bench::size_flag(argc, argv, "reps", paper_mode ? 1 : 4,
                                  /*min=*/1, /*max=*/1000);
  options.seed = bench::size_flag(argc, argv, "seed", 5);
  // Per-worker cached fabrics with exact repair between a count's reps;
  // --no-cache rebuilds every cell (results identical either way).
  options.cache_networks = !bench::bool_flag(argc, argv, "no-cache");

  runtime::BenchRecorder recorder{"scalability"};
  std::vector<ScalePoint> points;  // structurally identical across sweeps

  for (const std::size_t threads : thread_counts) {
    const auto executor = runtime::make_executor(threads);
    const bench::WallClock wall;
    SweepDiagnostics diag;
    points = run_scalability_campaign(options, *executor, &diag);
    const double wall_ms = wall.millis();
    std::printf("campaign wall clock: %8.0f ms over %zu tasks "
                "(%zu thread%s; setup %.0f ms: %zu builds, %zu repairs)\n",
                wall_ms, points.size(), executor->workers(),
                executor->workers() == 1 ? "" : "s",
                diag.setup_seconds * 1e3, diag.network_builds,
                diag.network_repairs);
    recorder.add_row({{"threads", static_cast<double>(executor->workers())},
                      {"wall_ms", wall_ms},
                      {"tasks", static_cast<double>(points.size())},
                      {"setup_ms", diag.setup_seconds * 1e3},
                      {"network_builds",
                       static_cast<double>(diag.network_builds)},
                      {"network_repairs",
                       static_cast<double>(diag.network_repairs)}});
  }

  std::printf("\n=== Scalability: controller risk model, full pipeline "
              "(%zu counts x %zu reps; per-task means from the last "
              "sweep) ===\n",
              options.switch_counts.size(), options.reps);
  std::printf("  %-9s %-10s %-10s %-10s %-10s %-9s %-9s %-9s\n", "switches",
              "pairs", "elements", "risks", "edges", "check(s)", "build(s)",
              "scout(s)");
  double t200 = 0.0, t500 = 0.0;
  for (std::size_t c = 0; c < options.switch_counts.size(); ++c) {
    // Mean over this count's reps (grid is count-major).
    ScalePoint mean{};
    for (std::size_t r = 0; r < options.reps; ++r) {
      const ScalePoint& p = points[c * options.reps + r];
      mean.switches = p.switches;
      mean.epg_pairs += p.epg_pairs;
      mean.elements += p.elements;
      mean.risks += p.risks;
      mean.edges += p.edges;
      mean.check_seconds += p.check_seconds;
      mean.model_build_seconds += p.model_build_seconds;
      mean.localize_seconds += p.localize_seconds;
    }
    const double reps = static_cast<double>(options.reps);
    mean.epg_pairs /= options.reps;
    mean.elements /= options.reps;
    mean.risks /= options.reps;
    mean.edges /= options.reps;
    mean.check_seconds /= reps;
    mean.model_build_seconds /= reps;
    mean.localize_seconds /= reps;

    std::printf("  %-9zu %-10zu %-10zu %-10zu %-10zu %-9.3f %-9.3f %-9.3f\n",
                mean.switches, mean.epg_pairs, mean.elements, mean.risks,
                mean.edges, mean.check_seconds, mean.model_build_seconds,
                mean.localize_seconds);
    const double total = mean.check_seconds + mean.model_build_seconds +
                         mean.localize_seconds;
    if (mean.switches == 200) t200 = total;
    if (mean.switches == 500) t500 = total;
  }

  if (t200 > 0.0 && t500 > 0.0) {
    std::printf("\nend-to-end analysis: %.2f s at 200 switches, %.2f s at "
                "500 (paper's Python prototype: ~45 s / ~130 s; shape "
                "target is near-linear growth: x2.5 switches -> x%.1f "
                "time)\n",
                t200, t500, t500 / t200);
  }

  const std::string json_path = bench::string_flag(
      argc, argv, "json", "BENCH_scalability.json");
  if (!recorder.write_file(json_path)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
