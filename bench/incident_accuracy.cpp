// Incident-attribution accuracy bench: drive the continuous monitor
// through single-fault-class legs — gray misrenders only, split storm
// episodes (rack-power, pod-brownout), evict-only churn — across many
// seeds and both transports, scoring every incident's cause chain against
// the CauseLedger ground truth.
//
// Self-verifying, exiting non-zero on any gate:
//  * precision == 1.0 on every (leg, seed, transport) run — an incident
//    never names a cause that did not actually mutate a violated switch
//    in its window (the A ⊆ T invariant, stream/incident.h);
//  * per-leg aggregate recall >= 0.9 — almost every ground-truth episode
//    behind a violation is attributed, the remainder being structurally
//    silent damage (drops, evicted ring slots);
//  * digest identity — per (leg, seed) the serial-transport leg and the
//    4-publisher phased-ring leg fold bit-identical verdict digests, and
//    (first seed per leg) a run with the incident layer detached folds
//    the same digest as one with it attached: attribution is observe-only.
//
// Writes BENCH_incidents.json: one row per (leg, seed) ring run with
// incident counts, first-cause hit rate, incident_precision and
// incident_recall (CI greps those keys). Flags: --events N,
// --publishers N, --seeds N, --seed S, --switches N, --threads N,
// --json PATH.
#include <cstdio>
#include <string>

#include "bench/bench_cli.h"
#include "src/runtime/result_sink.h"
#include "src/scout/experiment.h"

namespace {

using namespace scout;

// One leg per fault class; exactly one harmful engine is active per leg
// so every ledger entry and every stamped event belongs to that class.
struct Leg {
  const char* name;
  double gray_rate;
  const char* storm;
  bool evict_only;
};

constexpr Leg kLegs[] = {
    {"gray-misrender", 0.15, "", false},
    {"storm-rack-power", 0.0, "rack-power", false},
    {"storm-pod-brownout", 0.0, "pod-brownout", false},
    {"evict-only", 0.0, "", true},
};

MonitoringOptions leg_options(const Leg& leg, std::size_t switches,
                              std::size_t events, std::uint64_t seed) {
  MonitoringOptions options;
  options.profile = GeneratorProfile::scaled(switches);
  options.profile.target_pairs = switches * 20;
  options.events = events;
  options.batch_ops = 12;
  options.seed = seed;
  options.localize_final = false;
  options.collect_incidents = true;
  options.gray_rate = leg.gray_rate;
  // Misrender-only: dropped updates publish no event, so their damage is
  // structurally unattributable — the drop legs live in BENCH_storms.
  options.gray_drop_rate = 0.0;
  options.storm = leg.storm;
  options.storm_every_batches = 1;
  // Split episodes leave damage in place across a drain so verdicts can
  // observe it; atomically-healing episodes never fail a verdict.
  options.storm_split = true;
  if (leg.evict_only) {
    options.mix = stream::ChurnMix{};
    options.mix.evict = 1.0;
    options.mix.corrupt = 0.0;
    options.mix.resync = 0.0;
    options.mix.crash = 0.0;
    options.mix.recover = 0.0;
    options.mix.channel_flap = 0.0;
    options.mix.benign_change = 0.0;
    options.mix.migrate = 0.0;
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t switches =
      bench::size_flag(argc, argv, "switches", 12, 4, 256);
  const std::size_t events =
      bench::size_flag(argc, argv, "events", 600, 1, 10'000'000);
  const std::size_t publishers =
      bench::size_flag(argc, argv, "publishers", 4, 1, 64);
  const std::size_t seeds = bench::size_flag(argc, argv, "seeds", 20, 1, 64);
  const std::uint64_t seed0 = bench::size_flag(argc, argv, "seed", 41);
  const auto executor = bench::executor_from_flags(argc, argv);

  runtime::BenchRecorder recorder{"incident_accuracy"};
  bool failed = false;

  for (std::size_t leg_idx = 0; leg_idx < std::size(kLegs); ++leg_idx) {
    const Leg& leg = kLegs[leg_idx];
    std::size_t leg_incidents = 0;
    std::size_t leg_matched = 0, leg_attributed = 0, leg_truth = 0;
    double leg_recall_num = 0, leg_recall_den = 0;
    for (std::size_t s = 0; s < seeds; ++s) {
      const std::uint64_t seed = seed0 + s * 101;
      MonitoringOptions base = leg_options(leg, switches, events, seed);
      base.publishers = publishers;

      MonitoringOptions serial = base;
      serial.use_ring = false;
      const MonitoringReport anchor =
          run_continuous_monitoring(serial, *executor);

      MonitoringOptions ring = base;
      ring.use_ring = true;
      const MonitoringReport report =
          run_continuous_monitoring(ring, *executor);

      bool run_ok = true;
      for (const MonitoringReport* r : {&anchor, &report}) {
        if (r->incident_precision != 1.0) {
          std::fprintf(
              stderr,
              "error: precision gate violated (%s, seed %llu, %s): %.6f\n",
              leg.name, static_cast<unsigned long long>(seed),
              r == &anchor ? "serial" : "ring", r->incident_precision);
          failed = true;
          run_ok = false;
        }
      }
      if (report.verdict_digest != anchor.verdict_digest) {
        std::fprintf(stderr,
                     "error: digest-identity violated (%s, seed %llu): "
                     "ring %llx != serial %llx\n",
                     leg.name, static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(report.verdict_digest),
                     static_cast<unsigned long long>(anchor.verdict_digest));
        failed = true;
        run_ok = false;
      }
      if (s == 0) {
        // Neutrality: detaching the incident layer must not move the
        // digest — attribution is observe-only by construction.
        MonitoringOptions bare = serial;
        bare.collect_incidents = false;
        const MonitoringReport off =
            run_continuous_monitoring(bare, *executor);
        if (off.verdict_digest != anchor.verdict_digest) {
          std::fprintf(stderr,
                       "error: incident layer perturbed the digest "
                       "(%s, seed %llu)\n",
                       leg.name, static_cast<unsigned long long>(seed));
          failed = true;
          run_ok = false;
        }
      }

      leg_incidents += report.incidents;
      leg_matched += report.incident_first_cause_correct;
      leg_attributed += report.incidents - report.incidents_unattributed;
      leg_truth += report.incidents;
      // Aggregate recall as a weighted mean over runs with truth mass.
      if (report.incidents > 0) {
        leg_recall_num +=
            report.incident_recall * static_cast<double>(report.incidents);
        leg_recall_den += static_cast<double>(report.incidents);
      }

      recorder.add_row(
          {{"leg", static_cast<double>(leg_idx)},
           {"seed", static_cast<double>(seed)},
           {"publishers", static_cast<double>(publishers)},
           {"events", static_cast<double>(report.events)},
           {"batches", static_cast<double>(report.batches)},
           {"events_per_sec", report.events_per_sec},
           {"incidents", static_cast<double>(report.incidents)},
           {"unattributed",
            static_cast<double>(report.incidents_unattributed)},
           {"first_cause_correct",
            static_cast<double>(report.incident_first_cause_correct)},
           {"incident_precision", report.incident_precision},
           {"incident_recall", report.incident_recall},
           {"run_ok", run_ok ? 1.0 : 0.0}});
    }

    const double leg_recall =
        leg_recall_den > 0 ? leg_recall_num / leg_recall_den : 1.0;
    if (leg_recall < 0.9) {
      std::fprintf(stderr, "error: recall gate violated (%s): %.4f < 0.9\n",
                   leg.name, leg_recall);
      failed = true;
    }
    if (leg_incidents == 0) {
      std::fprintf(stderr,
                   "error: leg produced no incidents (%s) — gate vacuous\n",
                   leg.name);
      failed = true;
    }
    std::printf(
        "%-20s %3zu seeds: %4zu incidents, %4zu attributed, "
        "%4zu first-cause hits, recall %.4f\n",
        leg.name, seeds, leg_incidents, leg_attributed, leg_matched,
        leg_recall);
    (void)leg_truth;
  }

  if (!failed) {
    std::printf("incident gates: OK (precision 1.0 everywhere, per-leg "
                "recall >= 0.9, digests transport- and layer-invariant; "
                "%zu legs x %zu seeds)\n",
                std::size(kLegs), seeds);
  }
  const std::string json_path =
      bench::string_flag(argc, argv, "json", "BENCH_incidents.json");
  if (!recorder.write_file(json_path)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return failed ? 1 : 0;
}
