// Minimal flag parsing shared by the bench binaries. Supports
// "--name value" and "--name=value"; unknown flags are ignored so each
// bench reads only the flags it understands. A flag present with no usable
// value (bare at argv's end, or followed by / set to another "--flag") is
// reported loudly and treated as its fallback — never as absent, which
// used to make a bare "--threads" silently run scalability's full sweep.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/runtime/campaign.h"

namespace scout::bench {

// Presence of a bare boolean flag, e.g. --paper.
inline bool bool_flag(int argc, char** argv, std::string_view name) {
  const std::string token = "--" + std::string{name};
  for (int i = 1; i < argc; ++i) {
    if (token == argv[i]) return true;
  }
  return false;
}

// Lookup of "--name value" / "--name=value" that distinguishes an absent
// flag from one present without a usable value. A value that itself starts
// with "--" is rejected: it is almost certainly the next flag, not a value
// (no bench flag takes a negative or flag-shaped argument). A repeated
// flag follows the usual last-wins convention, so appended overrides
// ("scalability --threads 2 $EXTRA") behave as scripts expect.
struct FlagLookup {
  bool present = false;
  const char* value = nullptr;  // non-null only when a usable value exists
};

inline FlagLookup find_flag(int argc, char** argv, std::string_view name) {
  const std::string prefix = "--" + std::string{name};
  const std::string prefix_eq = prefix + "=";
  FlagLookup found;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg{argv[i]};
    const char* value = nullptr;
    if (arg == prefix) {
      if (i + 1 < argc) value = argv[i + 1];
    } else if (arg.rfind(prefix_eq, 0) == 0) {
      value = argv[i] + prefix_eq.size();
    } else {
      continue;
    }
    if (value != nullptr && std::string_view{value}.rfind("--", 0) == 0) {
      value = nullptr;
    }
    found = FlagLookup{true, value};
  }
  return found;
}

// Usable value of "--name", warning (once per call) when the flag is
// present but valueless instead of pretending it was never passed.
inline const char* flag_value(int argc, char** argv, std::string_view name) {
  const FlagLookup flag = find_flag(argc, argv, name);
  if (flag.present && flag.value == nullptr) {
    std::fprintf(stderr,
                 "warning: --%.*s needs a value (none given, or the next "
                 "token is another --flag); using the default\n",
                 static_cast<int>(name.size()), name.data());
  }
  return flag.value;
}

// Parse a non-negative integer; nullopt on anything strtoull would mangle
// (junk, empty, or a leading '-', which strtoull silently wraps).
inline std::optional<std::size_t> parse_size(const char* raw) {
  if (raw == nullptr || *raw == '\0' || *raw == '-') return std::nullopt;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw || *end != '\0') return std::nullopt;
  return static_cast<std::size_t>(value);
}

// Value clamped into [min, max]; unparsable input falls back (with a note
// on stderr) rather than flowing garbage into the experiment.
inline std::size_t size_flag(int argc, char** argv, std::string_view name,
                             std::size_t fallback, std::size_t min = 0,
                             std::size_t max = SIZE_MAX) {
  const char* raw = flag_value(argc, argv, name);
  if (raw == nullptr) return fallback;
  const std::optional<std::size_t> parsed = parse_size(raw);
  if (!parsed) {
    std::fprintf(stderr, "warning: ignoring malformed --%.*s value '%s'\n",
                 static_cast<int>(name.size()), name.data(), raw);
    return fallback;
  }
  return std::clamp(*parsed, min, max);
}

// Comma-separated size list, e.g. --sizes 10,30,50. Malformed or zero
// entries are dropped; an empty result falls back.
inline std::vector<std::size_t> list_flag(int argc, char** argv,
                                          std::string_view name,
                                          std::vector<std::size_t> fallback) {
  const char* raw = flag_value(argc, argv, name);
  if (raw == nullptr) return fallback;
  std::vector<std::size_t> out;
  const std::string text{raw};
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string item =
        text.substr(start, comma == std::string::npos ? comma : comma - start);
    if (const std::optional<std::size_t> parsed = parse_size(item.c_str());
        parsed && *parsed > 0) {
      out.push_back(*parsed);
    } else if (!item.empty()) {
      std::fprintf(stderr, "warning: dropping malformed --%.*s entry '%s'\n",
                   static_cast<int>(name.size()), name.data(), item.c_str());
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out.empty() ? fallback : out;
}

inline std::string string_flag(int argc, char** argv, std::string_view name,
                               std::string fallback) {
  const char* raw = flag_value(argc, argv, name);
  return raw == nullptr ? std::move(fallback) : std::string{raw};
}

// Wall-clock scaffold shared by the sweep benches: start on construction,
// read elapsed time when the measured region ends.
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Hard cap on --threads across every bench: typos and unquoted script
// variables should degrade, not exhaust the process's thread limit.
inline constexpr std::size_t kMaxBenchThreads = 256;

// The shared "--threads N" handling: parse, clamp, build the executor.
inline std::unique_ptr<runtime::Executor> executor_from_flags(int argc,
                                                              char** argv) {
  return runtime::make_executor(size_flag(argc, argv, "threads", 1,
                                          /*min=*/1, kMaxBenchThreads));
}

}  // namespace scout::bench
