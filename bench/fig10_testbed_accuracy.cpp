// Figure 10 — testbed accuracy: SCOUT vs SCORE (threshold 1), 1..10
// simultaneous faults, 10 runs, on the testbed-scale policy (36 EPGs, 24
// contracts, 9 filters, 100 EPG pairs).
//
// Paper result: SCOUT recall 20-50% better than SCORE's at comparable
// precision; 100% recall and ~98% precision below four faults; accuracy
// dips with five or more faults because the testbed's risk sharing is low.
#include <cstdio>

#include "src/scout/experiment.h"

int main() {
  using namespace scout;

  AccuracyOptions opts;
  opts.profile = GeneratorProfile::testbed();
  opts.model = RiskModelKind::kController;
  opts.runs = 10;
  opts.max_faults = 10;
  opts.benign_changes = 0;
  opts.seed = 44;

  const std::vector<AlgorithmSpec> algorithms{
      {"SCOUT", AlgorithmKind::kScout, 1.0, true},
      {"SCORE", AlgorithmKind::kScore, 1.0, true},
  };

  std::printf("=== Figure 10: testbed fault localization (%zu runs/point) "
              "===\n\n",
              opts.runs);
  const auto series = run_accuracy_sweep(opts, algorithms);

  std::printf("  %-7s %-18s %-18s\n", "", "precision", "recall");
  std::printf("  %-7s %-9s %-9s %-9s %-9s\n", "faults", "SCOUT", "SCORE",
              "SCOUT", "SCORE");
  for (std::size_t f = 0; f < opts.max_faults; ++f) {
    std::printf("  %-7zu %-9.3f %-9.3f %-9.3f %-9.3f\n", f + 1,
                series[0].by_faults[f].precision,
                series[1].by_faults[f].precision,
                series[0].by_faults[f].recall,
                series[1].by_faults[f].recall);
  }

  double low_fault_recall = 0;
  for (std::size_t f = 0; f < 3; ++f) {
    low_fault_recall += series[0].by_faults[f].recall;
  }
  std::printf("\nSCOUT mean recall at 1-3 faults: %.3f  "
              "[paper: 1.0 with ~0.98 precision below four faults]\n",
              low_fault_recall / 3.0);
  return 0;
}
