// Figure 7 — suspect-set reduction γ = |hypothesis| / |suspect set|.
//
// (a) testbed policy, 200 object faults, buckets 1-10 / 10-20 / 20-40 /
//     40-60 suspect objects;
// (b) production-shaped policy, 1500 object faults, buckets 1-10 / 10-50 /
//     50-100 / 100-500 / 500-1000.
//
// Paper result: γ < ~0.08 in most buckets — SCOUT reports at most ~10
// objects where an admin would otherwise face up to a thousand.
#include <cstdio>

#include "src/scout/experiment.h"

namespace {

void print_buckets(const char* title,
                   const std::vector<scout::GammaBucket>& buckets) {
  std::printf("%s\n", title);
  std::printf("  %-12s %-10s %-12s %-8s\n", "#suspects", "mean-gamma",
              "max|H|", "samples");
  for (const auto& b : buckets) {
    if (b.samples == 0) {
      std::printf("  %4zu-%-7zu %-10s %-12s %-8s\n", b.lo, b.hi, "-", "-",
                  "0");
      continue;
    }
    std::printf("  %4zu-%-7zu %-10.4f %-12.0f %-8zu\n", b.lo, b.hi,
                b.mean_gamma, b.max_hypothesis, b.samples);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace scout;

  std::printf("=== Figure 7: suspect set reduction ===\n\n");

  {
    GammaOptions opts;
    opts.profile = GeneratorProfile::testbed();
    opts.faults = 200;
    opts.seed = 7;
    opts.bucket_bounds = {10, 20, 40, 60};
    print_buckets("(a) faults in testbed (200 object faults)",
                  run_gamma_experiment(opts));
  }

  {
    GammaOptions opts;
    opts.profile = GeneratorProfile::production();
    opts.profile.target_pairs = 12'000;  // runtime trim; shape preserved
    opts.faults = 1500;
    opts.seed = 11;
    opts.bucket_bounds = {10, 50, 100, 500, 1000};
    print_buckets("(b) simulated faults (1500 object faults)",
                  run_gamma_experiment(opts));
  }

  std::printf("paper reference: gamma < 0.08 in most buckets; at most ~10 "
              "objects reported\n");
  return 0;
}
