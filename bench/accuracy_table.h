// Shared precision/recall table formatting for the accuracy benches
// (fig8/fig9): one place to change column widths or add a metric.
#pragma once

#include <cstdio>
#include <vector>

#include "src/scout/experiment.h"

namespace scout::bench {

inline void print_accuracy_series(const std::vector<AccuracySeries>& series,
                                  std::size_t max_faults) {
  for (const int metric : {0, 1}) {
    std::printf("%s\n  %-7s", metric == 0 ? "(a) precision" : "\n(b) recall",
                "faults");
    for (const auto& s : series) std::printf(" %-10s", s.name.c_str());
    std::printf("\n");
    for (std::size_t f = 0; f < max_faults; ++f) {
      std::printf("  %-7zu", f + 1);
      for (const auto& s : series) {
        std::printf(" %-10.3f", metric == 0 ? s.by_faults[f].precision
                                            : s.by_faults[f].recall);
      }
      std::printf("\n");
    }
  }
}

}  // namespace scout::bench
