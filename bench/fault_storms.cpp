// Gray-failure & fault-storm bench: drive the continuous monitor through
// every fault class the chaos engine adds — gray rendering faults,
// correlated storm episodes (rack-power, rolling-upgrade, pod-brownout),
// the pluggable TCAM eviction policies, and delayed/reordered control
// delivery — and measure event-to-detection latency and final suspect
// sets under each.
//
// Self-verifying twice over, exiting non-zero on either gate:
//  * digest identity — per (fault class, seed) the serial-transport leg
//    and the phased MPSC-ring leg (--publishers threads) must produce
//    bit-identical verdict-stream digests: none of the new fault classes
//    may introduce publisher-count- or transport-dependent behaviour;
//  * journal round-trip — per (fault class, seed) a journaled scenario on
//    a fresh fabric must repair to a bit-identical state_fingerprint().
//
// Writes BENCH_storms.json: one row per (fault class, seed) ring leg with
// throughput, p50/p99 detection latency, final verdict sizes, the
// localizer's hypothesis size, and the fault-engine activity counters.
// Flags: --events N, --publishers N, --seeds N, --seed S, --switches N,
// --threads N, --json PATH.
#include <cstdio>
#include <string>
#include <utility>

#include "bench/bench_cli.h"
#include "src/faults/fault_policy.h"
#include "src/faults/gray_faults.h"
#include "src/faults/repair_journal.h"
#include "src/faults/storm.h"
#include "src/runtime/result_sink.h"
#include "src/scout/experiment.h"
#include "src/scout/sim_network.h"
#include "src/workload/policy_generator.h"

namespace {

using namespace scout;

// One leg per fault class; exactly one knob is active per leg so a gate
// failure names the culprit directly.
struct Leg {
  const char* name;
  double gray_rate;
  const char* storm;
  const char* evict;
  std::size_t delivery_window;
};

constexpr Leg kLegs[] = {
    {"gray", 0.15, "", "", 0},
    {"storm-rack-power", 0.0, "rack-power", "", 0},
    {"storm-rolling-upgrade", 0.0, "rolling-upgrade", "", 0},
    {"storm-pod-brownout", 0.0, "pod-brownout", "", 0},
    {"evict-fifo", 0.0, "", "fifo", 0},
    {"evict-random", 0.0, "", "random", 0},
    {"evict-lru-touch", 0.0, "", "lru-touch", 0},
    {"reorder", 0.0, "", "", 6},
};

// The journal gate: run the leg's fault class journaled on a fresh fabric
// and demand a bit-identical fingerprint after repair().
bool journal_round_trip(const Leg& leg, std::size_t switches,
                        std::uint64_t seed) {
  GeneratorProfile profile = GeneratorProfile::scaled(switches);
  profile.target_pairs = switches * 20;
  Rng net_rng{derive_seed(seed, 0xF0)};
  GeneratedNetwork generated = generate_network(profile, net_rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  net.clock().advance(3'600'000);
  if (leg.evict[0] != '\0') {
    // Policies are fault-selection bookkeeping, outside the fingerprint;
    // installing them before the baseline mirrors the monitoring setup.
    const std::uint64_t evict_seed = derive_seed(seed, 0xE0);
    for (const auto& agent : net.agents()) {
      agent->tcam().set_eviction_policy(make_eviction_policy(
          leg.evict, derive_seed(evict_seed, agent->id().value())));
    }
  }
  const std::uint64_t before = net.state_fingerprint();
  RepairJournal journal;
  journal.arm(net);
  if (leg.gray_rate > 0.0) {
    GrayFaultProfile gray;
    gray.misrender_rate = leg.gray_rate;
    gray.misrender_burst = 3;
    gray.drop_rate = leg.gray_rate * 0.5;
    gray.drop_burst = 2;
    (void)run_gray_agent_scenario(net, gray, /*n_gray=*/3, seed, &journal);
  } else if (leg.storm[0] != '\0') {
    StormSchedule storm{net, storm_profile(leg.storm),
                        derive_seed(seed, 0x57)};
    storm.run_episode(&journal);
    storm.run_episode(&journal);
  } else if (leg.delivery_window > 0) {
    (void)run_reordered_delivery_scenario(net, leg.delivery_window,
                                          /*n_resyncs=*/3, seed, &journal);
  } else {
    Rng rng{derive_seed(seed, 0xEE)};
    const auto agents = net.agents();
    for (int round = 0; round < 3; ++round) {
      const std::size_t idx = rng.below(agents.size());
      journal.snapshot_agent(net, agents[idx]->id());
      (void)agents[idx]->evict_rules(2, net.clock().now());
    }
  }
  journal.repair(net);
  return net.state_fingerprint() == before;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t switches =
      bench::size_flag(argc, argv, "switches", 12, 4, 256);
  const std::size_t events =
      bench::size_flag(argc, argv, "events", 1500, 1, 10'000'000);
  const std::size_t publishers =
      bench::size_flag(argc, argv, "publishers", 4, 1, 64);
  const std::size_t seeds = bench::size_flag(argc, argv, "seeds", 2, 1, 64);
  const std::uint64_t seed0 = bench::size_flag(argc, argv, "seed", 33);
  const auto executor = bench::executor_from_flags(argc, argv);

  runtime::BenchRecorder recorder{"fault_storms"};
  bool failed = false;

  for (std::size_t leg_idx = 0; leg_idx < std::size(kLegs); ++leg_idx) {
    const Leg& leg = kLegs[leg_idx];
    for (std::size_t s = 0; s < seeds; ++s) {
      const std::uint64_t seed = seed0 + s * 101;

      MonitoringOptions base;
      base.profile = GeneratorProfile::scaled(switches);
      base.profile.target_pairs = switches * 20;
      base.events = events;
      base.batch_ops = 12;
      base.seed = seed;
      base.localize_final = true;
      base.gray_rate = leg.gray_rate;
      base.storm = leg.storm;
      base.storm_every_batches = 1;  // batches are big; storm every drain
      base.evict_policy = leg.evict;
      base.delivery_window = leg.delivery_window;
      base.publishers = publishers;

      MonitoringOptions serial = base;
      serial.use_ring = false;
      const MonitoringReport anchor =
          run_continuous_monitoring(serial, *executor);

      MonitoringOptions ring = base;
      ring.use_ring = true;
      const MonitoringReport report =
          run_continuous_monitoring(ring, *executor);

      const bool digest_ok = report.verdict_digest == anchor.verdict_digest;
      if (!digest_ok) {
        std::fprintf(stderr,
                     "error: digest-identity violated (%s, seed %llu): "
                     "ring %llx != serial %llx\n",
                     leg.name, static_cast<unsigned long long>(seed),
                     static_cast<unsigned long long>(report.verdict_digest),
                     static_cast<unsigned long long>(anchor.verdict_digest));
        failed = true;
      }
      const bool journal_ok = journal_round_trip(leg, switches, seed);
      if (!journal_ok) {
        std::fprintf(stderr,
                     "error: journal round-trip not fingerprint-exact "
                     "(%s, seed %llu)\n",
                     leg.name, static_cast<unsigned long long>(seed));
        failed = true;
      }

      recorder.add_row(
          {{"leg", static_cast<double>(leg_idx)},
           {"seed", static_cast<double>(seed)},
           {"publishers", static_cast<double>(publishers)},
           {"events", static_cast<double>(report.events)},
           {"batches", static_cast<double>(report.batches)},
           {"churn_ops", static_cast<double>(report.churn_ops)},
           {"events_per_sec", report.events_per_sec},
           {"stream_p50_ms", report.p50_latency_ms},
           {"stream_p99_ms", report.p99_latency_ms},
           {"inconsistent_batches",
            static_cast<double>(report.inconsistent_batches)},
           {"final_inconsistent",
            static_cast<double>(report.final_inconsistent)},
           {"final_missing", static_cast<double>(report.final_missing)},
           {"hypothesis_size", static_cast<double>(report.hypothesis_size)},
           {"storm_episodes", static_cast<double>(report.storm_episodes)},
           {"gray_misrenders", static_cast<double>(report.gray_misrenders)},
           {"gray_drops", static_cast<double>(report.gray_drops)},
           {"tcam_evictions", static_cast<double>(report.tcam_evictions)},
           {"digest_ok", digest_ok ? 1.0 : 0.0},
           {"journal_ok", journal_ok ? 1.0 : 0.0}});

      std::printf(
          "%-22s seed %3llu: %7.0f events/s, p50 %6.2f ms, p99 %6.2f ms, "
          "episodes %zu, misrenders %llu, evictions %llu, hypothesis %zu "
          "[digest %s, journal %s]\n",
          leg.name, static_cast<unsigned long long>(seed),
          report.events_per_sec, report.p50_latency_ms,
          report.p99_latency_ms, report.storm_episodes,
          static_cast<unsigned long long>(report.gray_misrenders),
          static_cast<unsigned long long>(report.tcam_evictions),
          report.hypothesis_size, digest_ok ? "ok" : "FAIL",
          journal_ok ? "ok" : "FAIL");
    }
  }

  if (!failed) {
    std::printf("fault-storm gates: OK (serial == ring digests, journaled "
                "repairs fingerprint-exact; %zu legs x %zu seeds)\n",
                std::size(kLegs), seeds);
  }
  const std::string json_path =
      bench::string_flag(argc, argv, "json", "BENCH_storms.json");
  if (!recorder.write_file(json_path)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return failed ? 1 : 0;
}
