// Figure 9 — precision/recall vs number of simultaneous faulty objects on
// the *controller risk model*, with faults injected across switches.
// Same algorithms and run count as Figure 8; the paper observes "similar
// trends for the controller risk model".
#include <cstdio>

#include "bench/bench_cli.h"
#include "src/scout/experiment.h"

int main(int argc, char** argv) {
  using namespace scout;

  AccuracyOptions opts;
  opts.profile = GeneratorProfile::production();
  opts.profile.target_pairs = 6'000;
  opts.model = RiskModelKind::kController;
  opts.runs = 30;
  opts.max_faults = 10;
  opts.benign_changes = 0;
  opts.seed = 43;

  const std::vector<AlgorithmSpec> algorithms{
      {"SCOUT", AlgorithmKind::kScout, 1.0, true},
      {"SCORE-0.6", AlgorithmKind::kScore, 0.6, true},
      {"SCORE-1", AlgorithmKind::kScore, 1.0, true},
  };

  const auto executor = bench::executor_from_flags(argc, argv);

  std::printf("=== Figure 9: fault localization on controller risk model, "
              "faults across switches (%zu runs/point, %zu thread%s) ===\n\n",
              opts.runs, executor->workers(),
              executor->workers() == 1 ? "" : "s");
  const bench::WallClock wall;
  const auto series = run_accuracy_sweep(opts, algorithms, *executor);
  const double wall_s = wall.seconds();

  for (const auto metric : {0, 1}) {
    std::printf("%s\n  %-7s", metric == 0 ? "(a) precision" : "\n(b) recall",
                "faults");
    for (const auto& s : series) std::printf(" %-10s", s.name.c_str());
    std::printf("\n");
    for (std::size_t f = 0; f < opts.max_faults; ++f) {
      std::printf("  %-7zu", f + 1);
      for (const auto& s : series) {
        std::printf(" %-10.3f", metric == 0 ? s.by_faults[f].precision
                                            : s.by_faults[f].recall);
      }
      std::printf("\n");
    }
  }

  double scout_recall = 0, score1_recall = 0;
  for (std::size_t f = 0; f < opts.max_faults; ++f) {
    scout_recall += series[0].by_faults[f].recall;
    score1_recall += series[2].by_faults[f].recall;
  }
  std::printf("\nmean recall: SCOUT %.3f vs SCORE-1 %.3f  "
              "[paper: similar trends to Fig. 8]\n",
              scout_recall / static_cast<double>(opts.max_faults),
              score1_recall / static_cast<double>(opts.max_faults));
  std::printf("sweep wall clock: %.1f s\n", wall_s);
  return 0;
}
