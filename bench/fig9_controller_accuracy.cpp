// Figure 9 — precision/recall vs number of simultaneous faulty objects on
// the *controller risk model*, with faults injected across switches.
// Same algorithms and run count as Figure 8; the paper observes "similar
// trends for the controller risk model".
#include <cstdio>

#include "bench/accuracy_table.h"
#include "bench/bench_cli.h"
#include "src/scout/experiment.h"

int main(int argc, char** argv) {
  using namespace scout;

  AccuracyOptions opts;
  opts.profile = GeneratorProfile::production();
  opts.profile.target_pairs = 6'000;
  opts.model = RiskModelKind::kController;
  opts.runs = 30;
  opts.max_faults = 10;
  opts.benign_changes = 0;
  opts.seed = 43;
  // Per-worker cached sweep networks with exact repair between cells;
  // --no-cache forces the fresh-build-per-cell path (results identical).
  opts.cache_networks = !bench::bool_flag(argc, argv, "no-cache");

  const std::vector<AlgorithmSpec> algorithms{
      {"SCOUT", AlgorithmKind::kScout, 1.0, true},
      {"SCORE-0.6", AlgorithmKind::kScore, 0.6, true},
      {"SCORE-1", AlgorithmKind::kScore, 1.0, true},
  };

  const auto executor = bench::executor_from_flags(argc, argv);

  std::printf("=== Figure 9: fault localization on controller risk model, "
              "faults across switches (%zu runs/point, %zu thread%s, "
              "%s) ===\n\n",
              opts.runs, executor->workers(),
              executor->workers() == 1 ? "" : "s",
              opts.cache_networks ? "cached networks" : "no cache");
  const bench::WallClock wall;
  SweepDiagnostics diag;
  const auto series = run_accuracy_sweep(opts, algorithms, *executor,
                                         /*cache=*/nullptr, &diag);
  const double wall_s = wall.seconds();

  bench::print_accuracy_series(series, opts.max_faults);

  double scout_recall = 0, score1_recall = 0;
  for (std::size_t f = 0; f < opts.max_faults; ++f) {
    scout_recall += series[0].by_faults[f].recall;
    score1_recall += series[2].by_faults[f].recall;
  }
  std::printf("\nmean recall: SCOUT %.3f vs SCORE-1 %.3f  "
              "[paper: similar trends to Fig. 8]\n",
              scout_recall / static_cast<double>(opts.max_faults),
              score1_recall / static_cast<double>(opts.max_faults));
  std::printf("sweep wall clock: %.1f s (setup %.0f ms: %zu builds, %zu "
              "repairs)\n",
              wall_s, diag.setup_seconds * 1e3, diag.network_builds,
              diag.network_repairs);
  return 0;
}
