// Ablation A2 — SCORE hit-ratio threshold sweep.
//
// The paper argues a static threshold cannot fix SCORE: partial object
// faults produce hit ratios anywhere in (0, 1), so lowering the threshold
// trades false negatives for false positives without closing the gap to
// SCOUT ("such a static mechanism helps little", §IV-B).
#include <cstdio>
#include <vector>

#include "src/scout/experiment.h"

int main() {
  using namespace scout;

  AccuracyOptions opts;
  opts.profile = GeneratorProfile::production();
  opts.profile.target_pairs = 6'000;
  opts.model = RiskModelKind::kController;
  opts.runs = 15;
  opts.max_faults = 6;  // fixed mid-range fault counts, sweep threshold
  opts.benign_changes = 0;
  opts.seed = 46;

  std::vector<AlgorithmSpec> algorithms{
      {"SCOUT", AlgorithmKind::kScout, 1.0, true}};
  for (const double threshold : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    char name[32];
    std::snprintf(name, sizeof name, "SCORE-%.1f", threshold);
    algorithms.push_back({name, AlgorithmKind::kScore, threshold, true});
  }

  std::printf("=== Ablation: SCORE threshold sweep (%zu runs, 1..%zu faults) "
              "===\n\n",
              opts.runs, opts.max_faults);
  const auto series = run_accuracy_sweep(opts, algorithms);

  // Mean over fault counts per algorithm.
  std::printf("  %-11s %-10s %-10s\n", "algorithm", "precision", "recall");
  for (const auto& s : series) {
    double precision = 0, recall = 0;
    for (const auto& cell : s.by_faults) {
      precision += cell.precision;
      recall += cell.recall;
    }
    std::printf("  %-11s %-10.3f %-10.3f\n", s.name.c_str(),
                precision / static_cast<double>(s.by_faults.size()),
                recall / static_cast<double>(s.by_faults.size()));
  }
  std::printf("\nexpected shape: no SCORE threshold reaches SCOUT's recall; "
              "low thresholds pay precision for recall\n");
  return 0;
}
