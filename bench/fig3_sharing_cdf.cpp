// Figure 3 — CDF of the number of EPG pairs per policy object, by object
// class (switches, VRFs, EPGs, filters, contracts).
//
// The paper plots this for a proprietary production-cluster policy
// (~30 switches, 6 VRFs, 615 EPGs, 386 contracts, 160 filters). We plot it
// for the statistically generated equivalent and check the qualitative
// claims the paper derives from the figure.
#include <cstdio>
#include <unordered_map>
#include <vector>

#include "src/common/stats.h"
#include "src/policy/policy_index.h"
#include "src/workload/policy_generator.h"

namespace {

using namespace scout;

void print_cdf_row(const char* klass, const EmpiricalCdf& cdf) {
  std::printf("%-10s n=%-5zu | pairs/object: p10=%-6.0f p50=%-6.0f "
              "p90=%-8.0f p99=%-8.0f max=%-8.0f | P[x<=10]=%.2f "
              "P[x<=100]=%.2f P[x<=1000]=%.2f\n",
              klass, cdf.sample_count(), cdf.quantile(0.10),
              cdf.quantile(0.50), cdf.quantile(0.90), cdf.quantile(0.99),
              cdf.quantile(1.0), cdf.at(10), cdf.at(100), cdf.at(1000));
}

}  // namespace

int main() {
  using namespace scout;

  std::printf("=== Figure 3: number of EPG pairs per object (CDF) ===\n");
  Rng rng{2018};
  const GeneratorProfile profile = GeneratorProfile::production();
  const GeneratedNetwork net = generate_network(profile, rng);
  const PolicyIndex index{net.policy};

  const auto counts = net.policy.counts();
  std::printf("policy: %zu VRFs, %zu EPGs, %zu contracts, %zu filters, "
              "%zu switches, %zu EPG pairs\n\n",
              counts.vrfs, counts.epgs, counts.contracts, counts.filters,
              net.fabric.leaves().size(), index.pairs().size());

  // pairs per object, per class
  std::unordered_map<ObjectRef, std::size_t> per_object;
  for (const EpgPair& pair : index.pairs()) {
    for (const ObjectRef obj : index.objects_of(pair)) ++per_object[obj];
  }
  std::vector<double> vrfs, epgs, contracts, filters, switches;
  for (const auto& [obj, n] : per_object) {
    switch (obj.type()) {
      case ObjectType::kVrf:
        vrfs.push_back(static_cast<double>(n));
        break;
      case ObjectType::kEpg:
        epgs.push_back(static_cast<double>(n));
        break;
      case ObjectType::kContract:
        contracts.push_back(static_cast<double>(n));
        break;
      case ObjectType::kFilter:
        filters.push_back(static_cast<double>(n));
        break;
      default:
        break;
    }
  }
  for (const SwitchId sw : net.fabric.leaves()) {
    switches.push_back(
        static_cast<double>(index.pairs_on_switch(sw).size()));
  }

  const EmpiricalCdf switch_cdf{switches}, vrf_cdf{vrfs}, epg_cdf{epgs},
      filter_cdf{filters}, contract_cdf{contracts};
  print_cdf_row("Switches", switch_cdf);
  print_cdf_row("VRFs", vrf_cdf);
  print_cdf_row("EPGs", epg_cdf);
  print_cdf_row("Filters", filter_cdf);
  print_cdf_row("Contracts", contract_cdf);

  std::printf("\n--- paper's qualitative observations (§III-A) ---\n");
  const double vrf_over_100 = 1.0 - vrf_cdf.at(100);
  std::printf("VRFs with > 100 pairs:            %4.0f%%  (paper: majority)\n",
              100 * vrf_over_100);
  std::printf("EPGs in > 100 pairs:              %4.0f%%  (paper: ~50%%)\n",
              100 * (1.0 - epg_cdf.at(100)));
  std::printf("switches with >= 1000 pairs:      %4.0f%%  (paper: ~80%%)\n",
              100 * (1.0 - switch_cdf.at(999)));
  std::printf("filters with < 10 pairs:          %4.0f%%  (paper: ~70%%)\n",
              100 * filter_cdf.at(9));
  std::printf("contracts with < 10 pairs:        %4.0f%%  (paper: ~80%%)\n",
              100 * contract_cdf.at(9));

  std::printf("\nEPG-pairs-per-EPG CDF (series for the plot):\n%s\n",
              epg_cdf.to_table("#EPG pairs", 16).c_str());
  std::printf("EPG-pairs-per-contract CDF:\n%s\n",
              contract_cdf.to_table("#EPG pairs", 16).c_str());
  return 0;
}
