// Continuous-verification stream bench: event-to-detection latency and
// sustained verification throughput of the src/stream monitor, incremental
// vs full-recheck mode, at 1/2/4 workers (or just --threads N).
//
// Self-verifying like fig8: the churn stream is a pure function of the
// seed, so every (mode, worker-count) run must produce the identical
// verdict-stream digest — the bench exits non-zero on any divergence, and
// also if incremental mode reports more full T rebuilds than epoch bumps +
// divergence-threshold trips (i.e. if any delta fell off the incremental
// path unexpectedly).
//
// Writes BENCH_stream.json: one row per (mode, workers) with sustained
// events/sec (events / drain-time; churn generation is identical across
// modes and excluded), p50/p99/max detection latency, and the incremental
// rebuild counters. Flags: --events N, --batch N, --threads N, --seed S,
// --switches N, --rate EPS (paced replay), --json PATH.
//
// --publishers N switches to the concurrent-ingest bench: three legs per
// worker count over the identical publisher-count-independent fault
// schedule — serial transport (baseline), phased MPSC-ring publish, and
// pipelined free-run (publishers overlapped with the drain loop). Serial
// and ring verdict digests must be bit-identical within and across worker
// counts; the pipelined leg is gated on its final verdict matching a
// fresh ground-truth check and, with --min-speedup S, on end-to-end wall
// events/s >= S x the serial leg's.
#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_cli.h"
#include "src/runtime/result_sink.h"
#include "src/scout/experiment.h"
#include "src/telemetry/metrics.h"

namespace {

using namespace scout;

MonitoringOptions base_options(int argc, char** argv) {
  MonitoringOptions options;
  const std::size_t switches =
      bench::size_flag(argc, argv, "switches", 32, 2, 512);
  options.profile = GeneratorProfile::scaled(switches);
  options.profile.target_pairs = switches * 20;
  options.events = bench::size_flag(argc, argv, "events", 6000, 1, 10'000'000);
  options.batch_ops = bench::size_flag(argc, argv, "batch", 12, 1, 100'000);
  options.seed = bench::size_flag(argc, argv, "seed", 21);
  options.target_events_per_sec = static_cast<double>(
      bench::size_flag(argc, argv, "rate", 0, 0, 100'000'000));
  options.localize_final = true;
  return options;
}

// One bench row per (mode, workers). Every stream_* counter key is read
// back out of the exported MetricsRegistry snapshot — there are no
// bench-private counters — with registry names mapped onto the historical
// JSON keys by telemetry::bench_key ("stream.full_rebuilds" ->
// "stream_full_rebuilds"). `overhead_pct` is the events/s cost of
// telemetry for this row's configuration (0 when not measured).
void record(runtime::BenchRecorder& recorder, const MonitoringReport& r,
            bool incremental, std::size_t threads, double baseline_eps,
            double overhead_pct) {
  const telemetry::MetricsSnapshot& snap = r.telemetry;
  const auto c = [&snap](std::string_view name) {
    return static_cast<double>(snap.counter(name));
  };
  recorder.add_row(
      {{"incremental", incremental ? 1.0 : 0.0},
       {"threads", static_cast<double>(threads)},
       {"events", c("stream.events_drained")},
       {"batches", c("stream.batches")},
       {"churn_ops", static_cast<double>(r.churn_ops)},
       {"events_per_sec", r.events_per_sec},
       {"baseline_events_per_sec", baseline_eps},
       {"telemetry_overhead_pct", overhead_pct},
       {"drain_ms", r.drain_seconds * 1e3},
       {"wall_ms", r.wall_seconds * 1e3},
       {"stream_p50_ms", r.p50_latency_ms},
       {"stream_p99_ms", r.p99_latency_ms},
       {"stream_max_ms", r.max_latency_ms},
       {"stream_sim_p50_ms", r.sim_p50_latency_ms},
       {"stream_sim_p99_ms", r.sim_p99_latency_ms},
       {"inconsistent_batches", static_cast<double>(r.inconsistent_batches)},
       {"final_missing", static_cast<double>(r.final_missing)},
       {"hypothesis_size", static_cast<double>(r.hypothesis_size)},
       {"stream_bus_published", c("stream.bus_published")},
       {"stream_bus_compactions", c("stream.bus_compactions")},
       {"stream_incremental_updates", c("stream.incremental_updates")},
       {"stream_full_rebuilds", c("stream.full_rebuilds")},
       {"stream_epoch_rebuilds", c("stream.epoch_rebuilds")},
       {"stream_threshold_trips", c("stream.threshold_trips")},
       {"stream_unsafe_rebuilds", c("stream.unsafe_rebuilds")},
       {"verdicts_reused", c("stream.verdicts_reused")}});
}

// The incremental-path invariant, concurrent edition: every full rebuild
// must be accounted for by an epoch bump, a divergence-threshold trip, or
// a ring-overflow resync.
bool rebuilds_accounted(const MonitoringReport& r) {
  return r.checker.full_rebuilds <= r.checker.epoch_rebuilds +
                                        r.checker.threshold_trips +
                                        r.checker.overflow_resyncs;
}

int run_publishers_bench(int argc, char** argv, const MonitoringOptions& base,
                         const std::vector<std::size_t>& thread_counts) {
  const std::size_t publishers =
      bench::size_flag(argc, argv, "publishers", 4, 1, 64);
  const double min_speedup = static_cast<double>(
      bench::size_flag(argc, argv, "min-speedup", 0, 0, 1000));
  static const char* const kLegNames[] = {"serial", "ring", "pipelined"};

  runtime::BenchRecorder recorder{"stream_latency_publishers"};
  bool failed = false;
  bool digest_set = false;
  std::uint64_t expected_digest = 0;
  double best_speedup = 0.0;

  for (const std::size_t threads : thread_counts) {
    const auto executor = runtime::make_executor(threads);
    double serial_wall_eps = 0.0;
    for (int leg = 0; leg < 3; ++leg) {
      MonitoringOptions options = base;
      options.publishers = publishers;
      options.use_ring = leg != 0;
      options.pipelined = leg == 2;
      const MonitoringReport report =
          run_continuous_monitoring(options, *executor);

      double speedup = 0.0;
      if (leg == 0) {
        serial_wall_eps = report.publish_wall_events_per_sec;
      } else if (leg == 2 && serial_wall_eps > 0.0) {
        speedup = report.publish_wall_events_per_sec / serial_wall_eps;
        best_speedup = std::max(best_speedup, speedup);
      }

      recorder.add_row(
          {{"publish_mode", static_cast<double>(leg)},
           {"publishers", static_cast<double>(publishers)},
           {"threads", static_cast<double>(threads)},
           {"events", static_cast<double>(report.events)},
           {"batches", static_cast<double>(report.batches)},
           {"churn_ops", static_cast<double>(report.churn_ops)},
           {"events_per_sec", report.events_per_sec},
           {"events_per_sec_wall", report.publish_wall_events_per_sec},
           {"publish_speedup", speedup},
           {"stream_p50_ms", report.p50_latency_ms},
           {"stream_p99_ms", report.p99_latency_ms},
           {"stream_full_rebuilds",
            static_cast<double>(report.checker.full_rebuilds)},
           {"stream_epoch_rebuilds",
            static_cast<double>(report.checker.epoch_rebuilds)},
           {"stream_threshold_trips",
            static_cast<double>(report.checker.threshold_trips)},
           {"stream_unsafe_rebuilds",
            static_cast<double>(report.checker.unsafe_rebuilds)},
           {"stream_overflow_resyncs",
            static_cast<double>(report.checker.overflow_resyncs)},
           {"stream_ring_evictions",
            static_cast<double>(report.ring_evictions)},
           {"stream_ring_full_stalls",
            static_cast<double>(report.ring_full_stalls)},
           {"final_verdict_matches_fresh",
            report.final_verdict_matches_fresh ? 1.0 : 0.0}});

      std::printf(
          "%-9s %zu publisher(s), %zu worker(s): %8.0f events/s wall "
          "(%8.0f drain), p99 %7.2f ms, evictions %llu, overflow "
          "resyncs %zu\n",
          kLegNames[leg], publishers, threads,
          report.publish_wall_events_per_sec, report.events_per_sec,
          report.p99_latency_ms,
          static_cast<unsigned long long>(report.ring_evictions),
          report.checker.overflow_resyncs);

      // Serial and phased-ring verdict streams are deterministic and must
      // agree bit-for-bit; pipelined batch boundaries are timing-dependent
      // so that leg is held to the final-verdict ground-truth gate.
      if (leg < 2) {
        if (!digest_set) {
          expected_digest = report.verdict_digest;
          digest_set = true;
        } else if (report.verdict_digest != expected_digest) {
          std::fprintf(
              stderr,
              "error: digest-identity violated (%s leg, %zu workers): "
              "%llx != %llx\n",
              kLegNames[leg], threads,
              static_cast<unsigned long long>(report.verdict_digest),
              static_cast<unsigned long long>(expected_digest));
          failed = true;
        }
      } else if (!report.final_verdict_matches_fresh) {
        std::fprintf(stderr,
                     "error: pipelined final verdict != fresh check_all "
                     "(%zu workers)\n",
                     threads);
        failed = true;
      }
      if (!rebuilds_accounted(report)) {
        std::fprintf(stderr,
                     "error: %s leg fell off the incremental path: %zu "
                     "full rebuilds > %zu epoch + %zu threshold + %zu "
                     "overflow\n",
                     kLegNames[leg], report.checker.full_rebuilds,
                     report.checker.epoch_rebuilds,
                     report.checker.threshold_trips,
                     report.checker.overflow_resyncs);
        failed = true;
      }
    }
  }

  if (!failed && digest_set) {
    std::printf("digest-identity: OK (serial == ring across worker counts, "
                "digest %llx)\n",
                static_cast<unsigned long long>(expected_digest));
  }
  std::printf("publish_speedup: x%.1f (pipelined vs serial wall events/s, "
              "best over worker counts)\n",
              best_speedup);
  if (min_speedup > 0.0 && best_speedup < min_speedup) {
    std::fprintf(stderr,
                 "error: concurrent publish speedup x%.1f below the "
                 "x%.0f gate\n",
                 best_speedup, min_speedup);
    failed = true;
  }

  const std::string json_path =
      bench::string_flag(argc, argv, "json", "BENCH_stream.json");
  if (!recorder.write_file(json_path)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  const MonitoringOptions base = base_options(argc, argv);
  const bench::FlagLookup threads_flag =
      bench::find_flag(argc, argv, "threads");
  std::vector<std::size_t> thread_counts{1, 2, 4};
  if (threads_flag.present) {
    thread_counts = {bench::size_flag(argc, argv, "threads", 1, 1,
                                      bench::kMaxBenchThreads)};
  }
  if (bench::find_flag(argc, argv, "publishers").present) {
    return run_publishers_bench(argc, argv, base, thread_counts);
  }

  runtime::BenchRecorder recorder{"stream_latency"};
  bool digest_set = false;
  std::uint64_t expected_digest = 0;
  bool failed = false;
  double incremental_eps = 0.0;
  double full_eps = 0.0;

  for (const std::size_t threads : thread_counts) {
    const auto executor = runtime::make_executor(threads);
    for (const bool incremental : {true, false}) {
      MonitoringOptions options = base;
      options.incremental = incremental;
      MonitoringReport report = run_continuous_monitoring(options, *executor);

      // Telemetry overhead gate (incremental mode): the identical run
      // with collect_telemetry off is the zero-instrumentation baseline.
      // Its verdict digest must also match — telemetry must never change
      // what the monitor computes. Both configurations take the best of
      // three alternating runs: the drain window is a few hundred ms, so
      // a single-shot comparison mostly measures scheduler noise.
      double baseline_eps = 0.0;
      double overhead_pct = 0.0;
      if (incremental) {
        MonitoringOptions bare = options;
        bare.collect_telemetry = false;
        for (int rep = 0; rep < 3; ++rep) {
          if (rep > 0) {
            MonitoringReport again =
                run_continuous_monitoring(options, *executor);
            if (again.events_per_sec > report.events_per_sec) {
              report = std::move(again);
            }
          }
          const MonitoringReport baseline =
              run_continuous_monitoring(bare, *executor);
          baseline_eps = std::max(baseline_eps, baseline.events_per_sec);
          if (baseline.verdict_digest != report.verdict_digest) {
            std::fprintf(stderr,
                         "error: telemetry changed the verdict stream "
                         "(%zu workers)\n",
                         executor->workers());
            failed = true;
          }
        }
        if (baseline_eps > 0.0) {
          overhead_pct = (baseline_eps - report.events_per_sec) /
                         baseline_eps * 100.0;
        }
        std::printf("  telemetry overhead at %zu worker(s): %+.1f%% "
                    "(best-of-3: %.0f -> %.0f events/s)\n",
                    executor->workers(), overhead_pct, baseline_eps,
                    report.events_per_sec);
      }
      record(recorder, report, incremental, executor->workers(),
             baseline_eps, overhead_pct);
      std::printf(
          "%-12s %zu worker(s): %8.0f events/s (drain %6.1f ms, wall "
          "%7.1f ms), p50 %7.2f ms, p99 %7.2f ms, rebuilds "
          "%zu (epoch %zu + threshold %zu + unsafe %zu)\n",
          incremental ? "incremental" : "full", executor->workers(),
          report.events_per_sec, report.drain_seconds * 1e3,
          report.wall_seconds * 1e3, report.p50_latency_ms,
          report.p99_latency_ms, report.checker.full_rebuilds,
          report.checker.epoch_rebuilds, report.checker.threshold_trips,
          report.checker.unsafe_rebuilds);

      if (!digest_set) {
        expected_digest = report.verdict_digest;
        digest_set = true;
      } else if (report.verdict_digest != expected_digest) {
        std::fprintf(stderr,
                     "error: verdict stream diverged (%s mode, %zu "
                     "workers): digest %llx != %llx\n",
                     incremental ? "incremental" : "full",
                     executor->workers(),
                     static_cast<unsigned long long>(report.verdict_digest),
                     static_cast<unsigned long long>(expected_digest));
        failed = true;
      }
      if (incremental) {
        incremental_eps = report.events_per_sec;
        if (report.checker.full_rebuilds >
            report.checker.epoch_rebuilds + report.checker.threshold_trips) {
          std::fprintf(stderr,
                       "error: incremental mode fell off the incremental "
                       "path: %zu full rebuilds > %zu epoch + %zu "
                       "threshold\n",
                       report.checker.full_rebuilds,
                       report.checker.epoch_rebuilds,
                       report.checker.threshold_trips);
          failed = true;
        }
      } else {
        full_eps = report.events_per_sec;
      }
    }
    if (full_eps > 0.0) {
      std::printf("  -> incremental/full speedup at %zu worker(s): x%.1f\n",
                  executor->workers(), incremental_eps / full_eps);
    }
  }

  const std::string json_path =
      bench::string_flag(argc, argv, "json", "BENCH_stream.json");
  if (!recorder.write_file(json_path)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return failed ? 1 : 0;
}
