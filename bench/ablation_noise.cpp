// Ablation A3 — change-log churn sensitivity.
//
// SCOUT's stage 2 trusts "recently modified" as a fault signal (paper
// §IV-C). The paper evaluates against a quiet change log (only the
// fault-introducing changes are recent). This ablation measures how
// SCOUT's precision degrades as benign policy churn lands inside the
// recency window — the operational cost of the heuristic that the paper
// does not quantify.
#include <cstdio>

#include "src/scout/experiment.h"

int main() {
  using namespace scout;

  std::printf("=== Ablation: SCOUT accuracy vs change-log churn ===\n\n");
  std::printf("  %-16s %-10s %-10s\n", "benign-changes", "precision",
              "recall");

  for (const std::size_t noise : {0, 5, 10, 20, 40}) {
    AccuracyOptions opts;
    opts.profile = GeneratorProfile::production();
    opts.profile.target_pairs = 6'000;
    opts.model = RiskModelKind::kController;
    opts.runs = 10;
    opts.max_faults = 5;
    opts.benign_changes = noise;
    opts.seed = 47;

    const std::vector<AlgorithmSpec> algorithms{
        {"SCOUT", AlgorithmKind::kScout, 1.0, true}};
    const auto series = run_accuracy_sweep(opts, algorithms);

    double precision = 0, recall = 0;
    for (const auto& cell : series[0].by_faults) {
      precision += cell.precision;
      recall += cell.recall;
    }
    const auto n = static_cast<double>(series[0].by_faults.size());
    std::printf("  %-16zu %-10.3f %-10.3f\n", noise, precision / n,
                recall / n);
  }
  std::printf("\nexpected shape: recall stays high (stage 2 still sees the "
              "faulty objects); precision decays as benign churn "
              "co-occurs with failed edges\n");
  return 0;
}
