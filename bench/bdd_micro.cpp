// Microbenchmarks (google-benchmark): ROBDD engine throughput, rule
// encoding, ruleset folding and full L-T equivalence checks — the
// substrate costs behind the paper's checker (§III-C).
#include <benchmark/benchmark.h>

#include <vector>

#include "src/checker/equivalence_checker.h"
#include "src/checker/packet_encoding.h"
#include "src/common/rng.h"
#include "src/controller/compiler.h"
#include "src/tcam/range_expansion.h"
#include "src/workload/policy_generator.h"

namespace {

using namespace scout;

std::vector<TcamRule> synthetic_rules(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<TcamRule> rules;
  rules.reserve(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    rules.push_back(TcamRule::exact_allow(
        static_cast<std::uint32_t>(i),
        static_cast<std::uint16_t>(rng.below(64)),
        static_cast<std::uint16_t>(rng.below(512)),
        static_cast<std::uint16_t>(rng.below(512)), 6,
        TernaryField::exact(static_cast<std::uint32_t>(rng.below(65536)),
                            FieldWidths::kPort)));
  }
  rules.push_back(TcamRule::default_deny(0xFFFFFFFF));
  return rules;
}

std::vector<LogicalRule> wrap_logical(const std::vector<TcamRule>& rules) {
  std::vector<LogicalRule> out;
  out.reserve(rules.size());
  for (const TcamRule& r : rules) {
    LogicalRule lr;
    lr.rule = r;
    lr.prov.sw = SwitchId{0};
    lr.prov.pair = EpgPair{EpgId{r.src_epg.value}, EpgId{r.dst_epg.value}};
    lr.prov.vrf = VrfId{r.vrf.value};
    lr.prov.contract = r.action == RuleAction::kAllow
                           ? ContractId{r.src_epg.value}
                           : ContractId{};  // deny = no provenance
    lr.prov.filter = FilterId{r.dst_port.value};
    out.push_back(lr);
  }
  return out;
}

void BM_RulesetToBdd(benchmark::State& state) {
  const auto rules =
      synthetic_rules(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    BddManager mgr{PacketVars::kCount};
    benchmark::DoNotOptimize(ruleset_to_bdd(mgr, rules));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RulesetToBdd)->Arg(100)->Arg(1000)->Arg(5000);

void BM_EquivalentCheckCleanBdd(benchmark::State& state) {
  const auto rules =
      synthetic_rules(static_cast<std::size_t>(state.range(0)), 2);
  const auto logical = wrap_logical(rules);
  const EquivalenceChecker checker{CheckMode::kExactBdd};
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(logical, rules));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EquivalentCheckCleanBdd)->Arg(1000)->Arg(5000);

void BM_CheckWithMissingRulesBdd(benchmark::State& state) {
  const auto rules =
      synthetic_rules(static_cast<std::size_t>(state.range(0)), 3);
  const auto logical = wrap_logical(rules);
  auto broken = rules;
  broken.erase(broken.begin(), broken.begin() + state.range(0) / 10);
  const EquivalenceChecker checker{CheckMode::kExactBdd};
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(logical, broken));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckWithMissingRulesBdd)->Arg(1000)->Arg(2000);

void BM_CheckWithMissingRulesSyntactic(benchmark::State& state) {
  const auto rules =
      synthetic_rules(static_cast<std::size_t>(state.range(0)), 3);
  const auto logical = wrap_logical(rules);
  auto broken = rules;
  broken.erase(broken.begin(), broken.begin() + state.range(0) / 10);
  const EquivalenceChecker checker{CheckMode::kSyntactic};
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(logical, broken));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckWithMissingRulesSyntactic)->Arg(1000)->Arg(10000);

void BM_RangeExpansion(benchmark::State& state) {
  Rng rng{4};
  for (auto _ : state) {
    const auto lo = static_cast<std::uint32_t>(rng.below(60000));
    const auto hi = lo + static_cast<std::uint32_t>(rng.below(5000));
    benchmark::DoNotOptimize(
        expand_port_range(lo, std::min<std::uint32_t>(hi, 65535), 16));
  }
}
BENCHMARK(BM_RangeExpansion);

void BM_CompileThreeTierScale(benchmark::State& state) {
  Rng rng{5};
  GeneratorProfile profile = GeneratorProfile::testbed();
  profile.target_pairs = static_cast<std::size_t>(state.range(0));
  const GeneratedNetwork net = generate_network(profile, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PolicyCompiler::compile(net.policy));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompileThreeTierScale)->Arg(100)->Arg(400);

// OR-chain of rule-shaped cubes (fully specified fields, as the checker
// builds). Unions of *random-phase sparse* cubes blow ROBDDs up
// exponentially; rule-shaped cubes keep the DAG compact, which is exactly
// why the paper's checker is tractable.
void BM_BddApplyChainRuleShaped(benchmark::State& state) {
  const auto rules = synthetic_rules(200, 6);
  for (auto _ : state) {
    BddManager mgr{PacketVars::kCount};
    BddRef acc = mgr.constant(false);
    for (const TcamRule& r : rules) {
      acc = mgr.apply_or(acc, mgr.cube(rule_to_cube(r)));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_BddApplyChainRuleShaped);

}  // namespace

BENCHMARK_MAIN();
