// Microbenchmarks (google-benchmark): ROBDD engine throughput, rule
// encoding, ruleset folding and full L-T equivalence checks — the
// substrate costs behind the paper's checker (§III-C).
//
// Besides the google-benchmark suite, main() runs a fixed-budget
// measurement of the 512-rule full L-T check (fresh manager per check vs
// the LogicalBddCache arena path) and writes throughput plus engine
// counters (unique-table load, op-cache hit rate) to BENCH_bdd.json — the
// before/after record CI tracks. `--iters N` sets the budget, `--json
// PATH` the output file.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_cli.h"
#include "src/checker/equivalence_checker.h"
#include "src/checker/packet_encoding.h"
#include "src/common/rng.h"
#include "src/controller/compiler.h"
#include "src/runtime/result_sink.h"
#include "src/tcam/range_expansion.h"
#include "src/telemetry/metrics.h"
#include "src/workload/policy_generator.h"

namespace {

using namespace scout;

std::vector<TcamRule> synthetic_rules(std::size_t n, std::uint64_t seed) {
  Rng rng{seed};
  std::vector<TcamRule> rules;
  rules.reserve(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    rules.push_back(TcamRule::exact_allow(
        static_cast<std::uint32_t>(i),
        static_cast<std::uint16_t>(rng.below(64)),
        static_cast<std::uint16_t>(rng.below(512)),
        static_cast<std::uint16_t>(rng.below(512)), 6,
        TernaryField::exact(static_cast<std::uint32_t>(rng.below(65536)),
                            FieldWidths::kPort)));
  }
  rules.push_back(TcamRule::default_deny(0xFFFFFFFF));
  return rules;
}

std::vector<LogicalRule> wrap_logical(const std::vector<TcamRule>& rules) {
  std::vector<LogicalRule> out;
  out.reserve(rules.size());
  for (const TcamRule& r : rules) {
    LogicalRule lr;
    lr.rule = r;
    lr.prov.sw = SwitchId{0};
    lr.prov.pair = EpgPair{EpgId{r.src_epg.value}, EpgId{r.dst_epg.value}};
    lr.prov.vrf = VrfId{r.vrf.value};
    lr.prov.contract = r.action == RuleAction::kAllow
                           ? ContractId{r.src_epg.value}
                           : ContractId{};  // deny = no provenance
    lr.prov.filter = FilterId{r.dst_port.value};
    out.push_back(lr);
  }
  return out;
}

void BM_RulesetToBdd(benchmark::State& state) {
  const auto rules =
      synthetic_rules(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    BddManager mgr{PacketVars::kCount};
    benchmark::DoNotOptimize(ruleset_to_bdd(mgr, rules));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RulesetToBdd)->Arg(100)->Arg(1000)->Arg(5000);

void BM_EquivalentCheckCleanBdd(benchmark::State& state) {
  const auto rules =
      synthetic_rules(static_cast<std::size_t>(state.range(0)), 2);
  const auto logical = wrap_logical(rules);
  const EquivalenceChecker checker{CheckMode::kExactBdd};
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(logical, rules));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EquivalentCheckCleanBdd)->Arg(1000)->Arg(5000);

void BM_CheckWithMissingRulesBdd(benchmark::State& state) {
  const auto rules =
      synthetic_rules(static_cast<std::size_t>(state.range(0)), 3);
  const auto logical = wrap_logical(rules);
  auto broken = rules;
  broken.erase(broken.begin(), broken.begin() + state.range(0) / 10);
  const EquivalenceChecker checker{CheckMode::kExactBdd};
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(logical, broken));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckWithMissingRulesBdd)->Arg(1000)->Arg(2000);

void BM_CheckWithMissingRulesSyntactic(benchmark::State& state) {
  const auto rules =
      synthetic_rules(static_cast<std::size_t>(state.range(0)), 3);
  const auto logical = wrap_logical(rules);
  auto broken = rules;
  broken.erase(broken.begin(), broken.begin() + state.range(0) / 10);
  const EquivalenceChecker checker{CheckMode::kSyntactic};
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(logical, broken));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckWithMissingRulesSyntactic)->Arg(1000)->Arg(10000);

void BM_RangeExpansion(benchmark::State& state) {
  Rng rng{4};
  for (auto _ : state) {
    const auto lo = static_cast<std::uint32_t>(rng.below(60000));
    const auto hi = lo + static_cast<std::uint32_t>(rng.below(5000));
    benchmark::DoNotOptimize(
        expand_port_range(lo, std::min<std::uint32_t>(hi, 65535), 16));
  }
}
BENCHMARK(BM_RangeExpansion);

void BM_CompileThreeTierScale(benchmark::State& state) {
  Rng rng{5};
  GeneratorProfile profile = GeneratorProfile::testbed();
  profile.target_pairs = static_cast<std::size_t>(state.range(0));
  const GeneratedNetwork net = generate_network(profile, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PolicyCompiler::compile(net.policy));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CompileThreeTierScale)->Arg(100)->Arg(400);

// OR-chain of rule-shaped cubes (fully specified fields, as the checker
// builds). Unions of *random-phase sparse* cubes blow ROBDDs up
// exponentially; rule-shaped cubes keep the DAG compact, which is exactly
// why the paper's checker is tractable.
void BM_BddApplyChainRuleShaped(benchmark::State& state) {
  const auto rules = synthetic_rules(200, 6);
  for (auto _ : state) {
    BddManager mgr{PacketVars::kCount};
    BddRef acc = mgr.constant(false);
    for (const TcamRule& r : rules) {
      acc = mgr.apply_or(acc, mgr.cube(rule_to_cube(r)));
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_BddApplyChainRuleShaped);

// Full L-T check with the per-worker arena warm: the logical BDD is
// resident, each iteration builds only the T-BDD above the watermark and
// rolls back. This is the steady-state cost of a sweep-campaign check.
void BM_CheckWithMissingRulesBddCachedLogical(benchmark::State& state) {
  const auto rules =
      synthetic_rules(static_cast<std::size_t>(state.range(0)), 3);
  const auto logical = wrap_logical(rules);
  auto broken = rules;
  broken.erase(broken.begin(), broken.begin() + state.range(0) / 10);
  const EquivalenceChecker checker{CheckMode::kExactBdd};
  LogicalBddCache cache{1};
  EquivalenceChecker::BddCheckContext ctx{&cache, 0, SwitchId{0}, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.check(logical, broken, &ctx));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckWithMissingRulesBddCachedLogical)->Arg(512)->Arg(2000);

// ---------------------------------------------------------------------------
// Fixed-budget BENCH_bdd.json record (independent of google-benchmark)
// ---------------------------------------------------------------------------

double measure_check_512(std::size_t iters, bool cached,
                         runtime::BenchRecorder& recorder) {
  const auto rules = synthetic_rules(512, 3);
  const auto logical = wrap_logical(rules);
  auto broken = rules;
  broken.erase(broken.begin(), broken.begin() + 51);  // 10% missing

  const EquivalenceChecker checker{CheckMode::kExactBdd};
  // Both variants run through an arena so the engine counters land in the
  // JSON either way; the "fresh" variant bumps the key every iteration,
  // which replaces the arena per check — the uncached cost, same work as
  // a throwaway manager.
  LogicalBddCache cache{1};
  EquivalenceChecker::BddCheckContext ctx{&cache, 0, SwitchId{0}, 1};

  // Warmup (and correctness guard: the broken set must be detected).
  if (checker.check(logical, broken, &ctx).missing.size() != 51) {
    std::fprintf(stderr, "error: 512-rule check lost its missing rules\n");
    std::exit(1);
  }
  const bench::WallClock wall;
  for (std::size_t i = 0; i < iters; ++i) {
    if (!cached) ctx.key = 2 + i;  // force an arena rebuild per check
    const CheckResult r = checker.check(logical, broken, &ctx);
    benchmark::DoNotOptimize(r);
  }
  const double seconds = wall.seconds();
  const double checks_per_s = static_cast<double>(iters) / seconds;

  // Engine counters go through the telemetry registry — the same "bdd.*"
  // gauges the monitor loop exposes — so the BENCH keys have exactly one
  // producer (telemetry::bench_key maps "bdd.nodes" -> "bdd_nodes").
  telemetry::MetricsRegistry registry{1};
  cache.export_metrics(registry);
  const telemetry::MetricsSnapshot snap = registry.snapshot();
  std::vector<std::pair<std::string, double>> row{
      {"cached_logical", cached ? 1.0 : 0.0},
      {"rules", 512.0},
      {"iters", static_cast<double>(iters)},
      {"ms_per_check", 1e3 * seconds / static_cast<double>(iters)},
      {"checks_per_s", checks_per_s}};
  for (const char* name :
       {"bdd.nodes", "bdd.unique_load", "bdd.cache_hit_rate",
        "bdd.rollbacks"}) {
    row.emplace_back(telemetry::bench_key(name), snap.gauge(name));
  }
  recorder.add_row(row);
  return checks_per_s;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  const std::size_t iters =
      bench::size_flag(argc, argv, "iters", 50, /*min=*/1, /*max=*/100000);
  runtime::BenchRecorder recorder{"bdd_micro"};
  const double fresh = measure_check_512(iters, /*cached=*/false, recorder);
  const double cached = measure_check_512(iters, /*cached=*/true, recorder);
  std::printf("\n512-rule full L-T check: %.1f checks/s fresh, %.1f "
              "checks/s with resident logical BDD (x%.2f)\n",
              fresh, cached, cached / fresh);

  const std::string json_path =
      bench::string_flag(argc, argv, "json", "BENCH_bdd.json");
  if (!recorder.write_file(json_path)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
