// Figure 8 — precision/recall vs number of simultaneous faulty objects on
// the *switch risk model*, SCOUT vs SCORE-0.6 vs SCORE-1, averaged over 30
// runs on a production-shaped policy.
//
// Paper result: SCOUT recall 20-30% above SCORE at comparable precision
// (~0.9); SCORE's threshold setting changes little.
#include <cstdio>

#include "bench/bench_cli.h"
#include "src/scout/experiment.h"

int main(int argc, char** argv) {
  using namespace scout;

  AccuracyOptions opts;
  opts.profile = GeneratorProfile::production();
  opts.profile.target_pairs = 6'000;  // runtime trim; sharing shape kept
  opts.model = RiskModelKind::kSwitch;
  opts.runs = 30;
  opts.max_faults = 10;
  opts.benign_changes = 0;
  opts.seed = 42;

  const std::vector<AlgorithmSpec> algorithms{
      {"SCOUT", AlgorithmKind::kScout, 1.0, true},
      {"SCORE-0.6", AlgorithmKind::kScore, 0.6, true},
      {"SCORE-1", AlgorithmKind::kScore, 1.0, true},
  };

  const auto executor = bench::executor_from_flags(argc, argv);

  std::printf("=== Figure 8: fault localization on switch risk model "
              "(%zu runs/point, %zu thread%s) ===\n\n",
              opts.runs, executor->workers(),
              executor->workers() == 1 ? "" : "s");
  const bench::WallClock wall;
  const auto series = run_accuracy_sweep(opts, algorithms, *executor);
  const double wall_s = wall.seconds();

  std::printf("(a) precision\n  %-7s", "faults");
  for (const auto& s : series) std::printf(" %-10s", s.name.c_str());
  std::printf("\n");
  for (std::size_t f = 0; f < opts.max_faults; ++f) {
    std::printf("  %-7zu", f + 1);
    for (const auto& s : series) {
      std::printf(" %-10.3f", s.by_faults[f].precision);
    }
    std::printf("\n");
  }

  std::printf("\n(b) recall\n  %-7s", "faults");
  for (const auto& s : series) std::printf(" %-10s", s.name.c_str());
  std::printf("\n");
  for (std::size_t f = 0; f < opts.max_faults; ++f) {
    std::printf("  %-7zu", f + 1);
    for (const auto& s : series) {
      std::printf(" %-10.3f", s.by_faults[f].recall);
    }
    std::printf("\n");
  }

  // Headline check: SCOUT recall advantage over SCORE (mean over x-axis).
  double scout_recall = 0, best_score_recall = 0;
  for (std::size_t f = 0; f < opts.max_faults; ++f) {
    scout_recall += series[0].by_faults[f].recall;
    best_score_recall += std::max(series[1].by_faults[f].recall,
                                  series[2].by_faults[f].recall);
  }
  scout_recall /= static_cast<double>(opts.max_faults);
  best_score_recall /= static_cast<double>(opts.max_faults);
  std::printf("\nmean recall: SCOUT %.3f vs best SCORE %.3f (+%.0f%%)  "
              "[paper: SCOUT 20-30%% better]\n",
              scout_recall, best_score_recall,
              100.0 * (scout_recall - best_score_recall) /
                  best_score_recall);
  std::printf("sweep wall clock: %.1f s\n", wall_s);
  return 0;
}
