// Figure 8 — precision/recall vs number of simultaneous faulty objects on
// the *switch risk model*, SCOUT vs SCORE-0.6 vs SCORE-1, averaged over 30
// runs on a production-shaped policy.
//
// Paper result: SCOUT recall 20-30% above SCORE at comparable precision
// (~0.9); SCORE's threshold setting changes little.
//
// The sweep runs twice by default — once rebuilding the network per cell
// (--no-cache path) and once on per-worker cached networks with exact
// repair between cells — verifies the two series are memcmp-identical, and
// writes both wall clocks plus the setup-time split to BENCH_fig8.json
// (the setup-amortization trajectory). --no-cache or --cache-only measure
// just one side. --runs/--faults trim the grid for CI smoke runs.
#include <cstdio>

#include "bench/accuracy_table.h"
#include "bench/bench_cli.h"
#include "src/runtime/result_sink.h"
#include "src/scout/experiment.h"

int main(int argc, char** argv) {
  using namespace scout;

  AccuracyOptions opts;
  opts.profile = GeneratorProfile::production();
  opts.profile.target_pairs = 6'000;  // runtime trim; sharing shape kept
  opts.model = RiskModelKind::kSwitch;
  opts.runs = bench::size_flag(argc, argv, "runs", 30, /*min=*/1,
                               /*max=*/1000);
  opts.max_faults = bench::size_flag(argc, argv, "faults", 10, /*min=*/1,
                                     /*max=*/100);
  opts.benign_changes = 0;
  opts.seed = 42;

  const bool no_cache = bench::bool_flag(argc, argv, "no-cache");
  const bool cache_only = bench::bool_flag(argc, argv, "cache-only");
  if (no_cache && cache_only) {
    std::fprintf(stderr, "error: --no-cache and --cache-only are mutually "
                         "exclusive (each skips the other's pass)\n");
    return 1;
  }

  const std::vector<AlgorithmSpec> algorithms{
      {"SCOUT", AlgorithmKind::kScout, 1.0, true},
      {"SCORE-0.6", AlgorithmKind::kScore, 0.6, true},
      {"SCORE-1", AlgorithmKind::kScore, 1.0, true},
  };

  const auto executor = bench::executor_from_flags(argc, argv);
  runtime::BenchRecorder recorder{"fig8_switch_accuracy"};

  std::printf("=== Figure 8: fault localization on switch risk model "
              "(%zu runs/point, %zu thread%s) ===\n\n",
              opts.runs, executor->workers(),
              executor->workers() == 1 ? "" : "s");

  const auto record_pass = [&](double cache_flag, double wall_s,
                               const SweepDiagnostics& diag) {
    recorder.add_row(
        {{"threads", static_cast<double>(executor->workers())},
         {"cache", cache_flag},
         {"wall_ms", wall_s * 1e3},
         {"setup_ms", diag.setup_seconds * 1e3},
         {"network_builds", static_cast<double>(diag.network_builds)},
         {"network_repairs", static_cast<double>(diag.network_repairs)}});
  };

  // Pass 1: the fresh-build-per-cell path (skipped by --cache-only).
  std::vector<AccuracySeries> uncached_series;
  double uncached_wall = 0.0;
  SweepDiagnostics uncached_diag;
  if (!cache_only) {
    opts.cache_networks = false;
    const bench::WallClock wall;
    uncached_series = run_accuracy_sweep(opts, algorithms, *executor,
                                         /*cache=*/nullptr, &uncached_diag);
    uncached_wall = wall.seconds();
    record_pass(0.0, uncached_wall, uncached_diag);
  }

  // Pass 2: per-worker cached networks with exact repair (skipped by
  // --no-cache).
  std::vector<AccuracySeries> cached_series;
  double cached_wall = 0.0;
  SweepDiagnostics cached_diag;
  SweepNetworkCache cache{executor->workers()};
  if (!no_cache) {
    opts.cache_networks = true;
    const bench::WallClock wall;
    cached_series =
        run_accuracy_sweep(opts, algorithms, *executor, &cache, &cached_diag);
    cached_wall = wall.seconds();
    record_pass(1.0, cached_wall, cached_diag);
    cache.record_diagnostics(recorder);
  }

  const auto& series = no_cache ? uncached_series : cached_series;
  bench::print_accuracy_series(series, opts.max_faults);

  // Headline check: SCOUT recall advantage over SCORE (mean over x-axis).
  double scout_recall = 0, best_score_recall = 0;
  for (std::size_t f = 0; f < opts.max_faults; ++f) {
    scout_recall += series[0].by_faults[f].recall;
    best_score_recall += std::max(series[1].by_faults[f].recall,
                                  series[2].by_faults[f].recall);
  }
  scout_recall /= static_cast<double>(opts.max_faults);
  best_score_recall /= static_cast<double>(opts.max_faults);
  std::printf("\nmean recall: SCOUT %.3f vs best SCORE %.3f (+%.0f%%)  "
              "[paper: SCOUT 20-30%% better]\n",
              scout_recall, best_score_recall,
              100.0 * (scout_recall - best_score_recall) /
                  best_score_recall);

  // Any run that exercised the cache must have verified every repair
  // clean — --cache-only perf runs included.
  if (!no_cache) {
    const auto stats = cache.stats();
    if (stats.verify_failures > 0) {
      std::fprintf(stderr, "error: %zu repairs failed fingerprint "
                           "verification\n", stats.verify_failures);
      return 1;
    }
  }
  if (!no_cache && !cache_only) {
    if (!accuracy_series_identical(uncached_series, cached_series)) {
      std::fprintf(stderr, "error: cached sweep diverged from the fresh-"
                           "build sweep (repair identity violation)\n");
      return 1;
    }
    // The comparison is over the aggregated (algorithm x fault-count)
    // series the sweep returns; per-grid-cell identity at 1/2/4 workers is
    // pinned by tests/test_network_repair.cpp.
    std::printf("\ncached sweep == fresh-build sweep (memcmp over %zu "
                "aggregated algorithm x fault-count cells)\n",
                algorithms.size() * opts.max_faults);
    std::printf("wall clock: %.1f s uncached -> %.1f s cached\n",
                uncached_wall, cached_wall);
    std::printf("setup time: %.0f ms over %zu builds -> %.0f ms over %zu "
                "builds + %zu repairs (x%.1f)\n",
                uncached_diag.setup_seconds * 1e3,
                uncached_diag.network_builds,
                cached_diag.setup_seconds * 1e3, cached_diag.network_builds,
                cached_diag.network_repairs,
                cached_diag.setup_seconds > 0.0
                    ? uncached_diag.setup_seconds / cached_diag.setup_seconds
                    : 0.0);
  } else {
    std::printf("sweep wall clock: %.1f s\n",
                no_cache ? uncached_wall : cached_wall);
  }

  const std::string json_path =
      bench::string_flag(argc, argv, "json", "BENCH_fig8.json");
  if (!recorder.write_file(json_path)) {
    std::fprintf(stderr, "error: could not write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
