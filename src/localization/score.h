// SCORE baseline (Kompella et al., "Fault localization via risk modeling",
// IEEE TDSC 2010; paper §IV-B). Greedy max-coverage with a configurable
// hit-ratio threshold and no change-log stage: risks below the threshold
// are treated as noise, which is precisely the limitation SCOUT fixes for
// partial object faults.
#pragma once

#include "src/localization/localizer.h"

namespace scout {

class ScoreLocalizer {
 public:
  // The paper evaluates SCORE-0.6 and SCORE-1.
  explicit ScoreLocalizer(double hit_threshold = 1.0);

  [[nodiscard]] double hit_threshold() const noexcept { return threshold_; }

  [[nodiscard]] LocalizationResult localize(const RiskModel& model) const;

 private:
  double threshold_;
};

}  // namespace scout
