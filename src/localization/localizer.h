// Fault localization interfaces and shared result types (paper §IV).
#pragma once

#include <string>
#include <vector>

#include "src/policy/object_ref.h"
#include "src/riskmodel/risk_model.h"

namespace scout {

struct LocalizationResult {
  // The hypothesis H: the minimal set of most-likely faulty objects.
  std::vector<ObjectRef> hypothesis;
  // Observations explained by stage-1 greedy cover vs. left unexplained.
  std::size_t observations_total = 0;
  std::size_t observations_explained = 0;
  // SCOUT-only: objects contributed by the change-log stage.
  std::size_t stage2_objects = 0;
  // Greedy iterations executed (scalability introspection).
  std::size_t iterations = 0;

  [[nodiscard]] std::size_t unexplained() const noexcept {
    return observations_total - observations_explained;
  }
  [[nodiscard]] bool contains(ObjectRef obj) const noexcept;
};

// Utility values of one shared risk at one iteration (paper §IV-B).
struct RiskUtility {
  double hit_ratio = 0.0;       // |O_i| / |G_i|
  double coverage_ratio = 0.0;  // |O_i| / |F|
  std::size_t observed = 0;     // |O_i|
  std::size_t dependent = 0;    // |G_i|
};

}  // namespace scout
