#include "src/localization/scout_localizer.h"

#include <algorithm>
#include <unordered_set>

#include "src/localization/greedy_cover.h"

namespace scout {

LocalizationResult ScoutLocalizer::localize(const RiskModel& model,
                                            const ChangeLog& change_log,
                                            SimTime now) const {
  // Stage 1 (Algorithm 1 lines 4-19 + Algorithm 2): greedy cover over
  // hit-ratio-1 risks.
  GreedyCoverOutcome cover =
      run_greedy_cover(model, options_.stage1_threshold);

  LocalizationResult result;
  result.hypothesis = std::move(cover.hypothesis);
  result.observations_total = cover.observations_total;
  result.observations_explained =
      cover.observations_total - cover.unexplained.size();
  result.iterations = cover.iterations;

  if (!options_.enable_stage2 || cover.unexplained.empty()) return result;

  // Stage 2 (Algorithm 1 lines 20-25): for each unexplained observation,
  // add the failed-edge objects with recent change-log activity.
  const std::unordered_set<ObjectRef> recent =
      change_log.changed_since(now, options_.change_window_ms);

  std::unordered_set<ObjectRef> already(result.hypothesis.begin(),
                                        result.hypothesis.end());
  for (const auto e : cover.unexplained) {
    bool explained = false;
    for (const auto r : model.failed_risks_of(e)) {
      const ObjectRef obj = model.risk(r);
      if (!recent.contains(obj)) continue;
      explained = true;
      if (already.insert(obj).second) {
        result.hypothesis.push_back(obj);
        ++result.stage2_objects;
      }
    }
    if (explained) ++result.observations_explained;
  }
  return result;
}

}  // namespace scout
