#include "src/localization/greedy_cover.h"

#include <algorithm>
#include <unordered_set>

namespace scout {

namespace {
constexpr double kRatioEpsilon = 1e-12;
}  // namespace

GreedyCoverOutcome run_greedy_cover(const RiskModel& model,
                                    double hit_threshold) {
  GreedyCoverOutcome out;

  std::vector<bool> alive(model.element_count(), true);
  // Unexplained observations P.
  std::vector<RiskModel::ElementIdx> unexplained = model.failure_signature();
  out.observations_total = unexplained.size();

  while (!unexplained.empty()) {
    ++out.iterations;

    // K: risks with a failed edge to an unexplained observation.
    std::unordered_set<RiskModel::RiskIdx> candidate_set;
    for (const auto e : unexplained) {
      for (const auto r : model.failed_risks_of(e)) candidate_set.insert(r);
    }

    // Utilities over the *alive* sub-model.
    double best_cov = -1.0;
    std::vector<RiskModel::RiskIdx> faulty_set;
    // Deterministic iteration: sort candidates.
    std::vector<RiskModel::RiskIdx> candidates(candidate_set.begin(),
                                               candidate_set.end());
    std::sort(candidates.begin(), candidates.end());

    for (const auto r : candidates) {
      std::size_t dependent = 0;  // |G_i| among alive elements
      std::size_t observed = 0;   // |O_i| among alive elements
      for (const auto e : model.elements_of(r)) {
        if (!alive[e]) continue;
        ++dependent;
        if (model.edge_failed(e, r)) ++observed;
      }
      if (dependent == 0 || observed == 0) continue;
      const double hit =
          static_cast<double>(observed) / static_cast<double>(dependent);
      if (hit + kRatioEpsilon < hit_threshold) continue;
      const double cov = static_cast<double>(observed) /
                         static_cast<double>(unexplained.size());
      if (cov > best_cov + kRatioEpsilon) {
        best_cov = cov;
        faulty_set.assign(1, r);
      } else if (cov > best_cov - kRatioEpsilon) {
        faulty_set.push_back(r);
      }
    }

    if (faulty_set.empty()) break;  // nothing clears the threshold

    // Prune every element adjacent to a picked risk; observations among
    // them become explained.
    std::unordered_set<RiskModel::ElementIdx> affected;
    for (const auto r : faulty_set) {
      out.hypothesis.push_back(model.risk(r));
      for (const auto e : model.elements_of(r)) {
        if (alive[e]) affected.insert(e);
      }
    }
    for (const auto e : affected) alive[e] = false;
    std::erase_if(unexplained, [&affected](RiskModel::ElementIdx e) {
      return affected.contains(e);
    });
  }

  out.unexplained = std::move(unexplained);
  return out;
}

std::vector<RiskUtility> initial_utilities(const RiskModel& model) {
  const auto signature = model.failure_signature();
  const double f_size = static_cast<double>(signature.size());
  std::vector<RiskUtility> out(model.risk_count());
  for (RiskModel::RiskIdx r = 0; r < model.risk_count(); ++r) {
    RiskUtility& u = out[r];
    u.dependent = model.elements_of(r).size();
    u.observed = model.failed_degree(r);
    u.hit_ratio = u.dependent == 0 ? 0.0
                                   : static_cast<double>(u.observed) /
                                         static_cast<double>(u.dependent);
    u.coverage_ratio =
        f_size == 0.0 ? 0.0 : static_cast<double>(u.observed) / f_size;
  }
  return out;
}

}  // namespace scout
