// Shared greedy max-coverage engine (the common core of SCORE and SCOUT
// stage 1). Each iteration computes hit/coverage utilities for the risks
// with failed edges to unexplained observations, keeps risks whose hit
// ratio clears the threshold, picks the maximum-coverage ones (all ties:
// risks explaining identical observation sets are indistinguishable, cf.
// EPG:Web vs Contract:Web-App in paper Figure 4(a)), prunes every element
// adjacent to a picked risk, and repeats.
#pragma once

#include <vector>

#include "src/localization/localizer.h"
#include "src/riskmodel/risk_model.h"

namespace scout {

struct GreedyCoverOutcome {
  std::vector<ObjectRef> hypothesis;
  // Observations (element indices) never explained by the cover.
  std::vector<RiskModel::ElementIdx> unexplained;
  std::size_t observations_total = 0;
  std::size_t iterations = 0;
};

// `hit_threshold` in (0, 1]: SCOUT stage 1 uses exactly 1.0; SCORE sweeps it.
[[nodiscard]] GreedyCoverOutcome run_greedy_cover(const RiskModel& model,
                                                  double hit_threshold);

// Utilities of every risk against the *initial* failure signature (used by
// diagnostics and tests; the engine recomputes these per iteration).
[[nodiscard]] std::vector<RiskUtility> initial_utilities(
    const RiskModel& model);

}  // namespace scout
