// SCOUT fault localization (paper Algorithm 1 + Algorithm 2).
//
// Stage 1: greedy max-coverage restricted to risks with hit ratio exactly 1
// (all dependents failed). Stage 2: for observations stage 1 leaves
// unexplained — typically partial object faults whose hit ratio < 1 — look
// up the controller change log and add the failed-edge objects that were
// recently modified. "Despite its simplicity, this heuristic makes huge
// improvement in accuracy" (§IV-C).
#pragma once

#include "src/common/sim_clock.h"
#include "src/localization/localizer.h"
#include "src/policy/change_log.h"

namespace scout {

class ScoutLocalizer {
 public:
  struct Options {
    // How far back "recently applied actions" reaches in the change log.
    std::int64_t change_window_ms = 60'000;
    // Stage-1 hit-ratio threshold. 1.0 per the paper; exposed for the
    // ablation bench only.
    double stage1_threshold = 1.0;
    // Ablation switch: disable the change-log stage entirely.
    bool enable_stage2 = true;
  };

  ScoutLocalizer() = default;
  explicit ScoutLocalizer(Options options) : options_(options) {}

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  // `now` anchors the recency window into `change_log`.
  [[nodiscard]] LocalizationResult localize(const RiskModel& model,
                                            const ChangeLog& change_log,
                                            SimTime now) const;

 private:
  Options options_;
};

}  // namespace scout
