#include "src/localization/score.h"

#include <algorithm>
#include <stdexcept>

#include "src/localization/greedy_cover.h"

namespace scout {

bool LocalizationResult::contains(ObjectRef obj) const noexcept {
  return std::find(hypothesis.begin(), hypothesis.end(), obj) !=
         hypothesis.end();
}

ScoreLocalizer::ScoreLocalizer(double hit_threshold)
    : threshold_(hit_threshold) {
  if (threshold_ <= 0.0 || threshold_ > 1.0) {
    throw std::invalid_argument{"SCORE hit threshold must be in (0, 1]"};
  }
}

LocalizationResult ScoreLocalizer::localize(const RiskModel& model) const {
  const GreedyCoverOutcome cover = run_greedy_cover(model, threshold_);
  LocalizationResult result;
  result.hypothesis = cover.hypothesis;
  result.observations_total = cover.observations_total;
  result.observations_explained =
      cover.observations_total - cover.unexplained.size();
  result.iterations = cover.iterations;
  return result;
}

}  // namespace scout
