// Hash composition helpers for aggregate keys (pairs, triplets, rule fields).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace scout {

// boost::hash_combine-style mixing with a 64-bit constant.
inline void hash_combine(std::size_t& seed, std::size_t value) noexcept {
  seed ^= value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
}

template <typename... Ts>
[[nodiscard]] std::size_t hash_all(const Ts&... vs) noexcept {
  std::size_t seed = 0;
  (hash_combine(seed, std::hash<Ts>{}(vs)), ...);
  return seed;
}

struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const noexcept {
    return hash_all(p.first, p.second);
  }
};

}  // namespace scout
