// Hash composition helpers for aggregate keys (pairs, triplets, rule fields).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>

namespace scout {

// boost::hash_combine-style mixing with a 64-bit constant.
inline void hash_combine(std::size_t& seed, std::size_t value) noexcept {
  seed ^= value + 0x9E3779B97F4A7C15ULL + (seed << 6) + (seed >> 2);
}

template <typename... Ts>
[[nodiscard]] std::size_t hash_all(const Ts&... vs) noexcept {
  std::size_t seed = 0;
  (hash_combine(seed, std::hash<Ts>{}(vs)), ...);
  return seed;
}

// splitmix64-style mixer for hand-rolled hash paths (flat tables that
// probe with their own layout rather than std::hash). Shared by the BDD
// unique/op-cache tables and the checker's packed match keys.
[[nodiscard]] inline std::uint64_t mix3_u64(std::uint64_t a, std::uint64_t b,
                                            std::uint64_t c) noexcept {
  std::uint64_t h = a * 0x9E3779B97F4A7C15ULL;
  h ^= b * 0xBF58476D1CE4E5B9ULL;
  h ^= c * 0x94D049BB133111EBULL;
  h ^= h >> 29;
  h *= 0xBF58476D1CE4E5B9ULL;
  h ^= h >> 32;
  return h;
}

// Smallest power of two >= n (n = 0 or 1 gives 1).
[[nodiscard]] inline std::size_t next_pow2(std::size_t n) noexcept {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

struct PairHash {
  template <typename A, typename B>
  std::size_t operator()(const std::pair<A, B>& p) const noexcept {
    return hash_all(p.first, p.second);
  }
};

}  // namespace scout
