// Deterministic random number generation for reproducible experiments.
//
// Every experiment in the paper reproduction is seeded; two runs with the
// same seed must produce bit-identical policies, fault injections and
// therefore metrics. We avoid std::mt19937 + std::*_distribution because
// libstdc++ does not guarantee cross-version distribution stability; the
// generator and all distributions here are self-contained.
#pragma once

#include <cstdint>
#include <vector>

namespace scout {

// SplitMix64: used to seed the main generator and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Deterministic seed derivation for experiment fan-out: folds `value` into
// `seed` with a full splitmix64 round. Chainable —
// derive_seed(derive_seed(base, cell), run) — so a task's seed is a pure
// function of its grid coordinates, never of thread count or execution
// order. The +1 keeps derive_seed(s, 0) != splitmix64(s).
[[nodiscard]] constexpr std::uint64_t derive_seed(std::uint64_t seed,
                                                  std::uint64_t value) noexcept {
  std::uint64_t s = seed ^ (0x9E3779B97F4A7C15ULL * (value + 1));
  return splitmix64(s);
}

// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5C0075C0075ULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  // Uniform integer in [0, bound). Lemire's unbiased multiply-shift method.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  // Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  // Sample k distinct indices from [0, n) (k <= n), order unspecified.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k);

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

// Zipf(s, n) sampler over {0, .., n-1}; rank 0 is the most popular.
// Inverse-CDF over precomputed cumulative weights — O(log n) per draw,
// exact and deterministic (rejection samplers give platform-dependent
// draw counts).
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  [[nodiscard]] std::size_t operator()(Rng& rng) const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace scout
