#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <iomanip>

namespace scout {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  s.p50 = percentile_sorted(values, 0.50);
  s.p90 = percentile_sorted(values, 0.90);
  s.p99 = percentile_sorted(values, 0.99);
  return s;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : n_(samples.size()) {
  std::sort(samples.begin(), samples.end());
  points_.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Collapse runs of equal values into the last (highest-cumulative) point.
    if (i + 1 < samples.size() && samples[i + 1] == samples[i]) continue;
    points_.push_back(Point{
        samples[i],
        static_cast<double>(i + 1) / static_cast<double>(samples.size())});
  }
}

double EmpiricalCdf::at(double x) const noexcept {
  // Last point with point.x <= x.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double v, const Point& p) { return v < p.x; });
  if (it == points_.begin()) return 0.0;
  return std::prev(it)->cumulative_probability;
}

double EmpiricalCdf::quantile(double q) const noexcept {
  if (points_.empty()) return 0.0;
  auto it = std::lower_bound(
      points_.begin(), points_.end(), q,
      [](const Point& p, double v) { return p.cumulative_probability < v; });
  if (it == points_.end()) return points_.back().x;
  return it->x;
}

std::string EmpiricalCdf::to_table(const std::string& x_label,
                                   std::size_t max_rows) const {
  std::ostringstream os;
  os << std::setw(14) << x_label << std::setw(10) << "CDF" << '\n';
  const std::size_t stride =
      (max_rows > 0 && points_.size() > max_rows)
          ? (points_.size() + max_rows - 1) / max_rows
          : 1;
  for (std::size_t i = 0; i < points_.size(); i += stride) {
    os << std::setw(14) << points_[i].x << std::setw(10) << std::fixed
       << std::setprecision(4) << points_[i].cumulative_probability << '\n';
    os.unsetf(std::ios::fixed);
  }
  if (stride > 1 && (points_.size() - 1) % stride != 0) {
    const auto& last = points_.back();
    os << std::setw(14) << last.x << std::setw(10) << std::fixed
       << std::setprecision(4) << last.cumulative_probability << '\n';
  }
  return os.str();
}

void RunningStat::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace scout
