#include "src/common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>
#include <iomanip>

namespace scout {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

Summary summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  s.p50 = percentile_sorted(values, 0.50);
  s.p90 = percentile_sorted(values, 0.90);
  s.p99 = percentile_sorted(values, 0.99);
  return s;
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : n_(samples.size()) {
  std::sort(samples.begin(), samples.end());
  points_.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    // Collapse runs of equal values into the last (highest-cumulative) point.
    if (i + 1 < samples.size() && samples[i + 1] == samples[i]) continue;
    points_.push_back(Point{
        samples[i],
        static_cast<double>(i + 1) / static_cast<double>(samples.size())});
  }
}

double EmpiricalCdf::at(double x) const noexcept {
  // Last point with point.x <= x.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), x,
      [](double v, const Point& p) { return v < p.x; });
  if (it == points_.begin()) return 0.0;
  return std::prev(it)->cumulative_probability;
}

double EmpiricalCdf::quantile(double q) const noexcept {
  if (points_.empty()) return 0.0;
  auto it = std::lower_bound(
      points_.begin(), points_.end(), q,
      [](const Point& p, double v) { return p.cumulative_probability < v; });
  if (it == points_.end()) return points_.back().x;
  return it->x;
}

std::string EmpiricalCdf::to_table(const std::string& x_label,
                                   std::size_t max_rows) const {
  std::ostringstream os;
  os << std::setw(14) << x_label << std::setw(10) << "CDF" << '\n';
  const std::size_t stride =
      (max_rows > 0 && points_.size() > max_rows)
          ? (points_.size() + max_rows - 1) / max_rows
          : 1;
  for (std::size_t i = 0; i < points_.size(); i += stride) {
    os << std::setw(14) << points_[i].x << std::setw(10) << std::fixed
       << std::setprecision(4) << points_[i].cumulative_probability << '\n';
    os.unsetf(std::ios::fixed);
  }
  if (stride > 1 && (points_.size() - 1) % stride != 0) {
    const auto& last = points_.back();
    os << std::setw(14) << last.x << std::setw(10) << std::fixed
       << std::setprecision(4) << last.cumulative_probability << '\n';
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// LogHistogram
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kSubCount = 1ULL << LogHistogram::kSubBits;

std::uint64_t to_ticks(double value) noexcept {
  if (!(value > 0.0)) return 0;  // negatives and NaN clamp to zero
  const double scaled = value * LogHistogram::kTicksPerUnit;
  constexpr double kMaxTicks = 9.0e18;  // < 2^63, exactly representable
  if (scaled >= kMaxTicks) return static_cast<std::uint64_t>(kMaxTicks);
  return static_cast<std::uint64_t>(std::llround(scaled));
}

double from_ticks(std::uint64_t ticks) noexcept {
  return static_cast<double>(ticks) / LogHistogram::kTicksPerUnit;
}

}  // namespace

std::size_t LogHistogram::bucket_of(std::uint64_t ticks) noexcept {
  if (ticks < kSubCount) return static_cast<std::size_t>(ticks);
  const int msb = 63 - std::countl_zero(ticks);  // >= kSubBits
  const int shift = msb - kSubBits;
  const std::uint64_t sub = (ticks >> shift) & (kSubCount - 1);
  return static_cast<std::size_t>(
      (static_cast<std::uint64_t>(msb - kSubBits + 1) << kSubBits) + sub);
}

std::uint64_t LogHistogram::bucket_lower_ticks(std::size_t index) noexcept {
  if (index < kSubCount) return index;
  const std::uint64_t block = (index >> kSubBits);  // >= 1
  const std::uint64_t sub = index & (kSubCount - 1);
  const int msb = static_cast<int>(block) + kSubBits - 1;
  return (std::uint64_t{1} << msb) + (sub << (msb - kSubBits));
}

std::uint64_t LogHistogram::bucket_upper_ticks(std::size_t index) noexcept {
  if (index < kSubCount) return index;  // exact buckets: width 0 in ticks
  const std::uint64_t block = (index >> kSubBits);
  const int msb = static_cast<int>(block) + kSubBits - 1;
  return bucket_lower_ticks(index) + (std::uint64_t{1} << (msb - kSubBits)) -
         1;
}

void LogHistogram::record(double value) {
  const std::uint64_t ticks = to_ticks(value);
  const std::size_t index = bucket_of(ticks);
  if (index >= counts_.size()) counts_.resize(index + 1, 0);
  ++counts_[index];
  sum_ += value;
  if (count_ == 0 || ticks < min_ticks_) {
    min_ticks_ = ticks;
    min_ = value;
  }
  if (count_ == 0 || ticks > max_ticks_) {
    max_ticks_ = ticks;
    max_ = value;
  }
  ++count_;
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  sum_ += other.sum_;
  if (count_ == 0 || other.min_ticks_ < min_ticks_) {
    min_ticks_ = other.min_ticks_;
    min_ = other.min_;
  }
  if (count_ == 0 || other.max_ticks_ > max_ticks_) {
    max_ticks_ = other.max_ticks_;
    max_ = other.max_;
  }
  count_ += other.count_;
}

LogHistogram::Bounds LogHistogram::quantile_bounds(double q) const noexcept {
  if (count_ == 0) return Bounds{};
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile (1-based); q = 0 maps to the first sample.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(q * static_cast<double>(count_))));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) {
      return Bounds{from_ticks(bucket_lower_ticks(i)),
                    from_ticks(bucket_upper_ticks(i))};
    }
  }
  return Bounds{min(), max()};  // unreachable when counts are consistent
}

double LogHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  const Bounds b = quantile_bounds(q);
  // Clamp the midpoint estimate into the observed range so quantile
  // estimates never escape [min, max] (the top bucket's midpoint can
  // overshoot the largest recorded sample).
  return std::clamp(0.5 * (b.lower + b.upper), min(), max());
}

std::vector<LogHistogram::Bucket> LogHistogram::buckets() const {
  std::vector<Bucket> out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    out.push_back(Bucket{from_ticks(bucket_lower_ticks(i)),
                         from_ticks(bucket_upper_ticks(i)), counts_[i]});
  }
  return out;
}

bool operator==(const LogHistogram& a, const LogHistogram& b) noexcept {
  if (a.count_ != b.count_) return false;
  if (a.count_ != 0 &&
      (a.min_ticks_ != b.min_ticks_ || a.max_ticks_ != b.max_ticks_)) {
    return false;
  }
  const std::size_t common = std::min(a.counts_.size(), b.counts_.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (a.counts_[i] != b.counts_[i]) return false;
  }
  const auto& longer = a.counts_.size() > common ? a.counts_ : b.counts_;
  for (std::size_t i = common; i < longer.size(); ++i) {
    if (longer[i] != 0) return false;
  }
  return true;
}

void RunningStat::add(double x) noexcept {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace scout
