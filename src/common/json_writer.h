// Minimal streaming JSON writer for reports and tool output. Handles
// escaping and comma placement; callers are responsible for balanced
// begin/end calls (checked with assertions in debug builds).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace scout {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Key for the next value (only inside an object).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view{v}); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  // key+value in one call.
  template <typename T>
  JsonWriter& field(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  [[nodiscard]] std::string str() const { return out_.str(); }

  static std::string escape(std::string_view raw);

 private:
  void comma_if_needed();
  void mark_value_written();

  std::ostringstream out_;
  // true = a value has already been written at this nesting level.
  std::vector<bool> has_value_{false};
  bool pending_key_ = false;
};

}  // namespace scout
