// Simulated time. The deployment simulator, change logs, fault logs and
// the event-correlation engine all share one monotonically advancing clock
// so that "fault log active when the change was made" is a well-defined
// predicate, exactly as the paper's correlation step requires (§V-A).
#pragma once

#include <cstdint>
#include <ostream>

namespace scout {

// Milliseconds since simulation start. A plain strong type, not
// std::chrono, because simulated time never interacts with wall time.
class SimTime {
 public:
  constexpr SimTime() noexcept = default;
  constexpr explicit SimTime(std::int64_t ms) noexcept : ms_(ms) {}

  [[nodiscard]] constexpr std::int64_t millis() const noexcept { return ms_; }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;
  friend constexpr SimTime operator+(SimTime t, std::int64_t ms) noexcept {
    return SimTime{t.ms_ + ms};
  }
  friend constexpr std::int64_t operator-(SimTime a, SimTime b) noexcept {
    return a.ms_ - b.ms_;
  }
  friend std::ostream& operator<<(std::ostream& os, SimTime t) {
    return os << t.ms_ << "ms";
  }

 private:
  std::int64_t ms_ = 0;
};

class SimClock {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  void advance(std::int64_t ms) noexcept { now_ = now_ + ms; }

  // Returns the time *after* advancing — convenient for stamping a
  // sequence of events that must have distinct, increasing timestamps.
  SimTime tick(std::int64_t ms = 1) noexcept {
    advance(ms);
    return now_;
  }

  // Rewind/restore to a recorded watermark. Only the repair journal may
  // move time backwards: it truncates every log stamped after `t` in the
  // same pass, so monotonicity over *surviving* records is preserved.
  void reset_to(SimTime t) noexcept { now_ = t; }

 private:
  SimTime now_{};
};

}  // namespace scout
