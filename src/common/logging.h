// Minimal leveled logger. Experiments run millions of simulated operations;
// logging defaults to Warn so benches stay quiet, and tests can raise the
// level to debug a failure. The level is set once at startup and read-only
// while experiment campaigns run; each message is emitted as a single
// stream insertion so lines from concurrent runtime workers don't
// interleave mid-line.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace scout {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  static LogLevel& level() noexcept {
    static LogLevel lvl = LogLevel::kWarn;
    return lvl;
  }

  static bool enabled(LogLevel lvl) noexcept {
    return static_cast<int>(lvl) >= static_cast<int>(level());
  }

  static void write(LogLevel lvl, std::string_view component,
                    std::string_view message) {
    if (!enabled(lvl)) return;
    static constexpr std::string_view names[] = {"DEBUG", "INFO", "WARN",
                                                 "ERROR"};
    std::string line;
    line.reserve(message.size() + component.size() + 16);
    line.append("[").append(names[static_cast<int>(lvl)]).append("] ");
    line.append(component).append(": ").append(message).append("\n");
    std::clog << line;
  }
};

#define SCOUT_LOG(lvl, component, expr)                        \
  do {                                                         \
    if (::scout::Logger::enabled(lvl)) {                       \
      std::ostringstream scout_log_os_;                        \
      scout_log_os_ << expr;                                   \
      ::scout::Logger::write(lvl, component, scout_log_os_.str()); \
    }                                                          \
  } while (0)

#define SCOUT_DEBUG(component, expr) \
  SCOUT_LOG(::scout::LogLevel::kDebug, component, expr)
#define SCOUT_INFO(component, expr) \
  SCOUT_LOG(::scout::LogLevel::kInfo, component, expr)
#define SCOUT_WARN(component, expr) \
  SCOUT_LOG(::scout::LogLevel::kWarn, component, expr)
#define SCOUT_ERROR(component, expr) \
  SCOUT_LOG(::scout::LogLevel::kError, component, expr)

}  // namespace scout
