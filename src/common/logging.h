// Leveled, per-subsystem-tagged logging. Experiments run millions of
// simulated operations; logging defaults to Warn so benches stay quiet,
// and the `SCOUT_LOG` environment variable raises or lowers it without a
// rebuild:
//
//   SCOUT_LOG=debug                 every subsystem at Debug
//   SCOUT_LOG=info,stream=debug     global Info, the "stream" tag at Debug
//   SCOUT_LOG=warn,bdd=error        silence "bdd" below Error
//
// Tags are short subsystem names ("stream", "bdd", "runtime", "repair",
// "telemetry", "bench", ...). Unknown tokens are ignored, so a typo can
// never crash a run. The configuration is parsed once on first use and
// read-only afterwards; each message is emitted as a single stream
// insertion so lines from concurrent runtime workers don't interleave
// mid-line.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace scout {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

class Logger {
 public:
  // Global threshold (tags without an override use this). Settable by
  // tests; initialized from SCOUT_LOG on first access.
  static LogLevel& level() noexcept;

  // Threshold for one subsystem tag: its SCOUT_LOG override when present,
  // the global level otherwise.
  static LogLevel tag_level(std::string_view tag) noexcept;

  static bool enabled(LogLevel lvl, std::string_view tag) noexcept {
    return static_cast<int>(lvl) >= static_cast<int>(tag_level(tag));
  }

  static void write(LogLevel lvl, std::string_view tag,
                    std::string_view message);

  // Re-parse `spec` as if it were SCOUT_LOG (tests; empty = reset to the
  // environment's configuration).
  static void configure(std::string_view spec);
};

#define SCOUT_LOG(lvl, tag, expr)                                  \
  do {                                                             \
    if (::scout::Logger::enabled(lvl, tag)) {                      \
      std::ostringstream scout_log_os_;                            \
      scout_log_os_ << expr;                                       \
      ::scout::Logger::write(lvl, tag, scout_log_os_.str());       \
    }                                                              \
  } while (0)

#define SCOUT_DEBUG(tag, expr) \
  SCOUT_LOG(::scout::LogLevel::kDebug, tag, expr)
#define SCOUT_INFO(tag, expr) \
  SCOUT_LOG(::scout::LogLevel::kInfo, tag, expr)
#define SCOUT_WARN(tag, expr) \
  SCOUT_LOG(::scout::LogLevel::kWarn, tag, expr)
#define SCOUT_ERROR(tag, expr) \
  SCOUT_LOG(::scout::LogLevel::kError, tag, expr)

}  // namespace scout
