#include "src/common/rng.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace scout {

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire 2019: multiply-shift with rejection of the biased region.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::between(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(below(span));
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument{"sample_indices: k > n"};
  // Floyd's algorithm: O(k) expected work, no O(n) scratch.
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(k);
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = below(j + 1);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument{"ZipfDistribution: n == 0"};
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against accumulated round-off
}

std::size_t ZipfDistribution::operator()(Rng& rng) const noexcept {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace scout
