#include "src/common/logging.h"

#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace scout {
namespace {

struct LogConfig {
  LogLevel global = LogLevel::kWarn;
  std::unordered_map<std::string, LogLevel> tags;
};

bool parse_level(std::string_view token, LogLevel& out) noexcept {
  if (token == "debug") out = LogLevel::kDebug;
  else if (token == "info") out = LogLevel::kInfo;
  else if (token == "warn" || token == "warning") out = LogLevel::kWarn;
  else if (token == "error") out = LogLevel::kError;
  else return false;
  return true;
}

// Spec grammar: comma-separated tokens, each either a bare level (sets the
// global threshold) or `tag=level`. Whitespace-free; malformed tokens are
// skipped.
LogConfig parse_spec(std::string_view spec) {
  LogConfig cfg;
  while (!spec.empty()) {
    const std::size_t comma = spec.find(',');
    std::string_view token = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view{}
                                           : spec.substr(comma + 1);
    if (token.empty()) continue;
    const std::size_t eq = token.find('=');
    LogLevel lvl{};
    if (eq == std::string_view::npos) {
      if (parse_level(token, lvl)) cfg.global = lvl;
    } else if (parse_level(token.substr(eq + 1), lvl)) {
      cfg.tags.emplace(std::string(token.substr(0, eq)), lvl);
    }
  }
  return cfg;
}

LogConfig config_from_env() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): called once from the config()
  // magic-static initializer; nothing in this process calls setenv.
  const char* env = std::getenv("SCOUT_LOG");
  return env != nullptr ? parse_spec(env) : LogConfig{};
}

LogConfig& config() {
  static LogConfig cfg = config_from_env();
  return cfg;
}

std::string_view level_name(LogLevel lvl) noexcept {
  switch (lvl) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel& Logger::level() noexcept { return config().global; }

LogLevel Logger::tag_level(std::string_view tag) noexcept {
  const LogConfig& cfg = config();
  if (!cfg.tags.empty()) {
    const auto it = cfg.tags.find(std::string(tag));
    if (it != cfg.tags.end()) return it->second;
  }
  return cfg.global;
}

void Logger::write(LogLevel lvl, std::string_view tag,
                   std::string_view message) {
  std::string line;
  line.reserve(tag.size() + message.size() + 16);
  line.append("[scout:").append(tag).append("] ");
  line.append(level_name(lvl)).append(" ");
  line.append(message).append("\n");
  // One insertion per line: concurrent workers never interleave mid-line.
  std::clog << line;
}

void Logger::configure(std::string_view spec) {
  config() = spec.empty() ? config_from_env() : parse_spec(spec);
}

}  // namespace scout
