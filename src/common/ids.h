// Strongly-typed identifiers for every first-class entity in the system.
//
// Raw integers invite cross-wiring an EPG id into a VRF field; the tag
// parameter makes each id a distinct type while keeping the representation
// a trivially-copyable 32-bit value (cheap to store in rules and BDD keys).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace scout {

template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;

  constexpr Id() noexcept = default;
  constexpr explicit Id(value_type v) noexcept : value_(v) {}

  [[nodiscard]] constexpr value_type value() const noexcept { return value_; }
  [[nodiscard]] constexpr bool valid() const noexcept {
    return value_ != kInvalid;
  }

  static constexpr Id invalid() noexcept { return Id{}; }

  friend constexpr auto operator<=>(Id, Id) noexcept = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    return os << id.value_;
  }

 private:
  static constexpr value_type kInvalid =
      std::numeric_limits<value_type>::max();
  value_type value_ = kInvalid;
};

struct TenantTag {};
struct VrfTag {};
struct EpgTag {};
struct EndpointTag {};
struct ContractTag {};
struct FilterTag {};
struct SwitchTag {};

using TenantId = Id<TenantTag>;
using VrfId = Id<VrfTag>;
using EpgId = Id<EpgTag>;
using EndpointId = Id<EndpointTag>;
using ContractId = Id<ContractTag>;
using FilterId = Id<FilterTag>;
using SwitchId = Id<SwitchTag>;

}  // namespace scout

namespace std {
template <typename Tag>
struct hash<scout::Id<Tag>> {
  size_t operator()(scout::Id<Tag> id) const noexcept {
    // Fibonacci scrambling so consecutive ids spread across buckets.
    return static_cast<size_t>(id.value()) * 0x9E3779B97F4A7C15ULL;
  }
};
}  // namespace std
