// Descriptive statistics used by the benchmark harnesses: means, percentiles
// and empirical CDFs (Figure 3 is a CDF plot; Figures 8-10 report means over
// repeated runs).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace scout {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

[[nodiscard]] Summary summarize(std::vector<double> values);

// Linear-interpolation percentile on a *sorted* vector, q in [0, 1].
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

// Empirical CDF with one point per distinct sample value: (x, P[X <= x]).
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  struct Point {
    double x;
    double cumulative_probability;
  };

  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] std::size_t sample_count() const noexcept { return n_; }

  // P[X <= x].
  [[nodiscard]] double at(double x) const noexcept;

  // Smallest sample value v with P[X <= v] >= q.
  [[nodiscard]] double quantile(double q) const noexcept;

  // Render as aligned "x cdf" rows for the bench harnesses.
  [[nodiscard]] std::string to_table(const std::string& x_label,
                                     std::size_t max_rows = 0) const;

 private:
  std::vector<Point> points_;
  std::size_t n_ = 0;
};

// Log2-bucketed histogram with sub-bucket refinement — the one latency /
// size distribution type shared by the benches and src/telemetry.
//
// Values are quantized to fixed-point "ticks" (1/1024 of a unit, so a
// histogram of milliseconds resolves to ~1 µs) and bucketed by the
// HDR-histogram scheme: ticks below 2^kSubBits index a bucket exactly;
// larger ticks fall into one of 2^kSubBits sub-buckets of their octave, so
// a bucket's relative width never exceeds 2^-kSubBits (12.5%).
//
// Merging adds bucket counts — a pure integer operation, so merging shard
// histograms is *exact* and independent of merge order (min/max/count too;
// `sum` is a double and exact only for exactly-representable inputs).
// tests/test_stats.cpp pins merge-order invariance and the quantile-bound
// guarantee below.
class LogHistogram {
 public:
  static constexpr int kSubBits = 3;       // 8 sub-buckets per octave
  static constexpr double kTicksPerUnit = 1024.0;

  void record(double value);

  // Exact bucket-count merge; other's min/max/count/sum fold in.
  void merge(const LogHistogram& other);

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }

  // Bounds of the bucket holding the q-quantile (rank ceil(q*count), ties
  // toward the lower rank): the true q-quantile of the recorded samples
  // lies in [lower, upper]. quantile(q) is the bucket midpoint — a point
  // estimate within half a bucket width (<= 6.25% relative error) of the
  // exact sample quantile.
  struct Bounds {
    double lower = 0.0;
    double upper = 0.0;
  };
  [[nodiscard]] Bounds quantile_bounds(double q) const noexcept;
  [[nodiscard]] double quantile(double q) const noexcept;

  // Occupied buckets as (lower, upper, count), ascending — exporter food.
  struct Bucket {
    double lower = 0.0;
    double upper = 0.0;
    std::uint64_t count = 0;
  };
  [[nodiscard]] std::vector<Bucket> buckets() const;

  // Structural equality over bucket counts (trailing empty buckets
  // ignored), count and tick-quantized extremes — the definition the
  // merge-order-invariance tests compare with.
  friend bool operator==(const LogHistogram& a,
                         const LogHistogram& b) noexcept;

 private:
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t ticks) noexcept;
  [[nodiscard]] static std::uint64_t bucket_lower_ticks(
      std::size_t index) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper_ticks(
      std::size_t index) noexcept;

  std::vector<std::uint64_t> counts_;  // grown to the highest seen bucket
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t min_ticks_ = 0;
  std::uint64_t max_ticks_ = 0;
};

// Welford online mean/variance accumulator for streaming metrics.
class RunningStat {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace scout
