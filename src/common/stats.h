// Descriptive statistics used by the benchmark harnesses: means, percentiles
// and empirical CDFs (Figure 3 is a CDF plot; Figures 8-10 report means over
// repeated runs).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace scout {

struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1)
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

[[nodiscard]] Summary summarize(std::vector<double> values);

// Linear-interpolation percentile on a *sorted* vector, q in [0, 1].
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

// Empirical CDF with one point per distinct sample value: (x, P[X <= x]).
class EmpiricalCdf {
 public:
  explicit EmpiricalCdf(std::vector<double> samples);

  struct Point {
    double x;
    double cumulative_probability;
  };

  [[nodiscard]] const std::vector<Point>& points() const noexcept {
    return points_;
  }
  [[nodiscard]] std::size_t sample_count() const noexcept { return n_; }

  // P[X <= x].
  [[nodiscard]] double at(double x) const noexcept;

  // Smallest sample value v with P[X <= v] >= q.
  [[nodiscard]] double quantile(double q) const noexcept;

  // Render as aligned "x cdf" rows for the bench harnesses.
  [[nodiscard]] std::string to_table(const std::string& x_label,
                                     std::size_t max_rows = 0) const;

 private:
  std::vector<Point> points_;
  std::size_t n_ = 0;
};

// Welford online mean/variance accumulator for streaming metrics.
class RunningStat {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace scout
