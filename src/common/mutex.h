// Capability-annotated synchronization primitives.
//
// libstdc++'s std::mutex carries no thread-safety attributes, so code using
// it directly is invisible to clang's -Wthread-safety analysis. These thin
// wrappers add the attributes (and nothing else — Mutex is exactly a
// std::mutex, CondVar exactly a std::condition_variable), letting classes
// declare members SCOUT_GUARDED_BY(mu_) and have the compiler prove every
// access happens under the right lock.
//
// Two capability families:
//
//  * Mutex / MutexLock / CondVar — real mutual exclusion (ThreadPool's
//    queue+completion protocol, MetricsRegistry registration).
//
//  * SerialCapability / SerialGuard — a zero-cost capability standing for a
//    single-threaded *phase contract* rather than a lock (EventBus's
//    "driver publishes, workers only read drained spans", MonitorLoop's
//    driver-only shard state). Statically, members guarded by it can only
//    be reached through methods that acquire the capability; dynamically,
//    debug builds bind the capability to the first acquiring thread and
//    SCOUT_DCHECK every later acquisition against it — so a second thread
//    sneaking into a serial-by-contract class dies at the entry point
//    instead of corrupting state. Release builds compile the guard to
//    nothing: the hot path stays lock-free and atomic-free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "src/common/check.h"
#include "src/common/thread_annotations.h"

namespace scout {

class CondVar;

// std::mutex with capability attributes.
class SCOUT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SCOUT_ACQUIRE() { mu_.lock(); }
  void unlock() SCOUT_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() SCOUT_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock of a Mutex (the annotated std::lock_guard).
class SCOUT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SCOUT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SCOUT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// std::condition_variable over Mutex. wait() requires the mutex held, like
// the standard one — but here the compiler enforces it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, waits, reacquires. Callers loop on their
  // predicate as usual; with the annotations, the predicate's guarded reads
  // inside the loop are proven to happen under the lock.
  void wait(Mutex& mu) SCOUT_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands ownership back so the MutexLock destructor stays the
    // one true unlock.
    std::unique_lock<std::mutex> native{mu.mu_, std::adopt_lock};
    cv_.wait(native);
    native.release();
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

// Debug-only thread affinity check: binds to the first thread that calls
// check(), then dies if any other thread ever does. reset() unbinds (for
// handing a serial object to another owner between phases).
class ThreadChecker {
 public:
#if SCOUT_ENABLE_DCHECKS
  void check(const char* what) const noexcept {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // unbound
    // First caller binds; the CAS gives later callers an acquire view of
    // the binding. Affinity violations are exactly what this catches, so
    // the failure message names the contract, not the raw ids.
    if (!owner_.compare_exchange_strong(expected, self,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
      SCOUT_CHECK(expected == self,
                  "serial contract violated: " << what
                      << " entered from a second thread");
    }
  }
  void reset() noexcept { owner_.store({}, std::memory_order_release); }

 private:
  mutable std::atomic<std::thread::id> owner_{};
#else
  void check(const char*) const noexcept {}
  void reset() noexcept {}
#endif
};

// A capability with no lock behind it: it models the contract "these
// members belong to one serial phase / one thread". Methods of the owning
// class take a SerialGuard, which (a) satisfies the static analysis for
// every SCOUT_GUARDED_BY(serial_) member they touch and (b) in debug
// builds enforces single-thread affinity via ThreadChecker.
class SCOUT_CAPABILITY("serial phase") SerialCapability {
 public:
  explicit SerialCapability(const char* what) noexcept : what_(what) {}
  SerialCapability(const SerialCapability&) = delete;
  SerialCapability& operator=(const SerialCapability&) = delete;

  void acquire() const SCOUT_ACQUIRE() { checker_.check(what_); }
  void release() const SCOUT_RELEASE() {}

  // Unbind the debug thread affinity (ownership handoff between phases;
  // the caller is responsible for the happens-before edge).
  void rebind() noexcept { checker_.reset(); }

 private:
  const char* what_;
  ThreadChecker checker_;
};

class SCOUT_SCOPED_CAPABILITY SerialGuard {
 public:
  explicit SerialGuard(const SerialCapability& serial) SCOUT_ACQUIRE(serial)
      : serial_(serial) {
    serial_.acquire();
  }
  ~SerialGuard() SCOUT_RELEASE() { serial_.release(); }

  SerialGuard(const SerialGuard&) = delete;
  SerialGuard& operator=(const SerialGuard&) = delete;

 private:
  const SerialCapability& serial_;
};

}  // namespace scout
