// Clang thread-safety (capability) analysis macros.
//
// These wrap the attributes behind `clang++ -Wthread-safety` so the locking
// discipline of every shared-state class is a *compile-time proof*, not a
// comment: members tagged SCOUT_GUARDED_BY(mu) can only be touched while mu
// is held, functions tagged SCOUT_REQUIRES(mu) can only be called with mu
// held, and RAII guards tagged SCOUT_SCOPED_CAPABILITY teach the analysis
// what their constructor/destructor acquire and release. On compilers
// without the attributes (gcc, MSVC) every macro expands to nothing, so the
// annotations cost exactly zero everywhere and are verified by the CI
// thread-safety job (clang, -Wthread-safety -Werror=thread-safety-analysis).
//
// The standard-library mutex types are NOT annotated under libstdc++, so
// annotated code uses the wrappers in src/common/mutex.h (scout::Mutex /
// MutexLock / CondVar) instead of std::mutex directly — the wrappers carry
// the capability attributes the analysis needs.
//
// Naming follows the Clang documentation's canonical set
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed SCOUT_.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define SCOUT_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define SCOUT_THREAD_ANNOTATION_(x)  // no-op outside Clang
#endif

// -- type annotations --------------------------------------------------------

// A class that models a capability (lock, role, phase). `x` is the
// capability kind shown in diagnostics, e.g. "mutex" or "serial phase".
#define SCOUT_CAPABILITY(x) SCOUT_THREAD_ANNOTATION_(capability(x))

// An RAII class whose constructor acquires and destructor releases a
// capability (see MutexLock / SerialGuard).
#define SCOUT_SCOPED_CAPABILITY SCOUT_THREAD_ANNOTATION_(scoped_lockable)

// -- data annotations --------------------------------------------------------

// Reads and writes of the member require holding `x` (writes exclusively).
#define SCOUT_GUARDED_BY(x) SCOUT_THREAD_ANNOTATION_(guarded_by(x))

// As above, but for the data *pointed to* by a pointer member.
#define SCOUT_PT_GUARDED_BY(x) SCOUT_THREAD_ANNOTATION_(pt_guarded_by(x))

// Lock-ordering declarations (deadlock detection).
#define SCOUT_ACQUIRED_BEFORE(...) \
  SCOUT_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define SCOUT_ACQUIRED_AFTER(...) \
  SCOUT_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

// -- function annotations ----------------------------------------------------

// Caller must hold the capability (exclusively / shared) on entry, and the
// function does not release it.
#define SCOUT_REQUIRES(...) \
  SCOUT_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))
#define SCOUT_REQUIRES_SHARED(...) \
  SCOUT_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The function acquires the capability and holds it on return.
#define SCOUT_ACQUIRE(...) \
  SCOUT_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define SCOUT_ACQUIRE_SHARED(...) \
  SCOUT_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))

// The function releases a capability the caller held on entry.
#define SCOUT_RELEASE(...) \
  SCOUT_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define SCOUT_RELEASE_SHARED(...) \
  SCOUT_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// The function acquires the capability iff it returns `b`.
#define SCOUT_TRY_ACQUIRE(...) \
  SCOUT_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Caller must NOT hold the capability (non-reentrancy guard).
#define SCOUT_EXCLUDES(...) \
  SCOUT_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// Runtime-verified assertion that the capability is held (the analysis
// trusts it from this point in the function).
#define SCOUT_ASSERT_CAPABILITY(x) \
  SCOUT_THREAD_ANNOTATION_(assert_capability(x))

// The function returns a reference to the named capability.
#define SCOUT_RETURN_CAPABILITY(x) SCOUT_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch: disable the analysis for one function. Every use must carry
// a comment explaining why the protocol cannot be expressed.
#define SCOUT_NO_THREAD_SAFETY_ANALYSIS \
  SCOUT_THREAD_ANNOTATION_(no_thread_safety_analysis)
