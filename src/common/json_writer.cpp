#include "src/common/json_writer.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace scout {

std::string JsonWriter::escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (pending_key_) return;  // value follows its key, no comma
  if (!has_value_.empty() && has_value_.back()) out_ << ',';
}

void JsonWriter::mark_value_written() {
  // Completing any value — keyed or not — means the current nesting level
  // now has content (the next sibling needs a comma).
  pending_key_ = false;
  if (!has_value_.empty()) has_value_.back() = true;
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  mark_value_written();
  out_ << '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  assert(has_value_.size() > 1);
  has_value_.pop_back();
  out_ << '}';
  if (!has_value_.empty()) has_value_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  mark_value_written();
  out_ << '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  assert(has_value_.size() > 1);
  has_value_.pop_back();
  out_ << ']';
  if (!has_value_.empty()) has_value_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  assert(!pending_key_);
  comma_if_needed();
  out_ << '"' << escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_if_needed();
  out_ << '"' << escape(v) << '"';
  mark_value_written();
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out_ << buf;
  } else {
    out_ << "null";  // JSON has no NaN/Inf
  }
  mark_value_written();
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  out_ << v;
  mark_value_written();
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  out_ << v;
  mark_value_written();
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ << (v ? "true" : "false");
  mark_value_written();
  return *this;
}

JsonWriter& JsonWriter::null() {
  comma_if_needed();
  out_ << "null";
  mark_value_written();
  return *this;
}

}  // namespace scout
