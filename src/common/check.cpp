#include "src/common/check.h"

#include <cstdio>
#include <cstdlib>

namespace scout::detail {

void check_failed(const char* expr, const char* file, int line,
                  const char* message) noexcept {
  // stdio, not iostreams: the failure may fire inside code that holds the
  // very locks an iostream sink would need, and fprintf of one buffer is
  // async-signal-tolerant enough for a path that ends in abort().
  if (message != nullptr && message[0] != '\0') {
    std::fprintf(stderr, "SCOUT_CHECK failed: %s at %s:%d: %s\n", expr, file,
                 line, message);
  } else {
    std::fprintf(stderr, "SCOUT_CHECK failed: %s at %s:%d\n", expr, file,
                 line);
  }
  std::fflush(stderr);
  std::abort();
}

}  // namespace scout::detail
