#include "src/common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace scout {
namespace {

std::atomic<CheckFailureHook> g_failure_hook{nullptr};
// First failing thread wins; a second failure (concurrent, or raised by
// the hook itself) skips the hook and aborts directly.
std::atomic_flag g_hook_entered = ATOMIC_FLAG_INIT;

}  // namespace

void set_check_failure_hook(CheckFailureHook hook) noexcept {
  g_failure_hook.store(hook, std::memory_order_release);
}

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const char* message) noexcept {
  // stdio, not iostreams: the failure may fire inside code that holds the
  // very locks an iostream sink would need, and fprintf of one buffer is
  // async-signal-tolerant enough for a path that ends in abort().
  if (message != nullptr && message[0] != '\0') {
    std::fprintf(stderr, "SCOUT_CHECK failed: %s at %s:%d: %s\n", expr, file,
                 line, message);
  } else {
    std::fprintf(stderr, "SCOUT_CHECK failed: %s at %s:%d\n", expr, file,
                 line);
  }
  std::fflush(stderr);
  if (const CheckFailureHook hook =
          g_failure_hook.load(std::memory_order_acquire);
      hook != nullptr && !g_hook_entered.test_and_set()) {
    hook();
  }
  std::abort();
}

}  // namespace detail
}  // namespace scout
