// Fatal invariant checks: SCOUT_CHECK (always on) and SCOUT_DCHECK
// (debug builds only).
//
//   SCOUT_CHECK(cond);
//   SCOUT_CHECK(cond, "context " << value << " more context");
//   SCOUT_DCHECK(worker < workers(), "worker " << worker << " out of range");
//
// On failure the macro prints the expression text, source location and the
// optional streamed message to stderr, then calls std::abort() — failing
// loudly at the broken invariant instead of corrupting shared state and
// failing somewhere else. CHECK guards contracts whose violation would be
// a correctness bug even in release (quiescence gates, shard exclusivity);
// DCHECK guards hot-path invariants (index bounds, canonical-form
// preconditions) and compiles to nothing when disabled so the lock-free
// paths stay plain stores.
//
// DCHECK is enabled when NDEBUG is not defined (CMake Debug builds) or when
// the build sets -DSCOUT_ENABLE_DCHECKS=1 (the `tsan` preset does, so the
// sanitizer matrix checks invariants at optimized speed). When disabled the
// condition is parsed but never evaluated: operands stay odr-used, so no
// -Wunused warnings appear in release, and no side effects run.
#pragma once

#include <sstream>

namespace scout {

// Last-gasp diagnostics: an optional hook check_failed() invokes — once,
// re-entry guarded — after printing the failure but before abort(). The
// flight recorder arms this to dump its rings next to the core. The hook
// must be noexcept and should tolerate arbitrary program state (it runs
// wherever the invariant broke); a SCOUT_CHECK failing *inside* the hook
// falls through straight to abort().
using CheckFailureHook = void (*)() noexcept;
void set_check_failure_hook(CheckFailureHook hook) noexcept;

namespace detail {

// Prints "SCOUT_CHECK failed: <expr> at <file>:<line>[: <message>]" and
// aborts. Out of line so the macro expansion stays small in hot paths.
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const char* message) noexcept;

// Builds the streamed message then dies. The ostringstream lives here so
// the failure path — not the check site — pays for it.
class CheckFailStream {
 public:
  CheckFailStream(const char* expr, const char* file, int line) noexcept
      : expr_(expr), file_(file), line_(line) {}
  [[noreturn]] ~CheckFailStream() {
    check_failed(expr_, file_, line_, os_.str().c_str());
  }

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  const char* expr_;
  const char* file_;
  int line_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace scout

// SCOUT_CHECK(cond) or SCOUT_CHECK(cond, streamed << message).
// The CheckFailStream construction is parenthesized, not braced-only:
// rescanning inside another macro (EXPECT_DEATH(SCOUT_CHECK(...), ...))
// must not let the braced-init commas split that macro's arguments.
#define SCOUT_CHECK(cond, ...)                                             \
  do {                                                                     \
    if (!(cond)) [[unlikely]] {                                            \
      (::scout::detail::CheckFailStream(#cond, __FILE__, __LINE__)         \
           __VA_OPT__(<< __VA_ARGS__));                                    \
    }                                                                      \
  } while (false)

#if !defined(SCOUT_ENABLE_DCHECKS)
#if !defined(NDEBUG)
#define SCOUT_ENABLE_DCHECKS 1
#else
#define SCOUT_ENABLE_DCHECKS 0
#endif
#endif

#if SCOUT_ENABLE_DCHECKS
#define SCOUT_DCHECK(cond, ...) SCOUT_CHECK(cond __VA_OPT__(, __VA_ARGS__))
#else
// `if (false)` keeps the operands type-checked and odr-used without
// evaluating them; the dead branch folds away at -O1.
#define SCOUT_DCHECK(cond, ...)                                            \
  do {                                                                     \
    if (false) {                                                           \
      (void)(cond);                                                        \
    }                                                                      \
  } while (false)
#endif
