// Statistical policy generator (paper §VI-A "Setup").
//
// The paper's simulation input is a proprietary production-cluster policy:
// ~30 switches, 100s of servers, 6 VRFs, 615 EPGs, 386 contracts, 160
// filters, with the heavy-tailed object-sharing structure of Figure 3
// (most contracts/filters serve < 10 EPG pairs; some VRFs serve > 10,000;
// ~50% of EPGs participate in > 100 pairs; ~80% of switches carry 1,000s
// of pairs). We cannot ship that dataset, so this generator synthesizes
// policies matching the published aggregate counts and Zipf-like sharing
// distributions — the only structure the localization algorithms observe.
//
// The testbed profile matches §VI-A's testbed policy: 36 EPGs, 24
// contracts, 9 filters, 100 EPG pairs, with deliberately low sharing.
#pragma once

#include <cstddef>

#include "src/common/rng.h"
#include "src/policy/network_policy.h"
#include "src/topology/fabric.h"

namespace scout {

struct GeneratorProfile {
  std::size_t switches = 30;
  std::size_t vrfs = 6;
  std::size_t epgs = 615;
  std::size_t contracts = 386;
  std::size_t filters = 160;
  std::size_t target_pairs = 6000;

  // Skews (Zipf exponents). Larger = heavier head. The production values
  // are calibrated so the Figure 3 claims hold simultaneously: ~30k pairs
  // over 386 contracts *and* 80% of contracts below 10 pairs forces a very
  // heavy head (s~=2).
  double epg_popularity_skew = 0.9;    // EPG participation in pairs
  double contract_reuse_skew = 2.0;    // contract sharing across pairs
  double filter_reuse_skew = 1.2;      // filter-rank jitter within contracts
  double vrf_size_skew = 1.1;          // EPG distribution over VRFs
  double switch_popularity_skew = 0.5; // endpoint placement over switches

  std::size_t max_filters_per_contract = 3;
  std::size_t max_entries_per_filter = 2;
  std::size_t min_switches_per_epg = 1;
  std::size_t max_switches_per_epg = 4;

  std::size_t tcam_capacity = 1 << 17;  // large: overflow only when scripted

  // Field-wise equality (defaulted so new knobs are covered automatically;
  // the sweep cache keys on it to decide repair vs rebuild).
  friend bool operator==(const GeneratorProfile&,
                         const GeneratorProfile&) = default;

  // Production-cluster scale (the paper's simulation dataset).
  [[nodiscard]] static GeneratorProfile production();
  // Testbed scale (the paper's hardware testbed policy).
  [[nodiscard]] static GeneratorProfile testbed();
  // Production shape scaled to `switches` leaves (the §VI scalability
  // sweep grows the controller risk model by adding switch/EPG pairs).
  [[nodiscard]] static GeneratorProfile scaled(std::size_t switches);
};

struct GeneratedNetwork {
  Fabric fabric;
  NetworkPolicy policy;
};

// Deterministic for a given (profile, rng state). The returned policy
// always validates: every contract has >= 1 filter, every linked pair
// shares a VRF, every filter/contract is used by >= 1 pair.
[[nodiscard]] GeneratedNetwork generate_network(const GeneratorProfile& profile,
                                                Rng& rng);

}  // namespace scout
