#include "src/workload/three_tier.h"

namespace scout {

ThreeTierNetwork make_three_tier(std::size_t tcam_capacity) {
  ThreeTierNetwork net;
  net.s1 = net.fabric.add_switch("S1", SwitchRole::kLeaf, tcam_capacity);
  net.s2 = net.fabric.add_switch("S2", SwitchRole::kLeaf, tcam_capacity);
  net.s3 = net.fabric.add_switch("S3", SwitchRole::kLeaf, tcam_capacity);

  NetworkPolicy& p = net.policy;
  const TenantId tenant = p.add_tenant("web-service");
  net.vrf = p.add_vrf("VRF:101", tenant);
  net.web = p.add_epg("Web", net.vrf);
  net.app = p.add_epg("App", net.vrf);
  net.db = p.add_epg("DB", net.vrf);

  p.add_endpoint("EP1", net.web, net.s1);
  p.add_endpoint("EP2", net.app, net.s2);
  p.add_endpoint("EP3", net.db, net.s3);

  net.port80 = p.add_filter("port80-allow", {FilterEntry::allow_tcp(80)});
  net.port700 = p.add_filter("port700-allow", {FilterEntry::allow_tcp(700)});

  net.web_app = p.add_contract("Web-App", {net.port80});
  net.app_db = p.add_contract("App-DB", {net.port80, net.port700});

  p.link(net.web, net.app, net.web_app);
  p.link(net.app, net.db, net.app_db);
  return net;
}

}  // namespace scout
