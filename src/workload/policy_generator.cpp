#include "src/workload/policy_generator.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "src/common/hash.h"

namespace scout {

GeneratorProfile GeneratorProfile::production() {
  GeneratorProfile p;
  p.switches = 30;
  p.vrfs = 6;
  p.epgs = 615;
  p.contracts = 386;
  p.filters = 160;
  // Median EPG degree > 100 (Figure 3's "50% of EPGs belong to more than
  // 100 EPG pairs") requires tens of thousands of pairs.
  p.target_pairs = 30'000;
  return p;
}

GeneratorProfile GeneratorProfile::testbed() {
  GeneratorProfile p;
  p.switches = 6;
  p.vrfs = 2;
  p.epgs = 36;
  p.contracts = 24;
  p.filters = 9;
  p.target_pairs = 100;
  // Low sharing degree (paper: testbed accuracy differs from simulation
  // "mainly because of a low degree of risk sharing among EPG pairs").
  p.epg_popularity_skew = 0.2;
  p.contract_reuse_skew = 0.3;
  p.filter_reuse_skew = 0.3;
  p.max_filters_per_contract = 2;
  p.max_switches_per_epg = 2;
  return p;
}

GeneratorProfile GeneratorProfile::scaled(std::size_t switches) {
  GeneratorProfile p = production();
  const double factor =
      static_cast<double>(switches) / static_cast<double>(p.switches);
  p.switches = switches;
  p.epgs = std::max<std::size_t>(
      20, static_cast<std::size_t>(static_cast<double>(p.epgs) * factor));
  p.vrfs = std::max<std::size_t>(
      2, static_cast<std::size_t>(static_cast<double>(p.vrfs) * factor));
  p.contracts = std::max<std::size_t>(
      10,
      static_cast<std::size_t>(static_cast<double>(p.contracts) * factor));
  p.filters = std::max<std::size_t>(
      8, static_cast<std::size_t>(static_cast<double>(p.filters) * factor));
  p.target_pairs = static_cast<std::size_t>(
      static_cast<double>(p.target_pairs) * factor);
  return p;
}

namespace {

constexpr std::uint16_t kServicePorts[] = {22,   53,   80,   110,  143,
                                           443,  700,  3306, 5432, 6379,
                                           8080, 8443, 9090, 9200, 11211};

FilterEntry random_entry(Rng& rng) {
  const std::uint16_t base =
      rng.chance(0.7)
          ? kServicePorts[rng.below(std::size(kServicePorts))]
          : static_cast<std::uint16_t>(1024 + rng.below(60'000));
  if (rng.chance(0.1)) {
    // Occasional port range: exercises ternary range expansion.
    const auto width = static_cast<std::uint16_t>(1 + rng.below(63));
    const std::uint16_t hi =
        static_cast<std::uint16_t>(std::min(65'535, base + width));
    return FilterEntry::allow_range(base, hi);
  }
  return FilterEntry::allow_tcp(base);
}

}  // namespace

GeneratedNetwork generate_network(const GeneratorProfile& profile, Rng& rng) {
  GeneratedNetwork net;
  net.fabric =
      Fabric::leaf_spine(profile.switches, /*n_spines=*/2,
                         profile.tcam_capacity);
  const std::vector<SwitchId> leaves = net.fabric.leaves();

  NetworkPolicy& policy = net.policy;
  const TenantId tenant = policy.add_tenant("prod");

  // -- VRFs and EPG placement into VRFs ---------------------------------------
  std::vector<VrfId> vrfs;
  vrfs.reserve(profile.vrfs);
  for (std::size_t i = 0; i < profile.vrfs; ++i) {
    std::ostringstream name;
    name << "vrf-" << i;
    vrfs.push_back(policy.add_vrf(name.str(), tenant));
  }

  // EPG i draws its VRF from a Zipf over VRFs: one dominant VRF hosts most
  // EPGs (Figure 3: 2-3% of VRFs shared by > 10,000 pairs).
  ZipfDistribution vrf_dist{profile.vrfs, profile.vrf_size_skew};
  std::vector<std::vector<EpgId>> epgs_by_vrf(profile.vrfs);
  std::vector<EpgId> epgs;
  epgs.reserve(profile.epgs);
  for (std::size_t i = 0; i < profile.epgs; ++i) {
    std::size_t v = vrf_dist(rng);
    std::ostringstream name;
    name << "epg-" << i;
    const EpgId epg = policy.add_epg(name.str(), vrfs[v]);
    epgs.push_back(epg);
    epgs_by_vrf[v].push_back(epg);
  }
  // Every VRF needs >= 2 EPGs to form pairs; steal from the largest VRF.
  for (std::size_t v = 0; v < profile.vrfs; ++v) {
    while (epgs_by_vrf[v].size() < 2) {
      const auto biggest = static_cast<std::size_t>(
          std::max_element(epgs_by_vrf.begin(), epgs_by_vrf.end(),
                           [](const auto& a, const auto& b) {
                             return a.size() < b.size();
                           }) -
          epgs_by_vrf.begin());
      if (epgs_by_vrf[biggest].size() <= 2) break;  // give up gracefully
      // Re-home the donor EPG by recreating it in the needy VRF. EPG VRF
      // membership is fixed at creation, so instead move the *last created*
      // EPG id from the donor bucket and rebuild it as a fresh EPG.
      // Simpler and equivalent for generation purposes: create a brand-new
      // EPG in the needy VRF.
      std::ostringstream name;
      name << "epg-fill-" << v << '-' << epgs_by_vrf[v].size();
      const EpgId epg = policy.add_epg(name.str(), vrfs[v]);
      epgs.push_back(epg);
      epgs_by_vrf[v].push_back(epg);
    }
  }

  // -- endpoints: attach each EPG to 1..max switches --------------------------
  ZipfDistribution switch_dist{leaves.size(), profile.switch_popularity_skew};
  const std::size_t span =
      profile.max_switches_per_epg - profile.min_switches_per_epg + 1;
  for (std::size_t i = 0; i < epgs.size(); ++i) {
    // The most popular EPGs (low index) sprawl across more switches.
    std::size_t n_sw = profile.min_switches_per_epg + rng.below(span);
    if (i < epgs.size() / 10) n_sw = profile.max_switches_per_epg;
    n_sw = std::min(n_sw, leaves.size());

    std::unordered_set<std::uint32_t> chosen;
    std::size_t guard = 0;
    while (chosen.size() < n_sw && guard++ < 50 * n_sw) {
      chosen.insert(static_cast<std::uint32_t>(switch_dist(rng)));
    }
    std::size_t ep_idx = 0;
    for (const std::uint32_t sw : chosen) {
      std::ostringstream name;
      name << "ep-" << i << '-' << ep_idx++;
      policy.add_endpoint(name.str(), epgs[i], leaves[sw]);
    }
  }

  // -- filters -----------------------------------------------------------------
  std::vector<FilterId> filters;
  filters.reserve(profile.filters);
  for (std::size_t i = 0; i < profile.filters; ++i) {
    const std::size_t n_entries = 1 + rng.below(profile.max_entries_per_filter);
    std::vector<FilterEntry> entries;
    entries.reserve(n_entries);
    for (std::size_t e = 0; e < n_entries; ++e) {
      entries.push_back(random_entry(rng));
    }
    std::ostringstream name;
    name << "filter-" << i;
    filters.push_back(policy.add_filter(name.str(), std::move(entries)));
  }

  // -- contracts ----------------------------------------------------------------
  // Filter choice is *correlated* with contract rank: head contracts use
  // head filters, tail contracts tail filters. Without this correlation a
  // tail filter attached to one head contract inherits thousands of pairs
  // and the Figure 3 filter CDF loses its light tail (70% below 10 pairs).
  ZipfDistribution filter_jitter{16, profile.filter_reuse_skew};
  std::vector<ContractId> contracts;
  contracts.reserve(profile.contracts);
  for (std::size_t i = 0; i < profile.contracts; ++i) {
    const std::size_t n_filters =
        1 + rng.below(profile.max_filters_per_contract);
    const std::size_t base_rank = i * profile.filters / profile.contracts;
    std::vector<FilterId> fs;
    for (std::size_t f = 0; f < n_filters; ++f) {
      const std::size_t rank =
          std::min(profile.filters - 1, base_rank + filter_jitter(rng));
      const FilterId cand = filters[rank];
      if (std::find(fs.begin(), fs.end(), cand) == fs.end()) {
        fs.push_back(cand);
      }
    }
    std::ostringstream name;
    name << "contract-" << i;
    contracts.push_back(policy.add_contract(name.str(), std::move(fs)));
  }

  // -- EPG pairs ---------------------------------------------------------------
  // VRF picked with probability ~ (#EPGs choose 2); EPGs within the VRF by
  // Zipf popularity; contract by Zipf reuse.
  std::vector<double> vrf_weight_cdf(profile.vrfs);
  double acc = 0.0;
  for (std::size_t v = 0; v < profile.vrfs; ++v) {
    const double n = static_cast<double>(epgs_by_vrf[v].size());
    acc += n * (n - 1.0) / 2.0;
    vrf_weight_cdf[v] = acc;
  }
  for (auto& w : vrf_weight_cdf) w /= acc;

  std::vector<ZipfDistribution> epg_dists;
  epg_dists.reserve(profile.vrfs);
  for (std::size_t v = 0; v < profile.vrfs; ++v) {
    epg_dists.emplace_back(epgs_by_vrf[v].size(),
                           profile.epg_popularity_skew);
  }
  ZipfDistribution contract_dist{profile.contracts,
                                 profile.contract_reuse_skew};

  std::unordered_set<EpgPair> seen_pairs;
  std::size_t attempts = 0;
  const std::size_t max_attempts = profile.target_pairs * 20 + 1000;
  while (seen_pairs.size() < profile.target_pairs &&
         attempts++ < max_attempts) {
    const double u = rng.uniform();
    const auto v = static_cast<std::size_t>(
        std::lower_bound(vrf_weight_cdf.begin(), vrf_weight_cdf.end(), u) -
        vrf_weight_cdf.begin());
    const auto& members = epgs_by_vrf[v];
    const EpgId a = members[epg_dists[v](rng)];
    const EpgId b = members[epg_dists[v](rng)];
    if (a == b) continue;
    const EpgPair pair{a, b};
    const ContractId c = contracts[contract_dist(rng)];
    if (seen_pairs.insert(pair).second) {
      policy.link(pair.a, pair.b, c);
    } else if (rng.chance(0.05)) {
      // Occasionally a pair is governed by a second contract; without this
      // cap, duplicate pair draws would pile extra contracts onto popular
      // pairs and flatten the Figure 3 contract-sharing tail.
      policy.link(pair.a, pair.b, c);
    }
  }

  // -- coverage guarantees -------------------------------------------------------
  // Every contract serves at least one pair.
  std::unordered_set<ContractId> used_contracts;
  for (const ContractLink& l : policy.links()) used_contracts.insert(l.contract);
  for (const ContractId c : contracts) {
    if (used_contracts.contains(c)) continue;
    const auto v = rng.below(profile.vrfs);
    const auto& members = epgs_by_vrf[v];
    const EpgId a = members[epg_dists[v](rng)];
    EpgId b = a;
    std::size_t guard = 0;
    while (b == a && guard++ < 100) b = members[epg_dists[v](rng)];
    if (b != a) policy.link(a, b, c);
  }
  // Every filter belongs to at least one contract.
  std::unordered_set<FilterId> used_filters;
  for (const Contract& c : policy.contracts()) {
    for (const FilterId f : c.filters) used_filters.insert(f);
  }
  for (const FilterId f : filters) {
    if (!used_filters.contains(f)) {
      policy.add_filter_to_contract(contracts[rng.below(contracts.size())], f);
    }
  }

  return net;
}

}  // namespace scout
