// The paper's running example (Figure 1): a 3-tier web service — EPG:Web,
// EPG:App, EPG:DB under VRF 101, Contract:Web-App (port 80) and
// Contract:App-DB (ports 80 and 700), with EP1@S1, EP2@S2, EP3@S3.
// Used by the quickstart example, the §V-B use cases and many tests.
#pragma once

#include "src/policy/network_policy.h"
#include "src/topology/fabric.h"

namespace scout {

struct ThreeTierNetwork {
  Fabric fabric;
  NetworkPolicy policy;

  SwitchId s1, s2, s3;
  EpgId web, app, db;
  VrfId vrf;
  ContractId web_app, app_db;
  FilterId port80, port700;
};

// `tcam_capacity` lets the TCAM-overflow use case build a small table.
[[nodiscard]] ThreeTierNetwork make_three_tier(std::size_t tcam_capacity =
                                                   4096);

}  // namespace scout
