#include "src/telemetry/health.h"

#include "src/common/json_writer.h"

namespace scout::telemetry {

const char* to_string(HealthEngine::Status s) noexcept {
  switch (s) {
    case HealthEngine::Status::kOk: return "ok";
    case HealthEngine::Status::kWarn: return "warn";
    case HealthEngine::Status::kCritical: return "critical";
  }
  return "unknown";
}

HealthEngine::HealthEngine(Options options, MetricsRegistry* registry)
    : options_(options) {
  attach(registry);
}

void HealthEngine::attach(MetricsRegistry* registry) {
  if (registry == nullptr) {
    status_gauge_ = Gauge{};
    latency_burn_gauge_ = Gauge{};
    latency_status_gauge_ = Gauge{};
    rebuild_rate_gauge_ = Gauge{};
    rebuild_status_gauge_ = Gauge{};
    eviction_rate_gauge_ = Gauge{};
    stall_rate_gauge_ = Gauge{};
    ring_status_gauge_ = Gauge{};
    return;
  }
  status_gauge_ = registry->gauge("health.status");
  latency_burn_gauge_ = registry->gauge("health.latency.burn");
  latency_status_gauge_ = registry->gauge("health.latency.status");
  rebuild_rate_gauge_ = registry->gauge("health.rebuild.rate");
  rebuild_status_gauge_ = registry->gauge("health.rebuild.status");
  eviction_rate_gauge_ = registry->gauge("health.ring.eviction_rate");
  stall_rate_gauge_ = registry->gauge("health.ring.stall_rate");
  ring_status_gauge_ = registry->gauge("health.ring.status");
  publish();
}

HealthEngine::Status HealthEngine::grade(double rate, double warn,
                                         double crit) const {
  if (rate >= crit) return Status::kCritical;
  if (rate >= warn) return Status::kWarn;
  return Status::kOk;
}

void HealthEngine::observe(const Sample& s) {
  const auto rate = [](std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0
                    : static_cast<double>(num) / static_cast<double>(den);
  };
  latency_burn_ = rate(s.events_over_budget, s.events);
  rebuild_rate_ = rate(s.full_rebuilds, s.batches);
  eviction_rate_ = rate(s.ring_evictions, s.ring_published);
  stall_rate_ = rate(s.ring_full_stalls, s.ring_published);

  latency_ = grade(latency_burn_, options_.latency_burn_warn,
                   options_.latency_burn_crit);
  rebuild_ = grade(rebuild_rate_, options_.rebuild_rate_warn,
                   options_.rebuild_rate_crit);
  const Status evict = grade(eviction_rate_, options_.ring_eviction_warn,
                             options_.ring_eviction_crit);
  const Status stall = grade(stall_rate_, options_.ring_stall_warn,
                             options_.ring_stall_crit);
  ring_ = evict > stall ? evict : stall;
  overall_ = latency_;
  if (rebuild_ > overall_) overall_ = rebuild_;
  if (ring_ > overall_) overall_ = ring_;
  publish();
}

void HealthEngine::publish() {
  status_gauge_.set(static_cast<double>(static_cast<int>(overall_)));
  latency_burn_gauge_.set(latency_burn_);
  latency_status_gauge_.set(static_cast<double>(static_cast<int>(latency_)));
  rebuild_rate_gauge_.set(rebuild_rate_);
  rebuild_status_gauge_.set(static_cast<double>(static_cast<int>(rebuild_)));
  eviction_rate_gauge_.set(eviction_rate_);
  stall_rate_gauge_.set(stall_rate_);
  ring_status_gauge_.set(static_cast<double>(static_cast<int>(ring_)));
}

void HealthEngine::write_json(JsonWriter& w) const {
  w.begin_object();
  w.field("status", to_string(overall_));
  w.key("latency")
      .begin_object()
      .field("status", to_string(latency_))
      .field("burn", latency_burn_)
      .field("budget_ms", options_.detect_budget_ms)
      .end_object();
  w.key("rebuild")
      .begin_object()
      .field("status", to_string(rebuild_))
      .field("rate_per_batch", rebuild_rate_)
      .end_object();
  w.key("ring")
      .begin_object()
      .field("status", to_string(ring_))
      .field("eviction_rate", eviction_rate_)
      .field("stall_rate", stall_rate_)
      .end_object();
  w.end_object();
}

}  // namespace scout::telemetry
