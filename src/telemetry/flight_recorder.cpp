#include "src/telemetry/flight_recorder.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"
#include "src/common/json_writer.h"
#include "src/stream/cause.h"

namespace scout::telemetry {
namespace {

// Abort-dump arming is process-global state: the SCOUT_CHECK hook has no
// argument channel, so the armed recorder and its target path live here.
// The path is a fixed buffer — no allocation on the abort path beyond the
// JSON serialization itself (abort() after a failed CHECK is not a signal
// handler; the heap is assumed intact enough for a best-effort dump).
constexpr std::size_t kAbortPathCapacity = 512;
FlightRecorder* g_abort_recorder = nullptr;
char g_abort_path[kAbortPathCapacity] = {};

void abort_dump_hook() noexcept {
  FlightRecorder* recorder = g_abort_recorder;
  if (recorder == nullptr || g_abort_path[0] == '\0') return;
  if (recorder->dump_to_file(g_abort_path)) {
    std::fprintf(stderr, "flight recorder dumped to %s\n", g_abort_path);
  } else {
    std::fprintf(stderr, "flight recorder dump to %s failed\n", g_abort_path);
  }
  std::fflush(stderr);
}

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

const char* to_string(FlightRecorder::EntryKind kind) noexcept {
  switch (kind) {
    case FlightRecorder::EntryKind::kInstant: return "instant";
    case FlightRecorder::EntryKind::kSpan: return "span";
    case FlightRecorder::EntryKind::kEvent: return "event";
    case FlightRecorder::EntryKind::kVerdict: return "verdict";
  }
  return "unknown";
}

// Decodes a CauseId::raw() value to the same "engine#ordinal" label the
// incident log uses, so post-mortems and incident records cross-reference.
std::string cause_label(std::uint64_t raw) {
  const stream::CauseId id = stream::CauseId::from_raw(raw);
  if (id.is_null()) return {};
  return std::string{stream::to_string(id.engine())} + "#" +
         std::to_string(id.ordinal());
}

}  // namespace

FlightRecorder::FlightRecorder(Options options)
    : lane_count_(std::max<std::size_t>(1, options.lanes)),
      capacity_(round_up_pow2(
          std::max<std::size_t>(8, options.capacity_per_lane))),
      storage_(lane_count_ * capacity_),
      lanes_(new Lane[lane_count_]),
      start_(std::chrono::steady_clock::now()) {
  for (std::size_t i = 0; i < lane_count_; ++i) {
    lanes_[i].entries = storage_.data() + i * capacity_;
  }
}

FlightRecorder::~FlightRecorder() {
  if (g_abort_recorder == this) disarm_abort_dump();
}

void FlightRecorder::set_name(Entry& e, const char* name) noexcept {
  std::strncpy(e.name, name, kNameCapacity - 1);
  e.name[kNameCapacity - 1] = '\0';
}

void FlightRecorder::record(std::size_t lane, Entry e) noexcept {
  SCOUT_DCHECK(lane < lane_count_, "flight lane " << lane << " out of range");
  Lane& l = lanes_[lane];
  const std::uint64_t head = l.head.load(std::memory_order_relaxed);
  e.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
  l.entries[head & (capacity_ - 1)] = e;
  l.head.store(head + 1, std::memory_order_release);
}

void FlightRecorder::instant(std::size_t lane, const char* name,
                             double value) noexcept {
  Entry e;
  e.kind = EntryKind::kInstant;
  set_name(e, name);
  e.value = value;
  record(lane, e);
}

void FlightRecorder::span(std::size_t lane, const char* name, double dur_ms,
                          std::uint64_t batch) noexcept {
  Entry e;
  e.kind = EntryKind::kSpan;
  set_name(e, name);
  e.dur_ms = dur_ms;
  e.batch = batch;
  record(lane, e);
}

std::uint64_t FlightRecorder::total_recorded() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < lane_count_; ++i) {
    total += lanes_[i].head.load(std::memory_order_acquire);
  }
  return total;
}

std::vector<FlightRecorder::LaneSnapshot> FlightRecorder::snapshot() const {
  std::vector<LaneSnapshot> out;
  out.reserve(lane_count_);
  for (std::size_t i = 0; i < lane_count_; ++i) {
    const Lane& l = lanes_[i];
    const std::uint64_t head = l.head.load(std::memory_order_acquire);
    const std::uint64_t count = std::min<std::uint64_t>(head, capacity_);
    LaneSnapshot snap;
    snap.lane = i;
    snap.recorded = head;
    snap.entries.reserve(count);
    // Oldest surviving entry first.
    for (std::uint64_t k = head - count; k < head; ++k) {
      snap.entries.push_back(l.entries[k & (capacity_ - 1)]);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void FlightRecorder::write_json(JsonWriter& w) const {
  const std::vector<LaneSnapshot> lanes = snapshot();
  w.begin_object();
  w.field("schema", "scout-flight-recorder-v1");
  w.field("lanes", static_cast<std::uint64_t>(lane_count_));
  w.field("capacity_per_lane", static_cast<std::uint64_t>(capacity_));
  std::uint64_t total = 0;
  for (const LaneSnapshot& l : lanes) total += l.recorded;
  w.field("total_recorded", total);
  w.key("entries_by_lane").begin_array();
  for (const LaneSnapshot& l : lanes) {
    w.begin_object();
    w.field("lane", static_cast<std::uint64_t>(l.lane));
    w.field("recorded", l.recorded);
    w.key("entries").begin_array();
    for (const Entry& e : l.entries) {
      w.begin_object();
      w.field("kind", to_string(e.kind));
      w.field("name", e.name);
      w.field("wall_ms", e.wall_ms);
      if (e.kind == EntryKind::kSpan) w.field("dur_ms", e.dur_ms);
      if (e.sim_ms >= 0) w.field("sim_ms", e.sim_ms);
      w.field("batch", e.batch);
      if (e.kind == EntryKind::kEvent) w.field("seq", e.seq);
      if (e.sw >= 0) w.field("sw", e.sw);
      if (e.cause != 0) {
        w.field("cause", cause_label(e.cause));
      }
      w.field("value", e.value);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string FlightRecorder::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

bool FlightRecorder::dump_to_file(const char* path) const {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const std::string json = to_json();
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = written == json.size() && std::fclose(f) == 0;
  if (written != json.size()) std::fclose(f);
  return ok;
}

void FlightRecorder::arm_abort_dump(std::string path) {
  SCOUT_CHECK(path.size() < kAbortPathCapacity,
              "abort-dump path too long: " << path.size());
  std::memcpy(g_abort_path, path.c_str(), path.size() + 1);
  g_abort_recorder = this;
  set_check_failure_hook(&abort_dump_hook);
}

void FlightRecorder::disarm_abort_dump() noexcept {
  set_check_failure_hook(nullptr);
  g_abort_recorder = nullptr;
  g_abort_path[0] = '\0';
}

}  // namespace scout::telemetry
