// Health/SLO engine: turns the monitor's raw cumulative counters into a
// small set of graded health signals a week-long run can be watched (and
// alerted) on. Three service-level objectives, each with warn/critical
// thresholds:
//
//  * detection latency — fraction of events whose event→verdict wall
//    latency blew the per-event budget (error-budget burn, not a mean:
//    a p50-friendly tail regression still burns budget);
//  * full-rebuild rate — post-prime T re-encodes per batch (the
//    incremental checker falling back to O(TCAM) work);
//  * ring pressure — MPSC-ring evictions and full-stalls per published
//    event (backpressure degradation: evictions cost shadow resyncs,
//    stalls cost publisher latency).
//
// observe() takes lifetime-cumulative totals (callers pass their existing
// counters; the engine does its own rate math), recomputes each burn
// rate, grades it Ok/Warn/Critical against the thresholds, and publishes
// `health.*` gauges through the shared MetricsRegistry — so `scoutctl
// stats` and the Prometheus exporter surface fleet health with zero new
// plumbing. Driver-thread only, like all gauge writers.
#pragma once

#include <cstdint>

#include "src/telemetry/metrics.h"

namespace scout {
class JsonWriter;
}  // namespace scout

namespace scout::telemetry {

class HealthEngine {
 public:
  enum class Status : int { kOk = 0, kWarn = 1, kCritical = 2 };

  struct Options {
    // Per-event detection budget (event publish → verdict compose, wall).
    double detect_budget_ms = 250.0;
    // Fraction of events over budget.
    double latency_burn_warn = 0.05;
    double latency_burn_crit = 0.25;
    // Unplanned full T rebuilds per batch.
    double rebuild_rate_warn = 0.5;
    double rebuild_rate_crit = 2.0;
    // Ring evictions per published event (each costs a shadow resync).
    double ring_eviction_warn = 1e-4;
    double ring_eviction_crit = 1e-2;
    // Ring full-stalls per published event.
    double ring_stall_warn = 1e-2;
    double ring_stall_crit = 0.25;
  };

  // Lifetime-cumulative totals; the engine computes rates itself so
  // callers just forward the counters they already keep.
  struct Sample {
    std::uint64_t events = 0;
    std::uint64_t events_over_budget = 0;
    std::uint64_t batches = 0;
    std::uint64_t full_rebuilds = 0;
    std::uint64_t ring_published = 0;
    std::uint64_t ring_evictions = 0;
    std::uint64_t ring_full_stalls = 0;
  };

  HealthEngine() : HealthEngine(Options{}, nullptr) {}
  explicit HealthEngine(Options options, MetricsRegistry* registry = nullptr);

  // Re-registers the health.* gauges on `registry` (nullptr detaches).
  void attach(MetricsRegistry* registry);

  // Driver-thread only: recompute burn rates and grades, update gauges.
  void observe(const Sample& cumulative);

  [[nodiscard]] const Options& options() const noexcept { return options_; }
  [[nodiscard]] Status overall() const noexcept { return overall_; }
  [[nodiscard]] Status latency_status() const noexcept { return latency_; }
  [[nodiscard]] Status rebuild_status() const noexcept { return rebuild_; }
  [[nodiscard]] Status ring_status() const noexcept { return ring_; }
  [[nodiscard]] double latency_burn() const noexcept { return latency_burn_; }
  [[nodiscard]] double rebuild_rate() const noexcept { return rebuild_rate_; }
  [[nodiscard]] double ring_eviction_rate() const noexcept {
    return eviction_rate_;
  }
  [[nodiscard]] double ring_stall_rate() const noexcept { return stall_rate_; }

  void write_json(JsonWriter& w) const;

 private:
  [[nodiscard]] Status grade(double rate, double warn, double crit) const;
  void publish();

  Options options_;
  Gauge status_gauge_, latency_burn_gauge_, latency_status_gauge_,
      rebuild_rate_gauge_, rebuild_status_gauge_, eviction_rate_gauge_,
      stall_rate_gauge_, ring_status_gauge_;
  double latency_burn_ = 0, rebuild_rate_ = 0, eviction_rate_ = 0,
         stall_rate_ = 0;
  Status latency_ = Status::kOk;
  Status rebuild_ = Status::kOk;
  Status ring_ = Status::kOk;
  Status overall_ = Status::kOk;
};

[[nodiscard]] const char* to_string(HealthEngine::Status s) noexcept;

}  // namespace scout::telemetry
