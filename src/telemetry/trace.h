// Trace spans for the detect -> localize -> remediate pipeline.
//
// A TraceRecorder stamps RAII spans in both clocks the monitor lives in:
// wall time (microseconds since the recorder's construction, from
// steady_clock) and sim time (the SimClock milliseconds the event stream is
// stamped with). Spans land on *lanes* — lane 0 is the driver thread, lane
// w+1 is runtime worker w — and each lane is written by exactly one thread,
// so recording is lock-free and allocation is amortized to the lane vector.
// Lane indices are SCOUT_CHECKed at record time: an out-of-range lane
// aborts instead of silently aliasing another thread's lane (which would
// be a data race).
//
// The export format is Chrome trace-event JSON (load in chrome://tracing or
// Perfetto): complete events ("ph":"X") for spans, instant events
// ("ph":"i") for markers such as rebuild fallbacks, with sim-time bounds
// and the batch index carried in "args". A metrics snapshot may ride along
// under a top-level "metrics" key, which the trace viewers ignore.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/sim_clock.h"

namespace scout::telemetry {

struct MetricsSnapshot;

struct TraceSpan {
  std::string name;
  std::string category;
  std::size_t lane = 0;
  double wall_start_us = 0.0;  // relative to recorder epoch
  double wall_dur_us = 0.0;
  std::int64_t sim_start_ms = 0;
  std::int64_t sim_end_ms = 0;
  std::int64_t batch = -1;  // -1 = not batch-scoped
};

struct TraceInstant {
  std::string name;
  std::string category;
  std::size_t lane = 0;
  double wall_us = 0.0;
  std::int64_t sim_ms = 0;
  std::string detail;  // e.g. the rebuild reason
};

class TraceRecorder {
 public:
  // lanes = executor workers + 1 (lane 0 is the driver thread).
  explicit TraceRecorder(std::size_t lanes = 1);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_.size(); }

  // Microseconds of wall time since the recorder was constructed.
  [[nodiscard]] double now_us() const noexcept;

  // RAII span: opens at construction, records into the lane at close (end
  // of scope or explicit end()). A Scope from a null recorder is a no-op —
  // instrumented code holds `TraceRecorder*` and never branches on it.
  class Scope {
   public:
    Scope() = default;
    Scope(TraceRecorder* recorder, std::size_t lane, std::string_view name,
          std::string_view category, SimTime sim_start,
          std::int64_t batch = -1);
    Scope(Scope&& other) noexcept;
    Scope& operator=(Scope&& other) noexcept;
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() { end(); }

    // Sim time the span covers up to (defaults to sim_start).
    void set_sim_end(SimTime t) noexcept { sim_end_ms_ = t.millis(); }

    void end();

   private:
    TraceRecorder* recorder_ = nullptr;
    std::size_t lane_ = 0;
    std::string name_;
    std::string category_;
    double wall_start_us_ = 0.0;
    std::int64_t sim_start_ms_ = 0;
    std::int64_t sim_end_ms_ = 0;
    std::int64_t batch_ = -1;
  };

  [[nodiscard]] Scope span(std::size_t lane, std::string_view name,
                           std::string_view category, SimTime sim_start,
                           std::int64_t batch = -1) {
    return Scope{this, lane, name, category, sim_start, batch};
  }

  // Zero-duration marker (rebuild fallback, divergence, snapshot tick).
  void instant(std::size_t lane, std::string_view name,
               std::string_view category, SimTime sim_now,
               std::string_view detail = {});

  // All lanes merged, sorted by (wall_start_us, lane). Call while the
  // workers are quiescent.
  [[nodiscard]] std::vector<TraceSpan> spans() const;
  [[nodiscard]] std::vector<TraceInstant> instants() const;

  // Chrome trace-event JSON; when `metrics` is non-null the snapshot is
  // embedded under a top-level "metrics" key.
  [[nodiscard]] std::string to_chrome_json(
      const MetricsSnapshot* metrics = nullptr) const;

  void reset();

 private:
  friend class Scope;

  struct alignas(64) Lane {
    std::vector<TraceSpan> spans;
    std::vector<TraceInstant> instants;
  };

  std::chrono::steady_clock::time_point epoch_;
  std::vector<Lane> lanes_;
};

}  // namespace scout::telemetry
