// Thread-sharded metrics registry: the one source of truth for counters,
// gauges and latency histograms across the detect -> localize -> remediate
// pipeline, the benches and scoutctl.
//
// Design:
//  * Registration is locked, recording is not. Register-or-fetch takes the
//    registry mutex (cold path, thread-safe), and the entry storage is a
//    deque so slot addresses handed to handles never move. The recording
//    hot path is a plain store: each metric owns one cache-padded slot per
//    worker shard; Counter::add / Histogram::record index the caller's
//    shard and mutate only it, so recording from worker w never contends
//    with worker w' — no atomics, no locks.
//  * Snapshots require quiescence, and the registry enforces it. Executors
//    bracket their parallel sections with begin/end_parallel_region()
//    (wired through runtime::ExecutorMetrics); snapshot(), reset() and
//    registration SCOUT_CHECK that no region is active, so "merge the
//    shards mid-run" is a loud abort instead of a torn read. The
//    happens-before edge for the shard values themselves comes from the
//    executor's join (pool wait()), which completes before
//    end_parallel_region() runs; the gate's release/acquire pair extends
//    that edge to any thread that observes the region closed.
//  * Handles are no-op-able. A default-constructed handle (or any handle
//    from a disabled component holding no registry) ignores every call, so
//    instrumented code never branches on "is telemetry on" beyond the
//    handle's internal null check.
//  * Snapshots are deterministic. Metrics are emitted sorted by name;
//    counters under the "stream." prefix are pure functions of the event
//    stream (worker-count invariant), which tests/test_telemetry.cpp pins
//    at 1/2/4 workers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/check.h"
#include "src/common/mutex.h"
#include "src/common/stats.h"
#include "src/common/thread_annotations.h"

namespace scout {
class JsonWriter;
}  // namespace scout

namespace scout::telemetry {

class MetricsRegistry;

// Merged, name-sorted view of a registry at one quiescent point.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    LogHistogram histogram;
  };

  std::vector<CounterValue> counters;      // sorted by name
  std::vector<GaugeValue> gauges;          // sorted by name
  std::vector<HistogramValue> histograms;  // sorted by name

  // Lookups return 0 / nullptr for unknown names.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;
  [[nodiscard]] double gauge(std::string_view name) const noexcept;
  [[nodiscard]] const LogHistogram* histogram(
      std::string_view name) const noexcept;

  // Counters whose name starts with `prefix` — the deterministic subset
  // the worker-count-invariance tests compare.
  [[nodiscard]] std::vector<CounterValue> counters_with_prefix(
      std::string_view prefix) const;

  // Prometheus text exposition (counters + gauges + histogram summaries).
  [[nodiscard]] std::string to_prometheus() const;

  // JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(JsonWriter& w) const;
  [[nodiscard]] std::string to_json() const;
};

namespace detail {

struct alignas(64) CounterSlot {
  std::uint64_t value = 0;
};

struct alignas(64) HistogramSlot {
  LogHistogram histogram;
};

}  // namespace detail

// Monotone event count. add() from worker w touches only shard w.
class Counter {
 public:
  Counter() = default;

  void add(std::size_t worker, std::uint64_t delta) noexcept {
    if (slots_ != nullptr) {
      SCOUT_DCHECK(worker < shards_, "Counter shard " << worker
                                         << " out of range (" << shards_
                                         << " shards)");
      slots_[worker].value += delta;
    }
  }
  void inc(std::size_t worker) noexcept { add(worker, 1); }
  // Driver-thread convenience (shard 0).
  void add(std::uint64_t delta = 1) noexcept { add(std::size_t{0}, delta); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return slots_ != nullptr;
  }

 private:
  friend class MetricsRegistry;
  Counter(detail::CounterSlot* slots, std::size_t shards) noexcept
      : slots_(slots), shards_(shards) {}
  detail::CounterSlot* slots_ = nullptr;
  std::size_t shards_ = 0;  // for the debug bounds check only
};

// Last-write-wins level (backlog depth, arena size, ...). Gauges are set
// from the driver thread between parallel sections, so they are unsharded.
class Gauge {
 public:
  Gauge() = default;

  void set(double value) noexcept {
    if (slot_ != nullptr) *slot_ = value;
  }
  void add(double delta) noexcept {
    if (slot_ != nullptr) *slot_ += delta;
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return slot_ != nullptr;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(double* slot) noexcept : slot_(slot) {}
  double* slot_ = nullptr;
};

// Sharded LogHistogram; shards merge exactly at snapshot time
// (tests/test_stats.cpp pins merge-order invariance).
class Histogram {
 public:
  Histogram() = default;

  void record(std::size_t worker, double value) {
    if (slots_ != nullptr) {
      SCOUT_DCHECK(worker < shards_, "Histogram shard " << worker
                                         << " out of range (" << shards_
                                         << " shards)");
      slots_[worker].histogram.record(value);
    }
  }
  void record(double value) { record(0, value); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return slots_ != nullptr;
  }

 private:
  friend class MetricsRegistry;
  Histogram(detail::HistogramSlot* slots, std::size_t shards) noexcept
      : slots_(slots), shards_(shards) {}
  detail::HistogramSlot* slots_ = nullptr;
  std::size_t shards_ = 0;  // for the debug bounds check only
};

class MetricsRegistry {
 public:
  // `shards` must cover every worker index handles will be used with
  // (executor workers; the driver thread records on shard 0).
  explicit MetricsRegistry(std::size_t shards = 1);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  // Register-or-fetch by dotted name ("stream.full_rebuilds"). Thread-safe
  // with respect to other registrations, but forbidden (SCOUT_CHECK)
  // inside a parallel region: handles must be acquired before the workers
  // start recording.
  [[nodiscard]] Counter counter(std::string_view name)
      SCOUT_EXCLUDES(mu_);
  [[nodiscard]] Gauge gauge(std::string_view name) SCOUT_EXCLUDES(mu_);
  [[nodiscard]] Histogram histogram(std::string_view name)
      SCOUT_EXCLUDES(mu_);

  // One-shot driver-thread conveniences (register + mutate).
  void set_gauge(std::string_view name, double value) {
    gauge(name).set(value);
  }
  void add_counter(std::string_view name, std::uint64_t delta) {
    counter(name).add(delta);
  }

  // -- quiescence gate -------------------------------------------------------
  // Executors call these around every parallel section (see
  // runtime::ExecutorMetrics::registry). Nesting is allowed (a task fanning
  // out its own executor); the region is open while any depth remains.
  void begin_parallel_region() noexcept {
    parallel_depth_.fetch_add(1, std::memory_order_acquire);
  }
  void end_parallel_region() noexcept {
    const int prev = parallel_depth_.fetch_sub(1, std::memory_order_release);
    SCOUT_CHECK(prev > 0, "MetricsRegistry: unbalanced end_parallel_region");
  }
  [[nodiscard]] bool in_parallel_region() const noexcept {
    return parallel_depth_.load(std::memory_order_acquire) != 0;
  }

  // Merge all shards into a name-sorted snapshot. Aborts if a parallel
  // region is active — the snapshot-at-quiescence contract is enforced
  // here, not by convention at the call sites.
  [[nodiscard]] MetricsSnapshot snapshot() const SCOUT_EXCLUDES(mu_);

  // Zero every counter/gauge/histogram; handles stay valid. Same
  // quiescence requirement as snapshot().
  void reset() SCOUT_EXCLUDES(mu_);

 private:
  struct CounterEntry {
    std::string name;
    std::vector<detail::CounterSlot> slots;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    std::vector<detail::HistogramSlot> slots;
  };

  std::size_t shards_ = 1;
  // Open parallel sections. 0 is the quiescent state snapshot() requires;
  // the release on close pairs with the acquire in in_parallel_region() so
  // a thread that sees the region closed also sees everything the closing
  // thread saw (which, after an executor join, is every shard write).
  std::atomic<int> parallel_depth_{0};

  // Guards the name tables and entry deques (registration); the slot
  // *values* inside entries are deliberately unguarded — they are the
  // sharded lock-free hot path, protected by the quiescence gate instead.
  mutable Mutex mu_;
  // deque: entry addresses are stable as the registry grows, so handles
  // (raw slot pointers) never dangle.
  std::deque<CounterEntry> counter_entries_ SCOUT_GUARDED_BY(mu_);
  std::deque<GaugeEntry> gauge_entries_ SCOUT_GUARDED_BY(mu_);
  std::deque<HistogramEntry> histogram_entries_ SCOUT_GUARDED_BY(mu_);
  std::map<std::string, CounterEntry*, std::less<>> counters_by_name_
      SCOUT_GUARDED_BY(mu_);
  std::map<std::string, GaugeEntry*, std::less<>> gauges_by_name_
      SCOUT_GUARDED_BY(mu_);
  std::map<std::string, HistogramEntry*, std::less<>> histograms_by_name_
      SCOUT_GUARDED_BY(mu_);
};

// Bench/CI key from a dotted metric name: '.' -> '_' so registry names map
// onto the historical BENCH_*.json keys ("bdd.unique_load" ->
// "bdd_unique_load").
[[nodiscard]] std::string bench_key(std::string_view metric_name);

}  // namespace scout::telemetry
