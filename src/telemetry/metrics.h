// Thread-sharded metrics registry: the one source of truth for counters,
// gauges and latency histograms across the detect -> localize -> remediate
// pipeline, the benches and scoutctl.
//
// Design:
//  * Registration is serial. Components acquire typed handles (Counter,
//    Gauge, Histogram) from the registry before the parallel section
//    starts; the registry's name table is not locked, matching the
//    runtime's "configure serially, run sharded" discipline.
//  * The hot path is a plain store. Each metric owns one cache-padded slot
//    per worker shard; Counter::add / Histogram::record index the caller's
//    shard and mutate only it, so recording from worker w never contends
//    with worker w' — no atomics, no locks. Shards are merged only at
//    snapshot() time, which must run while the workers are quiescent
//    (between executor runs — the same barrier the result-slot merge
//    already relies on).
//  * Handles are no-op-able. A default-constructed handle (or any handle
//    from a disabled component holding no registry) ignores every call, so
//    instrumented code never branches on "is telemetry on" beyond the
//    handle's internal null check.
//  * Snapshots are deterministic. Metrics are emitted sorted by name;
//    counters under the "stream." prefix are pure functions of the event
//    stream (worker-count invariant), which tests/test_telemetry.cpp pins
//    at 1/2/4 workers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/stats.h"

namespace scout {
class JsonWriter;
}  // namespace scout

namespace scout::telemetry {

class MetricsRegistry;

// Merged, name-sorted view of a registry at one quiescent point.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    LogHistogram histogram;
  };

  std::vector<CounterValue> counters;      // sorted by name
  std::vector<GaugeValue> gauges;          // sorted by name
  std::vector<HistogramValue> histograms;  // sorted by name

  // Lookups return 0 / nullptr for unknown names.
  [[nodiscard]] std::uint64_t counter(std::string_view name) const noexcept;
  [[nodiscard]] double gauge(std::string_view name) const noexcept;
  [[nodiscard]] const LogHistogram* histogram(
      std::string_view name) const noexcept;

  // Counters whose name starts with `prefix` — the deterministic subset
  // the worker-count-invariance tests compare.
  [[nodiscard]] std::vector<CounterValue> counters_with_prefix(
      std::string_view prefix) const;

  // Prometheus text exposition (counters + gauges + histogram summaries).
  [[nodiscard]] std::string to_prometheus() const;

  // JSON object {"counters":{...},"gauges":{...},"histograms":{...}}.
  void write_json(JsonWriter& w) const;
  [[nodiscard]] std::string to_json() const;
};

namespace detail {

struct alignas(64) CounterSlot {
  std::uint64_t value = 0;
};

struct alignas(64) HistogramSlot {
  LogHistogram histogram;
};

}  // namespace detail

// Monotone event count. add() from worker w touches only shard w.
class Counter {
 public:
  Counter() = default;

  void add(std::size_t worker, std::uint64_t delta) noexcept {
    if (slots_ != nullptr) slots_[worker].value += delta;
  }
  void inc(std::size_t worker) noexcept { add(worker, 1); }
  // Driver-thread convenience (shard 0).
  void add(std::uint64_t delta = 1) noexcept { add(std::size_t{0}, delta); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return slots_ != nullptr;
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::CounterSlot* slots) noexcept : slots_(slots) {}
  detail::CounterSlot* slots_ = nullptr;
};

// Last-write-wins level (backlog depth, arena size, ...). Gauges are set
// from the driver thread between parallel sections, so they are unsharded.
class Gauge {
 public:
  Gauge() = default;

  void set(double value) noexcept {
    if (slot_ != nullptr) *slot_ = value;
  }
  void add(double delta) noexcept {
    if (slot_ != nullptr) *slot_ += delta;
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return slot_ != nullptr;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(double* slot) noexcept : slot_(slot) {}
  double* slot_ = nullptr;
};

// Sharded LogHistogram; shards merge exactly at snapshot time
// (tests/test_stats.cpp pins merge-order invariance).
class Histogram {
 public:
  Histogram() = default;

  void record(std::size_t worker, double value) {
    if (slots_ != nullptr) slots_[worker].histogram.record(value);
  }
  void record(double value) { record(0, value); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return slots_ != nullptr;
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::HistogramSlot* slots) noexcept : slots_(slots) {}
  detail::HistogramSlot* slots_ = nullptr;
};

class MetricsRegistry {
 public:
  // `shards` must cover every worker index handles will be used with
  // (executor workers; the driver thread records on shard 0).
  explicit MetricsRegistry(std::size_t shards = 1);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  // Register-or-fetch by dotted name ("stream.full_rebuilds"). Serial only.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Histogram histogram(std::string_view name);

  // One-shot driver-thread conveniences (register + mutate).
  void set_gauge(std::string_view name, double value) {
    gauge(name).set(value);
  }
  void add_counter(std::string_view name, std::uint64_t delta) {
    counter(name).add(delta);
  }

  // Merge all shards into a name-sorted snapshot. Callers must ensure the
  // workers are quiescent (between executor runs).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  // Zero every counter/gauge/histogram; handles stay valid.
  void reset();

 private:
  struct CounterEntry {
    std::string name;
    std::vector<detail::CounterSlot> slots;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    std::vector<detail::HistogramSlot> slots;
  };

  std::size_t shards_ = 1;
  // deque: entry addresses are stable as the registry grows, so handles
  // (raw slot pointers) never dangle.
  std::deque<CounterEntry> counter_entries_;
  std::deque<GaugeEntry> gauge_entries_;
  std::deque<HistogramEntry> histogram_entries_;
  std::map<std::string, CounterEntry*, std::less<>> counters_by_name_;
  std::map<std::string, GaugeEntry*, std::less<>> gauges_by_name_;
  std::map<std::string, HistogramEntry*, std::less<>> histograms_by_name_;
};

// Bench/CI key from a dotted metric name: '.' -> '_' so registry names map
// onto the historical BENCH_*.json keys ("bdd.unique_load" ->
// "bdd_unique_load").
[[nodiscard]] std::string bench_key(std::string_view metric_name);

}  // namespace scout::telemetry
