#include "src/telemetry/trace.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/json_writer.h"
#include "src/telemetry/metrics.h"

namespace scout::telemetry {

TraceRecorder::TraceRecorder(std::size_t lanes)
    : epoch_(std::chrono::steady_clock::now()),
      lanes_(lanes == 0 ? 1 : lanes) {}

double TraceRecorder::now_us() const noexcept {
  const auto d = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double, std::micro>(d).count();
}

TraceRecorder::Scope::Scope(TraceRecorder* recorder, std::size_t lane,
                            std::string_view name, std::string_view category,
                            SimTime sim_start, std::int64_t batch)
    : recorder_(recorder),
      lane_(lane),
      name_(name),
      category_(category),
      sim_start_ms_(sim_start.millis()),
      sim_end_ms_(sim_start.millis()),
      batch_(batch) {
  if (recorder_ != nullptr) wall_start_us_ = recorder_->now_us();
}

TraceRecorder::Scope::Scope(Scope&& other) noexcept
    : recorder_(std::exchange(other.recorder_, nullptr)),
      lane_(other.lane_),
      name_(std::move(other.name_)),
      category_(std::move(other.category_)),
      wall_start_us_(other.wall_start_us_),
      sim_start_ms_(other.sim_start_ms_),
      sim_end_ms_(other.sim_end_ms_),
      batch_(other.batch_) {}

TraceRecorder::Scope& TraceRecorder::Scope::operator=(Scope&& other) noexcept {
  if (this != &other) {
    end();
    recorder_ = std::exchange(other.recorder_, nullptr);
    lane_ = other.lane_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    wall_start_us_ = other.wall_start_us_;
    sim_start_ms_ = other.sim_start_ms_;
    sim_end_ms_ = other.sim_end_ms_;
    batch_ = other.batch_;
  }
  return *this;
}

void TraceRecorder::Scope::end() {
  if (recorder_ == nullptr) return;
  TraceRecorder* rec = std::exchange(recorder_, nullptr);
  TraceSpan span;
  span.name = std::move(name_);
  span.category = std::move(category_);
  span.lane = lane_;
  span.wall_start_us = wall_start_us_;
  span.wall_dur_us = rec->now_us() - wall_start_us_;
  span.sim_start_ms = sim_start_ms_;
  span.sim_end_ms = sim_end_ms_;
  span.batch = batch_;
  // Lane w is written only by its owning thread; wrapping an out-of-range
  // lane onto someone else's would silently turn the lock-free recording
  // into a data race, so it dies here instead.
  SCOUT_CHECK(lane_ < rec->lanes_.size(),
              "TraceRecorder: span on lane " << lane_ << " but only "
                  << rec->lanes_.size() << " lanes exist");
  rec->lanes_[lane_].spans.push_back(std::move(span));
}

void TraceRecorder::instant(std::size_t lane, std::string_view name,
                            std::string_view category, SimTime sim_now,
                            std::string_view detail) {
  TraceInstant inst;
  inst.name = std::string{name};
  inst.category = std::string{category};
  inst.lane = lane;
  inst.wall_us = now_us();
  inst.sim_ms = sim_now.millis();
  inst.detail = std::string{detail};
  SCOUT_CHECK(lane < lanes_.size(),
              "TraceRecorder: instant on lane " << lane << " but only "
                  << lanes_.size() << " lanes exist");
  lanes_[lane].instants.push_back(std::move(inst));
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::vector<TraceSpan> out;
  for (const Lane& lane : lanes_) {
    out.insert(out.end(), lane.spans.begin(), lane.spans.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     if (a.wall_start_us != b.wall_start_us) {
                       return a.wall_start_us < b.wall_start_us;
                     }
                     return a.lane < b.lane;
                   });
  return out;
}

std::vector<TraceInstant> TraceRecorder::instants() const {
  std::vector<TraceInstant> out;
  for (const Lane& lane : lanes_) {
    out.insert(out.end(), lane.instants.begin(), lane.instants.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceInstant& a, const TraceInstant& b) {
                     if (a.wall_us != b.wall_us) return a.wall_us < b.wall_us;
                     return a.lane < b.lane;
                   });
  return out;
}

std::string TraceRecorder::to_chrome_json(
    const MetricsSnapshot* metrics) const {
  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const TraceSpan& span : spans()) {
    w.begin_object();
    w.field("name", span.name);
    w.field("cat", span.category);
    w.field("ph", "X");
    w.field("ts", span.wall_start_us);
    w.field("dur", span.wall_dur_us);
    w.field("pid", 1);
    w.field("tid", static_cast<std::int64_t>(span.lane));
    w.key("args").begin_object();
    w.field("sim_start_ms", span.sim_start_ms);
    w.field("sim_end_ms", span.sim_end_ms);
    if (span.batch >= 0) w.field("batch", span.batch);
    w.end_object();
    w.end_object();
  }
  for (const TraceInstant& inst : instants()) {
    w.begin_object();
    w.field("name", inst.name);
    w.field("cat", inst.category);
    w.field("ph", "i");
    w.field("s", "t");  // thread-scoped instant
    w.field("ts", inst.wall_us);
    w.field("pid", 1);
    w.field("tid", static_cast<std::int64_t>(inst.lane));
    w.key("args").begin_object();
    w.field("sim_ms", inst.sim_ms);
    if (!inst.detail.empty()) w.field("detail", inst.detail);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.field("displayTimeUnit", "ms");
  if (metrics != nullptr) {
    w.key("metrics");
    metrics->write_json(w);
  }
  w.end_object();
  return w.str();
}

void TraceRecorder::reset() {
  for (Lane& lane : lanes_) {
    lane.spans.clear();
    lane.instants.clear();
  }
}

}  // namespace scout::telemetry
