// Flight recorder: a bounded, lock-free ring of the monitor's most recent
// moments — spans, instants, event summaries, verdicts — kept cheap enough
// to run always-on and dumped as JSON exactly when it matters: from the
// SCOUT_CHECK abort path (set_check_failure_hook), on a clean→failing
// verdict transition, or on demand (scoutctl --flight-recorder).
//
// Design constraints, in order:
//  * Recording must never allocate, lock, or branch on I/O: each lane is a
//    fixed preallocated ring with a single writer; record() is a struct
//    store plus a release store of the head. Lanes are cache-line padded
//    so a worker lane never false-shares with the driver lane.
//  * Entries are trivially copyable PODs with inline names — the recorder
//    holds no pointers into the stream subsystem, so it can be read from
//    the abort hook regardless of what state the crash left behind.
//  * Dumping is best-effort by definition: a reader snapshots each lane's
//    head (acquire) and copies the last `capacity` entries. A lane whose
//    writer is mid-store at abort time may contribute one torn entry; the
//    other lanes and all older entries are intact.
//
// The `cause` field carries stream::CauseId::raw() values (0 = none); the
// JSON dump decodes them to "engine#ordinal" so a post-mortem reads the
// same provenance labels as the incident log.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

namespace scout {
class JsonWriter;
}  // namespace scout

namespace scout::telemetry {

class FlightRecorder {
 public:
  enum class EntryKind : std::uint8_t {
    kInstant = 0,  // point annotation (value optional)
    kSpan = 1,     // timed region; dur_ms meaningful
    kEvent = 2,    // stream-event summary (seq/sw/cause meaningful)
    kVerdict = 3,  // per-batch verdict summary (value = inconsistent count)
  };

  static constexpr std::size_t kNameCapacity = 24;  // includes terminator

  struct Entry {
    EntryKind kind = EntryKind::kInstant;
    char name[kNameCapacity] = {};
    double wall_ms = 0;          // stamped by record(): ms since construction
    double dur_ms = 0;           // kSpan only
    std::int64_t sim_ms = -1;    // simulation clock, -1 = not stamped
    std::uint64_t batch = 0;     // monitor batch ordinal
    std::uint64_t seq = 0;       // kEvent: bus sequence number
    std::int64_t sw = -1;        // switch id, -1 = fabric-wide / none
    std::uint64_t cause = 0;     // stream::CauseId::raw(), 0 = none
    double value = 0;            // kind-specific payload
  };
  static_assert(std::is_trivially_copyable_v<Entry>);

  struct Options {
    std::size_t lanes = 1;
    std::size_t capacity_per_lane = 256;  // rounded up to a power of two
  };

  explicit FlightRecorder(Options options);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  // Copies `name` (truncating) into the entry; the only mutator callers
  // need besides assigning POD fields.
  static void set_name(Entry& e, const char* name) noexcept;

  // Single writer per lane. Stamps wall_ms and publishes the entry with a
  // release store; never allocates or blocks.
  void record(std::size_t lane, Entry e) noexcept;

  // Convenience writers.
  void instant(std::size_t lane, const char* name, double value = 0) noexcept;
  void span(std::size_t lane, const char* name, double dur_ms,
            std::uint64_t batch) noexcept;

  [[nodiscard]] std::size_t lanes() const noexcept { return lane_count_; }
  [[nodiscard]] std::size_t capacity_per_lane() const noexcept {
    return capacity_;
  }
  // Total entries ever recorded (sum of lane heads); entries beyond
  // capacity_per_lane have been overwritten.
  [[nodiscard]] std::uint64_t total_recorded() const noexcept;

  struct LaneSnapshot {
    std::size_t lane = 0;
    std::uint64_t recorded = 0;          // lifetime count for this lane
    std::vector<Entry> entries;          // oldest → newest, ≤ capacity
  };
  // Best-effort copy of every lane's surviving entries (see header note on
  // torn entries under concurrent writers).
  [[nodiscard]] std::vector<LaneSnapshot> snapshot() const;

  void write_json(JsonWriter& w) const;
  [[nodiscard]] std::string to_json() const;
  // Writes to_json() to `path` via stdio; returns false on I/O failure.
  bool dump_to_file(const char* path) const;

  // Arms the process-wide SCOUT_CHECK failure hook to dump this recorder
  // to `path` right before abort(). One recorder may be armed at a time;
  // arming replaces the previous one. The destructor disarms itself.
  void arm_abort_dump(std::string path);
  static void disarm_abort_dump() noexcept;

 private:
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> head{0};
    Entry* entries = nullptr;  // points into storage_, capacity_ slots
  };

  std::size_t lane_count_;
  std::size_t capacity_;  // power of two
  std::vector<Entry> storage_;
  std::unique_ptr<Lane[]> lanes_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace scout::telemetry
