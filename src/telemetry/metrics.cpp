#include "src/telemetry/metrics.h"

#include <algorithm>
#include <sstream>

#include "src/common/json_writer.h"

namespace scout::telemetry {

std::uint64_t MetricsSnapshot::counter(std::string_view name) const noexcept {
  for (const auto& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

double MetricsSnapshot::gauge(std::string_view name) const noexcept {
  for (const auto& g : gauges) {
    if (g.name == name) return g.value;
  }
  return 0.0;
}

const LogHistogram* MetricsSnapshot::histogram(
    std::string_view name) const noexcept {
  for (const auto& h : histograms) {
    if (h.name == name) return &h.histogram;
  }
  return nullptr;
}

std::vector<MetricsSnapshot::CounterValue>
MetricsSnapshot::counters_with_prefix(std::string_view prefix) const {
  std::vector<CounterValue> out;
  for (const auto& c : counters) {
    if (c.name.size() >= prefix.size() &&
        std::string_view{c.name}.substr(0, prefix.size()) == prefix) {
      out.push_back(c);
    }
  }
  return out;
}

namespace {

// Exposition-format HELP text, keyed by metric-name prefix (longest match
// wins; the fallback covers ad-hoc names). Deliberately subsystem-grained:
// the metric names themselves carry the specifics, HELP orients a human
// reading the scrape.
struct HelpEntry {
  std::string_view prefix;
  std::string_view help;
};
constexpr HelpEntry kHelpTable[] = {
    {"stream.churn.", "Live per-switch churn (top-K series + rollup)."},
    {"stream.ring", "Concurrent-publish MPSC ring metric."},
    {"stream.", "Continuous-monitor event-stream metric."},
    {"bdd.", "Resident BDD arena metric."},
    {"runtime.", "Executor runtime metric."},
    {"faults.", "Fault-engine activity metric."},
    {"tcam.", "TCAM hardware-model metric."},
    {"incident.", "Incident-provenance attribution metric."},
    {"health.", "Health/SLO engine metric (status: 0=ok 1=warn 2=critical)."},
};

std::string_view help_for(std::string_view name) {
  for (const HelpEntry& e : kHelpTable) {
    if (name.size() >= e.prefix.size() &&
        name.substr(0, e.prefix.size()) == e.prefix) {
      return e.help;
    }
  }
  return "Scout metric.";
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  // Names are sanitized through bench_key() — the one name-mangling rule
  // shared with the BENCH_*.json records, so a dashboard and a bench gate
  // always agree on a series name.
  std::ostringstream os;
  for (const auto& c : counters) {
    const std::string n = bench_key(c.name);
    os << "# HELP scout_" << n << " " << help_for(c.name) << "\n";
    os << "# TYPE scout_" << n << " counter\n";
    os << "scout_" << n << " " << c.value << "\n";
  }
  for (const auto& g : gauges) {
    const std::string n = bench_key(g.name);
    os << "# HELP scout_" << n << " " << help_for(g.name) << "\n";
    os << "# TYPE scout_" << n << " gauge\n";
    os << "scout_" << n << " " << g.value << "\n";
  }
  for (const auto& h : histograms) {
    const std::string n = bench_key(h.name);
    os << "# HELP scout_" << n << " " << help_for(h.name) << "\n";
    os << "# TYPE scout_" << n << " summary\n";
    os << "scout_" << n << "_count " << h.histogram.count() << "\n";
    os << "scout_" << n << "_sum " << h.histogram.sum() << "\n";
    for (const double q : {0.5, 0.9, 0.99}) {
      os << "scout_" << n << "{quantile=\"" << q << "\"} "
         << h.histogram.quantile(q) << "\n";
    }
  }
  return os.str();
}

void MetricsSnapshot::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& c : counters) w.field(c.name, c.value);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& g : gauges) w.field(g.name, g.value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& h : histograms) {
    w.key(h.name).begin_object();
    w.field("count", h.histogram.count());
    w.field("sum", h.histogram.sum());
    w.field("min", h.histogram.min());
    w.field("max", h.histogram.max());
    w.field("mean", h.histogram.mean());
    w.field("p50", h.histogram.quantile(0.50));
    w.field("p90", h.histogram.quantile(0.90));
    w.field("p99", h.histogram.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

MetricsRegistry::MetricsRegistry(std::size_t shards)
    : shards_(shards == 0 ? 1 : shards) {}

Counter MetricsRegistry::counter(std::string_view name) {
  SCOUT_CHECK(!in_parallel_region(),
              "MetricsRegistry::counter('" << std::string{name}
                  << "') inside a parallel region — register handles "
                     "before the workers start");
  MutexLock lk{mu_};
  const auto it = counters_by_name_.find(name);
  if (it != counters_by_name_.end()) {
    return Counter{it->second->slots.data(), shards_};
  }
  CounterEntry& entry = counter_entries_.emplace_back();
  entry.name = std::string{name};
  entry.slots.resize(shards_);
  counters_by_name_.emplace(entry.name, &entry);
  return Counter{entry.slots.data(), shards_};
}

Gauge MetricsRegistry::gauge(std::string_view name) {
  SCOUT_CHECK(!in_parallel_region(),
              "MetricsRegistry::gauge('" << std::string{name}
                  << "') inside a parallel region — register handles "
                     "before the workers start");
  MutexLock lk{mu_};
  const auto it = gauges_by_name_.find(name);
  if (it != gauges_by_name_.end()) return Gauge{&it->second->value};
  GaugeEntry& entry = gauge_entries_.emplace_back();
  entry.name = std::string{name};
  gauges_by_name_.emplace(entry.name, &entry);
  return Gauge{&entry.value};
}

Histogram MetricsRegistry::histogram(std::string_view name) {
  SCOUT_CHECK(!in_parallel_region(),
              "MetricsRegistry::histogram('" << std::string{name}
                  << "') inside a parallel region — register handles "
                     "before the workers start");
  MutexLock lk{mu_};
  const auto it = histograms_by_name_.find(name);
  if (it != histograms_by_name_.end()) {
    return Histogram{it->second->slots.data(), shards_};
  }
  HistogramEntry& entry = histogram_entries_.emplace_back();
  entry.name = std::string{name};
  entry.slots.resize(shards_);
  histograms_by_name_.emplace(entry.name, &entry);
  return Histogram{entry.slots.data(), shards_};
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  // The quiescence contract, enforced: merging the cache-padded shards
  // while workers are still storing into them would read torn state. The
  // executors close their region only after the join, so seeing it closed
  // (acquire) also means seeing every shard write.
  SCOUT_CHECK(!in_parallel_region(),
              "MetricsRegistry::snapshot() inside a parallel region — "
              "snapshots require worker quiescence");
  MutexLock lk{mu_};
  MetricsSnapshot snap;
  // The by-name maps iterate in sorted order, so the snapshot is sorted.
  snap.counters.reserve(counters_by_name_.size());
  for (const auto& [name, entry] : counters_by_name_) {
    std::uint64_t total = 0;
    for (const auto& slot : entry->slots) total += slot.value;
    snap.counters.push_back({name, total});
  }
  snap.gauges.reserve(gauges_by_name_.size());
  for (const auto& [name, entry] : gauges_by_name_) {
    snap.gauges.push_back({name, entry->value});
  }
  snap.histograms.reserve(histograms_by_name_.size());
  for (const auto& [name, entry] : histograms_by_name_) {
    LogHistogram merged;
    for (const auto& slot : entry->slots) merged.merge(slot.histogram);
    snap.histograms.push_back({name, std::move(merged)});
  }
  return snap;
}

void MetricsRegistry::reset() {
  SCOUT_CHECK(!in_parallel_region(),
              "MetricsRegistry::reset() inside a parallel region");
  MutexLock lk{mu_};
  for (auto& entry : counter_entries_) {
    for (auto& slot : entry.slots) slot.value = 0;
  }
  for (auto& entry : gauge_entries_) entry.value = 0.0;
  for (auto& entry : histogram_entries_) {
    for (auto& slot : entry.slots) slot.histogram = LogHistogram{};
  }
}

std::string bench_key(std::string_view metric_name) {
  // Prometheus metric names allow [a-zA-Z0-9_:]; every separator scout
  // uses in metric names ('.', '-', '/') flattens to '_'. Bench records
  // and the exposition format share this mapping so a series has exactly
  // one exported spelling.
  std::string out{metric_name};
  for (char& c : out) {
    if (c == '.' || c == '-' || c == '/') c = '_';
  }
  return out;
}

}  // namespace scout::telemetry
