#include "src/runtime/result_sink.h"

#include <fstream>

#include "src/common/json_writer.h"

namespace scout::runtime {

void BenchRecorder::add_row(
    std::initializer_list<std::pair<std::string_view, double>> fields) {
  std::vector<std::pair<std::string, double>> row;
  row.reserve(fields.size());
  for (const auto& [key, value] : fields) {
    row.emplace_back(std::string{key}, value);
  }
  rows_.push_back(std::move(row));
}

void BenchRecorder::add_row(
    std::vector<std::pair<std::string, double>> fields) {
  rows_.push_back(std::move(fields));
}

std::string BenchRecorder::to_json() const {
  JsonWriter writer;
  writer.begin_object();
  writer.field("bench", name_);
  writer.key("rows");
  writer.begin_array();
  for (const auto& row : rows_) {
    writer.begin_object();
    for (const auto& [key, value] : row) writer.field(key, value);
    writer.end_object();
  }
  writer.end_array();
  writer.end_object();
  return writer.str();
}

bool BenchRecorder::write_file(const std::string& path) const {
  std::ofstream out{path};
  if (!out) return false;
  out << to_json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace scout::runtime
