// Result collection for campaign fan-out.
//
// Two disciplines, by determinism requirement:
//
//  * ResultSlots<T> — one pre-allocated slot per task index, written exactly
//    once by the task that owns the index. No synchronization needed, and a
//    reduction in index order is bit-identical no matter how many workers
//    ran the campaign. Anything that flows into experiment *results* must
//    go through slots.
//
//  * WorkerLocal<T> — one cache-line-padded accumulator per worker, touched
//    lock-free by its owner and merged after the join in worker order. The
//    merged value depends on the task -> worker assignment (and float
//    accumulation order), so it changes with the thread count: use it for
//    diagnostics only (task tallies, wall time), never for results.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/check.h"

namespace scout::runtime {

template <typename T>
class ResultSlots {
 public:
  explicit ResultSlots(std::size_t count) : slots_(count) {}

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] T& operator[](std::size_t index) noexcept {
    SCOUT_DCHECK(index < slots_.size(),
                 "ResultSlots: index " << index << " of " << slots_.size());
    return slots_[index];
  }
  [[nodiscard]] const T& operator[](std::size_t index) const noexcept {
    SCOUT_DCHECK(index < slots_.size(),
                 "ResultSlots: index " << index << " of " << slots_.size());
    return slots_[index];
  }

  // Index-order iteration for the post-join reduction.
  [[nodiscard]] auto begin() const noexcept { return slots_.begin(); }
  [[nodiscard]] auto end() const noexcept { return slots_.end(); }

  [[nodiscard]] std::vector<T> take() noexcept { return std::move(slots_); }

 private:
  std::vector<T> slots_;
};

// A slot value tagged with the entity it belongs to (switch id, cell name,
// ...). Sharded per-entity work writes one Keyed slot per task; the merge
// then knows which entity produced each partial without threading a side
// table through the tasks.
template <typename Key, typename T>
struct Keyed {
  Key key{};
  T value{};
};

// Keyed reduction over a finished batch: visit every slot in index order —
// fn(acc, key, value&&) — and return the accumulator. When the submitter
// indexed the batch in key order (e.g. one task per switch, in switch
// order), the fold is bit-identical to a serial loop over the entities no
// matter how many workers ran the tasks.
template <typename Key, typename T, typename Acc, typename Fn>
[[nodiscard]] Acc merge_keyed(ResultSlots<Keyed<Key, T>>& slots, Acc acc,
                              Fn&& fn) {
  for (std::size_t i = 0; i < slots.size(); ++i) {
    fn(acc, slots[i].key, std::move(slots[i].value));
  }
  return acc;
}

template <typename T>
class WorkerLocal {
 public:
  explicit WorkerLocal(std::size_t workers, T init = T{})
      : slots_(workers ? workers : 1, Padded{std::move(init)}) {}

  [[nodiscard]] std::size_t workers() const noexcept { return slots_.size(); }
  [[nodiscard]] T& local(std::size_t worker) noexcept {
    // An out-of-range worker would alias another worker's accumulator —
    // i.e. an unsynchronized cross-thread write — so it dies in debug.
    SCOUT_DCHECK(worker < slots_.size(),
                 "WorkerLocal: worker " << worker << " of " << slots_.size());
    return slots_[worker].value;
  }

  // Fold all per-worker values in worker order: merge(acc, worker_value).
  template <typename Merge>
  [[nodiscard]] T merge(Merge&& merge_fn) const {
    T acc = slots_.front().value;
    for (std::size_t w = 1; w < slots_.size(); ++w) {
      acc = merge_fn(std::move(acc), slots_[w].value);
    }
    return acc;
  }

 private:
  struct alignas(64) Padded {
    T value;
  };
  std::vector<Padded> slots_;
};

// One reusable, worker-owned cache slot per worker — the third collection
// discipline, for expensive *scratch state* rather than results:
//
//   * the slot is touched only by its owning worker (no synchronization),
//   * its contents must never flow into results or diagnostics — tasks
//     restore the cached state to a canonical baseline between uses (see
//     faults/repair_journal.h), so results stay bit-identical to a fresh
//     build no matter which worker ran which task or whether the slot hit,
//   * a slot holds at most one entry, keyed: looking up a different key
//     misses (the caller rebuilds via store), which is what makes sweeps
//     over mixed profiles rebuild instead of repairing across profiles.
//
// Hit/miss counters are per-worker and summed after the join: like
// WorkerLocal they depend on the task -> worker assignment, so they are
// diagnostics only.
template <typename T>
class WorkerCache {
 public:
  explicit WorkerCache(std::size_t workers) : slots_(workers ? workers : 1) {}

  [[nodiscard]] std::size_t workers() const noexcept { return slots_.size(); }

  // The worker's cached entry when it was stored under `key`; nullptr on a
  // cold or key-mismatched slot (callers then build and store()). Lookup
  // does not count hits/misses: the key is typically a hash, so only the
  // caller can confirm entry identity beyond it — callers record the
  // outcome via note_hit()/note_miss() once they know (a hash collision
  // then reports as the rebuild it causes, not as a reuse).
  [[nodiscard]] T* lookup(std::size_t worker, std::uint64_t key) noexcept {
    Slot& slot = at(worker);
    if (!slot.filled || slot.key != key) return nullptr;
    return &slot.value;
  }

  void note_hit(std::size_t worker) noexcept { ++at(worker).hits; }
  void note_miss(std::size_t worker) noexcept { ++at(worker).misses; }

  // Replace the worker's slot with state keyed by `key`.
  T& store(std::size_t worker, std::uint64_t key, T value) {
    Slot& slot = at(worker);
    slot.key = key;
    slot.filled = true;
    slot.value = std::move(value);
    return slot.value;
  }

  // The worker's entry regardless of key — post-join diagnostics and
  // aggregation only (never a substitute for a keyed lookup); nullptr when
  // the slot is empty.
  [[nodiscard]] const T* peek(std::size_t worker) const noexcept {
    const Slot& slot = slots_[worker];
    return slot.filled ? &slot.value : nullptr;
  }

  // Drop the worker's entry (e.g. its repaired state failed verification).
  void invalidate(std::size_t worker) noexcept {
    Slot& slot = at(worker);
    slot.filled = false;
    slot.value = T{};
  }

  // Summed diagnostics, valid after the join.
  [[nodiscard]] std::size_t hits() const noexcept {
    std::size_t n = 0;
    for (const Slot& s : slots_) n += s.hits;
    return n;
  }
  [[nodiscard]] std::size_t misses() const noexcept {
    std::size_t n = 0;
    for (const Slot& s : slots_) n += s.misses;
    return n;
  }

 private:
  struct alignas(64) Slot {
    std::uint64_t key = 0;
    bool filled = false;
    std::size_t hits = 0;
    std::size_t misses = 0;
    T value{};
  };

  // Every mutating path funnels through here: a worker index past the
  // slot array would land on (and race with) another worker's cache line.
  [[nodiscard]] Slot& at(std::size_t worker) noexcept {
    SCOUT_DCHECK(worker < slots_.size(),
                 "WorkerCache: worker " << worker << " of " << slots_.size());
    return slots_[worker];
  }

  std::vector<Slot> slots_;
};

// Machine-readable bench output: flat numeric rows dumped as JSON through
// common/json_writer, e.g. BENCH_scalability.json mapping threads to
// wall-clock ms. write_file replaces the file — each bench run emits its
// complete mapping, and cross-PR trajectories come from comparing the file
// across checkouts/CI runs.
class BenchRecorder {
 public:
  explicit BenchRecorder(std::string bench_name)
      : name_(std::move(bench_name)) {}

  void add_row(
      std::initializer_list<std::pair<std::string_view, double>> fields);
  // Overload for dynamically-assembled rows (e.g. keys derived from
  // telemetry snapshot names at runtime).
  void add_row(std::vector<std::pair<std::string, double>> fields);

  [[nodiscard]] std::string to_json() const;

  // Write to_json() to `path`; false on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  std::string name_;
  std::vector<std::vector<std::pair<std::string, double>>> rows_;
};

}  // namespace scout::runtime
