#include "src/runtime/thread_pool.h"

#include <utility>

#include "src/common/check.h"

namespace scout::runtime {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  shards_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  workers_.reserve(threads);
  try {
    for (std::size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this, i] { worker_loop(i); });
    }
  } catch (...) {
    // Thread spawn failed partway (EAGAIN / thread limit). The workers
    // already running are parked in their shard cv; destroying a joinable
    // std::thread terminates the process, so wind them down and let the
    // caller see the original exception.
    stop_and_join();
    throw;
  }
}

ThreadPool::~ThreadPool() { stop_and_join(); }

void ThreadPool::stop_and_join() {
  for (auto& shard : shards_) {
    MutexLock lk{shard->mu};
    stopping_.store(true, std::memory_order_relaxed);
    shard->cv.notify_all();
  }
  for (std::thread& worker : workers_) worker.join();
  workers_.clear();
}

void ThreadPool::submit(std::size_t shard_index, std::function<void()> task) {
  SCOUT_DCHECK(task != nullptr, "ThreadPool::submit: empty task");
  {
    MutexLock lk{done_mu_};
    ++pending_;
  }
  Shard& shard = *shards_[shard_index % shards_.size()];
  {
    MutexLock lk{shard.mu};
    shard.tasks.push_back(std::move(task));
  }
  shard.cv.notify_one();
}

void ThreadPool::wait() {
  std::exception_ptr error;
  {
    MutexLock lk{done_mu_};
    while (pending_ != 0) done_cv_.wait(done_mu_);
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop(std::size_t index) {
  Shard& shard = *shards_[index];
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lk{shard.mu};
      while (!stopping_.load(std::memory_order_relaxed) &&
             shard.tasks.empty()) {
        shard.cv.wait(shard.mu);
      }
      // Drain remaining work even when stopping: wait() may still be
      // blocked on it, and destruction must not drop submitted tasks.
      if (shard.tasks.empty()) return;
      task = std::move(shard.tasks.front());
      shard.tasks.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    finish_task(std::move(error));
  }
}

void ThreadPool::finish_task(std::exception_ptr error) {
  MutexLock lk{done_mu_};
  if (error && !first_error_) first_error_ = std::move(error);
  --pending_;
  if (pending_ == 0) done_cv_.notify_all();
}

}  // namespace scout::runtime
