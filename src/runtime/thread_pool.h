// Sharded thread pool (no work stealing, by design).
//
// Each worker owns exactly one task queue and submitters name the target
// shard explicitly, so the task -> worker assignment is a pure function of
// the submission sequence — there is no scheduling race that could move a
// task between workers. Combined with per-task seeds (common/rng
// derive_seed) and per-task result slots (runtime/result_sink.h), this is
// what makes parallel experiment campaigns bit-identical to serial ones:
// nothing observable depends on which worker ran a task or when.
//
// The trade-off is load imbalance when task costs are skewed; campaigns
// deal with that by round-robining the grid over shards (neighbouring grid
// cells have similar cost), not by stealing.
//
// Locking discipline (statically verified by clang -Wthread-safety):
//  * Shard::mu guards that shard's task queue; workers and submitters take
//    it only for the queue push/pop, never while running a task.
//  * done_mu_ guards the completion state (pending_, first_error_); it is
//    taken after a task finishes and by wait(), never nested with a shard
//    mutex.
//  * stopping_ is an atomic flag flipped once under each shard mutex so
//    parked workers cannot miss the wakeup.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace scout::runtime {

class ThreadPool {
 public:
  // Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  // Drains outstanding work (equivalent to wait()) and joins all workers.
  // A pending exception that was never observed via wait() is dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  // Enqueue `task` onto shard `shard % size()`. Never blocks. Tasks on one
  // shard run in submission order; tasks on different shards run
  // concurrently. Thread-safe: any thread may submit.
  void submit(std::size_t shard, std::function<void()> task);

  // Block until every submitted task has finished, then rethrow the first
  // exception (in task-completion order) any task raised, if one did.
  void wait();

 private:
  struct Shard {
    Mutex mu;
    CondVar cv;
    std::deque<std::function<void()>> tasks SCOUT_GUARDED_BY(mu);
  };

  void worker_loop(std::size_t index);
  void finish_task(std::exception_ptr error);
  // Flip stopping_ under each shard mutex, wake and join every spawned
  // worker. Used by the destructor and by constructor unwind.
  void stop_and_join();

  std::vector<std::unique_ptr<Shard>> shards_;

  Mutex done_mu_;
  CondVar done_cv_;
  std::size_t pending_ SCOUT_GUARDED_BY(done_mu_) = 0;
  std::exception_ptr first_error_ SCOUT_GUARDED_BY(done_mu_);
  // Atomic because the destructor flips it once while workers read it under
  // their own shard mutex; the per-shard lock around the flip + notify is
  // what prevents missed wakeups.
  std::atomic<bool> stopping_{false};

  std::vector<std::thread> workers_;   // started last, joined in dtor
};

}  // namespace scout::runtime
