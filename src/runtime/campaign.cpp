#include "src/runtime/campaign.h"

#include <chrono>
#include <stdexcept>

#include "src/common/rng.h"

namespace scout::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double micros_since(Clock::time_point t0) noexcept {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count();
}

}  // namespace

void SerialExecutor::run(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& task) {
  // Serial runs honor the same quiescence contract as pooled ones: a task
  // that snapshots the registry it is recording into is a bug regardless
  // of the worker count, and should die identically at 1 thread.
  const ParallelSection section{metrics_.registry};
  const bool timed = static_cast<bool>(metrics_.task_run_us);
  for (std::size_t i = 0; i < count; ++i) {
    if (timed) {
      const Clock::time_point start = Clock::now();
      task(i, 0);
      metrics_.task_run_us.record(0, micros_since(start));
      metrics_.queue_wait_us.record(0, 0.0);  // inline: no queueing
      metrics_.tasks.inc(0);
    } else {
      task(i, 0);
    }
  }
}

void ThreadPoolExecutor::run(
    std::size_t count,
    const std::function<void(std::size_t, std::size_t)>& task) {
  // Region closes only after pool_.wait() below: the join's
  // happens-before covers every shard write, and the gate's release makes
  // that visible to whoever observes the region closed.
  const ParallelSection section{metrics_.registry};
  const bool timed = static_cast<bool>(metrics_.task_run_us);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t worker = i % pool_.size();
    if (timed) {
      const Clock::time_point submitted = Clock::now();
      pool_.submit(worker, [this, &task, i, worker, submitted] {
        const Clock::time_point start = Clock::now();
        metrics_.queue_wait_us.record(
            worker, std::chrono::duration<double, std::micro>(start - submitted)
                        .count());
        task(i, worker);
        metrics_.task_run_us.record(worker, micros_since(start));
        metrics_.tasks.inc(worker);
      });
    } else {
      pool_.submit(worker, [&task, i, worker] { task(i, worker); });
    }
  }
  pool_.wait();
}

std::unique_ptr<Executor> make_executor(std::size_t threads) {
  if (threads <= 1) return std::make_unique<SerialExecutor>();
  return std::make_unique<ThreadPoolExecutor>(threads);
}

CampaignGrid::CampaignGrid(std::uint64_t base_seed, std::vector<GridDim> dims)
    : base_seed_(base_seed), dims_(std::move(dims)) {
  for (const GridDim& dim : dims_) {
    if (dim.size == 0) {
      throw std::invalid_argument{"CampaignGrid: dimension '" + dim.name +
                                  "' has size 0"};
    }
    task_count_ *= dim.size;
  }
}

std::vector<std::size_t> CampaignGrid::coords(std::size_t index) const {
  if (index >= task_count_) {
    throw std::out_of_range{"CampaignGrid::coords: index out of range"};
  }
  std::vector<std::size_t> out(dims_.size(), 0);
  for (std::size_t d = dims_.size(); d-- > 0;) {
    out[d] = index % dims_[d].size;
    index /= dims_[d].size;
  }
  return out;
}

std::uint64_t CampaignGrid::cell_seed(
    const std::vector<std::size_t>& coords) const noexcept {
  std::uint64_t seed = base_seed_;
  for (const std::size_t c : coords) seed = derive_seed(seed, c);
  return seed;
}

void run_campaign(Executor& executor, const CampaignGrid& grid,
                  const std::function<void(const CampaignTask&)>& body) {
  executor.run(grid.task_count(),
               [&grid, &body](std::size_t index, std::size_t worker) {
                 CampaignTask task;
                 task.index = index;
                 task.worker = worker;
                 task.coords = grid.coords(index);
                 task.seed = grid.cell_seed(task.coords);
                 body(task);
               });
}

}  // namespace scout::runtime
