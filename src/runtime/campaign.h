// Campaign scheduler: deterministic fan-out of an experiment grid.
//
// A campaign is a cartesian grid of named dimensions (profile x fault-count
// x algorithm x run, ...). Every cell becomes one task with
//   * a flat index (mixed-radix over the dimensions, first dim slowest),
//   * coordinates decoded from that index, and
//   * a seed derived by chaining common/rng derive_seed over the base seed
//     and the coordinates.
// Because the seed is a pure function of the coordinates, a cell computes
// the same result no matter which executor, worker or ordering ran it —
// the invariant the whole parallel experiment runtime rests on.
//
// Executor is the strategy for running the indexed batch: SerialExecutor
// (tests, reference results) and ThreadPoolExecutor (sharded round-robin
// over runtime/thread_pool.h) must be observationally identical for pure
// tasks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/thread_pool.h"
#include "src/telemetry/metrics.h"

namespace scout::runtime {

// Optional executor instrumentation. Queue wait (submit -> task start) and
// task runtime are recorded per worker shard — each worker writes only its
// own histogram shard, preserving the lock-free hot path. The histograms
// are wall-time diagnostics: they vary with worker count and machine load,
// and are never part of the deterministic result contract.
//
// When `registry` is set, every Executor::run brackets its parallel
// section with the registry's quiescence gate
// (begin/end_parallel_region), which is what lets the registry *enforce*
// — not just document — that snapshots only happen while the workers are
// quiescent. Attach it whenever tasks record into the registry's sharded
// handles.
struct ExecutorMetrics {
  telemetry::Histogram queue_wait_us;
  telemetry::Histogram task_run_us;
  telemetry::Counter tasks;
  telemetry::MetricsRegistry* registry = nullptr;
};

class Executor {
 public:
  virtual ~Executor() = default;

  // Run task(index, worker) for every index in [0, count), each exactly
  // once, with worker in [0, workers()). Blocks until all tasks finished;
  // rethrows the first task exception. Tasks must not assume any ordering
  // across workers.
  virtual void run(
      std::size_t count,
      const std::function<void(std::size_t index, std::size_t worker)>& task) = 0;

  [[nodiscard]] virtual std::size_t workers() const noexcept = 0;

  // Attach instrumentation; the metrics' registry must have at least
  // workers() shards. Default handles (no registry) disable timing. Must
  // not be called while run() is in flight.
  void set_metrics(ExecutorMetrics metrics) noexcept {
    metrics_ = std::move(metrics);
  }

 protected:
  // RAII bracket for one run(): opens the registry's quiescence gate (when
  // one is attached) so a mid-run snapshot aborts instead of racing the
  // worker shards.
  class ParallelSection {
   public:
    explicit ParallelSection(telemetry::MetricsRegistry* registry) noexcept
        : registry_(registry) {
      if (registry_ != nullptr) registry_->begin_parallel_region();
    }
    ~ParallelSection() {
      if (registry_ != nullptr) registry_->end_parallel_region();
    }
    ParallelSection(const ParallelSection&) = delete;
    ParallelSection& operator=(const ParallelSection&) = delete;

   private:
    telemetry::MetricsRegistry* registry_;
  };

  ExecutorMetrics metrics_;
};

// Runs tasks inline, in index order, all on worker 0. The reference
// executor: parallel results are validated against its output.
class SerialExecutor final : public Executor {
 public:
  void run(std::size_t count,
           const std::function<void(std::size_t, std::size_t)>& task) override;
  [[nodiscard]] std::size_t workers() const noexcept override { return 1; }
};

// Fans indices over a sharded ThreadPool, index i on shard i % workers().
// The static round-robin keeps the task -> worker map deterministic.
class ThreadPoolExecutor final : public Executor {
 public:
  explicit ThreadPoolExecutor(std::size_t threads) : pool_(threads) {}

  void run(std::size_t count,
           const std::function<void(std::size_t, std::size_t)>& task) override;
  [[nodiscard]] std::size_t workers() const noexcept override {
    return pool_.size();
  }

 private:
  ThreadPool pool_;
};

// threads <= 1 -> SerialExecutor, else ThreadPoolExecutor{threads}.
[[nodiscard]] std::unique_ptr<Executor> make_executor(std::size_t threads);

// ---------------------------------------------------------------------------
// Campaign grid
// ---------------------------------------------------------------------------

struct GridDim {
  std::string name;
  std::size_t size = 1;
};

struct CampaignTask {
  std::size_t index = 0;   // flat cell index in [0, task_count())
  std::size_t worker = 0;  // executing worker in [0, executor.workers())
  std::uint64_t seed = 0;  // derive_seed chain over (base_seed, coords...)
  std::vector<std::size_t> coords;  // one entry per grid dimension
};

class CampaignGrid {
 public:
  CampaignGrid(std::uint64_t base_seed, std::vector<GridDim> dims);

  [[nodiscard]] std::uint64_t base_seed() const noexcept { return base_seed_; }
  [[nodiscard]] const std::vector<GridDim>& dims() const noexcept {
    return dims_;
  }
  [[nodiscard]] std::size_t task_count() const noexcept { return task_count_; }

  // Mixed-radix decode of a flat index; first dimension varies slowest.
  [[nodiscard]] std::vector<std::size_t> coords(std::size_t index) const;

  // Seed of the cell at `coords`: derive_seed folded over each coordinate.
  [[nodiscard]] std::uint64_t cell_seed(
      const std::vector<std::size_t>& coords) const noexcept;
  [[nodiscard]] std::uint64_t task_seed(std::size_t index) const {
    return cell_seed(coords(index));
  }

 private:
  std::uint64_t base_seed_ = 0;
  std::vector<GridDim> dims_;
  std::size_t task_count_ = 1;
};

// Fan every grid cell out over the executor. `body` receives a fully
// populated CampaignTask; results should go into per-task slots
// (runtime/result_sink.h) and be merged in index order after this returns.
void run_campaign(Executor& executor, const CampaignGrid& grid,
                  const std::function<void(const CampaignTask&)>& body);

}  // namespace scout::runtime
