// Bipartite risk models (paper §III-B).
//
// Elements (left side) are the things failures are observed on; risks
// (right side) are the policy/physical objects failures are attributed to.
//
//  * Switch risk model: one model per switch; element = EPG pair deployed on
//    that switch; risks = the pair's policy objects (VRF, EPGs, contracts,
//    filters).
//  * Controller risk model: one global model; element = (switch, EPG pair)
//    triplet; risks = the pair's policy objects plus the switch itself.
//
// Edges are created at build time from the policy dependency structure and
// marked `fail` during augmentation from the L-T checker's missing rules
// (§III-C). An element with >= 1 failed edge is an observation; the set of
// observations is the failure signature.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/checker/logical_rule.h"
#include "src/common/hash.h"
#include "src/policy/network_policy.h"
#include "src/policy/policy_index.h"

namespace scout {

struct RiskElement {
  SwitchId sw;
  EpgPair pair;

  friend constexpr auto operator<=>(const RiskElement&,
                                    const RiskElement&) noexcept = default;
};

inline std::ostream& operator<<(std::ostream& os, const RiskElement& e) {
  return os << "S" << e.sw << '-' << e.pair;
}

struct RiskElementHash {
  std::size_t operator()(const RiskElement& e) const noexcept {
    return hash_all(e.sw, e.pair);
  }
};

enum class RiskModelKind : std::uint8_t { kSwitch, kController };

class RiskModel {
 public:
  using ElementIdx = std::uint32_t;
  using RiskIdx = std::uint32_t;

  // Switch risk model for `sw` (paper Figure 4(a)).
  static RiskModel build_switch_model(const PolicyIndex& index, SwitchId sw);

  // Controller risk model over all switches (paper Figure 4(b)).
  static RiskModel build_controller_model(const PolicyIndex& index);

  // Empty model for hand-constructed bipartite graphs (tests, tooling,
  // paper-figure reproductions).
  static RiskModel empty(RiskModelKind kind);
  ElementIdx add_element(const RiskElement& e) { return intern_element(e); }
  RiskIdx add_risk(ObjectRef object) { return intern_risk(object); }
  void add_dependency(ElementIdx e, RiskIdx r) { add_edge(e, r); }

  [[nodiscard]] RiskModelKind kind() const noexcept { return kind_; }

  // -- structure --------------------------------------------------------------
  [[nodiscard]] std::size_t element_count() const noexcept {
    return elements_.size();
  }
  [[nodiscard]] std::size_t risk_count() const noexcept {
    return risks_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edge_count_; }

  [[nodiscard]] const RiskElement& element(ElementIdx e) const {
    return elements_[e];
  }
  [[nodiscard]] ObjectRef risk(RiskIdx r) const { return risks_[r]; }

  [[nodiscard]] std::span<const RiskIdx> risks_of(ElementIdx e) const {
    return elem_risks_[e];
  }
  [[nodiscard]] std::span<const ElementIdx> elements_of(RiskIdx r) const {
    return risk_elems_[r];
  }

  [[nodiscard]] bool has_risk(ObjectRef object) const noexcept {
    return risk_idx_.contains(object);
  }
  [[nodiscard]] RiskIdx risk_index(ObjectRef object) const;
  [[nodiscard]] bool has_element(const RiskElement& e) const noexcept {
    return elem_idx_.contains(e);
  }
  [[nodiscard]] ElementIdx element_index(const RiskElement& e) const;

  // -- failure annotation ------------------------------------------------------
  // Mark the edge (element, risk) failed. No-op if the edge doesn't exist.
  void mark_edge_failed(ElementIdx e, RiskIdx r);

  // Augment from checker output: for each missing rule, mark the edges
  // between its (switch, pair) element and each of its provenance objects
  // (plus the switch object in the controller model). Missing rules whose
  // element is not in this model (e.g. another switch's rules against a
  // single-switch model) are ignored.
  void augment(std::span<const LogicalRule> missing_rules);

  [[nodiscard]] bool edge_failed(ElementIdx e, RiskIdx r) const noexcept;
  [[nodiscard]] std::span<const RiskIdx> failed_risks_of(ElementIdx e) const;
  [[nodiscard]] bool element_failed(ElementIdx e) const noexcept {
    return !failed_risks_[e].empty();
  }

  // Observation set F: indices of elements with >= 1 failed edge.
  [[nodiscard]] std::vector<ElementIdx> failure_signature() const;

  // Number of elements of risk r that have a failed edge *to r* (|O_i|).
  [[nodiscard]] std::size_t failed_degree(RiskIdx r) const noexcept {
    return failed_count_per_risk_[r];
  }

  // Distinct risks adjacent to at least one failed element: the suspect set
  // an admin would face without localization (denominator of the paper's
  // suspect-set-reduction ratio γ).
  [[nodiscard]] std::vector<RiskIdx> suspect_set() const;

  void clear_failures();

 private:
  RiskModel() = default;

  ElementIdx intern_element(const RiskElement& e);
  RiskIdx intern_risk(ObjectRef object);
  void add_edge(ElementIdx e, RiskIdx r);

  RiskModelKind kind_ = RiskModelKind::kSwitch;
  std::vector<RiskElement> elements_;
  std::vector<ObjectRef> risks_;
  std::unordered_map<RiskElement, ElementIdx, RiskElementHash> elem_idx_;
  std::unordered_map<ObjectRef, RiskIdx> risk_idx_;
  std::vector<std::vector<RiskIdx>> elem_risks_;
  std::vector<std::vector<ElementIdx>> risk_elems_;
  // Failed edges, stored per element (sorted); per-risk failed counts.
  std::vector<std::vector<RiskIdx>> failed_risks_;
  std::vector<std::size_t> failed_count_per_risk_;
  std::size_t edge_count_ = 0;
};

}  // namespace scout
