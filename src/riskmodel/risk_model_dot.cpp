#include "src/riskmodel/risk_model_dot.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>
#include <vector>

namespace scout {

std::string risk_model_to_dot(const RiskModel& model,
                              const DotOptions& options) {
  // Pick the elements to render: failures first, then healthy ones.
  std::vector<RiskModel::ElementIdx> elements;
  for (RiskModel::ElementIdx e = 0; e < model.element_count(); ++e) {
    if (model.element_failed(e)) elements.push_back(e);
  }
  for (RiskModel::ElementIdx e = 0; e < model.element_count(); ++e) {
    if (!model.element_failed(e)) elements.push_back(e);
  }
  if (options.max_elements > 0 && elements.size() > options.max_elements) {
    elements.resize(options.max_elements);
  }
  const std::unordered_set<RiskModel::ElementIdx> kept(elements.begin(),
                                                       elements.end());

  std::ostringstream os;
  os << "digraph riskmodel {\n"
     << "  rankdir=LR;\n"
     << "  node [fontname=\"Helvetica\"];\n"
     << "  subgraph cluster_elements {\n"
     << "    label=\""
     << (model.kind() == RiskModelKind::kSwitch ? "EPG pairs"
                                                : "switch-EPG-pair triplets")
     << "\";\n";
  for (const auto e : elements) {
    os << "    e" << e << " [shape=box,label=\"" << model.element(e)
       << '"' << (model.element_failed(e) ? ",color=red,fontcolor=red" : "")
       << "];\n";
  }
  os << "  }\n"
     << "  subgraph cluster_risks {\n    label=\"shared risks\";\n";
  for (RiskModel::RiskIdx r = 0; r < model.risk_count(); ++r) {
    bool referenced = options.include_isolated_risks;
    if (!referenced) {
      for (const auto e : model.elements_of(r)) {
        if (kept.contains(e)) {
          referenced = true;
          break;
        }
      }
    }
    if (!referenced) continue;
    os << "    r" << r << " [shape=ellipse,label=\"" << model.risk(r)
       << '"' << (model.failed_degree(r) > 0 ? ",color=red,fontcolor=red"
                                             : "")
       << "];\n";
  }
  os << "  }\n";
  for (const auto e : elements) {
    for (const auto r : model.risks_of(e)) {
      os << "  e" << e << " -> r" << r;
      if (model.edge_failed(e, r)) {
        os << " [color=red,style=dashed,label=\"fail\"]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace scout
