#include "src/riskmodel/risk_model.h"

#include <algorithm>
#include <stdexcept>

namespace scout {

RiskModel::ElementIdx RiskModel::intern_element(const RiskElement& e) {
  const auto [it, inserted] =
      elem_idx_.try_emplace(e, static_cast<ElementIdx>(elements_.size()));
  if (inserted) {
    elements_.push_back(e);
    elem_risks_.emplace_back();
    failed_risks_.emplace_back();
  }
  return it->second;
}

RiskModel::RiskIdx RiskModel::intern_risk(ObjectRef object) {
  const auto [it, inserted] =
      risk_idx_.try_emplace(object, static_cast<RiskIdx>(risks_.size()));
  if (inserted) {
    risks_.push_back(object);
    risk_elems_.emplace_back();
    failed_count_per_risk_.push_back(0);
  }
  return it->second;
}

void RiskModel::add_edge(ElementIdx e, RiskIdx r) {
  elem_risks_[e].push_back(r);
  risk_elems_[r].push_back(e);
  ++edge_count_;
}

RiskModel RiskModel::empty(RiskModelKind kind) {
  RiskModel m;
  m.kind_ = kind;
  return m;
}

RiskModel RiskModel::build_switch_model(const PolicyIndex& index,
                                        SwitchId sw) {
  RiskModel m;
  m.kind_ = RiskModelKind::kSwitch;
  for (const EpgPair& pair : index.pairs_on_switch(sw)) {
    const ElementIdx e = m.intern_element(RiskElement{sw, pair});
    for (ObjectRef obj : index.objects_of(pair)) {
      m.add_edge(e, m.intern_risk(obj));
    }
  }
  return m;
}

RiskModel RiskModel::build_controller_model(const PolicyIndex& index) {
  RiskModel m;
  m.kind_ = RiskModelKind::kController;
  for (const EpgPair& pair : index.pairs()) {
    const auto& objects = index.objects_of(pair);
    for (SwitchId sw : index.switches_of(pair)) {
      const ElementIdx e = m.intern_element(RiskElement{sw, pair});
      for (ObjectRef obj : objects) {
        m.add_edge(e, m.intern_risk(obj));
      }
      // The switch is a physical shared risk for every pair deployed on it
      // (Figure 3 includes switches among the objects pairs depend on).
      m.add_edge(e, m.intern_risk(ObjectRef::of(sw)));
    }
  }
  return m;
}

RiskModel::RiskIdx RiskModel::risk_index(ObjectRef object) const {
  const auto it = risk_idx_.find(object);
  if (it == risk_idx_.end()) {
    throw std::out_of_range{"RiskModel: unknown risk object"};
  }
  return it->second;
}

RiskModel::ElementIdx RiskModel::element_index(const RiskElement& e) const {
  const auto it = elem_idx_.find(e);
  if (it == elem_idx_.end()) {
    throw std::out_of_range{"RiskModel: unknown element"};
  }
  return it->second;
}

void RiskModel::mark_edge_failed(ElementIdx e, RiskIdx r) {
  // Edge must exist in the dependency structure.
  const auto& risks = elem_risks_[e];
  if (std::find(risks.begin(), risks.end(), r) == risks.end()) return;
  auto& failed = failed_risks_[e];
  const auto pos = std::lower_bound(failed.begin(), failed.end(), r);
  if (pos != failed.end() && *pos == r) return;  // already failed
  failed.insert(pos, r);
  ++failed_count_per_risk_[r];
}

void RiskModel::augment(std::span<const LogicalRule> missing_rules) {
  for (const LogicalRule& lr : missing_rules) {
    if (!lr.prov.contract.valid()) continue;  // default-deny: no provenance
    const RiskElement key{lr.prov.sw, lr.prov.pair};
    const auto it = elem_idx_.find(key);
    if (it == elem_idx_.end()) continue;  // outside this model's scope
    const ElementIdx e = it->second;
    for (ObjectRef obj : lr.prov.policy_objects()) {
      const auto rit = risk_idx_.find(obj);
      if (rit != risk_idx_.end()) mark_edge_failed(e, rit->second);
    }
    if (kind_ == RiskModelKind::kController) {
      const auto rit = risk_idx_.find(ObjectRef::of(lr.prov.sw));
      if (rit != risk_idx_.end()) mark_edge_failed(e, rit->second);
    }
  }
}

bool RiskModel::edge_failed(ElementIdx e, RiskIdx r) const noexcept {
  const auto& failed = failed_risks_[e];
  return std::binary_search(failed.begin(), failed.end(), r);
}

std::span<const RiskModel::RiskIdx> RiskModel::failed_risks_of(
    ElementIdx e) const {
  return failed_risks_[e];
}

std::vector<RiskModel::ElementIdx> RiskModel::failure_signature() const {
  std::vector<ElementIdx> out;
  for (ElementIdx e = 0; e < elements_.size(); ++e) {
    if (!failed_risks_[e].empty()) out.push_back(e);
  }
  return out;
}

std::vector<RiskModel::RiskIdx> RiskModel::suspect_set() const {
  std::vector<bool> suspect(risks_.size(), false);
  for (ElementIdx e = 0; e < elements_.size(); ++e) {
    if (failed_risks_[e].empty()) continue;
    for (RiskIdx r : elem_risks_[e]) suspect[r] = true;
  }
  std::vector<RiskIdx> out;
  for (RiskIdx r = 0; r < risks_.size(); ++r) {
    if (suspect[r]) out.push_back(r);
  }
  return out;
}

void RiskModel::clear_failures() {
  for (auto& v : failed_risks_) v.clear();
  std::fill(failed_count_per_risk_.begin(), failed_count_per_risk_.end(), 0);
}

}  // namespace scout
