// Graphviz export of risk models — renders the paper's Figure 4 style
// bipartite diagrams for debugging and documentation. Failed edges are
// drawn red/dashed, observations (failed elements) red, exactly like the
// paper's figures.
#pragma once

#include <string>

#include "src/riskmodel/risk_model.h"

namespace scout {

struct DotOptions {
  // Cap the number of elements rendered (big models are unreadable as
  // graphs); 0 = no cap. Elements with failed edges are kept first.
  std::size_t max_elements = 0;
  bool include_isolated_risks = false;
};

[[nodiscard]] std::string risk_model_to_dot(const RiskModel& model,
                                            const DotOptions& options = {});

}  // namespace scout
