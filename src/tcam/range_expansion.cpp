#include "src/tcam/range_expansion.h"

#include <cassert>
#include <stdexcept>

namespace scout {

std::vector<TernaryField> expand_port_range(std::uint32_t lo, std::uint32_t hi,
                                            int width) {
  if (width <= 0 || width > 31) {
    throw std::invalid_argument{"expand_port_range: width out of range"};
  }
  const std::uint64_t full = (1ULL << width) - 1ULL;
  if (lo > hi || hi > full) {
    throw std::invalid_argument{"expand_port_range: bad interval"};
  }

  std::vector<TernaryField> cubes;
  std::uint64_t cur = lo;
  const std::uint64_t end = hi;
  while (cur <= end) {
    // Largest aligned power-of-two block starting at `cur` that fits in the
    // remaining interval.
    int k = 0;
    while (k < width) {
      const std::uint64_t block_mask = (1ULL << (k + 1)) - 1ULL;
      if ((cur & block_mask) != 0) break;          // not aligned for k+1
      if (cur + block_mask > end) break;           // overshoots the interval
      ++k;
    }
    const std::uint64_t low_bits = (1ULL << k) - 1ULL;
    cubes.push_back(TernaryField{static_cast<std::uint32_t>(cur),
                                 static_cast<std::uint32_t>(full & ~low_bits)});
    cur += low_bits + 1ULL;
    if (cur == 0) break;  // wrapped (only possible at width boundaries)
  }
  return cubes;
}

bool cubes_cover_exactly(const std::vector<TernaryField>& cubes,
                         std::uint32_t lo, std::uint32_t hi, int width) {
  // Brute-force membership check; widths here are small (<= 16 in practice).
  const std::uint64_t full = (1ULL << width) - 1ULL;
  for (std::uint64_t v = 0; v <= full; ++v) {
    std::size_t hits = 0;
    for (const auto& c : cubes) {
      if (c.matches(static_cast<std::uint32_t>(v))) ++hits;
    }
    const bool inside = v >= lo && v <= hi;
    if (inside && hits != 1) return false;   // must be covered exactly once
    if (!inside && hits != 0) return false;  // must not be covered
  }
  return true;
}

}  // namespace scout
