#include "src/tcam/tcam_table.h"

#include <algorithm>

namespace scout {

InstallStatus TcamTable::install(const TcamRule& rule) {
  if (rules_.size() >= capacity_) return InstallStatus::kOverflow;
  // Insert before the first rule with a strictly greater priority so equal
  // priorities preserve install order (hardware tie-break).
  const auto pos = std::upper_bound(
      rules_.begin(), rules_.end(), rule,
      [](const TcamRule& a, const TcamRule& b) {
        return a.priority < b.priority;
      });
  rules_.insert(pos, rule);
  return InstallStatus::kOk;
}

std::size_t TcamTable::remove_if(
    const std::function<bool(const TcamRule&)>& pred) {
  const auto it = std::remove_if(rules_.begin(), rules_.end(), pred);
  const auto removed = static_cast<std::size_t>(rules_.end() - it);
  rules_.erase(it, rules_.end());
  return removed;
}

std::optional<RuleAction> TcamTable::lookup(
    const PacketHeader& p) const noexcept {
  for (const auto& r : rules_) {
    if (r.matches(p)) return r.action;
  }
  return std::nullopt;
}

std::optional<TcamTable::Corruption> TcamTable::corrupt_random_bit(Rng& rng) {
  // Collect indices of rules that are not the catch-all default (corrupting
  // the default deny is possible in hardware but makes every experiment
  // trivially detect "everything broke"; the paper's corruption scenario is
  // bit errors on specific rule fields).
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].vrf.mask != 0 || rules_[i].src_epg.mask != 0) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) return std::nullopt;
  const std::size_t idx = candidates[rng.below(candidates.size())];
  TcamRule& r = rules_[idx];
  const TcamRule before = r;

  TernaryField* fields[] = {&r.vrf, &r.src_epg, &r.dst_epg, &r.proto,
                            &r.dst_port};
  const int widths[] = {FieldWidths::kVrf, FieldWidths::kEpg, FieldWidths::kEpg,
                        FieldWidths::kProto, FieldWidths::kPort};
  const std::size_t f = rng.below(5);
  const auto bit = static_cast<std::uint32_t>(rng.below(
      static_cast<std::uint64_t>(widths[f])));
  if (rng.chance(0.5)) {
    fields[f]->value ^= (1U << bit);
    // Keep the value/mask invariant: value bits outside the mask stay 0.
    fields[f]->value &= fields[f]->mask;
  } else {
    fields[f]->mask ^= (1U << bit);
    fields[f]->value &= fields[f]->mask;
  }
  return Corruption{idx, before, r};
}

bool TcamTable::remove_one(const TcamRule& rule) {
  const auto it = std::find(rules_.begin(), rules_.end(), rule);
  if (it == rules_.end()) return false;
  rules_.erase(it);
  return true;
}

bool TcamTable::replace_one(const TcamRule& from, const TcamRule& to) {
  if (from.priority != to.priority) {
    if (!remove_one(from)) return false;
    return install(to) == InstallStatus::kOk;
  }
  const auto it = std::find(rules_.begin(), rules_.end(), from);
  if (it == rules_.end()) return false;
  *it = to;
  return true;
}

std::optional<TcamRule> TcamTable::evict_one() {
  // The last rule is the lowest priority; skip a trailing catch-all deny.
  for (auto it = rules_.rbegin(); it != rules_.rend(); ++it) {
    if (it->wildcard_all()) continue;
    const TcamRule evicted = *it;
    rules_.erase(std::next(it).base());
    return evicted;
  }
  return std::nullopt;
}

}  // namespace scout
