#include "src/tcam/tcam_table.h"

#include <algorithm>

#include "src/faults/fault_policy.h"

namespace scout {

// Out of line so the unique_ptr<EvictionPolicy> member constructs,
// destructs and moves against the complete type. Moves are manual because
// the atomic eviction counter is not movable; tables only move during
// single-threaded fabric construction, so relaxed transfer is exact.
TcamTable::TcamTable(std::size_t capacity) : capacity_(capacity) {}
TcamTable::~TcamTable() = default;
TcamTable::TcamTable(TcamTable&& other) noexcept
    : capacity_(other.capacity_),
      rules_(std::move(other.rules_)),
      meta_(std::move(other.meta_)),
      next_stamp_(other.next_stamp_),
      evictions_(other.evictions_.load(std::memory_order_relaxed)),
      policy_(std::move(other.policy_)) {}
TcamTable& TcamTable::operator=(TcamTable&& other) noexcept {
  capacity_ = other.capacity_;
  rules_ = std::move(other.rules_);
  meta_ = std::move(other.meta_);
  next_stamp_ = other.next_stamp_;
  evictions_.store(other.evictions_.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  policy_ = std::move(other.policy_);
  return *this;
}

InstallStatus TcamTable::install(const TcamRule& rule) {
  if (rules_.size() >= capacity_) return InstallStatus::kOverflow;
  // Insert before the first rule with a strictly greater priority so equal
  // priorities preserve install order (hardware tie-break).
  const auto pos = std::upper_bound(
      rules_.begin(), rules_.end(), rule,
      [](const TcamRule& a, const TcamRule& b) {
        return a.priority < b.priority;
      });
  const auto idx = static_cast<std::size_t>(pos - rules_.begin());
  rules_.insert(pos, rule);
  const std::uint64_t stamp = ++next_stamp_;
  meta_.insert(meta_.begin() + static_cast<std::ptrdiff_t>(idx),
               RuleMeta{stamp, stamp});
  return InstallStatus::kOk;
}

std::size_t TcamTable::remove_if(
    const std::function<bool(const TcamRule&)>& pred) {
  // Manual compaction instead of std::remove_if so the meta vector stays
  // parallel to the surviving rules.
  std::size_t out = 0;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (pred(rules_[i])) continue;
    if (out != i) {
      rules_[out] = rules_[i];
      meta_[out] = meta_[i];
    }
    ++out;
  }
  const std::size_t removed = rules_.size() - out;
  rules_.resize(out);
  meta_.resize(out);
  return removed;
}

std::optional<RuleAction> TcamTable::lookup(
    const PacketHeader& p) const noexcept {
  for (const auto& r : rules_) {
    if (r.matches(p)) return r.action;
  }
  return std::nullopt;
}

std::optional<TcamTable::Corruption> TcamTable::corrupt_random_bit(Rng& rng) {
  // Collect indices of rules that are not the catch-all default (corrupting
  // the default deny is possible in hardware but makes every experiment
  // trivially detect "everything broke"; the paper's corruption scenario is
  // bit errors on specific rule fields).
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].vrf.mask != 0 || rules_[i].src_epg.mask != 0) {
      candidates.push_back(i);
    }
  }
  if (candidates.empty()) return std::nullopt;
  const std::size_t idx = candidates[rng.below(candidates.size())];
  TcamRule& r = rules_[idx];
  const TcamRule before = r;

  TernaryField* fields[] = {&r.vrf, &r.src_epg, &r.dst_epg, &r.proto,
                            &r.dst_port};
  const int widths[] = {FieldWidths::kVrf, FieldWidths::kEpg, FieldWidths::kEpg,
                        FieldWidths::kProto, FieldWidths::kPort};
  const std::size_t f = rng.below(5);
  const auto bit = static_cast<std::uint32_t>(rng.below(
      static_cast<std::uint64_t>(widths[f])));
  if (rng.chance(0.5)) {
    fields[f]->value ^= (1U << bit);
    // Keep the value/mask invariant: value bits outside the mask stay 0.
    fields[f]->value &= fields[f]->mask;
  } else {
    fields[f]->mask ^= (1U << bit);
    fields[f]->value &= fields[f]->mask;
  }
  return Corruption{idx, before, r};
}

void TcamTable::set_eviction_policy(std::unique_ptr<EvictionPolicy> policy) {
  policy_ = std::move(policy);
}

std::string_view TcamTable::eviction_policy_name() const noexcept {
  return policy_ ? policy_->name() : kDefaultEvictionPolicy;
}

bool TcamTable::remove_one(const TcamRule& rule) {
  const auto it = std::find(rules_.begin(), rules_.end(), rule);
  if (it == rules_.end()) return false;
  meta_.erase(meta_.begin() + (it - rules_.begin()));
  rules_.erase(it);
  return true;
}

bool TcamTable::replace_one(const TcamRule& from, const TcamRule& to) {
  if (from.priority != to.priority) {
    if (!remove_one(from)) return false;
    return install(to) == InstallStatus::kOk;
  }
  const auto it = std::find(rules_.begin(), rules_.end(), from);
  if (it == rules_.end()) return false;
  *it = to;
  // In-place overwrite refreshes the touch stamp (lru-touch signal); the
  // install stamp keeps the original entry's age.
  meta_[static_cast<std::size_t>(it - rules_.begin())].touched = ++next_stamp_;
  return true;
}

std::optional<TcamRule> TcamTable::evict_one() {
  std::size_t victim = EvictionPolicy::kNone;
  if (policy_) {
    victim = policy_->pick_victim(rules_, meta_);
  } else {
    // Historical behaviour: the last rule is the lowest priority; skip a
    // trailing catch-all deny.
    for (std::size_t i = rules_.size(); i > 0; --i) {
      if (!rules_[i - 1].wildcard_all()) {
        victim = i - 1;
        break;
      }
    }
  }
  if (victim == EvictionPolicy::kNone || victim >= rules_.size()) {
    return std::nullopt;
  }
  const TcamRule evicted = rules_[victim];
  rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(victim));
  meta_.erase(meta_.begin() + static_cast<std::ptrdiff_t>(victim));
  evictions_.fetch_add(1, std::memory_order_relaxed);
  return evicted;
}

}  // namespace scout
