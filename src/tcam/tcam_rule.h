// Ternary rule model. A TCAM rule matches a packet header on
// (VRF, source EPG class, destination EPG class, IP protocol, destination
// port), each field as value/mask ternary (mask bit set = care). This is the
// rule shape of paper Figure 2: "VRF:101, Web, App, Port80 -> Allow", plus a
// catch-all deny at lowest priority.
//
// Field widths are fixed and documented; they bound the BDD variable count
// in the equivalence checker (12+16+16+8+16 = 68 variables).
#pragma once

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

#include "src/common/hash.h"
#include "src/common/ids.h"
#include "src/policy/filter.h"

namespace scout {

// Concrete packet header in the policy-relevant fields. Endpoint-level
// IP/MAC matching is abstracted to EPG class ids, which is exactly how
// APIC-style fabrics match policy TCAM (source/dest class id).
struct PacketHeader {
  std::uint16_t vrf = 0;      // 12 significant bits
  std::uint16_t src_epg = 0;  // 16 bits
  std::uint16_t dst_epg = 0;  // 16 bits
  std::uint8_t proto = 0;     // 8 bits
  std::uint16_t dst_port = 0; // 16 bits
};

struct TernaryField {
  std::uint32_t value = 0;
  std::uint32_t mask = 0;  // 1-bit = care; value bits outside mask are 0

  [[nodiscard]] constexpr bool matches(std::uint32_t v) const noexcept {
    return (v & mask) == value;
  }
  [[nodiscard]] static constexpr TernaryField exact(std::uint32_t v,
                                                    int width) noexcept {
    const std::uint32_t m =
        width >= 32 ? 0xFFFFFFFFU : ((1U << width) - 1U);
    return TernaryField{v & m, m};
  }
  [[nodiscard]] static constexpr TernaryField wildcard() noexcept {
    return TernaryField{0, 0};
  }
  friend constexpr auto operator<=>(TernaryField, TernaryField) noexcept =
      default;
};

enum class RuleAction : std::uint8_t { kAllow, kDeny };

struct FieldWidths {
  static constexpr int kVrf = 12;
  static constexpr int kEpg = 16;
  static constexpr int kProto = 8;
  static constexpr int kPort = 16;
  static constexpr int kTotal = kVrf + 2 * kEpg + kProto + kPort;  // 68
};

struct TcamRule {
  // Lower number = matched first (hardware priority).
  std::uint32_t priority = 0;
  TernaryField vrf;
  TernaryField src_epg;
  TernaryField dst_epg;
  TernaryField proto;
  TernaryField dst_port;
  RuleAction action = RuleAction::kAllow;

  [[nodiscard]] bool matches(const PacketHeader& p) const noexcept {
    return vrf.matches(p.vrf) && src_epg.matches(p.src_epg) &&
           dst_epg.matches(p.dst_epg) && proto.matches(p.proto) &&
           dst_port.matches(p.dst_port);
  }

  // Match-key equality ignoring priority (used by diff bookkeeping).
  [[nodiscard]] bool same_match(const TcamRule& o) const noexcept {
    return vrf == o.vrf && src_epg == o.src_epg && dst_epg == o.dst_epg &&
           proto == o.proto && dst_port == o.dst_port && action == o.action;
  }

  // Do the two match cubes share at least one packet? Two ternary fields
  // intersect iff their values agree on every bit both care about.
  [[nodiscard]] bool overlaps(const TcamRule& o) const noexcept {
    const auto meet = [](TernaryField a, TernaryField b) noexcept {
      return ((a.value ^ b.value) & a.mask & b.mask) == 0;
    };
    return meet(vrf, o.vrf) && meet(src_epg, o.src_epg) &&
           meet(dst_epg, o.dst_epg) && meet(proto, o.proto) &&
           meet(dst_port, o.dst_port);
  }

  // Every field fully wildcarded (the shape of the catch-all default deny).
  [[nodiscard]] bool wildcard_all() const noexcept {
    return vrf.mask == 0 && src_epg.mask == 0 && dst_epg.mask == 0 &&
           proto.mask == 0 && dst_port.mask == 0;
  }

  // Full equality, priority included (repair-journal exact undo).
  friend constexpr bool operator==(const TcamRule&,
                                   const TcamRule&) noexcept = default;

  // Order-sensitive fold of every field (priority and action included)
  // into a running hash — the one definition shared by the network state
  // fingerprint and the stream verdict digests, so a new field has one
  // place to be added.
  [[nodiscard]] std::uint64_t fold_hash(std::uint64_t h) const noexcept {
    return hash_all(h, priority, vrf.value, vrf.mask, src_epg.value,
                    src_epg.mask, dst_epg.value, dst_epg.mask, proto.value,
                    proto.mask, dst_port.value, dst_port.mask,
                    static_cast<unsigned>(action));
  }

  // Fully-specified allow rule with an exact port cube.
  static TcamRule exact_allow(std::uint32_t priority, std::uint16_t vrf,
                              std::uint16_t src_epg, std::uint16_t dst_epg,
                              std::uint8_t proto, TernaryField port) noexcept;

  // The implicit whitelist default: "*,*,*,* -> Deny" (Figure 2, rule 7).
  static TcamRule default_deny(std::uint32_t priority) noexcept;

  friend std::ostream& operator<<(std::ostream& os, const TcamRule& r);
};

}  // namespace scout
