// Port-range to ternary-prefix expansion.
//
// TCAMs match value/mask cubes, not intervals. A filter entry with a port
// range [lo, hi] must be expanded into a set of prefix cubes whose union is
// exactly the interval. The classic worst case for a w-bit field is 2w-2
// cubes (e.g. [1, 65534] for w=16 needs 30).
#pragma once

#include <cstdint>
#include <vector>

#include "src/tcam/tcam_rule.h"

namespace scout {

// Minimal prefix-cube cover of [lo, hi] (inclusive) over a `width`-bit
// field. Returned cubes are disjoint and sorted by value. Requires
// lo <= hi < 2^width.
[[nodiscard]] std::vector<TernaryField> expand_port_range(std::uint32_t lo,
                                                          std::uint32_t hi,
                                                          int width = 16);

// True iff `cubes` cover exactly [lo, hi] with no overlap — used by the
// property tests and by TCAM audit tooling.
[[nodiscard]] bool cubes_cover_exactly(const std::vector<TernaryField>& cubes,
                                       std::uint32_t lo, std::uint32_t hi,
                                       int width = 16);

}  // namespace scout
