// TCAM table model: priority-ordered rule storage with a hard capacity,
// first-match semantics, utilization accounting, local rule eviction and
// bit-level corruption injection. These are exactly the §II-B failure
// sources: "TCAM has insufficient space", "the agent may run a local rule
// eviction mechanism", "TCAM is simply corrupted due to hardware failure".
//
// Which entry the local eviction mechanism spills is a pluggable strategy
// (src/faults/fault_policy.h): the table keeps per-entry install/touch
// stamps and hands them to an EvictionPolicy when one is set; without one
// it keeps the historical lowest-priority behaviour. Stamps, the policy
// object and the eviction counter are bookkeeping, not network state —
// they steer fault selection but stay out of state_fingerprint(), so a
// journaled repair restores fingerprint-identical state under any policy.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/tcam/tcam_rule.h"

namespace scout {

class EvictionPolicy;  // src/faults/fault_policy.h

enum class InstallStatus : std::uint8_t { kOk, kOverflow };

// Per-entry bookkeeping parallel to the rule vector. `installed` is the
// monotone stamp assigned when the entry was written; `touched` refreshes
// on in-place overwrites (replace_one with equal priority), modelling the
// update/match counters real eviction heuristics key off.
struct RuleMeta {
  std::uint64_t installed = 0;
  std::uint64_t touched = 0;
};

class TcamTable {
 public:
  explicit TcamTable(std::size_t capacity);
  ~TcamTable();
  TcamTable(TcamTable&&) noexcept;
  TcamTable& operator=(TcamTable&&) noexcept;

  // Install keeps rules sorted by priority (stable for equal priorities).
  [[nodiscard]] InstallStatus install(const TcamRule& rule);

  // Remove all rules for which `pred` holds; returns how many were removed.
  std::size_t remove_if(const std::function<bool(const TcamRule&)>& pred);

  // First-match lookup; nullopt when nothing matches (no default rule
  // installed). The deployment always installs a catch-all deny, so in a
  // healthy table this never returns nullopt.
  [[nodiscard]] std::optional<RuleAction> lookup(
      const PacketHeader& p) const noexcept;

  [[nodiscard]] std::span<const TcamRule> rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] std::span<const RuleMeta> meta() const noexcept {
    return meta_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] double utilization() const noexcept {
    return capacity_ == 0
               ? 1.0
               : static_cast<double>(rules_.size()) /
                     static_cast<double>(capacity_);
  }
  [[nodiscard]] bool full() const noexcept { return rules_.size() >= capacity_; }

  // --- fault injection hooks (used by src/faults) ---------------------------

  // What corrupt_random_bit changed: the entry's index plus its full
  // before/after images, so a repair journal can undo the flip exactly.
  struct Corruption {
    std::size_t index = 0;
    TcamRule before;
    TcamRule after;
  };

  // Flip one random bit in the value or mask of one random field of one
  // random non-default rule. Models TCAM hardware corruption; nullopt if
  // the table has no corruptible rule.
  std::optional<Corruption> corrupt_random_bit(Rng& rng);

  // Install an eviction policy (nullptr restores the built-in
  // lowest-priority behaviour). The policy object is owned by the table
  // and consulted by every subsequent evict_one.
  void set_eviction_policy(std::unique_ptr<EvictionPolicy> policy);
  [[nodiscard]] std::string_view eviction_policy_name() const noexcept;

  // Lifetime count of successful evictions (telemetry feed; monotone, not
  // rolled back by repair). Relaxed-atomic so the monitor's metrics bridge
  // can read it while a pinned publisher thread is still evicting.
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_.load(std::memory_order_relaxed);
  }

  // --- exact-repair support (used by faults/repair_journal) -----------------

  // Remove exactly one rule bytewise-equal (priority included) to `rule`;
  // false when absent. remove_if would take every duplicate with it.
  bool remove_one(const TcamRule& rule);

  // Overwrite the one rule bytewise-equal to `from` with `to`. Equal
  // priorities are overwritten in place (position preserved, keeping the
  // sort invariant); a priority change falls back to remove_one + install.
  bool replace_one(const TcamRule& from, const TcamRule& to);

  // Evict one non-default rule as the local agent eviction mechanism
  // would: the victim comes from the installed EvictionPolicy, or from
  // the historical lowest-priority scan when none is set. Returns the
  // evicted rule.
  std::optional<TcamRule> evict_one();

  void clear() noexcept {
    rules_.clear();
    meta_.clear();
  }

 private:
  std::size_t capacity_;
  std::vector<TcamRule> rules_;  // invariant: sorted by priority ascending
  std::vector<RuleMeta> meta_;   // invariant: meta_[i] describes rules_[i]
  std::uint64_t next_stamp_ = 0;
  std::atomic<std::uint64_t> evictions_{0};
  std::unique_ptr<EvictionPolicy> policy_;  // null = lowest-priority
};

}  // namespace scout
