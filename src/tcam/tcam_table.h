// TCAM table model: priority-ordered rule storage with a hard capacity,
// first-match semantics, utilization accounting, local rule eviction and
// bit-level corruption injection. These are exactly the §II-B failure
// sources: "TCAM has insufficient space", "the agent may run a local rule
// eviction mechanism", "TCAM is simply corrupted due to hardware failure".
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/tcam/tcam_rule.h"

namespace scout {

enum class InstallStatus : std::uint8_t { kOk, kOverflow };

class TcamTable {
 public:
  explicit TcamTable(std::size_t capacity) : capacity_(capacity) {}

  // Install keeps rules sorted by priority (stable for equal priorities).
  [[nodiscard]] InstallStatus install(const TcamRule& rule);

  // Remove all rules for which `pred` holds; returns how many were removed.
  std::size_t remove_if(const std::function<bool(const TcamRule&)>& pred);

  // First-match lookup; nullopt when nothing matches (no default rule
  // installed). The deployment always installs a catch-all deny, so in a
  // healthy table this never returns nullopt.
  [[nodiscard]] std::optional<RuleAction> lookup(
      const PacketHeader& p) const noexcept;

  [[nodiscard]] std::span<const TcamRule> rules() const noexcept {
    return rules_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return rules_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] double utilization() const noexcept {
    return capacity_ == 0
               ? 1.0
               : static_cast<double>(rules_.size()) /
                     static_cast<double>(capacity_);
  }
  [[nodiscard]] bool full() const noexcept { return rules_.size() >= capacity_; }

  // --- fault injection hooks (used by src/faults) ---------------------------

  // What corrupt_random_bit changed: the entry's index plus its full
  // before/after images, so a repair journal can undo the flip exactly.
  struct Corruption {
    std::size_t index = 0;
    TcamRule before;
    TcamRule after;
  };

  // Flip one random bit in the value or mask of one random field of one
  // random non-default rule. Models TCAM hardware corruption; nullopt if
  // the table has no corruptible rule.
  std::optional<Corruption> corrupt_random_bit(Rng& rng);

  // --- exact-repair support (used by faults/repair_journal) -----------------

  // Remove exactly one rule bytewise-equal (priority included) to `rule`;
  // false when absent. remove_if would take every duplicate with it.
  bool remove_one(const TcamRule& rule);

  // Overwrite the one rule bytewise-equal to `from` with `to`. Equal
  // priorities are overwritten in place (position preserved, keeping the
  // sort invariant); a priority change falls back to remove_one + install.
  bool replace_one(const TcamRule& from, const TcamRule& to);

  // Evict the lowest-priority (= last) non-default rule, as a local agent
  // eviction mechanism would. Returns the evicted rule.
  std::optional<TcamRule> evict_one();

  void clear() noexcept { rules_.clear(); }

 private:
  std::size_t capacity_;
  std::vector<TcamRule> rules_;  // invariant: sorted by priority ascending
};

}  // namespace scout
