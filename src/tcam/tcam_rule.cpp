#include "src/tcam/tcam_rule.h"

#include <iomanip>

namespace scout {
namespace {

void print_field(std::ostream& os, TernaryField f, int width) {
  const std::uint32_t full = width >= 32 ? 0xFFFFFFFFU : ((1U << width) - 1U);
  if (f.mask == 0) {
    os << '*';
  } else if (f.mask == full) {
    os << f.value;
  } else {
    os << f.value << "&0x" << std::hex << f.mask << std::dec;
  }
}

}  // namespace

TcamRule TcamRule::exact_allow(std::uint32_t priority, std::uint16_t vrf,
                               std::uint16_t src_epg, std::uint16_t dst_epg,
                               std::uint8_t proto, TernaryField port) noexcept {
  TcamRule r;
  r.priority = priority;
  r.vrf = TernaryField::exact(vrf, FieldWidths::kVrf);
  r.src_epg = TernaryField::exact(src_epg, FieldWidths::kEpg);
  r.dst_epg = TernaryField::exact(dst_epg, FieldWidths::kEpg);
  r.proto = TernaryField::exact(proto, FieldWidths::kProto);
  r.dst_port = port;
  r.action = RuleAction::kAllow;
  return r;
}

TcamRule TcamRule::default_deny(std::uint32_t priority) noexcept {
  TcamRule r;
  r.priority = priority;
  r.vrf = TernaryField::wildcard();
  r.src_epg = TernaryField::wildcard();
  r.dst_epg = TernaryField::wildcard();
  r.proto = TernaryField::wildcard();
  r.dst_port = TernaryField::wildcard();
  r.action = RuleAction::kDeny;
  return r;
}

std::ostream& operator<<(std::ostream& os, const TcamRule& r) {
  os << "[p" << r.priority << " vrf=";
  print_field(os, r.vrf, FieldWidths::kVrf);
  os << " src=";
  print_field(os, r.src_epg, FieldWidths::kEpg);
  os << " dst=";
  print_field(os, r.dst_epg, FieldWidths::kEpg);
  os << " proto=";
  print_field(os, r.proto, FieldWidths::kProto);
  os << " port=";
  print_field(os, r.dst_port, FieldWidths::kPort);
  return os << ' ' << (r.action == RuleAction::kAllow ? "allow" : "deny")
            << ']';
}

}  // namespace scout
