// Hashable match-key for TCAM rules (fields + action, priority excluded).
// Used wherever rules must be set-matched in bulk: syntactic L-T diffing
// and batched fault-injection removal.
#pragma once

#include <functional>

#include "src/common/hash.h"
#include "src/tcam/tcam_rule.h"

namespace scout {

struct RuleMatchKey {
  TernaryField vrf, src_epg, dst_epg, proto, dst_port;
  RuleAction action = RuleAction::kAllow;

  bool operator==(const RuleMatchKey&) const noexcept = default;

  static RuleMatchKey of(const TcamRule& r) noexcept {
    return RuleMatchKey{r.vrf, r.src_epg, r.dst_epg, r.proto, r.dst_port,
                        r.action};
  }
};

struct RuleMatchKeyHash {
  std::size_t operator()(const RuleMatchKey& k) const noexcept {
    return hash_all(k.vrf.value, k.vrf.mask, k.src_epg.value, k.src_epg.mask,
                    k.dst_epg.value, k.dst_epg.mask, k.proto.value,
                    k.proto.mask, k.dst_port.value, k.dst_port.mask,
                    static_cast<unsigned>(k.action));
  }
};

}  // namespace scout
