// Centralized controller (APIC analogue): owns the authoritative network
// policy, compiles it, pushes instructions to switch agents, records every
// policy change in the change log, and monitors control-channel liveness
// (raising SWITCH_UNREACHABLE faults in its own fault log — paper §V-B
// "both maintained at the controller").
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/agent/switch_agent.h"
#include "src/common/rng.h"
#include "src/common/sim_clock.h"
#include "src/controller/compiler.h"
#include "src/policy/change_log.h"
#include "src/policy/network_policy.h"
#include "src/topology/fabric.h"

namespace scout {

namespace stream {
class EventBus;
}  // namespace stream

// Gray control channel: delayed/reordered delivery. With window > 0 every
// pushed instruction is ACKed into a bounded in-flight queue; each time
// `window` instructions accumulate the batch is delivered at once — in a
// seed-deterministic permutation with probability `reorder_rate` — so
// instructions land late and possibly out of order, across switches and
// within one switch's own sequence.
struct ChannelDelayProfile {
  std::size_t window = 0;      // 0 = immediate delivery (the default)
  double reorder_rate = 1.0;   // chance a full window is permuted
  std::uint64_t seed = 0;      // permutation stream seed

  [[nodiscard]] bool active() const noexcept { return window > 0; }
};

struct DeployStats {
  std::size_t applied = 0;
  std::size_t lost = 0;          // unresponsive agent / channel down
  std::size_t crashed = 0;       // agent crashed mid-batch
  std::size_t tcam_overflow = 0; // rejected by hardware

  [[nodiscard]] std::size_t total() const noexcept {
    return applied + lost + crashed + tcam_overflow;
  }
  void count(ApplyStatus s) noexcept;
};

class Controller {
 public:
  Controller(NetworkPolicy policy, SimClock& clock)
      : policy_(std::move(policy)), clock_(&clock) {}

  [[nodiscard]] SimTime now() const noexcept { return clock_->now(); }
  [[nodiscard]] SimClock& clock() noexcept { return *clock_; }

  [[nodiscard]] NetworkPolicy& policy() noexcept { return policy_; }
  [[nodiscard]] const NetworkPolicy& policy() const noexcept {
    return policy_;
  }
  [[nodiscard]] const ChangeLog& change_log() const noexcept {
    return change_log_;
  }
  [[nodiscard]] ChangeLog& change_log() noexcept { return change_log_; }
  [[nodiscard]] const FaultLog& fault_log() const noexcept {
    return fault_log_;
  }
  [[nodiscard]] ControlChannel& channel() noexcept { return channel_; }
  [[nodiscard]] const ControlChannel& channel() const noexcept {
    return channel_;
  }
  [[nodiscard]] const CompiledPolicy& compiled() const noexcept {
    return compiled_;
  }
  // Monotonic compilation counter: bumped every time `compiled()` is
  // regenerated. Consumers caching work derived from the compiled policy
  // (e.g. the checker's per-switch logical BDDs) key it by this epoch so a
  // recompile invalidates them.
  [[nodiscard]] std::uint64_t compiled_epoch() const noexcept {
    return compile_epoch_;
  }

  // Register the agents the controller manages (non-owning).
  void attach_agents(std::vector<SwitchAgent*> agents);
  [[nodiscard]] SwitchAgent* agent(SwitchId sw) const;

  // Continuous-verification hook (src/stream): while attached, compiled-
  // policy pushes (epoch bumps), switch resyncs, benign change records and
  // control-channel transitions publish typed events. nullptr detaches.
  void attach_event_bus(stream::EventBus* bus) noexcept { bus_ = bus; }

  // Compile the entire policy and push every rule to every agent. Records
  // one change-log 'add' per policy object. Idempotent on agent state only
  // if agents are empty beforehand.
  DeployStats deploy_full();

  // Re-run the compiler against the current policy without pushing
  // (used by collectors/checkers that need fresh L-rules). Bumps the
  // compiled epoch and publishes a policy-push event when a bus is
  // attached, so resident logical BDDs (LogicalBddCache, the stream
  // monitor) can never serve a stale compilation.
  void recompile();

  // -- incremental operations (the §V-B use cases) ----------------------------

  // Create a new filter, attach it to `contract`, compile the resulting
  // rules for every pair using the contract, and push them.
  FilterId deploy_new_filter(std::string name, std::vector<FilterEntry> entries,
                             ContractId contract, DeployStats* stats = nullptr);

  // Record-only mutation: mark an object as recently modified (models an
  // admin action whose rules are unchanged or pushed elsewhere).
  void record_benign_change(ObjectRef object);

  // Remove a filter from a contract and push the corresponding rule
  // removals to the affected switches.
  void undeploy_filter(ContractId contract, FilterId filter,
                       DeployStats* stats = nullptr);

  // VM migration: re-attach `ep` to `to`, recompile, and resync the two
  // switches whose rule sets changed (the old and the new attachment
  // points). Returns combined push statistics.
  DeployStats migrate_endpoint(EndpointId ep, SwitchId to);

  // -- control-channel management ---------------------------------------------
  void disconnect_switch(SwitchId sw);
  void reconnect_switch(SwitchId sw);

  // -- state reconciliation -----------------------------------------------------
  // Full resync of one switch: wipe its TCAM and logical view and replay
  // the compiled ruleset. This is how a production controller recovers a
  // reconnected or replaced device. Returns push statistics.
  DeployStats resync_switch(SwitchId sw);

  // Stopgap remediation (paper §III-C: "simply reinstalling those missing
  // rules is a stopgap, not a fundamental solution"): restore the compiled
  // rule multiset for every (switch, match key) the missing rules name,
  // without a full resync. The compiler can emit N identical-match rules
  // for one key (same filter reached through several contracts); replaying
  // the compiled copies — rather than remove-then-add per missing copy —
  // makes one pass converge even when all N duplicates were stripped.
  DeployStats reinstall_rules(std::span<const LogicalRule> missing);

  // -- delayed/reordered delivery (gray channel) ------------------------------

  // Switch delivery mode. Pending instructions are flushed under the
  // *old* profile first (a mode change is a config action, not a way to
  // lose traffic), then the permutation stream is reseeded. The default
  // profile restores immediate delivery.
  void set_channel_delay(const ChannelDelayProfile& profile);
  [[nodiscard]] const ChannelDelayProfile& channel_delay() const noexcept {
    return delay_profile_;
  }

  // Deliver everything still in flight (one final, possibly permuted,
  // short batch). No-op when the queue is empty.
  void flush_delivery();

  // Outcomes of delayed deliveries. While the delay mode is active the
  // caller's DeployStats are ACK counts (every push books kApplied at
  // enqueue — that is the lie the gray channel tells); the statuses the
  // agents actually returned at delivery time accumulate here.
  [[nodiscard]] const DeployStats& delayed_stats() const noexcept {
    return delayed_stats_;
  }

  // Truncate the controller's own fault log to `n` records, forgetting
  // open unreachable episodes recorded at or after the watermark (repair-
  // journal support; a later loss to the same switch re-raises cleanly).
  void truncate_fault_log(std::size_t n);

 private:
  // Push one instruction to one agent. Immediate mode delivers through
  // push_now; delay mode ACKs into the in-flight queue and delivers full
  // windows. Updates stats and raises unreachable faults on loss.
  void push(SwitchAgent& agent, const Instruction& ins, DeployStats& stats);
  // Actual delivery honouring channel state at delivery time.
  void push_now(SwitchAgent& agent, const Instruction& ins,
                DeployStats& stats);
  void deliver_window();
  void note_unreachable(SwitchId sw);

  NetworkPolicy policy_;
  SimClock* clock_;
  stream::EventBus* bus_ = nullptr;
  ChangeLog change_log_;
  FaultLog fault_log_;
  ControlChannel channel_;
  CompiledPolicy compiled_;
  std::uint64_t compile_epoch_ = 0;
  std::unordered_map<SwitchId, SwitchAgent*> agents_;
  std::unordered_map<SwitchId, std::uint32_t> next_priority_;
  std::unordered_map<SwitchId, std::size_t> open_unreachable_;
  ChannelDelayProfile delay_profile_;
  Rng delay_rng_{0};
  std::vector<std::pair<SwitchId, Instruction>> in_flight_;
  DeployStats delayed_stats_;
};

}  // namespace scout
