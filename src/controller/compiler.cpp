#include "src/controller/compiler.h"

#include <algorithm>
#include <stdexcept>

#include "src/tcam/range_expansion.h"

namespace scout {

const std::vector<LogicalRule>& CompiledPolicy::rules_for(SwitchId sw) const {
  static const std::vector<LogicalRule> kEmpty;
  const auto it = per_switch.find(sw);
  return it == per_switch.end() ? kEmpty : it->second;
}

namespace {

// Emit both directions of one filter entry for one pair on one switch.
void emit_entry_rules(std::vector<LogicalRule>& out, const EpgPair& pair,
                      VrfId vrf, ContractId contract, FilterId filter,
                      std::uint32_t entry_index, const FilterEntry& entry,
                      SwitchId sw, std::uint32_t& priority) {
  const auto port_cubes =
      entry.single_port()
          ? std::vector<TernaryField>{TernaryField::exact(entry.port_lo,
                                                          FieldWidths::kPort)}
          : expand_port_range(entry.port_lo, entry.port_hi, FieldWidths::kPort);

  const TernaryField proto_field =
      entry.protocol == IpProtocol::kAny
          ? TernaryField::wildcard()
          : TernaryField::exact(static_cast<std::uint32_t>(entry.protocol),
                                FieldWidths::kProto);

  for (const bool reversed : {false, true}) {
    const EpgId src = reversed ? pair.b : pair.a;
    const EpgId dst = reversed ? pair.a : pair.b;
    for (const TernaryField& cube : port_cubes) {
      TcamRule rule;
      rule.priority = priority++;
      rule.vrf = TernaryField::exact(vrf.value(), FieldWidths::kVrf);
      rule.src_epg = TernaryField::exact(src.value(), FieldWidths::kEpg);
      rule.dst_epg = TernaryField::exact(dst.value(), FieldWidths::kEpg);
      rule.proto = proto_field;
      rule.dst_port = cube;
      rule.action = entry.action == FilterAction::kAllow ? RuleAction::kAllow
                                                         : RuleAction::kDeny;
      out.push_back(LogicalRule{
          rule, RuleProvenance{sw, pair, vrf, contract, filter, entry_index,
                               reversed}});
    }
    // Intra-EPG pair: one direction suffices.
    if (pair.a == pair.b) break;
  }
}

}  // namespace

std::vector<LogicalRule> PolicyCompiler::compile_filter_rules(
    const NetworkPolicy& policy, SwitchId sw, const EpgPair& pair,
    ContractId contract, FilterId filter, std::uint32_t& priority_cursor) {
  const VrfId vrf = policy.epg(pair.a).vrf;
  if (policy.epg(pair.b).vrf != vrf) {
    throw std::logic_error{"compile: EPG pair crosses VRFs"};
  }
  std::vector<LogicalRule> out;
  const Filter& f = policy.filter(filter);
  for (std::uint32_t e = 0; e < f.entries.size(); ++e) {
    emit_entry_rules(out, pair, vrf, contract, filter, e, f.entries[e], sw,
                     priority_cursor);
  }
  return out;
}

CompiledPolicy PolicyCompiler::compile(const NetworkPolicy& policy) {
  CompiledPolicy compiled;

  // pair -> contracts, deduped, in link order (deterministic priorities).
  std::unordered_map<EpgPair, std::vector<ContractId>> pair_contracts;
  std::vector<EpgPair> pair_order;
  for (const ContractLink& l : policy.links()) {
    const EpgPair pair{l.consumer, l.provider};
    auto& contracts = pair_contracts[pair];
    if (contracts.empty()) pair_order.push_back(pair);
    if (std::find(contracts.begin(), contracts.end(), l.contract) ==
        contracts.end()) {
      contracts.push_back(l.contract);
    }
  }

  // epg -> hosting switches, memoized (switches_hosting walks endpoints).
  std::unordered_map<EpgId, std::vector<SwitchId>> hosting;
  auto switches_of = [&](EpgId epg) -> const std::vector<SwitchId>& {
    auto [it, inserted] = hosting.try_emplace(epg);
    if (inserted) it->second = policy.switches_hosting(epg);
    return it->second;
  };

  std::unordered_map<SwitchId, std::uint32_t> priority_cursor;

  for (const EpgPair& pair : pair_order) {
    // Union of switches hosting either side: each gets the pair's rules.
    std::vector<SwitchId> switches = switches_of(pair.a);
    for (SwitchId sw : switches_of(pair.b)) {
      if (std::find(switches.begin(), switches.end(), sw) == switches.end()) {
        switches.push_back(sw);
      }
    }
    std::sort(switches.begin(), switches.end());

    for (SwitchId sw : switches) {
      auto& cursor = priority_cursor[sw];  // zero-initialized on first use
      auto& rules = compiled.per_switch[sw];
      for (ContractId c : pair_contracts[pair]) {
        for (FilterId f : policy.contract(c).filters) {
          auto filter_rules =
              compile_filter_rules(policy, sw, pair, c, f, cursor);
          rules.insert(rules.end(),
                       std::make_move_iterator(filter_rules.begin()),
                       std::make_move_iterator(filter_rules.end()));
        }
      }
    }
  }

  // Close every switch's ruleset with the implicit whitelist deny.
  for (auto& [sw, rules] : compiled.per_switch) {
    LogicalRule deny;
    deny.rule = TcamRule::default_deny(kDefaultDenyPriority);
    deny.prov.sw = sw;  // other provenance fields stay invalid: no object
    rules.push_back(deny);
  }
  return compiled;
}

}  // namespace scout
