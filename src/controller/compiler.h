// Policy compiler: renders the abstract network policy into per-switch
// logical (L-type) rules (paper §II-A "network policy deployment").
//
// For every EPG pair with at least one contract link, and for every switch
// hosting an endpoint of either EPG, the compiler emits — per contract, per
// filter, per filter entry, per direction — one TCAM rule per ternary cube
// of the entry's port range. Rule priorities are assigned in deterministic
// emission order; a catch-all deny closes each switch's ruleset (whitelist
// model, Figure 2 rule 7).
#pragma once

#include <unordered_map>
#include <vector>

#include "src/checker/logical_rule.h"
#include "src/policy/network_policy.h"

namespace scout {

struct CompiledPolicy {
  // L-rules per switch, priority-ascending, catch-all deny last.
  std::unordered_map<SwitchId, std::vector<LogicalRule>> per_switch;

  [[nodiscard]] std::size_t total_rules() const noexcept {
    std::size_t n = 0;
    for (const auto& [sw, rules] : per_switch) n += rules.size();
    return n;
  }
  [[nodiscard]] const std::vector<LogicalRule>& rules_for(SwitchId sw) const;
};

class PolicyCompiler {
 public:
  // Priority reserved for the catch-all deny (always the largest).
  static constexpr std::uint32_t kDefaultDenyPriority = 0xFFFFFFFFU;

  [[nodiscard]] static CompiledPolicy compile(const NetworkPolicy& policy);

  // Rules for one (pair, contract, filter) triple on one switch — the unit
  // of incremental deployment when a filter is added to a live contract.
  [[nodiscard]] static std::vector<LogicalRule> compile_filter_rules(
      const NetworkPolicy& policy, SwitchId sw, const EpgPair& pair,
      ContractId contract, FilterId filter, std::uint32_t& priority_cursor);
};

}  // namespace scout
