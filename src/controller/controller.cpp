#include "src/controller/controller.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "src/stream/event_bus.h"
#include "src/tcam/rule_key.h"

namespace scout {

void DeployStats::count(ApplyStatus s) noexcept {
  switch (s) {
    case ApplyStatus::kApplied:
      ++applied;
      break;
    case ApplyStatus::kLost:
      ++lost;
      break;
    case ApplyStatus::kCrashed:
      ++crashed;
      break;
    case ApplyStatus::kTcamOverflow:
      ++tcam_overflow;
      break;
  }
}

void Controller::recompile() {
  compiled_ = PolicyCompiler::compile(policy_);
  ++compile_epoch_;
  stream::StreamEvent ev;
  ev.type = stream::StreamEventType::kPolicyPushed;
  ev.time = clock_->now();
  ev.epoch = compile_epoch_;
  stream::publish_event(bus_, std::move(ev));
}

void Controller::attach_agents(std::vector<SwitchAgent*> agents) {
  for (SwitchAgent* a : agents) {
    if (a == nullptr) throw std::invalid_argument{"attach_agents: null agent"};
    agents_[a->id()] = a;
  }
}

SwitchAgent* Controller::agent(SwitchId sw) const {
  const auto it = agents_.find(sw);
  return it == agents_.end() ? nullptr : it->second;
}

void Controller::note_unreachable(SwitchId sw) {
  // One open fault record per unreachable episode.
  if (open_unreachable_.contains(sw)) return;
  const std::size_t idx =
      fault_log_.raise(clock_->now(), sw, FaultCode::kSwitchUnreachable,
                       FaultSeverity::kCritical,
                       "keepalive timeout: switch not responding");
  open_unreachable_[sw] = idx;
}

void Controller::push(SwitchAgent& agent, const Instruction& ins,
                      DeployStats& stats) {
  if (delay_profile_.active()) {
    // The gray channel ACKs at enqueue: the caller's stats book a
    // success now, the real outcome lands in delayed_stats_ when the
    // window delivers. That gap *is* the fault being modelled.
    stats.count(ApplyStatus::kApplied);
    in_flight_.emplace_back(agent.id(), ins);
    if (in_flight_.size() >= delay_profile_.window) deliver_window();
    return;
  }
  push_now(agent, ins, stats);
}

void Controller::push_now(SwitchAgent& agent, const Instruction& ins,
                          DeployStats& stats) {
  if (!channel_.connected(agent.id())) {
    // Instruction never reaches the device.
    stats.count(ApplyStatus::kLost);
    note_unreachable(agent.id());
    return;
  }
  const ApplyStatus status = agent.apply(ins, clock_->now());
  stats.count(status);
  if (status == ApplyStatus::kLost) note_unreachable(agent.id());
}

void Controller::deliver_window() {
  // Swap the batch out first: delivery must not interleave with new
  // enqueues if an apply ever pushes (it does not today, but the queue
  // being empty during delivery makes that a non-event, not a bug).
  std::vector<std::pair<SwitchId, Instruction>> batch;
  batch.swap(in_flight_);
  if (batch.size() > 1 && delay_rng_.chance(delay_profile_.reorder_rate)) {
    delay_rng_.shuffle(batch);
  }
  for (auto& [sw, ins] : batch) {
    SwitchAgent* a = agent(sw);
    if (a == nullptr) continue;
    push_now(*a, ins, delayed_stats_);
  }
}

void Controller::set_channel_delay(const ChannelDelayProfile& profile) {
  flush_delivery();
  delay_profile_ = profile;
  delay_rng_.reseed(profile.seed);
}

void Controller::flush_delivery() {
  if (!in_flight_.empty()) deliver_window();
}

DeployStats Controller::deploy_full() {
  DeployStats stats;
  // Change log: one 'add' per policy object, stamped in creation order.
  for (const auto& v : policy_.vrfs()) {
    change_log_.record(clock_->tick(), ObjectRef::of(v.id), ChangeAction::kAdd);
  }
  for (const auto& e : policy_.epgs()) {
    change_log_.record(clock_->tick(), ObjectRef::of(e.id), ChangeAction::kAdd);
  }
  for (const auto& f : policy_.filters()) {
    change_log_.record(clock_->tick(), ObjectRef::of(f.id), ChangeAction::kAdd);
  }
  for (const auto& c : policy_.contracts()) {
    change_log_.record(clock_->tick(), ObjectRef::of(c.id), ChangeAction::kAdd);
  }

  recompile();
  for (const auto& [sw, rules] : compiled_.per_switch) {
    SwitchAgent* a = agent(sw);
    if (a == nullptr) continue;  // endpoint on an unmanaged switch
    std::uint32_t max_priority = 0;
    for (const auto& lr : rules) {
      push(*a, Instruction{InstructionOp::kAddRule, lr}, stats);
      if (lr.rule.priority != PolicyCompiler::kDefaultDenyPriority) {
        max_priority = std::max(max_priority, lr.rule.priority + 1);
      }
    }
    next_priority_[sw] = max_priority;
  }
  return stats;
}

FilterId Controller::deploy_new_filter(std::string name,
                                       std::vector<FilterEntry> entries,
                                       ContractId contract,
                                       DeployStats* stats) {
  const FilterId filter =
      policy_.add_filter(std::move(name), std::move(entries));
  policy_.add_filter_to_contract(contract, filter);
  change_log_.record(clock_->tick(), ObjectRef::of(filter), ChangeAction::kAdd);
  change_log_.record(clock_->tick(), ObjectRef::of(contract),
                     ChangeAction::kModify);

  DeployStats local;
  DeployStats& s = stats != nullptr ? *stats : local;

  // Pairs using this contract, deduped.
  std::vector<EpgPair> pairs;
  for (const ContractLink& l : policy_.links()) {
    if (l.contract != contract) continue;
    const EpgPair p{l.consumer, l.provider};
    if (std::find(pairs.begin(), pairs.end(), p) == pairs.end()) {
      pairs.push_back(p);
    }
  }
  std::vector<SwitchId> touched;
  for (const EpgPair& pair : pairs) {
    for (SwitchId sw : policy_.switches_for_pair(pair)) {
      SwitchAgent* a = agent(sw);
      if (a == nullptr) continue;
      auto& cursor = next_priority_[sw];
      for (const LogicalRule& lr : PolicyCompiler::compile_filter_rules(
               policy_, sw, pair, contract, filter, cursor)) {
        push(*a, Instruction{InstructionOp::kAddRule, lr}, s);
      }
      if (std::find(touched.begin(), touched.end(), sw) == touched.end()) {
        touched.push_back(sw);
      }
    }
  }
  // Keep the compiled snapshot in sync for later L-T checks.
  recompile();
  return filter;
}

void Controller::undeploy_filter(ContractId contract, FilterId filter,
                                 DeployStats* stats) {
  DeployStats local;
  DeployStats& s = stats != nullptr ? *stats : local;

  // Push removals for every compiled rule of (contract, filter) before
  // mutating the policy, so the targets are still known.
  for (const auto& [sw, rules] : compiled_.per_switch) {
    SwitchAgent* a = agent(sw);
    if (a == nullptr) continue;
    for (const LogicalRule& lr : rules) {
      if (lr.prov.contract == contract && lr.prov.filter == filter) {
        push(*a, Instruction{InstructionOp::kRemoveRule, lr}, s);
      }
    }
  }
  policy_.remove_filter_from_contract(contract, filter);
  change_log_.record(clock_->tick(), ObjectRef::of(filter),
                     ChangeAction::kDelete);
  change_log_.record(clock_->tick(), ObjectRef::of(contract),
                     ChangeAction::kModify);
  recompile();
}

DeployStats Controller::migrate_endpoint(EndpointId ep, SwitchId to) {
  const SwitchId from = policy_.endpoint(ep).attached_switch;
  policy_.move_endpoint(ep, to);
  change_log_.record(clock_->tick(), ObjectRef::of(policy_.endpoint(ep).epg),
                     ChangeAction::kModify, {from, to});
  recompile();
  DeployStats stats = resync_switch(from);
  if (to != from) {
    const DeployStats added = resync_switch(to);
    stats.applied += added.applied;
    stats.lost += added.lost;
    stats.crashed += added.crashed;
    stats.tcam_overflow += added.tcam_overflow;
  }
  return stats;
}

DeployStats Controller::resync_switch(SwitchId sw) {
  DeployStats stats;
  SwitchAgent* a = agent(sw);
  if (a == nullptr) return stats;
  // Published before the wipe: the stream consumer sees "TCAM emptied"
  // first, then the reinstalls as the push events they are.
  stream::publish_event(
      bus_, stream::make_switch_event(
                stream::StreamEventType::kSwitchResynced, sw, clock_->now()));
  // Wipe device state, then replay. A real controller does this with a
  // state-transfer epoch; the observable effect is identical. The logical
  // view is cleared by removing each rule it holds (copy first: apply()
  // mutates the view).
  a->tcam().clear();
  const std::vector<LogicalRule> old_view(a->logical_view().begin(),
                                          a->logical_view().end());
  for (const LogicalRule& lr : old_view) {
    push(*a, Instruction{InstructionOp::kRemoveRule, lr}, stats);
  }
  for (const LogicalRule& lr : compiled_.rules_for(sw)) {
    push(*a, Instruction{InstructionOp::kAddRule, lr}, stats);
  }
  return stats;
}

DeployStats Controller::reinstall_rules(std::span<const LogicalRule> missing) {
  DeployStats stats;
  if (missing.empty()) return stats;

  // Distinct (switch, match key) targets plus one exemplar missing copy
  // per key, in first-seen order (deterministic push order). The diff can
  // report N copies of one key when the compiler emitted N duplicates and
  // the fault stripped them all; the old remove-then-add per *copy* left
  // exactly one installed (each remove takes every same-match copy with
  // it), so the syntactic multiset diff never converged.
  struct Target {
    SwitchId sw;
    // First-seen order (deterministic push order) + set form of the same
    // keys for membership tests during the compiled replay.
    std::vector<std::pair<RuleMatchKey, const LogicalRule*>> keys;
    std::unordered_set<RuleMatchKey, RuleMatchKeyHash> key_set;
  };
  std::vector<Target> targets;
  std::unordered_map<SwitchId, std::size_t> target_of;
  for (const LogicalRule& lr : missing) {
    const auto [it, fresh] = target_of.try_emplace(lr.prov.sw,
                                                   targets.size());
    if (fresh) targets.push_back(Target{lr.prov.sw, {}, {}});
    Target& target = targets[it->second];
    const RuleMatchKey key = RuleMatchKey::of(lr.rule);
    if (target.key_set.insert(key).second) {
      target.keys.emplace_back(key, &lr);
    }
  }

  for (const Target& target : targets) {
    SwitchAgent* a = agent(target.sw);
    if (a == nullptr) continue;
    // One remove per key clears every deployed/logical copy, then the
    // adds replay the *compiled* copies in compiled (priority) order, so
    // N duplicates come back as N rules with their original priorities.
    const auto& wanted = target.key_set;
    std::unordered_set<RuleMatchKey, RuleMatchKeyHash> compiled_keys;
    for (const auto& [key, exemplar] : target.keys) {
      push(*a, Instruction{InstructionOp::kRemoveRule, *exemplar}, stats);
    }
    for (const LogicalRule& lr : compiled_.rules_for(target.sw)) {
      const RuleMatchKey key = RuleMatchKey::of(lr.rule);
      if (!wanted.contains(key)) continue;
      compiled_keys.insert(key);
      push(*a, Instruction{InstructionOp::kAddRule, lr}, stats);
    }
    // Keys with no compiled counterpart (hand-installed rules in tests,
    // policy changed since the check): fall back to re-adding the reported
    // copy itself rather than silently dropping it.
    for (const auto& [key, exemplar] : target.keys) {
      if (!compiled_keys.contains(key)) {
        push(*a, Instruction{InstructionOp::kAddRule, *exemplar}, stats);
      }
    }
  }
  return stats;
}

void Controller::truncate_fault_log(std::size_t n) {
  fault_log_.truncate(n);
  std::erase_if(open_unreachable_,
                [n](const auto& entry) { return entry.second >= n; });
}

void Controller::record_benign_change(ObjectRef object) {
  change_log_.record(clock_->tick(), object, ChangeAction::kModify);
  stream::StreamEvent ev;
  ev.type = stream::StreamEventType::kPolicyChanged;
  ev.time = clock_->now();
  ev.object = object;
  stream::publish_event(bus_, std::move(ev));
}

void Controller::disconnect_switch(SwitchId sw) {
  channel_.disconnect(sw, clock_->now());
  stream::publish_event(
      bus_, stream::make_switch_event(stream::StreamEventType::kChannelDown,
                                      sw, clock_->now()));
}

void Controller::reconnect_switch(SwitchId sw) {
  channel_.reconnect(sw, clock_->now());
  const auto it = open_unreachable_.find(sw);
  if (it != open_unreachable_.end()) {
    fault_log_.clear(it->second, clock_->now());
    open_unreachable_.erase(it);
  }
  stream::publish_event(
      bus_, stream::make_switch_event(stream::StreamEventType::kChannelUp,
                                      sw, clock_->now()));
}

}  // namespace scout
