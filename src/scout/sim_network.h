// SimNetwork: one self-contained deployment simulation — fabric, clock,
// switch agents and controller wired together. This is the "testbed" the
// examples, tests and benches operate on.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/agent/switch_agent.h"
#include "src/common/sim_clock.h"
#include "src/controller/controller.h"
#include "src/policy/network_policy.h"
#include "src/topology/fabric.h"

namespace scout {

class SimNetwork {
 public:
  SimNetwork(Fabric fabric, NetworkPolicy policy);

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] const Fabric& fabric() const noexcept { return fabric_; }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] Controller& controller() noexcept { return *controller_; }
  [[nodiscard]] const Controller& controller() const noexcept {
    return *controller_;
  }
  [[nodiscard]] SwitchAgent& agent(SwitchId sw);
  [[nodiscard]] std::span<const std::unique_ptr<SwitchAgent>> agents()
      const noexcept {
    return agents_;
  }

  // Compile + push the whole policy.
  DeployStats deploy();

  // Device fault logs merged with the controller's own (the correlation
  // engine consumes the union, paper Figure 6).
  [[nodiscard]] FaultLog collect_fault_logs() const;

 private:
  Fabric fabric_;
  SimClock clock_;
  std::vector<std::unique_ptr<SwitchAgent>> agents_;
  std::unique_ptr<Controller> controller_;
};

}  // namespace scout
