// SimNetwork: one self-contained deployment simulation — fabric, clock,
// switch agents and controller wired together. This is the "testbed" the
// examples, tests and benches operate on.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/agent/switch_agent.h"
#include "src/common/sim_clock.h"
#include "src/controller/controller.h"
#include "src/policy/network_policy.h"
#include "src/topology/fabric.h"

namespace scout {

class SimNetwork {
 public:
  SimNetwork(Fabric fabric, NetworkPolicy policy);

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  [[nodiscard]] Fabric& fabric() noexcept { return fabric_; }
  [[nodiscard]] const Fabric& fabric() const noexcept { return fabric_; }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] Controller& controller() noexcept { return *controller_; }
  [[nodiscard]] const Controller& controller() const noexcept {
    return *controller_;
  }
  [[nodiscard]] SwitchAgent& agent(SwitchId sw);
  [[nodiscard]] std::span<const std::unique_ptr<SwitchAgent>> agents()
      const noexcept {
    return agents_;
  }

  // Compile + push the whole policy.
  DeployStats deploy();

  // Attach/detach a continuous-verification event bus (src/stream) on the
  // controller and every agent, and bind the bus's change-log cursor to
  // the controller's log. nullptr detaches everywhere.
  void attach_event_bus(stream::EventBus* bus);

  // Device fault logs merged with the controller's own (the correlation
  // engine consumes the union, paper Figure 6).
  [[nodiscard]] FaultLog collect_fault_logs() const;

  // Order-sensitive 64-bit digest of every piece of mutable simulation
  // state the SCOUT pipeline can observe: the clock, the controller's
  // change/fault logs and compiled snapshot, control-channel outages, and
  // each agent's TCAM contents (priorities included, in table order),
  // logical view, fault log and fault-behaviour flags. Two networks with
  // equal fingerprints are indistinguishable to checks, localization and
  // correlation — this is the identity the repair journal is proven
  // against (tests/test_network_repair.cpp). Policy object *contents* are
  // summarized by count only: fault injection never edits the policy, and
  // cells that do (deploy_new_filter & co.) must rebuild, not repair.
  [[nodiscard]] std::uint64_t state_fingerprint() const;

 private:
  Fabric fabric_;
  SimClock clock_;
  std::vector<std::unique_ptr<SwitchAgent>> agents_;
  std::unique_ptr<Controller> controller_;
  stream::EventBus* bus_ = nullptr;  // last attached (for unbinding)
};

}  // namespace scout
