#include "src/scout/experiment.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "src/faults/fault_injector.h"
#include "src/localization/score.h"
#include "src/localization/scout_localizer.h"
#include "src/scout/metrics.h"
#include "src/scout/scout_system.h"
#include "src/scout/sim_network.h"

namespace scout {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The leaf carrying the most compiled rules: switch-model experiments
// inject every fault there so its risk model sees all of them.
SwitchId busiest_switch(const Controller& controller) {
  SwitchId best{};
  std::size_t best_rules = 0;
  for (const auto& [sw, rules] : controller.compiled().per_switch) {
    if (rules.size() > best_rules) {
      best_rules = rules.size();
      best = sw;
    }
  }
  return best;
}

LocalizationResult run_algorithm(const AlgorithmSpec& spec,
                                 const RiskModel& model,
                                 const ChangeLog& change_log, SimTime now,
                                 std::int64_t window_ms) {
  if (spec.kind == AlgorithmKind::kScore) {
    return ScoreLocalizer{spec.score_threshold}.localize(model);
  }
  ScoutLocalizer::Options opts;
  opts.change_window_ms = window_ms;
  opts.enable_stage2 = spec.scout_stage2;
  return ScoutLocalizer{opts}.localize(model, change_log, now);
}

}  // namespace

std::vector<AccuracySeries> run_accuracy_sweep(
    const AccuracyOptions& options,
    std::span<const AlgorithmSpec> algorithms) {
  std::vector<AccuracySeries> series(algorithms.size());
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    series[a].name = algorithms[a].name;
    series[a].by_faults.resize(options.max_faults);
  }
  // Accumulators: [algorithm][faults-1] -> sums over runs.
  std::vector<std::vector<double>> precision_sum(
      algorithms.size(), std::vector<double>(options.max_faults, 0.0));
  std::vector<std::vector<double>> recall_sum = precision_sum;

  const ScoutSystem system{
      ScoutSystem::Options{options.check_mode, ScoutLocalizer::Options{}}};

  // One fixed policy per sweep (the paper evaluates against a single
  // production dataset); randomness across runs is fault selection only.
  Rng rng{options.seed};
  GeneratedNetwork generated = generate_network(options.profile, rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  net.clock().advance(3'600'000);  // age out deploy-time change records

  ObjectFaultInjector injector{net.controller(), rng};
  const bool switch_scoped = options.model == RiskModelKind::kSwitch;
  const std::optional<SwitchId> scope =
      switch_scoped ? std::optional{busiest_switch(net.controller())}
                    : std::nullopt;

  const PolicyIndex index{net.controller().policy()};
  RiskModel model = switch_scoped
                        ? RiskModel::build_switch_model(index, *scope)
                        : RiskModel::build_controller_model(index);

  for (std::size_t n_faults = 1; n_faults <= options.max_faults; ++n_faults) {
    for (std::size_t run = 0; run < options.runs; ++run) {
      // Benign change-log noise inside the recency window.
      for (const ObjectRef obj :
           injector.sample_objects(options.benign_changes,
                                   /*include_vrfs=*/true)) {
        net.controller().record_benign_change(obj);
      }

      // Ground truth: n distinct objects, each faulted fully or partially
      // with equal probability (paper §VI-A).
      const std::vector<ObjectRef> truth_vec =
          injector.sample_objects(n_faults, /*include_vrfs=*/false, scope);
      std::unordered_set<ObjectRef> truth(truth_vec.begin(), truth_vec.end());
      std::unordered_set<SwitchId> touched;
      for (const ObjectRef obj : truth_vec) {
        const InjectedFault fault = rng.chance(0.5)
                                        ? injector.inject_full(obj, scope)
                                        : injector.inject_partial(obj, scope);
        touched.insert(fault.switches.begin(), fault.switches.end());
      }

      // Collect + check + augment once; every algorithm sees the same model.
      const std::vector<LogicalRule> missing = system.find_missing_rules(net);
      model.clear_failures();
      model.augment(missing);

      for (std::size_t a = 0; a < algorithms.size(); ++a) {
        const LocalizationResult result =
            run_algorithm(algorithms[a], model, net.controller().change_log(),
                          net.clock().now(), options.change_window_ms);
        const PrecisionRecall pr =
            evaluate_hypothesis(result.hypothesis, truth);
        precision_sum[a][n_faults - 1] += pr.precision;
        recall_sum[a][n_faults - 1] += pr.recall;
      }

      // Repair the deployment and age the change log past the window so
      // this run's records don't leak into the next.
      for (const SwitchId sw : touched) {
        SwitchAgent* agent = net.controller().agent(sw);
        if (agent == nullptr) continue;
        agent->tcam().clear();
        for (const LogicalRule& lr :
             net.controller().compiled().rules_for(sw)) {
          (void)agent->tcam().install(lr.rule);
        }
      }
      net.clock().advance(options.change_window_ms * 2);
    }
  }

  const double runs = static_cast<double>(options.runs);
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    for (std::size_t f = 0; f < options.max_faults; ++f) {
      series[a].by_faults[f] = AccuracyCell{precision_sum[a][f] / runs,
                                            recall_sum[a][f] / runs};
    }
  }
  return series;
}

std::vector<GammaBucket> run_gamma_experiment(const GammaOptions& options) {
  Rng rng{options.seed};
  GeneratedNetwork generated = generate_network(options.profile, rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  net.clock().advance(3'600'000);

  const PolicyIndex index{net.controller().policy()};
  RiskModel model = RiskModel::build_controller_model(index);
  const EquivalenceChecker checker{CheckMode::kSyntactic};
  ObjectFaultInjector injector{net.controller(), rng};

  // Bucket scaffolding.
  std::vector<GammaBucket> buckets;
  std::size_t lo = 1;
  for (const std::size_t hi : options.bucket_bounds) {
    buckets.push_back(GammaBucket{lo, hi, 0.0, 0.0, 0});
    lo = hi;
  }
  std::vector<double> gamma_sums(buckets.size(), 0.0);

  const std::vector<ObjectRef> pool =
      injector.sample_objects(options.faults, /*include_vrfs=*/false);

  for (std::size_t i = 0; i < options.faults; ++i) {
    const ObjectRef obj = pool[i % pool.size()];
    InjectedFault fault = rng.chance(0.5) ? injector.inject_full(obj)
                                          : injector.inject_partial(obj);
    if (fault.rules_removed == 0) continue;

    // Check only the switches this fault touched (the others are known
    // clean: each iteration repairs its own damage below).
    std::vector<LogicalRule> missing;
    for (const SwitchId sw : fault.switches) {
      SwitchAgent* agent = net.controller().agent(sw);
      if (agent == nullptr) continue;
      CheckResult result =
          checker.check(net.controller().compiled().rules_for(sw),
                        agent->tcam().rules());
      missing.insert(missing.end(),
                     std::make_move_iterator(result.missing.begin()),
                     std::make_move_iterator(result.missing.end()));
    }
    model.clear_failures();
    model.augment(missing);

    const std::size_t suspects = model.suspect_set().size();
    ScoutLocalizer::Options lopts;
    lopts.change_window_ms = 60'000;
    const LocalizationResult result = ScoutLocalizer{lopts}.localize(
        model, net.controller().change_log(), net.clock().now());
    const double gamma =
        suspect_reduction(result.hypothesis.size(), suspects);

    for (std::size_t b = 0; b < buckets.size(); ++b) {
      if (suspects >= buckets[b].lo && suspects < buckets[b].hi) {
        gamma_sums[b] += gamma;
        buckets[b].max_hypothesis = std::max(
            buckets[b].max_hypothesis,
            static_cast<double>(result.hypothesis.size()));
        ++buckets[b].samples;
        break;
      }
    }

    // Repair: reinstall the faulted switches' rules from the compiled
    // policy so the next fault starts from a clean deployment, and age
    // the change log so this fault's record leaves the recency window.
    for (const SwitchId sw : fault.switches) {
      SwitchAgent* agent = net.controller().agent(sw);
      if (agent == nullptr) continue;
      agent->tcam().clear();
      for (const LogicalRule& lr :
           net.controller().compiled().rules_for(sw)) {
        (void)agent->tcam().install(lr.rule);
      }
    }
    net.clock().advance(120'000);
  }

  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b].samples > 0) {
      buckets[b].mean_gamma =
          gamma_sums[b] / static_cast<double>(buckets[b].samples);
    }
  }
  return buckets;
}

ScalePoint run_scalability_point(std::size_t switches, std::uint64_t seed,
                                 std::size_t n_faults,
                                 std::size_t pairs_per_switch) {
  ScalePoint point;
  point.switches = switches;

  GeneratorProfile profile = GeneratorProfile::scaled(switches);
  profile.target_pairs = switches * pairs_per_switch;

  Rng rng{seed};
  GeneratedNetwork generated = generate_network(profile, rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  net.clock().advance(3'600'000);

  ObjectFaultInjector injector{net.controller(), rng};
  for (const ObjectRef obj : injector.sample_objects(n_faults)) {
    injector.inject_full(obj);
  }

  const ScoutSystem system{ScoutSystem::Options{CheckMode::kSyntactic,
                                                ScoutLocalizer::Options{}}};
  auto t0 = Clock::now();
  const std::vector<LogicalRule> missing = system.find_missing_rules(net);
  point.check_seconds = seconds_since(t0);

  const PolicyIndex index{net.controller().policy()};
  point.epg_pairs = index.pairs().size();

  t0 = Clock::now();
  RiskModel model = RiskModel::build_controller_model(index);
  model.augment(missing);
  point.model_build_seconds = seconds_since(t0);
  point.elements = model.element_count();
  point.risks = model.risk_count();
  point.edges = model.edge_count();

  t0 = Clock::now();
  ScoutLocalizer::Options lopts;
  lopts.change_window_ms = 60'000;
  const LocalizationResult result = ScoutLocalizer{lopts}.localize(
      model, net.controller().change_log(), net.clock().now());
  point.localize_seconds = seconds_since(t0);
  (void)result;
  return point;
}

}  // namespace scout
