#include "src/scout/experiment.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <optional>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include <thread>

#include "src/common/hash.h"
#include "src/common/json_writer.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/faults/fault_injector.h"
#include "src/faults/fault_policy.h"
#include "src/faults/gray_faults.h"
#include "src/faults/repair_journal.h"
#include "src/faults/storm.h"
#include "src/localization/score.h"
#include "src/localization/scout_localizer.h"
#include "src/runtime/result_sink.h"
#include "src/scout/metrics.h"
#include "src/scout/scout_system.h"
#include "src/scout/sim_network.h"
#include "src/stream/cause.h"
#include "src/stream/incident.h"
#include "src/stream/monitor_loop.h"
#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/health.h"

namespace scout {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The leaf carrying the most compiled rules: switch-model experiments
// inject every fault there so its risk model sees all of them.
SwitchId busiest_switch(const Controller& controller) {
  SwitchId best{};
  std::size_t best_rules = 0;
  for (const auto& [sw, rules] : controller.compiled().per_switch) {
    if (rules.size() > best_rules) {
      best_rules = rules.size();
      best = sw;
    }
  }
  return best;
}

LocalizationResult run_algorithm(const AlgorithmSpec& spec,
                                 const RiskModel& model,
                                 const ChangeLog& change_log, SimTime now,
                                 std::int64_t window_ms) {
  if (spec.kind == AlgorithmKind::kScore) {
    return ScoreLocalizer{spec.score_threshold}.localize(model);
  }
  ScoutLocalizer::Options opts;
  opts.change_window_ms = window_ms;
  opts.enable_stage2 = spec.scout_stage2;
  return ScoutLocalizer{opts}.localize(model, change_log, now);
}

// Cache key of a sweep network: generator knobs plus the build seed.
// Cells with equal keys deploy byte-identical networks, which is what
// licenses repairing instead of rebuilding. The hash is only the slot
// filter — acquire() re-checks the stored (profile, seed) field-wise, so
// a GeneratorProfile knob missing here degrades to a spurious rebuild,
// never to serving the wrong fabric.
std::uint64_t network_cache_key(const GeneratorProfile& p,
                                std::uint64_t seed) {
  return hash_all(p.switches, p.vrfs, p.epgs, p.contracts, p.filters,
                  p.target_pairs, p.epg_popularity_skew,
                  p.contract_reuse_skew, p.filter_reuse_skew, p.vrf_size_skew,
                  p.switch_popularity_skew, p.max_filters_per_contract,
                  p.max_entries_per_filter, p.min_switches_per_epg,
                  p.max_switches_per_epg, p.tcam_capacity, seed);
}

}  // namespace

bool accuracy_series_identical(std::span<const AccuracySeries> a,
                               std::span<const AccuracySeries> b) {
  if (a.size() != b.size()) return false;
  for (std::size_t s = 0; s < a.size(); ++s) {
    if (a[s].name != b[s].name ||
        a[s].by_faults.size() != b[s].by_faults.size()) {
      return false;
    }
    for (std::size_t f = 0; f < a[s].by_faults.size(); ++f) {
      if (std::memcmp(&a[s].by_faults[f], &b[s].by_faults[f],
                      sizeof(AccuracyCell)) != 0) {
        return false;
      }
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// SweepNetworkCache
// ---------------------------------------------------------------------------

// One worker-owned deployed network plus everything pure the cells used to
// recompute from it every time: the policy index, the fault injector's
// object index, and the busiest-switch choice. The per-cell RNG is
// re-seated into the cached injector (set_rng), so a cached cell consumes
// exactly the random stream a fresh cell would.
struct SweepNetworkCache::Entry {
  GeneratorProfile profile;  // exact identity; the slot key is just a hash
  std::uint64_t net_seed = 0;
  std::unique_ptr<SimNetwork> net;
  std::unique_ptr<PolicyIndex> index;
  Rng seat_rng{0};  // entry-owned seat; cells re-seat per task
  std::unique_ptr<ObjectFaultInjector> injector;
  SwitchId busiest{};
  RepairJournal journal;
  std::uint64_t baseline_fingerprint = 0;
  // Per-switch logical BDDs for this network (BDD-mode checks only; one
  // slot — cells run their fleet check serially inside the cell). Repair
  // between cells never touches the compiled policy, so the arenas stay
  // valid for the entry's whole lifetime; an entry rebuild (profile or
  // seed switch) drops them with the network they described.
  LogicalBddCache bdd_cache{1};
};

SweepNetworkCache::SweepNetworkCache(std::size_t workers)
    : slots_(workers), verify_failures_(workers) {}

SweepNetworkCache::~SweepNetworkCache() = default;

std::size_t SweepNetworkCache::workers() const noexcept {
  return slots_.workers();
}

SweepNetworkCache::Stats SweepNetworkCache::stats() const {
  Stats stats;
  stats.builds = slots_.misses();
  stats.repairs = slots_.hits();
  stats.verify_failures = verify_failures_.merge(
      [](std::size_t a, std::size_t b) { return a + b; });
  return stats;
}

void SweepNetworkCache::record_diagnostics(
    runtime::BenchRecorder& recorder) const {
  const Stats s = stats();
  recorder.add_row(
      {{"cache_builds", static_cast<double>(s.builds)},
       {"cache_repairs", static_cast<double>(s.repairs)},
       {"cache_verify_failures", static_cast<double>(s.verify_failures)}});
}

// experiment.cpp-internal access to the cache's slots: the drivers share
// one acquire/release protocol around each cell.
struct SweepCacheAccess {
  using Entry = SweepNetworkCache::Entry;

  static std::unique_ptr<Entry> build(const GeneratorProfile& profile,
                                      std::uint64_t net_seed,
                                      bool with_baseline) {
    auto entry = std::make_unique<Entry>();
    entry->profile = profile;
    entry->net_seed = net_seed;
    Rng rng{net_seed};
    GeneratedNetwork generated = generate_network(profile, rng);
    entry->net = std::make_unique<SimNetwork>(std::move(generated.fabric),
                                              std::move(generated.policy));
    entry->net->deploy();
    entry->net->clock().advance(3'600'000);  // age out deploy-time records
    entry->index =
        std::make_unique<PolicyIndex>(entry->net->controller().policy());
    entry->injector = std::make_unique<ObjectFaultInjector>(
        entry->net->controller(), entry->seat_rng);
    entry->busiest = busiest_switch(entry->net->controller());
    if (with_baseline) {
      entry->baseline_fingerprint = entry->net->state_fingerprint();
    }
    return entry;
  }

  // The worker's cached network for (profile, net_seed) — or a fresh
  // build, stored in the cache when caching and in `local` otherwise.
  // Build time is charged to the worker's diagnostics.
  static Entry& acquire(SweepNetworkCache* cache,
                        std::unique_ptr<Entry>& local, std::size_t worker,
                        const GeneratorProfile& profile,
                        std::uint64_t net_seed, SweepDiagnostics& diag) {
    const std::uint64_t key = network_cache_key(profile, net_seed);
    if (cache != nullptr) {
      // Field-wise identity check behind the hash: a key collision (or a
      // profile knob the hash misses) costs a rebuild, never a repair of
      // the wrong fabric — and is counted as the rebuild it causes.
      if (std::unique_ptr<Entry>* hit = cache->slots_.lookup(worker, key);
          hit != nullptr && *hit != nullptr &&
          (*hit)->profile == profile && (*hit)->net_seed == net_seed) {
        cache->slots_.note_hit(worker);
        return **hit;
      }
      cache->slots_.note_miss(worker);
      const auto t0 = Clock::now();
      auto built = build(profile, net_seed, cache->verify_repairs());
      diag.setup_seconds += seconds_since(t0);
      ++diag.network_builds;
      return *cache->slots_.store(worker, key, std::move(built));
    }
    const auto t0 = Clock::now();
    local = build(profile, net_seed, /*with_baseline=*/false);
    diag.setup_seconds += seconds_since(t0);
    ++diag.network_builds;
    return *local;
  }

  // Drop a worker's entry outright (cell unwound with the journal armed,
  // or repaired state failed verification): the next cell rebuilds.
  static void drop(SweepNetworkCache& cache, std::size_t worker) {
    cache.slots_.invalidate(worker);
  }

  // Exact-repair the cell's damage so the entry can serve the worker's
  // next cell; verify against the baseline and drop diverged entries (the
  // next cell then rebuilds — results stay correct, only the savings are
  // lost). Call only when the cell armed the journal (cached mode).
  static void release(SweepNetworkCache& cache, Entry& entry,
                      std::size_t worker, SweepDiagnostics& diag) {
    // The cell's RNG dies with the cell; point the cached injector back at
    // the entry-owned seat so no dangling Rng* survives between cells.
    entry.injector->set_rng(entry.seat_rng);
    const auto t0 = Clock::now();
    entry.journal.repair(*entry.net);
    diag.setup_seconds += seconds_since(t0);
    ++diag.network_repairs;
    if (cache.verify_repairs() &&
        entry.net->state_fingerprint() != entry.baseline_fingerprint) {
      ++cache.verify_failures_.local(worker);
      cache.slots_.invalidate(worker);  // `entry` is dead past this line
    }
  }
};

namespace {

// RAII around one grid cell's use of a network entry: arms the journal
// and registers it with the injector up front, and guarantees the
// injector never outlives a cell still pointing at the cell's journal or
// stack RNG. The normal path calls release() — exact repair + verify. If
// the cell unwinds instead (including RepairJournal's own logic_error
// when state was mutated outside its domain), the destructor drops the
// cached entry so the worker's next cell rebuilds from scratch rather
// than repairing an inconsistent network — the degrade-to-rebuild
// fallback the journal's contract promises.
class CellLease {
 public:
  // `arm_always`: gamma arms the journal even uncached — its per-fault
  // clean slate runs through undo_rule_ops either way.
  CellLease(SweepNetworkCache* cache, SweepCacheAccess::Entry& entry,
            std::size_t worker, SweepDiagnostics& diag,
            bool arm_always = false)
      : cache_(cache), entry_(&entry), worker_(worker), diag_(&diag) {
    if (cache_ != nullptr || arm_always) {
      entry.journal.arm(*entry.net);
      entry.injector->set_journal(&entry.journal);
    }
  }
  CellLease(const CellLease&) = delete;
  CellLease& operator=(const CellLease&) = delete;

  ~CellLease() {
    if (entry_ == nullptr) return;  // released normally
    entry_->injector->set_journal(nullptr);
    entry_->injector->set_rng(entry_->seat_rng);
    if (cache_ != nullptr) SweepCacheAccess::drop(*cache_, worker_);
  }

  void release() {
    entry_->injector->set_journal(nullptr);
    if (cache_ != nullptr) {
      SweepCacheAccess::release(*cache_, *entry_, worker_, *diag_);
    }
    entry_ = nullptr;  // may be dangling past release (verify may drop it)
  }

 private:
  SweepNetworkCache* cache_;
  SweepCacheAccess::Entry* entry_;
  std::size_t worker_;
  SweepDiagnostics* diag_;
};

// Shared sweep plumbing: an optional sweep-local cache honouring
// options.cache_networks, with worker-count validation for external ones.
SweepNetworkCache* resolve_cache(bool enabled, SweepNetworkCache* external,
                                 std::optional<SweepNetworkCache>& own,
                                 std::size_t workers) {
  if (!enabled) return nullptr;
  if (external == nullptr) {
    own.emplace(workers);
    return &*own;
  }
  if (external->workers() < workers) {
    throw std::invalid_argument{
        "run sweep: external SweepNetworkCache has fewer worker slots than "
        "the executor has workers"};
  }
  return external;
}

void merge_diagnostics(const runtime::WorkerLocal<SweepDiagnostics>& per_worker,
                       SweepDiagnostics* out) {
  if (out == nullptr) return;
  *out = per_worker.merge([](SweepDiagnostics acc, const SweepDiagnostics& d) {
    acc.network_builds += d.network_builds;
    acc.network_repairs += d.network_repairs;
    acc.setup_seconds += d.setup_seconds;
    return acc;
  });
}

}  // namespace

std::vector<AccuracySeries> run_accuracy_sweep(
    const AccuracyOptions& options, std::span<const AlgorithmSpec> algorithms,
    runtime::Executor& executor, SweepNetworkCache* external_cache,
    SweepDiagnostics* diagnostics) {
  std::optional<SweepNetworkCache> own_cache;
  SweepNetworkCache* cache = resolve_cache(
      options.cache_networks, external_cache, own_cache, executor.workers());

  const runtime::CampaignGrid grid{
      options.seed,
      {{"faults", options.max_faults}, {"run", options.runs}}};

  // One slot per (fault-count, run) cell: per-algorithm precision/recall.
  runtime::ResultSlots<std::vector<PrecisionRecall>> slots{grid.task_count()};
  // Diagnostics only (load balance, setup amortization); never feed results.
  runtime::WorkerLocal<double> busy_seconds{executor.workers()};
  runtime::WorkerLocal<SweepDiagnostics> diag{executor.workers()};

  runtime::run_campaign(executor, grid, [&](const runtime::CampaignTask&
                                                task) {
    const auto task_start = Clock::now();
    const std::size_t n_faults = task.coords[0] + 1;

    std::unique_ptr<SweepCacheAccess::Entry> local;
    SweepCacheAccess::Entry& entry = SweepCacheAccess::acquire(
        cache, local, task.worker, options.profile, options.seed,
        diag.local(task.worker));
    SimNetwork& net = *entry.net;
    ObjectFaultInjector& injector = *entry.injector;
    CellLease lease{cache, entry, task.worker, diag.local(task.worker)};

    // All randomness below this line comes from the per-cell seed; the
    // cached injector's object index depends only on the compiled policy,
    // so re-seating the RNG reproduces a fresh injector exactly.
    Rng rng{task.seed};
    injector.set_rng(rng);
    const bool switch_scoped = options.model == RiskModelKind::kSwitch;
    const std::optional<SwitchId> scope =
        switch_scoped ? std::optional{entry.busiest} : std::nullopt;

    RiskModel model =
        switch_scoped ? RiskModel::build_switch_model(*entry.index, *scope)
                      : RiskModel::build_controller_model(*entry.index);

    // Benign change-log noise inside the recency window.
    for (const ObjectRef obj : injector.sample_objects(
             options.benign_changes, /*include_vrfs=*/true)) {
      net.controller().record_benign_change(obj);
    }

    // Ground truth: n distinct objects, each faulted fully or partially
    // with equal probability (paper §VI-A).
    const std::vector<ObjectRef> truth_vec =
        injector.sample_objects(n_faults, /*include_vrfs=*/false, scope);
    const std::unordered_set<ObjectRef> truth(truth_vec.begin(),
                                              truth_vec.end());
    for (const ObjectRef obj : truth_vec) {
      if (rng.chance(0.5)) {
        (void)injector.inject_full(obj, scope);
      } else {
        (void)injector.inject_partial(obj, scope);
      }
    }

    // Collect + check + augment once; every algorithm sees the same model.
    // The fleet check runs serially inside the cell (the campaign already
    // saturates the executor across cells); in BDD mode it reuses the
    // entry's resident logical BDDs instead of re-encoding L per cell.
    const ScoutSystem system{
        ScoutSystem::Options{options.check_mode, ScoutLocalizer::Options{}}};
    runtime::SerialExecutor check_executor;
    model.augment(
        system.find_missing_rules(net, check_executor, &entry.bdd_cache));

    std::vector<PrecisionRecall> cell(algorithms.size());
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      const LocalizationResult result =
          run_algorithm(algorithms[a], model, net.controller().change_log(),
                        net.clock().now(), options.change_window_ms);
      cell[a] = evaluate_hypothesis(result.hypothesis, truth);
    }
    slots[task.index] = std::move(cell);
    lease.release();
    busy_seconds.local(task.worker) += seconds_since(task_start);
  });

  merge_diagnostics(diag, diagnostics);
  SCOUT_LOG(LogLevel::kDebug, "experiment",
            "accuracy sweep: " << grid.task_count() << " cells over "
                << executor.workers() << " workers; busy "
                << busy_seconds.merge(
                       [](double a, double b) { return a + b; })
                << " s total, "
                << busy_seconds.merge([](double a, double b) {
                     return a > b ? a : b;
                   })
                << " s on the slowest worker");

  // Reduce in cell-index order — bit-identical for any executor.
  std::vector<AccuracySeries> series(algorithms.size());
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    series[a].name = algorithms[a].name;
    series[a].by_faults.resize(options.max_faults);
  }
  const double runs = static_cast<double>(options.runs);
  for (std::size_t f = 0; f < options.max_faults; ++f) {
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      double precision_sum = 0.0;
      double recall_sum = 0.0;
      for (std::size_t run = 0; run < options.runs; ++run) {
        const PrecisionRecall& pr = slots[f * options.runs + run][a];
        precision_sum += pr.precision;
        recall_sum += pr.recall;
      }
      series[a].by_faults[f] =
          AccuracyCell{precision_sum / runs, recall_sum / runs};
    }
  }
  return series;
}

std::vector<AccuracySeries> run_accuracy_sweep(
    const AccuracyOptions& options,
    std::span<const AlgorithmSpec> algorithms) {
  runtime::SerialExecutor executor;
  return run_accuracy_sweep(options, algorithms, executor);
}

std::vector<GammaBucket> run_gamma_experiment(const GammaOptions& options,
                                              runtime::Executor& executor,
                                              SweepDiagnostics* diagnostics) {
  const std::size_t shards = std::max<std::size_t>(1, options.shards);
  const runtime::CampaignGrid grid{options.seed, {{"shard", shards}}};

  std::optional<SweepNetworkCache> own_cache;
  SweepNetworkCache* cache = resolve_cache(options.cache_networks, nullptr,
                                           own_cache, executor.workers());

  struct ShardStats {
    std::vector<double> gamma_sums;
    std::vector<double> max_hypothesis;
    std::vector<std::size_t> samples;
  };
  runtime::ResultSlots<ShardStats> slots{shards};
  runtime::WorkerLocal<SweepDiagnostics> diag{executor.workers()};

  // Bucket scaffolding, shared shape across shards.
  std::vector<GammaBucket> buckets;
  {
    std::size_t lo = 1;
    for (const std::size_t hi : options.bucket_bounds) {
      buckets.push_back(GammaBucket{lo, hi, 0.0, 0.0, 0});
      lo = hi;
    }
  }
  const std::size_t n_buckets = buckets.size();

  runtime::run_campaign(executor, grid, [&](const runtime::CampaignTask&
                                                task) {
    const std::size_t shard = task.coords[0];
    // Even split of the fault stream; the first (faults % shards) shards
    // carry one extra.
    const std::size_t count = options.faults / shards +
                              (shard < options.faults % shards ? 1 : 0);

    ShardStats stats;
    stats.gamma_sums.assign(n_buckets, 0.0);
    stats.max_hypothesis.assign(n_buckets, 0.0);
    stats.samples.assign(n_buckets, 0);
    if (count == 0) {
      slots[task.index] = std::move(stats);
      return;
    }

    std::unique_ptr<SweepCacheAccess::Entry> local;
    SweepCacheAccess::Entry& entry = SweepCacheAccess::acquire(
        cache, local, task.worker, options.profile, options.seed,
        diag.local(task.worker));
    SimNetwork& net = *entry.net;
    ObjectFaultInjector& injector = *entry.injector;
    // The journal is armed in every mode: its rule-op undo *is* the
    // per-fault clean slate each iteration needs (this used to be a
    // clear-and-reinstall of every faulted switch — the pattern the cache
    // generalizes). Cached shards additionally repair logs and clock at
    // shard end so the next shard on this worker starts from baseline.
    CellLease lease{cache, entry, task.worker, diag.local(task.worker),
                    /*arm_always=*/true};

    Rng rng{task.seed};
    injector.set_rng(rng);
    RiskModel model = RiskModel::build_controller_model(*entry.index);
    const EquivalenceChecker checker{CheckMode::kSyntactic};

    const std::vector<ObjectRef> pool =
        injector.sample_objects(count, /*include_vrfs=*/false);
    const auto finish = [&] {
      lease.release();
      slots[task.index] = std::move(stats);
    };
    if (pool.empty()) {
      finish();
      return;
    }

    for (std::size_t i = 0; i < count; ++i) {
      const ObjectRef obj = pool[i % pool.size()];
      const InjectedFault fault = rng.chance(0.5)
                                      ? injector.inject_full(obj)
                                      : injector.inject_partial(obj);
      if (fault.rules_removed == 0) continue;

      // Check only the switches this fault touched (the others are known
      // clean: each iteration undoes its own damage below).
      std::vector<LogicalRule> missing;
      for (const SwitchId sw : fault.switches) {
        SwitchAgent* agent = net.controller().agent(sw);
        if (agent == nullptr) continue;
        CheckResult result =
            checker.check(net.controller().compiled().rules_for(sw),
                          agent->tcam().rules());
        missing.insert(missing.end(),
                       std::make_move_iterator(result.missing.begin()),
                       std::make_move_iterator(result.missing.end()));
      }
      model.clear_failures();
      model.augment(missing);

      const std::size_t suspects = model.suspect_set().size();
      ScoutLocalizer::Options lopts;
      lopts.change_window_ms = 60'000;
      const LocalizationResult result = ScoutLocalizer{lopts}.localize(
          model, net.controller().change_log(), net.clock().now());
      const double gamma =
          suspect_reduction(result.hypothesis.size(), suspects);

      for (std::size_t b = 0; b < n_buckets; ++b) {
        if (suspects >= buckets[b].lo && suspects < buckets[b].hi) {
          stats.gamma_sums[b] += gamma;
          stats.max_hypothesis[b] = std::max(
              stats.max_hypothesis[b],
              static_cast<double>(result.hypothesis.size()));
          ++stats.samples[b];
          break;
        }
      }

      // Exact repair of this fault's TCAM damage, so the next fault starts
      // from a clean deployment; then age the change log so this fault's
      // record leaves the recency window.
      entry.journal.undo_rule_ops(net);
      net.clock().advance(120'000);
    }
    finish();
  });
  merge_diagnostics(diag, diagnostics);

  // Merge shard partials in shard order (deterministic float accumulation).
  std::vector<double> gamma_sums(n_buckets, 0.0);
  for (const auto& stats : slots) {
    for (std::size_t b = 0; b < n_buckets; ++b) {
      gamma_sums[b] += stats.gamma_sums[b];
      buckets[b].max_hypothesis =
          std::max(buckets[b].max_hypothesis, stats.max_hypothesis[b]);
      buckets[b].samples += stats.samples[b];
    }
  }
  for (std::size_t b = 0; b < n_buckets; ++b) {
    if (buckets[b].samples > 0) {
      buckets[b].mean_gamma =
          gamma_sums[b] / static_cast<double>(buckets[b].samples);
    }
  }
  return buckets;
}

std::vector<GammaBucket> run_gamma_experiment(const GammaOptions& options) {
  runtime::SerialExecutor executor;
  return run_gamma_experiment(options, executor);
}

namespace {

// The measured portion of one scalability cell, over an already-deployed
// network: inject, then time check / model build / localization. Shared by
// the one-off point API (fresh network, RNG continuing from generation)
// and the campaign (cached network, per-cell fault RNG).
ScalePoint measure_scale_point(SimNetwork& net, ObjectFaultInjector& injector,
                               const PolicyIndex& index, std::size_t n_faults,
                               runtime::Executor& check_executor,
                               LogicalBddCache* bdd_cache = nullptr) {
  ScalePoint point;
  for (const ObjectRef obj : injector.sample_objects(n_faults)) {
    injector.inject_full(obj);
  }

  const ScoutSystem system{ScoutSystem::Options{CheckMode::kSyntactic,
                                                ScoutLocalizer::Options{}}};
  auto t0 = Clock::now();
  const std::vector<LogicalRule> missing =
      system.find_missing_rules(net, check_executor, bdd_cache);
  point.check_seconds = seconds_since(t0);

  point.epg_pairs = index.pairs().size();

  t0 = Clock::now();
  RiskModel model = RiskModel::build_controller_model(index);
  model.augment(missing);
  point.model_build_seconds = seconds_since(t0);
  point.elements = model.element_count();
  point.risks = model.risk_count();
  point.edges = model.edge_count();

  t0 = Clock::now();
  ScoutLocalizer::Options lopts;
  lopts.change_window_ms = 60'000;
  const LocalizationResult result = ScoutLocalizer{lopts}.localize(
      model, net.controller().change_log(), net.clock().now());
  point.localize_seconds = seconds_since(t0);
  (void)result;
  return point;
}

GeneratorProfile scale_profile(std::size_t switches,
                               std::size_t pairs_per_switch) {
  GeneratorProfile profile = GeneratorProfile::scaled(switches);
  profile.target_pairs = switches * pairs_per_switch;
  return profile;
}

}  // namespace

ScalePoint run_scalability_point(std::size_t switches, std::uint64_t seed,
                                 std::size_t n_faults,
                                 std::size_t pairs_per_switch) {
  runtime::SerialExecutor executor;
  return run_scalability_point(switches, seed, n_faults, pairs_per_switch,
                               executor);
}

ScalePoint run_scalability_point(std::size_t switches, std::uint64_t seed,
                                 std::size_t n_faults,
                                 std::size_t pairs_per_switch,
                                 runtime::Executor& check_executor) {
  const GeneratorProfile profile =
      scale_profile(switches, pairs_per_switch);

  Rng rng{seed};
  GeneratedNetwork generated = generate_network(profile, rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  net.clock().advance(3'600'000);

  ObjectFaultInjector injector{net.controller(), rng};
  const PolicyIndex index{net.controller().policy()};
  ScalePoint point =
      measure_scale_point(net, injector, index, n_faults, check_executor);
  point.switches = switches;
  return point;
}

std::vector<ScalePoint> run_scalability_campaign(
    const ScaleCampaignOptions& options, runtime::Executor& executor,
    SweepDiagnostics* diagnostics) {
  const runtime::CampaignGrid grid{
      options.seed,
      {{"switches", options.switch_counts.size()}, {"rep", options.reps}}};
  runtime::ResultSlots<ScalePoint> slots{grid.task_count()};
  runtime::WorkerLocal<SweepDiagnostics> diag{executor.workers()};

  std::optional<SweepNetworkCache> own_cache;
  SweepNetworkCache* cache = resolve_cache(options.cache_networks, nullptr,
                                           own_cache, executor.workers());

  runtime::run_campaign(
      executor, grid, [&](const runtime::CampaignTask& task) {
        const std::size_t count_idx = task.coords[0];
        const std::size_t switches = options.switch_counts[count_idx];
        const GeneratorProfile profile =
            scale_profile(switches, options.pairs_per_switch);
        // One fabric per switch count: the network seed depends on the
        // count coordinate only, so a count's reps measure fault variance
        // on the same fabric (and repeat in a worker's cache slot).
        const std::uint64_t net_seed = derive_seed(options.seed, count_idx);

        std::unique_ptr<SweepCacheAccess::Entry> local;
        SweepCacheAccess::Entry& entry = SweepCacheAccess::acquire(
            cache, local, task.worker, profile, net_seed,
            diag.local(task.worker));
        CellLease lease{cache, entry, task.worker, diag.local(task.worker)};
        Rng rng{task.seed};
        entry.injector->set_rng(rng);

        // Cells keep their check serial: the campaign already saturates
        // the executor across cells, and re-entering the same executor
        // from inside one of its tasks would deadlock its worker.
        runtime::SerialExecutor serial_check;
        ScalePoint point =
            measure_scale_point(*entry.net, *entry.injector, *entry.index,
                                options.n_faults, serial_check,
                                &entry.bdd_cache);
        point.switches = switches;
        slots[task.index] = point;
        lease.release();
      });
  merge_diagnostics(diag, diagnostics);
  return slots.take();
}

MonitoringReport run_continuous_monitoring(const MonitoringOptions& options,
                                           runtime::Executor& executor) {
  // The network build is seeded independently of the churn so tuning the
  // mix never reshapes the fabric under test.
  Rng net_rng{derive_seed(options.seed, 0xF0)};
  GeneratedNetwork generated = generate_network(options.profile, net_rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  net.clock().advance(3'600'000);  // age out deploy-time records

  stream::EventBus bus;
  net.attach_event_bus(&bus);

  // Incident-provenance ground truth. Engines mint causes regardless
  // (counter bumps, no RNG draws); only *recording* is gated on the
  // ledger, so attaching it never changes the op stream or the digests.
  stream::CauseLedger cause_ledger;
  const bool incidents_on = options.collect_incidents;

  // Fault classes beyond the churn mix land on the deployed network before
  // the monitor is constructed (register_metrics reads per-agent eviction
  // policy names) and before any churn. Everything is seeded off the run
  // seed and per-agent ids, never off publisher count or timing.
  if (options.gray_rate > 0.0) {
    GrayFaultProfile gray;
    gray.misrender_rate = options.gray_rate;
    gray.misrender_burst = 3;
    gray.drop_rate = options.gray_drop_rate >= 0.0
                         ? options.gray_drop_rate
                         : options.gray_rate * 0.5;
    gray.drop_burst = 2;
    const std::uint64_t gray_seed = derive_seed(options.seed, 0x6A);
    for (const auto& agent : net.agents()) {
      agent->set_gray_profile(gray,
                              derive_seed(gray_seed, agent->id().value()));
      if (incidents_on) agent->set_cause_ledger(&cause_ledger);
    }
  }
  if (!options.evict_policy.empty()) {
    const std::uint64_t evict_seed = derive_seed(options.seed, 0xE0);
    for (const auto& agent : net.agents()) {
      agent->tcam().set_eviction_policy(make_eviction_policy(
          options.evict_policy,
          derive_seed(evict_seed, agent->id().value())));
    }
  }
  if (options.delivery_window > 0) {
    ChannelDelayProfile delay;
    delay.window = options.delivery_window;
    delay.seed = derive_seed(options.seed, 0xDE);
    net.controller().set_channel_delay(delay);
  }
  std::unique_ptr<StormSchedule> storm;
  if (!options.storm.empty()) {
    storm = std::make_unique<StormSchedule>(
        net, storm_profile(options.storm), derive_seed(options.seed, 0x57));
    storm->set_split_episodes(options.storm_split);
    if (incidents_on) storm->set_cause_ledger(&cause_ledger);
  }

  // Concurrent-publish transport: the ring is sized over the SwitchId
  // space and attached before the monitor is constructed, so the
  // monitor's ring metrics register. Pipelined runs use backpressure
  // (nothing evicted mid-run — markers would race the free-running
  // publishers); phased runs use eviction-to-resync.
  const bool concurrent = options.publishers > 0;
  std::unique_ptr<stream::MpscRing> ring;
  if (concurrent && (options.use_ring || options.pipelined)) {
    std::size_t sw_bound = 0;
    for (const auto& agent : net.agents()) {
      sw_bound = std::max<std::size_t>(sw_bound, agent->id().value() + 1);
    }
    stream::MpscRing::Options ropts;
    if (options.ring_capacity > 0) {
      ropts.shard_capacity = options.ring_capacity;
    }
    ropts.on_full = options.pipelined
                        ? stream::MpscRing::FullPolicy::kBackpressure
                        : stream::MpscRing::FullPolicy::kEvictToResync;
    ring = std::make_unique<stream::MpscRing>(options.publishers, sw_bound,
                                              ropts);
    bus.attach_ring(ring.get());
  }

  // Telemetry sinks owned by the run; the monitor holds bare pointers.
  std::unique_ptr<telemetry::MetricsRegistry> registry;
  std::unique_ptr<telemetry::TraceRecorder> trace;
  if (options.collect_telemetry) {
    registry = std::make_unique<telemetry::MetricsRegistry>(
        executor.workers());
    if (options.collect_trace) {
      trace = std::make_unique<telemetry::TraceRecorder>(
          executor.workers() + 1);
    }
  }

  // Observability layers owned by the run, like the registry/trace above.
  std::unique_ptr<stream::IncidentBuilder> incidents;
  if (incidents_on) {
    incidents = std::make_unique<stream::IncidentBuilder>(&cause_ledger,
                                                          registry.get());
  }
  std::unique_ptr<telemetry::FlightRecorder> flight;
  if (options.collect_flight) {
    flight = std::make_unique<telemetry::FlightRecorder>(
        telemetry::FlightRecorder::Options{});
  }
  std::unique_ptr<telemetry::HealthEngine> health;
  if (options.collect_health) {
    health = std::make_unique<telemetry::HealthEngine>(
        telemetry::HealthEngine::Options{}, registry.get());
  }

  stream::MonitorLoop::Options mopts;
  mopts.incremental = options.incremental;
  mopts.checker = options.checker;
  mopts.metrics = registry.get();
  mopts.trace = trace.get();
  mopts.snapshot_every_batches = options.snapshot_every_batches;
  mopts.incidents = incidents.get();
  mopts.flight = flight.get();
  mopts.flight_dump_path = options.flight_dump_path;
  mopts.health = health.get();
  mopts.churn_top_k = options.churn_top_k;
  stream::MonitorLoop monitor{net, bus, executor, mopts};
  monitor.prime();

  // Churn source: the legacy serial generator, or the multi-threaded
  // driver (which degrades to executing the identical schedule serially
  // when no ring is attached — the differential baseline leg).
  std::unique_ptr<stream::ChurnGenerator> churn;
  std::unique_ptr<stream::ConcurrentChurnDriver> driver;
  if (concurrent) {
    stream::ConcurrentChurnDriver::Options dopts;
    dopts.publishers = options.publishers;
    dopts.mix = options.mix;
    dopts.use_ring = ring != nullptr;
    driver = std::make_unique<stream::ConcurrentChurnDriver>(
        net, bus, derive_seed(options.seed, 0xCE), dopts);
    if (incidents_on) driver->set_cause_ledger(&cause_ledger);
  } else {
    churn = std::make_unique<stream::ChurnGenerator>(
        net, bus, derive_seed(options.seed, 0xCE), options.mix);
    if (incidents_on) churn->set_cause_ledger(&cause_ledger);
  }
  const ScoutSystem verify_system{
      ScoutSystem::Options{CheckMode::kExactBdd, ScoutLocalizer::Options{}}};

  MonitoringReport report;
  std::uint64_t digest = derive_seed(options.seed, 0xD1);
  FabricCheck last_check;
  const auto run_start = Clock::now();
  const auto fold_verdict = [&](stream::MonitorVerdict& verdict) {
    report.events += verdict.events;
    report.drain_seconds += verdict.drain_ms / 1e3;
    ++report.batches;
    if (!verdict.check.inconsistent.empty()) ++report.inconsistent_batches;
    digest = fabric_check_digest(digest, verdict.check);
    last_check = std::move(verdict.check);
  };
  if (options.pipelined && driver != nullptr) {
    // Free-run in segments: the publishers burn a segment's op budget
    // while the monitor drains concurrently (batches self-size to the
    // backlog), then — at publisher quiescence — a serial control tail
    // repairs/resyncs switches so the fault schedule doesn't drain the
    // TCAMs dry (its events ride the next segment's drains). Batch
    // boundaries are timing-dependent here, so the correctness gate is
    // the final quiesced verdict against ground truth (below), not the
    // batch digest stream.
    const std::size_t segment_ops =
        std::max<std::size_t>(2500, options.batch_ops);
    while (report.events < options.events) {
      const stream::EventBus::Cursor before = bus.cursor();
      driver->start(segment_ops);
      for (;;) {
        stream::MonitorVerdict verdict = monitor.drain();
        if (verdict.events == 0) {
          if (!driver->producing()) break;
          std::this_thread::sleep_for(std::chrono::microseconds(100));
          continue;
        }
        fold_verdict(verdict);
      }
      (void)driver->pump_control(segment_ops);
      if (storm != nullptr) {
        // Episodes fire in the serial control tail (publishers quiesced);
        // their events ride the next segment's drains, or the tail drain
        // below for the last one.
        storm->run_episode();
        if (registry != nullptr) {
          registry->add_counter("faults.storm.episodes", 1);
        }
      }
      if (bus.cursor() == before) break;  // degenerate: nothing to churn
    }
    driver->stop();
    // Tail drain after quiescence: the last published events, plus shadow
    // resyncs for anything evicted by the stop()-time close.
    stream::MonitorVerdict tail = monitor.drain();
    fold_verdict(tail);
    // Wall stops at quiescence: the ground-truth cross-check below is the
    // gate's referee, not part of the monitored pipeline.
    report.wall_seconds = seconds_since(run_start);
    report.final_verdict_matches_fresh =
        fabric_check_identical(last_check, verify_system.check_all(net));
  } else {
    while (report.events < options.events) {
      const std::size_t produced = driver != nullptr
                                       ? driver->pump(options.batch_ops)
                                       : churn->pump(options.batch_ops);
      if (produced == 0) break;  // degenerate network: nothing left to churn
      stream::MonitorVerdict verdict = monitor.drain();
      fold_verdict(verdict);
      if (options.verify_batches) {
        const FabricCheck fresh = verify_system.check_all(net);
        if (!fabric_check_identical(last_check, fresh)) {
          ++report.verify_mismatches;
        }
      }
      if (storm != nullptr && options.storm_every_batches > 0 &&
          report.batches % options.storm_every_batches == 0) {
        storm->run_episode();
        if (registry != nullptr) {
          registry->add_counter("faults.storm.episodes", 1);
        }
      }
      if (options.target_events_per_sec > 0.0) {
        const double due = static_cast<double>(report.events) /
                           options.target_events_per_sec;
        const double ahead = due - seconds_since(run_start);
        if (ahead > 0.0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(ahead));
        }
      }
    }
    report.wall_seconds = seconds_since(run_start);
  }
  report.churn_ops =
      driver != nullptr ? driver->ops_applied() : churn->ops_applied();
  report.verdict_digest = digest;
  report.publish_wall_events_per_sec =
      report.wall_seconds > 0.0
          ? static_cast<double>(report.events) / report.wall_seconds
          : 0.0;
  if (ring != nullptr) {
    const stream::MpscRing::Stats ring_stats = ring->stats();
    report.ring_evictions = ring_stats.evictions;
    report.ring_full_stalls = ring_stats.full_stalls;
  }
  report.events_per_sec =
      report.drain_seconds > 0.0
          ? static_cast<double>(report.events) / report.drain_seconds
          : 0.0;
  report.checker = monitor.checker_stats();
  if (storm != nullptr) report.storm_episodes = storm->stats().episodes;
  for (const auto& agent : net.agents()) {
    report.gray_misrenders += agent->gray_misrenders();
    report.gray_drops += agent->gray_drops();
    report.tcam_evictions += agent->tcam().evictions();
  }

  if (incidents != nullptr) {
    incidents->finalize(report.batches, net.clock().now());
    const stream::IncidentBuilder::Totals& totals = incidents->totals();
    report.incidents = totals.incidents;
    report.incidents_unattributed = totals.unattributed_incidents;
    report.incident_first_cause_correct = totals.first_cause_correct;
    report.incident_precision = totals.precision();
    report.incident_recall = totals.recall();
    report.incident_json = incidents->to_json();
    if (!options.incident_log_path.empty()) {
      if (!incidents->write_file(options.incident_log_path)) {
        SCOUT_WARN("stream", "failed to write incident log to "
                                 << options.incident_log_path);
      }
    }
  }
  if (health != nullptr) {
    report.health_status = static_cast<int>(health->overall());
    JsonWriter hw;
    health->write_json(hw);
    report.health_json = hw.str();
  }
  if (flight != nullptr) {
    report.flight_entries = flight->total_recorded();
    // Final dump: the loop already dumped on clean→failing transitions;
    // overwriting with the end-of-run state keeps the newest entries and
    // guarantees the file exists even for runs that never failed.
    if (!options.flight_dump_path.empty()) {
      if (!flight->dump_to_file(options.flight_dump_path.c_str())) {
        SCOUT_WARN("stream", "failed to write flight dump to "
                                 << options.flight_dump_path);
      }
    }
  }

  report.final_inconsistent = last_check.inconsistent.size();
  report.final_missing = last_check.missing_rules.size();
  report.final_extra = last_check.extra_rule_count;
  if (options.localize_final && !last_check.inconsistent.empty()) {
    report.hypothesis_size =
        monitor.localize(last_check).hypothesis.size();
  }
  if (options.remediate_final && !last_check.missing_rules.empty()) {
    report.final_still_missing = monitor.remediate(last_check);
  }

  if (registry != nullptr) {
    // The registry histograms are the one latency source of truth: the
    // report percentiles are read back out of the snapshot, the same
    // numbers scoutctl --telemetry and the benches export.
    report.telemetry = monitor.snapshot_metrics();
    report.periodic_snapshot_count = monitor.periodic_snapshots().size();
    if (const LogHistogram* wall =
            report.telemetry.histogram("stream.wall_latency_ms")) {
      report.p50_latency_ms = wall->quantile(0.50);
      report.p99_latency_ms = wall->quantile(0.99);
      report.max_latency_ms = wall->max();
    }
    if (const LogHistogram* sim =
            report.telemetry.histogram("stream.sim_latency_ms")) {
      report.sim_p50_latency_ms = sim->quantile(0.50);
      report.sim_p99_latency_ms = sim->quantile(0.99);
      report.sim_max_latency_ms = sim->max();
    }
    if (trace != nullptr) {
      report.trace_json = trace->to_chrome_json(&report.telemetry);
    }
  }
  return report;
}

std::vector<AnalysisScalingPoint> run_analysis_scaling(
    const AnalysisScalingOptions& options) {
  GeneratorProfile profile = GeneratorProfile::scaled(options.switches);
  profile.target_pairs = options.switches * options.pairs_per_switch;

  Rng rng{options.seed};
  GeneratedNetwork generated = generate_network(profile, rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  net.clock().advance(3'600'000);

  ObjectFaultInjector injector{net.controller(), rng};
  for (const ObjectRef obj : injector.sample_objects(options.n_faults)) {
    injector.inject_full(obj);
  }

  const ScoutSystem system{
      ScoutSystem::Options{options.check_mode, ScoutLocalizer::Options{}}};
  std::vector<AnalysisScalingPoint> points;
  points.reserve(options.thread_counts.size());
  for (const std::size_t threads : options.thread_counts) {
    const auto executor = runtime::make_executor(threads);
    // In BDD mode each worker gets a fresh logical-BDD arena per thread
    // count (worker counts differ), warmed within the measured check —
    // the steady-state reuse benches live in bdd_micro; structural
    // outputs stay identical across counts either way.
    LogicalBddCache bdd_cache{executor->workers()};
    AnalysisScalingPoint point;
    point.threads = executor->workers();
    const auto t0 = Clock::now();
    const FabricCheck check = system.check_all(net, *executor, &bdd_cache);
    point.check_seconds = seconds_since(t0);
    point.missing_rules = check.missing_rules.size();
    point.switches_inconsistent = check.inconsistent.size();
    point.extra_rules = check.extra_rule_count;
    points.push_back(point);
  }
  return points;
}

}  // namespace scout
