#include "src/scout/experiment.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <unordered_set>

#include "src/common/logging.h"
#include "src/faults/fault_injector.h"
#include "src/localization/score.h"
#include "src/localization/scout_localizer.h"
#include "src/runtime/result_sink.h"
#include "src/scout/metrics.h"
#include "src/scout/scout_system.h"
#include "src/scout/sim_network.h"

namespace scout {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// The leaf carrying the most compiled rules: switch-model experiments
// inject every fault there so its risk model sees all of them.
SwitchId busiest_switch(const Controller& controller) {
  SwitchId best{};
  std::size_t best_rules = 0;
  for (const auto& [sw, rules] : controller.compiled().per_switch) {
    if (rules.size() > best_rules) {
      best_rules = rules.size();
      best = sw;
    }
  }
  return best;
}

LocalizationResult run_algorithm(const AlgorithmSpec& spec,
                                 const RiskModel& model,
                                 const ChangeLog& change_log, SimTime now,
                                 std::int64_t window_ms) {
  if (spec.kind == AlgorithmKind::kScore) {
    return ScoreLocalizer{spec.score_threshold}.localize(model);
  }
  ScoutLocalizer::Options opts;
  opts.change_window_ms = window_ms;
  opts.enable_stage2 = spec.scout_stage2;
  return ScoutLocalizer{opts}.localize(model, change_log, now);
}

// Every campaign cell rebuilds the sweep network from the *base* seed: the
// paper evaluates one fixed production dataset, so the policy is identical
// across cells and only fault selection (driven by the per-cell seed)
// varies. SimNetwork is neither copyable nor movable, so cells construct it
// in place rather than receiving a prototype.
GeneratedNetwork make_sweep_network(const GeneratorProfile& profile,
                                    std::uint64_t seed) {
  Rng rng{seed};
  return generate_network(profile, rng);
}

}  // namespace

std::vector<AccuracySeries> run_accuracy_sweep(
    const AccuracyOptions& options, std::span<const AlgorithmSpec> algorithms,
    runtime::Executor& executor) {
  const runtime::CampaignGrid grid{
      options.seed,
      {{"faults", options.max_faults}, {"run", options.runs}}};

  // One slot per (fault-count, run) cell: per-algorithm precision/recall.
  runtime::ResultSlots<std::vector<PrecisionRecall>> slots{grid.task_count()};
  // Diagnostics only (load balance); never feeds results.
  runtime::WorkerLocal<double> busy_seconds{executor.workers()};

  runtime::run_campaign(executor, grid, [&](const runtime::CampaignTask&
                                                task) {
    const auto task_start = Clock::now();
    const std::size_t n_faults = task.coords[0] + 1;

    GeneratedNetwork generated =
        make_sweep_network(options.profile, options.seed);
    SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
    net.deploy();
    net.clock().advance(3'600'000);  // age out deploy-time change records

    // All randomness below this line comes from the per-cell seed.
    Rng rng{task.seed};
    ObjectFaultInjector injector{net.controller(), rng};
    const bool switch_scoped = options.model == RiskModelKind::kSwitch;
    const std::optional<SwitchId> scope =
        switch_scoped ? std::optional{busiest_switch(net.controller())}
                      : std::nullopt;

    const PolicyIndex index{net.controller().policy()};
    RiskModel model = switch_scoped
                          ? RiskModel::build_switch_model(index, *scope)
                          : RiskModel::build_controller_model(index);

    // Benign change-log noise inside the recency window.
    for (const ObjectRef obj : injector.sample_objects(
             options.benign_changes, /*include_vrfs=*/true)) {
      net.controller().record_benign_change(obj);
    }

    // Ground truth: n distinct objects, each faulted fully or partially
    // with equal probability (paper §VI-A).
    const std::vector<ObjectRef> truth_vec =
        injector.sample_objects(n_faults, /*include_vrfs=*/false, scope);
    const std::unordered_set<ObjectRef> truth(truth_vec.begin(),
                                              truth_vec.end());
    for (const ObjectRef obj : truth_vec) {
      if (rng.chance(0.5)) {
        (void)injector.inject_full(obj, scope);
      } else {
        (void)injector.inject_partial(obj, scope);
      }
    }

    // Collect + check + augment once; every algorithm sees the same model.
    const ScoutSystem system{
        ScoutSystem::Options{options.check_mode, ScoutLocalizer::Options{}}};
    model.augment(system.find_missing_rules(net));

    std::vector<PrecisionRecall> cell(algorithms.size());
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      const LocalizationResult result =
          run_algorithm(algorithms[a], model, net.controller().change_log(),
                        net.clock().now(), options.change_window_ms);
      cell[a] = evaluate_hypothesis(result.hypothesis, truth);
    }
    slots[task.index] = std::move(cell);
    busy_seconds.local(task.worker) += seconds_since(task_start);
  });

  SCOUT_LOG(LogLevel::kDebug, "experiment",
            "accuracy sweep: " << grid.task_count() << " cells over "
                << executor.workers() << " workers; busy "
                << busy_seconds.merge(
                       [](double a, double b) { return a + b; })
                << " s total, "
                << busy_seconds.merge([](double a, double b) {
                     return a > b ? a : b;
                   })
                << " s on the slowest worker");

  // Reduce in cell-index order — bit-identical for any executor.
  std::vector<AccuracySeries> series(algorithms.size());
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    series[a].name = algorithms[a].name;
    series[a].by_faults.resize(options.max_faults);
  }
  const double runs = static_cast<double>(options.runs);
  for (std::size_t f = 0; f < options.max_faults; ++f) {
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      double precision_sum = 0.0;
      double recall_sum = 0.0;
      for (std::size_t run = 0; run < options.runs; ++run) {
        const PrecisionRecall& pr = slots[f * options.runs + run][a];
        precision_sum += pr.precision;
        recall_sum += pr.recall;
      }
      series[a].by_faults[f] =
          AccuracyCell{precision_sum / runs, recall_sum / runs};
    }
  }
  return series;
}

std::vector<AccuracySeries> run_accuracy_sweep(
    const AccuracyOptions& options,
    std::span<const AlgorithmSpec> algorithms) {
  runtime::SerialExecutor executor;
  return run_accuracy_sweep(options, algorithms, executor);
}

std::vector<GammaBucket> run_gamma_experiment(const GammaOptions& options,
                                              runtime::Executor& executor) {
  const std::size_t shards = std::max<std::size_t>(1, options.shards);
  const runtime::CampaignGrid grid{options.seed, {{"shard", shards}}};

  struct ShardStats {
    std::vector<double> gamma_sums;
    std::vector<double> max_hypothesis;
    std::vector<std::size_t> samples;
  };
  runtime::ResultSlots<ShardStats> slots{shards};

  // Bucket scaffolding, shared shape across shards.
  std::vector<GammaBucket> buckets;
  {
    std::size_t lo = 1;
    for (const std::size_t hi : options.bucket_bounds) {
      buckets.push_back(GammaBucket{lo, hi, 0.0, 0.0, 0});
      lo = hi;
    }
  }
  const std::size_t n_buckets = buckets.size();

  runtime::run_campaign(executor, grid, [&](const runtime::CampaignTask&
                                                task) {
    const std::size_t shard = task.coords[0];
    // Even split of the fault stream; the first (faults % shards) shards
    // carry one extra.
    const std::size_t count = options.faults / shards +
                              (shard < options.faults % shards ? 1 : 0);

    ShardStats stats;
    stats.gamma_sums.assign(n_buckets, 0.0);
    stats.max_hypothesis.assign(n_buckets, 0.0);
    stats.samples.assign(n_buckets, 0);
    if (count == 0) {
      slots[task.index] = std::move(stats);
      return;
    }

    GeneratedNetwork generated =
        make_sweep_network(options.profile, options.seed);
    SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
    net.deploy();
    net.clock().advance(3'600'000);

    Rng rng{task.seed};
    const PolicyIndex index{net.controller().policy()};
    RiskModel model = RiskModel::build_controller_model(index);
    const EquivalenceChecker checker{CheckMode::kSyntactic};
    ObjectFaultInjector injector{net.controller(), rng};

    const std::vector<ObjectRef> pool =
        injector.sample_objects(count, /*include_vrfs=*/false);
    if (pool.empty()) {
      slots[task.index] = std::move(stats);
      return;
    }

    for (std::size_t i = 0; i < count; ++i) {
      const ObjectRef obj = pool[i % pool.size()];
      const InjectedFault fault = rng.chance(0.5)
                                      ? injector.inject_full(obj)
                                      : injector.inject_partial(obj);
      if (fault.rules_removed == 0) continue;

      // Check only the switches this fault touched (the others are known
      // clean: each iteration repairs its own damage below).
      std::vector<LogicalRule> missing;
      for (const SwitchId sw : fault.switches) {
        SwitchAgent* agent = net.controller().agent(sw);
        if (agent == nullptr) continue;
        CheckResult result =
            checker.check(net.controller().compiled().rules_for(sw),
                          agent->tcam().rules());
        missing.insert(missing.end(),
                       std::make_move_iterator(result.missing.begin()),
                       std::make_move_iterator(result.missing.end()));
      }
      model.clear_failures();
      model.augment(missing);

      const std::size_t suspects = model.suspect_set().size();
      ScoutLocalizer::Options lopts;
      lopts.change_window_ms = 60'000;
      const LocalizationResult result = ScoutLocalizer{lopts}.localize(
          model, net.controller().change_log(), net.clock().now());
      const double gamma =
          suspect_reduction(result.hypothesis.size(), suspects);

      for (std::size_t b = 0; b < n_buckets; ++b) {
        if (suspects >= buckets[b].lo && suspects < buckets[b].hi) {
          stats.gamma_sums[b] += gamma;
          stats.max_hypothesis[b] = std::max(
              stats.max_hypothesis[b],
              static_cast<double>(result.hypothesis.size()));
          ++stats.samples[b];
          break;
        }
      }

      // Repair: reinstall the faulted switches' rules from the compiled
      // policy so the next fault starts from a clean deployment, and age
      // the change log so this fault's record leaves the recency window.
      for (const SwitchId sw : fault.switches) {
        SwitchAgent* agent = net.controller().agent(sw);
        if (agent == nullptr) continue;
        agent->tcam().clear();
        for (const LogicalRule& lr :
             net.controller().compiled().rules_for(sw)) {
          (void)agent->tcam().install(lr.rule);
        }
      }
      net.clock().advance(120'000);
    }
    slots[task.index] = std::move(stats);
  });

  // Merge shard partials in shard order (deterministic float accumulation).
  std::vector<double> gamma_sums(n_buckets, 0.0);
  for (const auto& stats : slots) {
    for (std::size_t b = 0; b < n_buckets; ++b) {
      gamma_sums[b] += stats.gamma_sums[b];
      buckets[b].max_hypothesis =
          std::max(buckets[b].max_hypothesis, stats.max_hypothesis[b]);
      buckets[b].samples += stats.samples[b];
    }
  }
  for (std::size_t b = 0; b < n_buckets; ++b) {
    if (buckets[b].samples > 0) {
      buckets[b].mean_gamma =
          gamma_sums[b] / static_cast<double>(buckets[b].samples);
    }
  }
  return buckets;
}

std::vector<GammaBucket> run_gamma_experiment(const GammaOptions& options) {
  runtime::SerialExecutor executor;
  return run_gamma_experiment(options, executor);
}

ScalePoint run_scalability_point(std::size_t switches, std::uint64_t seed,
                                 std::size_t n_faults,
                                 std::size_t pairs_per_switch) {
  runtime::SerialExecutor executor;
  return run_scalability_point(switches, seed, n_faults, pairs_per_switch,
                               executor);
}

ScalePoint run_scalability_point(std::size_t switches, std::uint64_t seed,
                                 std::size_t n_faults,
                                 std::size_t pairs_per_switch,
                                 runtime::Executor& check_executor) {
  ScalePoint point;
  point.switches = switches;

  GeneratorProfile profile = GeneratorProfile::scaled(switches);
  profile.target_pairs = switches * pairs_per_switch;

  Rng rng{seed};
  GeneratedNetwork generated = generate_network(profile, rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  net.clock().advance(3'600'000);

  ObjectFaultInjector injector{net.controller(), rng};
  for (const ObjectRef obj : injector.sample_objects(n_faults)) {
    injector.inject_full(obj);
  }

  const ScoutSystem system{ScoutSystem::Options{CheckMode::kSyntactic,
                                                ScoutLocalizer::Options{}}};
  auto t0 = Clock::now();
  const std::vector<LogicalRule> missing =
      system.find_missing_rules(net, check_executor);
  point.check_seconds = seconds_since(t0);

  const PolicyIndex index{net.controller().policy()};
  point.epg_pairs = index.pairs().size();

  t0 = Clock::now();
  RiskModel model = RiskModel::build_controller_model(index);
  model.augment(missing);
  point.model_build_seconds = seconds_since(t0);
  point.elements = model.element_count();
  point.risks = model.risk_count();
  point.edges = model.edge_count();

  t0 = Clock::now();
  ScoutLocalizer::Options lopts;
  lopts.change_window_ms = 60'000;
  const LocalizationResult result = ScoutLocalizer{lopts}.localize(
      model, net.controller().change_log(), net.clock().now());
  point.localize_seconds = seconds_since(t0);
  (void)result;
  return point;
}

std::vector<ScalePoint> run_scalability_campaign(
    const ScaleCampaignOptions& options, runtime::Executor& executor) {
  const runtime::CampaignGrid grid{
      options.seed,
      {{"switches", options.switch_counts.size()}, {"rep", options.reps}}};
  runtime::ResultSlots<ScalePoint> slots{grid.task_count()};

  runtime::run_campaign(
      executor, grid, [&](const runtime::CampaignTask& task) {
        // Cells keep their check serial: the campaign already saturates the
        // executor across cells, and re-entering the same executor from
        // inside one of its tasks would deadlock its worker.
        slots[task.index] = run_scalability_point(
            options.switch_counts[task.coords[0]], task.seed,
            options.n_faults, options.pairs_per_switch);
      });
  return slots.take();
}

std::vector<AnalysisScalingPoint> run_analysis_scaling(
    const AnalysisScalingOptions& options) {
  GeneratorProfile profile = GeneratorProfile::scaled(options.switches);
  profile.target_pairs = options.switches * options.pairs_per_switch;

  Rng rng{options.seed};
  GeneratedNetwork generated = generate_network(profile, rng);
  SimNetwork net{std::move(generated.fabric), std::move(generated.policy)};
  net.deploy();
  net.clock().advance(3'600'000);

  ObjectFaultInjector injector{net.controller(), rng};
  for (const ObjectRef obj : injector.sample_objects(options.n_faults)) {
    injector.inject_full(obj);
  }

  const ScoutSystem system{
      ScoutSystem::Options{options.check_mode, ScoutLocalizer::Options{}}};
  std::vector<AnalysisScalingPoint> points;
  points.reserve(options.thread_counts.size());
  for (const std::size_t threads : options.thread_counts) {
    const auto executor = runtime::make_executor(threads);
    AnalysisScalingPoint point;
    point.threads = executor->workers();
    const auto t0 = Clock::now();
    const FabricCheck check = system.check_all(net, *executor);
    point.check_seconds = seconds_since(t0);
    point.missing_rules = check.missing_rules.size();
    point.switches_inconsistent = check.inconsistent.size();
    point.extra_rules = check.extra_rule_count;
    points.push_back(point);
  }
  return points;
}

}  // namespace scout
