#include "src/scout/connectivity_probe.h"

#include "src/policy/policy_index.h"

namespace scout {
namespace {

PacketHeader make_header(const NetworkPolicy& policy, EndpointId src,
                         EndpointId dst, IpProtocol proto,
                         std::uint16_t dst_port) {
  const Endpoint& s = policy.endpoint(src);
  const Endpoint& d = policy.endpoint(dst);
  PacketHeader h;
  h.vrf = static_cast<std::uint16_t>(policy.epg(s.epg).vrf.value());
  h.src_epg = static_cast<std::uint16_t>(s.epg.value());
  h.dst_epg = static_cast<std::uint16_t>(d.epg.value());
  h.proto = static_cast<std::uint8_t>(proto);
  h.dst_port = dst_port;
  return h;
}

bool leaf_allows(SimNetwork& net, SwitchId leaf, const PacketHeader& h) {
  SwitchAgent* agent = net.controller().agent(leaf);
  if (agent == nullptr) return false;  // unmanaged leaf: fail closed
  return agent->tcam().lookup(h) == RuleAction::kAllow;
}

}  // namespace

ProbeResult probe_flow(SimNetwork& net, EndpointId src, EndpointId dst,
                       IpProtocol proto, std::uint16_t dst_port) {
  const NetworkPolicy& policy = net.controller().policy();
  ProbeResult result;
  result.forward_leaf = policy.endpoint(src).attached_switch;
  result.reverse_leaf = policy.endpoint(dst).attached_switch;
  result.forward_allowed =
      leaf_allows(net, result.forward_leaf,
                  make_header(policy, src, dst, proto, dst_port));
  result.reverse_allowed =
      leaf_allows(net, result.reverse_leaf,
                  make_header(policy, dst, src, proto, dst_port));
  return result;
}

bool intent_allows(const NetworkPolicy& policy, EndpointId src,
                   EndpointId dst, IpProtocol proto,
                   std::uint16_t dst_port) {
  const EpgId src_epg = policy.endpoint(src).epg;
  const EpgId dst_epg = policy.endpoint(dst).epg;
  if (policy.epg(src_epg).vrf != policy.epg(dst_epg).vrf) return false;
  // Whitelist evaluation: first matching entry across the pair's contracts
  // decides; default deny.
  for (const ContractId c :
       policy.contracts_between(EpgPair{src_epg, dst_epg})) {
    for (const FilterId f : policy.contract(c).filters) {
      for (const FilterEntry& e : policy.filter(f).entries) {
        const bool proto_ok =
            e.protocol == IpProtocol::kAny || e.protocol == proto;
        if (proto_ok && dst_port >= e.port_lo && dst_port <= e.port_hi) {
          return e.action == FilterAction::kAllow;
        }
      }
    }
  }
  return false;
}

DivergenceSummary probe_all_intents(SimNetwork& net) {
  const NetworkPolicy& policy = net.controller().policy();
  const PolicyIndex index{policy};
  DivergenceSummary summary;

  for (const EpgPair& pair : index.pairs()) {
    const auto& a_eps = policy.epg(pair.a).endpoints;
    const auto& b_eps = policy.epg(pair.b).endpoints;
    if (a_eps.empty() || b_eps.empty()) continue;
    // One representative endpoint per side; policy is EPG-granular, so any
    // endpoint pair behaves identically modulo its attachment leaf. Probe
    // every distinct filter entry the pair's contracts reference.
    for (const ContractId c : index.contracts_of(pair)) {
      for (const FilterId f : policy.contract(c).filters) {
        const Filter& filter = policy.filter(f);
        for (const FilterEntry& entry : filter.entries) {
          const IpProtocol proto = entry.protocol == IpProtocol::kAny
                                       ? IpProtocol::kTcp
                                       : entry.protocol;
          ++summary.flows_probed;
          const bool intended = intent_allows(policy, a_eps.front(),
                                              b_eps.front(), proto,
                                              entry.port_lo);
          const ProbeResult probe = probe_flow(net, a_eps.front(),
                                               b_eps.front(), proto,
                                               entry.port_lo);
          if (probe.bidirectional() != intended) ++summary.flows_diverging;
        }
      }
    }
  }
  return summary;
}

}  // namespace scout
