// Evaluation metrics (paper §VI): precision |G∩H|/|H|, recall |G∩H|/|G|,
// and suspect-set reduction γ = |H| / |suspect set|.
#pragma once

#include <span>
#include <unordered_set>

#include "src/policy/object_ref.h"

namespace scout {

struct PrecisionRecall {
  double precision = 1.0;  // empty hypothesis: no false positives
  double recall = 1.0;     // empty ground truth: nothing to find
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;

  [[nodiscard]] double f1() const noexcept {
    const double denom = precision + recall;
    return denom == 0.0 ? 0.0 : 2.0 * precision * recall / denom;
  }
};

[[nodiscard]] PrecisionRecall evaluate_hypothesis(
    std::span<const ObjectRef> hypothesis,
    const std::unordered_set<ObjectRef>& ground_truth);

// γ: fraction of the naive suspect set an admin still has to examine.
// Degenerate inputs: empty suspect set (no observations) yields 0.
[[nodiscard]] double suspect_reduction(std::size_t hypothesis_size,
                                       std::size_t suspect_set_size) noexcept;

}  // namespace scout
