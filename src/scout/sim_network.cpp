#include "src/scout/sim_network.h"

#include <stdexcept>

namespace scout {

SimNetwork::SimNetwork(Fabric fabric, NetworkPolicy policy)
    : fabric_(std::move(fabric)) {
  controller_ = std::make_unique<Controller>(std::move(policy), clock_);
  std::vector<SwitchAgent*> raw;
  for (const SwitchInfo& info : fabric_.switches()) {
    if (info.role != SwitchRole::kLeaf) continue;  // policy TCAM on leaves
    agents_.push_back(
        std::make_unique<SwitchAgent>(info, info.tcam_capacity));
    raw.push_back(agents_.back().get());
  }
  controller_->attach_agents(raw);
}

SwitchAgent& SimNetwork::agent(SwitchId sw) {
  SwitchAgent* a = controller_->agent(sw);
  if (a == nullptr) throw std::out_of_range{"SimNetwork::agent: unknown"};
  return *a;
}

DeployStats SimNetwork::deploy() { return controller_->deploy_full(); }

FaultLog SimNetwork::collect_fault_logs() const {
  FaultLog merged;
  merged.merge_from(controller_->fault_log());
  for (const auto& a : agents_) merged.merge_from(a->fault_log());
  return merged;
}

}  // namespace scout
