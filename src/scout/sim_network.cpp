#include "src/scout/sim_network.h"

#include <bit>
#include <cstdint>
#include <stdexcept>

#include "src/common/hash.h"
#include "src/stream/event_bus.h"

namespace scout {

SimNetwork::SimNetwork(Fabric fabric, NetworkPolicy policy)
    : fabric_(std::move(fabric)) {
  controller_ = std::make_unique<Controller>(std::move(policy), clock_);
  std::vector<SwitchAgent*> raw;
  for (const SwitchInfo& info : fabric_.switches()) {
    if (info.role != SwitchRole::kLeaf) continue;  // policy TCAM on leaves
    agents_.push_back(
        std::make_unique<SwitchAgent>(info, info.tcam_capacity));
    raw.push_back(agents_.back().get());
  }
  controller_->attach_agents(raw);
}

SwitchAgent& SimNetwork::agent(SwitchId sw) {
  SwitchAgent* a = controller_->agent(sw);
  if (a == nullptr) throw std::out_of_range{"SimNetwork::agent: unknown"};
  return *a;
}

DeployStats SimNetwork::deploy() { return controller_->deploy_full(); }

void SimNetwork::attach_event_bus(stream::EventBus* bus) {
  // Unbind the previous bus's change-log cursor: a detached bus must not
  // keep a pointer into this network (it may outlive us).
  if (bus_ != nullptr && bus_ != bus) bus_->bind_change_log(nullptr);
  bus_ = bus;
  controller_->attach_event_bus(bus);
  for (const auto& a : agents_) a->attach_event_bus(bus);
  if (bus != nullptr) bus->bind_change_log(&controller_->change_log());
}

FaultLog SimNetwork::collect_fault_logs() const {
  FaultLog merged;
  merged.merge_from(controller_->fault_log());
  for (const auto& a : agents_) merged.merge_from(a->fault_log());
  return merged;
}

namespace {

void mix_rule(std::size_t& h, const TcamRule& r) {
  hash_combine(h, r.fold_hash(0));
}

void mix_logical_rule(std::size_t& h, const LogicalRule& lr) {
  mix_rule(h, lr.rule);
  hash_combine(h, hash_all(lr.prov.sw, lr.prov.pair, lr.prov.vrf,
                           lr.prov.contract, lr.prov.filter,
                           lr.prov.entry_index, lr.prov.reversed));
}

void mix_fault_log(std::size_t& h, const FaultLog& log) {
  for (const FaultRecord& r : log.records()) {
    hash_combine(
        h, hash_all(r.raised.millis(),
                    r.cleared.has_value() ? r.cleared->millis()
                                          : std::int64_t{-1},
                    r.sw, static_cast<unsigned>(r.code),
                    static_cast<unsigned>(r.severity), r.detail));
  }
}

}  // namespace

std::uint64_t SimNetwork::state_fingerprint() const {
  std::size_t h = 0;
  hash_combine(h, hash_all(clock_.now().millis()));

  // Policy shape guard (contents are out of the repair domain).
  const NetworkPolicy& policy = controller_->policy();
  hash_combine(h, hash_all(policy.vrfs().size(), policy.epgs().size(),
                           policy.contracts().size(), policy.filters().size(),
                           policy.links().size()));

  for (const ChangeRecord& r : controller_->change_log().records()) {
    hash_combine(h, hash_all(r.time.millis(), r.object,
                             static_cast<unsigned>(r.action),
                             r.pushed_to.size()));
    for (const SwitchId sw : r.pushed_to) hash_combine(h, hash_all(sw));
  }
  mix_fault_log(h, controller_->fault_log());
  for (const ControlChannel::Outage& o : controller_->channel().outages()) {
    hash_combine(h, hash_all(o.sw, o.start.millis(),
                             o.end.has_value() ? o.end->millis()
                                               : std::int64_t{-1}));
  }

  for (const auto& agent : agents_) {
    const SwitchAgent::FaultState st = agent->fault_state();
    hash_combine(h, hash_all(agent->id(), st.responsive, st.crashed,
                             st.crash_countdown,
                             st.vrf_rewrite_bug.value_or(0xFFFFU)));
    // Gray knobs are fault-behaviour state like the flags above; the gray
    // RNG is bookkeeping (it steers future faults, it is not observable
    // state) and stays out, exactly like the churn generator's RNG.
    hash_combine(
        h, hash_all(std::bit_cast<std::uint64_t>(
                        st.gray_profile.misrender_rate),
                    st.gray_profile.misrender_burst,
                    std::bit_cast<std::uint64_t>(st.gray_profile.drop_rate),
                    st.gray_profile.drop_burst,
                    std::bit_cast<std::uint64_t>(
                        st.gray_profile.collect_keep_fraction),
                    st.gray_misrender_left, st.gray_drop_left));
    hash_combine(h, hash_all(agent->tcam().size(),
                             agent->logical_view().size()));
    for (const TcamRule& r : agent->tcam().rules()) mix_rule(h, r);
    for (const LogicalRule& lr : agent->logical_view()) {
      mix_logical_rule(h, lr);
    }
    mix_fault_log(h, agent->fault_log());
    // Compiled snapshot for this agent, in agent order (per_switch is an
    // unordered_map; hashing it in its own order would be unstable).
    for (const LogicalRule& lr :
         controller_->compiled().rules_for(agent->id())) {
      mix_logical_rule(h, lr);
    }
  }
  return static_cast<std::uint64_t>(h);
}

}  // namespace scout
