// Connectivity probes: the operator-facing entry point of the paper's
// story. A trouble ticket says "these endpoints cannot talk"; a probe
// reproduces that observation against the *deployed* TCAM state (not the
// policy), and its divergence from policy intent is what triggers the
// SCOUT pipeline.
//
// Enforcement model: policy ACLs are evaluated at the source endpoint's
// leaf (ingress enforcement, the common APIC configuration). A flow is
// allowed iff the ingress leaf's TCAM allows it; the reverse direction is
// probed at the destination's leaf.
#pragma once

#include "src/policy/filter.h"
#include "src/scout/sim_network.h"

namespace scout {

struct ProbeResult {
  bool forward_allowed = false;  // src -> dst at src's leaf
  bool reverse_allowed = false;  // dst -> src at dst's leaf
  SwitchId forward_leaf;
  SwitchId reverse_leaf;

  [[nodiscard]] bool bidirectional() const noexcept {
    return forward_allowed && reverse_allowed;
  }
};

// Probe a single (src EP, dst EP, proto, dst port) flow against deployed
// TCAM state. Throws std::out_of_range for unknown endpoints.
[[nodiscard]] ProbeResult probe_flow(SimNetwork& net, EndpointId src,
                                     EndpointId dst, IpProtocol proto,
                                     std::uint16_t dst_port);

// Does the *policy* intend this flow to be allowed? (Evaluates contracts
// and filters, not TCAMs.) A probe that disagrees with the intent is an
// observation in the paper's sense.
[[nodiscard]] bool intent_allows(const NetworkPolicy& policy, EndpointId src,
                                 EndpointId dst, IpProtocol proto,
                                 std::uint16_t dst_port);

// Sweep every linked EPG pair's filter entries and count flows whose
// deployed behaviour diverges from intent — a cheap fabric-wide health
// indicator an operator can alert on.
struct DivergenceSummary {
  std::size_t flows_probed = 0;
  std::size_t flows_diverging = 0;
};
[[nodiscard]] DivergenceSummary probe_all_intents(SimNetwork& net);

}  // namespace scout
