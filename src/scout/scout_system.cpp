#include "src/scout/scout_system.h"

#include <algorithm>
#include <unordered_set>

#include "src/scout/metrics.h"

namespace scout {

std::vector<LogicalRule> ScoutSystem::find_missing_rules(
    SimNetwork& net) const {
  std::vector<LogicalRule> all_missing;
  const CompiledPolicy& compiled = net.controller().compiled();
  for (const auto& agent : net.agents()) {
    const auto& logical = compiled.rules_for(agent->id());
    if (logical.empty() && agent->tcam().size() == 0) continue;
    const std::vector<TcamRule> deployed = agent->collect_tcam();
    CheckResult result = checker_.check(logical, deployed);
    all_missing.insert(all_missing.end(),
                       std::make_move_iterator(result.missing.begin()),
                       std::make_move_iterator(result.missing.end()));
  }
  return all_missing;
}

ObjectScope ScoutSystem::build_object_scope(const SimNetwork& net) {
  ObjectScope scope;
  auto note = [&scope](ObjectRef obj, SwitchId sw) {
    auto& v = scope[obj];
    if (std::find(v.begin(), v.end(), sw) == v.end()) v.push_back(sw);
  };
  for (const auto& [sw, rules] :
       net.controller().compiled().per_switch) {
    for (const LogicalRule& lr : rules) {
      if (!lr.prov.contract.valid()) continue;
      for (const ObjectRef obj : lr.prov.policy_objects()) note(obj, sw);
    }
  }
  return scope;
}

ScoutReport ScoutSystem::analyze(SimNetwork& net, RiskModel model) const {
  ScoutReport report;

  // Stage 1-2: collect + check.
  const CompiledPolicy& compiled = net.controller().compiled();
  report.switches_checked = net.agents().size();
  {
    std::vector<SwitchId> bad;
    for (const auto& agent : net.agents()) {
      const auto& logical = compiled.rules_for(agent->id());
      if (logical.empty() && agent->tcam().size() == 0) continue;
      CheckResult result = checker_.check(logical, agent->collect_tcam());
      report.extra_rule_count += result.extra_rules.size();
      if (!result.equivalent) bad.push_back(agent->id());
      report.missing_rules.insert(
          report.missing_rules.end(),
          std::make_move_iterator(result.missing.begin()),
          std::make_move_iterator(result.missing.end()));
    }
    report.switches_inconsistent = bad.size();
  }

  // Blast radius: distinct pairs and the endpoint pairs inside them.
  {
    const NetworkPolicy& policy = net.controller().policy();
    std::unordered_set<EpgPair> pairs;
    for (const LogicalRule& lr : report.missing_rules) {
      pairs.insert(lr.prov.pair);
    }
    report.distinct_pairs_affected = pairs.size();
    for (const EpgPair& pair : pairs) {
      report.endpoint_pairs_affected +=
          policy.epg(pair.a).endpoints.size() *
          policy.epg(pair.b).endpoints.size();
    }
  }

  // Stage 3: augment the risk model.
  model.augment(report.missing_rules);
  report.observations = model.failure_signature().size();
  report.suspect_set_size = model.suspect_set().size();

  // Stage 4: localize.
  const ScoutLocalizer localizer{options_.localizer};
  report.localization = localizer.localize(
      model, net.controller().change_log(), net.clock().now());
  report.gamma = suspect_reduction(report.localization.hypothesis.size(),
                                   report.suspect_set_size);

  // Stage 5: correlate with fault logs.
  const FaultLog faults = net.collect_fault_logs();
  const ObjectScope scope = build_object_scope(net);
  report.root_causes =
      correlation_.correlate(report.localization.hypothesis,
                             net.controller().change_log(), faults, scope);
  return report;
}

std::size_t ScoutSystem::remediate(SimNetwork& net,
                                   const ScoutReport& report) const {
  (void)net.controller().reinstall_rules(report.missing_rules);
  return find_missing_rules(net).size();
}

ScoutReport ScoutSystem::analyze_controller(SimNetwork& net) const {
  const PolicyIndex index{net.controller().policy()};
  return analyze(net, RiskModel::build_controller_model(index));
}

ScoutReport ScoutSystem::analyze_switch(SimNetwork& net, SwitchId sw) const {
  const PolicyIndex index{net.controller().policy()};
  return analyze(net, RiskModel::build_switch_model(index, sw));
}

std::vector<std::pair<SwitchId, ScoutReport>>
ScoutSystem::analyze_inconsistent_switches(SimNetwork& net) const {
  // One global collection pass decides which switches need a local model.
  std::vector<SwitchId> bad;
  for (const LogicalRule& lr : find_missing_rules(net)) {
    if (std::find(bad.begin(), bad.end(), lr.prov.sw) == bad.end()) {
      bad.push_back(lr.prov.sw);
    }
  }
  std::sort(bad.begin(), bad.end());
  std::vector<std::pair<SwitchId, ScoutReport>> out;
  out.reserve(bad.size());
  for (const SwitchId sw : bad) {
    out.emplace_back(sw, analyze_switch(net, sw));
  }
  return out;
}

}  // namespace scout
