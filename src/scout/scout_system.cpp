#include "src/scout/scout_system.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "src/common/hash.h"
#include "src/runtime/result_sink.h"
#include "src/scout/metrics.h"

namespace scout {

bool fabric_check_identical(const FabricCheck& a, const FabricCheck& b) {
  return a.switches_checked == b.switches_checked &&
         a.extra_rule_count == b.extra_rule_count &&
         a.inconsistent == b.inconsistent &&
         a.missing_rules == b.missing_rules;
}

std::uint64_t fabric_check_digest(std::uint64_t seed,
                                  const FabricCheck& check) {
  std::uint64_t h =
      hash_all(seed, check.switches_checked, check.inconsistent.size(),
               check.missing_rules.size(), check.extra_rule_count);
  for (const SwitchId sw : check.inconsistent) h = hash_all(h, sw);
  for (const LogicalRule& lr : check.missing_rules) {
    h = lr.rule.fold_hash(h);
    h = hash_all(h, lr.prov.sw, lr.prov.pair, lr.prov.vrf, lr.prov.contract,
                 lr.prov.filter, lr.prov.entry_index, lr.prov.reversed);
  }
  return h;
}

FabricCheck ScoutSystem::check_all(SimNetwork& net,
                                   runtime::Executor& executor,
                                   LogicalBddCache* bdd_cache) const {
  const auto agents = net.agents();
  const CompiledPolicy& compiled = net.controller().compiled();
  const std::uint64_t epoch = net.controller().compiled_epoch();
  if (bdd_cache != nullptr && bdd_cache->workers() < executor.workers()) {
    // The per-worker slot discipline is what makes arenas single-threaded;
    // an undersized cache would hand two workers the same slot (or worse).
    throw std::invalid_argument{
        "check_all: LogicalBddCache has fewer worker slots than the "
        "executor has workers"};
  }

  // One task per switch, indexed in agent order (ascending switch id). A
  // skipped switch (nothing compiled, nothing deployed) leaves its slot at
  // the default CheckResult, which merges exactly like an equivalent one.
  // The checker reads the TCAM view in place (a span): nothing mutates the
  // network during the fan-out, and the collection copy the agents offer
  // bought nothing but allocation traffic on this hot path.
  runtime::ResultSlots<runtime::Keyed<SwitchId, CheckResult>> slots{
      agents.size()};
  executor.run(agents.size(), [&](std::size_t index, std::size_t worker) {
    const SwitchAgent& agent = *agents[index];
    slots[index].key = agent.id();
    const auto& logical = compiled.rules_for(agent.id());
    if (logical.empty() && agent.tcam().size() == 0) return;
    const EquivalenceChecker::BddCheckContext ctx{bdd_cache, worker,
                                                  agent.id(), epoch};
    slots[index].value = checker_.check(logical, agent.tcam().rules(), &ctx);
  });

  FabricCheck check;
  check.switches_checked = agents.size();
  CheckResult merged = runtime::merge_keyed(
      slots, CheckResult{},
      [&check](CheckResult& acc, SwitchId sw, CheckResult&& result) {
        if (!result.equivalent) check.inconsistent.push_back(sw);
        acc.absorb(std::move(result));
      });
  check.missing_rules = std::move(merged.missing);
  check.extra_rule_count = merged.extra_rules.size();
  return check;
}

FabricCheck ScoutSystem::check_all(SimNetwork& net) const {
  runtime::SerialExecutor executor;
  return check_all(net, executor);
}

std::vector<LogicalRule> ScoutSystem::find_missing_rules(
    SimNetwork& net, runtime::Executor& executor,
    LogicalBddCache* bdd_cache) const {
  return check_all(net, executor, bdd_cache).missing_rules;
}

std::vector<LogicalRule> ScoutSystem::find_missing_rules(
    SimNetwork& net) const {
  return check_all(net).missing_rules;
}

ObjectScope ScoutSystem::build_object_scope(const SimNetwork& net) {
  ObjectScope scope;
  auto note = [&scope](ObjectRef obj, SwitchId sw) {
    auto& v = scope[obj];
    if (std::find(v.begin(), v.end(), sw) == v.end()) v.push_back(sw);
  };
  for (const auto& [sw, rules] :
       net.controller().compiled().per_switch) {
    for (const LogicalRule& lr : rules) {
      if (!lr.prov.contract.valid()) continue;
      for (const ObjectRef obj : lr.prov.policy_objects()) note(obj, sw);
    }
  }
  return scope;
}

ScoutReport ScoutSystem::analyze(SimNetwork& net, RiskModel model,
                                 FabricCheck check) const {
  ScoutReport report;

  // Stage 1-2 came in as the (possibly sharded) fabric check.
  report.switches_checked = check.switches_checked;
  report.switches_inconsistent = check.inconsistent.size();
  report.extra_rule_count = check.extra_rule_count;
  report.missing_rules = std::move(check.missing_rules);

  // Blast radius: distinct pairs and the endpoint pairs inside them.
  {
    const NetworkPolicy& policy = net.controller().policy();
    std::unordered_set<EpgPair> pairs;
    for (const LogicalRule& lr : report.missing_rules) {
      pairs.insert(lr.prov.pair);
    }
    report.distinct_pairs_affected = pairs.size();
    for (const EpgPair& pair : pairs) {
      report.endpoint_pairs_affected +=
          policy.epg(pair.a).endpoints.size() *
          policy.epg(pair.b).endpoints.size();
    }
  }

  // Stage 3: augment the risk model.
  model.augment(report.missing_rules);
  report.observations = model.failure_signature().size();
  report.suspect_set_size = model.suspect_set().size();

  // Stage 4: localize.
  const ScoutLocalizer localizer{options_.localizer};
  report.localization = localizer.localize(
      model, net.controller().change_log(), net.clock().now());
  report.gamma = suspect_reduction(report.localization.hypothesis.size(),
                                   report.suspect_set_size);

  // Stage 5: correlate with fault logs.
  const FaultLog faults = net.collect_fault_logs();
  const ObjectScope scope = build_object_scope(net);
  report.root_causes =
      correlation_.correlate(report.localization.hypothesis,
                             net.controller().change_log(), faults, scope);
  return report;
}

std::size_t ScoutSystem::remediate(SimNetwork& net, const ScoutReport& report,
                                   runtime::Executor& executor) const {
  (void)net.controller().reinstall_rules(report.missing_rules);
  return find_missing_rules(net, executor).size();
}

std::size_t ScoutSystem::remediate(SimNetwork& net,
                                   const ScoutReport& report) const {
  runtime::SerialExecutor executor;
  return remediate(net, report, executor);
}

ScoutReport ScoutSystem::analyze_controller(SimNetwork& net,
                                            runtime::Executor& executor) const {
  const PolicyIndex index{net.controller().policy()};
  return analyze(net, RiskModel::build_controller_model(index),
                 check_all(net, executor));
}

ScoutReport ScoutSystem::analyze_controller(SimNetwork& net) const {
  runtime::SerialExecutor executor;
  return analyze_controller(net, executor);
}

ScoutReport ScoutSystem::analyze_switch(SimNetwork& net, SwitchId sw,
                                        runtime::Executor& executor) const {
  const PolicyIndex index{net.controller().policy()};
  return analyze(net, RiskModel::build_switch_model(index, sw),
                 check_all(net, executor));
}

ScoutReport ScoutSystem::analyze_switch(SimNetwork& net, SwitchId sw) const {
  runtime::SerialExecutor executor;
  return analyze_switch(net, sw, executor);
}

std::vector<std::pair<SwitchId, ScoutReport>>
ScoutSystem::analyze_inconsistent_switches(SimNetwork& net,
                                           runtime::Executor& executor) const {
  // One sharded collection pass decides which switches need a local model
  // *and* feeds every per-switch report — the fleet is checked exactly once.
  FabricCheck check = check_all(net, executor);
  std::vector<SwitchId> bad;
  for (const LogicalRule& lr : check.missing_rules) {
    if (std::find(bad.begin(), bad.end(), lr.prov.sw) == bad.end()) {
      bad.push_back(lr.prov.sw);
    }
  }
  std::sort(bad.begin(), bad.end());

  const PolicyIndex index{net.controller().policy()};
  std::vector<std::pair<SwitchId, ScoutReport>> out;
  out.reserve(bad.size());
  for (const SwitchId sw : bad) {
    out.emplace_back(sw, analyze(net, RiskModel::build_switch_model(index, sw),
                                 check));
  }
  return out;
}

std::vector<std::pair<SwitchId, ScoutReport>>
ScoutSystem::analyze_inconsistent_switches(SimNetwork& net) const {
  runtime::SerialExecutor executor;
  return analyze_inconsistent_switches(net, executor);
}

}  // namespace scout
