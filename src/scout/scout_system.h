// ScoutSystem: the end-to-end pipeline of paper Figure 6.
//
//   collect TCAM (T) + compiled policy (L)
//     -> L-T equivalence checker -> missing rules
//     -> risk model (switch or controller) + augmentation
//     -> SCOUT fault localization -> hypothesis
//     -> event correlation (change log x fault logs) -> root causes
#pragma once

#include <vector>

#include "src/checker/equivalence_checker.h"
#include "src/correlation/event_correlation.h"
#include "src/localization/scout_localizer.h"
#include "src/riskmodel/risk_model.h"
#include "src/scout/sim_network.h"

namespace scout {

struct ScoutReport {
  // Checker stage.
  std::size_t switches_checked = 0;
  std::size_t switches_inconsistent = 0;
  std::vector<LogicalRule> missing_rules;
  // Device-only rules admitting packets the policy does not allow
  // (stale/corrupted state; these have no provenance).
  std::size_t extra_rule_count = 0;
  // Risk-model stage.
  std::size_t observations = 0;
  std::size_t suspect_set_size = 0;
  // Blast radius: distinct EPG pairs with at least one missing rule, and
  // the number of endpoint pairs inside them (the paper's motivation: one
  // faulty object can take out connectivity for thousands of endpoints).
  std::size_t distinct_pairs_affected = 0;
  std::size_t endpoint_pairs_affected = 0;
  // Localization stage.
  LocalizationResult localization;
  double gamma = 0.0;  // |H| / suspect set
  // Correlation stage.
  std::vector<RootCause> root_causes;
};

class ScoutSystem {
 public:
  struct Options {
    CheckMode check_mode = CheckMode::kExactBdd;
    ScoutLocalizer::Options localizer{};
  };

  ScoutSystem() = default;
  explicit ScoutSystem(Options options)
      : options_(options), checker_(options.check_mode) {}

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  // Collect TCAMs from every agent, check against compiled L-rules, and
  // return all missing rules (the failure signature source).
  [[nodiscard]] std::vector<LogicalRule> find_missing_rules(
      SimNetwork& net) const;

  // Full pipeline on the controller risk model (global analysis).
  [[nodiscard]] ScoutReport analyze_controller(SimNetwork& net) const;

  // Full pipeline on one switch's risk model (local analysis).
  [[nodiscard]] ScoutReport analyze_switch(SimNetwork& net, SwitchId sw) const;

  // Fleet sweep: one switch-risk-model analysis per *inconsistent* switch
  // (consistent switches are skipped — their models have empty failure
  // signatures). This is how an operator runs the paper's switch model in
  // practice: global check first, local localization where it hurts.
  [[nodiscard]] std::vector<std::pair<SwitchId, ScoutReport>>
  analyze_inconsistent_switches(SimNetwork& net) const;

  // Deployment scope of every policy object (object -> switches), from the
  // compiled policy; feeds the correlation engine.
  [[nodiscard]] static ObjectScope build_object_scope(const SimNetwork& net);

  // Stopgap remediation (paper §III-C): reinstall the report's missing
  // rules and re-check. Returns the number of rules still missing after
  // the pass — non-zero when the underlying physical fault persists (an
  // unresponsive switch keeps losing the pushes), which is exactly why the
  // paper calls this a stopgap rather than a fix.
  [[nodiscard]] std::size_t remediate(SimNetwork& net,
                                      const ScoutReport& report) const;

 private:
  [[nodiscard]] ScoutReport analyze(SimNetwork& net, RiskModel model) const;

  Options options_;
  EquivalenceChecker checker_;
  EventCorrelationEngine correlation_;
};

}  // namespace scout
