// ScoutSystem: the end-to-end pipeline of paper Figure 6.
//
//   collect TCAM (T) + compiled policy (L)
//     -> L-T equivalence checker -> missing rules
//     -> risk model (switch or controller) + augmentation
//     -> SCOUT fault localization -> hypothesis
//     -> event correlation (change log x fault logs) -> root causes
#pragma once

#include <vector>

#include "src/checker/equivalence_checker.h"
#include "src/correlation/event_correlation.h"
#include "src/localization/scout_localizer.h"
#include "src/riskmodel/risk_model.h"
#include "src/runtime/campaign.h"
#include "src/scout/sim_network.h"

namespace scout {

// Merged outcome of checking every switch's TCAM against its compiled
// rules — the shared substrate of find_missing_rules, analyze and
// remediate. Per-switch partials are merged in switch order, so the
// contents are bit-identical no matter which executor ran the checks.
struct FabricCheck {
  std::size_t switches_checked = 0;
  // Switches whose deployment diverged from L (missing or extra rules),
  // ascending by switch id.
  std::vector<SwitchId> inconsistent;
  // Concatenation of per-switch missing rules, in switch order.
  std::vector<LogicalRule> missing_rules;
  std::size_t extra_rule_count = 0;
};

// Structural equality of two fabric checks, every field compared —
// including each missing rule's match fields, priority and provenance.
// The single definition of "identical verdicts" the stream monitor's
// incremental-vs-full differential tests and benches apply.
[[nodiscard]] bool fabric_check_identical(const FabricCheck& a,
                                          const FabricCheck& b);

// Order-sensitive digest folding one verdict into a running hash; equal
// verdict streams fold to equal digests. Used to memcmp-compare verdict
// streams across monitoring modes/worker counts without retaining them.
[[nodiscard]] std::uint64_t fabric_check_digest(std::uint64_t seed,
                                                const FabricCheck& check);

struct ScoutReport {
  // Checker stage.
  std::size_t switches_checked = 0;
  std::size_t switches_inconsistent = 0;
  std::vector<LogicalRule> missing_rules;
  // Device-only rules admitting packets the policy does not allow
  // (stale/corrupted state; these have no provenance).
  std::size_t extra_rule_count = 0;
  // Risk-model stage.
  std::size_t observations = 0;
  std::size_t suspect_set_size = 0;
  // Blast radius: distinct EPG pairs with at least one missing rule, and
  // the number of endpoint pairs inside them (the paper's motivation: one
  // faulty object can take out connectivity for thousands of endpoints).
  std::size_t distinct_pairs_affected = 0;
  std::size_t endpoint_pairs_affected = 0;
  // Localization stage.
  LocalizationResult localization;
  double gamma = 0.0;  // |H| / suspect set
  // Correlation stage.
  std::vector<RootCause> root_causes;
};

class ScoutSystem {
 public:
  struct Options {
    CheckMode check_mode = CheckMode::kExactBdd;
    ScoutLocalizer::Options localizer{};
  };

  ScoutSystem() = default;
  explicit ScoutSystem(Options options)
      : options_(options), checker_(options.check_mode) {}

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  // The sharded fabric check: one L-T check task per switch fanned over
  // `executor`, merged in switch order. Every checker entry point below is
  // a view over this one implementation, so their accounting cannot drift.
  // Each task uses its worker's BDD state (a LogicalBddCache arena when
  // one is passed, a task-local manager otherwise — never shared across
  // threads) and only reads the network, so parallel output is
  // bit-identical to serial.
  //
  // `bdd_cache` (BDD mode only): per-worker arenas keyed by the
  // controller's compiled_epoch() keep the per-switch logical BDDs
  // resident across repeated fabric checks; a recompile invalidates them.
  // One cache must only ever see one controller (sweep drivers give each
  // cached network its own — see experiment.cpp). Results are
  // bit-identical with and without the cache.
  [[nodiscard]] FabricCheck check_all(SimNetwork& net,
                                      runtime::Executor& executor,
                                      LogicalBddCache* bdd_cache =
                                          nullptr) const;
  [[nodiscard]] FabricCheck check_all(SimNetwork& net) const;

  // Collect TCAMs from every agent, check against compiled L-rules, and
  // return all missing rules (the failure signature source).
  [[nodiscard]] std::vector<LogicalRule> find_missing_rules(
      SimNetwork& net) const;
  [[nodiscard]] std::vector<LogicalRule> find_missing_rules(
      SimNetwork& net, runtime::Executor& executor,
      LogicalBddCache* bdd_cache = nullptr) const;

  // Full pipeline on the controller risk model (global analysis).
  [[nodiscard]] ScoutReport analyze_controller(SimNetwork& net) const;
  [[nodiscard]] ScoutReport analyze_controller(
      SimNetwork& net, runtime::Executor& executor) const;

  // Full pipeline on one switch's risk model (local analysis).
  [[nodiscard]] ScoutReport analyze_switch(SimNetwork& net, SwitchId sw) const;
  [[nodiscard]] ScoutReport analyze_switch(SimNetwork& net, SwitchId sw,
                                           runtime::Executor& executor) const;

  // Fleet sweep: one switch-risk-model analysis per switch with at least
  // one missing rule (switches that are consistent, or diverge only by
  // extra rules, are skipped — their models have empty failure
  // signatures). One sharded fabric check feeds every per-switch report;
  // the fleet is never re-collected per switch.
  [[nodiscard]] std::vector<std::pair<SwitchId, ScoutReport>>
  analyze_inconsistent_switches(SimNetwork& net) const;
  [[nodiscard]] std::vector<std::pair<SwitchId, ScoutReport>>
  analyze_inconsistent_switches(SimNetwork& net,
                                runtime::Executor& executor) const;

  // Deployment scope of every policy object (object -> switches), from the
  // compiled policy; feeds the correlation engine.
  [[nodiscard]] static ObjectScope build_object_scope(const SimNetwork& net);

  // Stopgap remediation (paper §III-C): reinstall the report's missing
  // rules and re-check. Returns the number of rules still missing after
  // the pass — non-zero when the underlying physical fault persists (an
  // unresponsive switch keeps losing the pushes), which is exactly why the
  // paper calls this a stopgap rather than a fix. The post-reinstall
  // verification re-check goes through the same sharded path as analysis.
  [[nodiscard]] std::size_t remediate(SimNetwork& net,
                                      const ScoutReport& report) const;
  [[nodiscard]] std::size_t remediate(SimNetwork& net,
                                      const ScoutReport& report,
                                      runtime::Executor& executor) const;

 private:
  // Stages 3-5 over a finished fabric check (stage 1-2). Takes the check
  // by value: each report owns its missing-rule list.
  [[nodiscard]] ScoutReport analyze(SimNetwork& net, RiskModel model,
                                    FabricCheck check) const;

  Options options_;
  EquivalenceChecker checker_;
  EventCorrelationEngine correlation_;
};

}  // namespace scout
