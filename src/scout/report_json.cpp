#include "src/scout/report_json.h"

#include <sstream>

#include "src/common/json_writer.h"

namespace scout {
namespace {

std::string to_text(ObjectRef obj) {
  std::ostringstream os;
  os << obj;
  return os.str();
}

}  // namespace

std::string report_to_json(const ScoutReport& report,
                           std::size_t max_missing_rules) {
  JsonWriter w;
  w.begin_object();

  w.key("checker").begin_object();
  w.field("switches_checked", report.switches_checked);
  w.field("switches_inconsistent", report.switches_inconsistent);
  w.field("missing_rule_count", report.missing_rules.size());
  w.key("missing_rules_sample").begin_array();
  const std::size_t n =
      std::min(report.missing_rules.size(), max_missing_rules);
  for (std::size_t i = 0; i < n; ++i) {
    const LogicalRule& lr = report.missing_rules[i];
    std::ostringstream rule_text;
    rule_text << lr.rule;
    w.begin_object();
    w.field("switch", static_cast<std::uint64_t>(lr.prov.sw.value()));
    w.field("epg_a", static_cast<std::uint64_t>(lr.prov.pair.a.value()));
    w.field("epg_b", static_cast<std::uint64_t>(lr.prov.pair.b.value()));
    w.field("contract",
            static_cast<std::uint64_t>(lr.prov.contract.value()));
    w.field("filter", static_cast<std::uint64_t>(lr.prov.filter.value()));
    w.field("rule", rule_text.str());
    w.end_object();
  }
  w.end_array();
  w.end_object();  // checker

  w.key("impact").begin_object();
  w.field("extra_rule_count", report.extra_rule_count);
  w.field("distinct_pairs_affected", report.distinct_pairs_affected);
  w.field("endpoint_pairs_affected", report.endpoint_pairs_affected);
  w.end_object();

  w.key("risk_model").begin_object();
  w.field("observations", report.observations);
  w.field("suspect_set_size", report.suspect_set_size);
  w.end_object();

  w.key("localization").begin_object();
  w.field("gamma", report.gamma);
  w.field("observations_explained",
          report.localization.observations_explained);
  w.field("stage2_objects", report.localization.stage2_objects);
  w.field("iterations", report.localization.iterations);
  w.key("hypothesis").begin_array();
  for (const ObjectRef obj : report.localization.hypothesis) {
    w.value(to_text(obj));
  }
  w.end_array();
  w.end_object();

  w.key("root_causes").begin_array();
  for (const RootCause& rc : report.root_causes) {
    w.begin_object();
    w.field("object", to_text(rc.object));
    w.field("cause", std::string{to_string(rc.type)});
    if (rc.sw.has_value()) {
      w.field("switch", static_cast<std::uint64_t>(rc.sw->value()));
    } else {
      w.key("switch").null();
    }
    w.field("explanation", rc.explanation);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  return w.str();
}

}  // namespace scout
