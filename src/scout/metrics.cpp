#include "src/scout/metrics.h"

namespace scout {

PrecisionRecall evaluate_hypothesis(
    std::span<const ObjectRef> hypothesis,
    const std::unordered_set<ObjectRef>& ground_truth) {
  PrecisionRecall pr;
  std::unordered_set<ObjectRef> hit;
  for (const ObjectRef obj : hypothesis) {
    if (ground_truth.contains(obj)) {
      hit.insert(obj);
    } else {
      ++pr.false_positives;
    }
  }
  pr.true_positives = hit.size();
  pr.false_negatives = ground_truth.size() - hit.size();

  const std::size_t h = pr.true_positives + pr.false_positives;
  pr.precision =
      h == 0 ? 1.0 : static_cast<double>(pr.true_positives) /
                         static_cast<double>(h);
  pr.recall = ground_truth.empty()
                  ? 1.0
                  : static_cast<double>(pr.true_positives) /
                        static_cast<double>(ground_truth.size());
  return pr;
}

double suspect_reduction(std::size_t hypothesis_size,
                         std::size_t suspect_set_size) noexcept {
  if (suspect_set_size == 0) return 0.0;
  return static_cast<double>(hypothesis_size) /
         static_cast<double>(suspect_set_size);
}

}  // namespace scout
