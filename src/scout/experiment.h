// Experiment drivers for the paper's evaluation (§VI). Each bench binary is
// a thin printer over these functions, so tests can pin the experiment
// logic itself.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/checker/equivalence_checker.h"
#include "src/riskmodel/risk_model.h"
#include "src/workload/policy_generator.h"

namespace scout {

// ---------------------------------------------------------------------------
// Accuracy sweeps (Figures 8, 9, 10)
// ---------------------------------------------------------------------------

enum class AlgorithmKind : std::uint8_t { kScout, kScore };

struct AlgorithmSpec {
  std::string name;          // e.g. "SCOUT", "SCORE-0.6"
  AlgorithmKind kind = AlgorithmKind::kScout;
  double score_threshold = 1.0;  // SCORE hit-ratio threshold
  bool scout_stage2 = true;      // ablation knob (A1)
};

struct AccuracyOptions {
  GeneratorProfile profile;
  RiskModelKind model = RiskModelKind::kSwitch;
  std::size_t runs = 30;        // paper: 30 (simulation), 10 (testbed)
  std::size_t max_faults = 10;  // x-axis: 1..max_faults simultaneous faults
  // Change-log noise: benign modifications recorded before injection so
  // SCOUT's stage 2 cannot treat the change log as an oracle.
  std::size_t benign_changes = 20;
  std::int64_t change_window_ms = 60'000;
  // Checker mode. Accuracy sweeps default to the syntactic diff (exact for
  // the compiler's non-overlapping rulesets; hundreds of BDD builds would
  // dominate wall time); integration tests pin BDD/syntactic agreement.
  CheckMode check_mode = CheckMode::kSyntactic;
  std::uint64_t seed = 42;
};

struct AccuracyCell {
  double precision = 0.0;
  double recall = 0.0;
};

struct AccuracySeries {
  std::string name;
  std::vector<AccuracyCell> by_faults;  // index i = i+1 simultaneous faults
};

[[nodiscard]] std::vector<AccuracySeries> run_accuracy_sweep(
    const AccuracyOptions& options, std::span<const AlgorithmSpec> algorithms);

// ---------------------------------------------------------------------------
// Suspect-set reduction (Figure 7)
// ---------------------------------------------------------------------------

struct GammaOptions {
  GeneratorProfile profile;
  std::size_t faults = 1500;  // paper: 1500 simulated, 200 testbed
  std::uint64_t seed = 7;
  // Bucket upper bounds over the suspect-set size, e.g. {10, 50, 100, 500,
  // 1000} reproduces Figure 7(b)'s x-axis.
  std::vector<std::size_t> bucket_bounds{10, 50, 100, 500, 1000};
};

struct GammaBucket {
  std::size_t lo = 0;
  std::size_t hi = 0;
  double mean_gamma = 0.0;
  double max_hypothesis = 0.0;
  std::size_t samples = 0;
};

[[nodiscard]] std::vector<GammaBucket> run_gamma_experiment(
    const GammaOptions& options);

// ---------------------------------------------------------------------------
// Scalability (§VI "Scalability")
// ---------------------------------------------------------------------------

struct ScalePoint {
  std::size_t switches = 0;
  std::size_t epg_pairs = 0;
  std::size_t elements = 0;
  std::size_t risks = 0;
  std::size_t edges = 0;
  double model_build_seconds = 0.0;
  double check_seconds = 0.0;
  double localize_seconds = 0.0;
};

// Full pipeline timing at `switches` leaves (controller risk model):
// generate + deploy + inject `n_faults` + check + build + localize.
[[nodiscard]] ScalePoint run_scalability_point(std::size_t switches,
                                               std::uint64_t seed,
                                               std::size_t n_faults = 5,
                                               std::size_t pairs_per_switch =
                                                   200);

}  // namespace scout
