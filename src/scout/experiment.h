// Experiment drivers for the paper's evaluation (§VI). Each bench binary is
// a thin printer over these functions, so tests can pin the experiment
// logic itself.
//
// Every driver fans its grid out over a runtime::Executor. A grid cell is a
// pure function of (options, coordinates): it builds its own network, BDD
// manager and RNG (seeded via derive_seed over the coordinates), so serial
// and multi-threaded executions produce bit-identical results and the
// reduction happens in cell-index order after the join.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/checker/equivalence_checker.h"
#include "src/riskmodel/risk_model.h"
#include "src/runtime/campaign.h"
#include "src/runtime/result_sink.h"
#include "src/stream/churn_generator.h"
#include "src/stream/incremental_checker.h"
#include "src/telemetry/metrics.h"
#include "src/workload/policy_generator.h"

namespace scout {

// ---------------------------------------------------------------------------
// Per-worker cached sweep networks
// ---------------------------------------------------------------------------
//
// The accuracy/gamma/scalability grids sweep one fixed fabric under
// different fault injections: every cell of a (profile, seed) group used to
// rebuild a byte-identical network (~70 ms at fig8 scale, ~22 s over a
// 300-cell campaign) just to damage it differently. The cache gives each
// pool worker one deployed network per profile: cells arm a RepairJournal
// (faults/repair_journal.h) before injecting and exact-repair afterwards,
// so the next cell on that worker starts from state bit-identical
// (SimNetwork::state_fingerprint) to a fresh deployment. Results are
// therefore unchanged — cached, uncached, serial and multi-threaded sweeps
// all memcmp-equal, which tests/test_network_repair.cpp pins.
//
// A slot holds one entry, keyed by (profile, network seed): sweeping a
// different profile on the same cache rebuilds instead of repairing.

struct SweepDiagnostics {
  std::size_t network_builds = 0;   // full generate+deploy passes
  std::size_t network_repairs = 0;  // exact-repair passes between cells
  double setup_seconds = 0.0;       // time in builds + repairs, all workers
};

class SweepNetworkCache {
 public:
  explicit SweepNetworkCache(std::size_t workers);
  ~SweepNetworkCache();
  SweepNetworkCache(const SweepNetworkCache&) = delete;
  SweepNetworkCache& operator=(const SweepNetworkCache&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept;

  // Verify every repair against the baseline fingerprint, dropping the
  // entry (next cell rebuilds) on divergence. The digest deliberately
  // covers the *whole* observable state, immutable compiled/logical parts
  // included — that is what catches out-of-domain mutations (policy
  // edits, live pushes) that TCAM-only hashing could miss. One full hash
  // per cell (~3 ms at fig8 scale, vs the ~45 ms build it replaces; the
  // measured x13 setup saving includes it), so it defaults to on; perf
  // benches may switch it off once trust is established.
  void set_verify_repairs(bool verify) noexcept { verify_repairs_ = verify; }
  [[nodiscard]] bool verify_repairs() const noexcept {
    return verify_repairs_;
  }

  struct Stats {
    std::size_t builds = 0;   // cold slots + profile switches
    std::size_t repairs = 0;  // cells served from a repaired network
    std::size_t verify_failures = 0;  // diverged repairs (entry dropped)
  };
  [[nodiscard]] Stats stats() const;

  // Append one diagnostics row (cache_builds / cache_repairs /
  // cache_verify_failures) to a bench recorder's JSON output.
  void record_diagnostics(runtime::BenchRecorder& recorder) const;

  struct Entry;  // worker-owned deployed network + journal (experiment.cpp)

 private:
  friend struct SweepCacheAccess;
  runtime::WorkerCache<std::unique_ptr<Entry>> slots_;
  runtime::WorkerLocal<std::size_t> verify_failures_;
  bool verify_repairs_ = true;
};

// ---------------------------------------------------------------------------
// Accuracy sweeps (Figures 8, 9, 10)
// ---------------------------------------------------------------------------

enum class AlgorithmKind : std::uint8_t { kScout, kScore };

struct AlgorithmSpec {
  std::string name;          // e.g. "SCOUT", "SCORE-0.6"
  AlgorithmKind kind = AlgorithmKind::kScout;
  double score_threshold = 1.0;  // SCORE hit-ratio threshold
  bool scout_stage2 = true;      // ablation knob (A1)
};

struct AccuracyOptions {
  GeneratorProfile profile;
  RiskModelKind model = RiskModelKind::kSwitch;
  std::size_t runs = 30;        // paper: 30 (simulation), 10 (testbed)
  std::size_t max_faults = 10;  // x-axis: 1..max_faults simultaneous faults
  // Change-log noise: benign modifications recorded before injection so
  // SCOUT's stage 2 cannot treat the change log as an oracle.
  std::size_t benign_changes = 20;
  std::int64_t change_window_ms = 60'000;
  // Checker mode. Accuracy sweeps default to the syntactic diff (exact for
  // the compiler's non-overlapping rulesets); integration tests pin
  // BDD/syntactic agreement. In kExactBdd mode each cached network entry
  // keeps its per-switch logical BDDs resident (LogicalBddCache), so cells
  // re-encode only the collected T side.
  CheckMode check_mode = CheckMode::kSyntactic;
  std::uint64_t seed = 42;
  // Per-worker cached sweep network with exact repair between cells (see
  // SweepNetworkCache above). Off = rebuild every cell (the benches' --no-
  // cache); results are bit-identical either way.
  bool cache_networks = true;
};

struct AccuracyCell {
  double precision = 0.0;
  double recall = 0.0;
};

struct AccuracySeries {
  std::string name;
  std::vector<AccuracyCell> by_faults;  // index i = i+1 simultaneous faults
};

// Bitwise equality of two sweep outputs (shape + memcmp over every
// AccuracyCell). The single definition of "identical" that both the fig8
// cached-vs-uncached gate and the differential tests apply.
[[nodiscard]] bool accuracy_series_identical(
    std::span<const AccuracySeries> a, std::span<const AccuracySeries> b);

// Fan the (fault-count x run) grid out over `executor`. Results are
// bit-identical for any executor / thread count, cached or not.
//
// `cache`: reuse an external per-worker network cache across sweeps (its
// worker count must cover the executor's); nullptr builds a sweep-local
// cache when options.cache_networks is set. `diagnostics`, when non-null,
// receives the build/repair tallies and setup wall time of this sweep.
[[nodiscard]] std::vector<AccuracySeries> run_accuracy_sweep(
    const AccuracyOptions& options, std::span<const AlgorithmSpec> algorithms,
    runtime::Executor& executor, SweepNetworkCache* cache = nullptr,
    SweepDiagnostics* diagnostics = nullptr);

// Serial convenience overload (tests, existing callers).
[[nodiscard]] std::vector<AccuracySeries> run_accuracy_sweep(
    const AccuracyOptions& options, std::span<const AlgorithmSpec> algorithms);

// ---------------------------------------------------------------------------
// Suspect-set reduction (Figure 7)
// ---------------------------------------------------------------------------

struct GammaOptions {
  GeneratorProfile profile;
  std::size_t faults = 1500;  // paper: 1500 simulated, 200 testbed
  std::uint64_t seed = 7;
  // Bucket upper bounds over the suspect-set size, e.g. {10, 50, 100, 500,
  // 1000} reproduces Figure 7(b)'s x-axis.
  std::vector<std::size_t> bucket_bounds{10, 50, 100, 500, 1000};
  // Fault stream is split into this many independent shards (each with its
  // own network and derived seed). Fixed by options — not by thread count —
  // so results do not depend on the executor.
  std::size_t shards = 8;
  // Shards on one worker share a cached network restored by exact repair
  // (the per-iteration clean-slate the shards already used now goes
  // through the same journal). Results are bit-identical either way.
  bool cache_networks = true;
};

struct GammaBucket {
  std::size_t lo = 0;
  std::size_t hi = 0;
  double mean_gamma = 0.0;
  double max_hypothesis = 0.0;
  std::size_t samples = 0;
};

[[nodiscard]] std::vector<GammaBucket> run_gamma_experiment(
    const GammaOptions& options, runtime::Executor& executor,
    SweepDiagnostics* diagnostics = nullptr);

[[nodiscard]] std::vector<GammaBucket> run_gamma_experiment(
    const GammaOptions& options);

// ---------------------------------------------------------------------------
// Scalability (§VI "Scalability")
// ---------------------------------------------------------------------------

struct ScalePoint {
  std::size_t switches = 0;
  std::size_t epg_pairs = 0;
  std::size_t elements = 0;
  std::size_t risks = 0;
  std::size_t edges = 0;
  double model_build_seconds = 0.0;
  double check_seconds = 0.0;
  double localize_seconds = 0.0;
};

// Full pipeline timing at `switches` leaves (controller risk model):
// generate + deploy + inject `n_faults` + check + build + localize. The
// executor overload shards the L-T check stage per switch
// (ScoutSystem::check_all); the default runs it serially.
[[nodiscard]] ScalePoint run_scalability_point(std::size_t switches,
                                               std::uint64_t seed,
                                               std::size_t n_faults = 5,
                                               std::size_t pairs_per_switch =
                                                   200);
[[nodiscard]] ScalePoint run_scalability_point(std::size_t switches,
                                               std::uint64_t seed,
                                               std::size_t n_faults,
                                               std::size_t pairs_per_switch,
                                               runtime::Executor&
                                                   check_executor);

// Campaign form: (switch-count x rep) grid fanned over the executor, one
// independently seeded full pipeline per cell. Returned in grid index order
// (switch-count major, rep minor).
struct ScaleCampaignOptions {
  std::vector<std::size_t> switch_counts{10, 30, 50, 100};
  std::size_t reps = 1;  // independent seeded repetitions per count
  std::uint64_t seed = 5;
  std::size_t n_faults = 5;
  std::size_t pairs_per_switch = 200;
  // The campaign builds one fabric per switch count (network seed derived
  // from (seed, count index)); reps vary only the injected faults, exactly
  // like the accuracy sweeps vary only the damage. That makes the fabric
  // repeat across a count's reps, so workers can repair instead of
  // rebuild. Off = fresh build per cell; results bit-identical either way.
  bool cache_networks = true;
};

[[nodiscard]] std::vector<ScalePoint> run_scalability_campaign(
    const ScaleCampaignOptions& options, runtime::Executor& executor,
    SweepDiagnostics* diagnostics = nullptr);

// ---------------------------------------------------------------------------
// Continuous monitoring (src/stream): churn -> events -> verdict stream
// ---------------------------------------------------------------------------
//
// Builds one fabric, attaches an EventBus, primes a MonitorLoop and then
// alternates churn pumps with drains until `events` events have been
// verified. The monitor mode (incremental vs full recheck per batch) only
// changes how verdicts are computed, never what they are: the churn is a
// pure function of (profile, seed, mix), so two runs differing only in
// `incremental` (or in the executor's worker count) produce identical
// event streams and must produce identical verdict digests —
// bench/stream_latency.cpp and tests/test_stream_monitor.cpp enforce it.

struct MonitoringOptions {
  GeneratorProfile profile = GeneratorProfile::scaled(32);
  std::size_t events = 2000;   // stop after verifying this many events
  // Churn ops applied per drain — one monitoring interval's worth of
  // fabric activity. Event counts per batch vary: most ops publish 1-3
  // events, repair/resync ops burst a whole switch's reinstalls.
  std::size_t batch_ops = 24;
  stream::ChurnMix mix{};
  std::uint64_t seed = 21;
  bool incremental = true;         // false = full check_all per batch
  stream::IncrementalChecker::Options checker{};
  // Paced replay: sleep between batches toward this published-events/sec
  // target; 0 = unpaced (maximum sustained throughput measurement).
  double target_events_per_sec = 0.0;
  // Cross-check every batch verdict against a fresh serial
  // ScoutSystem::check_all on the same network (differential tests).
  bool verify_batches = false;
  // Run SCOUT localization over the final verdict's suspects.
  bool localize_final = true;
  // Telemetry. On, the run owns a MetricsRegistry wired through the
  // monitor and the report's latency percentiles come from its
  // histograms; off is the zero-instrumentation baseline the overhead
  // gate in bench/stream_latency.cpp compares against.
  bool collect_telemetry = true;
  // Also record pipeline trace spans (report.trace_json, Chrome format).
  bool collect_trace = false;
  // Periodic metrics snapshots every N batches (0 = never).
  std::size_t snapshot_every_batches = 0;
  // Remediate the final verdict (reinstall missing rules + re-check).
  bool remediate_final = false;
  // Concurrent publish. 0 = the legacy serial ChurnGenerator. > 0 drives
  // churn through ConcurrentChurnDriver: that many publisher threads run
  // the data-plane fault schedule while control-plane churn stays serial.
  std::size_t publishers = 0;
  // With publishers > 0: route the data phase through an MpscRing attached
  // to the bus (true), or execute the identical schedule serially through
  // the bus (false) — the differential baseline leg. The schedule is
  // publisher-count independent either way, so verdict digests must match
  // across {use_ring} x {publishers} x {workers}.
  bool use_ring = true;
  // Ring shard capacity (0 = the MpscRing default). Tests set tiny values
  // to force overflow evictions -> shadow resyncs.
  std::size_t ring_capacity = 0;
  // Free-run: publishers run the whole event budget while the monitor
  // drains concurrently (kBackpressure ring; evictions only possible at
  // stop()-time close). Batch digests are timing-dependent here, so the
  // correctness gate is final_verdict_matches_fresh instead; pacing and
  // verify_batches are ignored.
  bool pipelined = false;
  // -- fault classes beyond the churn mix (src/faults) ----------------------
  // Gray agents: every agent gets a misrender/drop profile scaled off this
  // rate (misrender_rate = gray_rate with burst 3, drop_rate = gray_rate/2
  // with burst 2) before monitoring starts. Partial collections stay off —
  // they fault the detection path and would break the digest gates by
  // construction. 0 = no gray behaviour.
  double gray_rate = 0.0;
  // Correlated storms: profile name resolved via storm_profile() ("rack-
  // power", "rolling-upgrade", "pod-brownout"); empty = no storms. An
  // episode fires every `storm_every_batches` drained batches (phased) or
  // at every segment boundary (pipelined) — serial-phase actions either
  // way, so batch counts and therefore episode schedules are identical
  // across {serial, ring} legs.
  // Batches are big (a resync op bursts a whole switch's reinstalls), so
  // the default cadence fires within a handful of drains.
  std::string storm;
  std::size_t storm_every_batches = 2;
  // TCAM eviction policy name for every agent, resolved via
  // make_eviction_policy() (per-agent seeds, so "random" agents evict
  // independently); empty = the built-in lowest-priority behaviour.
  std::string evict_policy;
  // Delayed/reordered control-channel delivery window (gray channel);
  // 0 = immediate delivery.
  std::size_t delivery_window = 0;
  // -- incident provenance / flight recorder / health -----------------------
  // Correlate failing verdicts with fault-engine cause stamps into
  // Incident records (stream/incident.h): the run owns a CauseLedger,
  // attaches it to every fault engine and feeds an IncidentBuilder from
  // the monitor. Observe-only — verdict digests are bit-identical with
  // this on or off (tests/test_incidents.cpp pins it).
  bool collect_incidents = false;
  // Write the incident log JSON here at end of run (empty = keep it only
  // in report.incident_json).
  std::string incident_log_path;
  // Attach a flight recorder (telemetry/flight_recorder.h) to the monitor
  // and dump it on every clean→failing verdict transition.
  bool collect_flight = false;
  std::string flight_dump_path;
  // Grade the monitor's cumulative counters against SLO thresholds
  // (telemetry/health.h) and export health.* gauges.
  bool collect_health = false;
  // Storm split mode: an episode's damage and heal split across two
  // consecutive cadence ticks instead of self-healing atomically, so
  // failing verdicts can observe storm damage (incident-provenance legs).
  bool storm_split = false;
  // Gray drop-rate override: negative = the default gray_rate * 0.5;
  // >= 0 replaces it. Incident-accuracy legs pin 0 — dropped updates
  // publish no event, so their damage is structurally unattributable.
  double gray_drop_rate = -1.0;
  // Per-switch churn gauge cardinality cap: only the K busiest switches
  // get a stream.churn.sw<N> gauge; the rest roll up into
  // stream.churn.other (tests/test_telemetry.cpp pins conservation).
  std::size_t churn_top_k = 32;
};

struct MonitoringReport {
  std::size_t events = 0;
  std::size_t batches = 0;
  std::size_t inconsistent_batches = 0;
  std::size_t churn_ops = 0;
  // Order-sensitive digest over the batch verdict stream (seeded from the
  // options seed, so runs with equal options-but-for-mode are comparable).
  std::uint64_t verdict_digest = 0;
  double wall_seconds = 0.0;    // whole run, churn included
  double drain_seconds = 0.0;   // verification cost only (mode-dependent)
  double events_per_sec = 0.0;  // events / drain_seconds
  // Event-to-detection latency, wall clock (publish steady_clock stamp ->
  // verdict instant), from the "stream.wall_latency_ms" histogram.
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  // Same detection latency in *sim* time (event SimTime -> network clock
  // at the verdict) — reported separately, never mixed with wall.
  double sim_p50_latency_ms = 0.0;
  double sim_p99_latency_ms = 0.0;
  double sim_max_latency_ms = 0.0;
  stream::IncrementalChecker::Stats checker;  // zeros in full-recheck mode
  std::size_t verify_mismatches = 0;          // verify_batches failures
  // Final fabric verdict summary + localization handoff.
  std::size_t final_inconsistent = 0;
  std::size_t final_missing = 0;
  std::size_t final_extra = 0;
  std::size_t hypothesis_size = 0;
  // Remediation (remediate_final): rules still missing after the pass.
  std::size_t final_still_missing = 0;
  // Telemetry artifacts (empty when collect_telemetry is off).
  telemetry::MetricsSnapshot telemetry;
  std::size_t periodic_snapshot_count = 0;
  std::string trace_json;  // Chrome trace (collect_trace only)
  // Concurrent-publish metrics (publishers > 0 runs). The wall-clock rate
  // is the end-to-end one (churn + verification overlapped in pipelined
  // mode) — the number the >=10x concurrent-vs-serial gate compares.
  double publish_wall_events_per_sec = 0.0;
  std::uint64_t ring_evictions = 0;
  std::uint64_t ring_full_stalls = 0;
  // Pipelined runs: does the final composed verdict equal a fresh
  // ScoutSystem::check_all after quiescence? (true for every other mode.)
  bool final_verdict_matches_fresh = true;
  // Fault-class tallies (gray/storm/eviction options above).
  std::size_t storm_episodes = 0;
  std::uint64_t gray_misrenders = 0;
  std::uint64_t gray_drops = 0;
  std::uint64_t tcam_evictions = 0;
  // Incident provenance (collect_incidents).
  std::size_t incidents = 0;
  std::size_t incidents_unattributed = 0;
  std::size_t incident_first_cause_correct = 0;
  double incident_precision = 1.0;
  double incident_recall = 1.0;
  std::string incident_json;  // full scout-incidents-v1 log
  // Health engine (collect_health): final overall grade, 0/1/2 =
  // ok/warn/critical, plus the engine's JSON summary.
  int health_status = 0;
  std::string health_json;
  // Flight recorder (collect_flight): lifetime entries recorded.
  std::uint64_t flight_entries = 0;
};

[[nodiscard]] MonitoringReport run_continuous_monitoring(
    const MonitoringOptions& options, runtime::Executor& executor);

// ---------------------------------------------------------------------------
// Single-fabric sharded analysis ("how fast is one large check?")
// ---------------------------------------------------------------------------
//
// The campaign above parallelizes *across* independent cells; this driver
// parallelizes *within* one analysis: build one fabric, inject faults once,
// then run the sharded L-T check (ScoutSystem::check_all) at each requested
// worker count over the same deployment. The structural outputs must be
// identical at every worker count — only check_seconds may vary.

struct AnalysisScalingOptions {
  std::size_t switches = 64;
  std::size_t pairs_per_switch = 200;
  std::size_t n_faults = 5;
  std::uint64_t seed = 11;
  CheckMode check_mode = CheckMode::kSyntactic;
  std::vector<std::size_t> thread_counts{1, 2, 4};
};

struct AnalysisScalingPoint {
  std::size_t threads = 0;
  double check_seconds = 0.0;
  // Structural outputs (identical across worker counts by construction).
  std::size_t missing_rules = 0;
  std::size_t switches_inconsistent = 0;
  std::size_t extra_rules = 0;
};

[[nodiscard]] std::vector<AnalysisScalingPoint> run_analysis_scaling(
    const AnalysisScalingOptions& options);

}  // namespace scout
