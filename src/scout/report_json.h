// JSON serialization of ScoutReport — machine-readable output for the
// scoutctl tool and for shipping reports into ticketing/alerting systems.
#pragma once

#include <string>

#include "src/scout/scout_system.h"

namespace scout {

// Serialize a full report. `max_missing_rules` caps the embedded missing
// rule list (use-case 3 produces hundreds of thousands); the total count
// is always present.
[[nodiscard]] std::string report_to_json(const ScoutReport& report,
                                         std::size_t max_missing_rules = 50);

}  // namespace scout
