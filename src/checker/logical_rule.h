// Logical (L-type) rules: the TCAM rules the network policy *should* render,
// each carrying full provenance back to the policy objects that produced it.
// Provenance is what lets the checker's missing-rule output annotate risk
// model edges (paper §III-C: "mark the edges between the malfunctioning EPG
// pair ... and its associated objects in the violation as fail").
#pragma once

#include <ostream>
#include <vector>

#include "src/common/ids.h"
#include "src/policy/object_ref.h"
#include "src/policy/objects.h"
#include "src/tcam/tcam_rule.h"

namespace scout {

struct RuleProvenance {
  SwitchId sw;
  EpgPair pair;
  VrfId vrf;
  ContractId contract;
  FilterId filter;
  std::uint32_t entry_index = 0;  // which FilterEntry of the filter
  bool reversed = false;          // provider->consumer direction

  // The shared-risk objects this rule depends on (paper §III). The switch
  // is included only by the controller risk model (it is a physical object
  // shared by everything on that switch).
  [[nodiscard]] std::vector<ObjectRef> policy_objects() const {
    std::vector<ObjectRef> out;
    out.reserve(5);
    out.push_back(ObjectRef::of(vrf));
    out.push_back(ObjectRef::of(pair.a));
    if (pair.b != pair.a) out.push_back(ObjectRef::of(pair.b));
    out.push_back(ObjectRef::of(contract));
    out.push_back(ObjectRef::of(filter));
    return out;
  }

  friend constexpr bool operator==(const RuleProvenance&,
                                   const RuleProvenance&) noexcept = default;
};

struct LogicalRule {
  TcamRule rule;
  RuleProvenance prov;

  friend constexpr bool operator==(const LogicalRule&,
                                   const LogicalRule&) noexcept = default;
};

inline std::ostream& operator<<(std::ostream& os, const LogicalRule& lr) {
  return os << lr.rule << " @" << lr.prov.sw << ' ' << lr.prov.pair
            << " contract=" << lr.prov.contract
            << " filter=" << lr.prov.filter << '/' << lr.prov.entry_index;
}

}  // namespace scout
