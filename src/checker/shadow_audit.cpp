#include "src/checker/shadow_audit.h"

#include <algorithm>
#include <numeric>

#include "src/checker/packet_encoding.h"

namespace scout {

ShadowAuditResult audit_shadowing(std::span<const TcamRule> rules) {
  ShadowAuditResult result;
  result.entries.resize(rules.size());

  std::vector<std::size_t> order(rules.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&rules](std::size_t a, std::size_t b) {
                     return rules[a].priority < rules[b].priority;
                   });

  BddManager mgr{PacketVars::kCount};
  BddRef taken = kBddFalse;  // space claimed by higher-priority rules
  for (const std::size_t idx : order) {
    const BddRef cube = mgr.cube(rule_to_cube(rules[idx]));
    const BddRef residual = mgr.apply_diff(cube, taken);

    ShadowEntry& entry = result.entries[idx];
    entry.rule_index = idx;
    if (mgr.is_false(residual)) {
      entry.state = ShadowState::kFullyShadowed;
      entry.covered_fraction = 1.0;
      ++result.fully_shadowed;
    } else if (residual == cube) {
      // Canonical equality is exact; sat-count ratios are not (a 1-packet
      // bite out of a 2^68-packet rule underflows a double).
      entry.state = ShadowState::kActive;
      entry.covered_fraction = 0.0;
    } else {
      entry.state = ShadowState::kPartiallyShadowed;
      ++result.partially_shadowed;
      const double total = mgr.sat_count(cube);
      const double live = mgr.sat_count(residual);
      entry.covered_fraction =
          total <= 0.0 ? 0.0 : std::max(0.0, 1.0 - live / total);
    }
    taken = mgr.apply_or(taken, cube);
  }
  return result;
}

}  // namespace scout
