// Cross-check reuse of logical-ruleset BDDs (paper §III-C, engine side).
//
// The logical rules L compiled for a switch are fixed until the controller
// recompiles, but the textbook checker re-encoded them into a fresh BDD
// manager for every check — hundreds of identical encodings over one sweep
// campaign. This cache gives each runtime worker one persistent BDD arena
// (a BddManager) in which the per-switch logical BDDs stay resident below a
// checkpoint watermark; each check builds only the T-BDD above the
// watermark and rolls the arena back afterwards (see bdd.h, the arena
// contract).
//
// Keying: a worker slot is keyed by the compiled-policy epoch
// (Controller::compiled_epoch(), bumped on every recompilation) — sweep
// drivers that cycle several networks through one worker fold a network
// identity into the key. A key change drops the worker's whole arena, so a
// recompile can never serve stale logical BDDs. Within an arena, logical
// BDDs are looked up by switch id.
//
// Results are unchanged by construction: BDDs are canonical, so the cached
// check computes the same diff the fresh-manager check would, and the
// per-worker slot discipline (runtime::WorkerCache) keeps arenas
// single-threaded. tests/test_equivalence_checker.cpp pins cached == fresh
// field-for-field across randomized rulesets.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "src/bdd/bdd.h"
#include "src/checker/packet_encoding.h"
#include "src/common/ids.h"
#include "src/runtime/result_sink.h"

namespace scout {

namespace telemetry {
class MetricsRegistry;
}  // namespace telemetry

class LogicalBddCache {
 public:
  explicit LogicalBddCache(std::size_t workers);
  ~LogicalBddCache();
  LogicalBddCache(const LogicalBddCache&) = delete;
  LogicalBddCache& operator=(const LogicalBddCache&) = delete;

  [[nodiscard]] std::size_t workers() const noexcept;

  // One worker's arena for one compiled policy.
  struct WorkerState {
    explicit WorkerState(std::uint64_t k)
        : key(k), mgr(PacketVars::kCount, /*node_hint=*/1 << 12) {
      watermark = mgr.checkpoint();
    }

    std::uint64_t key = 0;
    BddManager mgr;
    // Switch -> logical-ruleset BDD resident below the watermark.
    std::unordered_map<SwitchId, BddRef> logical;
    BddManager::Checkpoint watermark{};
    std::uint64_t logical_hits = 0;    // checks served a resident L-BDD
    std::uint64_t logical_builds = 0;  // L-BDDs encoded into the arena
  };

  // The worker's arena for `key`, creating or replacing the slot when the
  // key moved (the controller recompiled, or the sweep switched networks).
  [[nodiscard]] WorkerState& state(std::size_t worker, std::uint64_t key);

  struct Stats {
    std::size_t arena_hits = 0;        // state() calls served a live arena
    std::size_t arena_builds = 0;      // fresh or replaced arenas
    std::uint64_t logical_hits = 0;
    std::uint64_t logical_builds = 0;
    std::size_t resident_switches = 0;
    std::size_t nodes = 0;             // summed across worker arenas
    double unique_load = 0.0;          // summed nodes / summed table slots
    double cache_hit_rate = 0.0;       // summed op-cache hits / lookups
    std::uint64_t rollbacks = 0;
  };
  [[nodiscard]] Stats stats() const;

  // Append one diagnostics row (bdd_arena_builds / bdd_logical_hits /
  // bdd_unique_load / bdd_cache_hit_rate / ...) to a bench recorder.
  void record_diagnostics(runtime::BenchRecorder& recorder) const;

  // Publish the same counters as "bdd.*" gauges into a metrics registry —
  // the path the benches snapshot so BENCH_bdd.json keys come from the
  // telemetry subsystem rather than bench-private reads.
  void export_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  runtime::WorkerCache<std::unique_ptr<WorkerState>> slots_;
};

}  // namespace scout
