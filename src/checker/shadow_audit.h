// TCAM shadow audit: find rules that can never match because higher-
// priority rules cover their entire packet space.
//
// Shadowing is a deployment-quality problem adjacent to the paper's state
// inconsistency: a corrupted or duplicated entry can silently shadow a
// correct one (the L-T checker sees the *semantic* result; this audit
// explains it at rule granularity). Implemented with the same ROBDD
// engine: walk rules in priority order keeping the union of already-
// matchable space; a rule whose cube is contained in that union is
// shadowed (fully masked); a rule that overlaps it only partially is
// reported as partially shadowed.
#pragma once

#include <span>
#include <vector>

#include "src/bdd/bdd.h"
#include "src/tcam/tcam_rule.h"

namespace scout {

enum class ShadowState : std::uint8_t {
  kActive,             // some packets reach this rule first
  kPartiallyShadowed,  // matches, but part of its space is taken
  kFullyShadowed,      // dead rule: can never be the first match
};

struct ShadowEntry {
  std::size_t rule_index = 0;  // index into the audited span
  ShadowState state = ShadowState::kActive;
  // Fraction of the rule's packet space that higher-priority rules cover,
  // in [0, 1]; 1.0 for fully shadowed rules.
  double covered_fraction = 0.0;
};

struct ShadowAuditResult {
  std::vector<ShadowEntry> entries;  // one per input rule, input order
  std::size_t fully_shadowed = 0;
  std::size_t partially_shadowed = 0;
};

// Audit a ruleset (any order; priority field decides). The catch-all
// default deny is audited like any other rule — a default deny that is
// fully shadowed means every packet hits an explicit rule.
[[nodiscard]] ShadowAuditResult audit_shadowing(
    std::span<const TcamRule> rules);

}  // namespace scout
