// L-T equivalence checker (paper §III-C).
//
// Compares the logical rules compiled from the network policy (L) against
// the TCAM rules collected from a switch (T) and reports the missing rules:
// L-rules whose packets should be allowed but are not allowed by T. Each
// missing rule carries provenance, which downstream risk-model augmentation
// consumes.
//
// Two modes:
//  * kExactBdd   — the paper's method: build ROBDDs for L and T, test
//    equivalence, and intersect each L-rule cube with L∧¬T. Semantically
//    exact: an L-rule absent from the TCAM but shadowed by other present
//    rules is correctly not reported. With a BddCheckContext, the logical
//    BDD comes from a per-worker LogicalBddCache arena and only the T-BDD
//    is built (above a checkpoint watermark, rolled back after the check).
//  * kSyntactic  — multiset diff on match keys over a flat open-addressing
//    table with packed 128+-bit keys (no unordered_map, no per-call
//    allocation in steady state). Exact only when allow rules are pairwise
//    non-overlapping (which the policy compiler guarantees for distinct
//    EPG-pair keys); used by the large-scale benches where building
//    hundreds of BDDs dominates runtime. Tests pin the agreement of the
//    two modes on non-overlapping rulesets.
#pragma once

#include <span>
#include <vector>

#include "src/bdd/bdd.h"
#include "src/checker/logical_bdd_cache.h"
#include "src/checker/logical_rule.h"
#include "src/tcam/tcam_rule.h"

namespace scout {

enum class CheckMode : std::uint8_t { kExactBdd, kSyntactic };

struct CheckResult {
  bool equivalent = true;
  // L-rules not realized in the TCAM (their allowed packets are not all
  // allowed by T).
  std::vector<LogicalRule> missing;
  // Deployed rules that allow packets the policy does not — stale state,
  // corrupted entries, or leftovers from incomplete removals. These have
  // no provenance (they exist only on the device).
  std::vector<TcamRule> extra_rules;
  // Packets allowed by T but not by L / by L but not by T.
  double extra_packet_count = 0.0;
  double missing_packet_count = 0.0;
  // Introspection for the microbenches.
  std::size_t l_dag_size = 0;
  std::size_t t_dag_size = 0;

  // Fold one switch's outcome into this fabric-level accumulator:
  // concatenates missing/extra, sums the packet counts, and stays
  // equivalent only if every absorbed result was. DAG sizes are per-check
  // introspection and meaningless summed; absorb keeps the largest seen.
  void absorb(CheckResult&& other);
};

// Missing/extra-rule diff over *already built* L and T BDDs in `mgr`:
// equivalence is a reference comparison, the spaces L∧¬T / T∧¬L are one
// apply each, and each candidate rule is classified by cube intersection.
// Shared by the batch checker (which builds T per check) and the stream
// monitor's IncrementalChecker (which keeps both BDDs resident and updates
// T per event). Allocates diff nodes in `mgr` above the current top — the
// caller owns checkpoint/rollback around the call.
[[nodiscard]] CheckResult bdd_rule_diff(BddManager& mgr, BddRef l_bdd,
                                        BddRef t_bdd,
                                        std::span<const LogicalRule> logical,
                                        std::span<const TcamRule> deployed);

class EquivalenceChecker {
 public:
  explicit EquivalenceChecker(CheckMode mode = CheckMode::kExactBdd)
      : mode_(mode) {}

  [[nodiscard]] CheckMode mode() const noexcept { return mode_; }

  // Routing for the cached-BDD path: which worker's arena to use, the key
  // identifying the compiled policy (fold a network identity in when one
  // cache sees several controllers), and the switch whose logical BDD to
  // reuse. Ignored in syntactic mode or when `cache` is null; results are
  // bit-identical with and without a context.
  struct BddCheckContext {
    LogicalBddCache* cache = nullptr;
    std::size_t worker = 0;
    SwitchId sw{};
    std::uint64_t key = 0;
  };

  // Check one switch's deployment. `logical` are the L-rules compiled for
  // the switch; `deployed` the rules collected from its TCAM.
  [[nodiscard]] CheckResult check(std::span<const LogicalRule> logical,
                                  std::span<const TcamRule> deployed,
                                  const BddCheckContext* ctx = nullptr) const;

  // Fast pre-filter: true iff the two rulesets are identical as multisets
  // of match keys (sufficient for equivalence, not necessary).
  [[nodiscard]] static bool syntactically_identical(
      std::span<const LogicalRule> logical,
      std::span<const TcamRule> deployed);

 private:
  [[nodiscard]] CheckResult check_bdd(std::span<const LogicalRule> logical,
                                      std::span<const TcamRule> deployed,
                                      const BddCheckContext* ctx) const;
  [[nodiscard]] CheckResult check_syntactic(
      std::span<const LogicalRule> logical,
      std::span<const TcamRule> deployed) const;

  CheckMode mode_;
};

}  // namespace scout
