#include "src/checker/logical_bdd_cache.h"

#include "src/telemetry/metrics.h"

namespace scout {

LogicalBddCache::LogicalBddCache(std::size_t workers) : slots_(workers) {}

LogicalBddCache::~LogicalBddCache() = default;

std::size_t LogicalBddCache::workers() const noexcept {
  return slots_.workers();
}

LogicalBddCache::WorkerState& LogicalBddCache::state(std::size_t worker,
                                                     std::uint64_t key) {
  if (std::unique_ptr<WorkerState>* hit = slots_.lookup(worker, key);
      hit != nullptr && *hit != nullptr && (*hit)->key == key) {
    slots_.note_hit(worker);
    return **hit;
  }
  slots_.note_miss(worker);
  return *slots_.store(worker, key, std::make_unique<WorkerState>(key));
}

LogicalBddCache::Stats LogicalBddCache::stats() const {
  Stats s;
  s.arena_hits = slots_.hits();
  s.arena_builds = slots_.misses();
  std::size_t table_slots = 0;
  std::uint64_t cache_lookups = 0;
  std::uint64_t cache_hits = 0;
  for (std::size_t w = 0; w < slots_.workers(); ++w) {
    const std::unique_ptr<WorkerState>* entry = slots_.peek(w);
    if (entry == nullptr || *entry == nullptr) continue;
    const WorkerState& st = **entry;
    s.logical_hits += st.logical_hits;
    s.logical_builds += st.logical_builds;
    s.resident_switches += st.logical.size();
    const BddManager::Stats engine = st.mgr.stats();
    s.nodes += engine.nodes;
    table_slots += engine.unique_capacity;
    cache_lookups += engine.cache_lookups;
    cache_hits += engine.cache_hits;
    s.rollbacks += engine.rollbacks;
  }
  if (table_slots > 0) {
    s.unique_load =
        static_cast<double>(s.nodes) / static_cast<double>(table_slots);
  }
  if (cache_lookups > 0) {
    s.cache_hit_rate = static_cast<double>(cache_hits) /
                       static_cast<double>(cache_lookups);
  }
  return s;
}

void LogicalBddCache::record_diagnostics(
    runtime::BenchRecorder& recorder) const {
  const Stats s = stats();
  recorder.add_row(
      {{"bdd_arena_builds", static_cast<double>(s.arena_builds)},
       {"bdd_logical_builds", static_cast<double>(s.logical_builds)},
       {"bdd_logical_hits", static_cast<double>(s.logical_hits)},
       {"bdd_resident_switches", static_cast<double>(s.resident_switches)},
       {"bdd_nodes", static_cast<double>(s.nodes)},
       {"bdd_unique_load", s.unique_load},
       {"bdd_cache_hit_rate", s.cache_hit_rate},
       {"bdd_rollbacks", static_cast<double>(s.rollbacks)}});
}

void LogicalBddCache::export_metrics(
    telemetry::MetricsRegistry& registry) const {
  const Stats s = stats();
  registry.set_gauge("bdd.arena_builds", static_cast<double>(s.arena_builds));
  registry.set_gauge("bdd.arena_hits", static_cast<double>(s.arena_hits));
  registry.set_gauge("bdd.logical_builds",
                     static_cast<double>(s.logical_builds));
  registry.set_gauge("bdd.logical_hits", static_cast<double>(s.logical_hits));
  registry.set_gauge("bdd.resident_switches",
                     static_cast<double>(s.resident_switches));
  registry.set_gauge("bdd.nodes", static_cast<double>(s.nodes));
  registry.set_gauge("bdd.unique_load", s.unique_load);
  registry.set_gauge("bdd.cache_hit_rate", s.cache_hit_rate);
  registry.set_gauge("bdd.rollbacks", static_cast<double>(s.rollbacks));
}

}  // namespace scout
