#include "src/checker/equivalence_checker.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <vector>

#include "src/checker/packet_encoding.h"
#include "src/common/hash.h"

namespace scout {
namespace {

// ---------------------------------------------------------------------------
// Syntactic mode: packed match keys over a flat open-addressing multiset
// ---------------------------------------------------------------------------

// Match key (fields + action, priority excluded) packed into three words.
// Every field is at most 16 significant bits (vrf 12, EPG 16, proto 8,
// port 16 — FieldWidths), and every producer (exact(), wildcard(), range
// expansion, in-width bit corruption) keeps value/mask inside the width,
// so 16-bit lanes compare exactly like the field-wise key did.
struct PackedMatchKey {
  std::uint64_t w0 = 0, w1 = 0, w2 = 0;
  bool operator==(const PackedMatchKey&) const noexcept = default;
};

PackedMatchKey pack_key(const TcamRule& r) noexcept {
  const auto lane = [](std::uint32_t v, unsigned shift) {
    return static_cast<std::uint64_t>(v) << shift;
  };
  PackedMatchKey k;
  k.w0 = lane(r.vrf.value, 0) | lane(r.src_epg.value, 16) |
         lane(r.dst_epg.value, 32) | lane(r.proto.value, 48);
  k.w1 = lane(r.vrf.mask, 0) | lane(r.src_epg.mask, 16) |
         lane(r.dst_epg.mask, 32) | lane(r.proto.mask, 48);
  k.w2 = lane(r.dst_port.value, 0) | lane(r.dst_port.mask, 16) |
         lane(static_cast<std::uint32_t>(r.action), 32);
  return k;
}

[[nodiscard]] std::size_t hash_key(const PackedMatchKey& k) noexcept {
  return static_cast<std::size_t>(mix3_u64(k.w0, k.w1, k.w2));
}

// Reusable open-addressing multiset (linear probing, power-of-two
// capacity). Slots are validated by a generation stamp, so reset() between
// checks is O(1) instead of a clear — the fleet-sweep hot path builds one
// of these per switch per grid cell.
class MatchMultiset {
 public:
  void reset(std::size_t expected_keys) {
    const std::size_t want = next_pow2(std::max<std::size_t>(
        16, expected_keys * 2));
    if (slots_.size() < want) {
      slots_.assign(want, Slot{});
      mask_ = want - 1;
      stamp_ = 1;
      return;
    }
    if (++stamp_ == 0) {  // stamp wrapped: wipe once, restart
      std::fill(slots_.begin(), slots_.end(), Slot{});
      stamp_ = 1;
    }
  }

  // Insert-or-find; a fresh slot starts at count 0.
  std::uint32_t& acquire(const PackedMatchKey& key) {
    std::size_t i = hash_key(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.stamp != stamp_) {
        s = Slot{key, 0, stamp_};
        return s.count;
      }
      if (s.key == key) return s.count;
      i = (i + 1) & mask_;
    }
  }

  // nullptr when the key was never inserted this generation.
  [[nodiscard]] std::uint32_t* find(const PackedMatchKey& key) {
    std::size_t i = hash_key(key) & mask_;
    for (;;) {
      Slot& s = slots_[i];
      if (s.stamp != stamp_) return nullptr;
      if (s.key == key) return &s.count;
      i = (i + 1) & mask_;
    }
  }

 private:
  struct Slot {
    PackedMatchKey key;
    std::uint32_t count = 0;
    std::uint32_t stamp = 0;
  };

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::uint32_t stamp_ = 0;
};

// Per-thread scratch: checks are leaf calls (no reentrancy), and each pool
// worker owns its thread, so a thread_local table gives every worker a
// warm multiset without any sharing.
thread_local MatchMultiset t_match_scratch;

bool is_catch_all_deny(const TcamRule& r) noexcept {
  return r.action == RuleAction::kDeny && r.wildcard_all();
}

// ---------------------------------------------------------------------------
// BDD mode: shared diff computation over an arena
// ---------------------------------------------------------------------------

// Build T above the caller's checkpoint and compute the full diff. Only
// canonical structure feeds the result, so the outcome is bit-identical
// whether `mgr` is a fresh manager or a cached arena with L resident.
CheckResult bdd_diff(BddManager& mgr, BddRef l_bdd,
                     std::span<const LogicalRule> logical,
                     std::span<const TcamRule> deployed) {
  const BddRef t_bdd = ruleset_to_bdd(mgr, deployed);
  return bdd_rule_diff(mgr, l_bdd, t_bdd, logical, deployed);
}

// Roll the arena back to the checkpoint even if the diff throws.
class ScopedRollback {
 public:
  ScopedRollback(BddManager& mgr, BddManager::Checkpoint cp)
      : mgr_(mgr), cp_(cp) {}
  ScopedRollback(const ScopedRollback&) = delete;
  ScopedRollback& operator=(const ScopedRollback&) = delete;
  ~ScopedRollback() { mgr_.rollback(cp_); }

 private:
  BddManager& mgr_;
  BddManager::Checkpoint cp_;
};

}  // namespace

CheckResult bdd_rule_diff(BddManager& mgr, BddRef l_bdd, BddRef t_bdd,
                          std::span<const LogicalRule> logical,
                          std::span<const TcamRule> deployed) {
  CheckResult result;
  result.l_dag_size = mgr.dag_size(l_bdd);
  result.t_dag_size = mgr.dag_size(t_bdd);

  if (mgr.equivalent(l_bdd, t_bdd)) {
    result.equivalent = true;
    return result;
  }
  result.equivalent = false;

  const BddRef missing_space = mgr.apply_diff(l_bdd, t_bdd);  // L ∧ ¬T
  const BddRef extra_space = mgr.apply_diff(t_bdd, l_bdd);    // T ∧ ¬L
  result.missing_packet_count = mgr.sat_count(missing_space);
  result.extra_packet_count = mgr.sat_count(extra_space);

  // An L-rule is missing iff some packet it should allow is in L ∧ ¬T.
  // (Deny rules never generate "missing allowed packets".)
  BddCube cube;
  cube.reserve(FieldWidths::kTotal);
  for (const auto& lr : logical) {
    if (lr.rule.action != RuleAction::kAllow) continue;
    rule_to_cube_into(cube, lr.rule);
    if (mgr.intersects_cube(missing_space, cube)) {
      result.missing.push_back(lr);
    }
  }
  // A T-rule is extra iff it admits packets in T ∧ ¬L.
  for (const auto& tr : deployed) {
    if (tr.action != RuleAction::kAllow) continue;
    rule_to_cube_into(cube, tr);
    if (mgr.intersects_cube(extra_space, cube)) {
      result.extra_rules.push_back(tr);
    }
  }
  return result;
}

void CheckResult::absorb(CheckResult&& other) {
  equivalent = equivalent && other.equivalent;
  missing.insert(missing.end(),
                 std::make_move_iterator(other.missing.begin()),
                 std::make_move_iterator(other.missing.end()));
  extra_rules.insert(extra_rules.end(),
                     std::make_move_iterator(other.extra_rules.begin()),
                     std::make_move_iterator(other.extra_rules.end()));
  extra_packet_count += other.extra_packet_count;
  missing_packet_count += other.missing_packet_count;
  l_dag_size = std::max(l_dag_size, other.l_dag_size);
  t_dag_size = std::max(t_dag_size, other.t_dag_size);
}

bool EquivalenceChecker::syntactically_identical(
    std::span<const LogicalRule> logical, std::span<const TcamRule> deployed) {
  MatchMultiset& ms = t_match_scratch;
  ms.reset(deployed.size());
  for (const auto& r : deployed) ++ms.acquire(pack_key(r));
  for (const auto& lr : logical) {
    std::uint32_t* count = ms.find(pack_key(lr.rule));
    if (count == nullptr || *count == 0) return false;
    --*count;
  }
  // Any leftover deployed rule other than the implicit catch-all deny means
  // the device has extra state.
  for (const auto& r : deployed) {
    if (is_catch_all_deny(r)) continue;
    std::uint32_t* count = ms.find(pack_key(r));
    if (count != nullptr && *count > 0) return false;
  }
  return true;
}

CheckResult EquivalenceChecker::check(std::span<const LogicalRule> logical,
                                      std::span<const TcamRule> deployed,
                                      const BddCheckContext* ctx) const {
  if (mode_ == CheckMode::kSyntactic) {
    // The syntactic diff already subsumes the identical-multiset test; a
    // separate pre-pass would just build the multiset twice.
    return check_syntactic(logical, deployed);
  }
  // BDD mode fast path: identical rule multisets are equivalent by
  // construction, no BDD needed.
  if (syntactically_identical(logical, deployed)) {
    CheckResult r;
    r.equivalent = true;
    return r;
  }
  return check_bdd(logical, deployed, ctx);
}

CheckResult EquivalenceChecker::check_bdd(
    std::span<const LogicalRule> logical, std::span<const TcamRule> deployed,
    const BddCheckContext* ctx) const {
  // Strip provenance only when a logical BDD actually has to be encoded:
  // the steady-state cached path below serves a resident L-BDD and never
  // reads the rules.
  const auto strip = [&logical] {
    std::vector<TcamRule> l_rules;
    l_rules.reserve(logical.size());
    for (const auto& lr : logical) l_rules.push_back(lr.rule);
    return l_rules;
  };

  if (ctx != nullptr && ctx->cache != nullptr) {
    LogicalBddCache::WorkerState& st = ctx->cache->state(ctx->worker,
                                                         ctx->key);
    BddRef l_bdd;
    if (const auto it = st.logical.find(ctx->sw); it != st.logical.end()) {
      l_bdd = it->second;
      ++st.logical_hits;
    } else {
      // First check of this switch under this compiled policy: encode L
      // into the arena and advance the watermark so it stays resident.
      l_bdd = ruleset_to_bdd(st.mgr, strip());
      st.logical.emplace(ctx->sw, l_bdd);
      st.watermark = st.mgr.checkpoint();
      ++st.logical_builds;
    }
    // T lives above the watermark for exactly this check. Between checks
    // the pool top sits at the watermark (every check rolls back to it),
    // so the guard restores to st.watermark directly.
    const ScopedRollback guard{st.mgr, st.watermark};
    return bdd_diff(st.mgr, l_bdd, logical, deployed);
  }

  BddManager mgr{PacketVars::kCount, /*node_hint=*/1 << 12};
  const BddRef l_bdd = ruleset_to_bdd(mgr, strip());
  return bdd_diff(mgr, l_bdd, logical, deployed);
}

CheckResult EquivalenceChecker::check_syntactic(
    std::span<const LogicalRule> logical,
    std::span<const TcamRule> deployed) const {
  CheckResult result;
  MatchMultiset& ms = t_match_scratch;
  ms.reset(deployed.size());
  for (const auto& r : deployed) ++ms.acquire(pack_key(r));
  for (const auto& lr : logical) {
    std::uint32_t* count = ms.find(pack_key(lr.rule));
    if (count != nullptr && *count > 0) {
      --*count;
    } else if (lr.rule.action == RuleAction::kAllow) {
      result.missing.push_back(lr);
    }
  }
  // Leftovers are extra device state. Walking the deployed rules (instead
  // of the table) keeps the report in deployment order and preserves each
  // rule's real priority; each key emits exactly its leftover count.
  double extra = 0.0;
  for (const auto& r : deployed) {
    if (is_catch_all_deny(r)) continue;
    std::uint32_t* count = ms.find(pack_key(r));
    if (count != nullptr && *count > 0) {
      --*count;
      result.extra_rules.push_back(r);
      extra += 1.0;
    }
  }
  // Syntactic mode reports *rule* counts, not packet counts; the quantities
  // are comparable only as zero/non-zero indicators.
  result.extra_packet_count = extra;
  result.missing_packet_count = static_cast<double>(result.missing.size());
  result.equivalent = result.missing.empty() && extra == 0.0;
  return result;
}

}  // namespace scout
