#include "src/checker/equivalence_checker.h"

#include <algorithm>
#include <iterator>
#include <unordered_map>

#include "src/checker/packet_encoding.h"
#include "src/common/hash.h"

namespace scout {
namespace {

// Match-key (fields + action, priority excluded) for multiset comparison.
struct MatchKey {
  TernaryField vrf, src_epg, dst_epg, proto, dst_port;
  RuleAction action;

  bool operator==(const MatchKey&) const noexcept = default;

  static MatchKey of(const TcamRule& r) noexcept {
    return MatchKey{r.vrf, r.src_epg, r.dst_epg, r.proto, r.dst_port,
                    r.action};
  }
};

struct MatchKeyHash {
  std::size_t operator()(const MatchKey& k) const noexcept {
    return hash_all(k.vrf.value, k.vrf.mask, k.src_epg.value, k.src_epg.mask,
                    k.dst_epg.value, k.dst_epg.mask, k.proto.value,
                    k.proto.mask, k.dst_port.value, k.dst_port.mask,
                    static_cast<unsigned>(k.action));
  }
};

using MatchMultiset = std::unordered_map<MatchKey, std::size_t, MatchKeyHash>;

MatchMultiset to_multiset(std::span<const TcamRule> rules) {
  MatchMultiset ms;
  ms.reserve(rules.size());
  for (const auto& r : rules) ++ms[MatchKey::of(r)];
  return ms;
}

bool is_catch_all_deny(const MatchKey& k) noexcept {
  return k.action == RuleAction::kDeny && k.vrf.mask == 0 &&
         k.src_epg.mask == 0 && k.dst_epg.mask == 0 && k.proto.mask == 0 &&
         k.dst_port.mask == 0;
}

}  // namespace

void CheckResult::absorb(CheckResult&& other) {
  equivalent = equivalent && other.equivalent;
  missing.insert(missing.end(),
                 std::make_move_iterator(other.missing.begin()),
                 std::make_move_iterator(other.missing.end()));
  extra_rules.insert(extra_rules.end(),
                     std::make_move_iterator(other.extra_rules.begin()),
                     std::make_move_iterator(other.extra_rules.end()));
  extra_packet_count += other.extra_packet_count;
  missing_packet_count += other.missing_packet_count;
  l_dag_size = std::max(l_dag_size, other.l_dag_size);
  t_dag_size = std::max(t_dag_size, other.t_dag_size);
}

bool EquivalenceChecker::syntactically_identical(
    std::span<const LogicalRule> logical, std::span<const TcamRule> deployed) {
  MatchMultiset ms = to_multiset(deployed);
  for (const auto& lr : logical) {
    const auto it = ms.find(MatchKey::of(lr.rule));
    if (it == ms.end() || it->second == 0) return false;
    --it->second;
  }
  // Any leftover deployed rule other than the implicit catch-all deny means
  // the device has extra state.
  for (const auto& [key, count] : ms) {
    if (count > 0 && !is_catch_all_deny(key)) return false;
  }
  return true;
}

CheckResult EquivalenceChecker::check(std::span<const LogicalRule> logical,
                                      std::span<const TcamRule> deployed) const {
  if (mode_ == CheckMode::kSyntactic) {
    // The syntactic diff already subsumes the identical-multiset test; a
    // separate pre-pass would just build the multiset twice.
    return check_syntactic(logical, deployed);
  }
  // BDD mode fast path: identical rule multisets are equivalent by
  // construction, no BDD needed.
  if (syntactically_identical(logical, deployed)) {
    CheckResult r;
    r.equivalent = true;
    return r;
  }
  return check_bdd(logical, deployed);
}

CheckResult EquivalenceChecker::check_bdd(
    std::span<const LogicalRule> logical,
    std::span<const TcamRule> deployed) const {
  CheckResult result;
  BddManager mgr{PacketVars::kCount};

  std::vector<TcamRule> l_rules;
  l_rules.reserve(logical.size());
  for (const auto& lr : logical) l_rules.push_back(lr.rule);

  const BddRef l_bdd = ruleset_to_bdd(mgr, l_rules);
  const BddRef t_bdd = ruleset_to_bdd(mgr, deployed);
  result.l_dag_size = mgr.dag_size(l_bdd);
  result.t_dag_size = mgr.dag_size(t_bdd);

  if (mgr.equivalent(l_bdd, t_bdd)) {
    result.equivalent = true;
    return result;
  }
  result.equivalent = false;

  const BddRef missing_space = mgr.apply_diff(l_bdd, t_bdd);  // L ∧ ¬T
  const BddRef extra_space = mgr.apply_diff(t_bdd, l_bdd);    // T ∧ ¬L
  result.missing_packet_count = mgr.sat_count(missing_space);
  result.extra_packet_count = mgr.sat_count(extra_space);

  // An L-rule is missing iff some packet it should allow is in L ∧ ¬T.
  // (Deny rules never generate "missing allowed packets".)
  for (const auto& lr : logical) {
    if (lr.rule.action != RuleAction::kAllow) continue;
    if (mgr.intersects_cube(missing_space, rule_to_cube(lr.rule))) {
      result.missing.push_back(lr);
    }
  }
  // A T-rule is extra iff it admits packets in T ∧ ¬L.
  for (const auto& tr : deployed) {
    if (tr.action != RuleAction::kAllow) continue;
    if (mgr.intersects_cube(extra_space, rule_to_cube(tr))) {
      result.extra_rules.push_back(tr);
    }
  }
  return result;
}

CheckResult EquivalenceChecker::check_syntactic(
    std::span<const LogicalRule> logical,
    std::span<const TcamRule> deployed) const {
  CheckResult result;
  MatchMultiset ms = to_multiset(deployed);
  for (const auto& lr : logical) {
    const auto it = ms.find(MatchKey::of(lr.rule));
    if (it != ms.end() && it->second > 0) {
      --it->second;
    } else if (lr.rule.action == RuleAction::kAllow) {
      result.missing.push_back(lr);
    }
  }
  double extra = 0.0;
  for (const auto& [key, count] : ms) {
    if (count > 0 && !is_catch_all_deny(key)) {
      extra += static_cast<double>(count);
      TcamRule rule;
      rule.vrf = key.vrf;
      rule.src_epg = key.src_epg;
      rule.dst_epg = key.dst_epg;
      rule.proto = key.proto;
      rule.dst_port = key.dst_port;
      rule.action = key.action;
      for (std::size_t i = 0; i < count; ++i) {
        result.extra_rules.push_back(rule);
      }
    }
  }
  // Syntactic mode reports *rule* counts, not packet counts; the quantities
  // are comparable only as zero/non-zero indicators.
  result.extra_packet_count = extra;
  result.missing_packet_count = static_cast<double>(result.missing.size());
  result.equivalent = result.missing.empty() && extra == 0.0;
  return result;
}

}  // namespace scout
