// Packet-space encoding: maps TCAM rule fields onto BDD variables.
//
// Variable layout (total 68, most-significant bit of each field first so
// prefix masks translate to short cube prefixes):
//   [0,  12)  VRF
//   [12, 28)  source EPG class
//   [28, 44)  destination EPG class
//   [44, 52)  IP protocol
//   [52, 68)  destination port
#pragma once

#include <cstdint>

#include "src/bdd/bdd.h"
#include "src/tcam/tcam_rule.h"

namespace scout {

struct PacketVars {
  static constexpr std::uint32_t kVrfBase = 0;
  static constexpr std::uint32_t kSrcEpgBase = kVrfBase + FieldWidths::kVrf;
  static constexpr std::uint32_t kDstEpgBase = kSrcEpgBase + FieldWidths::kEpg;
  static constexpr std::uint32_t kProtoBase = kDstEpgBase + FieldWidths::kEpg;
  static constexpr std::uint32_t kPortBase = kProtoBase + FieldWidths::kProto;
  static constexpr std::uint32_t kCount = kPortBase + FieldWidths::kPort;
};

// Encode the match portion of a rule as a cube: one literal per care bit.
[[nodiscard]] BddCube rule_to_cube(const TcamRule& rule);

// Allocation-free variant for per-rule loops: clears and refills `cube`.
void rule_to_cube_into(BddCube& cube, const TcamRule& rule);

// Fold a priority-ordered ruleset into the BDD of its *allowed* packet set
// under first-match semantics with an implicit final deny. Rules need not
// be pre-sorted; they are processed by ascending `priority`.
[[nodiscard]] BddRef ruleset_to_bdd(BddManager& mgr,
                                    std::span<const TcamRule> rules);

// Decode a (possibly partial) satisfying assignment back into a concrete
// packet header; don't-care bits resolve to 0.
[[nodiscard]] PacketHeader assignment_to_packet(
    std::span<const std::int8_t> assignment);

}  // namespace scout
