#include "src/checker/packet_encoding.h"

#include <algorithm>
#include <vector>

namespace scout {
namespace {

// Append literals for one field: variable `base + 0` is the field's MSB.
void encode_field(BddCube& cube, TernaryField f, std::uint32_t base,
                  int width) {
  for (int bit = 0; bit < width; ++bit) {
    const std::uint32_t bit_mask = 1U << (width - 1 - bit);
    if ((f.mask & bit_mask) == 0) continue;  // don't-care bit
    cube.push_back(BddLiteral{base + static_cast<std::uint32_t>(bit),
                              (f.value & bit_mask) != 0});
  }
}

std::uint32_t decode_field(std::span<const std::int8_t> assignment,
                           std::uint32_t base, int width) {
  std::uint32_t v = 0;
  for (int bit = 0; bit < width; ++bit) {
    v <<= 1;
    if (assignment[base + static_cast<std::uint32_t>(bit)] == 1) v |= 1U;
  }
  return v;
}

}  // namespace

BddCube rule_to_cube(const TcamRule& rule) {
  BddCube cube;
  cube.reserve(FieldWidths::kTotal);
  rule_to_cube_into(cube, rule);
  return cube;
}

void rule_to_cube_into(BddCube& cube, const TcamRule& rule) {
  cube.clear();
  encode_field(cube, rule.vrf, PacketVars::kVrfBase, FieldWidths::kVrf);
  encode_field(cube, rule.src_epg, PacketVars::kSrcEpgBase, FieldWidths::kEpg);
  encode_field(cube, rule.dst_epg, PacketVars::kDstEpgBase, FieldWidths::kEpg);
  encode_field(cube, rule.proto, PacketVars::kProtoBase, FieldWidths::kProto);
  encode_field(cube, rule.dst_port, PacketVars::kPortBase, FieldWidths::kPort);
}

BddRef ruleset_to_bdd(BddManager& mgr, std::span<const TcamRule> rules) {
  // Sort indices by descending priority and fold from the bottom up:
  // acc starts at the implicit deny; each higher-priority rule overrides.
  std::vector<std::size_t> order(rules.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&rules](std::size_t a, std::size_t b) {
                     return rules[a].priority > rules[b].priority;
                   });
  BddRef acc = kBddFalse;  // nothing allowed by default (whitelist model)
  BddCube cube;
  cube.reserve(FieldWidths::kTotal);
  for (const std::size_t idx : order) {
    const TcamRule& r = rules[idx];
    rule_to_cube_into(cube, r);
    const BddRef match = mgr.cube(cube);
    const BddRef action =
        r.action == RuleAction::kAllow ? kBddTrue : kBddFalse;
    acc = mgr.ite(match, action, acc);
  }
  return acc;
}

PacketHeader assignment_to_packet(std::span<const std::int8_t> assignment) {
  PacketHeader p;
  p.vrf = static_cast<std::uint16_t>(
      decode_field(assignment, PacketVars::kVrfBase, FieldWidths::kVrf));
  p.src_epg = static_cast<std::uint16_t>(
      decode_field(assignment, PacketVars::kSrcEpgBase, FieldWidths::kEpg));
  p.dst_epg = static_cast<std::uint16_t>(
      decode_field(assignment, PacketVars::kDstEpgBase, FieldWidths::kEpg));
  p.proto = static_cast<std::uint8_t>(
      decode_field(assignment, PacketVars::kProtoBase, FieldWidths::kProto));
  p.dst_port = static_cast<std::uint16_t>(
      decode_field(assignment, PacketVars::kPortBase, FieldWidths::kPort));
  return p;
}

}  // namespace scout
