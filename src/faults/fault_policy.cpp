#include "src/faults/fault_policy.h"

#include <array>
#include <stdexcept>
#include <string>

namespace scout {
namespace {

// Shared eligibility rule: never evict the catch-all default deny. Every
// policy filters with this so "random" cannot blow away the whitelist
// floor and turn the experiment into "everything broke".
[[nodiscard]] bool eligible(const TcamRule& r) noexcept {
  return !r.wildcard_all();
}

// The historical TcamTable::evict_one behaviour: the last (= lowest
// priority) non-default rule spills first.
class LowestPriorityPolicy final : public EvictionPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lowest-priority";
  }
  [[nodiscard]] std::size_t pick_victim(
      std::span<const TcamRule> rules,
      std::span<const RuleMeta> /*meta*/) override {
    for (std::size_t i = rules.size(); i > 0; --i) {
      if (eligible(rules[i - 1])) return i - 1;
    }
    return kNone;
  }
};

// Oldest install stamp spills first (aging silicon that recycles the
// entry written longest ago, regardless of priority).
class FifoPolicy final : public EvictionPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "fifo";
  }
  [[nodiscard]] std::size_t pick_victim(
      std::span<const TcamRule> rules,
      std::span<const RuleMeta> meta) override {
    std::size_t victim = kNone;
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (!eligible(rules[i])) continue;
      if (victim == kNone || meta[i].installed < meta[victim].installed) {
        victim = i;
      }
    }
    return victim;
  }
};

// Uniform choice over eligible entries from a private seeded stream, so
// two agents with the same policy name but different seeds evict
// different victims while each run stays reproducible.
class RandomPolicy final : public EvictionPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "random";
  }
  [[nodiscard]] std::size_t pick_victim(
      std::span<const TcamRule> rules,
      std::span<const RuleMeta> /*meta*/) override {
    candidates_.clear();
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (eligible(rules[i])) candidates_.push_back(i);
    }
    if (candidates_.empty()) return kNone;
    return candidates_[rng_.below(candidates_.size())];
  }

 private:
  Rng rng_;
  std::vector<std::size_t> candidates_;
};

// Least-recently-touched spills first; replace_one refreshes the touch
// stamp, modelling match/update counters feeding the eviction heuristic.
class LruTouchPolicy final : public EvictionPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "lru-touch";
  }
  [[nodiscard]] std::size_t pick_victim(
      std::span<const TcamRule> rules,
      std::span<const RuleMeta> meta) override {
    std::size_t victim = kNone;
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (!eligible(rules[i])) continue;
      if (victim == kNone || meta[i].touched < meta[victim].touched) {
        victim = i;
      }
    }
    return victim;
  }
};

constexpr std::array<std::string_view, 4> kPolicyNames = {
    "lowest-priority", "fifo", "random", "lru-touch"};

}  // namespace

std::span<const std::string_view> eviction_policy_names() {
  return kPolicyNames;
}

std::unique_ptr<EvictionPolicy> make_eviction_policy(std::string_view name,
                                                     std::uint64_t seed) {
  if (name == "lowest-priority") {
    return std::make_unique<LowestPriorityPolicy>();
  }
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "random") return std::make_unique<RandomPolicy>(seed);
  if (name == "lru-touch") return std::make_unique<LruTouchPolicy>();
  throw std::invalid_argument{"make_eviction_policy: unknown policy '" +
                              std::string(name) + "'"};
}

}  // namespace scout
