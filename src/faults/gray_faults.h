// Gray failures: agents and channels that *lie* instead of dying. The
// clean faults (crash, disconnect, bit flip) all leave a crisp signal —
// a fault-log record, an outage interval, a parity error. The hard cases
// the paper motivates are gray: an agent that ACKs every instruction yet
// intermittently renders a wrong rule into TCAM, a periodic collection
// that returns a stale prefix of the table, a control channel that
// delivers instructions late and out of order. Nothing raises a fault
// record; only L-T divergence betrays the device.
//
// GrayFaultProfile is part of SwitchAgent::FaultState, so the repair
// journal restores gray knobs exactly like the crash/VRF-bug flags, and
// the per-agent gray RNG travels with it (Rng is a copyable value), so a
// repaired agent replays identically.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/common/rng.h"
#include "src/tcam/tcam_rule.h"

namespace scout {

class SimNetwork;
class RepairJournal;

// Per-agent gray misbehaviour knobs. All-defaults = a faithful agent.
struct GrayFaultProfile {
  // Probability a rendered add is perturbed before it hits the TCAM, and
  // how many consecutive installs stay wrong once the fault fires (gray
  // failures cluster: a wedged rendering thread garbles a run of rules,
  // not an independent coin flip per rule).
  double misrender_rate = 0.0;
  std::size_t misrender_burst = 1;
  // Probability an instruction is ACKed but silently not rendered at all
  // (applies to adds and removes), with the same burst clustering.
  double drop_rate = 0.0;
  std::size_t drop_burst = 1;
  // Fraction of the TCAM a collect_tcam() returns — a partial resync
  // reads a stale prefix of the table. 1.0 = faithful collection. This
  // knob faults the *detection* path, not device state: it mutates
  // nothing and never needs journaling, but a monitor relying on
  // collections (shadow resyncs, verify_batches) will see a truncated
  // image, so digest-gated runs must keep it at 1.0.
  double collect_keep_fraction = 1.0;

  [[nodiscard]] bool active() const noexcept {
    return misrender_rate > 0.0 || drop_rate > 0.0 ||
           collect_keep_fraction < 1.0;
  }
};

// One-bit perturbation of a rendered rule (same fault shape as
// TcamTable::corrupt_random_bit, but applied between rendering and
// install): flip one random bit in the value or mask of one random
// field, keeping the value-outside-mask invariant. The flip can land on
// a don't-care bit and leave the rule unchanged — a misrender that
// happens to be benign, just like a real masked-out bit error.
[[nodiscard]] TcamRule perturb_rendered_rule(TcamRule rule, Rng& rng);

struct GrayScenarioOutcome {
  std::size_t agents_grayed = 0;
  std::size_t resyncs = 0;
  std::size_t misrenders = 0;  // perturbed installs across grayed agents
  std::size_t drops = 0;       // swallowed instructions across grayed agents
};

// Turn `n_gray` seed-chosen agents gray and resync each so the profile
// bites immediately (a resync on a healthy fresh-deployed switch is
// fingerprint-neutral, so everything the fingerprint sees change is the
// gray damage itself). With a journal (armed by the caller), each agent
// is image-snapshotted first and repair() restores the exact baseline;
// the gray knobs themselves roll back via the journal's arm-time
// FaultState marks.
GrayScenarioOutcome run_gray_agent_scenario(SimNetwork& net,
                                            const GrayFaultProfile& profile,
                                            std::size_t n_gray,
                                            std::uint64_t seed,
                                            RepairJournal* journal = nullptr);

// Put the control channel into delayed/permuted delivery (windows of
// `window` instructions, always shuffled) and resync `n_resyncs`
// seed-chosen switches through it. Reordering a resync's removes against
// its adds strands or strips rules with zero fault-log evidence. The
// channel is flushed and restored to immediate delivery before
// returning; with a journal the touched agents round-trip exactly.
GrayScenarioOutcome run_reordered_delivery_scenario(
    SimNetwork& net, std::size_t window, std::size_t n_resyncs,
    std::uint64_t seed, RepairJournal* journal = nullptr);

}  // namespace scout
