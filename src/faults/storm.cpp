#include "src/faults/storm.h"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "src/common/rng.h"
#include "src/controller/controller.h"
#include "src/faults/repair_journal.h"
#include "src/scout/sim_network.h"

namespace scout {
namespace {

constexpr std::array<std::string_view, 3> kStormNames = {
    "rack-power", "rolling-upgrade", "pod-brownout"};

}  // namespace

std::span<const std::string_view> storm_profile_names() { return kStormNames; }

StormProfile storm_profile(std::string_view name) {
  StormProfile p;
  p.name = std::string(name);
  if (name == "rack-power") {
    p.kind = StormProfile::Kind::kRackPower;
  } else if (name == "rolling-upgrade") {
    p.kind = StormProfile::Kind::kRollingUpgrade;
  } else if (name == "pod-brownout") {
    p.kind = StormProfile::Kind::kPodBrownout;
  } else {
    throw std::invalid_argument{"storm_profile: unknown profile '" +
                                std::string(name) + "'"};
  }
  return p;
}

StormSchedule::StormSchedule(SimNetwork& net, StormProfile profile,
                             std::uint64_t seed)
    : net_(&net), profile_(std::move(profile)), seed_(seed) {}

void StormSchedule::run_episode(RepairJournal* journal) {
  if (!pending_heal_.empty()) {
    // Split mode left the fabric damaged; this cadence tick heals it
    // (under the damaging episode's cause) instead of firing new damage.
    stream::CauseScope scope{episode_cause_};
    heal(journal);
    return;
  }
  const std::uint64_t episode_seed = derive_seed(seed_, episode_++);
  // Episode ordinal doubles as the cause ordinal: one CauseId covers the
  // whole blast (damage and heal), which is exactly the "one root cause,
  // many symptoms" shape incident attribution has to collapse.
  episode_cause_ =
      stream::CauseId::make(stream::CauseEngine::kStorm, episode_);
  stream::CauseScope scope{episode_cause_};
  switch (profile_.kind) {
    case StormProfile::Kind::kRackPower:
      rack_power(episode_seed, journal);
      break;
    case StormProfile::Kind::kRollingUpgrade:
      rolling_upgrade(episode_seed, journal);
      break;
    case StormProfile::Kind::kPodBrownout:
      pod_brownout(episode_seed, journal);
      break;
  }
  ++stats_.episodes;
}

void StormSchedule::record_truth(SwitchId sw) {
  if (ledger_ != nullptr) {
    ledger_->record(episode_cause_, sw, net_->clock().now());
  }
}

void StormSchedule::heal(RepairJournal* journal) {
  (void)journal;
  const auto agents = net_->agents();
  Controller& controller = net_->controller();
  for (const std::size_t i : pending_heal_) {
    SwitchAgent& agent = *agents[i];
    if (profile_.kind == StormProfile::Kind::kRackPower) {
      agent.recover(controller.now());
    } else {
      controller.reconnect_switch(agent.id());
    }
    controller.resync_switch(agent.id());
    ++stats_.resyncs;
  }
  pending_heal_.clear();
}

void StormSchedule::rack_power(std::uint64_t episode_seed,
                               RepairJournal* journal) {
  const auto agents = net_->agents();
  if (agents.empty()) return;
  Rng rng{episode_seed};
  const std::size_t rack_size = std::max<std::size_t>(1, profile_.rack_size);
  const std::size_t n_racks = (agents.size() + rack_size - 1) / rack_size;
  const std::size_t rack = rng.below(n_racks);
  const std::size_t lo = rack * rack_size;
  const std::size_t hi = std::min(agents.size(), lo + rack_size);

  Controller& controller = net_->controller();
  // Power drops: every agent in the rack crashes at its next instruction.
  // The resync's first push trips the crash (one AGENT_CRASH record + a
  // stream event per member), the TCAM wipe sticks, and the remaining
  // replays bounce off the dead agent — a rack of devices with empty
  // hardware and full logical views, all raised in the same episode.
  for (std::size_t i = lo; i < hi; ++i) {
    SwitchAgent& agent = *agents[i];
    if (journal != nullptr) journal->snapshot_agent(*net_, agent.id());
    agent.crash_after(0);
    controller.resync_switch(agent.id());
    record_truth(agent.id());
    ++stats_.agents_crashed;
    ++stats_.resyncs;
    if (split_episodes_) pending_heal_.push_back(i);
  }
  if (split_episodes_) return;  // heal deferred to the next cadence tick
  // Power restored: the rack recovers together and the controller
  // resyncs each member back to the compiled state.
  for (std::size_t i = lo; i < hi; ++i) {
    SwitchAgent& agent = *agents[i];
    agent.recover(controller.now());
    controller.resync_switch(agent.id());
    ++stats_.resyncs;
  }
}

void StormSchedule::rolling_upgrade(std::uint64_t episode_seed,
                                    RepairJournal* journal) {
  const auto agents = net_->agents();
  if (agents.empty()) return;
  Rng rng{episode_seed};
  Controller& controller = net_->controller();
  // The upgraded controller instance recompiles the (unchanged) policy —
  // once or twice, as standby and active come up — bumping the compiled
  // epoch mid-churn and forcing every resident logical BDD to rebuild.
  const std::size_t recompiles = 1 + rng.below(2);
  for (std::size_t i = 0; i < recompiles; ++i) {
    controller.recompile();
    ++stats_.recompiles;
  }
  // Its state-transfer audit then resyncs one switch against the fresh
  // compilation (the paper's controller replays config on takeover).
  const std::size_t idx = rng.below(agents.size());
  if (journal != nullptr) journal->snapshot_agent(*net_, agents[idx]->id());
  controller.resync_switch(agents[idx]->id());
  ++stats_.resyncs;
}

void StormSchedule::pod_brownout(std::uint64_t episode_seed,
                                 RepairJournal* journal) {
  const auto agents = net_->agents();
  if (agents.empty()) return;
  Rng rng{episode_seed};
  const std::size_t rack_size = std::max<std::size_t>(1, profile_.rack_size);
  const std::size_t pod_size =
      rack_size * std::max<std::size_t>(1, profile_.racks_per_pod);
  const std::size_t n_pods = (agents.size() + pod_size - 1) / pod_size;
  const std::size_t pod = rng.below(n_pods);
  const std::size_t lo = pod * pod_size;
  const std::size_t hi = std::min(agents.size(), lo + pod_size);

  Controller& controller = net_->controller();
  // Management network browns out: the whole pod goes unreachable at
  // once. A resync attempted while the channel is down wipes the TCAM
  // (the controller's state-transfer epoch already fenced the device)
  // but every replayed instruction is lost — one SWITCH_UNREACHABLE per
  // member lands in the controller's fault log, correlated in time.
  // Only currently-connected members flap, so the outage records this
  // episode creates are all post-watermark (journal-exact truncation).
  std::vector<std::size_t> flapped;
  for (std::size_t i = lo; i < hi; ++i) {
    SwitchAgent& agent = *agents[i];
    if (!controller.channel().connected(agent.id())) continue;
    if (journal != nullptr) journal->snapshot_agent(*net_, agent.id());
    controller.disconnect_switch(agent.id());
    controller.resync_switch(agent.id());
    record_truth(agent.id());
    ++stats_.channels_flapped;
    ++stats_.resyncs;
    flapped.push_back(i);
  }
  if (split_episodes_) {
    // Brownout persists past this cadence tick; the next one clears it.
    pending_heal_ = std::move(flapped);
    return;
  }
  // Brownout clears: reconnect the pod and resync every member back to
  // the compiled state.
  for (const std::size_t i : flapped) {
    controller.reconnect_switch(agents[i]->id());
    controller.resync_switch(agents[i]->id());
    ++stats_.resyncs;
  }
}

}  // namespace scout
