#include "src/faults/physical_faults.h"

#include <sstream>

#include "src/faults/repair_journal.h"

namespace scout {
namespace {

ScenarioOutcome push_filters(Controller& controller, ContractId contract,
                             std::size_t n_filters, std::uint16_t first_port,
                             const char* name_prefix,
                             bool stop_on_overflow = false) {
  ScenarioOutcome outcome;
  for (std::size_t i = 0; i < n_filters; ++i) {
    std::ostringstream name;
    name << name_prefix << '-' << i;
    DeployStats stats;
    const auto port = static_cast<std::uint16_t>(first_port + i);
    outcome.filters_added.push_back(controller.deploy_new_filter(
        name.str(), {FilterEntry::allow_tcp(port)}, contract, &stats));
    outcome.instructions_pushed += stats.total();
    outcome.instructions_lost += stats.lost + stats.crashed;
    outcome.tcam_rejections += stats.tcam_overflow;
    if (stop_on_overflow && stats.tcam_overflow > 0) break;
  }
  return outcome;
}

}  // namespace

ScenarioOutcome run_tcam_overflow_scenario(Controller& controller,
                                           ContractId contract,
                                           std::size_t max_filters,
                                           std::uint16_t first_port) {
  return push_filters(controller, contract, max_filters, first_port,
                      "overflow-filter", /*stop_on_overflow=*/true);
}

ScenarioOutcome run_unresponsive_switch_scenario(Controller& controller,
                                                 SwitchId sw,
                                                 ContractId contract,
                                                 std::size_t n_filters,
                                                 std::uint16_t first_port) {
  SwitchAgent* agent = controller.agent(sw);
  if (agent != nullptr) agent->set_responsive(false);
  return push_filters(controller, contract, n_filters, first_port,
                      "late-filter");
}

ScenarioOutcome run_agent_crash_scenario(Controller& controller, SwitchId sw,
                                         ContractId contract,
                                         std::size_t n_filters,
                                         std::size_t apply_before_crash,
                                         std::uint16_t first_port) {
  SwitchAgent* agent = controller.agent(sw);
  if (agent != nullptr) agent->crash_after(apply_before_crash);
  return push_filters(controller, contract, n_filters, first_port,
                      "crash-filter");
}

std::size_t run_tcam_corruption_scenario(Controller& controller, SwitchId sw,
                                         std::size_t bits, Rng& rng,
                                         double detection_probability,
                                         RepairJournal* journal) {
  SwitchAgent* agent = controller.agent(sw);
  if (agent == nullptr) return 0;
  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < bits; ++i) {
    const auto corruption =
        agent->corrupt_tcam_bit(rng, controller.now(), detection_probability);
    if (!corruption.has_value()) continue;
    if (journal != nullptr) {
      journal->note_modified(sw, corruption->before, corruption->after);
    }
    ++corrupted;
  }
  return corrupted;
}

}  // namespace scout
