// Physical-fault scenario orchestration (paper §V-B use cases).
//
// These helpers script the end-to-end failure stories against a live
// Controller + agents: TCAM overflow via continuous filter additions,
// an unresponsive switch during instruction push, agent crash mid-update
// and TCAM corruption. Each leaves behind realistic state: missing TCAM
// rules, change-log records at the controller and fault-log records on the
// devices — everything the SCOUT pipeline consumes.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/controller/controller.h"

namespace scout {

class RepairJournal;

struct ScenarioOutcome {
  std::size_t instructions_pushed = 0;
  std::size_t instructions_lost = 0;
  std::size_t tcam_rejections = 0;
  std::vector<FilterId> filters_added;
};

// Use case 1 — TCAM overflow: keep adding one new single-port filter to
// `contract` until the TCAM of some switch rejects rules (or `max_filters`
// is reached). Overflow raises TCAM_OVERFLOW fault logs on the device.
ScenarioOutcome run_tcam_overflow_scenario(Controller& controller,
                                           ContractId contract,
                                           std::size_t max_filters,
                                           std::uint16_t first_port = 10'000);

// Use case 2 — unresponsive switch: silence `sw` (its agent drops
// instructions), then push `n_filters` new filters through `contract`.
// Rules for other switches land; rules for `sw` vanish. The controller's
// keepalive raises SWITCH_UNREACHABLE. The switch stays unresponsive on
// return (callers decide when to recover it).
ScenarioOutcome run_unresponsive_switch_scenario(Controller& controller,
                                                 SwitchId sw,
                                                 ContractId contract,
                                                 std::size_t n_filters,
                                                 std::uint16_t first_port =
                                                     20'000);

// Agent crash mid-deploy: schedule the agent of `sw` to crash after
// `apply_before_crash` applied instructions, then push filters.
ScenarioOutcome run_agent_crash_scenario(Controller& controller, SwitchId sw,
                                         ContractId contract,
                                         std::size_t n_filters,
                                         std::size_t apply_before_crash,
                                         std::uint16_t first_port = 30'000);

// TCAM corruption: flip `bits` random TCAM bits on `sw`; each flip is
// detected (logged as a parity error) with `detection_probability`. When
// `journal` is set, every flip is recorded (full before/after rule images)
// so the repair journal can undo the corruption bit-exactly.
std::size_t run_tcam_corruption_scenario(Controller& controller, SwitchId sw,
                                         std::size_t bits, Rng& rng,
                                         double detection_probability = 0.5,
                                         RepairJournal* journal = nullptr);

}  // namespace scout
