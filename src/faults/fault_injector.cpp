#include "src/faults/fault_injector.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/faults/repair_journal.h"
#include "src/tcam/rule_key.h"

namespace scout {

void ObjectFaultInjector::ensure_index() {
  if (index_built_) return;
  index_built_ = true;
  for (const auto& [sw, rules] : controller_->compiled().per_switch) {
    for (const LogicalRule& lr : rules) {
      if (!lr.prov.contract.valid()) continue;
      by_object_[ObjectRef::of(lr.prov.vrf)].push_back(&lr);
      by_object_[ObjectRef::of(lr.prov.pair.a)].push_back(&lr);
      if (lr.prov.pair.b != lr.prov.pair.a) {
        by_object_[ObjectRef::of(lr.prov.pair.b)].push_back(&lr);
      }
      by_object_[ObjectRef::of(lr.prov.contract)].push_back(&lr);
      by_object_[ObjectRef::of(lr.prov.filter)].push_back(&lr);
      by_object_[ObjectRef::of(lr.prov.sw)].push_back(&lr);
    }
  }
}

InjectedFault ObjectFaultInjector::inject(ObjectRef object,
                                          std::optional<SwitchId> scope,
                                          bool full) {
  InjectedFault fault;
  fault.object = object;
  fault.full = full;
  ensure_index();

  // Gather the object's rules per (switch, pair) element from the compiled
  // policy (the ground truth of what should be in each TCAM).
  struct ElementKey {
    SwitchId sw;
    EpgPair pair;
    bool operator==(const ElementKey&) const noexcept = default;
  };
  struct ElementKeyHash {
    std::size_t operator()(const ElementKey& k) const noexcept {
      return hash_all(k.sw, k.pair);
    }
  };

  std::unordered_map<ElementKey, std::vector<const LogicalRule*>,
                     ElementKeyHash>
      by_element;
  if (const auto it = by_object_.find(object); it != by_object_.end()) {
    for (const LogicalRule* lr : it->second) {
      if (scope.has_value() && lr->prov.sw != *scope) continue;
      by_element[ElementKey{lr->prov.sw, lr->prov.pair}].push_back(lr);
    }
  }
  if (by_element.empty()) return fault;  // object deploys nothing here

  // Choose which dependent elements to break.
  std::vector<ElementKey> elements;
  elements.reserve(by_element.size());
  for (const auto& [key, rules] : by_element) elements.push_back(key);
  // Deterministic order before sampling (hash-map order is unspecified).
  std::sort(elements.begin(), elements.end(),
            [](const ElementKey& a, const ElementKey& b) {
              return std::tie(a.sw, a.pair.a, a.pair.b) <
                     std::tie(b.sw, b.pair.a, b.pair.b);
            });

  if (!full && elements.size() > 1) {
    const double fraction = options_.sampled_fraction
                                ? 0.1 + 0.8 * rng_->uniform()
                                : options_.partial_fraction;
    const std::size_t keep_broken = std::clamp<std::size_t>(
        static_cast<std::size_t>(fraction *
                                 static_cast<double>(elements.size())),
        1, elements.size() - 1);
    const auto picked =
        rng_->sample_indices(elements.size(), keep_broken);
    std::vector<ElementKey> subset;
    subset.reserve(picked.size());
    for (const std::size_t i : picked) subset.push_back(elements[i]);
    elements = std::move(subset);
  } else {
    fault.full = true;  // single-element objects degrade to full faults
  }

  // Remove the selected rules from the TCAMs: one batched remove_if per
  // switch so a big fault doesn't degrade to O(rules * table).
  std::unordered_map<SwitchId,
                     std::unordered_set<RuleMatchKey, RuleMatchKeyHash>>
      targets;
  std::unordered_set<SwitchId> touched;
  for (const ElementKey& key : elements) {
    for (const LogicalRule* lr : by_element[key]) {
      targets[key.sw].insert(RuleMatchKey::of(lr->rule));
    }
    touched.insert(key.sw);
    ++fault.elements_affected;
  }
  for (const auto& [sw, keys] : targets) {
    SwitchAgent* agent = controller_->agent(sw);
    if (agent == nullptr) continue;
    if (journal_ != nullptr) {
      // Record every copy the remove will take, in table order, before it
      // happens — the repair journal reinstalls them exactly (priority
      // duplicates included).
      for (const TcamRule& r : agent->tcam().rules()) {
        if (keys.contains(RuleMatchKey::of(r))) {
          journal_->note_removed(sw, r);
        }
      }
    }
    fault.rules_removed += agent->tcam().remove_if(
        [&keys](const TcamRule& r) {
          return keys.contains(RuleMatchKey::of(r));
        });
  }
  fault.switches.assign(touched.begin(), touched.end());
  std::sort(fault.switches.begin(), fault.switches.end());

  if (fault.rules_removed > 0) {
    fault.cause = stream::CauseId::make(stream::CauseEngine::kObjectFault,
                                        ++cause_ordinal_);
    if (cause_ledger_ != nullptr) {
      for (const SwitchId sw : fault.switches) {
        cause_ledger_->record(fault.cause, sw, controller_->now());
      }
    }
  }
  if (options_.record_change) {
    controller_->record_benign_change(object);
  }
  return fault;
}

InjectedFault ObjectFaultInjector::inject_full(ObjectRef object,
                                               std::optional<SwitchId> scope) {
  return inject(object, scope, /*full=*/true);
}

InjectedFault ObjectFaultInjector::inject_partial(
    ObjectRef object, std::optional<SwitchId> scope) {
  return inject(object, scope, /*full=*/false);
}

std::size_t ObjectFaultInjector::inject_stale_copies(
    ObjectRef object, std::size_t count, std::optional<SwitchId> scope) {
  ensure_index();
  std::vector<const LogicalRule*> pool;
  if (const auto it = by_object_.find(object); it != by_object_.end()) {
    for (const LogicalRule* lr : it->second) {
      if (scope.has_value() && lr->prov.sw != *scope) continue;
      pool.push_back(lr);
    }
  }
  if (pool.empty() || count == 0) return 0;
  // Deterministic order before sampling (the index is an unordered_map).
  std::sort(pool.begin(), pool.end(),
            [](const LogicalRule* a, const LogicalRule* b) {
              return std::tie(a->prov.sw, a->rule.priority) <
                     std::tie(b->prov.sw, b->rule.priority);
            });

  std::vector<std::size_t> picked;
  if (count >= pool.size()) {
    picked.resize(pool.size());
    for (std::size_t i = 0; i < pool.size(); ++i) picked[i] = i;
  } else {
    picked = rng_->sample_indices(pool.size(), count);
  }

  std::size_t added = 0;
  std::unordered_set<SwitchId> touched;
  for (const std::size_t i : picked) {
    const LogicalRule* lr = pool[i];
    SwitchAgent* agent = controller_->agent(lr->prov.sw);
    if (agent == nullptr) continue;
    if (agent->tcam().install(lr->rule) != InstallStatus::kOk) continue;
    if (journal_ != nullptr) journal_->note_added(lr->prov.sw, lr->rule);
    touched.insert(lr->prov.sw);
    ++added;
  }
  if (added > 0) {
    const stream::CauseId cause = stream::CauseId::make(
        stream::CauseEngine::kObjectFault, ++cause_ordinal_);
    if (cause_ledger_ != nullptr) {
      std::vector<SwitchId> sorted{touched.begin(), touched.end()};
      std::sort(sorted.begin(), sorted.end());
      for (const SwitchId sw : sorted) {
        cause_ledger_->record(cause, sw, controller_->now());
      }
    }
    if (options_.record_change) {
      controller_->record_benign_change(object);
    }
  }
  return added;
}

std::vector<ObjectRef> ObjectFaultInjector::sample_objects(
    std::size_t count, bool include_vrfs, std::optional<SwitchId> scope) {
  ensure_index();
  // Candidate pool: objects that actually produce rules somewhere (or on
  // the scoped switch).
  std::vector<ObjectRef> pool;
  for (const auto& [obj, rules] : by_object_) {
    if (obj.type() == ObjectType::kSwitch) continue;  // physical, not policy
    if (obj.type() == ObjectType::kVrf && !include_vrfs) continue;
    if (scope.has_value()) {
      const bool on_scope =
          std::any_of(rules.begin(), rules.end(),
                      [&](const LogicalRule* lr) {
                        return lr->prov.sw == *scope;
                      });
      if (!on_scope) continue;
    }
    pool.push_back(obj);
  }
  std::sort(pool.begin(), pool.end());

  if (count >= pool.size()) return pool;
  std::vector<ObjectRef> out;
  out.reserve(count);
  for (const std::size_t i : rng_->sample_indices(pool.size(), count)) {
    out.push_back(pool[i]);
  }
  return out;
}

}  // namespace scout
