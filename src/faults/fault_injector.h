// Object-fault injection (paper §VI-A "Fault injection").
//
// Two fault types create policy/TCAM inconsistency:
//  * full object fault    — every TCAM rule derived from the object is
//    missing (e.g. the object was never pushed / dropped everywhere);
//  * partial object fault — the rules of a subset of the EPG pairs that
//    depend on the object are missing (e.g. rules installed later than the
//    rest hit a failure window), producing the low-hit-ratio cases SCORE
//    mishandles.
//
// Injection removes rules from agents' TCAM tables only; the controller's
// policy and the agents' logical views are untouched — exactly the state
// mismatch §II-B describes. Each injected fault records a change-log
// 'modify' for the object (faults surface during policy churn; this is what
// SCOUT's stage 2 keys on), and experiments add benign change noise so the
// change log is not an oracle.
#pragma once

#include <optional>
#include <vector>

#include "src/common/rng.h"
#include "src/controller/controller.h"
#include "src/policy/object_ref.h"
#include "src/stream/cause.h"

namespace scout {

class RepairJournal;

struct InjectedFault {
  ObjectRef object;
  bool full = true;
  std::vector<SwitchId> switches;  // switches where rules were removed
  std::size_t rules_removed = 0;
  std::size_t elements_affected = 0;  // distinct (switch, pair) elements
  // Provenance id minted for this injection (incident attribution /
  // ground-truth ledger); null when the object deployed nothing.
  stream::CauseId cause{};
};

class ObjectFaultInjector {
 public:
  struct Options {
    // Partial faults remove this fraction of the object's dependent
    // (switch, pair) elements, clamped to [1, n-1]. If sampled_fraction is
    // true, the fraction is drawn uniformly from [0.1, 0.9] per fault,
    // reproducing the paper's observation that hit ratios vary wildly
    // (0.01 to 0.95, §IV-B).
    double partial_fraction = 0.5;
    bool sampled_fraction = true;
    // Record a change-log entry for each injected object.
    bool record_change = true;
  };

  ObjectFaultInjector(Controller& controller, Rng& rng)
      : controller_(&controller), rng_(&rng) {}
  ObjectFaultInjector(Controller& controller, Rng& rng, Options options)
      : controller_(&controller), rng_(&rng), options_(options) {}

  // Remove all rules derived from `object`. When `scope` is set, only on
  // that switch (switch-risk-model experiments); otherwise on every switch
  // the object deploys to (controller-risk-model experiments).
  InjectedFault inject_full(ObjectRef object,
                            std::optional<SwitchId> scope = std::nullopt);

  // Remove the rules of a sampled subset of the object's dependent
  // elements. Falls back to a full fault when the object has only one
  // dependent element.
  InjectedFault inject_partial(ObjectRef object,
                               std::optional<SwitchId> scope = std::nullopt);

  // Stale-state fault (§II-B leftovers): duplicate up to `count` of the
  // object's deployed rules in place — same fields and priority, one extra
  // hardware copy — modelling incomplete removals that leave the device
  // with more state than the policy compiles. The syntactic checker
  // reports each duplicate as an extra rule. Returns the rules added.
  std::size_t inject_stale_copies(ObjectRef object, std::size_t count,
                                  std::optional<SwitchId> scope =
                                      std::nullopt);

  // Exact-repair support: while set, every TCAM mutation this injector
  // performs is recorded in `journal` so it can be undone bit-exactly.
  void set_journal(RepairJournal* journal) noexcept { journal_ = journal; }

  // Incident-provenance ground truth: while set, every state-mutating
  // injection records one ledger entry per touched switch under a freshly
  // minted kObjectFault cause. Minting is a counter bump — attaching a
  // ledger never changes which rules an injection selects.
  void set_cause_ledger(stream::CauseLedger* ledger) noexcept {
    cause_ledger_ = ledger;
  }

  // Re-seat the randomness source (per-cell RNG over a cached injector:
  // the object index depends only on the compiled snapshot, not the RNG,
  // so a cached injector with a fresh RNG behaves exactly like a fresh
  // injector).
  void set_rng(Rng& rng) noexcept { rng_ = &rng; }

  // Sample `count` distinct fault-eligible objects (objects with at least
  // one deployed rule), type-weighted by object population. VRFs are
  // excluded by default: a full VRF fault wipes most of the fabric and
  // makes accuracy experiments degenerate (the paper's §VI faults are
  // EPG/contract/filter-grade; VRF faults appear in the Fig. 3 discussion).
  // `scope` restricts the pool to objects with rules deployed on that
  // switch (switch-risk-model experiments inject all faults on one switch).
  [[nodiscard]] std::vector<ObjectRef> sample_objects(
      std::size_t count, bool include_vrfs = false,
      std::optional<SwitchId> scope = std::nullopt);

 private:
  InjectedFault inject(ObjectRef object, std::optional<SwitchId> scope,
                       bool full);
  void ensure_index();

  Controller* controller_;
  Rng* rng_;
  Options options_;
  RepairJournal* journal_ = nullptr;
  stream::CauseLedger* cause_ledger_ = nullptr;
  std::uint64_t cause_ordinal_ = 0;
  // object -> compiled rules derived from it, built lazily on first use.
  // The injector assumes the controller's compiled snapshot is stable for
  // its lifetime; construct a fresh injector after recompiling.
  std::unordered_map<ObjectRef, std::vector<const LogicalRule*>> by_object_;
  bool index_built_ = false;
};

}  // namespace scout
