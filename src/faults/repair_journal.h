// Record-and-undo journal for fault injection: exact repair of a deployed
// SimNetwork.
//
// The accuracy sweeps (paper §VI) evaluate one fixed fabric under
// different fault injections — every grid cell used to rebuild a
// byte-identical network just to damage it differently. The journal makes
// the rebuild unnecessary: arm() captures watermarks over every mutable
// log plus the clock and each agent's fault flags, the injectors record
// every TCAM mutation as they apply it, and repair() plays the rule ops
// back in reverse and truncates the logs — leaving the network
// bit-identical (SimNetwork::state_fingerprint) to the freshly deployed
// baseline. tests/test_network_repair.cpp proves that identity
// differentially over randomized fault sequences; the sweep cache in
// scout/experiment.* is built on it.
//
// Domain: TCAM rule removals / additions / modifications (priorities and
// actions included), agent fault flags (crash, responsiveness, VRF-rewrite
// bug, gray-fault profiles), agent and controller fault logs, the
// controller change log, control-channel outages raised after arm(), the
// simulation clock, and — via snapshot_agent() — whole-agent TCAM +
// logical-view images, which covers scenarios whose per-op damage is
// impractical to record (gray resyncs, reordered delivery, storm
// episodes). Outside the domain: policy mutations (deploy_new_filter,
// undeploy_filter, migrate_endpoint), logical-view edits from live pushes
// on *unsnapshotted* agents, and in-place edits of pre-watermark records
// (recover()/reconnect_switch() clearing an old fault record or closing a
// pre-arm outage). Cells that perform those must rebuild, not repair —
// the sweep cache verifies fingerprints and falls back to a rebuild if a
// repair ever diverges.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/agent/switch_agent.h"
#include "src/scout/sim_network.h"

namespace scout {

class RepairJournal {
 public:
  // Capture the pre-injection watermarks. The journal must be disarmed
  // (fresh, or after a repair()); arming twice without repairing is a
  // sequencing bug and throws.
  void arm(SimNetwork& net);
  [[nodiscard]] bool armed() const noexcept { return net_ != nullptr; }
  [[nodiscard]] std::size_t rule_ops() const noexcept { return ops_.size(); }

  // Recording hooks, called by the injectors as they mutate TCAM state.
  // No-ops while disarmed, so injector code does not need to branch.
  void note_removed(SwitchId sw, const TcamRule& rule);
  void note_added(SwitchId sw, const TcamRule& rule);
  void note_modified(SwitchId sw, const TcamRule& before,
                     const TcamRule& after);

  // Record a full image of one agent's TCAM and logical view. Scenario
  // drivers whose damage is not expressible as per-rule ops (gray
  // resyncs, reordered delivery, storm episodes replaying the compiled
  // policy through lying devices) snapshot each agent they will touch
  // *before* touching it; undo restores the images wholesale. Snapshots
  // interleave with rule ops in strict LIFO, so duplicate snapshots of
  // one agent are fine — the earliest (pre-damage) image is restored
  // last. No-op while disarmed, like the note_* hooks.
  void snapshot_agent(SimNetwork& net, SwitchId sw);

  // Undo only the recorded TCAM rule ops (newest first) and forget them;
  // watermarks stay armed. This is the gamma driver's per-iteration clean
  // slate: each fault is undone before the next lands, while the change
  // log and clock keep accumulating shard history.
  void undo_rule_ops(SimNetwork& net);

  // Full exact repair: undo the rule ops, restore every agent's fault
  // flags, truncate agent/controller fault logs and the change log to the
  // watermarks, and reset the clock. Disarms the journal.
  void repair(SimNetwork& net);

  // Lifetime totals across arm/undo/repair cycles (rule_ops() is only the
  // currently armed window). The telemetry bridge reads these.
  struct Stats {
    std::uint64_t ops_recorded = 0;
    std::uint64_t ops_undone = 0;
    std::uint64_t undo_failures = 0;  // op no longer undoable
    std::uint64_t repairs = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct AgentSnapshot {
    std::vector<TcamRule> tcam;      // in table (priority) order
    std::vector<LogicalRule> view;
  };
  struct RuleOp {
    enum class Kind : std::uint8_t {
      kRemoved,
      kAdded,
      kModified,
      kAgentSnapshot
    };
    Kind kind = Kind::kRemoved;
    SwitchId sw;
    TcamRule before;  // kRemoved: the removed rule; kModified: pre-image
    TcamRule after;   // kAdded: the added rule; kModified: post-image
    std::unique_ptr<AgentSnapshot> snapshot;  // kAgentSnapshot only
  };
  struct AgentMark {
    SwitchAgent::FaultState fault_state;
    std::size_t fault_log_size = 0;
  };

  void check_same_net(const SimNetwork& net) const;

  SimNetwork* net_ = nullptr;  // non-null while armed
  SimTime clock_mark_;
  std::size_t change_log_mark_ = 0;
  std::size_t controller_fault_log_mark_ = 0;
  std::size_t channel_mark_ = 0;  // outage count at arm()
  std::vector<AgentMark> agent_marks_;  // in net.agents() order
  std::vector<RuleOp> ops_;
  Stats stats_;
};

}  // namespace scout
